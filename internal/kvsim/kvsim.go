// Package kvsim models Google's LevelDB as a service-time distribution,
// matching the paper's measured setup (§5.3): 15,000 unique keys held in
// memory via memory-mapped plain tables, where
//
//   - GET requests take ≈600ns,
//   - PUT and DELETE requests take ≈2.3µs,
//   - SCAN requests over the whole database take ≈500µs.
//
// PUT and GET acquire LevelDB's internal mutex, so they carry a
// critical-section prefix during which Concord's safety-first preemption
// defers yields (§3.1). The fractions are estimates of the lock-held
// share of each operation in LevelDB's code (the paper reports adding a
// 4-line lock counter, not the fractions themselves).
package kvsim

import (
	"concord/internal/dist"
	"concord/internal/server"
)

// Operation service times in µs (§5.3).
const (
	GetUS    = 0.6
	PutUS    = 2.3
	DeleteUS = 2.3
	ScanUS   = 500.0
)

// Critical-section fractions: the share of each operation spent holding
// LevelDB's mutex. Scans iterate over an immutable snapshot and hold no
// lock during the scan body.
const (
	GetCritFrac = 0.4
	PutCritFrac = 0.6
)

// CritFracByClass returns the per-class lock model shared by all LevelDB
// workloads.
func CritFracByClass() map[string]float64 {
	return map[string]float64{
		"GET":    GetCritFrac,
		"PUT":    PutCritFrac,
		"DELETE": PutCritFrac,
	}
}

// Mixed5050 returns the paper's first LevelDB workload: 50% GETs of a
// single key, 50% SCANs of the entire database (§5.3, Fig. 9). Its
// service-time dispersion is ≈1000×.
func Mixed5050() server.Workload {
	return server.Workload{
		Dist: dist.NewMixture("LevelDB(50%GET,50%SCAN)",
			dist.Class{Name: "GET", Weight: 50, Dist: dist.NewFixed(GetUS)},
			dist.Class{Name: "SCAN", Weight: 50, Dist: dist.NewFixed(ScanUS)},
		),
		CritFracByClass: CritFracByClass(),
	}
}

// ZippyDB returns the paper's second LevelDB workload, based on Meta's
// published ZippyDB production traces (§5.3, Fig. 10): 78% GETs, 13%
// PUTs, 6% DELETEs, 3% SCANs.
func ZippyDB() server.Workload {
	return server.Workload{
		Dist: dist.NewMixture("LevelDB(ZippyDB)",
			dist.Class{Name: "GET", Weight: 78, Dist: dist.NewFixed(GetUS)},
			dist.Class{Name: "PUT", Weight: 13, Dist: dist.NewFixed(PutUS)},
			dist.Class{Name: "DELETE", Weight: 6, Dist: dist.NewFixed(DeleteUS)},
			dist.Class{Name: "SCAN", Weight: 3, Dist: dist.NewFixed(ScanUS)},
		),
		CritFracByClass: CritFracByClass(),
	}
}

// LongGetMicrobench returns the §3.1 microbenchmark that exposes
// Shinjuku's whole-API-call preemption deferral: a mix of short GETs and
// long-running 100µs GET API calls that acquire the LevelDB lock only
// briefly. Under Concord's lock-counter approach only the short critical
// section defers preemption; under Shinjuku's approach the entire 100µs
// call does.
func LongGetMicrobench() server.Workload {
	return server.Workload{
		Dist: dist.NewMixture("LevelDB(long-GET microbench)",
			dist.Class{Name: "GET", Weight: 80, Dist: dist.NewFixed(GetUS)},
			dist.Class{Name: "LONGGET", Weight: 20, Dist: dist.NewFixed(100)},
		),
		CritFracByClass: map[string]float64{
			"GET":     GetCritFrac,
			"LONGGET": 0.02, // the lock is held ≈2µs of the 100µs call
		},
	}
}
