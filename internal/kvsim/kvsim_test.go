package kvsim

import (
	"math"
	"testing"

	"concord/internal/sim"
)

func TestMixed5050Composition(t *testing.T) {
	wl := Mixed5050()
	want := 0.5*GetUS + 0.5*ScanUS
	if got := wl.Dist.Mean(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	r := sim.NewRNG(1)
	counts := map[string]int{}
	for i := 0; i < 100000; i++ {
		s := wl.Dist.Sample(r)
		counts[s.Class]++
		switch s.Class {
		case "GET":
			if s.ServiceUS != GetUS {
				t.Fatalf("GET service %v", s.ServiceUS)
			}
		case "SCAN":
			if s.ServiceUS != ScanUS {
				t.Fatalf("SCAN service %v", s.ServiceUS)
			}
		default:
			t.Fatalf("unexpected class %q", s.Class)
		}
	}
	frac := float64(counts["GET"]) / 100000
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("GET fraction %v, want ~0.5", frac)
	}
}

func TestZippyDBComposition(t *testing.T) {
	wl := ZippyDB()
	// §5.3: 78% GETs, 13% PUTs, 6% DELETEs, 3% SCANs.
	want := 0.78*GetUS + 0.13*PutUS + 0.06*DeleteUS + 0.03*ScanUS
	if got := wl.Dist.Mean(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
	r := sim.NewRNG(2)
	counts := map[string]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[wl.Dist.Sample(r).Class]++
	}
	for class, wantFrac := range map[string]float64{"GET": 0.78, "PUT": 0.13, "DELETE": 0.06, "SCAN": 0.03} {
		if got := float64(counts[class]) / n; math.Abs(got-wantFrac) > 0.01 {
			t.Errorf("%s fraction = %v, want %v", class, got, wantFrac)
		}
	}
}

func TestLockModel(t *testing.T) {
	for _, wl := range []struct {
		name string
		crit map[string]float64
	}{
		{"5050", Mixed5050().CritFracByClass},
		{"zippy", ZippyDB().CritFracByClass},
	} {
		if wl.crit["GET"] != GetCritFrac {
			t.Errorf("%s: GET crit frac %v", wl.name, wl.crit["GET"])
		}
		if _, ok := wl.crit["SCAN"]; ok {
			t.Errorf("%s: SCAN must not hold the mutex", wl.name)
		}
	}
	z := ZippyDB().CritFracByClass
	if z["PUT"] != PutCritFrac || z["DELETE"] != PutCritFrac {
		t.Error("writes must hold the mutex")
	}
}

func TestLongGetMicrobench(t *testing.T) {
	wl := LongGetMicrobench()
	r := sim.NewRNG(3)
	sawLong := false
	for i := 0; i < 10000; i++ {
		s := wl.Dist.Sample(r)
		if s.Class == "LONGGET" {
			sawLong = true
			if s.ServiceUS != 100 {
				t.Fatalf("LONGGET service %v, want 100µs", s.ServiceUS)
			}
		}
	}
	if !sawLong {
		t.Fatal("no LONGGET samples")
	}
	// The long GET's critical section must be a small fraction: that is
	// the whole point of the §3.1 microbenchmark.
	if f := wl.CritFracByClass["LONGGET"]; f <= 0 || f > 0.1 {
		t.Fatalf("LONGGET crit frac = %v, want small positive", f)
	}
}
