package adapt

// End-to-end actuator check for measured per-class quanta: real
// completions on a live server feed the class sketches, the controller
// reads their quantiles through Config.ClassSvcNS, and the server's
// per-class quantum table moves to match — the full sensing→control→
// actuation loop, no fakes.

import (
	"testing"
	"time"

	"concord/internal/live"
	"concord/internal/obs"
)

type classedSpin struct {
	d     time.Duration
	class live.SLOClass
}

func (p classedSpin) SLOClass() live.SLOClass { return p.class }

type liveSpinHandler struct{}

func (liveSpinHandler) Setup()          {}
func (liveSpinHandler) SetupWorker(int) {}
func (liveSpinHandler) Handle(ctx *live.Ctx, payload any) (any, error) {
	ctx.Spin(payload.(classedSpin).d)
	return nil, nil
}

func TestLiveClassQuantaFollowMeasuredService(t *testing.T) {
	sk := obs.NewClassSketches(live.NumClasses)
	s := live.New(liveSpinHandler{}, live.Options{
		Workers: 2, Quantum: 100 * time.Microsecond, QueueBound: 2,
		Sketches: sk,
	})
	s.Start()
	defer s.Stop()

	cfg := Config{
		Interval:   50 * time.Millisecond,
		MinQuantum: 5 * time.Microsecond,
		MaxQuantum: 2 * time.Millisecond,
		ClassSvcNS: func() []float64 { return sk.ServiceQuantilesNS(0.9) },
	}
	c := New(s, cfg)

	// A 300× true separation: on a contended 1-vCPU machine wall-clock
	// spins measure inflated — a 20µs spin descheduled behind a long
	// spin can read ~600µs at p90 — so the long class must dwarf not
	// just the short class's true service but its worst-case inflated
	// reading, or scheduler jitter closes the measured ratio below the
	// asserted one.
	var chans []<-chan live.Response
	for i := 0; i < 30; i++ {
		chans = append(chans, s.Submit(classedSpin{d: 20 * time.Microsecond, class: live.ClassCritical}))
		chans = append(chans, s.Submit(classedSpin{d: 6 * time.Millisecond, class: live.ClassSheddable}))
	}
	for _, ch := range chans {
		if resp := <-ch; resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}

	c.Step(Signals{})
	short, long := s.ClassQuantum(int(live.ClassCritical)), s.ClassQuantum(int(live.ClassSheddable))
	if short <= 0 || long <= 0 {
		t.Fatalf("class quanta unset after measured step: short %v long %v", short, long)
	}
	// Long work spins 300× the short work; the measured quanta must at
	// least preserve the ordering with real headroom (4× is far under
	// the true 300× ratio but over any timing jitter).
	if long < 4*short {
		t.Fatalf("class quanta did not follow measured service: short %v long %v", short, long)
	}
}
