// Package adapt is the scheduling control plane: a slow-path controller
// that watches the observability layer's rolling tail quantiles, SLO
// burn rates, and an online service-time dispersion estimate, and
// steers the live runtime's fast-path knobs — the preemption quantum,
// per-class quanta, and the fcfs↔srpt queue discipline. The fast path
// never blocks on the controller: every actuator is an atomic the
// dispatcher reads at its own pace (§2's model selects the discipline;
// the controller merely re-evaluates that selection as the workload
// drifts).
package adapt

import (
	"math"
	"sync/atomic"
)

// svcUnit quantizes service-time samples to 100ns so the running
// sum-of-squares stays far from int64 overflow at microsecond-scale
// services (a 1ms service is 1e4 units, 1e8 squared: ~9e10 samples per
// window before overflow, orders of magnitude beyond any drain rate).
const svcUnitNS = 100

// CVEstimator accumulates per-request service times on the completion
// path and yields a per-window mean and coefficient of variation when
// drained by the controller. Observe is three atomic adds — cheap
// enough for the finish hot path — and TakeWindow swaps the
// accumulators to zero. The three swaps are not jointly atomic;
// completions racing a drain smear one sample across two windows, which
// the controller's smoothing absorbs.
type CVEstimator struct {
	count atomic.Int64
	sum   atomic.Int64 // svcUnitNS units
	sumsq atomic.Int64 // squared svcUnitNS units
}

// Observe records one request's accumulated service time in
// nanoseconds. Non-positive samples are dropped.
func (e *CVEstimator) Observe(serviceNS int64) {
	if serviceNS <= 0 {
		return
	}
	u := serviceNS / svcUnitNS
	if u == 0 {
		u = 1 // sub-unit services still count as the minimum quantum
	}
	e.count.Add(1)
	e.sum.Add(u)
	e.sumsq.Add(u * u)
}

// TakeWindow drains the window and returns the sample count, the mean
// service time in nanoseconds, and the coefficient of variation
// (stddev/mean). With no samples it returns zeros.
func (e *CVEstimator) TakeWindow() (count int64, meanNS, cv float64) {
	n := e.count.Swap(0)
	s := e.sum.Swap(0)
	ss := e.sumsq.Swap(0)
	if n <= 0 {
		return 0, 0, 0
	}
	mean := float64(s) / float64(n)
	variance := float64(ss)/float64(n) - mean*mean
	if variance < 0 {
		variance = 0 // floating-point cancellation on near-constant samples
	}
	if mean > 0 {
		cv = math.Sqrt(variance) / mean
	}
	return n, mean * svcUnitNS, cv
}
