package adapt

import (
	"testing"
	"time"
)

// fakeRuntime records actuator calls; Step is deterministic against it.
type fakeRuntime struct {
	quantum time.Duration
	class   map[int]time.Duration
	policy  string
}

func newFakeRuntime(q time.Duration, policy string) *fakeRuntime {
	return &fakeRuntime{quantum: q, policy: policy, class: map[int]time.Duration{}}
}

func (f *fakeRuntime) SetQuantum(d time.Duration)             { f.quantum = d }
func (f *fakeRuntime) Quantum() time.Duration                 { return f.quantum }
func (f *fakeRuntime) SetClassQuantum(c int, d time.Duration) { f.class[c] = d }
func (f *fakeRuntime) SetPolicy(name string) error            { f.policy = name; return nil }
func (f *fakeRuntime) Policy() string                         { return f.policy }

func TestCVEstimatorConstantAndBimodal(t *testing.T) {
	var e CVEstimator
	for i := 0; i < 100; i++ {
		e.Observe(10_000) // constant 10µs
	}
	n, mean, cv := e.TakeWindow()
	if n != 100 {
		t.Fatalf("count = %d, want 100", n)
	}
	if mean < 9_000 || mean > 11_000 {
		t.Fatalf("mean = %.0fns, want ~10000", mean)
	}
	if cv > 0.05 {
		t.Fatalf("constant samples CV = %.3f, want ~0", cv)
	}

	// Drained: the next window starts empty.
	if n, _, _ := e.TakeWindow(); n != 0 {
		t.Fatalf("drained estimator still has %d samples", n)
	}

	// 95% short / 5% very long — the dispersion SRPT exists for.
	for i := 0; i < 100; i++ {
		if i%20 == 0 {
			e.Observe(1_000_000) // 1ms scan
		} else {
			e.Observe(5_000) // 5µs point op
		}
	}
	_, _, cv = e.TakeWindow()
	if cv < 1.5 {
		t.Fatalf("bimodal CV = %.3f, want > 1.5", cv)
	}
	e.Observe(-5) // dropped
	e.Observe(0)  // dropped
	if n, _, _ := e.TakeWindow(); n != 0 {
		t.Fatalf("non-positive samples were counted: %d", n)
	}
}

func testConfig() Config {
	return Config{
		Interval:   50 * time.Millisecond,
		MinQuantum: 5 * time.Microsecond,
		MaxQuantum: 500 * time.Microsecond,
		SLOTarget:  200 * time.Microsecond,
		MinDwell:   150 * time.Millisecond, // 3 ticks
	}
}

// cvSignals is a window with enough samples to move the CV estimate.
func cvSignals(cv float64) Signals {
	return Signals{SvcCount: 64, SvcMeanNS: 10_000, SvcCV: cv}
}

func TestControllerPolicyHysteresisAndDwell(t *testing.T) {
	rt := newFakeRuntime(50*time.Microsecond, PolicyFCFS)
	c := New(rt, testConfig())

	// High dispersion, but dwell not yet elapsed: ticks 1 and 2 hold.
	c.Step(cvSignals(2.0))
	c.Step(cvSignals(2.0))
	if rt.policy != PolicyFCFS {
		t.Fatalf("switched before MinDwell: policy %q at tick 2", rt.policy)
	}
	// Tick 3: dwell satisfied, smoothed CV well above CVHigh → SRPT.
	c.Step(cvSignals(2.0))
	if rt.policy != PolicySRPT {
		t.Fatalf("policy %q after sustained high CV, want srpt", rt.policy)
	}
	if got := c.Status().Switches; got != 1 {
		t.Fatalf("switches = %d, want 1", got)
	}

	// In-band CV (between CVLow and CVHigh): the incumbent stays, no
	// matter how many ticks pass.
	for i := 0; i < 10; i++ {
		c.Step(cvSignals(1.0))
	}
	if rt.policy != PolicySRPT {
		t.Fatalf("in-band CV flipped policy to %q", rt.policy)
	}

	// Sustained low CV: back to FCFS once the EWMA crosses CVLow.
	for i := 0; i < 20; i++ {
		c.Step(cvSignals(0.1))
	}
	if rt.policy != PolicyFCFS {
		t.Fatalf("policy %q after sustained low CV, want fcfs", rt.policy)
	}
	if got := c.Status().Switches; got != 2 {
		t.Fatalf("switches = %d, want 2", got)
	}

	// Windows with too few samples never move the estimate: starve the
	// estimator and the policy must hold even at wild CV readings.
	before := c.Status().CV
	c.Step(Signals{SvcCount: 3, SvcCV: 50})
	if got := c.Status().CV; got != before {
		t.Fatalf("under-sampled window moved CV %.3f → %.3f", before, got)
	}
}

func TestControllerQuantumAIMD(t *testing.T) {
	rt := newFakeRuntime(100*time.Microsecond, PolicyFCFS)
	cfg := testConfig()
	c := New(rt, cfg)

	// Tail blown: quantum tightens multiplicatively down to the floor.
	for i := 0; i < 50; i++ {
		c.Step(Signals{P999: 300 * time.Microsecond})
	}
	if rt.quantum != cfg.MinQuantum {
		t.Fatalf("quantum = %v after sustained tail misses, want floor %v", rt.quantum, cfg.MinQuantum)
	}

	// Comfortable tail: relaxes back up to the ceiling.
	for i := 0; i < 50; i++ {
		c.Step(Signals{P999: 50 * time.Microsecond})
	}
	if rt.quantum != cfg.MaxQuantum {
		t.Fatalf("quantum = %v after sustained headroom, want ceiling %v", rt.quantum, cfg.MaxQuantum)
	}

	// Near-target band and idle windows hold still.
	hold := rt.quantum
	c.Step(Signals{P999: 150 * time.Microsecond}) // between target/2 and target
	c.Step(Signals{})                             // idle
	if rt.quantum != hold {
		t.Fatalf("quantum moved to %v on hold/idle signals", rt.quantum)
	}

	// A hot short burn window tightens even when p999 reads under
	// target (rejected requests burn budget without a latency sample).
	c.Step(Signals{P999: 100 * time.Microsecond, ShortBurn: 5})
	if rt.quantum >= hold {
		t.Fatalf("quantum = %v did not tighten on hot burn rate", rt.quantum)
	}
}

func TestControllerClassQuantaFollowBase(t *testing.T) {
	rt := newFakeRuntime(100*time.Microsecond, PolicyFCFS)
	cfg := testConfig()
	cfg.ClassScales = map[int]float64{1: 0.5, 2: 8.0}
	c := New(rt, cfg)

	// Seeded at New from the starting quantum, clamped to bounds.
	if got := rt.class[1]; got != 50*time.Microsecond {
		t.Fatalf("class 1 quantum = %v, want 50µs", got)
	}
	if got := rt.class[2]; got != cfg.MaxQuantum {
		t.Fatalf("class 2 quantum = %v, want clamp to %v", got, cfg.MaxQuantum)
	}

	// Base moves → class quanta re-derived.
	c.Step(Signals{P999: 300 * time.Microsecond})
	wantBase := time.Duration(float64(100*time.Microsecond) * quantumDecrease)
	if rt.quantum != wantBase {
		t.Fatalf("base quantum = %v, want %v", rt.quantum, wantBase)
	}
	if got := rt.class[1]; got != wantBase/2 {
		t.Fatalf("class 1 quantum = %v, want %v", got, wantBase/2)
	}
}

func TestNewNormalizesQuantum(t *testing.T) {
	// An unset quantum starts at the ceiling: adaptive servers always
	// run preemptible.
	rt := newFakeRuntime(0, PolicyFCFS)
	cfg := testConfig()
	New(rt, cfg)
	if rt.quantum != cfg.MaxQuantum {
		t.Fatalf("quantum = %v from unset, want %v", rt.quantum, cfg.MaxQuantum)
	}

	// Out-of-bounds starting quanta clamp.
	rt = newFakeRuntime(time.Microsecond, PolicyFCFS)
	New(rt, cfg)
	if rt.quantum != cfg.MinQuantum {
		t.Fatalf("quantum = %v from below-floor, want %v", rt.quantum, cfg.MinQuantum)
	}
}

// TestMeasuredClassQuantaFollowShifts: with a ClassSvcNS source the
// per-class quanta derive from measured service-time quantiles and
// track them as the workload shifts, overriding the static scales for
// measured classes and falling back for unmeasured ones.
func TestMeasuredClassQuantaFollowShifts(t *testing.T) {
	rt := newFakeRuntime(100*time.Microsecond, PolicyFCFS)
	cfg := testConfig()
	cfg.SLOTarget = 0 // hold the base quantum still; isolate class scaling
	cfg.ClassScales = map[int]float64{1: 0.5, 3: 2.0}
	svc := []float64{100_000, 0, 0, 0} // ns: only the default class measured yet
	cfg.ClassSvcNS = func() []float64 { return append([]float64(nil), svc...) }
	c := New(rt, cfg)

	// No measurements for classes 1/3 → static scales apply.
	if got := rt.class[1]; got != 50*time.Microsecond {
		t.Fatalf("unmeasured class 1 quantum = %v, want static 50µs", got)
	}
	if got := rt.class[3]; got != 200*time.Microsecond {
		t.Fatalf("unmeasured class 3 quantum = %v, want static 200µs", got)
	}

	// Measurements land: short runs at 1/4 the default, long at 4×.
	svc[1], svc[2] = 25_000, 400_000
	c.Step(Signals{})
	if got := rt.class[1]; got != 25*time.Microsecond {
		t.Fatalf("class 1 quantum = %v after measuring svc/4, want 25µs", got)
	}
	if got := rt.class[2]; got != 400*time.Microsecond {
		t.Fatalf("class 2 quantum = %v after measuring 4×svc, want 400µs", got)
	}

	// The workload shifts — short work doubles — and the quanta follow
	// without the base quantum moving.
	svc[1] = 50_000
	c.Step(Signals{})
	if got := rt.class[1]; got != 50*time.Microsecond {
		t.Fatalf("class 1 quantum = %v after shift, want 50µs", got)
	}
	if rt.quantum != 100*time.Microsecond {
		t.Fatalf("base quantum drifted to %v", rt.quantum)
	}

	// Extreme ratios clamp at the scale bounds (then the quantum bounds).
	svc[2] = 100_000_000 // 1000× the default class
	c.Step(Signals{})
	if got := rt.class[2]; got != cfg.MaxQuantum {
		t.Fatalf("class 2 quantum = %v at 1000× ratio, want clamp %v", got, cfg.MaxQuantum)
	}
}

// TestMeasuredClassQuantaNoDefaultAnchor: when the default class has no
// traffic the positive measurements anchor on their own mean.
func TestMeasuredClassQuantaNoDefaultAnchor(t *testing.T) {
	rt := newFakeRuntime(100*time.Microsecond, PolicyFCFS)
	cfg := testConfig()
	cfg.SLOTarget = 0
	// short 20µs, long 180µs → mean anchor 100µs → scales 0.2 / 1.8.
	cfg.ClassSvcNS = func() []float64 { return []float64{0, 20_000, 180_000} }
	c := New(rt, cfg)
	c.Step(Signals{})
	if got := rt.class[1]; got != 20*time.Microsecond {
		t.Fatalf("class 1 quantum = %v, want 20µs off the mean anchor", got)
	}
	if got := rt.class[2]; got != 180*time.Microsecond {
		t.Fatalf("class 2 quantum = %v, want 180µs off the mean anchor", got)
	}
}
