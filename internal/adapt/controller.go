package adapt

import (
	"sync"
	"time"

	"concord/internal/obs"
)

// Policy names the controller switches between — string-compatible with
// the live runtime's registry (adapt stays import-light on purpose; the
// Runtime interface is the only coupling).
const (
	PolicyFCFS = "fcfs"
	PolicySRPT = "srpt"
)

// Runtime is the actuator surface the controller drives, satisfied by
// *live.Server. Every method is safe to call while the server runs:
// the quantum knobs are atomics the dispatcher reads at signal time,
// and SetPolicy drain-and-swaps each shard's queue at a quiesce point.
type Runtime interface {
	SetQuantum(d time.Duration)
	Quantum() time.Duration
	SetClassQuantum(class int, d time.Duration)
	SetPolicy(name string) error
	Policy() string
}

// Config tunes the control loop. Zero values take the documented
// defaults.
type Config struct {
	// Interval is the control period — how often signals are sampled
	// and actuators re-evaluated. Default 50ms: glacial next to the
	// microsecond fast path, fast next to workload drift.
	Interval time.Duration
	// MinQuantum/MaxQuantum bound the adaptive preemption quantum.
	// Defaults 5µs / 500µs. On an adaptive server the quantum always
	// stays inside these bounds (an unset Options.Quantum starts at
	// MaxQuantum).
	MinQuantum, MaxQuantum time.Duration
	// SLOTarget is the tail-latency goal the quantum chases: the
	// controller tightens the quantum (multiplicative decrease) while
	// the rolling p99.9 exceeds it or the short SLO window burns hot,
	// and relaxes it (slower multiplicative increase) while p99.9 sits
	// below half the target. 0 disables quantum adaptation.
	SLOTarget time.Duration
	// CVHigh/CVLow are the service-time CV hysteresis thresholds for
	// policy switching around the §2 crossover at CV≈1 (exponential
	// service times): above CVHigh sustained dispersion favors SRPT,
	// below CVLow FCFS's no-reordering simplicity wins. Defaults
	// 1.15 / 0.85.
	CVHigh, CVLow float64
	// MinDwell is the shortest time between policy switches, so a
	// workload sitting near the threshold cannot thrash the queues.
	// Default 20×Interval.
	MinDwell time.Duration
	// Smoothing is the EWMA weight of the newest window's CV sample.
	// Default 0.3.
	Smoothing float64
	// MinSamples is the fewest service-time samples a window needs
	// before its CV moves the estimate. Default 16.
	MinSamples int64
	// ClassScales maps a scheduling class to a multiplier on the base
	// quantum (e.g. live.ClassCritical→0.5, live.ClassSheddable→4).
	// Scaled quanta are re-derived and clamped to [MinQuantum,
	// MaxQuantum] whenever the base quantum moves. Nil disables
	// per-class quanta.
	ClassScales map[int]float64
	// ClassTiers maps a class to its SLO tier (live.SLOClass.Tier) and
	// constrains the resolved scales: a tier-0 (critical) class's scale
	// is capped at 1 — its quantum is never looser than the base, no
	// matter what the measured service times say — and a tier ≥2
	// (sheddable) class's scale is floored at 1, so background traffic
	// never preempts more eagerly than the base. Nil applies no tier
	// constraints.
	ClassTiers map[int]int
	// ClassSvcNS, when set, supplies measured per-class service-time
	// quantiles in ns (index = class; 0 = no data for that class yet —
	// typically obs.ClassSketches.ServiceQuantilesNS). The controller
	// then derives each class's quantum scale from measurement instead
	// of the static ClassScales table: scale_c = svc_c / svc_default,
	// clamped to [1/16, 16], re-evaluated every tick so the quanta track
	// workload shifts. Classes without data (and ticks before any class
	// has data) fall back to ClassScales.
	ClassSvcNS func() []float64
	// DecisionLog is the capacity of the decision ring every Step
	// records into (see Decisions / WriteDecisionDump). Default 512;
	// negative disables retention (per-action counts still accumulate).
	DecisionLog int
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.MinQuantum <= 0 {
		c.MinQuantum = 5 * time.Microsecond
	}
	if c.MaxQuantum < c.MinQuantum {
		c.MaxQuantum = 100 * c.MinQuantum
	}
	if c.CVHigh <= 0 {
		c.CVHigh = 1.15
	}
	if c.CVLow <= 0 || c.CVLow > c.CVHigh {
		c.CVLow = 0.85
	}
	if c.MinDwell <= 0 {
		c.MinDwell = 20 * c.Interval
	}
	if c.Smoothing <= 0 || c.Smoothing > 1 {
		c.Smoothing = 0.3
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 16
	}
	if c.DecisionLog == 0 {
		c.DecisionLog = 512
	}
	if c.DecisionLog < 0 {
		c.DecisionLog = 0
	}
	return c
}

// AIMD factors for the quantum: tighten fast when the tail is blown,
// relax slowly when it is comfortably met.
const (
	quantumDecrease = 0.7
	quantumIncrease = 1.25
)

// Signals is one control period's sensor readings. Step is a pure
// function of Signals and controller state, so tests drive the loop
// deterministically without clocks or live servers.
type Signals struct {
	// P99 and P999 are rolling tail quantiles over the observation
	// window; zero means no traffic (quantum adaptation holds still).
	P99, P999 time.Duration
	// ShortBurn/LongBurn are SLO burn rates (obs.SLOSnapshot); zero
	// when no SLO is configured.
	ShortBurn, LongBurn float64
	// Rate is the completion rate over the window, req/s.
	Rate float64
	// SvcCount/SvcMeanNS/SvcCV are the drained service-time window.
	SvcCount  int64
	SvcMeanNS float64
	SvcCV     float64
	// RegretRatio is the shadow replayer's latest achieved-over-best
	// counterfactual p99 ratio (shadow.Result.RegretRatio): 1 = the
	// current policy is already the best evaluated one, 2 = the tail
	// could have been halved. 0 = no replay signal yet. Recorded in the
	// decision log as scheduling-quality context for every action.
	RegretRatio float64
}

// Status is a point-in-time view of the controller for metrics.
type Status struct {
	Policy         string
	Quantum        time.Duration
	CV             float64 // smoothed estimate
	Switches       uint64  // policy switches performed
	QuantumChanges uint64  // base-quantum adjustments performed
	Ticks          uint64
}

// Controller owns the control loop state. Construct with New, then
// either call Step per period with externally gathered Signals, or Run
// it against a TailTracker/CVEstimator pair.
type Controller struct {
	rt  Runtime
	cfg Config

	mu struct {
		sync.Mutex
		quantum        time.Duration
		cv             float64
		cvPrimed       bool
		ticks          uint64
		lastSwitchTick uint64
		dwellTicks     uint64
		switches       uint64
		quantumChanges uint64
	}

	// log is the per-tick decision ring (decision.go); guarded by c.mu
	// like the rest of the control state.
	log decisionLog
}

// New builds a controller and normalizes the runtime's starting point:
// the base quantum is clamped into [MinQuantum, MaxQuantum] (an
// adaptive server always runs preemptible) and per-class quanta are
// seeded from it.
func New(rt Runtime, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{rt: rt, cfg: cfg}
	q := rt.Quantum()
	if q <= 0 || q > cfg.MaxQuantum {
		q = cfg.MaxQuantum
	} else if q < cfg.MinQuantum {
		q = cfg.MinQuantum
	}
	c.mu.quantum = q
	c.mu.dwellTicks = uint64((cfg.MinDwell + cfg.Interval - 1) / cfg.Interval)
	if cfg.DecisionLog > 0 {
		c.log.buf = make([]Decision, cfg.DecisionLog)
	}
	rt.SetQuantum(q)
	c.applyClassQuanta(q)
	return c
}

// Config returns the controller's resolved configuration.
func (c *Controller) Config() Config { return c.cfg }

// Status snapshots the controller state for metrics export.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Status{
		Policy:         c.rt.Policy(),
		Quantum:        c.mu.quantum,
		CV:             c.mu.cv,
		Switches:       c.mu.switches,
		QuantumChanges: c.mu.quantumChanges,
		Ticks:          c.mu.ticks,
	}
}

// Step runs one control period: fold the window's CV into the smoothed
// estimate, re-select the policy under hysteresis and dwell, and walk
// the quantum by AIMD against the SLO target. Every tick — acting or
// holding — is recorded in the decision log with the inputs it saw.
func (c *Controller) Step(sig Signals) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mu.ticks++
	prevQuantum := c.mu.quantum
	act := ActHold

	// 1. Dispersion estimate: EWMA over windows with enough samples.
	if sig.SvcCount >= c.cfg.MinSamples {
		if !c.mu.cvPrimed {
			c.mu.cv, c.mu.cvPrimed = sig.SvcCV, true
		} else {
			a := c.cfg.Smoothing
			c.mu.cv = a*sig.SvcCV + (1-a)*c.mu.cv
		}
	}

	// 2. Policy selection with hysteresis and dwell. The §2 model says
	// SRPT-like size-aware ordering wins once service-time dispersion
	// passes the exponential crossover (CV ≈ 1); inside the hysteresis
	// band the incumbent stays.
	if c.mu.cvPrimed && c.mu.ticks-c.mu.lastSwitchTick >= c.mu.dwellTicks {
		switch pol := c.rt.Policy(); {
		case pol == PolicyFCFS && c.mu.cv > c.cfg.CVHigh:
			if c.rt.SetPolicy(PolicySRPT) == nil {
				c.mu.switches++
				c.mu.lastSwitchTick = c.mu.ticks
				act = ActSwitchSRPT
			}
		case pol == PolicySRPT && c.mu.cv < c.cfg.CVLow:
			if c.rt.SetPolicy(PolicyFCFS) == nil {
				c.mu.switches++
				c.mu.lastSwitchTick = c.mu.ticks
				act = ActSwitchFCFS
			}
		}
	}

	// 3. Quantum AIMD against the tail target. Only moves on real
	// traffic (P999 > 0): an idle window says nothing about the tail.
	if c.cfg.SLOTarget > 0 && sig.P999 > 0 {
		q := c.mu.quantum
		switch {
		case sig.P999 > c.cfg.SLOTarget || sig.ShortBurn > 1:
			q = time.Duration(float64(q) * quantumDecrease)
			if q < c.cfg.MinQuantum {
				q = c.cfg.MinQuantum
			}
		case sig.P999 < c.cfg.SLOTarget/2 && sig.ShortBurn <= 1:
			q = time.Duration(float64(q) * quantumIncrease)
			if q > c.cfg.MaxQuantum {
				q = c.cfg.MaxQuantum
			}
		}
		if q != c.mu.quantum {
			c.mu.quantum = q
			c.mu.quantumChanges++
			c.rt.SetQuantum(q)
			c.applyClassQuanta(q)
			if act == ActHold { // a policy switch stays the headline action
				if q < prevQuantum {
					act = ActTighten
				} else {
					act = ActRelax
				}
			}
		}
	}

	// 4. Per-class quanta: with a measured source the scales drift with
	// the workload, so re-derive every tick (not just on base moves).
	if c.cfg.ClassSvcNS != nil {
		c.applyClassQuanta(c.mu.quantum)
	}

	c.log.record(Decision{
		Tick:          c.mu.ticks,
		CV:            c.mu.cv,
		WindowCV:      sig.SvcCV,
		SvcCount:      sig.SvcCount,
		P99US:         float64(sig.P99) / float64(time.Microsecond),
		P999US:        float64(sig.P999) / float64(time.Microsecond),
		ShortBurn:     sig.ShortBurn,
		LongBurn:      sig.LongBurn,
		RateRPS:       sig.Rate,
		RegretRatio:   sig.RegretRatio,
		Action:        act,
		Policy:        c.rt.Policy(),
		PrevQuantumUS: float64(prevQuantum) / float64(time.Microsecond),
		QuantumUS:     float64(c.mu.quantum) / float64(time.Microsecond),
	})
}

// Bounds on a measurement-derived class scale: a class measured 100×
// the default still only stretches its quantum 16× — the quantum is a
// preemption grain, not a service-time mirror.
const (
	minClassScale = 1.0 / 16
	maxClassScale = 16.0
)

// applyClassQuanta re-derives per-class quanta from the base. Callers
// hold c.mu (or are in New, before the controller is shared).
func (c *Controller) applyClassQuanta(base time.Duration) {
	for class, scale := range c.classScales() {
		if tier, ok := c.cfg.ClassTiers[class]; ok {
			if tier == 0 && scale > 1 {
				scale = 1 // critical never runs a looser quantum than base
			}
			if tier >= 2 && scale < 1 {
				scale = 1 // sheddable never preempts tighter than base
			}
		}
		q := time.Duration(float64(base) * scale)
		if q < c.cfg.MinQuantum {
			q = c.cfg.MinQuantum
		}
		if q > c.cfg.MaxQuantum {
			q = c.cfg.MaxQuantum
		}
		c.rt.SetClassQuantum(class, q)
	}
}

// classScales resolves the per-class scale table: measured service-time
// quantiles when a ClassSvcNS source is set and has data, the static
// ClassScales entries for classes the measurement can't speak for.
func (c *Controller) classScales() map[int]float64 {
	if c.cfg.ClassSvcNS == nil {
		return c.cfg.ClassScales
	}
	svc := c.cfg.ClassSvcNS()
	ref := 0.0
	if len(svc) > 0 {
		ref = svc[0] // class 0 (default) anchors the base quantum
	}
	if ref <= 0 {
		// No default-class data: anchor on the mean of the classes that
		// do have data, so a workload with only short/long traffic still
		// gets relative scaling.
		var sum float64
		var n int
		for _, v := range svc {
			if v > 0 {
				sum += v
				n++
			}
		}
		if n == 0 {
			return c.cfg.ClassScales // no measurements at all yet
		}
		ref = sum / float64(n)
	}
	scales := make(map[int]float64, len(svc))
	for class, v := range svc {
		if v <= 0 {
			if s, ok := c.cfg.ClassScales[class]; ok {
				scales[class] = s // unmeasured class keeps its static scale
			}
			continue
		}
		s := v / ref
		if s < minClassScale {
			s = minClassScale
		}
		if s > maxClassScale {
			s = maxClassScale
		}
		scales[class] = s
	}
	return scales
}

// Sources are the sensors Run samples each period. Tail may be nil
// (no quantum adaptation signal); CV must be set. Regret, when set,
// supplies the shadow replayer's latest regret ratio for the decision
// log (e.g. a closure over shadow.Replayer.Latest).
type Sources struct {
	Tail   *obs.TailTracker
	CV     *CVEstimator
	Regret func() float64
}

// Run drives the control loop on a ticker until stop closes. The
// shortest configured tail window is the observation horizon.
func (c *Controller) Run(src Sources, stop <-chan struct{}) {
	tick := time.NewTicker(c.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			c.Step(c.gather(src))
		}
	}
}

// gather samples the sensors into one Signals reading.
func (c *Controller) gather(src Sources) Signals {
	var sig Signals
	if src.CV != nil {
		sig.SvcCount, sig.SvcMeanNS, sig.SvcCV = src.CV.TakeWindow()
	}
	if src.Regret != nil {
		sig.RegretRatio = src.Regret()
	}
	if t := src.Tail; t != nil {
		win := t.Windows()[0]
		if p99 := t.Quantile(win, 0.99); p99 > 0 {
			sig.P99 = time.Duration(p99 * float64(time.Microsecond))
		}
		if p999 := t.Quantile(win, 0.999); p999 > 0 {
			sig.P999 = time.Duration(p999 * float64(time.Microsecond))
		}
		sig.Rate = t.Window().Rate(win)
		if slo := t.SLO(); slo != nil {
			snap := slo.Snapshot()
			sig.ShortBurn, sig.LongBurn = snap.ShortBurn, snap.LongBurn
		}
	}
	return sig
}
