package adapt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// decisionConfig keeps dwell short (3 ticks) so policy switches are
// reachable in a few Steps.
func decisionConfig() Config {
	cfg := testConfig()
	cfg.DecisionLog = 64
	return cfg
}

func TestDecisionActionClassification(t *testing.T) {
	rt := newFakeRuntime(100*time.Microsecond, PolicyFCFS)
	c := New(rt, decisionConfig())

	// Ticks 1-2 prime the CV but sit inside the dwell; tick 3 switches
	// to SRPT and — P999 over target on the same tick — also tightens
	// the quantum. The switch must stay the headline action.
	c.Step(cvSignals(5))
	c.Step(cvSignals(5))
	hot := cvSignals(5)
	hot.P999 = 400 * time.Microsecond
	c.Step(hot)
	// Tick 4: pure quantum tighten (still hot, dwell blocks switching).
	c.Step(Signals{P999: 400 * time.Microsecond})
	// Tick 5: comfortable tail relaxes the quantum.
	c.Step(Signals{P999: 50 * time.Microsecond})
	// Tick 6: idle window holds everything still.
	c.Step(Signals{})

	decs := c.Decisions(0)
	if len(decs) != 6 {
		t.Fatalf("got %d decisions, want 6", len(decs))
	}
	wantActions := []Action{ActHold, ActHold, ActSwitchSRPT, ActTighten, ActRelax, ActHold}
	for i, d := range decs {
		if d.Action != wantActions[i] {
			t.Errorf("tick %d action = %v, want %v", d.Tick, d.Action, wantActions[i])
		}
		if d.Tick != uint64(i+1) {
			t.Errorf("decision %d tick = %d, want %d", i, d.Tick, i+1)
		}
	}
	if sw := decs[2]; sw.Policy != PolicySRPT || sw.QuantumUS >= sw.PrevQuantumUS {
		t.Errorf("switch tick must record the new policy and the quantum move it rode along with: %+v", sw)
	}
	if decs[3].QuantumUS >= decs[3].PrevQuantumUS {
		t.Errorf("tighten did not shrink the quantum: %+v", decs[3])
	}
	if decs[4].QuantumUS <= decs[4].PrevQuantumUS {
		t.Errorf("relax did not grow the quantum: %+v", decs[4])
	}

	counts := c.DecisionCounts()
	want := [NumActions]uint64{ActHold: 3, ActTighten: 1, ActRelax: 1, ActSwitchSRPT: 1}
	if counts != want {
		t.Fatalf("counts = %v, want %v", counts, want)
	}
}

func TestDecisionRingWrap(t *testing.T) {
	cfg := decisionConfig()
	cfg.DecisionLog = 4
	c := New(newFakeRuntime(100*time.Microsecond, PolicyFCFS), cfg)
	for i := 0; i < 10; i++ {
		c.Step(Signals{})
	}
	decs := c.Decisions(0)
	if len(decs) != 4 {
		t.Fatalf("retained %d decisions, want 4 (ring capacity)", len(decs))
	}
	for i, d := range decs {
		if want := uint64(7 + i); d.Tick != want {
			t.Fatalf("decision %d tick = %d, want %d (oldest dropped first)", i, d.Tick, want)
		}
	}
	newest := c.Decisions(2)
	if len(newest) != 2 || newest[0].Tick != 9 || newest[1].Tick != 10 {
		t.Fatalf("Decisions(2) = %+v, want ticks 9,10", newest)
	}
	var total uint64
	for _, n := range c.DecisionCounts() {
		total += n
	}
	if total != 10 {
		t.Fatalf("counts survive wrap: total = %d, want 10", total)
	}
}

func TestDecisionLogDisabled(t *testing.T) {
	cfg := decisionConfig()
	cfg.DecisionLog = -1
	c := New(newFakeRuntime(100*time.Microsecond, PolicyFCFS), cfg)
	for i := 0; i < 3; i++ {
		c.Step(Signals{})
	}
	if decs := c.Decisions(0); len(decs) != 0 {
		t.Fatalf("disabled log retained %d decisions", len(decs))
	}
	if counts := c.DecisionCounts(); counts[ActHold] != 3 {
		t.Fatalf("per-action counts must accumulate without retention: %v", counts)
	}
}

func TestDecisionStringAndDumpRoundTrip(t *testing.T) {
	rt := newFakeRuntime(100*time.Microsecond, PolicyFCFS)
	c := New(rt, decisionConfig())
	c.Step(cvSignals(5))
	c.Step(cvSignals(5))
	c.Step(cvSignals(5)) // switch tick
	c.Step(Signals{P999: 400 * time.Microsecond, ShortBurn: 3.5, Rate: 1200})

	for _, d := range c.Decisions(0) {
		line := d.String()
		for _, key := range []string{"tick=", "action=", "policy=", "quantum_us=", "prev_quantum_us=", "cv=", "svc_n=", "p99_us=", "p999_us=", "burn_short=", "burn_long=", "rate="} {
			if !strings.Contains(line, key) {
				t.Fatalf("decision line missing %q: %q", key, line)
			}
		}
	}

	var buf bytes.Buffer
	if err := WriteDecisionDump(&buf, 50*time.Millisecond, c.Decisions(0)); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Schema     int     `json:"schema"`
		IntervalMS float64 `json:"interval_ms"`
		Decisions  []struct {
			Tick      uint64  `json:"tick"`
			Action    string  `json:"action"`
			Policy    string  `json:"policy"`
			QuantumUS float64 `json:"quantum_us"`
			ShortBurn float64 `json:"burn_short"`
			RateRPS   float64 `json:"rate_rps"`
		} `json:"decisions"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if dump.Schema != 1 || dump.IntervalMS != 50 {
		t.Fatalf("dump header = %+v", dump)
	}
	if len(dump.Decisions) != 4 {
		t.Fatalf("dump has %d decisions, want 4", len(dump.Decisions))
	}
	if d := dump.Decisions[2]; d.Action != "switch_srpt" || d.Policy != PolicySRPT {
		t.Fatalf("actions must serialize as names: %+v", d)
	}
	if d := dump.Decisions[3]; d.ShortBurn != 3.5 || d.RateRPS != 1200 {
		t.Fatalf("inputs lost in dump: %+v", d)
	}
}

func TestActionStrings(t *testing.T) {
	for a := Action(0); a < NumActions; a++ {
		if a.String() == "unknown" {
			t.Fatalf("action %d has no name", a)
		}
	}
	if Action(200).String() != "unknown" {
		t.Fatal("out-of-range action should render unknown")
	}
}
