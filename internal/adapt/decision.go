// The controller's decision log: a fixed-size allocation-free ring that
// records every control tick's inputs and action, so "why did it flip
// to SRPT at t=3.2s?" is answerable from a dump instead of a debugger.
// Recording happens inside Step under the controller mutex — 20Hz, not
// the request hot path — and writes one preallocated slot; rendering
// (text for the DECISIONS control verb, JSON for -decisiondump) only
// runs on demand.
package adapt

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Action classifies what one control tick did. A tick that both
// switches policy and moves the quantum records the policy switch (the
// rarer, larger move); the quantum columns still show the change.
type Action uint8

const (
	ActHold       Action = iota // no actuator moved
	ActTighten                  // quantum multiplicative decrease
	ActRelax                    // quantum multiplicative increase
	ActSwitchSRPT               // policy switched fcfs → srpt
	ActSwitchFCFS               // policy switched srpt → fcfs

	// NumActions bounds per-action counter tables.
	NumActions
)

var actionNames = [NumActions]string{
	ActHold:       "hold",
	ActTighten:    "tighten",
	ActRelax:      "relax",
	ActSwitchSRPT: "switch_srpt",
	ActSwitchFCFS: "switch_fcfs",
}

func (a Action) String() string {
	if int(a) < len(actionNames) {
		return actionNames[a]
	}
	return "unknown"
}

// MarshalJSON renders the action as its name; allocation happens only
// at dump time, never at record time.
func (a Action) MarshalJSON() ([]byte, error) {
	return json.Marshal(a.String())
}

// Decision is one control tick's record: every input Step consulted and
// the action it took. Tick × Config.Interval locates it in time.
type Decision struct {
	Tick uint64 `json:"tick"`

	// Inputs.
	CV        float64 `json:"cv"`        // smoothed estimate after folding this window
	WindowCV  float64 `json:"window_cv"` // this window's raw CV sample
	SvcCount  int64   `json:"svc_count"` // service-time samples in the window
	P99US     float64 `json:"p99_us"`
	P999US    float64 `json:"p999_us"`
	ShortBurn float64 `json:"burn_short"`
	LongBurn  float64 `json:"burn_long"`
	RateRPS   float64 `json:"rate_rps"`
	// RegretRatio is the shadow replayer's latest achieved/best-
	// counterfactual p99 ratio at this tick (0 = no replay signal).
	RegretRatio float64 `json:"regret_ratio"`

	// Action and resulting state.
	Action        Action  `json:"action"`
	Policy        string  `json:"policy"` // after the tick
	PrevQuantumUS float64 `json:"prev_quantum_us"`
	QuantumUS     float64 `json:"quantum_us"`
}

// String renders the decision as one key=value line for the DECISIONS
// control verb.
func (d Decision) String() string {
	return fmt.Sprintf(
		"tick=%d action=%s policy=%s quantum_us=%.1f prev_quantum_us=%.1f cv=%.3f window_cv=%.3f svc_n=%d p99_us=%.1f p999_us=%.1f burn_short=%.2f burn_long=%.2f rate=%.1f regret=%.2f",
		d.Tick, d.Action, d.Policy, d.QuantumUS, d.PrevQuantumUS,
		d.CV, d.WindowCV, d.SvcCount, d.P99US, d.P999US,
		d.ShortBurn, d.LongBurn, d.RateRPS, d.RegretRatio)
}

// decisionLog is the ring itself. Guarded by the controller mutex; buf
// is preallocated at New so record never allocates.
type decisionLog struct {
	buf    []Decision
	total  uint64
	counts [NumActions]uint64
}

func (l *decisionLog) record(d Decision) {
	l.counts[d.Action]++
	if len(l.buf) == 0 {
		return
	}
	l.buf[l.total%uint64(len(l.buf))] = d
	l.total++
}

// snapshot copies out the newest n retained decisions (all of them when
// n <= 0), oldest first.
func (l *decisionLog) snapshot(n int) []Decision {
	retained := l.total
	if max := uint64(len(l.buf)); retained > max {
		retained = max
	}
	if n > 0 && uint64(n) < retained {
		retained = uint64(n)
	}
	out := make([]Decision, 0, retained)
	for i := l.total - retained; i < l.total; i++ {
		out = append(out, l.buf[i%uint64(len(l.buf))])
	}
	return out
}

// Decisions returns the controller's most recent n decisions (all
// retained when n <= 0), oldest first. Safe to call while the control
// loop runs.
func (c *Controller) Decisions(n int) []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.log.snapshot(n)
}

// DecisionCounts returns how many decisions of each action the
// controller has taken since start (counted even when the ring has
// wrapped past them).
func (c *Controller) DecisionCounts() [NumActions]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.log.counts
}

// decisionDump is the -decisiondump file schema. Interval lets a reader
// place tick numbers in time.
type decisionDump struct {
	Schema     int        `json:"schema"`
	IntervalMS float64    `json:"interval_ms"`
	Decisions  []Decision `json:"decisions"`
}

// WriteDecisionDump renders decisions as the versioned JSON dump format
// consumed by offline tooling.
func WriteDecisionDump(w io.Writer, interval time.Duration, decs []Decision) error {
	enc := json.NewEncoder(w)
	return enc.Encode(decisionDump{
		Schema:     1,
		IntervalMS: float64(interval) / float64(time.Millisecond),
		Decisions:  decs,
	})
}
