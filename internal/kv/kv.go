// Package kv implements the in-memory ordered key-value store that backs
// the live examples: a LevelDB-style memtable (concurrent-read skiplist
// under a mutex for writes) supporting point queries (Get/Put/Delete) and
// range queries (Scan), the two request classes of the paper's LevelDB
// evaluation (§5.3).
//
// Like LevelDB, point operations take the store's mutex briefly while
// scans iterate a consistent view without blocking writers for the whole
// scan. The store exposes LockHeld callbacks so a scheduling runtime can
// defer preemption while the mutex is held (§3.1's safety-first
// preemption).
package kv

import (
	"bytes"
	"sync"

	"concord/internal/sim"
)

const (
	maxHeight = 12
	branching = 4
)

type node struct {
	key   []byte
	value []byte
	// tombstone marks deleted keys until compaction drops them.
	tombstone bool
	next      [maxHeight]*node
	height    int
}

// Store is an ordered in-memory key-value store.
type Store struct {
	mu   sync.RWMutex
	head *node
	rng  *sim.RNG
	len  int // live (non-tombstone) keys

	// onLock/onUnlock, when set, bracket every mutex acquisition so a
	// runtime can defer preemption inside critical sections.
	onLock   func()
	onUnlock func()
}

// New returns an empty store.
func New() *Store {
	return &Store{
		head: &node{height: maxHeight},
		rng:  sim.NewRNG(0x9e3779b97f4a7c15),
	}
}

// SetLockHooks registers callbacks invoked immediately after the store's
// mutex is acquired and immediately before it is released. The Concord
// paper adds exactly such a 4-line counter to LevelDB so the runtime
// never preempts a lock holder (§3.1).
func (s *Store) SetLockHooks(onLock, onUnlock func()) {
	s.onLock = onLock
	s.onUnlock = onUnlock
}

func (s *Store) lock() {
	s.mu.Lock()
	if s.onLock != nil {
		s.onLock()
	}
}

func (s *Store) unlock() {
	if s.onUnlock != nil {
		s.onUnlock()
	}
	s.mu.Unlock()
}

func (s *Store) rlock() {
	s.mu.RLock()
	if s.onLock != nil {
		s.onLock()
	}
}

func (s *Store) runlock() {
	if s.onUnlock != nil {
		s.onUnlock()
	}
	s.mu.RUnlock()
}

func (s *Store) randomHeight() int {
	h := 1
	for h < maxHeight && s.rng.Intn(branching) == 0 {
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with key >= target, filling
// prev with the rightmost node before it at every level.
func (s *Store) findGreaterOrEqual(key []byte, prev *[maxHeight]*node) *node {
	x := s.head
	for level := maxHeight - 1; level >= 0; level-- {
		for x.next[level] != nil && bytes.Compare(x.next[level].key, key) < 0 {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// Get returns the value stored for key. The returned slice must not be
// modified by the caller.
func (s *Store) Get(key []byte) ([]byte, bool) {
	s.rlock()
	defer s.runlock()
	n := s.findGreaterOrEqual(key, nil)
	if n == nil || n.tombstone || !bytes.Equal(n.key, key) {
		return nil, false
	}
	return n.value, true
}

// Put stores value under key, replacing any existing value. The store
// keeps its own copies of key and value.
func (s *Store) Put(key, value []byte) {
	s.lock()
	defer s.unlock()
	s.put(key, value)
}

func (s *Store) put(key, value []byte) {
	var prev [maxHeight]*node
	n := s.findGreaterOrEqual(key, &prev)
	if n != nil && bytes.Equal(n.key, key) {
		if n.tombstone {
			n.tombstone = false
			s.len++
		}
		n.value = append([]byte(nil), value...)
		return
	}
	h := s.randomHeight()
	nn := &node{
		key:    append([]byte(nil), key...),
		value:  append([]byte(nil), value...),
		height: h,
	}
	for level := 0; level < h; level++ {
		nn.next[level] = prev[level].next[level]
		prev[level].next[level] = nn
	}
	s.len++
}

// Delete removes key. It reports whether the key was present.
func (s *Store) Delete(key []byte) bool {
	s.lock()
	defer s.unlock()
	n := s.findGreaterOrEqual(key, nil)
	if n == nil || n.tombstone || !bytes.Equal(n.key, key) {
		return false
	}
	n.tombstone = true
	n.value = nil
	s.len--
	return true
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.rlock()
	defer s.runlock()
	return s.len
}

// Scan visits every live key in [start, end) in order, calling fn for
// each; fn returning false stops the scan. A nil end scans to the last
// key. The scan holds the store's read lock, so fn must be fast — or the
// caller must poll for preemption between batches via ScanBatch.
func (s *Store) Scan(start, end []byte, fn func(key, value []byte) bool) {
	s.rlock()
	defer s.runlock()
	n := s.findGreaterOrEqual(start, nil)
	for n != nil {
		if end != nil && bytes.Compare(n.key, end) >= 0 {
			return
		}
		if !n.tombstone {
			if !fn(n.key, n.value) {
				return
			}
		}
		n = n.next[0]
	}
}

// ScanBatch visits live keys starting at start, up to batch of them, and
// returns the key to resume from (nil when the scan is complete). It lets
// a cooperative runtime interleave preemption polls between batches
// instead of holding the read lock for a whole database scan.
func (s *Store) ScanBatch(start []byte, batch int, fn func(key, value []byte) bool) (resume []byte) {
	if batch <= 0 {
		batch = 64
	}
	s.rlock()
	defer s.runlock()
	n := s.findGreaterOrEqual(start, nil)
	seen := 0
	for n != nil {
		if seen == batch {
			return append([]byte(nil), n.key...)
		}
		if !n.tombstone {
			if !fn(n.key, n.value) {
				return nil
			}
			seen++
		}
		n = n.next[0]
	}
	return nil
}

// Batch applies a set of writes atomically under one lock acquisition.
type Batch struct {
	puts    [][2][]byte
	deletes [][]byte
}

// Put queues a write into the batch.
func (b *Batch) Put(key, value []byte) {
	b.puts = append(b.puts, [2][]byte{key, value})
}

// Delete queues a deletion into the batch.
func (b *Batch) Delete(key []byte) {
	b.deletes = append(b.deletes, key)
}

// Apply runs the batch against the store.
func (s *Store) Apply(b *Batch) {
	s.lock()
	defer s.unlock()
	for _, p := range b.puts {
		s.put(p[0], p[1])
	}
	for _, k := range b.deletes {
		n := s.findGreaterOrEqual(k, nil)
		if n != nil && !n.tombstone && bytes.Equal(n.key, k) {
			n.tombstone = true
			n.value = nil
			s.len--
		}
	}
}
