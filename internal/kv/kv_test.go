package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestGetPutDelete(t *testing.T) {
	s := New()
	if _, ok := s.Get([]byte("a")); ok {
		t.Fatal("empty store returned a value")
	}
	s.Put([]byte("a"), []byte("1"))
	v, ok := s.Get([]byte("a"))
	if !ok || string(v) != "1" {
		t.Fatalf("Get = %q %v, want 1 true", v, ok)
	}
	s.Put([]byte("a"), []byte("2"))
	if v, _ := s.Get([]byte("a")); string(v) != "2" {
		t.Fatalf("overwrite failed: %q", v)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if !s.Delete([]byte("a")) {
		t.Fatal("Delete of present key returned false")
	}
	if _, ok := s.Get([]byte("a")); ok {
		t.Fatal("deleted key still readable")
	}
	if s.Delete([]byte("a")) {
		t.Fatal("double-delete returned true")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after delete, want 0", s.Len())
	}
}

func TestPutAfterDeleteRevives(t *testing.T) {
	s := New()
	s.Put([]byte("k"), []byte("v1"))
	s.Delete([]byte("k"))
	s.Put([]byte("k"), []byte("v2"))
	v, ok := s.Get([]byte("k"))
	if !ok || string(v) != "v2" {
		t.Fatalf("revived key = %q %v", v, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestScanOrderAndBounds(t *testing.T) {
	s := New()
	keys := []string{"d", "a", "c", "e", "b"}
	for _, k := range keys {
		s.Put([]byte(k), []byte("v"+k))
	}
	s.Delete([]byte("c"))

	var got []string
	s.Scan([]byte("a"), nil, func(k, v []byte) bool {
		got = append(got, string(k))
		if string(v) != "v"+string(k) {
			t.Errorf("key %s has value %s", k, v)
		}
		return true
	})
	want := []string{"a", "b", "d", "e"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}

	got = nil
	s.Scan([]byte("b"), []byte("e"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if fmt.Sprint(got) != fmt.Sprint([]string{"b", "d"}) {
		t.Fatalf("bounded scan = %v", got)
	}

	// Early stop.
	got = nil
	s.Scan(nil, nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return len(got) < 2
	})
	if len(got) != 2 {
		t.Fatalf("early-stop scan visited %d keys", len(got))
	}
}

func TestScanBatchResume(t *testing.T) {
	s := New()
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte{byte(i)})
	}
	var got []string
	cursor := []byte(nil)
	rounds := 0
	for {
		cursor = s.ScanBatch(cursor, 7, func(k, v []byte) bool {
			got = append(got, string(k))
			return true
		})
		rounds++
		if cursor == nil {
			break
		}
	}
	if len(got) != 100 {
		t.Fatalf("batch scan visited %d keys, want 100", len(got))
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("batch scan out of order")
	}
	if rounds < 100/7 {
		t.Fatalf("only %d rounds for 100 keys at batch 7", rounds)
	}
}

func TestBatchAtomicApply(t *testing.T) {
	s := New()
	s.Put([]byte("gone"), []byte("x"))
	var b Batch
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("gone"))
	s.Apply(&b)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if _, ok := s.Get([]byte("gone")); ok {
		t.Fatal("batched delete did not apply")
	}
	if v, _ := s.Get([]byte("b")); string(v) != "2" {
		t.Fatal("batched put did not apply")
	}
}

func TestLockHooksBracketOperations(t *testing.T) {
	s := New()
	var depth, maxDepth, events int
	s.SetLockHooks(
		func() {
			depth++
			events++
			if depth > maxDepth {
				maxDepth = depth
			}
		},
		func() { depth-- },
	)
	s.Put([]byte("a"), []byte("1"))
	s.Get([]byte("a"))
	s.Delete([]byte("a"))
	s.Scan(nil, nil, func(k, v []byte) bool { return true })
	if depth != 0 {
		t.Fatalf("unbalanced lock hooks: depth %d", depth)
	}
	if events != 4 {
		t.Fatalf("lock hook fired %d times, want 4", events)
	}
	if maxDepth != 1 {
		t.Fatalf("nested lock depth %d", maxDepth)
	}
}

// Property: the store agrees with a map reference model under random
// operation sequences.
func TestStoreMatchesReferenceModel(t *testing.T) {
	type opT struct {
		Kind  uint8
		Key   uint8
		Value uint8
	}
	prop := func(ops []opT) bool {
		s := New()
		ref := map[string]string{}
		for _, op := range ops {
			k := []byte{op.Key % 32}
			v := []byte{op.Value}
			switch op.Kind % 3 {
			case 0:
				s.Put(k, v)
				ref[string(k)] = string(v)
			case 1:
				got := s.Delete(k)
				_, want := ref[string(k)]
				if got != want {
					return false
				}
				delete(ref, string(k))
			case 2:
				got, ok := s.Get(k)
				want, wok := ref[string(k)]
				if ok != wok || (ok && string(got) != want) {
					return false
				}
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		// Full scan equals the sorted reference.
		var keys []string
		s.Scan(nil, nil, func(k, v []byte) bool {
			keys = append(keys, string(k))
			if ref[string(k)] != string(v) {
				keys = append(keys, "MISMATCH")
			}
			return true
		})
		if len(keys) != len(ref) || !sort.StringsAreSorted(keys) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := New()
	for i := 0; i < 1000; i++ {
		s.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v"))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := []byte(fmt.Sprintf("k%04d", r.Intn(1000)))
				switch r.Intn(3) {
				case 0:
					s.Get(k)
				case 1:
					s.Put(k, []byte("w"))
				case 2:
					s.Scan(k, nil, func(_, _ []byte) bool { return false })
				}
			}
		}(int64(g))
	}
	for i := 0; i < 50000; i++ {
		s.Get([]byte("k0500"))
	}
	close(stop)
	wg.Wait()
	// Deleting every key must leave an empty store regardless of the
	// interleaving that happened above.
	for i := 0; i < 1000; i++ {
		s.Delete([]byte(fmt.Sprintf("k%04d", i)))
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", s.Len())
	}
}

func TestValueIsolation(t *testing.T) {
	s := New()
	key := []byte("k")
	val := []byte("mutable")
	s.Put(key, val)
	val[0] = 'X' // caller mutates its buffer after Put
	got, _ := s.Get(key)
	if !bytes.Equal(got, []byte("mutable")) {
		t.Fatalf("store aliased caller's buffer: %q", got)
	}
}

func BenchmarkGet(b *testing.B) {
	s := New()
	for i := 0; i < 15000; i++ {
		s.Put([]byte(fmt.Sprintf("key%05d", i)), bytes.Repeat([]byte("v"), 64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get([]byte("key07500"))
	}
}

func BenchmarkPut(b *testing.B) {
	s := New()
	keys := make([][]byte, 4096)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key%05d", i))
	}
	v := bytes.Repeat([]byte("v"), 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(keys[i%len(keys)], v)
	}
}

func BenchmarkScanFull(b *testing.B) {
	s := New()
	for i := 0; i < 15000; i++ {
		s.Put([]byte(fmt.Sprintf("key%05d", i)), bytes.Repeat([]byte("v"), 16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.Scan(nil, nil, func(_, _ []byte) bool { n++; return true })
		if n != 15000 {
			b.Fatalf("scan saw %d keys", n)
		}
	}
}
