// Package figures regenerates every table and figure in the paper's
// evaluation (§2 Figs. 2–3, §3 Fig. 5, §5 Figs. 6–15 and Table 1). Each
// generator returns a typed Table whose rows mirror the series the paper
// plots; cmd/concordsim prints them and bench_test.go wraps each one in a
// testing.B benchmark.
package figures

import (
	"fmt"
	"math"
	"strings"

	"concord/internal/runner"
)

// Table is the numeric payload behind one figure or table.
type Table struct {
	// ID is the paper's label, e.g. "fig6" or "table1".
	ID string
	// Title describes the experiment.
	Title string
	// Columns names each column; the first is the x-axis.
	Columns []string
	// Rows holds the data, one row per x-position.
	Rows [][]float64
	// RowLabels optionally names each row (used by Table 1, where rows
	// are benchmarks rather than load points).
	RowLabels []string
	// Notes records workload, parameters, and interpretation hints.
	Notes string
}

// TSV renders the table as tab-separated values with a header.
func (t Table) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", t.ID, t.Title)
	if t.Notes != "" {
		for _, line := range strings.Split(t.Notes, "\n") {
			fmt.Fprintf(&b, "# %s\n", line)
		}
	}
	if len(t.RowLabels) > 0 {
		b.WriteString("name\t")
	}
	b.WriteString(strings.Join(t.Columns, "\t"))
	b.WriteByte('\n')
	for r, row := range t.Rows {
		if len(t.RowLabels) > 0 {
			b.WriteString(t.RowLabels[r])
			b.WriteByte('\t')
		}
		for i, v := range row {
			if i > 0 {
				b.WriteByte('\t')
			}
			switch {
			case math.IsInf(v, 1):
				b.WriteString("inf")
			case math.IsNaN(v):
				b.WriteString("nan")
			case v == math.Trunc(v) && math.Abs(v) < 1e9:
				fmt.Fprintf(&b, "%.0f", v)
			default:
				fmt.Fprintf(&b, "%.4g", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Column returns the index of the named column, or -1.
func (t Table) Column(name string) int {
	for i, c := range t.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// Options scales experiment fidelity. The zero value requests
// paper-fidelity runs; tests and benchmarks pass Quick() to trade
// precision for speed.
type Options struct {
	// Requests per load point (0 = per-figure default).
	Requests int
	// Workers overrides the paper's 14-worker setup when positive.
	Workers int
	// Seed for reproducibility; 0 means 1.
	Seed uint64
	// LoadPoints, when positive, thins each sweep to about this many
	// x-positions.
	LoadPoints int
	// Parallel bounds the number of concurrent simulation runs while
	// regenerating a figure (0 = GOMAXPROCS, 1 = serial). Parallelism
	// never changes a figure's numbers: every run's seed is a pure
	// function of (Seed, system index, load index) and results are
	// reassembled in grid order (see internal/runner).
	Parallel int
}

// Quick returns options for fast, reduced-fidelity runs (unit tests and
// smoke benchmarks). Tail percentiles get noisy but orderings hold.
func Quick() Options {
	return Options{Requests: 20000, LoadPoints: 6}
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return 14
}

func (o Options) requests(def int) int {
	if o.Requests > 0 {
		return o.Requests
	}
	return def
}

// pool returns the experiment runner for this fidelity setting.
func (o Options) pool() *runner.Runner {
	return runner.New(o.Parallel)
}

func (o Options) thin(loads []float64) []float64 {
	if o.LoadPoints <= 0 || len(loads) <= o.LoadPoints {
		return loads
	}
	out := make([]float64, 0, o.LoadPoints)
	for i := 0; i < o.LoadPoints; i++ {
		idx := i * (len(loads) - 1) / (o.LoadPoints - 1)
		out = append(out, loads[idx])
	}
	return out
}

// Generator produces one figure's table.
type Generator func(Options) Table

// All maps figure IDs to generators, in paper order.
func All() map[string]Generator {
	return map[string]Generator{
		"fig2":   Fig2,
		"fig3":   Fig3,
		"fig5":   Fig5,
		"fig6":   Fig6,
		"fig7":   Fig7,
		"fig8a":  Fig8a,
		"fig8b":  Fig8b,
		"fig9":   Fig9,
		"fig10":  Fig10,
		"fig11":  Fig11,
		"fig12":  Fig12,
		"fig13":  Fig13,
		"fig14":  Fig14,
		"fig15":  Fig15,
		"table1": Table1,
		// Extensions: ablation studies for the design choices DESIGN.md
		// calls out, beyond the paper's own figures.
		"ablation-jbsq-depth": AblationJBSQDepth,
		"ablation-policy":     AblationPolicy,
		"ablation-defer":      AblationDeferWholeRequest,
		"ablation-logical":    AblationLogicalQueue,
	}
}

// IDs returns the generator keys in paper order, extensions last.
func IDs() []string {
	return []string{
		"fig2", "fig3", "fig5", "fig6", "fig7", "fig8a", "fig8b",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "table1",
		"ablation-jbsq-depth", "ablation-policy", "ablation-defer",
		"ablation-logical",
	}
}
