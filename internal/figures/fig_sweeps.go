package figures

import (
	"fmt"

	"concord/internal/cost"
	"concord/internal/server"
	"concord/internal/stats"
	"concord/internal/workload"
)

// sweepDefaults maps workload names to default request counts: scan-heavy
// workloads generate hundreds of events per request, so they run with
// fewer samples.
func sweepRequests(name string, o Options) int {
	switch name {
	case "leveldb-5050", "zippydb":
		return o.requests(40000)
	default:
		return o.requests(120000)
	}
}

// twoQuanta builds a figure with the paper's two-panel layout (5µs and
// 2µs quanta): Persephone-FCFS once, Shinjuku and Concord per quantum.
func twoQuanta(id, title string, spec workload.Spec, o Options) Table {
	m := cost.Default()
	workers := o.workers()
	loads := o.thin(spec.LoadsKRps)
	p := server.RunParams{
		Requests: sweepRequests(spec.Name, o), Seed: o.seed(),
		MaxCentralQueue: 150000, DrainSlackUS: 50_000,
	}

	t := Table{
		ID:      id,
		Title:   title,
		Columns: []string{"load_krps", "persephone_fcfs"},
	}
	cfgs := []server.Config{server.PersephoneFCFS(m, workers)}
	for _, q := range spec.QuantaUS {
		for _, mk := range []func(cost.Model, int, float64) server.Config{server.Shinjuku, server.Concord} {
			cfg := mk(m, workers, q)
			t.Columns = append(t.Columns, fmt.Sprintf("%s_q%g", sysKey(cfg.Name), q))
			cfgs = append(cfgs, cfg)
		}
	}
	curves := o.pool().Sweeps(cfgs, spec.WL, loads, p)
	for i, load := range loads {
		row := []float64{load}
		for _, c := range curves {
			row = append(row, c.Points[i].P999)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = sloSummary(curves, spec.QuantaUS)
	return t
}

func sysKey(name string) string {
	switch name {
	case "Persephone-FCFS":
		return "persephone_fcfs"
	case "Shinjuku":
		return "shinjuku"
	case "Concord":
		return "concord"
	default:
		return name
	}
}

// sloSummary reports each curve's max load under the 50× SLO and the
// Concord-over-Shinjuku improvement per quantum.
func sloSummary(curves []stats.Curve, quanta []float64) string {
	out := ""
	byName := map[string]stats.Curve{}
	order := []string{}
	for i, c := range curves {
		key := c.System
		if i > 0 {
			// Shinjuku/Concord alternate per quantum.
			qi := (i - 1) / 2
			if qi < len(quanta) {
				key = fmt.Sprintf("%s@q=%gus", c.System, quanta[qi])
			}
		}
		byName[key] = c
		order = append(order, key)
	}
	for _, k := range order {
		if max, ok := byName[k].MaxLoadUnderSLO(stats.DefaultSLOSlowdown); ok {
			out += fmt.Sprintf("max load at 50x SLO: %-24s %.1f kRps\n", k, max)
		} else {
			out += fmt.Sprintf("max load at 50x SLO: %-24s never met\n", k)
		}
	}
	for _, q := range quanta {
		a, okA := byName[fmt.Sprintf("Concord@q=%gus", q)]
		b, okB := byName[fmt.Sprintf("Shinjuku@q=%gus", q)]
		if okA && okB {
			if imp, err := stats.Improvement(a, b, stats.DefaultSLOSlowdown); err == nil {
				out += fmt.Sprintf("Concord vs Shinjuku at q=%gus: %+.0f%%\n", q, 100*imp)
			}
		}
	}
	return out
}

// Fig6 reproduces the Bimodal(50:1, 50:100) comparison (YCSB-A-like).
// Paper: Concord +18% at q=5µs, +45% at q=2µs over Shinjuku.
func Fig6(o Options) Table {
	return twoQuanta("fig6",
		"p99.9 slowdown vs load, Bimodal(50:1, 50:100), q=5µs and 2µs",
		workload.YCSBBimodal(), o)
}

// Fig7 reproduces the Bimodal(99.5:0.5, 0.5:500) comparison (Meta USR).
// Paper: Concord +20% at q=5µs, +52% at q=2µs over Shinjuku.
func Fig7(o Options) Table {
	return twoQuanta("fig7",
		"p99.9 slowdown vs load, Bimodal(99.5:0.5, 0.5:500), q=5µs and 2µs",
		workload.USRBimodal(), o)
}

// Fig8a reproduces the Fixed(1µs) low-dispersion comparison. Paper: all
// three systems bottleneck on the dispatcher; Concord pays ≈2% for
// computing JBSQ's shortest queue.
func Fig8a(o Options) Table {
	return twoQuanta("fig8a",
		"p99.9 slowdown vs load, Fixed(1µs): dispatcher-bound regime",
		workload.FixedOne(), o)
}

// Fig8b reproduces the TPCC comparison (q=10µs). Paper: preemption does
// not pay off at low dispersion — Persephone-FCFS wins — but Concord
// still beats Shinjuku thanks to its cheaper preemption.
func Fig8b(o Options) Table {
	return twoQuanta("fig8b",
		"p99.9 slowdown vs load, TPCC on in-memory DB, q=10µs",
		workload.TPCC(), o)
}

// Fig9 reproduces the LevelDB 50% GET / 50% SCAN comparison. Paper:
// Concord +52% at q=5µs and +83% at q=2µs over Shinjuku.
func Fig9(o Options) Table {
	return twoQuanta("fig9",
		"p99.9 slowdown vs load, LevelDB 50% GET / 50% SCAN, q=5µs and 2µs",
		workload.LevelDB5050(), o)
}

// Fig10 reproduces the LevelDB ZippyDB-trace comparison (q=5µs). Paper:
// Concord +19% over Shinjuku.
func Fig10(o Options) Table {
	return twoQuanta("fig10",
		"p99.9 slowdown vs load, LevelDB with ZippyDB trace mix, q=5µs",
		workload.ZippyDB(), o)
}

// Fig14 zooms into Fig. 6(a)'s low-load region to expose the cost of
// approximate scheduling: Concord's p99.9 slowdown sits ≈3 above
// Shinjuku's at low loads because occasionally-stolen requests cannot
// migrate off the dispatcher (§5.5).
func Fig14(o Options) Table {
	spec := workload.YCSBBimodal()
	spec.QuantaUS = []float64{5}
	spec.LoadsKRps = []float64{20, 40, 60, 80, 100, 120, 140, 160}
	t := twoQuanta("fig14",
		"Low-load zoom of Fig 6(a): the drawback of approximate scheduling",
		spec, o)
	t.Notes += "paper: Concord's p99.9 slowdown is ≈3 higher than Shinjuku's at low loads.\n"
	return t
}
