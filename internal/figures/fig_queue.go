package figures

import (
	"concord/internal/cost"
	"concord/internal/dist"
	"concord/internal/mech"
	"concord/internal/runner"
	"concord/internal/server"
)

// Fig3 reproduces "Time spent idle by a worker thread awaiting the next
// request": 8 workers running fixed-service-time requests at saturation,
// no preemption, measuring the idle fraction for synchronous single-queue
// systems (Shinjuku, Persephone) versus Concord's JBSQ(2).
func Fig3(o Options) Table {
	// The paper's Fig. 3 is a loopback microbenchmark that isolates
	// c_next: requests are pre-staged so the dispatcher only dispatches
	// (no per-request network ingestion; its loop batches arrivals).
	m := cost.Default()
	m.ArrivalCost = 0
	m.DispatchBase = 120
	m.SlotFreeCost = 10
	workers := 8
	t := Table{
		ID:      "fig3",
		Title:   "Worker idle overhead awaiting the next request vs service time (8 workers)",
		Columns: []string{"service_us", "shinjuku_sq_pct", "persephone_sq_pct", "concord_jbsq2_pct"},
		Notes: "paper: SQ overhead ∝ 1/S, 40-50% at 1µs; JBSQ(2) is 9-13× lower.\n" +
			"SQ columns: mean worker idle fraction at 1.25× offered capacity.\n" +
			"JBSQ column: residual idle plus the local pop + quantum-timer start (§3.2: c_next is not zero).",
	}
	reqs := o.requests(120000)
	services := []float64{1, 5, 10, 25, 50, 100}
	cfgs := []server.Config{
		server.Shinjuku(m, workers, 0),
		server.PersephoneFCFS(m, workers),
		server.CoopJBSQ(m, workers, 0),
	}
	// Grid of service times × systems; every cell is an independent run,
	// seeded by its coordinates and fanned out on the pool.
	var specs []runner.Spec
	for si, sUS := range services {
		loadKRps := 1.25 * float64(workers) / sUS * 1000
		wl := server.Workload{Dist: dist.NewFixed(sUS)}
		for ci, cfg := range cfgs {
			p := server.RunParams{
				Requests: reqs, Seed: server.SeedFor(o.seed(), ci, si),
				MaxCentralQueue: 1 << 21, DrainSlackUS: 10_000,
			}
			specs = append(specs, runner.Spec{Cfg: cfg, WL: wl, KRps: loadKRps, Params: p})
		}
	}
	pts := o.pool().Points(specs)
	for si, sUS := range services {
		row := []float64{sUS}
		for ci, cfg := range cfgs {
			pt := pts[si*len(cfgs)+ci]
			overhead := pt.WorkerIdle
			if cfg.QueueBound > 1 {
				overhead += float64(m.JBSQLocalPop) / float64(m.MicrosToCycles(sUS))
			}
			row = append(row, 100*overhead)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig5 reproduces "The impact of non-instantaneous preemption on 99.9th
// percentile request slowdown": a pure queueing simulation (all mechanism
// costs zero) of Bimodal(99.5:0.5, 0.5:500) under a 5µs quantum whose
// effective value is a one-sided normal N(5, σ), for σ ∈ {0, 1, 2}µs,
// against a no-preemption single queue.
func Fig5(o Options) Table {
	m := cost.Ideal()
	workers := o.workers()
	wl := server.Workload{Dist: dist.Bimodal(99.5, 0.5, 0.5, 500)}
	capacityKRps := float64(workers) / wl.Dist.Mean() * 1000

	t := Table{
		ID:      "fig5",
		Title:   "p99.9 slowdown vs load under imprecise preemption (ideal queueing model)",
		Columns: []string{"load_frac", "no_preempt", "precise_N5_0", "N5_1", "N5_2"},
		Notes: "paper: small preemption-delay std-devs track precise preemption almost exactly;\n" +
			"no preemption crosses the SLO far earlier. All mechanism costs are zero here.",
	}

	mkvar := func(sdUS float64) server.Config {
		return server.Config{
			Name:       "ideal-preempt",
			Workers:    workers,
			QuantumUS:  5,
			Mech:       mech.CacheLine{M: m, DelayStdDev: m.MicrosToCycles(sdUS)},
			Model:      m,
			QueueBound: 1,
		}
	}
	noPre := server.Config{
		Name: "ideal-fcfs", Workers: workers,
		Mech: mech.None{M: m}, Model: m, QueueBound: 1,
	}

	fracs := o.thin([]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.875, 0.95})
	reqs := o.requests(120000)
	cfgs := []server.Config{noPre, mkvar(0), mkvar(1), mkvar(2)}
	var specs []runner.Spec
	for ci, cfg := range cfgs {
		for fi, f := range fracs {
			p := server.RunParams{
				Requests: reqs, Seed: server.SeedFor(o.seed(), ci, fi),
				MaxCentralQueue: 1 << 20,
			}
			specs = append(specs, runner.Spec{Cfg: cfg, WL: wl, KRps: f * capacityKRps, Params: p})
		}
	}
	pts := o.pool().Points(specs)
	for fi, f := range fracs {
		row := []float64{f}
		for ci := range cfgs {
			row = append(row, pts[ci*len(fracs)+fi].P999)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
