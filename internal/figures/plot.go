package figures

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders the table as an ASCII chart: the first column is the
// x-axis, every other column is a series. The y-axis is log-scaled when
// the data spans more than two decades (slowdown curves always do).
// Infinities (saturated points) clamp to the top of the chart.
func (t Table) Plot(width, height int) string {
	if len(t.Rows) == 0 || len(t.Columns) < 2 {
		return "(no data)\n"
	}
	if width < 30 {
		width = 72
	}
	if height < 5 {
		height = 18
	}

	marks := "*o+x#@%&"

	// Collect y range over finite values.
	minY, maxY := math.Inf(1), math.Inf(-1)
	minX, maxX := math.Inf(1), math.Inf(-1)
	sawInf := false
	for _, row := range t.Rows {
		minX = math.Min(minX, row[0])
		maxX = math.Max(maxX, row[0])
		for _, v := range row[1:] {
			if math.IsInf(v, 1) {
				sawInf = true
				continue
			}
			if math.IsNaN(v) {
				continue
			}
			minY = math.Min(minY, v)
			maxY = math.Max(maxY, v)
		}
	}
	if math.IsInf(minY, 1) {
		return "(no finite data)\n"
	}
	if maxY == minY {
		maxY = minY + 1
	}
	logScale := minY > 0 && maxY/math.Max(minY, 1e-12) > 100
	yPos := func(v float64) int {
		if math.IsInf(v, 1) {
			return height - 1
		}
		var frac float64
		if logScale {
			frac = (math.Log10(v) - math.Log10(minY)) / (math.Log10(maxY) - math.Log10(minY))
		} else {
			frac = (v - minY) / (maxY - minY)
		}
		p := int(frac * float64(height-1))
		if p < 0 {
			p = 0
		}
		if p >= height {
			p = height - 1
		}
		return p
	}
	xPos := func(v float64) int {
		if maxX == minX {
			return 0
		}
		p := int((v - minX) / (maxX - minX) * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, row := range t.Rows {
		x := xPos(row[0])
		for s, v := range row[1:] {
			if math.IsNaN(v) {
				continue
			}
			y := yPos(v)
			grid[y][x] = marks[s%len(marks)]
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	scale := "linear"
	if logScale {
		scale = "log"
	}
	fmt.Fprintf(&b, "y: %.3g .. %.3g (%s)", minY, maxY, scale)
	if sawInf {
		b.WriteString(", inf clamped to top")
	}
	b.WriteByte('\n')
	for i := height - 1; i >= 0; i-- {
		b.WriteString("| ")
		b.Write(grid[i])
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "+-%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "x: %s, %.4g .. %.4g\n", t.Columns[0], minX, maxX)
	for s := 1; s < len(t.Columns); s++ {
		fmt.Fprintf(&b, "  %c = %s\n", marks[(s-1)%len(marks)], t.Columns[s])
	}
	return b.String()
}
