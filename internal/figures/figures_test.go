package figures

import (
	"math"
	"strings"
	"testing"
)

func TestIDsMatchGenerators(t *testing.T) {
	gens := All()
	ids := IDs()
	if len(gens) != len(ids) {
		t.Fatalf("All() has %d entries, IDs() has %d", len(gens), len(ids))
	}
	for _, id := range ids {
		if gens[id] == nil {
			t.Errorf("IDs() lists %q but All() lacks it", id)
		}
	}
}

func TestTSVRendering(t *testing.T) {
	tab := Table{
		ID: "x", Title: "T", Columns: []string{"a", "b"},
		Rows:  [][]float64{{1, 2.5}, {3, math.Inf(1)}},
		Notes: "note",
	}
	got := tab.TSV()
	for _, want := range []string{"# x: T", "# note", "a\tb", "1\t2.5", "3\tinf"} {
		if !strings.Contains(got, want) {
			t.Errorf("TSV missing %q:\n%s", want, got)
		}
	}
	tab.RowLabels = []string{"r1", "r2"}
	got = tab.TSV()
	if !strings.Contains(got, "name\ta\tb") || !strings.Contains(got, "r1\t1\t2.5") {
		t.Errorf("labeled TSV wrong:\n%s", got)
	}
}

func TestColumnLookup(t *testing.T) {
	tab := Table{Columns: []string{"x", "y"}}
	if tab.Column("y") != 1 || tab.Column("z") != -1 {
		t.Fatal("Column lookup broken")
	}
}

func col(t *testing.T, tab Table, name string) int {
	t.Helper()
	i := tab.Column(name)
	if i < 0 {
		t.Fatalf("%s: no column %q in %v", tab.ID, name, tab.Columns)
	}
	return i
}

func TestFig2Anchors(t *testing.T) {
	tab := Fig2(Quick())
	ipi, rd, cc := col(t, tab, "ipi_pct"), col(t, tab, "rdtsc_pct"), col(t, tab, "concord_pct")
	for _, row := range tab.Rows {
		q := row[0]
		if q <= 10 && !(row[cc] < row[ipi]) {
			t.Errorf("q=%v: Concord %.1f%% not below IPI %.1f%%", q, row[cc], row[ipi])
		}
		if math.Abs(row[rd]-21.5) > 1 {
			t.Errorf("q=%v: rdtsc %.1f%% not flat ≈21%%", q, row[rd])
		}
	}
	// IPI anchors: ≈30% at 2µs, ≈6% at 10µs.
	if math.Abs(tab.Rows[1][ipi]-30.5) > 2 {
		t.Errorf("IPI at 2µs = %v, want ≈30%%", tab.Rows[1][ipi])
	}
	if math.Abs(tab.Rows[3][ipi]-6.5) > 1.5 {
		t.Errorf("IPI at 10µs = %v, want ≈6%%", tab.Rows[3][ipi])
	}
	// IPI falls with quantum; Concord is near-flat (< 8% everywhere).
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i][ipi] >= tab.Rows[i-1][ipi] {
			t.Error("IPI overhead not decreasing with quantum")
		}
		if tab.Rows[i][cc] > 8 {
			t.Errorf("Concord overhead %v%% too high", tab.Rows[i][cc])
		}
	}
}

func TestFig12Ratio(t *testing.T) {
	tab := Fig12(Quick())
	shin, conc := col(t, tab, "shinjuku_ipi_sq_pct"), col(t, tab, "concord_coop_jbsq_pct")
	// Paper: ≈4× reduction; check at the 5µs row.
	var at5 []float64
	for _, row := range tab.Rows {
		if row[0] == 5 {
			at5 = row
		}
	}
	if at5 == nil {
		t.Fatal("no 5µs row")
	}
	ratio := at5[shin] / at5[conc]
	if ratio < 3 || ratio > 6 {
		t.Errorf("Shinjuku/Concord overhead ratio at 5µs = %.1f, paper says ≈4", ratio)
	}
	// The co-op+SQ line sits between the two at small quanta.
	mid := col(t, tab, "coop_sq_pct")
	for _, row := range tab.Rows[:4] {
		if !(row[conc] <= row[mid] && row[mid] <= row[shin]) {
			t.Errorf("q=%v: ablation ordering broken: %v", row[0], row)
		}
	}
}

func TestFig15UIPITwiceConcord(t *testing.T) {
	tab := Fig15(Quick())
	ui, cc := col(t, tab, "uipi_pct"), col(t, tab, "concord_pct")
	// At small quanta UIPI costs ≈2× Concord.
	for _, row := range tab.Rows[:2] {
		ratio := row[ui] / row[cc]
		if ratio < 1.3 || ratio > 3 {
			t.Errorf("q=%v: UIPI/Concord = %.2f, paper says ≈2", row[0], ratio)
		}
	}
}

func TestFig3JBSQRatio(t *testing.T) {
	o := Quick()
	o.Requests = 40000
	tab := Fig3(o)
	sq, jb := col(t, tab, "shinjuku_sq_pct"), col(t, tab, "concord_jbsq2_pct")
	for _, row := range tab.Rows {
		if row[jb] >= row[sq] {
			t.Errorf("S=%vµs: JBSQ overhead %.2f%% >= SQ %.2f%%", row[0], row[jb], row[sq])
		}
	}
	// Paper: 9-13× lower. Check the 5µs and 10µs rows land near that band.
	for _, i := range []int{1, 2} {
		ratio := tab.Rows[i][sq] / tab.Rows[i][jb]
		if ratio < 6 || ratio > 25 {
			t.Errorf("S=%vµs: SQ/JBSQ ratio = %.1f, paper says 9-13×", tab.Rows[i][0], ratio)
		}
	}
	// SQ overhead decreases with service time (∝ 1/S).
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i][sq] >= tab.Rows[i-1][sq] {
			t.Error("SQ idle overhead not decreasing with service time")
		}
	}
}

func TestFig5PreemptionVariance(t *testing.T) {
	o := Quick()
	o.Requests = 60000
	tab := Fig5(o)
	np, pr, s2 := col(t, tab, "no_preempt"), col(t, tab, "precise_N5_0"), col(t, tab, "N5_2")
	last := tab.Rows[len(tab.Rows)-1]
	if !(last[np] > 4*last[pr]) {
		t.Errorf("at high load, no-preemption p999 %.1f not ≫ precise %.1f", last[np], last[pr])
	}
	// Imprecision within 2µs std-dev stays within a small factor of
	// precise preemption at every load (the paper's core claim).
	for _, row := range tab.Rows {
		if row[s2] > 4*row[pr]+10 {
			t.Errorf("load %.2f: N(5,2) p999 %.1f far from precise %.1f", row[0], row[s2], row[pr])
		}
	}
}

func TestFig6QuickOrdering(t *testing.T) {
	o := Quick()
	o.Requests = 15000
	tab := Fig6(o)
	if !strings.Contains(tab.Notes, "Concord vs Shinjuku") {
		t.Fatalf("fig6 notes missing improvement summary:\n%s", tab.Notes)
	}
	// At the highest swept load, Concord's p999 must not exceed
	// Shinjuku's (it saturates later).
	sh, cc := col(t, tab, "shinjuku_q2"), col(t, tab, "concord_q2")
	last := tab.Rows[len(tab.Rows)-1]
	if !(last[cc] <= last[sh]) {
		t.Errorf("at max load, Concord q2 p999 %.1f > Shinjuku %.1f", last[cc], last[sh])
	}
}

func TestTable1Shape(t *testing.T) {
	o := Quick()
	o.Requests = 5000
	tab := Table1(o)
	if len(tab.Rows) != 26 { // 24 benchmarks + average + maximum
		t.Fatalf("table1 has %d rows, want 26", len(tab.Rows))
	}
	if len(tab.RowLabels) != 26 {
		t.Fatalf("table1 has %d labels", len(tab.RowLabels))
	}
	cci := col(t, tab, "ci_overhead_pct")
	ccc := col(t, tab, "concord_overhead_pct")
	avg := tab.Rows[24]
	if avg[cci] < 5*math.Max(avg[ccc], 0.1) {
		t.Errorf("CI average %.2f%% not ≫ Concord average %.2f%%", avg[cci], avg[ccc])
	}
	sd := col(t, tab, "concord_stddev_us")
	for i, row := range tab.Rows[:24] {
		if row[sd] <= 0 || row[sd] >= 2 {
			t.Errorf("%s: std-dev %.3fµs outside (0, 2µs)", tab.RowLabels[i], row[sd])
		}
	}
}

func TestQuickOptionsThinning(t *testing.T) {
	o := Options{LoadPoints: 3}
	loads := o.thin([]float64{1, 2, 3, 4, 5, 6, 7})
	if len(loads) != 3 || loads[0] != 1 || loads[2] != 7 {
		t.Fatalf("thin = %v, want [1 4 7]", loads)
	}
	if got := (Options{}).thin([]float64{1, 2}); len(got) != 2 {
		t.Fatal("no-op thin changed length")
	}
}

func TestPlotRendering(t *testing.T) {
	tab := Table{
		ID: "p", Title: "T", Columns: []string{"x", "a", "b"},
		Rows: [][]float64{{1, 2, 3}, {2, 5, 400}, {3, 10, math.Inf(1)}},
	}
	out := tab.Plot(60, 10)
	for _, want := range []string{"p: T", "* = a", "o = b", "inf clamped"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "log") {
		t.Fatalf("2..400 span should log-scale:\n%s", out)
	}
	if strings.Count(out, "\n") < 12 {
		t.Fatalf("plot too short:\n%s", out)
	}
}

func TestPlotDegenerate(t *testing.T) {
	if out := (Table{}).Plot(60, 10); !strings.Contains(out, "no data") {
		t.Fatalf("empty table plot = %q", out)
	}
	allInf := Table{Columns: []string{"x", "y"}, Rows: [][]float64{{1, math.Inf(1)}}}
	if out := allInf.Plot(60, 10); !strings.Contains(out, "no finite data") {
		t.Fatalf("all-inf plot = %q", out)
	}
	flat := Table{Columns: []string{"x", "y"}, Rows: [][]float64{{1, 5}, {2, 5}}}
	if out := flat.Plot(60, 10); !strings.Contains(out, "linear") {
		t.Fatalf("flat plot = %q", out)
	}
}
