package figures

import (
	"fmt"

	"concord/internal/cost"
	"concord/internal/server"
	"concord/internal/stats"
	"concord/internal/workload"
)

// Fig11 reproduces the mechanism-contribution breakdown on the LevelDB
// 50/50 workload at q=2µs: Shinjuku (IPIs+SQ) → Co-op+SQ → Co-op+JBSQ(2)
// → full Concord. Paper: ≈19 → 22.5 → 32 → 35 kRps at the 50× SLO.
func Fig11(o Options) Table {
	m := cost.Default()
	workers := o.workers()
	spec := workload.LevelDB5050()
	const q = 2.0
	loads := o.thin(spec.LoadsKRps)
	p := server.RunParams{
		Requests: sweepRequests(spec.Name, o), Seed: o.seed(),
		MaxCentralQueue: 150000, DrainSlackUS: 50_000,
	}

	cfgs := []server.Config{
		server.PersephoneFCFS(m, workers),
		server.Shinjuku(m, workers, q),
		server.CoopSQ(m, workers, q),
		server.CoopJBSQ(m, workers, q),
		server.Concord(m, workers, q),
	}
	t := Table{
		ID:      "fig11",
		Title:   "Cumulative mechanism contributions, LevelDB 50/50, q=2µs",
		Columns: []string{"load_krps", "persephone_fcfs", "shinjuku_ipi_sq", "coop_sq", "coop_jbsq2", "concord_full"},
	}
	curves := o.pool().Sweeps(cfgs, spec.WL, loads, p)
	for i, load := range loads {
		row := []float64{load}
		for _, c := range curves {
			row = append(row, c.Points[i].P999)
		}
		t.Rows = append(t.Rows, row)
	}
	notes := "paper: each mechanism adds throughput: 19 -> 22.5 -> 32 -> 35 kRps.\n"
	for _, c := range curves {
		if max, ok := c.MaxLoadUnderSLO(stats.DefaultSLOSlowdown); ok {
			notes += fmt.Sprintf("max load at 50x SLO: %-20s %.1f kRps\n", c.System, max)
		} else {
			notes += fmt.Sprintf("max load at 50x SLO: %-20s never met\n", c.System)
		}
	}
	t.Notes = notes
	return t
}

// Fig13 reproduces the small-VM study: a 4-core deployment (dispatcher +
// networker + 2 workers) running LevelDB 50/50 at q=5µs, with and without
// the work-conserving dispatcher. Paper: work conservation improves
// throughput by ≈33%.
func Fig13(o Options) Table {
	m := cost.Default()
	spec := workload.LevelDB5050()
	const q = 5.0
	loads := o.thin([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	p := server.RunParams{
		Requests: o.requests(40000), Seed: o.seed(),
		MaxCentralQueue: 150000, DrainSlackUS: 50_000,
	}

	with := server.Concord(m, 2, q)
	without := server.ConcordNoSteal(m, 2, q)
	curves := o.pool().Sweeps([]server.Config{without, with}, spec.WL, loads, p)
	cwo, cw := curves[0], curves[1]

	t := Table{
		ID:      "fig13",
		Title:   "Work-conserving dispatcher in a 4-core VM (2 workers), LevelDB 50/50, q=5µs",
		Columns: []string{"load_krps", "concord_no_dispatcher_work", "concord"},
	}
	for i, load := range loads {
		t.Rows = append(t.Rows, []float64{load, cwo.Points[i].P999, cw.Points[i].P999})
	}
	notes := "paper: running application logic on the dispatcher improves throughput by ~33%.\n"
	mw, okw := cw.MaxLoadUnderSLO(stats.DefaultSLOSlowdown)
	mo, oko := cwo.MaxLoadUnderSLO(stats.DefaultSLOSlowdown)
	if okw && oko {
		notes += fmt.Sprintf("max load at 50x SLO: with=%.2f kRps, without=%.2f kRps (%+.0f%%)\n",
			mw, mo, 100*(mw/mo-1))
	}
	t.Notes = notes
	return t
}

// AblationJBSQDepth sweeps the JBSQ bound k on the USR bimodal workload:
// k=1 pays the synchronous handoff, k=2 masks it, larger k only hurts
// tail latency (§3.2).
func AblationJBSQDepth(o Options) Table {
	m := cost.Default()
	workers := o.workers()
	spec := workload.USRBimodal()
	const q = 5.0
	loads := o.thin(spec.LoadsKRps)
	p := server.RunParams{
		Requests: o.requests(120000), Seed: o.seed(),
		MaxCentralQueue: 150000, DrainSlackUS: 50_000,
	}
	t := Table{
		ID:      "ablation-jbsq-depth",
		Title:   "JBSQ(k) depth sweep, Bimodal(99.5:0.5, 0.5:500), q=5µs",
		Columns: []string{"load_krps", "k1", "k2", "k3", "k4"},
		Notes:   "§3.2: k=2 suffices for service times >= 1µs; larger k hurts tails without throughput gain.",
	}
	var cfgs []server.Config
	for k := 1; k <= 4; k++ {
		cfgs = append(cfgs, server.ConcordJBSQ(m, workers, q, k))
	}
	curves := o.pool().Sweeps(cfgs, spec.WL, loads, p)
	for i, load := range loads {
		row := []float64{load}
		for _, c := range curves {
			row = append(row, c.Points[i].P999)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// AblationPolicy compares FCFS with the SRPT extension (§3.1) that a
// dispatcher-centric design makes possible, on the YCSB bimodal workload.
func AblationPolicy(o Options) Table {
	m := cost.Default()
	workers := o.workers()
	spec := workload.YCSBBimodal()
	const q = 5.0
	loads := o.thin(spec.LoadsKRps)
	p := server.RunParams{
		Requests: o.requests(120000), Seed: o.seed(),
		MaxCentralQueue: 150000, DrainSlackUS: 50_000,
	}
	fcfs := server.Concord(m, workers, q)
	srpt := server.Concord(m, workers, q)
	srpt.Name = "Concord-SRPT"
	srpt.SRPT = true

	curves := o.pool().Sweeps([]server.Config{fcfs, srpt}, spec.WL, loads, p)
	cf, cs := curves[0], curves[1]
	t := Table{
		ID:      "ablation-policy",
		Title:   "Central-queue policy: FCFS vs SRPT, Bimodal(50:1, 50:100), q=5µs",
		Columns: []string{"load_krps", "concord_fcfs", "concord_srpt"},
		Notes:   "SRPT is the non-blind extension §3.1 says Concord's single-dispatcher design enables.",
	}
	for i, load := range loads {
		t.Rows = append(t.Rows, []float64{load, cf.Points[i].P999, cs.Points[i].P999})
	}
	return t
}

// AblationDeferWholeRequest reproduces the §3.1 microbenchmark: a
// workload with long LevelDB GET API calls whose critical sections are
// short. Shinjuku's whole-API-call deferral leaves 100µs requests
// unpreemptable; Concord's lock-counter defers only ≈2µs.
func AblationDeferWholeRequest(o Options) Table {
	m := cost.Default()
	workers := o.workers()
	const q = 5.0
	loads := o.thin([]float64{50, 100, 150, 200, 250, 300, 350, 400, 450, 500})
	p := server.RunParams{
		Requests: o.requests(80000), Seed: o.seed(),
		MaxCentralQueue: 150000, DrainSlackUS: 50_000,
	}
	wl := workloadLongGet()
	shin := server.ShinjukuDeferAPI(m, workers, q)
	conc := server.Concord(m, workers, q)
	curves := o.pool().Sweeps([]server.Config{shin, conc}, wl, loads, p)
	cs, cc := curves[0], curves[1]
	t := Table{
		ID:      "ablation-defer",
		Title:   "Safety-first preemption vs whole-API-call deferral (long-GET microbenchmark)",
		Columns: []string{"load_krps", "shinjuku_defer_api", "concord_lock_counter"},
	}
	for i, load := range loads {
		t.Rows = append(t.Rows, []float64{load, cs.Points[i].P999, cc.Points[i].P999})
	}
	notes := "paper (§3.1): Concord improved throughput by 4x on such a microbenchmark.\n"
	ms, oks := cs.MaxLoadUnderSLO(stats.DefaultSLOSlowdown)
	mc, okc := cc.MaxLoadUnderSLO(stats.DefaultSLOSlowdown)
	if oks && okc {
		notes += fmt.Sprintf("max load at 50x SLO: shinjuku=%.1f concord=%.1f (%.1fx)\n", ms, mc, mc/ms)
	}
	t.Notes = notes
	return t
}
