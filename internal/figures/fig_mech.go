package figures

import (
	"concord/internal/cost"
	"concord/internal/mech"
)

// quantaUS is the x-axis shared by the mechanism-overhead figures.
var quantaUS = []float64{1, 2, 5, 10, 25, 50, 100}

// Fig2 reproduces "Overhead of preemption mechanisms as a function of the
// scheduling quantum": 1M requests of 500µs each with no-op preemption
// handlers, excluding context-switch and next-request time. Series:
// posted IPIs (Shinjuku), rdtsc() instrumentation (Compiler Interrupts),
// and Concord's cache-line instrumentation.
func Fig2(o Options) Table {
	m := cost.Default()
	s := m.MicrosToCycles(500)
	t := Table{
		ID:      "fig2",
		Title:   "Preemption mechanism overhead vs scheduling quantum (500µs spin requests)",
		Columns: []string{"quantum_us", "ipi_pct", "rdtsc_pct", "concord_pct"},
		Notes: "paper: IPI 33% @2µs and 6% @10µs; rdtsc ≈21% flat; Concord low and near-flat.\n" +
			"overheads exclude context switch and next-request wait (no-op handlers).",
	}
	ipi := mech.IPI{M: m}
	rd := mech.Rdtsc{M: m}
	cl := mech.CacheLine{M: m}
	for _, q := range quantaUS {
		qc := m.MicrosToCycles(q)
		t.Rows = append(t.Rows, []float64{
			q,
			100 * mech.SpinOverhead(ipi, s, qc),
			100 * mech.SpinOverhead(rd, s, qc),
			100 * mech.SpinOverhead(cl, s, qc),
		})
	}
	return t
}

// Fig12 reproduces "Contribution of each Concord mechanism towards its
// overall reduction in preemption overhead": the same 500µs spin requests
// but with real yields, so each preemption also pays the context switch
// and the wait for the next request (Eq. 3 in full). Series: Shinjuku
// (IPIs + SQ), Co-op + SQ, and Concord (Co-op + JBSQ(2)).
func Fig12(o Options) Table {
	m := cost.Default()
	s := m.MicrosToCycles(500)
	t := Table{
		ID:      "fig12",
		Title:   "Preemptive-scheduling overhead breakdown vs quantum (full yield path)",
		Columns: []string{"quantum_us", "shinjuku_ipi_sq_pct", "coop_sq_pct", "concord_coop_jbsq_pct"},
		Notes:   "paper: Concord reduces preemptive-scheduling overhead ≈4× vs Shinjuku.",
	}
	ipi := mech.IPI{M: m}
	cl := mech.CacheLine{M: m}
	// In single-queue mode every preemption cycle pays the synchronous
	// handoff (c_next plus a dispatcher round trip); JBSQ pays only the
	// local pop.
	sqNext := m.NextRequest + m.DispatchBase
	jbsqNext := m.JBSQLocalPop
	for _, q := range quantaUS {
		qc := m.MicrosToCycles(q)
		t.Rows = append(t.Rows, []float64{
			q,
			100 * mech.PreemptionCycleOverhead(ipi, s, qc, m.ContextSwitch, sqNext),
			100 * mech.PreemptionCycleOverhead(cl, s, qc, m.ContextSwitch, sqNext),
			100 * mech.PreemptionCycleOverhead(cl, s, qc, m.ContextSwitch, jbsqNext),
		})
	}
	return t
}

// Fig15 reproduces the §5.6 future-proofing study on a Sapphire Rapids
// cost model: user-space IPIs vs rdtsc instrumentation vs Concord's
// compiler-enforced cooperation.
func Fig15(o Options) Table {
	m := cost.SapphireRapids()
	s := m.MicrosToCycles(500)
	t := Table{
		ID:      "fig15",
		Title:   "Concord vs Intel user-space interrupts (Sapphire Rapids cost model)",
		Columns: []string{"quantum_us", "uipi_pct", "rdtsc_pct", "concord_pct"},
		Notes: "paper: Concord's cooperation imposes ≈2× lower overhead than UIPIs;\n" +
			"coherence misses are ≈1.5× pricier on the 192-core part, raising Concord's absolute numbers.",
	}
	ui := mech.UIPI{M: m}
	rd := mech.Rdtsc{M: m}
	cl := mech.CacheLine{M: m}
	for _, q := range quantaUS {
		qc := m.MicrosToCycles(q)
		t.Rows = append(t.Rows, []float64{
			q,
			100 * mech.SpinOverhead(ui, s, qc),
			100 * mech.SpinOverhead(rd, s, qc),
			100 * mech.SpinOverhead(cl, s, qc),
		})
	}
	return t
}
