package figures

import (
	"fmt"

	"concord/internal/cost"
	"concord/internal/logical"
	"concord/internal/server"
	"concord/internal/stats"
	"concord/internal/workload"
)

// AblationLogicalQueue realizes §6's "How Concord extends to
// single-logical-queue systems" as an experiment: on the USR bimodal
// workload it compares
//
//   - Concord (physical single queue + dispatcher),
//   - a Shenango-like work-stealing runtime with run-to-completion, and
//   - that runtime with Concord's cooperative preemption grafted on
//     (scheduler hyperthread + cache-line flags).
//
// Expected shape: run-to-completion crosses the SLO early (no
// preemption); the §6 extension recovers preemption's tail benefits and,
// with no serialized dispatcher, saturates later than dispatcher-based
// Concord at very high request rates.
func AblationLogicalQueue(o Options) Table {
	m := cost.Default()
	workers := o.workers()
	spec := workload.USRBimodal()
	const q = 5.0
	loads := o.thin(spec.LoadsKRps)
	reqs := o.requests(120000)

	// The three systems are independent simulations (two of them on the
	// logical-queue runtime, which has its own serial sweep); run them as
	// three parallel tasks. Each writes only its own variable, so results
	// are identical at any parallelism.
	var concord, rtc, coop stats.Curve
	lp := logical.Params{Requests: reqs, Seed: o.seed(), MaxQueue: 150000, DrainSlackUS: 50000}
	o.pool().Do(3, func(i int) {
		switch i {
		case 0:
			concord = server.Sweep(server.Concord(m, workers, q), spec.WL, loads,
				server.RunParams{Requests: reqs, Seed: o.seed(), MaxCentralQueue: 150000, DrainSlackUS: 50000})
		case 1:
			rtc = logical.Sweep(logical.RunToCompletion(m, workers), spec.WL.Dist, loads, lp)
		case 2:
			coop = logical.Sweep(logical.CoopPreemption(m, workers, q), spec.WL.Dist, loads, lp)
		}
	})

	t := Table{
		ID:      "ablation-logical",
		Title:   "Physical vs logical single queue, Bimodal(99.5:0.5, 0.5:500), q=5µs",
		Columns: []string{"load_krps", "concord_dispatcher", "logical_rtc", "logical_concord"},
	}
	for i, load := range loads {
		t.Rows = append(t.Rows, []float64{
			load, concord.Points[i].P999, rtc.Points[i].P999, coop.Points[i].P999,
		})
	}
	notes := "§6: Concord's cooperation + work conservation transplant onto\n" +
		"single-logical-queue (work-stealing) runtimes and remove the dispatcher bottleneck.\n"
	for _, c := range []stats.Curve{concord, rtc, coop} {
		if max, ok := c.MaxLoadUnderSLO(stats.DefaultSLOSlowdown); ok {
			notes += fmt.Sprintf("max load at 50x SLO: %-20s %.1f kRps\n", c.System, max)
		} else {
			notes += fmt.Sprintf("max load at 50x SLO: %-20s never met\n", c.System)
		}
	}
	t.Notes = notes
	return t
}
