package figures

import (
	"reflect"
	"testing"
)

// TestParallelDeterminism is the regression gate for the parallel
// runner: a figure regenerated at any -parallel setting must be deeply
// equal — and byte-identical as TSV — to the serial run, and repeat runs
// must match too. Fig6 exercises the sweep grid path; Fig9 adds the
// scan-heavy LevelDB workload whose runs finish at very different times,
// maximizing out-of-order completion.
func TestParallelDeterminism(t *testing.T) {
	opts := Options{Requests: 2500, LoadPoints: 3, Seed: 7, Parallel: 1}
	for _, tc := range []struct {
		id  string
		gen Generator
	}{
		{"fig6", Fig6},
		{"fig9", Fig9},
	} {
		t.Run(tc.id, func(t *testing.T) {
			serial := opts
			serial.Parallel = 1
			want := tc.gen(serial)
			wantTSV := want.TSV()
			for _, par := range []int{1, 2, 8} {
				po := opts
				po.Parallel = par
				got := tc.gen(po)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s: Parallel=%d table differs from serial", tc.id, par)
				}
				if got.TSV() != wantTSV {
					t.Errorf("%s: Parallel=%d TSV differs from serial", tc.id, par)
				}
			}
			// Same options again: no state leaks between generations.
			if again := tc.gen(serial); !reflect.DeepEqual(want, again) {
				t.Errorf("%s: repeated serial run differs", tc.id)
			}
		})
	}
}

// TestParallelDeterminismAllFigures sweeps every generator at minimal
// fidelity through serial and parallel execution. Catches any generator
// that derives a seed from execution order instead of grid coordinates.
func TestParallelDeterminismAllFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	gens := All()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			opts := Options{Requests: 1200, LoadPoints: 2, Seed: 3, Parallel: 1}
			want := gens[id](opts)
			opts.Parallel = 3
			got := gens[id](opts)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s: Parallel=3 differs from serial", id)
			}
		})
	}
}
