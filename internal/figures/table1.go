package figures

import (
	"fmt"

	"concord/internal/kvsim"
	"concord/internal/probe"
	"concord/internal/server"
)

// Table1 reproduces the instrumentation overhead and timeliness table:
// Concord's probes vs Compiler Interrupts across the 24-benchmark suite,
// plus the achieved-quantum standard deviation at a 5µs target.
func Table1(o Options) Table {
	trials := o.requests(30000)
	rs := probe.SuiteResults(trials, o.seed())
	t := Table{
		ID:      "table1",
		Title:   "Instrumentation overhead and preemption timeliness across 24 benchmarks",
		Columns: []string{"concord_overhead_pct", "ci_overhead_pct", "concord_stddev_us", "p99_within_sigma"},
	}
	for _, r := range rs {
		t.RowLabels = append(t.RowLabels, r.Benchmark.Name)
		t.Rows = append(t.Rows, []float64{
			100 * r.ConcordOverhead,
			100 * r.CIOverhead,
			r.StdDevUS,
			r.P99WithinSigma,
		})
	}
	mc, mci, msd, xc, xci, xsd := probe.Averages(rs)
	t.RowLabels = append(t.RowLabels, "Average", "Maximum")
	t.Rows = append(t.Rows,
		[]float64{100 * mc, 100 * mci, msd, 0},
		[]float64{100 * xc, 100 * xci, xsd, 0})
	t.Notes = fmt.Sprintf(
		"paper: Concord avg 1.04%% (max 6.7%%), CI avg 13.7%% (max 37%%), std-dev < 2µs everywhere.\n"+
			"here: Concord avg %.2f%%, CI avg %.1f%%, max std-dev %.2fµs.", 100*mc, 100*mci, xsd)
	return t
}

// workloadLongGet adapts the kvsim long-GET microbenchmark for the
// ablation figure.
func workloadLongGet() server.Workload {
	return kvsim.LongGetMicrobench()
}
