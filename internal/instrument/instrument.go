// Package instrument is the Go analogue of Concord's LLVM instrumentation
// pass (§4.3): it rewrites Go source so that preemption probes —
// ctx.Poll() calls — appear at every function entry and loop back-edge of
// request-handling code, without the developer writing them by hand.
//
// A function is instrumented when it has a parameter whose type ends in
// the configured context type (by default any `*...Ctx`, e.g.
// `ctx *live.Ctx`). Probes are inserted:
//
//   - at the top of the function body (function entry), and
//   - at the top of every for/range loop body within it (the loop
//     back-edge: the probe runs on every iteration).
//
// Function literals inside an instrumented function inherit its context
// variable. Functions whose doc comment contains the directive
// `//concord:nopreempt` are left untouched (the safety hatch for code
// that must not yield, mirroring §3.1's un-instrumented external calls).
// Instrumentation is idempotent: existing probes are not duplicated.
package instrument

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"strings"
)

// Options configures the pass.
type Options struct {
	// CtxTypeSuffix identifies context parameters: a pointer type whose
	// element type name ends with this suffix. Default "Ctx".
	CtxTypeSuffix string
	// PollMethod is the probe method name. Default "Poll".
	PollMethod string
	// LoopEvery amortizes loop probes: instead of polling on every
	// back-edge, the loop polls once every N iterations via a per-
	// function counter. This is the Go analogue of the paper's loop
	// unrolling (§4.3): it bounds per-iteration cost for tight loops at
	// the price of a proportionally longer worst-case yield delay.
	// Values <= 1 poll on every iteration.
	LoopEvery int
}

func (o Options) withDefaults() Options {
	if o.CtxTypeSuffix == "" {
		o.CtxTypeSuffix = "Ctx"
	}
	if o.PollMethod == "" {
		o.PollMethod = "Poll"
	}
	return o
}

// Result is the outcome of instrumenting one file.
type Result struct {
	// Source is the rewritten file.
	Source []byte
	// Probes is the number of probe calls inserted.
	Probes int
	// Functions is the number of functions instrumented.
	Functions int
}

// nopreemptDirective marks functions the pass must skip.
const nopreemptDirective = "//concord:nopreempt"

// File instruments one Go source file.
func File(filename string, src []byte, opts Options) (Result, error) {
	opts = opts.withDefaults()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return Result{}, fmt.Errorf("instrument: %w", err)
	}

	var res Result
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		if hasNopreempt(fn.Doc) {
			continue
		}
		ctxName := ctxParamName(fn.Type, opts)
		if ctxName == "" {
			continue
		}
		n := instrumentFunc(fn.Body, ctxName, opts)
		if n > 0 {
			res.Probes += n
			res.Functions++
		}
	}

	var buf bytes.Buffer
	if err := format.Node(&buf, fset, f); err != nil {
		return Result{}, fmt.Errorf("instrument: formatting: %w", err)
	}
	res.Source = buf.Bytes()
	return res, nil
}

func hasNopreempt(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), nopreemptDirective) {
			return true
		}
	}
	return false
}

// ctxParamName returns the name of the first parameter whose type is a
// pointer to a type ending in the context suffix, or "".
func ctxParamName(ft *ast.FuncType, opts Options) string {
	if ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		star, ok := field.Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		var typeName string
		switch t := star.X.(type) {
		case *ast.Ident:
			typeName = t.Name
		case *ast.SelectorExpr:
			typeName = t.Sel.Name
		default:
			continue
		}
		if !strings.HasSuffix(typeName, opts.CtxTypeSuffix) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
	}
	return ""
}

// counterName is the per-function iteration counter amortized loop
// probes share.
const counterName = "_concordPolls"

// instrumentFunc inserts probes into body and returns how many were
// added.
func instrumentFunc(body *ast.BlockStmt, ctxName string, opts Options) int {
	n := 0
	loopProbes := 0
	if insertProbe(body, ctxName, opts) {
		n++
	}
	ast.Inspect(body, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.ForStmt:
			if v.Body != nil && insertLoopProbe(v.Body, ctxName, opts) {
				n++
				loopProbes++
			}
		case *ast.RangeStmt:
			if v.Body != nil && insertLoopProbe(v.Body, ctxName, opts) {
				n++
				loopProbes++
			}
		case *ast.FuncLit:
			// A nested literal with its own context parameter is handled
			// with that parameter; otherwise it inherits the enclosing
			// context variable (a closure capture), which Inspect's
			// continued traversal covers.
			if inner := ctxParamName(v.Type, opts); inner != "" && v.Body != nil {
				n += instrumentFunc(v.Body, inner, opts)
				return false // handled; do not also instrument with outer ctx
			}
		}
		return true
	})
	if loopProbes > 0 && opts.LoopEvery > 1 {
		declareCounter(body)
	}
	return n
}

// declareCounter prepends `var _concordPolls int` (after any entry
// probe) unless the function already declares it.
func declareCounter(body *ast.BlockStmt) {
	for _, stmt := range body.List {
		if ds, ok := stmt.(*ast.DeclStmt); ok {
			if gd, ok := ds.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, name := range vs.Names {
							if name.Name == counterName {
								return
							}
						}
					}
				}
			}
		}
	}
	decl := &ast.DeclStmt{Decl: &ast.GenDecl{
		Tok: token.VAR,
		Specs: []ast.Spec{&ast.ValueSpec{
			Names: []*ast.Ident{ast.NewIdent(counterName)},
			Type:  ast.NewIdent("int"),
		}},
	}}
	// Keep the entry probe first if present.
	insertAt := 0
	if len(body.List) > 0 {
		if _, ok := body.List[0].(*ast.ExprStmt); ok {
			insertAt = 1
		}
	}
	rest := append([]ast.Stmt{decl}, body.List[insertAt:]...)
	body.List = append(body.List[:insertAt:insertAt], rest...)
}

// insertLoopProbe prepends a loop-body probe: a direct poll, or the
// amortized counter form when Options.LoopEvery > 1:
//
//	if _concordPolls++; _concordPolls%N == 0 { ctx.Poll() }
func insertLoopProbe(block *ast.BlockStmt, ctxName string, opts Options) bool {
	if opts.LoopEvery <= 1 {
		return insertProbe(block, ctxName, opts)
	}
	if len(block.List) > 0 && (isProbe(block.List[0], ctxName, opts) || isAmortizedProbe(block.List[0])) {
		return false
	}
	probe := &ast.IfStmt{
		Init: &ast.IncDecStmt{X: ast.NewIdent(counterName), Tok: token.INC},
		Cond: &ast.BinaryExpr{
			X: &ast.BinaryExpr{
				X:  ast.NewIdent(counterName),
				Op: token.REM,
				Y:  &ast.BasicLit{Kind: token.INT, Value: itoa(opts.LoopEvery)},
			},
			Op: token.EQL,
			Y:  &ast.BasicLit{Kind: token.INT, Value: "0"},
		},
		Body: &ast.BlockStmt{List: []ast.Stmt{&ast.ExprStmt{X: &ast.CallExpr{
			Fun: &ast.SelectorExpr{
				X:   ast.NewIdent(ctxName),
				Sel: ast.NewIdent(opts.PollMethod),
			},
		}}}},
	}
	block.List = append([]ast.Stmt{probe}, block.List...)
	return true
}

// isAmortizedProbe reports whether stmt is the counter-based probe form.
func isAmortizedProbe(stmt ast.Stmt) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Init == nil {
		return false
	}
	inc, ok := ifs.Init.(*ast.IncDecStmt)
	if !ok {
		return false
	}
	id, ok := inc.X.(*ast.Ident)
	return ok && id.Name == counterName
}

func itoa(n int) string {
	return fmt.Sprintf("%d", n)
}

// insertProbe prepends ctxName.Poll() to the block unless it is already
// there. It reports whether a probe was added.
func insertProbe(block *ast.BlockStmt, ctxName string, opts Options) bool {
	if len(block.List) > 0 && isProbe(block.List[0], ctxName, opts) {
		return false
	}
	probe := &ast.ExprStmt{X: &ast.CallExpr{
		Fun: &ast.SelectorExpr{
			X:   ast.NewIdent(ctxName),
			Sel: ast.NewIdent(opts.PollMethod),
		},
	}}
	block.List = append([]ast.Stmt{probe}, block.List...)
	return true
}

// isProbe reports whether stmt is ctxName.Poll().
func isProbe(stmt ast.Stmt, ctxName string, opts Options) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != opts.PollMethod {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == ctxName
}
