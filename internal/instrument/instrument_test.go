package instrument

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

const sample = `package app

import "concord/internal/live"

func Handle(ctx *live.Ctx, n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum += i
	}
	for _, v := range []int{1, 2, 3} {
		sum += v
	}
	return sum
}

func helper(n int) int { // no ctx: untouched
	for i := 0; i < n; i++ {
		n--
	}
	return n
}

//concord:nopreempt
func critical(ctx *live.Ctx) {
	for {
		break
	}
}

func withClosure(ctx *live.Ctx) {
	f := func() {
		for i := 0; i < 3; i++ {
			_ = i
		}
	}
	f()
}

func ownCtx(outer *live.Ctx) {
	g := func(inner *live.Ctx) {
		for {
			break
		}
	}
	g(outer)
}
`

func mustInstrument(t *testing.T, src string) (Result, string) {
	t.Helper()
	res, err := File("sample.go", []byte(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res, string(res.Source)
}

func TestProbesInserted(t *testing.T) {
	res, out := mustInstrument(t, sample)
	// Handle: entry + 2 loops = 3. critical: skipped. withClosure:
	// entry + closure loop = 2. ownCtx: entry + inner entry + inner
	// loop... inner has own ctx: entry(outer) 1 + inner instrumented as
	// its own function: entry + loop = 2 -> total for ownCtx = 3.
	if res.Probes != 3+2+3 {
		t.Fatalf("probes = %d, want 8\n%s", res.Probes, out)
	}
	if res.Functions != 3 {
		t.Fatalf("functions = %d, want 3", res.Functions)
	}
	if got := strings.Count(out, "ctx.Poll()"); got != 5 {
		t.Fatalf("ctx.Poll() count = %d, want 5\n%s", got, out)
	}
	if got := strings.Count(out, "inner.Poll()"); got != 2 {
		t.Fatalf("inner.Poll() count = %d, want 2\n%s", got, out)
	}
	if strings.Count(out, "outer.Poll()") != 1 {
		t.Fatalf("outer.Poll() missing\n%s", out)
	}
}

func TestUntouchedFunctions(t *testing.T) {
	_, out := mustInstrument(t, sample)
	// helper has no ctx parameter: its loop must have no probe.
	helperIdx := strings.Index(out, "func helper")
	criticalIdx := strings.Index(out, "func critical")
	helperBody := out[helperIdx:criticalIdx]
	if strings.Contains(helperBody, "Poll()") {
		t.Fatalf("helper was instrumented:\n%s", helperBody)
	}
	// critical carries the nopreempt directive.
	rest := out[criticalIdx:strings.Index(out, "func withClosure")]
	if strings.Contains(rest, "Poll()") {
		t.Fatalf("nopreempt function was instrumented:\n%s", rest)
	}
}

func TestOutputParses(t *testing.T) {
	_, out := mustInstrument(t, sample)
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "out.go", out, 0); err != nil {
		t.Fatalf("instrumented output does not parse: %v\n%s", err, out)
	}
}

func TestIdempotent(t *testing.T) {
	_, out1 := mustInstrument(t, sample)
	res2, out2 := mustInstrument(t, out1)
	if res2.Probes != 0 {
		t.Fatalf("second pass inserted %d probes", res2.Probes)
	}
	if out1 != out2 {
		t.Fatal("second pass changed the output")
	}
}

func TestProbePlacement(t *testing.T) {
	_, out := mustInstrument(t, sample)
	// The entry probe must be the first statement of Handle.
	idx := strings.Index(out, "func Handle(ctx *live.Ctx, n int) int {")
	if idx < 0 {
		t.Fatalf("Handle signature missing:\n%s", out)
	}
	after := out[idx:]
	firstStmt := strings.TrimSpace(strings.SplitN(after, "\n", 3)[1])
	if firstStmt != "ctx.Poll()" {
		t.Fatalf("first statement of Handle = %q, want ctx.Poll()", firstStmt)
	}
	// Each loop body starts with a probe.
	for _, loop := range []string{"for i := 0; i < n; i++ {", "for _, v := range []int{1, 2, 3} {"} {
		li := strings.Index(after, loop)
		if li < 0 {
			t.Fatalf("loop %q missing", loop)
		}
		next := strings.TrimSpace(strings.SplitN(after[li:], "\n", 3)[1])
		if next != "ctx.Poll()" {
			t.Fatalf("loop %q first statement = %q", loop, next)
		}
	}
}

func TestUnderscoreAndMissingCtx(t *testing.T) {
	src := `package p
type Ctx struct{}
func (c *Ctx) Poll() {}
func a(_ *Ctx) { for { break } }
func b() { for { break } }
`
	res, out := mustInstrument(t, src)
	if res.Probes != 0 {
		t.Fatalf("instrumented unnamed/missing ctx: %d probes\n%s", res.Probes, out)
	}
}

func TestCustomOptions(t *testing.T) {
	src := `package p
func h(rc *RequestContext) {
	for { break }
}
`
	res, err := File("x.go", []byte(src), Options{CtxTypeSuffix: "Context", PollMethod: "Probe"})
	if err != nil {
		t.Fatal(err)
	}
	out := string(res.Source)
	if strings.Count(out, "rc.Probe()") != 2 {
		t.Fatalf("custom options not honored:\n%s", out)
	}
}

func TestParseErrorReported(t *testing.T) {
	if _, err := File("bad.go", []byte("not go code"), Options{}); err == nil {
		t.Fatal("invalid source did not error")
	}
}

func TestValueReceiverCtxByPointerOnly(t *testing.T) {
	src := `package p
func h(c Ctx) { for { break } } // value type: not a context param
type Ctx struct{}
`
	res, _ := mustInstrument(t, src)
	if res.Probes != 0 {
		t.Fatal("value-typed Ctx parameter was instrumented")
	}
}

const loopSample = `package p

func hot(ctx *Ctx, n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum += i
	}
	return sum
}

type Ctx struct{}

func (c *Ctx) Poll() {}
`

func TestAmortizedLoopProbes(t *testing.T) {
	res, err := File("hot.go", []byte(loopSample), Options{LoopEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	out := string(res.Source)
	if !strings.Contains(out, "var _concordPolls int") {
		t.Fatalf("counter declaration missing:\n%s", out)
	}
	if !strings.Contains(out, "if _concordPolls++; _concordPolls%64 == 0 {") {
		t.Fatalf("amortized probe missing:\n%s", out)
	}
	// The entry probe stays a direct poll, before the counter decl.
	idx := strings.Index(out, "func hot")
	lines := strings.SplitN(out[idx:], "\n", 4)
	if strings.TrimSpace(lines[1]) != "ctx.Poll()" {
		t.Fatalf("entry probe not first: %q", lines[1])
	}
	if strings.TrimSpace(lines[2]) != "var _concordPolls int" {
		t.Fatalf("counter not second: %q", lines[2])
	}
	// Output must parse.
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "out.go", out, 0); err != nil {
		t.Fatalf("amortized output does not parse: %v\n%s", err, out)
	}
}

func TestAmortizedIdempotent(t *testing.T) {
	res1, err := File("hot.go", []byte(loopSample), Options{LoopEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := File("hot.go", res1.Source, Options{LoopEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Probes != 0 {
		t.Fatalf("second amortized pass inserted %d probes:\n%s", res2.Probes, res2.Source)
	}
	if string(res1.Source) != string(res2.Source) {
		t.Fatal("second amortized pass changed output")
	}
}

func TestNoCounterWithoutLoops(t *testing.T) {
	src := `package p
func f(ctx *Ctx) int { return 1 }
type Ctx struct{}
func (c *Ctx) Poll() {}
`
	res, err := File("x.go", []byte(src), Options{LoopEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(res.Source), "_concordPolls") {
		t.Fatalf("counter declared despite no loops:\n%s", res.Source)
	}
}

// Type-check the instrumented output of a self-contained program: the
// probes and counters must be semantically valid Go, not just parseable.
func TestInstrumentedOutputTypeChecks(t *testing.T) {
	src := `package p

type Ctx struct{ n int }

func (c *Ctx) Poll() { c.n++ }

func handle(ctx *Ctx, data []int) int {
	sum := 0
	for _, v := range data {
		for j := 0; j < v; j++ {
			sum += j
		}
	}
	return sum
}
`
	for _, every := range []int{0, 32} {
		res, err := File("p.go", []byte(src), Options{LoopEvery: every})
		if err != nil {
			t.Fatal(err)
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "p.go", res.Source, 0)
		if err != nil {
			t.Fatalf("every=%d: parse: %v\n%s", every, err, res.Source)
		}
		conf := types.Config{}
		if _, err := conf.Check("p", fset, []*ast.File{f}, nil); err != nil {
			t.Fatalf("every=%d: type check: %v\n%s", every, err, res.Source)
		}
	}
}
