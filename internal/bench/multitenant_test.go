package bench

import "testing"

// TestLiveMultitenantGates pins the scenario's headline invariants on
// every full test run, not just when bench-smoke compares baselines:
// critical must beat sheddable on SLO attainment by well over the 30%
// target, classing must not burn aggregate goodput, and the machinery
// must stay near the ≤2% disabled-overhead budget. The in-test bounds
// leave noise margin below the design targets (which the checked-in
// BENCH_live_multitenant.json gates tightly via compare); what they
// catch is the mechanism breaking, not the number drifting.
func TestLiveMultitenantGates(t *testing.T) {
	if testing.Short() {
		t.Skip("full overload scenario repetition; skipped in -short")
	}
	if raceEnabled {
		// The gates are calibrated against real capacity: under the race
		// detector the paced submitter can't outrun the slowed server, so
		// admission never triggers and shed_frac legitimately reads zero.
		// Race coverage of the admission/shed/cascade paths lives in
		// live's TestChaosSheddingOverloadStop.
		t.Skip("load-calibrated overload gates are meaningless under -race")
	}
	m, err := runLiveMultitenant()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("capacity %.0f rps, goodput classed %.0f / classless %.0f (ratio %.3f), "+
		"slo_gap %.2fx, crit attainment %.3f, shed_frac %.3f, overhead %.3fx",
		m["capacity_rps"], m["goodput_classed_rps"], m["goodput_classless_rps"],
		m["goodput_ratio"], m["slo_gap_x"], m["crit_slo_attainment"],
		m["shed_frac"], m["mt_overhead_x"])

	if gap := m["slo_gap_x"]; gap < 1.3 {
		t.Errorf("critical/sheddable SLO-attainment gap %.2fx, want > 1.3x at %.1fx capacity",
			gap, mtOverloadFactor)
	}
	if att := m["crit_slo_attainment"]; att < 0.5 {
		t.Errorf("critical SLO attainment %.3f under overload — reserved capacity not protecting it", att)
	}
	if m["shed_frac"] <= 0 {
		t.Error("no sheddable requests shed at 1.5x capacity — admission control inert")
	}
	// Design target is within 5%; 0.90 here leaves room for a noisy
	// single repetition on a loaded CI machine.
	if ratio := m["goodput_ratio"]; ratio < 0.90 {
		t.Errorf("classed goodput only %.3f of classless baseline, want ≥ 0.90 (target 0.95)", ratio)
	}
	// Budget is ≤2%; a single unpaired repetition gets slack to 10%
	// before it means an always-taken slow path rather than noise.
	if x := m["mt_overhead_x"]; x > 1.10 {
		t.Errorf("disabled-multitenancy overhead %.3fx, want ~1.0 (budget 1.02)", x)
	}
}
