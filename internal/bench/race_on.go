//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in; tests
// use it to skip load-calibrated scenario gates that are meaningless
// under the detector's slowdown.
const raceEnabled = true
