// The regret scenario: how much tail does hinted SRPT leave on the
// table versus an oracle when client hints are wrong by up to an order
// of magnitude? It runs entirely inside the counterfactual replayer
// (internal/shadow) on a synthesized capture window — no wall clock, no
// live server — so every metric is deterministic and hermetic: the same
// seeds replay to bit-identical latencies on every machine, and the
// checked-in baseline gates the hint-vs-oracle spread exactly.
package bench

import (
	"fmt"
	"math"
	"time"

	"concord/internal/dist"
	"concord/internal/live"
	"concord/internal/shadow"
	"concord/internal/sim"
)

const (
	// One capture window: lognormal service (mean ≈62µs, heavy-tailed)
	// under Poisson arrivals at a load the 2-worker counterfactuals can
	// carry without saturating, hinted and replayed under each policy.
	regretRecs      = 4000
	regretSeed      = 17
	regretRatePerS  = 20000
	regretWorkers   = 2
	regretQuantumUS = 100
	// Noise grid: per-record multiplicative hint error, log-uniform in
	// [1/regretNoiseSpan, regretNoiseSpan].
	regretNoiseSpan = 10.0
)

// regretGrids are the hint-quality points swept, keyed by metric suffix.
var regretGrids = []struct {
	name  string
	noisy bool
}{
	{name: "exact", noisy: false},
	{name: "noisy_x10", noisy: true},
}

// LiveRegretScenario replays one synthesized capture window through the
// shadow counterfactuals at each hint-quality point. FCFS and oracle
// SRPT are hint-blind, so they are reported once; the hinted-SRPT p99
// and its ratio over the oracle carry the per-grid story. The
// hint_over_oracle ratios are the headline: exact hints must replay
// identically to the oracle (ratio 1.0), and ×10 log-uniform noise must
// never beat it.
func LiveRegretScenario() Scenario {
	metrics := map[string]MetricMeta{
		"p99_fcfs_us":        {Unit: "us", Better: "lower", Hermetic: true},
		"p99_srpt_oracle_us": {Unit: "us", Better: "lower", Hermetic: true},
	}
	for _, g := range regretGrids {
		metrics["p99_srpt_hint_us_"+g.name] = MetricMeta{Unit: "us", Better: "lower", Hermetic: true}
		metrics["hint_over_oracle_"+g.name] = MetricMeta{Unit: "x", Better: "lower", Hermetic: true}
	}
	return Scenario{
		Name: "live_regret",
		Describe: fmt.Sprintf("shadow replay of a synthetic %d-record window (lognormal service, Poisson %d/s, seed %d), %d workers quantum %dus, hint grids exact vs log-uniform x%.0f noise",
			regretRecs, regretRatePerS, regretSeed, regretWorkers, regretQuantumUS, regretNoiseSpan),
		Metrics: metrics,
		Run:     runLiveRegret,
	}
}

func runLiveRegret() (map[string]float64, error) {
	cfg := shadow.Config{Workers: regretWorkers, QuantumUS: regretQuantumUS, Seed: 1}
	out := make(map[string]float64, 2+2*len(regretGrids))
	for _, g := range regretGrids {
		w := regretWindow(g.noisy)
		res, ok := shadow.ReplayWindow(w, cfg)
		if !ok {
			return nil, fmt.Errorf("bench: live_regret replay skipped a %d-record window", regretRecs)
		}
		var fcfs, hint, oracle *shadow.PolicyResult
		for i := range res.Policies {
			switch p := &res.Policies[i]; p.Policy {
			case shadow.PolicyFCFS:
				fcfs = p
			case shadow.PolicySRPTHint:
				hint = p
			case shadow.PolicySRPTOracle:
				oracle = p
			}
		}
		if fcfs == nil || hint == nil || oracle == nil ||
			fcfs.Saturated || hint.Saturated || oracle.Saturated {
			return nil, fmt.Errorf("bench: live_regret grid %s saturated or incomplete: %+v", g.name, res.Policies)
		}
		if oracle.P99US > hint.P99US {
			// The oracle never does worse than noisy hints; a violation
			// means the hinted-SRPT key construction regressed.
			return nil, fmt.Errorf("bench: live_regret grid %s: oracle p99 %.1fus above hinted %.1fus",
				g.name, oracle.P99US, hint.P99US)
		}
		out["p99_srpt_hint_us_"+g.name] = hint.P99US
		out["hint_over_oracle_"+g.name] = hint.P99US / oracle.P99US
		// Hint-blind policies see the same trace on every grid.
		out["p99_fcfs_us"] = fcfs.P99US
		out["p99_srpt_oracle_us"] = oracle.P99US
	}
	return out, nil
}

// regretWindow synthesizes the capture window: deterministic lognormal
// service under Poisson arrivals, every record hinted at its true size
// and, on the noisy grid, perturbed by an independent log-uniform
// multiplier in [1/span, span] — the rank-scrambling error mode that
// actually costs SRPT tail.
func regretWindow(noisy bool) live.CaptureWindow {
	rng := sim.NewRNG(regretSeed)
	noiseRNG := sim.NewRNG(regretSeed + 1)
	svc := dist.Lognormal{Mu: math.Log(20), Sigma: 1.5}
	arr := dist.NewPoisson(regretRatePerS)
	w := live.CaptureWindow{Start: time.Unix(0, 0), Offered: regretRecs}
	var at float64
	for i := 0; i < regretRecs; i++ {
		at += arr.NextGapUS(rng)
		svcNS := int64(svc.Sample(rng).ServiceUS * 1e3)
		if svcNS < 1 {
			svcNS = 1
		}
		hintNS := svcNS
		if noisy {
			mult := math.Pow(regretNoiseSpan, 2*noiseRNG.Float64()-1)
			hintNS = int64(float64(svcNS) * mult)
			if hintNS < 1 {
				hintNS = 1
			}
		}
		w.Recs = append(w.Recs, live.CaptureRec{
			ArrivalNS: int64(at * 1e3),
			Class:     uint8(i % live.NumClasses),
			HintNS:    hintNS,
			ServiceNS: svcNS,
			LatencyNS: svcNS * 4, // synthetic achieved sojourn; ratios key off counterfactuals
		})
	}
	w.Span = time.Duration(at*1e3) * time.Nanosecond
	return w
}
