package bench

import (
	"math"
	"testing"
)

// TestScenarioSuiteSmoke runs each standard scenario for one repetition
// and checks every declared metric comes back finite and sensible. This
// is the same code path concord-bench drives, so a scenario that stops
// producing a metric fails tier 1, not the nightly bench job.
func TestScenarioSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size scenario repetitions; skipped in -short")
	}
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			if raceEnabled && s.Name == "live_multitenant" {
				// Under the race detector the paced overload can't outrun
				// the slowed server, so shed_frac legitimately reads zero;
				// race coverage of those paths is live's chaos suite.
				t.Skip("overload pacing can't saturate under -race")
			}
			r, err := Run(s, 0, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Metrics) != len(s.Metrics) {
				t.Fatalf("got %d metrics, declared %d", len(r.Metrics), len(s.Metrics))
			}
			for name, m := range r.Metrics {
				if math.IsNaN(m.Mean) || math.IsInf(m.Mean, 0) || m.Mean <= 0 {
					t.Errorf("%s = %g, want finite and positive", name, m.Mean)
				}
				if m.Better != "higher" && m.Better != "lower" {
					t.Errorf("%s.Better = %q", name, m.Better)
				}
				if m.Unit == "" {
					t.Errorf("%s has no unit", name)
				}
			}
		})
	}
}

// TestCoreScenarioDeterministic: the hermetic simulator metrics must be
// bit-identical across repetitions — that is the contract that lets CI
// gate them against a baseline from another machine.
func TestCoreScenarioDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full simulator sweeps; skipped in -short")
	}
	a, err := runCore()
	if err != nil {
		t.Fatal(err)
	}
	b, err := runCore()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"p50_slowdown", "p99_slowdown", "p999_slowdown", "max_load_slo_krps"} {
		if a[name] != b[name] {
			t.Errorf("%s differs across reps: %v vs %v", name, a[name], b[name])
		}
	}
}
