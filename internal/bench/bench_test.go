package bench

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", what, got, want, tol)
	}
}

func TestMeanCI95(t *testing.T) {
	mean, ci := meanCI95([]float64{1, 2, 3, 4, 5})
	approx(t, mean, 3, 1e-12, "mean")
	// sd = sqrt(2.5), t(df=4) = 2.776, ci = 2.776·sd/√5.
	approx(t, ci, 2.776*math.Sqrt(2.5)/math.Sqrt(5), 1e-9, "ci95")

	mean, ci = meanCI95([]float64{7})
	approx(t, mean, 7, 0, "single-sample mean")
	if ci != 0 {
		t.Errorf("single-sample ci = %g, want 0", ci)
	}

	_, ci = meanCI95([]float64{4, 4, 4})
	if ci != 0 {
		t.Errorf("constant-sample ci = %g, want 0", ci)
	}
}

func TestQuantileSorted(t *testing.T) {
	vals := []float64{10, 20, 30, 40, 50}
	approx(t, quantileSorted(vals, 0), 10, 0, "q0")
	approx(t, quantileSorted(vals, 1), 50, 0, "q1")
	approx(t, quantileSorted(vals, 0.5), 30, 1e-12, "q50")
	approx(t, quantileSorted(vals, 0.75), 40, 1e-12, "q75")
	if !math.IsNaN(quantileSorted(nil, 0.5)) {
		t.Error("empty quantile not NaN")
	}
}

// metric builds a lower-better metric for compare tests.
func metric(mean, ci float64) Metric {
	return Metric{Unit: "us", Better: "lower", Hermetic: false, Mean: mean, CI95: ci, N: 5}
}

func report(name string, metrics map[string]Metric) Report {
	return Report{Schema: Schema, Scenario: name, Go: "go1.24.0", Reps: 5, Warmup: 1, Metrics: metrics}
}

// TestCompareInjectedP99Regression is the acceptance scenario: a 20%
// p99 regression beyond the noise band must be flagged, and comparing a
// report against itself must pass.
func TestCompareInjectedP99Regression(t *testing.T) {
	old := report("live", map[string]Metric{"p99_us": metric(100, 2)})
	bad := report("live", map[string]Metric{"p99_us": metric(120, 2)})

	res, err := Compare(old, bad, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 1 || res.Regressions[0].Metric != "p99_us" {
		t.Fatalf("regressions = %+v, want exactly p99_us", res.Regressions)
	}
	approx(t, res.Regressions[0].Rel, 0.20, 1e-12, "rel change")

	same, err := Compare(old, old, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(same.Regressions) != 0 || len(same.Improvements) != 0 || same.Stable != 1 {
		t.Fatalf("self-compare = %+v, want all stable", same)
	}
}

func TestCompareHigherBetterDirection(t *testing.T) {
	th := Metric{Unit: "req/s", Better: "higher", Mean: 1000, CI95: 10, N: 5}
	drop := th
	drop.Mean = 700
	res, err := Compare(
		report("live", map[string]Metric{"throughput_rps": th}),
		report("live", map[string]Metric{"throughput_rps": drop}),
		0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 1 {
		t.Fatalf("throughput drop not flagged: %+v", res)
	}
	approx(t, res.Regressions[0].Rel, 0.30, 1e-12, "rel")

	// The reverse direction is an improvement, not a regression.
	res, err = Compare(
		report("live", map[string]Metric{"throughput_rps": drop}),
		report("live", map[string]Metric{"throughput_rps": th}),
		0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 0 || len(res.Improvements) != 1 {
		t.Fatalf("throughput gain misclassified: %+v", res)
	}
}

// TestCompareNoiseBand: overlapping CIs or sub-threshold changes are
// stable, not regressions — both conditions must hold to flag.
func TestCompareNoiseBand(t *testing.T) {
	// 20% worse but CIs overlap: noisy measurement, no flag.
	res, err := Compare(
		report("live", map[string]Metric{"p99_us": metric(100, 15)}),
		report("live", map[string]Metric{"p99_us": metric(120, 15)}),
		0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 0 || res.Stable != 1 {
		t.Fatalf("overlapping CIs flagged: %+v", res)
	}

	// Clearly separated but only 4% worse: within threshold, no flag.
	res, err = Compare(
		report("live", map[string]Metric{"p99_us": metric(100, 0.5)}),
		report("live", map[string]Metric{"p99_us": metric(104, 0.5)}),
		0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 0 {
		t.Fatalf("sub-threshold change flagged: %+v", res)
	}
}

// TestCompareDeterministicMetric: hermetic metrics with zero CI gate on
// any change beyond the threshold, and identical values never fire.
func TestCompareDeterministicMetric(t *testing.T) {
	det := Metric{Unit: "x", Better: "lower", Hermetic: true, Mean: 4.321, CI95: 0, N: 5}
	worse := det
	worse.Mean = 5.5
	res, err := Compare(
		report("core", map[string]Metric{"p999_slowdown": det}),
		report("core", map[string]Metric{"p999_slowdown": worse}),
		0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 1 {
		t.Fatalf("deterministic regression not flagged: %+v", res)
	}

	res, err = Compare(
		report("core", map[string]Metric{"p999_slowdown": det}),
		report("core", map[string]Metric{"p999_slowdown": det}),
		0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 0 || len(res.Improvements) != 0 {
		t.Fatalf("identical deterministic values flagged: %+v", res)
	}
}

func TestCompareMissingAndMismatch(t *testing.T) {
	res, err := Compare(
		report("live", map[string]Metric{"p99_us": metric(100, 1), "gone": metric(1, 0)}),
		report("live", map[string]Metric{"p99_us": metric(100, 1), "new": metric(2, 0)}),
		0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Missing) != 2 {
		t.Fatalf("missing = %v, want [gone new]", res.Missing)
	}

	if _, err := Compare(report("core", nil), report("live", nil), 0.10); err == nil {
		t.Error("scenario mismatch accepted")
	}
	if _, err := Compare(report("live", nil), report("live", nil), -1); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestFilterHermetic(t *testing.T) {
	h := Delta{Metric: "allocs_per_req", New: Metric{Hermetic: true}}
	a := Delta{Metric: "p99_us", New: Metric{Hermetic: false}}
	herm, adv := FilterHermetic([]Delta{h, a})
	if len(herm) != 1 || herm[0].Metric != "allocs_per_req" {
		t.Errorf("hermetic = %+v", herm)
	}
	if len(adv) != 1 || adv[0].Metric != "p99_us" {
		t.Errorf("advisory = %+v", adv)
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := report("live", map[string]Metric{"p99_us": metric(123.4, 5.6)})
	path := filepath.Join(t.TempDir(), "BENCH_live.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Scenario != r.Scenario || back.Reps != r.Reps || back.Metrics["p99_us"] != r.Metrics["p99_us"] {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, r)
	}

	// Future-schema reports are refused, not misread.
	future := r
	future.Schema = Schema + 1
	if err := future.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("future schema accepted")
	}
}

// TestRunAggregation drives Run with a stub scenario: warmups are
// discarded, declared metrics aggregate, undeclared or missing metrics
// fail loudly.
func TestRunAggregation(t *testing.T) {
	calls := 0
	s := Scenario{
		Name:    "stub",
		Metrics: map[string]MetricMeta{"v": {Unit: "x", Better: "lower", Hermetic: true}},
		Run: func() (map[string]float64, error) {
			calls++
			return map[string]float64{"v": float64(calls)}, nil
		},
	}
	var progress []string
	r, err := Run(s, 2, 3, func(m string) { progress = append(progress, m) })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Fatalf("calls = %d, want 2 warmup + 3 reps", calls)
	}
	// Warmup values 1,2 discarded; measured 3,4,5.
	approx(t, r.Metrics["v"].Mean, 4, 1e-12, "mean over measured reps")
	if r.Metrics["v"].N != 3 || r.Reps != 3 || r.Warmup != 2 || r.Schema != Schema {
		t.Fatalf("report header = %+v", r)
	}
	if len(progress) != 5 {
		t.Fatalf("progress lines = %d, want 5", len(progress))
	}

	s.Run = func() (map[string]float64, error) {
		return map[string]float64{"rogue": 1}, nil
	}
	if _, err := Run(s, 0, 1, nil); err == nil {
		t.Error("undeclared metric accepted")
	}
	s.Run = func() (map[string]float64, error) { return nil, nil }
	if _, err := Run(s, 0, 1, nil); err == nil {
		t.Error("missing metric accepted")
	}
	s.Run = func() (map[string]float64, error) { return nil, fmt.Errorf("boom") }
	if _, err := Run(s, 0, 1, nil); err == nil {
		t.Error("rep error swallowed")
	}
	if _, err := Run(s, 0, 0, nil); err == nil {
		t.Error("zero reps accepted")
	}
}

func TestByName(t *testing.T) {
	for _, want := range []string{"core", "live"} {
		s, err := ByName(want)
		if err != nil || s.Name != want {
			t.Errorf("ByName(%q) = %v, %v", want, s.Name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown scenario accepted")
	}
}
