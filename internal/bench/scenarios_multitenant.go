// The live_multitenant scenario: drive the runtime past saturation
// with mixed-class traffic and measure what the SLO-class machinery
// buys — and what it costs. Three measurements per repetition:
//
//  1. Capacity: a closed-loop classless run fixes this machine's
//     sustainable rate, so the overload point (1.5×) tracks the
//     hardware instead of hard-coding a rate that one machine can't
//     reach and another won't saturate.
//  2. Overload A/B: the same fixed request count paced open-loop at
//     1.5× capacity, once classless (fcfs, no admission) and once
//     classed (cascade queue, per-class admission, 20% critical /
//     40% standard / 40% sheddable). The classed run must hold the
//     headline: critical's SLO attainment beats sheddable's by >30%
//     while aggregate goodput stays within 5% of the classless run —
//     protection must come from shedding the right work, not from
//     serving less of it.
//  3. Disabled-overhead A/B: interleaved closed-loop batches against a
//     multitenancy-enabled and a plain server, holding the machinery
//     to the standing ≤2% loopback budget.
//
// The gated ratios (slo_gap_x, goodput_ratio, mt_overhead_x) are
// properties of the design rather than of the clock, so they are
// hermetic; raw rates are machine-bound and advisory.
package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"concord/internal/live"
	"concord/internal/obs"
)

const (
	mtWorkers      = 2
	mtQuantum      = 100 * time.Microsecond
	mtSpin         = 20 * time.Microsecond
	mtSubmitBuffer = 256

	// Capacity probe: closed-loop, classless.
	mtCapClients    = 4
	mtCapReqsPerCli = 3000

	// Overload runs: fixed submission count paced at 1.5× capacity.
	mtOverloadFactor = 1.5
	mtRequests       = 24000
	mtPaceTick       = 2 * time.Millisecond

	// slo_gap_x saturates here: the gate cares about "critical beats
	// sheddable by >30%", and past ~3× the exact multiple is machine
	// noise that would make cross-machine comparison flaky.
	mtGapCap = 3.0

	// Disabled-overhead A/B: interleaved closed-loop batches.
	mtABBatches  = 8
	mtABPerBatch = 300
)

// mtReq is the scenario's payload: a spin under an SLO class.
type mtReq struct {
	spin  time.Duration
	class live.SLOClass
}

func (r mtReq) SLOClass() live.SLOClass { return r.class }

type mtHandler struct{}

func (mtHandler) Setup()          {}
func (mtHandler) SetupWorker(int) {}
func (mtHandler) Handle(ctx *live.Ctx, payload any) (any, error) {
	ctx.Spin(payload.(mtReq).spin)
	return nil, nil
}

// mtClassPattern is the deterministic 20/40/40 submission mix: one
// critical, two standard, two sheddable per five requests.
var mtClassPattern = [5]live.SLOClass{
	live.ClassCritical, live.ClassStandard, live.ClassSheddable,
	live.ClassStandard, live.ClassSheddable,
}

// LiveMultitenantScenario measures SLO-class isolation under overload:
// attainment gap, goodput preservation, and the disabled-path cost.
func LiveMultitenantScenario() Scenario {
	return Scenario{
		Name: "live_multitenant",
		Describe: fmt.Sprintf("mixed-class overload at %.1fx measured capacity: %d workers, %d submissions (20%% critical / 40%% standard / 40%% sheddable, %v spins), cascade+admission vs classless fcfs, plus %d×%d interleaved disabled-overhead batches",
			mtOverloadFactor, mtWorkers, mtRequests, mtSpin, mtABBatches, mtABPerBatch),
		Metrics: map[string]MetricMeta{
			"capacity_rps":          {Unit: "req/s", Better: "higher", Hermetic: false},
			"goodput_classed_rps":   {Unit: "req/s", Better: "higher", Hermetic: false},
			"goodput_classless_rps": {Unit: "req/s", Better: "higher", Hermetic: false},
			"goodput_ratio":         {Unit: "x", Better: "higher", Hermetic: true},
			"slo_gap_x":             {Unit: "x", Better: "higher", Hermetic: true},
			"crit_slo_attainment":   {Unit: "frac", Better: "higher", Hermetic: false},
			"shed_frac":             {Unit: "frac", Better: "higher", Hermetic: false},
			"mt_overhead_x":         {Unit: "x", Better: "lower", Hermetic: true},
		},
		Run: runLiveMultitenant,
	}
}

func runLiveMultitenant() (map[string]float64, error) {
	capacity, err := mtMeasureCapacity()
	if err != nil {
		return nil, err
	}
	rate := capacity * mtOverloadFactor

	classless, err := mtOverloadRun(rate, false)
	if err != nil {
		return nil, err
	}
	classed, err := mtOverloadRun(rate, true)
	if err != nil {
		return nil, err
	}
	overhead, err := mtDisabledOverhead()
	if err != nil {
		return nil, err
	}

	critAtt := classed.attainment(live.ClassCritical)
	shedAtt := classed.attainment(live.ClassSheddable)
	if shedAtt < 0.01 {
		shedAtt = 0.01 // floor: an all-shed run must not divide by zero
	}
	gap := critAtt / shedAtt
	if gap > mtGapCap {
		gap = mtGapCap
	}
	return map[string]float64{
		"capacity_rps":          capacity,
		"goodput_classed_rps":   classed.goodputRPS,
		"goodput_classless_rps": classless.goodputRPS,
		"goodput_ratio":         classed.goodputRPS / classless.goodputRPS,
		"slo_gap_x":             gap,
		"crit_slo_attainment":   critAtt,
		"shed_frac":             classed.shedFrac(),
		"mt_overhead_x":         overhead,
	}, nil
}

// mtMeasureCapacity runs the classless closed loop and returns its
// achieved rate — the definition of "capacity" the overload multiplies.
func mtMeasureCapacity() (float64, error) {
	s := live.New(mtHandler{}, live.Options{
		Workers:      mtWorkers,
		Quantum:      mtQuantum,
		SubmitBuffer: mtSubmitBuffer,
		PinThreads:   false,
	})
	s.Start()
	defer s.Stop()

	var failed atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < mtCapClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < mtCapReqsPerCli; i++ {
				if resp := s.Do(mtReq{spin: mtSpin}); resp.Err != nil {
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if n := failed.Load(); n > 0 {
		return 0, fmt.Errorf("bench: live_multitenant capacity probe had %d failures", n)
	}
	return float64(mtCapClients*mtCapReqsPerCli) / wall.Seconds(), nil
}

// mtRunResult is one overload run's tally.
type mtRunResult struct {
	goodputRPS float64
	// submitted / completed-within-objective / shed, per class.
	submitted [live.NumClasses]int
	withinSLO [live.NumClasses]int
	shed      int
}

// attainment is the fraction of a class's submissions that completed
// within the class's own latency objective; shed and rejected requests
// count as misses.
func (r *mtRunResult) attainment(c live.SLOClass) float64 {
	if r.submitted[c] == 0 {
		return 0
	}
	return float64(r.withinSLO[c]) / float64(r.submitted[c])
}

func (r *mtRunResult) shedFrac() float64 {
	if n := r.submitted[live.ClassSheddable]; n > 0 {
		return float64(r.shed) / float64(n)
	}
	return 0
}

// mtOverloadRun paces mtRequests submissions open-loop at the given
// rate. With classed=false every request is standard against a plain
// fcfs server (the goodput baseline); with classed=true the 20/40/40
// mix runs against cascade + per-class admission.
func mtOverloadRun(rate float64, classed bool) (*mtRunResult, error) {
	opts := live.Options{
		Workers:      mtWorkers,
		Quantum:      mtQuantum,
		SubmitBuffer: mtSubmitBuffer,
		PinThreads:   false,
	}
	if classed {
		opts.Policy = live.PolicyCascade
		opts.ClassAdmission = true
	}
	s := live.New(mtHandler{}, opts)
	s.Start()
	defer s.Stop()

	// Open-loop pacing: submit in mtPaceTick batches regardless of
	// completions (Submit never blocks), buffering each response
	// channel for a post-run drain — capacity-1 channels make the
	// drain order irrelevant.
	chans := make([]<-chan live.Response, 0, mtRequests)
	classes := make([]live.SLOClass, mtRequests)
	perTick := rate * mtPaceTick.Seconds()
	start := time.Now()
	var due float64
	for i := 0; i < mtRequests; {
		due += perTick
		for i < mtRequests && float64(i) < due {
			cl := live.ClassStandard
			if classed {
				cl = mtClassPattern[i%len(mtClassPattern)]
			}
			classes[i] = cl
			chans = append(chans, s.Submit(mtReq{spin: mtSpin, class: cl}))
			i++
		}
		time.Sleep(mtPaceTick)
	}

	res := &mtRunResult{}
	completed := 0
	for i, ch := range chans {
		resp := <-ch
		cl := classes[i]
		res.submitted[cl]++
		switch {
		case resp.Err == nil:
			completed++
			if resp.Latency <= cl.DefaultObjective() {
				res.withinSLO[cl]++
			}
		case resp.Err == live.ErrShed:
			res.shed++
		}
	}
	wall := time.Since(start)
	if completed == 0 {
		return nil, fmt.Errorf("bench: live_multitenant overload run (classed=%v) completed nothing", classed)
	}
	res.goodputRPS = float64(completed) / wall.Seconds()
	return res, nil
}

// mtDisabledOverhead interleaves closed-loop batches of classless
// traffic against a multitenancy-enabled server and a plain one, and
// returns the mean-latency ratio (enabled / plain). The machinery's
// cost for a classless request is the admission probe, the cascade
// tier lookup, and the per-class tail observe — the ratio holds them
// to the standing ≤2% loopback budget.
func mtDisabledOverhead() (float64, error) {
	newServer := func(enabled bool) *live.Server {
		opts := live.Options{
			Workers:      mtWorkers,
			Quantum:      mtQuantum,
			SubmitBuffer: mtSubmitBuffer,
			PinThreads:   false,
		}
		if enabled {
			slos := make([]obs.ClassSLO, live.NumClasses)
			for c := live.SLOClass(0); c < live.NumClasses; c++ {
				slos[c] = obs.ClassSLO{Target: c.DefaultObjective(), Objective: 0.999}
			}
			opts.Policy = live.PolicyCascade
			opts.ClassAdmission = true
			opts.ClassTails = obs.NewClassTails(slos, nil)
		}
		s := live.New(mtHandler{}, opts)
		s.Start()
		return s
	}
	plain, full := newServer(false), newServer(true)
	defer plain.Stop()
	defer full.Stop()

	runBatch := func(s *live.Server) (float64, error) {
		start := time.Now()
		for i := 0; i < mtABPerBatch; i++ {
			if resp := s.Do(mtReq{spin: mtSpin}); resp.Err != nil {
				return 0, fmt.Errorf("bench: live_multitenant overhead batch failed: %w", resp.Err)
			}
		}
		return time.Since(start).Seconds(), nil
	}
	// Warm both paths, then interleave so thermal and GC drift land on
	// both sides equally.
	if _, err := runBatch(plain); err != nil {
		return 0, err
	}
	if _, err := runBatch(full); err != nil {
		return 0, err
	}
	var plainTot, fullTot float64
	for i := 0; i < mtABBatches; i++ {
		p, err := runBatch(plain)
		if err != nil {
			return 0, err
		}
		f, err := runBatch(full)
		if err != nil {
			return 0, err
		}
		plainTot += p
		fullTot += f
	}
	return fullTot / plainTot, nil
}
