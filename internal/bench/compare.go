// Regression gating: compare two reports of the same scenario and flag
// metrics that moved in the worse direction beyond the noise band.
package bench

import (
	"fmt"
	"math"
	"sort"
)

// Delta is one metric's movement between an old and a new report.
type Delta struct {
	Metric string
	Old    Metric
	New    Metric
	// Rel is the relative change oriented so positive means worse
	// (a 20% p99 increase and a 20% throughput drop both read +0.20).
	Rel float64
}

func (d Delta) String() string {
	return fmt.Sprintf("%s: %.4g → %.4g %s (%+.1f%% worse-direction, ci95 ±%.3g → ±%.3g)",
		d.Metric, d.Old.Mean, d.New.Mean, d.New.Unit, d.Rel*100, d.Old.CI95, d.New.CI95)
}

// CompareResult classifies every metric shared by two reports.
type CompareResult struct {
	Scenario string
	// OldGo/NewGo record the toolchains; a mismatch makes allocation
	// counts incomparable, so the caller should surface it.
	OldGo, NewGo string
	// Regressions moved worse beyond the noise band: relative change
	// past the threshold AND confidence intervals disjoint in the
	// worse direction.
	Regressions []Delta
	// Improvements moved better by the same standard.
	Improvements []Delta
	// Stable counts metrics within the noise band.
	Stable int
	// Missing lists metrics present in only one report.
	Missing []string
}

// Compare gates new against old. A metric regresses only when both
// conditions hold: the worse-direction relative change exceeds
// threshold, and the 95% confidence intervals do not overlap (so pure
// run-to-run noise with honest error bars cannot fire the gate, and a
// deterministic metric fires on any change beyond threshold).
func Compare(old, new Report, threshold float64) (CompareResult, error) {
	if old.Scenario != new.Scenario {
		return CompareResult{}, fmt.Errorf("bench: comparing different scenarios %q vs %q", old.Scenario, new.Scenario)
	}
	if threshold < 0 {
		return CompareResult{}, fmt.Errorf("bench: negative threshold %g", threshold)
	}
	res := CompareResult{Scenario: old.Scenario, OldGo: old.Go, NewGo: new.Go}

	names := map[string]bool{}
	for n := range old.Metrics {
		names[n] = true
	}
	for n := range new.Metrics {
		names[n] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)

	for _, name := range ordered {
		om, okO := old.Metrics[name]
		nm, okN := new.Metrics[name]
		if !okO || !okN {
			res.Missing = append(res.Missing, name)
			continue
		}
		d := Delta{Metric: name, Old: om, New: nm, Rel: worseRel(om, nm)}
		switch {
		case d.Rel > threshold && disjointWorse(om, nm):
			res.Regressions = append(res.Regressions, d)
		case d.Rel < -threshold && disjointWorse(nm, om):
			res.Improvements = append(res.Improvements, d)
		default:
			res.Stable++
		}
	}
	return res, nil
}

// worseRel returns the relative change oriented so positive is worse.
func worseRel(old, new Metric) float64 {
	if old.Mean == new.Mean {
		return 0
	}
	if old.Mean == 0 {
		// Direction is still meaningful; magnitude is not.
		if (new.Mean > 0) == (old.Better == "lower") {
			return math.Inf(1)
		}
		return math.Inf(-1)
	}
	rel := (new.Mean - old.Mean) / math.Abs(old.Mean)
	if old.Better == "higher" {
		rel = -rel
	}
	return rel
}

// disjointWorse reports whether new's CI95 interval lies strictly on
// the worse side of old's. For exactly-reproducible metrics both
// intervals are points, so any difference is disjoint.
func disjointWorse(old, new Metric) bool {
	if old.Better == "higher" {
		return new.Mean+new.CI95 < old.Mean-old.CI95
	}
	return new.Mean-new.CI95 > old.Mean+old.CI95
}

// FilterHermetic returns the subset of deltas whose metric is hermetic
// (gateable across machines) and the advisory remainder.
func FilterHermetic(deltas []Delta) (hermetic, advisory []Delta) {
	for _, d := range deltas {
		if d.New.Hermetic {
			hermetic = append(hermetic, d)
		} else {
			advisory = append(advisory, d)
		}
	}
	return hermetic, advisory
}
