// The standardized scenario suite. Per-repetition workload sizes are
// fixed constants and must never shrink in "short" runs: short runs
// reduce repetitions, not work per repetition, so the deterministic
// (hermetic) metrics stay comparable to checked-in baselines.
package bench

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"concord/internal/core"
	"concord/internal/cost"
	"concord/internal/live"
	"concord/internal/server"
	"concord/internal/workload"
)

const (
	// Core scenario: one Concord sweep on the paper's YCSB bimodal
	// workload. Seeded, so the slowdown quantiles and SLO crossing are
	// bit-identical on every machine.
	coreRequests = 20000
	coreSeed     = 1
	coreQuantum  = 2 // µs
	coreWorkers  = 14
	// coreMidLoad is the load point the quantile metrics report; it
	// must be one of coreLoads.
	coreMidLoad = 180

	// Live scenario: closed-loop loopback clients against an
	// in-process live.Server running a spin handler. A 1-in-20 long
	// request above the quantum exercises the preempt/requeue path.
	liveWorkers    = 2
	liveQuantum    = 200 * time.Microsecond
	liveClients    = 4
	liveReqsPerCli = 8000
	liveLongEvery  = 20
	liveLongSpin   = 500 * time.Microsecond

	// Sharded live scenario: the same loopback harness pointed at a
	// sharded dispatcher. Zero-work requests isolate the dispatch path
	// (submit → policy queue → JBSQ placement → response) so the shard
	// sweep measures dispatcher throughput, not handler execution.
	shardedWorkers    = 4
	shardedQuantum    = 200 * time.Microsecond
	shardedClients    = 8
	shardedReqsPerCli = 2000
)

// shardedSweep is the dispatcher shard counts measured per repetition.
var shardedSweep = []int{1, 2, 4}

// coreLoads is the swept offered load in kRps. The top points bracket
// Concord's SLO crossing so max_load_slo_krps interpolates inside the
// sweep instead of clamping to an endpoint.
var coreLoads = []float64{60, 120, 180, 240, 300}

// Scenarios returns the standard suite in run order.
func Scenarios() []Scenario {
	return []Scenario{CoreScenario(), LiveScenario(), LiveShardedScenario(), LiveAdaptiveScenario(), NetScenario(), LiveRegretScenario(), LiveMultitenantScenario()}
}

// ByName resolves a scenario by its report name.
func ByName(name string) (Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("bench: unknown scenario %q", name)
}

// CoreScenario benchmarks the discrete-event simulator: deterministic
// tail quantiles and SLO throughput (hermetic) plus the wall-clock
// simulation rate (machine-bound).
func CoreScenario() Scenario {
	return Scenario{
		Name: "core",
		Describe: fmt.Sprintf("Concord simulator sweep, YCSB bimodal, %d requests/load, loads %v kRps, seed %d",
			coreRequests, coreLoads, coreSeed),
		Metrics: map[string]MetricMeta{
			"sim_wall_krps":     {Unit: "kreq/s", Better: "higher", Hermetic: false},
			"p50_slowdown":      {Unit: "x", Better: "lower", Hermetic: true},
			"p99_slowdown":      {Unit: "x", Better: "lower", Hermetic: true},
			"p999_slowdown":     {Unit: "x", Better: "lower", Hermetic: true},
			"max_load_slo_krps": {Unit: "kreq/s", Better: "higher", Hermetic: true},
			"allocs_per_req":    {Unit: "allocs", Better: "lower", Hermetic: true},
		},
		Run: runCore,
	}
}

func runCore() (map[string]float64, error) {
	e := core.Experiment{
		Name:      "bench-core",
		Workload:  workload.YCSBBimodal(),
		QuantumUS: coreQuantum,
		Systems:   []server.Config{server.Concord(cost.Default(), coreWorkers, coreQuantum)},
		LoadsKRps: coreLoads,
		Params:    server.RunParams{Requests: coreRequests, Seed: coreSeed},
		Parallel:  runtime.GOMAXPROCS(0),
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res := e.Run()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	if len(res.Curves) != 1 {
		return nil, fmt.Errorf("bench: core expected 1 curve, got %d", len(res.Curves))
	}
	curve := res.Curves[0]
	total := 0
	var mid *struct{ p50, p99, p999 float64 }
	for _, p := range curve.Points {
		total += p.Samples
		if p.OfferedKRps == coreMidLoad {
			mid = &struct{ p50, p99, p999 float64 }{p.P50, p.P99, p.P999}
		}
	}
	if mid == nil {
		return nil, fmt.Errorf("bench: core sweep has no %d kRps point", coreMidLoad)
	}
	maxLoad, ok := res.MaxLoadKRps[curve.System]
	if !ok {
		return nil, fmt.Errorf("bench: %s never meets the SLO in %v", curve.System, coreLoads)
	}
	return map[string]float64{
		"sim_wall_krps":     float64(total) / wall.Seconds() / 1000,
		"p50_slowdown":      mid.p50,
		"p99_slowdown":      mid.p99,
		"p999_slowdown":     mid.p999,
		"max_load_slo_krps": maxLoad,
		"allocs_per_req":    float64(after.Mallocs-before.Mallocs) / float64(total),
	}, nil
}

// benchSpin is the live scenario's handler: spin for the payload
// duration, polling for preemption.
type benchSpin struct{}

func (benchSpin) Setup()          {}
func (benchSpin) SetupWorker(int) {}
func (benchSpin) Handle(ctx *live.Ctx, payload any) (any, error) {
	d := payload.(time.Duration)
	if d > 0 {
		ctx.Spin(d)
	}
	return d, nil
}

// LiveScenario benchmarks the real serving path end to end: submit,
// dispatch, JBSQ, execution (with occasional preemption), response.
// Latency and throughput are machine-bound; the allocation count per
// request is a property of the code path and gated hermetically.
func LiveScenario() Scenario {
	return Scenario{
		Name: "live",
		Describe: fmt.Sprintf("in-process loopback, %d workers, quantum %v, %d closed-loop clients × %d requests, 1/%d spin %v",
			liveWorkers, liveQuantum, liveClients, liveReqsPerCli, liveLongEvery, liveLongSpin),
		Metrics: map[string]MetricMeta{
			"throughput_rps": {Unit: "req/s", Better: "higher", Hermetic: false},
			"p50_us":         {Unit: "us", Better: "lower", Hermetic: false},
			"p99_us":         {Unit: "us", Better: "lower", Hermetic: false},
			"p999_us":        {Unit: "us", Better: "lower", Hermetic: false},
			"allocs_per_req": {Unit: "allocs", Better: "lower", Hermetic: true},
		},
		Run: runLive,
	}
}

func runLive() (map[string]float64, error) {
	s := live.New(benchSpin{}, live.Options{
		Workers: liveWorkers,
		Quantum: liveQuantum,
		// Unpinned so repetitions coexist with the test runner and CI
		// containers that have fewer cores than runtime threads.
		PinThreads: false,
	})
	s.Start()
	defer s.Stop()

	perClient := make([][]float64, liveClients)
	var failed atomic.Int64
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < liveClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lats := make([]float64, 0, liveReqsPerCli)
			for i := 0; i < liveReqsPerCli; i++ {
				var d time.Duration
				if i%liveLongEvery == 0 {
					d = liveLongSpin
				}
				resp := s.Do(d)
				if resp.Err != nil {
					failed.Add(1)
					continue
				}
				lats = append(lats, float64(resp.Latency)/float64(time.Microsecond))
			}
			perClient[c] = lats
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	if n := failed.Load(); n > 0 {
		return nil, fmt.Errorf("bench: live loopback had %d failed requests", n)
	}
	var lats []float64
	for _, l := range perClient {
		lats = append(lats, l...)
	}
	sort.Float64s(lats)
	total := len(lats)
	if total != liveClients*liveReqsPerCli {
		return nil, fmt.Errorf("bench: live completed %d of %d", total, liveClients*liveReqsPerCli)
	}
	return map[string]float64{
		"throughput_rps": float64(total) / wall.Seconds(),
		"p50_us":         quantileSorted(lats, 0.50),
		"p99_us":         quantileSorted(lats, 0.99),
		"p999_us":        quantileSorted(lats, 0.999),
		"allocs_per_req": float64(after.Mallocs-before.Mallocs) / float64(total),
	}, nil
}

// LiveShardedScenario sweeps the dispatcher shard count over the same
// in-process loopback: one throughput point per shard count in
// shardedSweep, plus a single hermetic allocation count over the whole
// sweep (the per-request code path is shard-count independent, so any
// shift means the dispatch path grew an allocation).
//
// Throughput points are machine-bound. On hosts with cores to spare the
// sweep should rise monotonically with shards; on a single-core host
// the extra dispatcher loops contend instead, and the points record
// that honestly rather than gating on a shape the hardware cannot show.
func LiveShardedScenario() Scenario {
	return Scenario{
		Name: "live_sharded",
		Describe: fmt.Sprintf("in-process loopback, %d workers, shard sweep %v, %d closed-loop clients × %d zero-work requests per point",
			shardedWorkers, shardedSweep, shardedClients, shardedReqsPerCli),
		Metrics: map[string]MetricMeta{
			"throughput_rps_shards1": {Unit: "req/s", Better: "higher", Hermetic: false},
			"throughput_rps_shards2": {Unit: "req/s", Better: "higher", Hermetic: false},
			"throughput_rps_shards4": {Unit: "req/s", Better: "higher", Hermetic: false},
			"allocs_per_req":         {Unit: "allocs", Better: "lower", Hermetic: true},
		},
		Run: runLiveSharded,
	}
}

func runLiveSharded() (map[string]float64, error) {
	out := make(map[string]float64, len(shardedSweep)+1)
	var mallocs, total uint64
	for _, shards := range shardedSweep {
		rps, m, n, err := runShardedPoint(shards)
		if err != nil {
			return nil, err
		}
		out[fmt.Sprintf("throughput_rps_shards%d", shards)] = rps
		mallocs += m
		total += n
	}
	out["allocs_per_req"] = float64(mallocs) / float64(total)
	return out, nil
}

// runShardedPoint runs one closed-loop loopback at the given shard
// count and returns its throughput plus the raw allocation tally.
func runShardedPoint(shards int) (rps float64, mallocs, requests uint64, err error) {
	s := live.New(benchSpin{}, live.Options{
		Workers:    shardedWorkers,
		Shards:     shards,
		Quantum:    shardedQuantum,
		PinThreads: false,
	})
	s.Start()
	defer s.Stop()

	var failed atomic.Int64
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < shardedClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < shardedReqsPerCli; i++ {
				if resp := s.Do(time.Duration(0)); resp.Err != nil {
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	if n := failed.Load(); n > 0 {
		return 0, 0, 0, fmt.Errorf("bench: live_sharded shards=%d had %d failed requests", shards, n)
	}
	requests = uint64(shardedClients) * uint64(shardedReqsPerCli)
	return float64(requests) / wall.Seconds(), after.Mallocs - before.Mallocs, requests, nil
}
