// The adaptive-scheduling scenario: a shifting workload swept through
// the same in-process loopback harness under every static scheduler
// configuration and once under the adaptive control plane. The gated
// question is relative — "does adaptation track the best static
// configuration?" — so the headline metrics are per-phase p99 ratios
// (adaptive over best-static, measured in the same repetition on the
// same machine), which stay comparable across hardware in a way the
// absolute latencies do not. The gate sits at p99 rather than p999:
// with 16k samples per phase the 99.9th percentile is ~16 requests,
// and on small CI hosts those requests measure Go-scheduler
// preemption artifacts, not scheduling policy.
package bench

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"concord/internal/adapt"
	"concord/internal/live"
	"concord/internal/obs"
)

const (
	// Same loopback shape as the live scenario. Per-phase request
	// counts are fixed: short runs cut repetitions, never phase sizes.
	adaptiveWorkers    = 2
	adaptiveClients    = 4
	adaptiveReqsPerCli = 4000 // per phase
	adaptiveShortSpin  = 5 * time.Microsecond

	// The adaptive run's control loop. The interval and dwell are much
	// tighter than a production deployment's (kvd defaults to 50ms
	// ticks) so the controller converges within a bench phase lasting
	// tens to hundreds of milliseconds — but not so tight that the
	// controller's own sensor reads (quantile scans under the tail
	// tracker's lock, contending with worker completions) shadow the
	// workload. The quantum floor stays well above the short-op
	// service time and the SLO target well above the closed-loop
	// queueing tail: this harness runs saturated, so an aggressive
	// AIMD floor would just preempt 5µs spins into requeue churn
	// without shedding any queueing delay.
	adaptiveTickEvery  = 10 * time.Millisecond
	adaptiveMinDwell   = 40 * time.Millisecond
	adaptiveMinQuantum = 25 * time.Microsecond
	adaptiveMaxQuantum = 200 * time.Microsecond
	adaptiveSLOTarget  = time.Millisecond
)

// adaptivePhaseSpec is one leg of the shifting workload: every
// longEvery-th request spins longSpin, the rest adaptiveShortSpin. The
// mixes are chosen so the service-time CV lands clearly on one side of
// the controller's hysteresis band per phase (§2's CV≈1 crossover).
type adaptivePhaseSpec struct {
	name      string
	longEvery int
	longSpin  time.Duration
}

var adaptivePhases = []adaptivePhaseSpec{
	// 95% 5µs / 5% 10µs: CV ≈ 0.2 — near-uniform, FCFS territory.
	{name: "short", longEvery: 20, longSpin: 10 * time.Microsecond},
	// 90% 5µs / 10% 300µs: CV ≈ 2.6 — heavy-tailed, SRPT territory.
	{name: "scan", longEvery: 10, longSpin: 300 * time.Microsecond},
	// 80% 5µs / 20% 50µs: CV ≈ 1.3 — just above the high-water mark.
	{name: "mixed", longEvery: 5, longSpin: 50 * time.Microsecond},
}

// adaptiveStatics is the static grid the adaptive run competes with:
// both policies at a loose and a tight preemption quantum.
var adaptiveStatics = []struct {
	policy  string
	quantum time.Duration
}{
	{live.PolicyFCFS, 200 * time.Microsecond},
	{live.PolicyFCFS, 50 * time.Microsecond},
	{live.PolicySRPT, 200 * time.Microsecond},
	{live.PolicySRPT, 50 * time.Microsecond},
}

// adaptiveReq is the scenario payload: a spin request that carries its
// own duration as an SRPT hint and an SLO class split by size (long
// spins declare themselves sheddable, the rest standard), exercising
// the per-class sensor path the controller reads from.
type adaptiveReq struct{ spin time.Duration }

func (r adaptiveReq) ServiceHint() time.Duration { return r.spin }

func (r adaptiveReq) SLOClass() live.SLOClass {
	if r.spin >= 100*time.Microsecond {
		return live.ClassSheddable
	}
	return live.ClassStandard
}

// adaptiveSpinHandler executes adaptiveReq payloads.
type adaptiveSpinHandler struct{}

func (adaptiveSpinHandler) Setup()          {}
func (adaptiveSpinHandler) SetupWorker(int) {}
func (adaptiveSpinHandler) Handle(ctx *live.Ctx, payload any) (any, error) {
	r := payload.(adaptiveReq)
	if r.spin > 0 {
		ctx.Spin(r.spin)
	}
	return nil, nil
}

// LiveAdaptiveScenario sweeps the shifting workload under each static
// configuration and under the adaptive control plane, reporting
// per-phase p99 for both plus their ratio. The ratios are hermetic:
// numerator and denominator come from the same repetition on the same
// machine, so host speed divides out and a CI runner can gate them
// against a checked-in baseline. Absolute latencies and the switch
// count stay machine-bound (advisory under -hermetic).
func LiveAdaptiveScenario() Scenario {
	metrics := map[string]MetricMeta{
		// More switches is not better — a healthy run flips policy a
		// handful of times as phases shift; a flapping controller
		// burns drain-and-swap quiesces. Gated indirectly: flapping
		// (or a dead controller) degrades the ratios.
		"adapt_policy_switches": {Unit: "switches", Better: "lower", Hermetic: false},
	}
	for _, ph := range adaptivePhases {
		metrics["adaptive_p99_us_"+ph.name] = MetricMeta{Unit: "us", Better: "lower", Hermetic: false}
		metrics["best_static_p99_us_"+ph.name] = MetricMeta{Unit: "us", Better: "lower", Hermetic: false}
		metrics["p99_ratio_"+ph.name] = MetricMeta{Unit: "x", Better: "lower", Hermetic: true}
	}
	return Scenario{
		Name: "live_adaptive",
		Describe: fmt.Sprintf("in-process loopback, %d workers, shifting phases short→scan→mixed (%d clients × %d requests each), %d static configs vs adaptive controller (tick %v)",
			adaptiveWorkers, adaptiveClients, adaptiveReqsPerCli, len(adaptiveStatics), adaptiveTickEvery),
		Metrics: metrics,
		Run:     runLiveAdaptive,
	}
}

func runLiveAdaptive() (map[string]float64, error) {
	best := make([]float64, len(adaptivePhases))
	for _, sc := range adaptiveStatics {
		p99s, _, err := runAdaptiveSweep(sc.policy, sc.quantum, false)
		if err != nil {
			return nil, err
		}
		for i, v := range p99s {
			if best[i] == 0 || v < best[i] {
				best[i] = v
			}
		}
	}
	adaptiveP99s, switches, err := runAdaptiveSweep(live.PolicyFCFS, adaptiveMaxQuantum, true)
	if err != nil {
		return nil, err
	}
	if switches == 0 {
		// The scan phase's CV sits far above the hysteresis band for
		// dozens of control ticks; a controller that never reacts to
		// it is broken, not unlucky.
		return nil, fmt.Errorf("bench: live_adaptive controller never switched policy across the phase sweep")
	}

	out := make(map[string]float64, 3*len(adaptivePhases)+1)
	for i, ph := range adaptivePhases {
		out["adaptive_p99_us_"+ph.name] = adaptiveP99s[i]
		out["best_static_p99_us_"+ph.name] = best[i]
		out["p99_ratio_"+ph.name] = adaptiveP99s[i] / best[i]
	}
	out["adapt_policy_switches"] = float64(switches)
	return out, nil
}

// runAdaptiveSweep runs one server through every phase back to back and
// returns the per-phase p99 in µs. With adaptive set, the server runs
// under a live controller (policy switching + quantum AIMD) fed by the
// tail tracker and CV estimator, and the controller's switch count is
// returned too.
func runAdaptiveSweep(policy string, quantum time.Duration, adaptive bool) ([]float64, uint64, error) {
	opts := live.Options{
		Workers:    adaptiveWorkers,
		Policy:     policy,
		Quantum:    quantum,
		PinThreads: false,
	}
	var (
		tail *obs.TailTracker
		cv   *adapt.CVEstimator
	)
	if adaptive {
		slo := obs.NewSLOTracker(obs.SLOConfig{Target: adaptiveSLOTarget, Objective: 0.999})
		// A short horizon so the quantum loop reacts to the current
		// phase, not the previous one.
		tail = obs.NewTailTracker([]time.Duration{100 * time.Millisecond}, slo)
		cv = &adapt.CVEstimator{}
		opts.Adaptive = true
		opts.ServiceObserver = cv.Observe
		opts.Tail = tail
	}
	s := live.New(adaptiveSpinHandler{}, opts)
	s.Start()
	defer s.Stop()

	var ctrl *adapt.Controller
	if adaptive {
		ctrl = adapt.New(s, adapt.Config{
			Interval:   adaptiveTickEvery,
			MinQuantum: adaptiveMinQuantum,
			MaxQuantum: adaptiveMaxQuantum,
			SLOTarget:  adaptiveSLOTarget,
			MinDwell:   adaptiveMinDwell,
		})
		stop := make(chan struct{})
		defer close(stop)
		go ctrl.Run(adapt.Sources{Tail: tail, CV: cv}, stop)
	}

	p99s := make([]float64, 0, len(adaptivePhases))
	for _, ph := range adaptivePhases {
		perClient := make([][]float64, adaptiveClients)
		var failed atomic.Int64
		var wg sync.WaitGroup
		for c := 0; c < adaptiveClients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				lats := make([]float64, 0, adaptiveReqsPerCli)
				for i := 0; i < adaptiveReqsPerCli; i++ {
					spin := adaptiveShortSpin
					if i%ph.longEvery == 0 {
						spin = ph.longSpin
					}
					resp := s.Do(adaptiveReq{spin: spin})
					if resp.Err != nil {
						failed.Add(1)
						continue
					}
					lats = append(lats, float64(resp.Latency)/float64(time.Microsecond))
				}
				perClient[c] = lats
			}(c)
		}
		wg.Wait()
		if n := failed.Load(); n > 0 {
			return nil, 0, fmt.Errorf("bench: live_adaptive phase %s had %d failed requests", ph.name, n)
		}
		var lats []float64
		for _, l := range perClient {
			lats = append(lats, l...)
		}
		if len(lats) != adaptiveClients*adaptiveReqsPerCli {
			return nil, 0, fmt.Errorf("bench: live_adaptive phase %s completed %d of %d", ph.name, len(lats), adaptiveClients*adaptiveReqsPerCli)
		}
		sort.Float64s(lats)
		p99s = append(p99s, quantileSorted(lats, 0.99))
	}

	var switches uint64
	if ctrl != nil {
		switches = ctrl.Status().Switches
	}
	return p99s, switches, nil
}
