// Package bench is the continuous benchmark harness: it runs a
// standardized scenario suite (deterministic simulator sweeps plus an
// in-process live-runtime loopback), aggregates repetitions into
// mean ± CI95 per metric, and emits schema-versioned BENCH_<name>.json
// reports that Compare can gate against — "did this commit regress p99
// beyond the noise band?" becomes a CI check instead of a judgement
// call.
//
// Metrics are tagged hermetic or not. Hermetic metrics (deterministic
// simulator quantiles, allocation counts) are machine-independent and
// safe to compare against a baseline produced elsewhere; non-hermetic
// ones (wall-clock throughput, live latency) only compare meaningfully
// on the same machine.
package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
)

// Schema versions the report format. Compare refuses reports written by
// a different schema rather than guessing at field semantics.
const Schema = 1

// MetricMeta describes a metric independent of any measured values.
type MetricMeta struct {
	// Unit labels the values ("req/s", "us", "x", "allocs").
	Unit string
	// Better is "higher" or "lower": the direction of improvement.
	Better string
	// Hermetic marks the metric machine-independent: safe to gate
	// against a baseline produced on different hardware.
	Hermetic bool
}

// Metric is one aggregated measurement in a report.
type Metric struct {
	Unit     string  `json:"unit"`
	Better   string  `json:"better"`
	Hermetic bool    `json:"hermetic"`
	Mean     float64 `json:"mean"`
	// CI95 is the half-width of the 95% confidence interval on the
	// mean (Student-t); 0 when there is a single repetition or the
	// metric is exactly reproducible.
	CI95 float64 `json:"ci95"`
	// N is the number of measured repetitions aggregated.
	N int `json:"n"`
}

// Report is the persisted result of running one scenario.
type Report struct {
	Schema   int               `json:"schema"`
	Scenario string            `json:"scenario"`
	Go       string            `json:"go"`
	Reps     int               `json:"reps"`
	Warmup   int               `json:"warmup"`
	Metrics  map[string]Metric `json:"metrics"`
}

// Scenario is one standardized benchmark: a fixed per-repetition
// workload whose size never varies (short runs reduce repetitions, not
// work per repetition, so deterministic metrics stay comparable to
// checked-in baselines).
type Scenario struct {
	Name     string
	Describe string
	// Metrics declares every metric a repetition produces. Run fails
	// on undeclared or missing metrics so reports can't silently drop
	// coverage.
	Metrics map[string]MetricMeta
	// Run executes one repetition and returns its samples.
	Run func() (map[string]float64, error)
}

// Run executes warmup discarded repetitions followed by reps measured
// ones and aggregates each metric into mean ± CI95. progress, when
// non-nil, receives one line per repetition.
func Run(s Scenario, warmup, reps int, progress func(string)) (Report, error) {
	if reps < 1 {
		return Report{}, fmt.Errorf("bench: reps must be ≥1, got %d", reps)
	}
	logf := func(format string, args ...any) {
		if progress != nil {
			progress(fmt.Sprintf(format, args...))
		}
	}
	for i := 0; i < warmup; i++ {
		logf("%s: warmup %d/%d", s.Name, i+1, warmup)
		if _, err := s.Run(); err != nil {
			return Report{}, fmt.Errorf("bench: %s warmup %d: %w", s.Name, i+1, err)
		}
	}
	samples := map[string][]float64{}
	for i := 0; i < reps; i++ {
		logf("%s: rep %d/%d", s.Name, i+1, reps)
		m, err := s.Run()
		if err != nil {
			return Report{}, fmt.Errorf("bench: %s rep %d: %w", s.Name, i+1, err)
		}
		for k, v := range m {
			if _, ok := s.Metrics[k]; !ok {
				return Report{}, fmt.Errorf("bench: scenario %s produced undeclared metric %q", s.Name, k)
			}
			samples[k] = append(samples[k], v)
		}
	}
	r := Report{
		Schema:   Schema,
		Scenario: s.Name,
		Go:       runtime.Version(),
		Reps:     reps,
		Warmup:   warmup,
		Metrics:  map[string]Metric{},
	}
	for name, meta := range s.Metrics {
		vals := samples[name]
		if len(vals) != reps {
			return Report{}, fmt.Errorf("bench: scenario %s metric %q present in %d/%d reps", s.Name, name, len(vals), reps)
		}
		mean, ci := meanCI95(vals)
		r.Metrics[name] = Metric{
			Unit: meta.Unit, Better: meta.Better, Hermetic: meta.Hermetic,
			Mean: mean, CI95: ci, N: len(vals),
		}
	}
	return r, nil
}

// tCrit95 holds two-sided 95% Student-t critical values indexed by
// degrees of freedom; beyond the table the normal 1.96 is close enough.
var tCrit95 = []float64{0,
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// meanCI95 returns the sample mean and the half-width of its 95%
// confidence interval. A single sample has an unknowable variance; its
// CI is reported as 0 and Compare's relative threshold carries the
// noise allowance alone.
func meanCI95(vals []float64) (mean, ci float64) {
	if len(vals) == 0 {
		return math.NaN(), 0
	}
	// Identical samples (deterministic metrics) short-circuit to the
	// exact value: summing then dividing would otherwise round the
	// mean off by an ulp and report a spurious ~1e-14 CI.
	identical := true
	for _, v := range vals {
		if v != vals[0] {
			identical = false
			break
		}
	}
	if identical {
		return vals[0], 0
	}
	n := float64(len(vals))
	for _, v := range vals {
		mean += v
	}
	mean /= n
	if len(vals) < 2 {
		return mean, 0
	}
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / (n - 1))
	df := len(vals) - 1
	t := 1.96
	if df < len(tCrit95) {
		t = tCrit95[df]
	}
	return mean, t * sd / math.Sqrt(n)
}

// quantileSorted returns the q-quantile (q in [0,1]) of an ascending
// slice by linear interpolation; NaN when empty.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// WriteFile persists the report as indented JSON (stable key order, so
// re-generated baselines diff cleanly).
func (r Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadFile loads a report and validates its schema version.
func ReadFile(path string) (Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return Report{}, fmt.Errorf("bench: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return Report{}, fmt.Errorf("bench: %s has schema %d, this tool reads schema %d", path, r.Schema, Schema)
	}
	if r.Scenario == "" {
		return Report{}, fmt.Errorf("bench: %s has no scenario name", path)
	}
	return r, nil
}

// MetricNames returns the report's metric names sorted for stable
// iteration.
func (r Report) MetricNames() []string {
	names := make([]string, 0, len(r.Metrics))
	for n := range r.Metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
