// The live_net scenario: the serving path measured over real TCP
// through internal/netsrv, in both wire protocols. The hermetic pair of
// metrics — allocations per request for text vs binary at the same
// fan-in — is the gate that keeps the zero-copy binary path honest: it
// must stay strictly below the text path or the pooling has regressed.
// The throughput/latency points sweep fan-in (64 and 1k connections
// in-process; 10k against a concord-kvd subprocess so each side of the
// socket pair gets its own file-descriptor budget).
package bench

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"concord/internal/kv"
	"concord/internal/live"
	"concord/internal/netsrv"
	"concord/internal/proto"
)

const (
	// Store shape shared by every point.
	netKeys    = 1000
	netValSize = 64

	// c64: the alloc-gate point, run once per protocol in-process.
	netC64Conns = 64
	netC64Depth = 32
	netC64Reqs  = 250 // per connection → 16k requests

	// c1k: mid fan-in, binary only, in-process.
	netC1kConns = 1024
	netC1kDepth = 8
	netC1kReqs  = 16 // → 16,384 requests

	// c10k: massive fan-in, binary only, against a kvd subprocess
	// (in-process would need 2 fds per connection and blow the rlimit).
	netC10kConns = 10240
	netC10kDepth = 4
	netC10kReqs  = 8 // → 81,920 requests

	// netDialPar bounds concurrent dials so a 10k-connection ramp does
	// not overwhelm the accept queue.
	netDialPar = 256
)

// NetScenario measures the wire-protocol stack end to end over
// loopback TCP: request encode, frame decode, live scheduling, response
// batching, client-side matching.
func NetScenario() Scenario {
	return Scenario{
		Name: "live_net",
		Describe: fmt.Sprintf(
			"loopback TCP through netsrv: text+binary at %d conns, binary at %d and %d conns (×depth %d/%d/%d), %d keys × %dB",
			netC64Conns, netC1kConns, netC10kConns, netC64Depth, netC1kDepth, netC10kDepth, netKeys, netValSize),
		Metrics: map[string]MetricMeta{
			"allocs_per_req_text":   {Unit: "allocs", Better: "lower", Hermetic: true},
			"allocs_per_req_binary": {Unit: "allocs", Better: "lower", Hermetic: true},
			"rps_text_c64":          {Unit: "req/s", Better: "higher", Hermetic: false},
			"p99_us_text_c64":       {Unit: "us", Better: "lower", Hermetic: false},
			"p999_us_text_c64":      {Unit: "us", Better: "lower", Hermetic: false},
			"rps_binary_c64":        {Unit: "req/s", Better: "higher", Hermetic: false},
			"p99_us_binary_c64":     {Unit: "us", Better: "lower", Hermetic: false},
			"p999_us_binary_c64":    {Unit: "us", Better: "lower", Hermetic: false},
			"rps_binary_c1k":        {Unit: "req/s", Better: "higher", Hermetic: false},
			"p99_us_binary_c1k":     {Unit: "us", Better: "lower", Hermetic: false},
			"p999_us_binary_c1k":    {Unit: "us", Better: "lower", Hermetic: false},
			"rps_binary_c10k":       {Unit: "req/s", Better: "higher", Hermetic: false},
			"p99_us_binary_c10k":    {Unit: "us", Better: "lower", Hermetic: false},
			"p999_us_binary_c10k":   {Unit: "us", Better: "lower", Hermetic: false},
		},
		Run: runNet,
	}
}

func runNet() (map[string]float64, error) {
	out := map[string]float64{}
	for _, pt := range []struct {
		suffix string
		conns  int
		depth  int // 0 = text protocol
		reqs   int
		allocs string // metric name for allocs/req, "" to skip
	}{
		{"text_c64", netC64Conns, 0, netC64Reqs, "allocs_per_req_text"},
		{"binary_c64", netC64Conns, netC64Depth, netC64Reqs, "allocs_per_req_binary"},
		{"binary_c1k", netC1kConns, netC1kDepth, netC1kReqs, ""},
	} {
		rps, p99, p999, allocs, err := runNetPoint(pt.conns, pt.depth, pt.reqs)
		if err != nil {
			return nil, fmt.Errorf("bench: live_net %s: %w", pt.suffix, err)
		}
		out["rps_"+pt.suffix] = rps
		out["p99_us_"+pt.suffix] = p99
		out["p999_us_"+pt.suffix] = p999
		if pt.allocs != "" {
			out[pt.allocs] = allocs
		}
	}
	rps, p99, p999, err := runNetSubprocess(netC10kConns, netC10kDepth, netC10kReqs)
	if err != nil {
		return nil, fmt.Errorf("bench: live_net binary_c10k: %w", err)
	}
	out["rps_binary_c10k"] = rps
	out["p99_us_binary_c10k"] = p99
	out["p999_us_binary_c10k"] = p999
	return out, nil
}

// netMaxConns caps a point's fan-in to the process's file-descriptor
// budget: fdsPerConn is 2 in-process (both socket ends live here) and 1
// against a subprocess server.
func netMaxConns(want, fdsPerConn int) int {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return want
	}
	if max := (int(rl.Cur) - 768) / fdsPerConn; want > max {
		return max
	}
	return want
}

// runNetPoint serves one in-process point: a live runtime behind a
// netsrv listener, conns client connections each issuing reqs requests
// (depth-pipelined binary frames, or lockstep text when depth is 0).
// allocsPerReq counts both socket ends, which is exactly the
// client+server cost a colocated tier pays and keeps the text/binary
// comparison symmetric.
func runNetPoint(conns, depth, reqs int) (rps, p99, p999, allocsPerReq float64, err error) {
	conns = netMaxConns(conns, 2)
	store := kv.New()
	seedStore(store)
	rt := live.New(&netsrv.KVHandler{Store: store, ScanBatch: 256}, live.Options{
		Workers:    2,
		PinThreads: false,
	})
	rt.Start()
	defer rt.Stop()
	ns := netsrv.New(rt, netsrv.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	go ns.Serve(ln)
	defer func() {
		ln.Close()
		ns.Drain(time.Second)
	}()

	rps, p99, p999, allocsPerReq, err = netDrive(ln.Addr().String(), conns, depth, reqs, true)
	return rps, p99, p999, allocsPerReq, err
}

// netDrive fans conns clients into addr and aggregates their latencies.
func netDrive(addr string, conns, depth, reqs int, countAllocs bool) (rps, p99, p999, allocsPerReq float64, err error) {
	perConn := make([][]float64, conns)
	errs := make(chan error, conns)
	sem := make(chan struct{}, netDialPar)
	var before, after runtime.MemStats
	if countAllocs {
		runtime.ReadMemStats(&before)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var lats []float64
			var cerr error
			if depth > 0 {
				lats, cerr = netBinaryConn(addr, depth, reqs, c)
			} else {
				lats, cerr = netTextConn(addr, reqs, c)
			}
			if cerr != nil {
				errs <- cerr
				return
			}
			perConn[c] = lats
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	if countAllocs {
		runtime.ReadMemStats(&after)
	}
	select {
	case err := <-errs:
		return 0, 0, 0, 0, err
	default:
	}
	var lats []float64
	for _, l := range perConn {
		lats = append(lats, l...)
	}
	if len(lats) != conns*reqs {
		return 0, 0, 0, 0, fmt.Errorf("completed %d of %d requests", len(lats), conns*reqs)
	}
	sort.Float64s(lats)
	total := float64(len(lats))
	return total / wall.Seconds(),
		quantileSorted(lats, 0.99),
		quantileSorted(lats, 0.999),
		float64(after.Mallocs-before.Mallocs) / total,
		nil
}

// appendKey renders the store's key%08d naming without fmt.
func appendKey(dst []byte, i int) []byte {
	dst = append(dst, "key"...)
	var digits [8]byte
	for d := 7; d >= 0; d-- {
		digits[d] = byte('0' + i%10)
		i /= 10
	}
	return append(dst, digits[:]...)
}

func seedStore(store *kv.Store) {
	val := make([]byte, netValSize)
	for i := range val {
		val[i] = 'v'
	}
	var key []byte
	for i := 0; i < netKeys; i++ {
		key = appendKey(key[:0], i)
		store.Put(key, val)
	}
}

// netBinaryConn runs one pipelined binary connection: depth requests in
// flight, slot index as request id, next request launched from the slot
// each response frees — the same discipline as concord-load's fleet,
// minus the failure plumbing a controlled benchmark does not need.
func netBinaryConn(addr string, depth, total, salt int) ([]float64, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	rr := proto.NewRespReader(conn, 1<<14)
	starts := make([]time.Time, depth)
	lats := make([]float64, 0, total)
	var wbuf, key []byte
	sent := 0
	send := func(id int) error {
		key = appendKey(key[:0], (salt+sent)%netKeys)
		starts[id] = time.Now()
		wbuf = proto.AppendRequest(wbuf[:0], proto.OpGet, uint64(id), key, nil)
		sent++
		_, werr := conn.Write(wbuf)
		return werr
	}
	for id := 0; id < depth && sent < total; id++ {
		if err := send(id); err != nil {
			return nil, err
		}
	}
	for recvd := 0; recvd < total; recvd++ {
		resp, err := rr.Next()
		if err != nil {
			return nil, err
		}
		if resp.Status != proto.StValue {
			return nil, fmt.Errorf("GET replied %s", proto.StatusString(resp.Status))
		}
		id := int(resp.ID)
		if id < 0 || id >= depth {
			return nil, fmt.Errorf("response id %d out of range", resp.ID)
		}
		lats = append(lats, float64(time.Since(starts[id]))/float64(time.Microsecond))
		if sent < total {
			if err := send(id); err != nil {
				return nil, err
			}
		}
	}
	return lats, nil
}

// netTextConn runs one lockstep text connection.
func netTextConn(addr string, total, salt int) ([]float64, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<12)
	lats := make([]float64, 0, total)
	var wbuf []byte
	for i := 0; i < total; i++ {
		wbuf = appendKey(append(wbuf[:0], "GET "...), (salt+i)%netKeys)
		wbuf = append(wbuf, '\n')
		start := time.Now()
		if _, err := conn.Write(wbuf); err != nil {
			return nil, err
		}
		line, err := br.ReadSlice('\n')
		if err != nil {
			return nil, err
		}
		if len(line) < 5 || string(line[:5]) != "VALUE" {
			return nil, fmt.Errorf("GET replied %q", strings.TrimSpace(string(line)))
		}
		lats = append(lats, float64(time.Since(start))/float64(time.Microsecond))
	}
	return lats, nil
}

// kvdBuild caches the one concord-kvd build a process needs for the
// subprocess point.
var kvdBuild struct {
	once sync.Once
	path string
	err  error
}

func buildKVD() (string, error) {
	kvdBuild.once.Do(func() {
		dir, err := os.MkdirTemp("", "concord-bench-")
		if err != nil {
			kvdBuild.err = err
			return
		}
		path := filepath.Join(dir, "concord-kvd")
		cmd := exec.Command("go", "build", "-o", path, "concord/cmd/concord-kvd")
		if out, err := cmd.CombinedOutput(); err != nil {
			kvdBuild.err = fmt.Errorf("go build concord-kvd: %v\n%s", err, out)
			return
		}
		kvdBuild.path = path
	})
	return kvdBuild.path, kvdBuild.err
}

// runNetSubprocess drives the c10k point against a concord-kvd child
// process: the server's sockets come out of the child's fd budget, so
// the benchmark process only pays one descriptor per connection and 10k
// fan-in fits inside a 20k rlimit.
func runNetSubprocess(conns, depth, reqs int) (rps, p99, p999 float64, err error) {
	conns = netMaxConns(conns, 1)
	kvd, err := buildKVD()
	if err != nil {
		return 0, 0, 0, err
	}
	cmd := exec.Command(kvd,
		"-addr", "127.0.0.1:0",
		"-workers", "2",
		"-keys", strconv.Itoa(netKeys),
		"-valsize", strconv.Itoa(netValSize))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return 0, 0, 0, err
	}
	if err := cmd.Start(); err != nil {
		return 0, 0, 0, err
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The listen line ("concord-kvd on 127.0.0.1:PORT: ...") carries the
	// kernel-assigned port; keep draining stderr afterwards so the child
	// never blocks on a full pipe.
	sc := bufio.NewScanner(stderr)
	addr := ""
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "concord-kvd on "); i >= 0 {
			rest := line[i+len("concord-kvd on "):]
			if j := strings.Index(rest, ": "); j >= 0 {
				addr = rest[:j]
			}
			break
		}
	}
	if addr == "" {
		return 0, 0, 0, fmt.Errorf("concord-kvd never announced its address (scan err %v)", sc.Err())
	}
	go func() {
		for sc.Scan() {
		}
	}()

	rps, p99, p999, _, err = netDrive(addr, conns, depth, reqs, false)
	return rps, p99, p999, err
}
