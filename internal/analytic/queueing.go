package analytic

import (
	"fmt"
	"math"
)

// Closed-form queueing results used to validate the simulator: with all
// mechanism costs zeroed (cost.Ideal) and preemption disabled, the
// simulated server is an M/G/c FCFS queue and must agree with theory.

// ErlangC returns the probability that an arriving request waits in an
// M/M/c queue with offered load a = λ/µ (in Erlangs) and c servers.
// It returns 1 for a >= c (unstable).
func ErlangC(c int, a float64) float64 {
	if c <= 0 {
		panic("analytic: ErlangC needs at least one server")
	}
	if a < 0 {
		panic("analytic: negative offered load")
	}
	rho := a / float64(c)
	if rho >= 1 {
		return 1
	}
	// Iteratively compute the Erlang-B blocking probability, then
	// convert: C = B / (1 - ρ(1-B)).
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b / (1 - rho*(1-b))
}

// MMcWait returns the mean waiting time (excluding service) in an M/M/c
// queue with arrival rate lambda and mean service time s (same time
// units). It returns +Inf when unstable.
func MMcWait(c int, lambda, s float64) float64 {
	if lambda < 0 || s <= 0 {
		panic("analytic: invalid rate or service time")
	}
	a := lambda * s
	rho := a / float64(c)
	if rho >= 1 {
		return math.Inf(1)
	}
	return ErlangC(c, a) * s / (float64(c) * (1 - rho))
}

// MM1Slowdown returns the mean slowdown (sojourn/service) of an M/M/1
// FCFS queue at utilization rho: 1/(1-ρ).
func MM1Slowdown(rho float64) float64 {
	if rho < 0 {
		panic("analytic: negative utilization")
	}
	if rho >= 1 {
		return math.Inf(1)
	}
	return 1 / (1 - rho)
}

// MG1Wait returns the Pollaczek–Khinchine mean waiting time of an M/G/1
// FCFS queue: W = λ·E[S²] / (2(1-ρ)). meanS and meanS2 are the first
// two moments of the service time; lambda the arrival rate.
func MG1Wait(lambda, meanS, meanS2 float64) float64 {
	if lambda < 0 || meanS <= 0 || meanS2 < meanS*meanS {
		panic(fmt.Sprintf("analytic: invalid M/G/1 parameters λ=%v E[S]=%v E[S²]=%v", lambda, meanS, meanS2))
	}
	rho := lambda * meanS
	if rho >= 1 {
		return math.Inf(1)
	}
	return lambda * meanS2 / (2 * (1 - rho))
}

// MG1PSSlowdown returns the mean slowdown under M/G/1 Processor
// Sharing, which is insensitive to the service distribution: 1/(1-ρ).
// It is the ideal that quantum-based preemptive requeueing approaches as
// the quantum shrinks.
func MG1PSSlowdown(rho float64) float64 {
	return MM1Slowdown(rho)
}

// BimodalMoments returns E[S] and E[S²] for a two-point service
// distribution: probability pShort of sShort, else sLong.
func BimodalMoments(pShort, sShort, sLong float64) (meanS, meanS2 float64) {
	if pShort < 0 || pShort > 1 {
		panic("analytic: probability outside [0,1]")
	}
	meanS = pShort*sShort + (1-pShort)*sLong
	meanS2 = pShort*sShort*sShort + (1-pShort)*sLong*sLong
	return
}

// MGcWaitApprox returns the Lee–Longton approximation for the mean wait
// of an M/G/c queue: the M/M/c wait scaled by (1+CV²)/2. Exact for
// M/M/c and asymptotically correct in heavy traffic.
func MGcWaitApprox(c int, lambda, meanS, meanS2 float64) float64 {
	cv2 := meanS2/(meanS*meanS) - 1
	if cv2 < 0 {
		cv2 = 0
	}
	return MMcWait(c, lambda, meanS) * (1 + cv2) / 2
}
