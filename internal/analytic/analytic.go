// Package analytic implements the paper's §2 throughput-overhead model
// (Eqs. 1–4) in closed form. The simulator (internal/server) charges the
// same costs event-by-event; the tests cross-validate the two.
//
//	Overhead_sys = (n·Overhead_w + Overhead_d) / (n + 1)          (Eq. 1)
//	Overhead_w   = (c_proc + c_pre + c_fin) / S                   (Eq. 2)
//	c_pre        = floor(S/q) · (c_notif + c_switch + c_next)     (Eq. 3)
//	c_fin        = c_switch + c_next                              (Eq. 4)
package analytic

import (
	"concord/internal/cost"
	"concord/internal/mech"
	"concord/internal/sim"
)

// Params names the quantities in Eqs. 1–4 for one system configuration.
type Params struct {
	// Workers is n: the number of worker threads.
	Workers int
	// Service is S: the request service time in cycles.
	Service sim.Cycles
	// Quantum is q: the scheduling quantum in cycles; 0 disables
	// preemption (c_pre = 0).
	Quantum sim.Cycles
	// ProcFrac is c_proc/S: runtime + instrumentation overhead fraction.
	ProcFrac float64
	// Notif is c_notif: the worker-side preemption notification cost.
	Notif sim.Cycles
	// Switch is c_switch: the context-switch cost.
	Switch sim.Cycles
	// Next is c_next: the cost of waiting for the next request.
	Next sim.Cycles
	// DispatcherOverhead is Overhead_d: 1 for a dedicated dispatcher,
	// less for a work-conserving one.
	DispatcherOverhead float64
}

// ForSystem derives Params from a cost model, a mechanism, and a queueing
// mode. jbsq selects the near-zero c_next of bounded worker-local queues
// instead of the synchronous single-queue handoff; workConserving lowers
// Overhead_d per §3.3's 40%-effectiveness argument.
func ForSystem(m cost.Model, mc mech.Mechanism, workers int, service, quantum sim.Cycles, jbsq, workConserving bool) Params {
	next := m.NextRequest
	if jbsq {
		next = m.JBSQLocalPop
	}
	disp := 1.0
	if workConserving {
		// §3.3's illustration: a dispatcher idle half the time running
		// rdtsc-instrumented code is ≈40% as effective as a worker, so it
		// wastes only ≈60% of a core instead of 100%.
		disp = 0.6
	}
	return Params{
		Workers:            workers,
		Service:            service,
		Quantum:            quantum,
		ProcFrac:           mc.ProcOverhead(),
		Notif:              mc.NotifyCost(),
		Switch:             m.ContextSwitch,
		Next:               next,
		DispatcherOverhead: disp,
	}
}

// Preemptions returns floor(S/q), the preemption count per request.
func (p Params) Preemptions() int64 {
	if p.Quantum <= 0 {
		return 0
	}
	return int64(p.Service / p.Quantum)
}

// CPre returns c_pre per Eq. 3.
func (p Params) CPre() float64 {
	return float64(p.Preemptions()) * float64(p.Notif+p.Switch+p.Next)
}

// CFin returns c_fin per Eq. 4.
func (p Params) CFin() float64 {
	return float64(p.Switch + p.Next)
}

// WorkerOverhead returns Overhead_w per Eq. 2.
func (p Params) WorkerOverhead() float64 {
	if p.Service <= 0 {
		panic("analytic: non-positive service time")
	}
	cproc := p.ProcFrac * float64(p.Service)
	return (cproc + p.CPre() + p.CFin()) / float64(p.Service)
}

// SystemOverhead returns Overhead_sys per Eq. 1.
func (p Params) SystemOverhead() float64 {
	if p.Workers <= 0 {
		panic("analytic: need at least one worker")
	}
	n := float64(p.Workers)
	return (n*p.WorkerOverhead() + p.DispatcherOverhead) / (n + 1)
}

// MaxGoodputFrac returns the fraction of the machine's aggregate CPU
// capacity available for application goodput: 1 - Overhead_sys.
func (p Params) MaxGoodputFrac() float64 {
	return 1 - p.SystemOverhead()
}

// DedicatedDispatcherWaste returns the §2.2.3 small-VM argument: the
// fraction of a v-core VM's capacity lost to a dedicated dispatcher that
// is only busy a fraction busyFrac of the time.
func DedicatedDispatcherWaste(vcpus int, busyFrac float64) float64 {
	if vcpus <= 0 {
		panic("analytic: need at least one vCPU")
	}
	if busyFrac < 0 || busyFrac > 1 {
		panic("analytic: busy fraction outside [0,1]")
	}
	return (1 - busyFrac) / float64(vcpus)
}
