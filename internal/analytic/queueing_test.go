package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"concord/internal/cost"
	"concord/internal/dist"
	"concord/internal/mech"
	"concord/internal/server"
)

func TestErlangCKnownValues(t *testing.T) {
	// Classic tabulated values: c=1 reduces to ρ; c=2, a=1 → 1/3.
	if got := ErlangC(1, 0.5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("ErlangC(1, 0.5) = %v, want 0.5", got)
	}
	if got := ErlangC(2, 1); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("ErlangC(2, 1) = %v, want 1/3", got)
	}
	if got := ErlangC(3, 3.1); got != 1 {
		t.Errorf("unstable ErlangC = %v, want 1", got)
	}
}

func TestErlangCMonotoneInLoad(t *testing.T) {
	prop := func(aRaw, bRaw uint8) bool {
		a := float64(aRaw) / 64 // up to 4 Erlangs
		b := float64(bRaw) / 64
		if a > b {
			a, b = b, a
		}
		return ErlangC(4, a) <= ErlangC(4, b)+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMMcWaitReducesToMM1(t *testing.T) {
	// M/M/1: W = ρ/(1-ρ)·s.
	s, lambda := 1.0, 0.7
	want := 0.7 / 0.3 * s
	if got := MMcWait(1, lambda, s); math.Abs(got-want) > 1e-9 {
		t.Errorf("MMcWait(1) = %v, want %v", got, want)
	}
	if !math.IsInf(MMcWait(2, 3, 1), 1) {
		t.Error("unstable M/M/c should have infinite wait")
	}
}

func TestMG1WaitMatchesMM1(t *testing.T) {
	// Exponential service: E[S²] = 2E[S]², P-K reduces to M/M/1.
	s, lambda := 2.0, 0.3
	want := MMcWait(1, lambda, s)
	got := MG1Wait(lambda, s, 2*s*s)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("MG1Wait = %v, want M/M/1 %v", got, want)
	}
}

func TestBimodalMoments(t *testing.T) {
	m1, m2 := BimodalMoments(0.995, 0.5, 500)
	wantM1 := 0.995*0.5 + 0.005*500
	wantM2 := 0.995*0.25 + 0.005*250000
	if math.Abs(m1-wantM1) > 1e-9 || math.Abs(m2-wantM2) > 1e-9 {
		t.Fatalf("moments = %v %v, want %v %v", m1, m2, wantM1, wantM2)
	}
}

// With *fixed* service times, slowdown = sojourn/s exactly, so the mean
// slowdown must equal 1 + W/s with W from M/D/c ≈ Lee–Longton (CV=0:
// half the M/M/c wait).
func TestSimulatorMatchesMDc(t *testing.T) {
	m := cost.Ideal()
	const workers = 2
	const sUS = 10.0
	for _, rho := range []float64{0.5, 0.7, 0.85} {
		lambdaPerUS := rho * workers / sUS
		kRps := lambdaPerUS * 1e6 / 1000
		cfg := server.Config{
			Name: "ideal-fcfs", Workers: workers,
			Mech: mech.None{M: m}, Model: m, QueueBound: 1,
		}
		wl := server.Workload{Dist: dist.NewFixed(sUS)}
		pt := server.RunAt(cfg, wl, kRps, server.RunParams{Requests: 200000, Seed: 67})

		wantWait := MGcWaitApprox(workers, lambdaPerUS, sUS, sUS*sUS)
		want := 1 + wantWait/sUS
		got := pt.Mean
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("rho=%v: simulated mean slowdown %v vs M/D/c theory %v (>15%% off)",
				rho, got, want)
		}
	}
}

// Quantum preemption with requeue approaches Processor Sharing: at high
// load on a high-variance workload, the mean slowdown of short requests
// sits near PS's 1/(1-ρ) rather than FCFS's (much larger) value.
func TestPreemptionApproachesPS(t *testing.T) {
	m := cost.Ideal()
	const workers = 2
	wl := server.Workload{Dist: dist.Bimodal(90, 2, 10, 100)}
	meanS := wl.Dist.Mean() // 11.8µs
	rho := 0.7
	kRps := rho * workers / meanS * 1e6 / 1000

	fcfs := server.Config{Name: "fcfs", Workers: workers, Mech: mech.None{M: m}, Model: m, QueueBound: 1}
	ps := server.Config{Name: "ps", Workers: workers, QuantumUS: 2,
		Mech: mech.CacheLine{M: m}, Model: m, QueueBound: 1}

	p := server.RunParams{Requests: 150000, Seed: 71}
	ptF := server.RunAt(fcfs, wl, kRps, p)
	ptP := server.RunAt(ps, wl, kRps, p)

	_, meanS2 := BimodalMoments(0.9, 2, 100)
	fcfsWait := MGcWaitApprox(workers, rho*float64(workers)/meanS, meanS, meanS2)
	psIdeal := MG1PSSlowdown(rho)

	// FCFS short-request slowdown ≈ 1 + W/2µs: large.
	wantShortFCFS := 1 + fcfsWait/2
	if ptF.P50 > ptP.P50*1.05 && ptP.Mean < ptF.Mean {
		// Preemption helps overall; now check magnitudes loosely.
		if ptP.Mean > 3*psIdeal+2 {
			t.Errorf("preemptive mean slowdown %v far above PS ideal %v", ptP.Mean, psIdeal)
		}
		if ptF.Mean < ptP.Mean {
			t.Errorf("FCFS mean %v unexpectedly below preemptive %v on high-variance load", ptF.Mean, ptP.Mean)
		}
	} else if ptF.Mean < 2 && wantShortFCFS > 3 {
		t.Errorf("FCFS mean slowdown %v inconsistent with theory (short wait %v)", ptF.Mean, wantShortFCFS)
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"erlang c=0":  func() { ErlangC(0, 1) },
		"erlang a<0":  func() { ErlangC(1, -1) },
		"mmc bad s":   func() { MMcWait(1, 1, 0) },
		"mg1 bad m2":  func() { MG1Wait(0.1, 2, 1) },
		"mm1 neg rho": func() { MM1Slowdown(-0.1) },
		"bimodal p":   func() { BimodalMoments(1.5, 1, 2) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}
