package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"concord/internal/cost"
	"concord/internal/dist"
	"concord/internal/mech"
	"concord/internal/server"
	"concord/internal/sim"
)

func TestDispatcherWasteExample(t *testing.T) {
	// §2.2.3: a dispatcher that is idle 80% of the time on a 4-vCPU VM
	// wastes 80/(4×100) = 20% of the VM's capacity.
	got := DedicatedDispatcherWaste(4, 0.2)
	if math.Abs(got-0.20) > 1e-9 {
		t.Fatalf("waste = %v, paper's example says 0.20", got)
	}
}

func TestPreemptionsFloor(t *testing.T) {
	p := Params{Service: 10000, Quantum: 3000}
	if got := p.Preemptions(); got != 3 {
		t.Fatalf("Preemptions = %d, want floor(10000/3000) = 3", got)
	}
	p.Quantum = 0
	if got := p.Preemptions(); got != 0 {
		t.Fatalf("Preemptions with no quantum = %d, want 0", got)
	}
	// Exactly divisible: floor(10/5) = 2 per the model (the paper counts
	// the final notification even at the boundary).
	p = Params{Service: 10000, Quantum: 5000}
	if got := p.Preemptions(); got != 2 {
		t.Fatalf("Preemptions = %d, want 2", got)
	}
}

func TestWorkerOverheadComposition(t *testing.T) {
	p := Params{
		Workers: 1, Service: 10000, Quantum: 2500,
		ProcFrac: 0.01, Notif: 1200, Switch: 200, Next: 400,
	}
	// c_pre = 4·1800 = 7200; c_fin = 600; c_proc = 100.
	want := (100.0 + 7200 + 600) / 10000
	if got := p.WorkerOverhead(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("WorkerOverhead = %v, want %v", got, want)
	}
}

func TestSystemOverheadEq1(t *testing.T) {
	p := Params{
		Workers: 3, Service: 10000, Quantum: 0,
		ProcFrac: 0.1, Switch: 0, Next: 0, DispatcherOverhead: 1,
	}
	// Overhead_w = 0.1; Overhead_sys = (3·0.1 + 1)/4 = 0.325.
	if got := p.SystemOverhead(); math.Abs(got-0.325) > 1e-12 {
		t.Fatalf("SystemOverhead = %v, want 0.325", got)
	}
	if got := p.MaxGoodputFrac(); math.Abs(got-0.675) > 1e-12 {
		t.Fatalf("MaxGoodputFrac = %v, want 0.675", got)
	}
}

func TestOverheadDecreasesWithQuantum(t *testing.T) {
	m := cost.Default()
	prev := math.Inf(1)
	for _, qus := range []float64{1, 2, 5, 10, 25, 50, 100} {
		p := ForSystem(m, mech.IPI{M: m}, 14, m.MicrosToCycles(500), m.MicrosToCycles(qus), false, false)
		o := p.SystemOverhead()
		if o >= prev {
			t.Fatalf("overhead not decreasing with quantum at %gµs: %v >= %v", qus, o, prev)
		}
		prev = o
	}
}

func TestConcordBeatsShinjukuAnalytically(t *testing.T) {
	m := cost.Default()
	s, q := m.MicrosToCycles(500), m.MicrosToCycles(5)
	shin := ForSystem(m, mech.IPI{M: m}, 14, s, q, false, false)
	conc := ForSystem(m, mech.CacheLine{M: m}, 14, s, q, true, true)
	if conc.SystemOverhead() >= shin.SystemOverhead() {
		t.Fatalf("Concord overhead %v not below Shinjuku %v",
			conc.SystemOverhead(), shin.SystemOverhead())
	}
	// Fig. 12: Concord cuts preemptive-scheduling overhead ≈4×.
	ratio := shin.CPre() / conc.CPre()
	if ratio < 3 || ratio > 8 {
		t.Errorf("c_pre ratio = %.1f, paper says ≈4×", ratio)
	}
}

// Property: overhead is monotone in each cost component.
func TestOverheadMonotoneProperty(t *testing.T) {
	base := Params{
		Workers: 8, Service: 100000, Quantum: 10000,
		ProcFrac: 0.01, Notif: 500, Switch: 200, Next: 400, DispatcherOverhead: 1,
	}
	prop := func(extraNotif, extraNext uint16) bool {
		p := base
		p.Notif += sim.Cycles(extraNotif)
		p.Next += sim.Cycles(extraNext)
		return p.SystemOverhead() >= base.SystemOverhead()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Cross-validation: the simulator's measured worker-side overhead for an
// isolated stream of long requests must match Eq. 2-3 within tolerance.
func TestModelMatchesSimulator(t *testing.T) {
	m := cost.Default()
	const serviceUS, quantumUS = 200.0, 10.0
	cfg := server.Shinjuku(m, 1, quantumUS)
	wl := server.Workload{Dist: dist.NewFixed(serviceUS)}
	wl.Arrival = dist.NewPoisson(100) // one request at a time
	var firstStartToDone sim.Cycles
	var count int
	mach := server.New(cfg, wl, server.RunParams{Requests: 400, Seed: 31})
	mach.OnComplete = func(r *server.Request) {
		if r.Preemptions > 0 {
			firstStartToDone += r.Done - r.FirstStart
			count++
		}
	}
	mach.Run()
	if count == 0 {
		t.Fatal("no preempted requests completed")
	}
	measured := float64(firstStartToDone)/float64(count)/float64(m.MicrosToCycles(serviceUS)) - 1

	p := ForSystem(m, mech.IPI{M: m}, 1, m.MicrosToCycles(serviceUS), m.MicrosToCycles(quantumUS), false, false)
	// The sim's per-request span includes c_proc and per-preemption
	// notify+switch+requeue-wait. Eq. 2 minus c_fin (span ends at
	// completion, before the next handoff).
	predicted := (p.ProcFrac*float64(p.Service) + p.CPre()) / float64(p.Service)
	// Tolerance is loose: the sim's requeue round-trip through the
	// dispatcher replaces the model's fixed c_next.
	if measured < predicted*0.5 || measured > predicted*2.0 {
		t.Fatalf("simulated overhead %v vs analytic %v: disagree by >2×", measured, predicted)
	}
}
