package trace

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordSlowdown(t *testing.T) {
	r := Record{ServiceUS: 2, SojournUS: 10}
	if got := r.Slowdown(); got != 5 {
		t.Fatalf("slowdown = %v, want 5", got)
	}
	if !math.IsNaN((Record{}).Slowdown()) {
		t.Fatal("zero service time should give NaN slowdown")
	}
}

func TestLogSummarize(t *testing.T) {
	l := NewLog(10)
	for i := 1; i <= 100; i++ {
		l.Add(Record{Class: "x", ServiceUS: 1, SojournUS: float64(i), Preemptions: 1})
	}
	s := l.Summarize()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50 != 50 || s.P99 != 99 || s.P999 != 100 {
		t.Fatalf("percentiles = %v %v %v", s.P50, s.P99, s.P999)
	}
	if s.MeanPreemptions != 1 {
		t.Fatalf("mean preemptions = %v", s.MeanPreemptions)
	}
	if s.MeanSlowdown != 50.5 {
		t.Fatalf("mean slowdown = %v", s.MeanSlowdown)
	}
}

func TestEmptySummary(t *testing.T) {
	s := NewLog(0).Summarize()
	if s.Count != 0 || !math.IsNaN(s.P999) {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestConcurrentAdd(t *testing.T) {
	l := NewLog(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Add(Record{ServiceUS: 1, SojournUS: 2})
			}
		}()
	}
	wg.Wait()
	if l.Len() != 8000 {
		t.Fatalf("len = %d, want 8000", l.Len())
	}
}

func TestWriteCSV(t *testing.T) {
	l := NewLog(2)
	l.Add(Record{Class: "GET", ServiceUS: 1, SojournUS: 3, Preemptions: 2, OnDispatcher: true})
	var b strings.Builder
	if err := l.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "class,service_us") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "GET,1.000,3.000,3.000,2,true") {
		t.Fatalf("row missing: %q", out)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	h.ObserveUS(0.5)  // bucket 0
	h.ObserveUS(1.5)  // 1-2
	h.ObserveUS(3)    // 2-4
	h.ObserveUS(1000) // 512-1024
	h.ObserveDuration(2 * time.Millisecond)
	h.ObserveUS(-1) // dropped
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	out := h.String()
	if !strings.Contains(out, "#") {
		t.Fatalf("histogram bars missing:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 5 {
		t.Fatalf("%d non-empty buckets, want 5:\n%s", lines, out)
	}
}

func TestHistogramOverflowClamped(t *testing.T) {
	var h Histogram
	h.ObserveUS(math.MaxFloat64)
	if h.Count() != 1 {
		t.Fatal("overflow observation lost")
	}
}

func TestSummaryString(t *testing.T) {
	l := NewLog(1)
	l.Add(Record{ServiceUS: 1, SojournUS: 2})
	s := l.Summarize().String()
	if !strings.Contains(s, "p99.9=") || !strings.Contains(s, "n=1") {
		t.Fatalf("summary string = %q", s)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	h.ObserveUS(0.5)
	h.ObserveUS(3)
	h.ObserveUS(100)
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("snapshot count = %d", s.Count)
	}
	if s.SumUS != 103.5 {
		t.Fatalf("snapshot sum = %v, want 103.5", s.SumUS)
	}
	total := 0
	for _, c := range s.Buckets {
		total += c
	}
	if total != 3 {
		t.Fatalf("bucket counts sum to %d", total)
	}
	// Snapshot is a copy: further observations don't mutate it.
	h.ObserveUS(1)
	if s.Count != 3 {
		t.Fatal("snapshot aliased live histogram")
	}
}

func TestBucketUpperUS(t *testing.T) {
	if BucketUpperUS(0) != 1 || BucketUpperUS(1) != 2 || BucketUpperUS(10) != 1024 {
		t.Fatalf("bucket bounds: %v %v %v", BucketUpperUS(0), BucketUpperUS(1), BucketUpperUS(10))
	}
}

// TestQuantileKnownDistributions checks Quantile against distributions
// whose true quantiles are known. Log-2 bucketing bounds the error by
// the bucket width: an estimate must land within a factor of 2 of the
// true value, and interpolation keeps it inside the right bucket.
func TestQuantileKnownDistributions(t *testing.T) {
	if !math.IsNaN((HistSnapshot{}).Quantile(0.5)) {
		t.Fatal("empty snapshot must give NaN")
	}

	// Point mass: every observation is 100µs → bucket [64,128).
	var point Histogram
	for i := 0; i < 1000; i++ {
		point.ObserveUS(100)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := point.Quantile(q)
		if got < 64 || got > 128 {
			t.Fatalf("point-mass Quantile(%v) = %v, want within bucket [64,128]", q, got)
		}
	}

	// Uniform integers 1..1024: true quantile(q) = 1024q.
	var uni Histogram
	for i := 1; i <= 1024; i++ {
		uni.ObserveUS(float64(i))
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99} {
		truth := 1024 * q
		got := uni.Quantile(q)
		if got < truth/2 || got > truth*2 {
			t.Fatalf("uniform Quantile(%v) = %v, want within factor 2 of %v", q, got, truth)
		}
	}

	// Bimodal 99% at 5µs, 1% at 500µs: p50 in the short mode's bucket
	// [4,8], p99.9 in the long mode's bucket (256,512].
	var bi Histogram
	for i := 0; i < 990; i++ {
		bi.ObserveUS(5)
	}
	for i := 0; i < 10; i++ {
		bi.ObserveUS(500)
	}
	if p50 := bi.Quantile(0.5); p50 < 4 || p50 > 8 {
		t.Fatalf("bimodal p50 = %v, want in [4,8]", p50)
	}
	if p999 := bi.Quantile(0.999); p999 < 256 || p999 > 512 {
		t.Fatalf("bimodal p99.9 = %v, want in (256,512]", p999)
	}

	// Monotonicity and clamping.
	if bi.Quantile(0.1) > bi.Quantile(0.9) {
		t.Fatal("quantiles not monotone")
	}
	if bi.Quantile(-1) > bi.Quantile(2) {
		t.Fatal("out-of-range q not clamped")
	}
}

// TestHistogramConcurrentObserve is the regression test for the
// concord-load data race: per-request goroutines observe into one
// histogram. Pre-fix, ObserveUS had no synchronization — this test
// fails under -race and typically undercounts.
func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.ObserveUS(float64((g*perG + i) % 4096))
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("Count = %d after %d concurrent observations", got, goroutines*perG)
	}
	if h.String() == "" {
		t.Fatal("histogram rendered empty")
	}
}

// TestHistogramMerge checks that merging two histograms preserves the
// union's count, sum, and per-bucket totals: merged quantiles are those
// of observing both sample sets into one histogram.
func TestHistogramMerge(t *testing.T) {
	var a, b, union Histogram
	for i := 0; i < 1000; i++ {
		us := float64(i % 100)
		a.ObserveUS(us)
		union.ObserveUS(us)
	}
	for i := 0; i < 500; i++ {
		us := float64(1000 + i%4000)
		b.ObserveUS(us)
		union.ObserveUS(us)
	}
	a.Merge(b.Snapshot())

	got, want := a.Snapshot(), union.Snapshot()
	if got.Count != want.Count {
		t.Fatalf("merged Count = %d, want %d", got.Count, want.Count)
	}
	if math.Abs(got.SumUS-want.SumUS) > 1e-6 {
		t.Fatalf("merged SumUS = %v, want %v", got.SumUS, want.SumUS)
	}
	if got.Buckets != want.Buckets {
		t.Fatalf("merged buckets differ from union:\n got %v\nwant %v", got.Buckets, want.Buckets)
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if g, w := got.Quantile(q), want.Quantile(q); g != w {
			t.Fatalf("merged Quantile(%v) = %v, union = %v", q, g, w)
		}
	}
}

// TestHistogramMergeEmpty: merging an empty snapshot is a no-op, and
// merging into an empty histogram reproduces the source exactly.
func TestHistogramMergeEmpty(t *testing.T) {
	var src, dst, empty Histogram
	for i := 0; i < 100; i++ {
		src.ObserveUS(float64(i))
	}
	before := src.Snapshot()
	src.Merge(empty.Snapshot())
	if after := src.Snapshot(); after != before {
		t.Fatal("merging an empty snapshot changed the histogram")
	}
	dst.Merge(before)
	if got := dst.Snapshot(); got != before {
		t.Fatal("merge into empty histogram did not reproduce the source")
	}
}

// TestHistogramReset returns the histogram to its zero state; the
// count/sum invariants hold across an observe-reset-observe cycle.
func TestHistogramReset(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.ObserveUS(float64(i))
	}
	h.Reset()
	s := h.Snapshot()
	if s.Count != 0 || s.SumUS != 0 {
		t.Fatalf("after Reset: Count=%d SumUS=%v, want zeros", s.Count, s.SumUS)
	}
	if s.Buckets != ([64]int{}) {
		t.Fatalf("after Reset: non-empty buckets %v", s.Buckets)
	}
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("quantile of reset histogram should be NaN")
	}
	h.ObserveUS(7)
	if got := h.Snapshot(); got.Count != 1 || got.SumUS != 7 {
		t.Fatalf("observe after Reset: Count=%d SumUS=%v, want 1/7", got.Count, got.SumUS)
	}
}

// TestHistogramConcurrentMergeReset exercises Merge/Reset racing with
// observers under -race. Note snapshot-then-reset is inherently lossy
// while observers run (a window between the two calls drops samples —
// windowed estimators avoid the pattern by resetting only epochs that
// are out of the observation path), so concurrent-phase merges assert
// sanity bounds only; the exact invariant is checked after quiescence.
func TestHistogramConcurrentMergeReset(t *testing.T) {
	var h, agg Histogram
	const goroutines, perG = 4, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.ObserveUS(float64(i % 512))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			agg.Merge(h.Snapshot())
			h.Reset()
		}
	}()
	wg.Wait()
	<-done
	if got := agg.Count(); got > goroutines*perG {
		t.Fatalf("aggregate Count = %d exceeds %d observations", got, goroutines*perG)
	}
	// Quiesced: one more drain must account for exactly the remainder.
	before := agg.Count()
	rest := h.Snapshot()
	agg.Merge(rest)
	if got := agg.Count(); got != before+rest.Count {
		t.Fatalf("quiesced merge: Count = %d, want %d", got, before+rest.Count)
	}
}
