// Package trace records per-request latency observations and renders
// them as CSV or as log-bucketed histograms — the measurement layer the
// live load generator and the examples share.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Record is one completed request observation.
type Record struct {
	Class        string
	ServiceUS    float64 // intended (un-instrumented) service time
	SojournUS    float64 // measured time at the server
	Preemptions  int
	OnDispatcher bool
}

// Slowdown returns SojournUS/ServiceUS, the paper's headline metric.
func (r Record) Slowdown() float64 {
	if r.ServiceUS <= 0 {
		return math.NaN()
	}
	return r.SojournUS / r.ServiceUS
}

// Log accumulates records; it is safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	records []Record
}

// NewLog returns a log with capacity for n records.
func NewLog(n int) *Log {
	return &Log{records: make([]Record, 0, n)}
}

// Add appends one record.
func (l *Log) Add(r Record) {
	l.mu.Lock()
	l.records = append(l.records, r)
	l.mu.Unlock()
}

// Len returns the number of records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Snapshot returns a copy of the records.
func (l *Log) Snapshot() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.records))
	copy(out, l.records)
	return out
}

// WriteCSV renders the log as CSV with a header row.
func (l *Log) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "class,service_us,sojourn_us,slowdown,preemptions,on_dispatcher\n"); err != nil {
		return err
	}
	for _, r := range l.Snapshot() {
		if _, err := fmt.Fprintf(w, "%s,%.3f,%.3f,%.3f,%d,%t\n",
			r.Class, r.ServiceUS, r.SojournUS, r.Slowdown(), r.Preemptions, r.OnDispatcher); err != nil {
			return err
		}
	}
	return nil
}

// Summary holds percentile statistics over a set of records.
type Summary struct {
	Count               int
	P50, P90, P99, P999 float64 // slowdown percentiles
	MeanSlowdown        float64
	MeanSojournUS       float64
	MeanPreemptions     float64
	DispatcherFrac      float64
}

// Summarize computes slowdown percentiles over the log.
func (l *Log) Summarize() Summary {
	recs := l.Snapshot()
	if len(recs) == 0 {
		nan := math.NaN()
		return Summary{P50: nan, P90: nan, P99: nan, P999: nan, MeanSlowdown: nan, MeanSojournUS: nan}
	}
	slow := make([]float64, 0, len(recs))
	var sumSlow, sumSoj, sumPre, disp float64
	for _, r := range recs {
		s := r.Slowdown()
		if !math.IsNaN(s) {
			slow = append(slow, s)
			sumSlow += s
		}
		sumSoj += r.SojournUS
		sumPre += float64(r.Preemptions)
		if r.OnDispatcher {
			disp++
		}
	}
	sort.Float64s(slow)
	pct := func(p float64) float64 {
		if len(slow) == 0 {
			return math.NaN()
		}
		rank := int(math.Ceil(p / 100 * float64(len(slow))))
		if rank < 1 {
			rank = 1
		}
		return slow[rank-1]
	}
	n := float64(len(recs))
	return Summary{
		Count:           len(recs),
		P50:             pct(50),
		P90:             pct(90),
		P99:             pct(99),
		P999:            pct(99.9),
		MeanSlowdown:    sumSlow / math.Max(1, float64(len(slow))),
		MeanSojournUS:   sumSoj / n,
		MeanPreemptions: sumPre / n,
		DispatcherFrac:  disp / n,
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf(
		"n=%d p50=%.1f p90=%.1f p99=%.1f p99.9=%.1f mean-slowdown=%.1f mean-sojourn=%.1fµs preempts/req=%.2f dispatcher=%.1f%%",
		s.Count, s.P50, s.P90, s.P99, s.P999, s.MeanSlowdown, s.MeanSojournUS, s.MeanPreemptions, 100*s.DispatcherFrac)
}

// Histogram is a base-2 log-bucketed latency histogram. It is safe for
// concurrent use: load generators observe from per-request goroutines.
type Histogram struct {
	mu      sync.Mutex
	buckets [64]int
	count   int
}

// ObserveUS adds one latency observation in µs.
func (h *Histogram) ObserveUS(us float64) {
	if us < 0 {
		return
	}
	b := 0
	if us >= 1 {
		b = int(math.Log2(us)) + 1
		if b >= len(h.buckets) {
			b = len(h.buckets) - 1
		}
	}
	h.mu.Lock()
	h.buckets[b]++
	h.count++
	h.mu.Unlock()
}

// ObserveDuration adds one latency observation.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.ObserveUS(float64(d) / float64(time.Microsecond))
}

// Count returns the number of observations.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// String renders non-empty buckets with proportional bars.
func (h *Histogram) String() string {
	h.mu.Lock()
	buckets := h.buckets
	h.mu.Unlock()
	var b strings.Builder
	max := 0
	for _, c := range buckets {
		if c > max {
			max = c
		}
	}
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		lo, hi := 0.0, 1.0
		if i > 0 {
			lo = math.Pow(2, float64(i-1))
			hi = math.Pow(2, float64(i))
		}
		bar := strings.Repeat("#", int(math.Ceil(float64(c)/float64(max)*40)))
		fmt.Fprintf(&b, "%10.0f-%-10.0fµs %8d %s\n", lo, hi, c, bar)
	}
	return b.String()
}
