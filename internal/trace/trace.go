// Package trace records per-request latency observations and renders
// them as CSV or as log-bucketed histograms — the measurement layer the
// live load generator and the examples share.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Record is one completed request observation. The breakdown fields
// are populated only when the server reported per-request component
// times (HasBreakdown); they decompose SojournUS into dispatcher
// hand-off, queueing, measured service, and preempted-parked time.
type Record struct {
	Class        string
	ServiceUS    float64 // intended (un-instrumented) service time
	SojournUS    float64 // measured time at the server
	Preemptions  int
	OnDispatcher bool

	HasBreakdown bool
	HandoffUS    float64
	QueueUS      float64
	RunUS        float64 // measured service time
	PreemptedUS  float64
	IngressUS    float64 // frame read off the socket → runtime submit
	EgressUS     float64 // completion → response flushed (client-side estimate)
}

// Slowdown returns SojournUS/ServiceUS, the paper's headline metric.
func (r Record) Slowdown() float64 {
	if r.ServiceUS <= 0 {
		return math.NaN()
	}
	return r.SojournUS / r.ServiceUS
}

// Log accumulates records; it is safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	records []Record
}

// NewLog returns a log with capacity for n records.
func NewLog(n int) *Log {
	return &Log{records: make([]Record, 0, n)}
}

// Add appends one record.
func (l *Log) Add(r Record) {
	l.mu.Lock()
	l.records = append(l.records, r)
	l.mu.Unlock()
}

// Len returns the number of records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Snapshot returns a copy of the records.
func (l *Log) Snapshot() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.records))
	copy(out, l.records)
	return out
}

// WriteCSV renders the log as CSV with a header row. The trailing
// component columns hold server-measured breakdowns and are zero for
// records without one (preempt_count then repeats preemptions).
func (l *Log) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "class,service_us,sojourn_us,slowdown,preemptions,on_dispatcher,handoff_us,queueing_us,service_meas_us,preempted_us,preempt_count,ingress_us,egress_us\n"); err != nil {
		return err
	}
	for _, r := range l.Snapshot() {
		if _, err := fmt.Fprintf(w, "%s,%.3f,%.3f,%.3f,%d,%t,%.3f,%.3f,%.3f,%.3f,%d,%.3f,%.3f\n",
			r.Class, r.ServiceUS, r.SojournUS, r.Slowdown(), r.Preemptions, r.OnDispatcher,
			r.HandoffUS, r.QueueUS, r.RunUS, r.PreemptedUS, r.Preemptions, r.IngressUS, r.EgressUS); err != nil {
			return err
		}
	}
	return nil
}

// Summary holds percentile statistics over a set of records.
type Summary struct {
	Count               int
	P50, P90, P99, P999 float64 // slowdown percentiles
	MeanSlowdown        float64
	MeanSojournUS       float64
	MeanPreemptions     float64
	DispatcherFrac      float64
}

// Summarize computes slowdown percentiles over the log.
func (l *Log) Summarize() Summary {
	recs := l.Snapshot()
	if len(recs) == 0 {
		nan := math.NaN()
		return Summary{P50: nan, P90: nan, P99: nan, P999: nan, MeanSlowdown: nan, MeanSojournUS: nan}
	}
	slow := make([]float64, 0, len(recs))
	var sumSlow, sumSoj, sumPre, disp float64
	for _, r := range recs {
		s := r.Slowdown()
		if !math.IsNaN(s) {
			slow = append(slow, s)
			sumSlow += s
		}
		sumSoj += r.SojournUS
		sumPre += float64(r.Preemptions)
		if r.OnDispatcher {
			disp++
		}
	}
	sort.Float64s(slow)
	pct := func(p float64) float64 {
		if len(slow) == 0 {
			return math.NaN()
		}
		rank := int(math.Ceil(p / 100 * float64(len(slow))))
		if rank < 1 {
			rank = 1
		}
		return slow[rank-1]
	}
	n := float64(len(recs))
	return Summary{
		Count:           len(recs),
		P50:             pct(50),
		P90:             pct(90),
		P99:             pct(99),
		P999:            pct(99.9),
		MeanSlowdown:    sumSlow / math.Max(1, float64(len(slow))),
		MeanSojournUS:   sumSoj / n,
		MeanPreemptions: sumPre / n,
		DispatcherFrac:  disp / n,
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf(
		"n=%d p50=%.1f p90=%.1f p99=%.1f p99.9=%.1f mean-slowdown=%.1f mean-sojourn=%.1fµs preempts/req=%.2f dispatcher=%.1f%%",
		s.Count, s.P50, s.P90, s.P99, s.P999, s.MeanSlowdown, s.MeanSojournUS, s.MeanPreemptions, 100*s.DispatcherFrac)
}

// Histogram is a base-2 log-bucketed latency histogram. It is safe for
// concurrent use: load generators observe from per-request goroutines.
type Histogram struct {
	mu      sync.Mutex
	buckets [64]int
	count   int
	sum     float64
}

// ObserveUS adds one latency observation in µs.
func (h *Histogram) ObserveUS(us float64) {
	if us < 0 {
		return
	}
	b := 0
	if us >= 1 {
		b = int(math.Log2(us)) + 1
		if b >= len(h.buckets) {
			b = len(h.buckets) - 1
		}
	}
	h.mu.Lock()
	h.buckets[b]++
	h.count++
	h.sum += us
	h.mu.Unlock()
}

// ObserveDuration adds one latency observation.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.ObserveUS(float64(d) / float64(time.Microsecond))
}

// Count returns the number of observations.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// HistSnapshot is a consistent point-in-time copy of a Histogram,
// suitable for quantile queries and metrics export without holding the
// histogram lock.
type HistSnapshot struct {
	Buckets [64]int
	Count   int
	SumUS   float64
}

// Snapshot copies the histogram state under the lock.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSnapshot{Buckets: h.buckets, Count: h.count, SumUS: h.sum}
}

// Merge folds a snapshot into the histogram, bucket by bucket. It is
// how per-worker or per-epoch histograms combine into one view: the
// merged count, sum, and quantiles are those of the union of the two
// observation sets.
func (h *Histogram) Merge(s HistSnapshot) {
	h.mu.Lock()
	for i, c := range s.Buckets {
		h.buckets[i] += c
	}
	h.count += s.Count
	h.sum += s.SumUS
	h.mu.Unlock()
}

// Reset discards every observation, returning the histogram to its
// zero state. Used by windowed estimators that rotate epochs in place.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.buckets = [64]int{}
	h.count = 0
	h.sum = 0
	h.mu.Unlock()
}

// BucketUpperUS returns bucket i's upper bound in µs: bucket 0 covers
// [0,1) and bucket i covers [2^(i-1), 2^i).
func BucketUpperUS(i int) float64 {
	if i <= 0 {
		return 1
	}
	return math.Pow(2, float64(i))
}

// Quantile estimates the q-quantile (q in [0,1]) in µs by linear
// interpolation inside the log-2 bucket containing the target rank.
// The estimate is exact to within the bucket's width. It returns NaN
// for an empty snapshot; q is clamped to [0,1].
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	q = math.Min(1, math.Max(0, q))
	target := q * float64(s.Count)
	if target < 1 {
		target = 1
	}
	cum := 0.0
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= target {
			lo := 0.0
			if i > 0 {
				lo = math.Pow(2, float64(i-1))
			}
			hi := BucketUpperUS(i)
			return lo + (hi-lo)*(target-cum)/float64(c)
		}
		cum += float64(c)
	}
	return BucketUpperUS(len(s.Buckets) - 1)
}

// Quantile estimates the q-quantile (q in [0,1]) of the live histogram.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

// String renders non-empty buckets with proportional bars.
func (h *Histogram) String() string {
	h.mu.Lock()
	buckets := h.buckets
	h.mu.Unlock()
	var b strings.Builder
	max := 0
	for _, c := range buckets {
		if c > max {
			max = c
		}
	}
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		lo, hi := 0.0, 1.0
		if i > 0 {
			lo = math.Pow(2, float64(i-1))
			hi = math.Pow(2, float64(i))
		}
		bar := strings.Repeat("#", int(math.Ceil(float64(c)/float64(max)*40)))
		fmt.Fprintf(&b, "%10.0f-%-10.0fµs %8d %s\n", lo, hi, c, bar)
	}
	return b.String()
}
