package dist

import (
	"fmt"

	"concord/internal/sim"
)

// Arrival generates inter-arrival gaps for an open-loop load generator.
type Arrival interface {
	// Name identifies the process in reports.
	Name() string
	// NextGapUS returns the time in µs until the next arrival.
	NextGapUS(r *sim.RNG) float64
}

// Poisson is a Poisson arrival process (exponential inter-arrival gaps),
// matching the paper's load generator ("requests according to a Poisson
// process", §5.1), which mimics bursty production traffic.
type Poisson struct {
	RatePerSec float64
}

// NewPoisson returns a Poisson process with the given request rate.
// It panics on a non-positive rate.
func NewPoisson(ratePerSec float64) Poisson {
	if ratePerSec <= 0 {
		panic("dist: Poisson rate must be positive")
	}
	return Poisson{RatePerSec: ratePerSec}
}

func (p Poisson) Name() string { return fmt.Sprintf("Poisson(%g/s)", p.RatePerSec) }

func (p Poisson) NextGapUS(r *sim.RNG) float64 {
	return r.Exp(1e6 / p.RatePerSec)
}

// Uniform is a deterministic arrival process with constant gaps, useful
// for isolating queueing effects from arrival burstiness.
type Uniform struct {
	RatePerSec float64
}

// NewUniform returns a constant-gap process with the given rate.
// It panics on a non-positive rate.
func NewUniform(ratePerSec float64) Uniform {
	if ratePerSec <= 0 {
		panic("dist: Uniform rate must be positive")
	}
	return Uniform{RatePerSec: ratePerSec}
}

func (u Uniform) Name() string { return fmt.Sprintf("Uniform(%g/s)", u.RatePerSec) }

func (u Uniform) NextGapUS(*sim.RNG) float64 { return 1e6 / u.RatePerSec }
