// Package dist provides the service-time distributions used throughout
// the Concord evaluation (§5.1–§5.3): fixed, exponential, bimodal and
// multimodal mixtures (YCSB-A, Meta USR, TPCC, ZippyDB), plus generic
// heavy-tailed distributions for extension studies.
//
// Samples are expressed in microseconds of *un-instrumented* service time;
// the server model converts them to cycles and adds runtime overheads.
package dist

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"concord/internal/sim"
)

// Sample is one drawn request: its class label (used for per-class
// latency reporting and lock behaviour) and its service time in µs.
type Sample struct {
	Class     string
	ServiceUS float64
	// HintUS is an optional size estimate for the request, consumed by
	// hinted-SRPT scheduling (server.Config.HintedSRPT) — the simulated
	// analogue of the live runtime's Hinted payloads. 0 means unhinted;
	// the built-in distributions leave it 0, and trace-replay or
	// noise-injection wrappers set it.
	HintUS float64
}

// Dist is a service-time distribution.
type Dist interface {
	// Name identifies the distribution in reports.
	Name() string
	// Mean returns the expected service time in µs.
	Mean() float64
	// Sample draws one request using the provided RNG.
	Sample(r *sim.RNG) Sample
}

// Fixed is a degenerate distribution: every request takes exactly US µs.
type Fixed struct {
	US    float64
	Class string
}

// NewFixed returns a Fixed distribution with the given service time.
func NewFixed(us float64) Fixed { return Fixed{US: us, Class: "fixed"} }

func (f Fixed) Name() string  { return fmt.Sprintf("Fixed(%g)", f.US) }
func (f Fixed) Mean() float64 { return f.US }
func (f Fixed) Sample(*sim.RNG) Sample {
	return Sample{Class: f.Class, ServiceUS: f.US}
}

// Exponential has exponentially distributed service times.
type Exponential struct {
	MeanUS float64
}

func (e Exponential) Name() string  { return fmt.Sprintf("Exp(%g)", e.MeanUS) }
func (e Exponential) Mean() float64 { return e.MeanUS }
func (e Exponential) Sample(r *sim.RNG) Sample {
	return Sample{Class: "exp", ServiceUS: r.Exp(e.MeanUS)}
}

// Lognormal has log-normally distributed service times, parameterized by
// the underlying normal's mu and sigma (natural log scale).
type Lognormal struct {
	Mu, Sigma float64
}

func (l Lognormal) Name() string { return fmt.Sprintf("Lognormal(%g,%g)", l.Mu, l.Sigma) }
func (l Lognormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}
func (l Lognormal) Sample(r *sim.RNG) Sample {
	return Sample{Class: "lognormal", ServiceUS: r.Lognormal(l.Mu, l.Sigma)}
}

// Pareto has Pareto-distributed service times (heavy tail). Mean is
// infinite for Alpha <= 1; Mean() reports +Inf in that case.
type Pareto struct {
	ScaleUS float64
	Alpha   float64
}

func (p Pareto) Name() string { return fmt.Sprintf("Pareto(%g,%g)", p.ScaleUS, p.Alpha) }
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.ScaleUS / (p.Alpha - 1)
}
func (p Pareto) Sample(r *sim.RNG) Sample {
	return Sample{Class: "pareto", ServiceUS: r.Pareto(p.ScaleUS, p.Alpha)}
}

// Class is one component of a Mixture: a request class with a fixed
// probability and its own service-time distribution.
type Class struct {
	Name   string
	Weight float64 // relative weight; normalized by NewMixture
	Dist   Dist
}

// Mixture draws a class by weight, then a service time from the class's
// distribution. It models multimodal workloads such as TPCC and ZippyDB.
type Mixture struct {
	name    string
	classes []Class
	cum     []float64 // cumulative normalized weights
	mean    float64
}

// NewMixture builds a mixture distribution. Weights are normalized; it
// panics if no classes are given or any weight is negative.
func NewMixture(name string, classes ...Class) *Mixture {
	if len(classes) == 0 {
		panic("dist: mixture needs at least one class")
	}
	total := 0.0
	for _, c := range classes {
		if c.Weight < 0 {
			panic("dist: negative mixture weight")
		}
		total += c.Weight
	}
	if total == 0 {
		panic("dist: mixture weights sum to zero")
	}
	m := &Mixture{name: name, classes: classes}
	acc := 0.0
	for _, c := range classes {
		acc += c.Weight / total
		m.cum = append(m.cum, acc)
		m.mean += (c.Weight / total) * c.Dist.Mean()
	}
	m.cum[len(m.cum)-1] = 1 // guard against rounding
	return m
}

func (m *Mixture) Name() string  { return m.name }
func (m *Mixture) Mean() float64 { return m.mean }

// Classes returns the mixture's components (normalized order preserved).
func (m *Mixture) Classes() []Class { return m.classes }

func (m *Mixture) Sample(r *sim.RNG) Sample {
	u := r.Float64()
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.classes) {
		i = len(m.classes) - 1
	}
	c := m.classes[i]
	s := c.Dist.Sample(r)
	s.Class = c.Name
	return s
}

// Bimodal returns the paper's two-point distributions, e.g.
// Bimodal(50, 1, 50, 100) is "50% of requests take 1µs, 50% take 100µs"
// (YCSB-A-like) and Bimodal(99.5, 0.5, 0.5, 500) is the Meta-USR-like
// distribution.
func Bimodal(pctShort, shortUS, pctLong, longUS float64) *Mixture {
	name := fmt.Sprintf("Bimodal(%s:%s, %s:%s)",
		trimFloat(pctShort), trimFloat(shortUS), trimFloat(pctLong), trimFloat(longUS))
	return NewMixture(name,
		Class{Name: "short", Weight: pctShort, Dist: NewFixed(shortUS)},
		Class{Name: "long", Weight: pctLong, Dist: NewFixed(longUS)},
	)
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%.1f", f)
	s = strings.TrimSuffix(s, ".0")
	return s
}

// TPCC returns the §5.2 TPCC-on-in-memory-DB distribution:
// Payment 5.7µs 44%, OrderStatus 6µs 4%, NewOrder 20µs 44%,
// Delivery 88µs 4%, StockLevel 100µs 4%.
func TPCC() *Mixture {
	return NewMixture("TPCC",
		Class{Name: "Payment", Weight: 44, Dist: NewFixed(5.7)},
		Class{Name: "OrderStatus", Weight: 4, Dist: NewFixed(6)},
		Class{Name: "NewOrder", Weight: 44, Dist: NewFixed(20)},
		Class{Name: "Delivery", Weight: 4, Dist: NewFixed(88)},
		Class{Name: "StockLevel", Weight: 4, Dist: NewFixed(100)},
	)
}

// Empirical is a distribution backed by an explicit sample set, drawn
// uniformly with replacement. It supports replaying measured traces.
type Empirical struct {
	TraceName string
	ValuesUS  []float64
	mean      float64
}

// NewEmpirical builds an empirical distribution over the given samples.
// It panics on an empty sample set.
func NewEmpirical(name string, valuesUS []float64) *Empirical {
	if len(valuesUS) == 0 {
		panic("dist: empirical distribution needs samples")
	}
	sum := 0.0
	for _, v := range valuesUS {
		sum += v
	}
	return &Empirical{TraceName: name, ValuesUS: valuesUS, mean: sum / float64(len(valuesUS))}
}

func (e *Empirical) Name() string  { return e.TraceName }
func (e *Empirical) Mean() float64 { return e.mean }
func (e *Empirical) Sample(r *sim.RNG) Sample {
	return Sample{Class: "trace", ServiceUS: e.ValuesUS[r.Intn(len(e.ValuesUS))]}
}
