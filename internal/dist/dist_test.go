package dist

import (
	"math"
	"testing"
	"testing/quick"

	"concord/internal/sim"
)

func sampleMean(t *testing.T, d Dist, n int) float64 {
	t.Helper()
	r := sim.NewRNG(1)
	sum := 0.0
	for i := 0; i < n; i++ {
		s := d.Sample(r)
		if s.ServiceUS < 0 {
			t.Fatalf("%s produced negative service time %v", d.Name(), s.ServiceUS)
		}
		sum += s.ServiceUS
	}
	return sum / float64(n)
}

func TestFixed(t *testing.T) {
	d := NewFixed(5)
	if d.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", d.Mean())
	}
	r := sim.NewRNG(1)
	for i := 0; i < 10; i++ {
		if s := d.Sample(r); s.ServiceUS != 5 {
			t.Fatalf("Sample = %v, want 5", s.ServiceUS)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	d := Exponential{MeanUS: 12}
	if got := sampleMean(t, d, 200000); math.Abs(got-12) > 0.3 {
		t.Fatalf("sample mean = %v, want ~12", got)
	}
}

func TestLognormalMean(t *testing.T) {
	d := Lognormal{Mu: 1, Sigma: 0.5}
	want := d.Mean()
	if got := sampleMean(t, d, 400000); math.Abs(got-want)/want > 0.02 {
		t.Fatalf("sample mean = %v, want ~%v", got, want)
	}
}

func TestParetoMean(t *testing.T) {
	d := Pareto{ScaleUS: 1, Alpha: 3}
	want := d.Mean() // 1.5
	if got := sampleMean(t, d, 400000); math.Abs(got-want)/want > 0.05 {
		t.Fatalf("sample mean = %v, want ~%v", got, want)
	}
	inf := Pareto{ScaleUS: 1, Alpha: 0.9}
	if !math.IsInf(inf.Mean(), 1) {
		t.Fatal("Pareto with alpha<=1 should report infinite mean")
	}
}

func TestBimodalProportionsAndMean(t *testing.T) {
	d := Bimodal(50, 1, 50, 100)
	if math.Abs(d.Mean()-50.5) > 1e-9 {
		t.Fatalf("Mean = %v, want 50.5", d.Mean())
	}
	r := sim.NewRNG(2)
	short, long := 0, 0
	const n = 100000
	for i := 0; i < n; i++ {
		s := d.Sample(r)
		switch s.ServiceUS {
		case 1:
			short++
			if s.Class != "short" {
				t.Fatalf("1µs sample classified %q", s.Class)
			}
		case 100:
			long++
			if s.Class != "long" {
				t.Fatalf("100µs sample classified %q", s.Class)
			}
		default:
			t.Fatalf("unexpected service time %v", s.ServiceUS)
		}
	}
	if frac := float64(short) / n; math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("short fraction = %v, want ~0.5", frac)
	}
	_ = long
}

func TestBimodalUSR(t *testing.T) {
	d := Bimodal(99.5, 0.5, 0.5, 500)
	want := 0.995*0.5 + 0.005*500 // 2.9975
	if math.Abs(d.Mean()-want) > 1e-9 {
		t.Fatalf("Mean = %v, want %v", d.Mean(), want)
	}
	r := sim.NewRNG(3)
	long := 0
	const n = 400000
	for i := 0; i < n; i++ {
		if d.Sample(r).ServiceUS == 500 {
			long++
		}
	}
	if frac := float64(long) / n; math.Abs(frac-0.005) > 0.0008 {
		t.Fatalf("long fraction = %v, want ~0.005", frac)
	}
}

func TestTPCCMixture(t *testing.T) {
	d := TPCC()
	want := 0.44*5.7 + 0.04*6 + 0.44*20 + 0.04*88 + 0.04*100
	if math.Abs(d.Mean()-want) > 1e-9 {
		t.Fatalf("Mean = %v, want %v", d.Mean(), want)
	}
	r := sim.NewRNG(4)
	counts := map[string]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[d.Sample(r).Class]++
	}
	if len(counts) != 5 {
		t.Fatalf("saw %d classes, want 5: %v", len(counts), counts)
	}
	if frac := float64(counts["Payment"]) / n; math.Abs(frac-0.44) > 0.01 {
		t.Fatalf("Payment fraction = %v, want ~0.44", frac)
	}
	if frac := float64(counts["Delivery"]) / n; math.Abs(frac-0.04) > 0.005 {
		t.Fatalf("Delivery fraction = %v, want ~0.04", frac)
	}
}

func TestMixtureSampleMeanMatchesAnalytic(t *testing.T) {
	prop := func(w1, w2, v1, v2 uint8) bool {
		if w1 == 0 && w2 == 0 {
			return true
		}
		m := NewMixture("t",
			Class{Name: "a", Weight: float64(w1), Dist: NewFixed(float64(v1))},
			Class{Name: "b", Weight: float64(w2), Dist: NewFixed(float64(v2))},
		)
		got := sampleMean(t, m, 50000)
		return math.Abs(got-m.Mean()) <= 0.05*math.Max(1, m.Mean())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMixturePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":    func() { NewMixture("x") },
		"negative": func() { NewMixture("x", Class{Name: "a", Weight: -1, Dist: NewFixed(1)}) },
		"zero-sum": func() { NewMixture("x", Class{Name: "a", Weight: 0, Dist: NewFixed(1)}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestEmpirical(t *testing.T) {
	e := NewEmpirical("trace", []float64{1, 2, 3, 4})
	if e.Mean() != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", e.Mean())
	}
	r := sim.NewRNG(5)
	seen := map[float64]bool{}
	for i := 0; i < 1000; i++ {
		v := e.Sample(r).ServiceUS
		if v < 1 || v > 4 {
			t.Fatalf("sample %v outside trace values", v)
		}
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Fatalf("only saw values %v", seen)
	}
}

func TestPoissonArrivalRate(t *testing.T) {
	p := NewPoisson(100000) // 100 kRps → mean gap 10µs
	r := sim.NewRNG(6)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		g := p.NextGapUS(r)
		if g < 0 {
			t.Fatalf("negative gap %v", g)
		}
		sum += g
	}
	if mean := sum / n; math.Abs(mean-10) > 0.2 {
		t.Fatalf("mean gap = %vµs, want ~10", mean)
	}
}

func TestUniformArrival(t *testing.T) {
	u := NewUniform(1e6)
	r := sim.NewRNG(7)
	for i := 0; i < 10; i++ {
		if g := u.NextGapUS(r); g != 1 {
			t.Fatalf("gap = %v, want 1", g)
		}
	}
}

func TestArrivalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive rate")
		}
	}()
	NewPoisson(0)
}

func TestNames(t *testing.T) {
	cases := map[string]string{
		Bimodal(50, 1, 50, 100).Name():      "Bimodal(50:1, 50:100)",
		Bimodal(99.5, 0.5, 0.5, 500).Name(): "Bimodal(99.5:0.5, 0.5:500)",
		NewFixed(1).Name():                  "Fixed(1)",
		TPCC().Name():                       "TPCC",
		NewPoisson(1000).Name():             "Poisson(1000/s)",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("name %q, want %q", got, want)
		}
	}
}
