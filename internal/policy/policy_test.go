package policy

import (
	"testing"
	"testing/quick"

	"concord/internal/sim"
)

type job struct {
	id        int
	remaining sim.Cycles
}

func (j *job) RemainingCycles() sim.Cycles { return j.remaining }

func TestFCFSOrder(t *testing.T) {
	q := NewFCFS[*job]()
	for i := 0; i < 100; i++ {
		q.Push(&job{id: i}, false)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d, want 100", q.Len())
	}
	for i := 0; i < 100; i++ {
		j, ok := q.Pop()
		if !ok || j.id != i {
			t.Fatalf("pop %d: got %v ok=%v", i, j, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestFCFSInterleavedPushPop(t *testing.T) {
	q := NewFCFS[*job]()
	next := 0
	pushed := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			q.Push(&job{id: pushed}, false)
			pushed++
		}
		for i := 0; i < 5; i++ {
			j, ok := q.Pop()
			if !ok || j.id != next {
				t.Fatalf("round %d: got id %d, want %d", round, j.id, next)
			}
			next++
		}
	}
	for q.Len() > 0 {
		j, _ := q.Pop()
		if j.id != next {
			t.Fatalf("drain: got %d, want %d", j.id, next)
		}
		next++
	}
	if next != pushed {
		t.Fatalf("drained %d, pushed %d", next, pushed)
	}
}

func TestFCFSPopNonStarted(t *testing.T) {
	q := NewFCFS[*job]()
	q.Push(&job{id: 0}, true) // preempted, re-queued
	q.Push(&job{id: 1}, false)
	q.Push(&job{id: 2}, true)
	q.Push(&job{id: 3}, false)

	j, ok := q.PopNonStarted()
	if !ok || j.id != 1 {
		t.Fatalf("PopNonStarted = %v, want id 1", j)
	}
	// Remaining order must be preserved: 0, 2, 3.
	want := []int{0, 2, 3}
	for _, w := range want {
		j, ok := q.Pop()
		if !ok || j.id != w {
			t.Fatalf("after PopNonStarted, got %d want %d", j.id, w)
		}
	}
}

func TestFCFSPopNonStartedNone(t *testing.T) {
	q := NewFCFS[*job]()
	q.Push(&job{id: 0}, true)
	if _, ok := q.PopNonStarted(); ok {
		t.Fatal("PopNonStarted found a started-only queue entry")
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d after failed PopNonStarted, want 1", q.Len())
	}
}

func TestSRPTOrdersByRemaining(t *testing.T) {
	q := NewSRPT[*job]()
	rem := []sim.Cycles{50, 10, 40, 10, 99, 1}
	for i, r := range rem {
		q.Push(&job{id: i, remaining: r}, false)
	}
	var got []sim.Cycles
	for q.Len() > 0 {
		j, _ := q.Pop()
		got = append(got, j.remaining)
	}
	want := []sim.Cycles{1, 10, 10, 40, 50, 99}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SRPT order = %v, want %v", got, want)
		}
	}
}

func TestSRPTTieBreaksFIFO(t *testing.T) {
	q := NewSRPT[*job]()
	for i := 0; i < 10; i++ {
		q.Push(&job{id: i, remaining: 5}, false)
	}
	for i := 0; i < 10; i++ {
		j, _ := q.Pop()
		if j.id != i {
			t.Fatalf("tie-break not FIFO: got %d at position %d", j.id, i)
		}
	}
}

func TestSRPTPopNonStarted(t *testing.T) {
	q := NewSRPT[*job]()
	q.Push(&job{id: 0, remaining: 1}, true)
	q.Push(&job{id: 1, remaining: 100}, false)
	q.Push(&job{id: 2, remaining: 50}, false)
	j, ok := q.PopNonStarted()
	if !ok || j.id != 2 {
		t.Fatalf("PopNonStarted = %+v, want shortest non-started id 2", j)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	// Heap must still be valid: next pop is the started id 0 (remaining 1).
	n, _ := q.Pop()
	if n.id != 0 {
		t.Fatalf("Pop after PopNonStarted = %d, want 0", n.id)
	}
}

// Property: SRPT pops are sorted by remaining cycles whatever the input.
func TestSRPTSortedProperty(t *testing.T) {
	prop := func(rems []uint16) bool {
		q := NewSRPT[*job]()
		for i, r := range rems {
			q.Push(&job{id: i, remaining: sim.Cycles(r)}, false)
		}
		prev := sim.Cycles(-1)
		for q.Len() > 0 {
			j, _ := q.Pop()
			if j.remaining < prev {
				return false
			}
			prev = j.remaining
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: FCFS preserves insertion order whatever the started flags.
func TestFCFSOrderProperty(t *testing.T) {
	prop := func(flags []bool) bool {
		q := NewFCFS[*job]()
		for i, f := range flags {
			q.Push(&job{id: i}, f)
		}
		prev := -1
		for q.Len() > 0 {
			j, _ := q.Pop()
			if j.id <= prev {
				return false
			}
			prev = j.id
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNewQueueFactory(t *testing.T) {
	for _, name := range append(Names(), "") {
		q, err := NewQueue[*job](name)
		if err != nil {
			t.Fatalf("NewQueue(%q): %v", name, err)
		}
		q.Push(&job{id: 1, remaining: 7}, false)
		if j, ok := q.Pop(); !ok || j.id != 1 {
			t.Fatalf("NewQueue(%q) queue broken: %v %v", name, j, ok)
		}
	}
	if _, err := NewQueue[*job]("lifo"); err == nil {
		t.Fatal("NewQueue accepted an unknown discipline")
	}
}

// Property: under any interleaving of Push/Pop/PopNonStarted, Len
// always equals the number of items pushed minus the number popped, for
// both disciplines. The live runtime's dispatcher uses Len to decide
// drain completion, so an off-by-one here would hang or abort Stop.
func TestQueueLenConsistencyProperty(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			// ops: 0-2 push (started flag varies), 3-4 pop, 5 popNonStarted.
			prop := func(ops []byte) bool {
				q, err := NewQueue[*job](name)
				if err != nil {
					return false
				}
				inside := 0
				id := 0
				for _, op := range ops {
					if q.Len() != inside {
						return false
					}
					switch op % 6 {
					case 0, 1, 2:
						q.Push(&job{id: id, remaining: sim.Cycles(op) * 3}, op%2 == 0)
						id++
						inside++
					case 3, 4:
						if _, ok := q.Pop(); ok {
							inside--
						} else if inside != 0 {
							return false // non-empty queue refused a Pop
						}
					case 5:
						if _, ok := q.PopNonStarted(); ok {
							inside--
						}
					}
				}
				// Drain: exactly `inside` items must come out.
				for i := 0; i < inside; i++ {
					if _, ok := q.Pop(); !ok {
						return false
					}
				}
				_, ok := q.Pop()
				return !ok && q.Len() == 0
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: SRPT breaks equal-key ties in strict arrival order even
// with PopNonStarted interleaved and mixed started flags — the stable
// tie-break the live runtime relies on so unhinted requests (all key 0)
// degrade to FCFS rather than an arbitrary heap order.
func TestSRPTEqualKeyStableProperty(t *testing.T) {
	prop := func(flags []bool, popAt []uint8) bool {
		q := NewSRPT[*job]()
		steals := map[int]bool{} // ids removed out of band
		for i, f := range flags {
			q.Push(&job{id: i, remaining: 42}, f)
		}
		for _, p := range popAt {
			if int(p)%4 == 0 {
				if j, ok := q.PopNonStarted(); ok {
					steals[j.id] = true
				}
			}
		}
		prev := -1
		for q.Len() > 0 {
			j, _ := q.Pop()
			if steals[j.id] {
				return false // double-pop
			}
			if j.id <= prev {
				return false // equal keys must pop in arrival order
			}
			prev = j.id
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// PopNonStarted among equal keys must itself take the earliest-arrived
// never-started entry, not an arbitrary heap-order one.
func TestSRPTPopNonStartedEqualKeysFIFO(t *testing.T) {
	q := NewSRPT[*job]()
	q.Push(&job{id: 0, remaining: 9}, true)
	q.Push(&job{id: 1, remaining: 9}, false)
	q.Push(&job{id: 2, remaining: 9}, false)
	q.Push(&job{id: 3, remaining: 9}, false)
	for _, want := range []int{1, 2, 3} {
		j, ok := q.PopNonStarted()
		if !ok || j.id != want {
			t.Fatalf("PopNonStarted = %v ok=%v, want id %d", j, ok, want)
		}
	}
}

func TestShortestQueue(t *testing.T) {
	cases := []struct {
		lengths []int
		bound   int
		want    int
	}{
		{[]int{2, 0, 1}, 2, 1},
		{[]int{2, 2, 2}, 2, -1},
		{[]int{1, 1, 0}, 2, 2},
		{[]int{0, 0}, 2, 0}, // tie prefers lower index
		{[]int{1}, 1, -1},
		{[]int{}, 2, -1},
	}
	for _, tc := range cases {
		if got := ShortestQueue(tc.lengths, tc.bound); got != tc.want {
			t.Errorf("ShortestQueue(%v, %d) = %d, want %d", tc.lengths, tc.bound, got, tc.want)
		}
	}
}

func TestJBSQDepth(t *testing.T) {
	// §3.2: k = ceil(c_next/S) + 1, floor 2; k=2 suffices for S >= 1µs.
	if got := JBSQDepth(400, 2000); got != 2 {
		t.Errorf("JBSQDepth(400cy, 1µs) = %d, want 2", got)
	}
	if got := JBSQDepth(400, 100); got != 5 {
		t.Errorf("JBSQDepth(400cy, 100cy) = %d, want ceil(4)+1 = 5", got)
	}
	if got := JBSQDepth(400, 0); got != 2 {
		t.Errorf("JBSQDepth with zero service = %d, want 2", got)
	}
	if got := JBSQDepth(0, 2000); got != 2 {
		t.Errorf("JBSQDepth with zero c_next = %d, want floor of 2", got)
	}
}
