package policy

import (
	"testing"
	"testing/quick"

	"concord/internal/sim"
)

// tjob is a tiered job for cascade tests.
type tjob struct {
	id        int
	tier      int
	remaining sim.Cycles
}

func (j *tjob) RemainingCycles() sim.Cycles { return j.remaining }
func (j *tjob) Tier() int                   { return j.tier }

func TestCascadeStrictTierPriority(t *testing.T) {
	q := NewCascade[*tjob](func() Queue[*tjob] { return NewFCFS[*tjob]() })
	// Push in mixed tier order; pops must come back tier 0 first, FIFO
	// within each tier.
	q.Push(&tjob{id: 0, tier: 2}, false)
	q.Push(&tjob{id: 1, tier: 0}, false)
	q.Push(&tjob{id: 2, tier: 1}, false)
	q.Push(&tjob{id: 3, tier: 0}, false)
	q.Push(&tjob{id: 4, tier: 2}, false)
	q.Push(&tjob{id: 5, tier: 1}, false)
	want := []int{1, 3, 2, 5, 0, 4}
	for _, w := range want {
		j, ok := q.Pop()
		if !ok || j.id != w {
			t.Fatalf("Pop = %v ok=%v, want id %d", j, ok, w)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty cascade succeeded")
	}
}

func TestCascadeIntraTierSRPT(t *testing.T) {
	q := NewCascade[*tjob](func() Queue[*tjob] { return NewSRPT[*tjob]() })
	q.Push(&tjob{id: 0, tier: 1, remaining: 50}, false)
	q.Push(&tjob{id: 1, tier: 1, remaining: 5}, false)
	q.Push(&tjob{id: 2, tier: 0, remaining: 99}, false)
	// Tier 0 outranks tier 1 regardless of remaining work; within tier 1
	// the shorter job pops first.
	for i, w := range []int{2, 1, 0} {
		j, ok := q.Pop()
		if !ok || j.id != w {
			t.Fatalf("pop %d = %v, want id %d", i, j, w)
		}
	}
}

func TestCascadePopNonStartedScansAllTiers(t *testing.T) {
	q := NewCascade[*tjob](func() Queue[*tjob] { return NewFCFS[*tjob]() })
	q.Push(&tjob{id: 0, tier: 0}, true) // preempted critical
	q.Push(&tjob{id: 1, tier: 2}, false)
	// Tier 0 has only started work; the fresh tier-2 item must still be
	// stealable.
	j, ok := q.PopNonStarted()
	if !ok || j.id != 1 {
		t.Fatalf("PopNonStarted = %v ok=%v, want id 1", j, ok)
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
}

func TestCascadeDefaultTierForUntiered(t *testing.T) {
	q := NewCascade[*job](func() Queue[*job] { return NewFCFS[*job]() })
	q.Push(&job{id: 0}, false)
	if got := q.TierLen(DefaultTier); got != 1 {
		t.Fatalf("untiered item landed in TierLen(%d) = %d, want 1", DefaultTier, got)
	}
	if j, ok := q.Pop(); !ok || j.id != 0 {
		t.Fatalf("Pop = %v ok=%v", j, ok)
	}
}

func TestCascadeTierClamping(t *testing.T) {
	q := NewCascade[*tjob](func() Queue[*tjob] { return NewFCFS[*tjob]() })
	q.Push(&tjob{id: 0, tier: -5}, false)
	q.Push(&tjob{id: 1, tier: 1000}, false)
	if got := q.TierLen(0); got != 1 {
		t.Fatalf("TierLen(0) = %d, want 1 (negative tier clamps to 0)", got)
	}
	if got := q.TierLen(maxCascadeTiers - 1); got != 1 {
		t.Fatalf("TierLen(max) = %d, want 1 (huge tier clamps to top)", got)
	}
	if got := q.TierLen(-1); got != 0 {
		t.Fatalf("TierLen(-1) = %d, want 0", got)
	}
}

// Property: cascade pops are sorted by tier, and within a tier (FCFS
// intra-discipline) by arrival order — strict priority never inverts.
func TestCascadeTierOrderProperty(t *testing.T) {
	prop := func(tiers []uint8) bool {
		q := NewCascade[*tjob](func() Queue[*tjob] { return NewFCFS[*tjob]() })
		for i, tr := range tiers {
			q.Push(&tjob{id: i, tier: int(tr) % 3}, false)
		}
		prevTier, prevID := -1, -1
		for q.Len() > 0 {
			j, ok := q.Pop()
			if !ok {
				return false
			}
			if j.tier < prevTier {
				return false // priority inversion
			}
			if j.tier > prevTier {
				prevID = -1
			}
			if j.id <= prevID {
				return false // intra-tier FIFO violated
			}
			prevTier, prevID = j.tier, j.id
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
