// Tiered-priority cascade queue: strict priority across SLO-class
// tiers, with an existing discipline (FCFS or SRPT) ordering each tier
// internally. This is the "priority cascade" composition from Scully &
// Harchol-Balter's near-optimal-under-constraints recipe: the optimal
// blind/non-blind discipline runs unchanged *within* a class, while
// class boundaries are absolute — no amount of queued sheddable work
// delays a queued critical request.
package policy

// Tiered is implemented by items that carry a strict-priority tier.
// Lower tiers are served first; within a tier the intra-tier discipline
// decides. Items that do not implement Tiered fall into DefaultTier.
type Tiered interface {
	Tier() int
}

// DefaultTier is the tier assigned to items that do not implement
// Tiered — the middle (standard) band, so explicitly-critical work can
// outrank it and explicitly-sheddable work can yield to it.
const DefaultTier = 1

// maxCascadeTiers bounds the tier table. Tiers outside [0,
// maxCascadeTiers) clamp to the nearest edge rather than erroring: the
// cascade is a scheduling hint, not a validator.
const maxCascadeTiers = 8

// Cascade composes strict tier priority over an intra-tier discipline.
// Sub-queues are created lazily per tier, so a workload that never uses
// a tier pays nothing for it.
type Cascade[T Item] struct {
	tiers [maxCascadeTiers]Queue[T]
	mk    func() Queue[T]
	size  int
}

// NewCascade returns an empty cascade whose per-tier sub-queues are
// produced by mk.
func NewCascade[T Item](mk func() Queue[T]) *Cascade[T] {
	return &Cascade[T]{mk: mk}
}

// tierOf clamps the item's tier into the table.
func tierOf[T Item](item T) int {
	t := DefaultTier
	if ti, ok := any(item).(Tiered); ok {
		t = ti.Tier()
	}
	if t < 0 {
		t = 0
	}
	if t >= maxCascadeTiers {
		t = maxCascadeTiers - 1
	}
	return t
}

// Push adds the item to its tier's sub-queue.
func (q *Cascade[T]) Push(item T, started bool) {
	t := tierOf(item)
	if q.tiers[t] == nil {
		q.tiers[t] = q.mk()
	}
	q.tiers[t].Push(item, started)
	q.size++
}

// Pop removes the next item from the lowest-numbered non-empty tier.
func (q *Cascade[T]) Pop() (item T, ok bool) {
	for _, sub := range &q.tiers {
		if sub == nil || sub.Len() == 0 {
			continue
		}
		if item, ok = sub.Pop(); ok {
			q.size--
			return item, true
		}
	}
	return item, false
}

// PopNonStarted removes the first never-started item scanning tiers in
// priority order. A tier whose queued items have all started is skipped,
// not a stopping point: a lower-priority tier may still hold stealable
// fresh work.
func (q *Cascade[T]) PopNonStarted() (item T, ok bool) {
	for _, sub := range &q.tiers {
		if sub == nil || sub.Len() == 0 {
			continue
		}
		if item, ok = sub.PopNonStarted(); ok {
			q.size--
			return item, true
		}
	}
	return item, false
}

// Len returns the total queued count across tiers.
func (q *Cascade[T]) Len() int { return q.size }

// TierLen returns the queued count in one tier (0 for lazily-unbuilt or
// out-of-range tiers) — the dispatcher's "is critical work waiting?"
// probe.
func (q *Cascade[T]) TierLen(tier int) int {
	if tier < 0 || tier >= maxCascadeTiers || q.tiers[tier] == nil {
		return 0
	}
	return q.tiers[tier].Len()
}
