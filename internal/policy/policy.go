// Package policy implements the central-queue disciplines and worker-
// assignment policies of the simulated server.
//
// The paper's systems combine two orthogonal choices:
//
//   - the central queue's ordering: FCFS (all evaluated systems) with
//     preempted requests re-joining the tail, which under quantum
//     preemption approximates Processor Sharing; or SRPT, the extension
//     the paper mentions Concord's dispatcher-centric design enables.
//   - the worker-assignment mode: a synchronous single queue (workers
//     pull one request at a time) or JBSQ(k) (the dispatcher pushes into
//     bounded per-worker queues, §3.2).
package policy

import (
	"fmt"

	"concord/internal/sim"
)

// Item is a queued unit of work. The server stores *Request values; the
// queue only needs the remaining work for SRPT ordering.
type Item interface {
	// RemainingCycles is the work left for this request.
	RemainingCycles() sim.Cycles
}

// Queue is a central run queue.
type Queue[T Item] interface {
	// Push adds a request to the queue. started reports whether the
	// request has run before (a preempted request being re-queued);
	// FCFS appends either way, but disciplines may use it.
	Push(item T, started bool)
	// Pop removes and returns the next request per the discipline.
	// ok is false if the queue is empty.
	Pop() (item T, ok bool)
	// PopNonStarted removes and returns the first request that has never
	// run, for the work-conserving dispatcher, which may only pick up
	// non-started requests (§3.3). ok is false if there is none.
	PopNonStarted() (item T, ok bool)
	// Len returns the number of queued requests.
	Len() int
}

// NewQueue resolves a central-queue discipline by name: "fcfs" (also
// the default for an empty name), "srpt", or the tiered-priority
// cascades "cascade" (FCFS within each tier) and "cascade-srpt" (SRPT
// within each tier). It is the single registry both the simulator
// configuration and the live runtime's Options.Policy knob resolve
// through.
func NewQueue[T Item](name string) (Queue[T], error) {
	switch name {
	case "", "fcfs":
		return NewFCFS[T](), nil
	case "srpt":
		return NewSRPT[T](), nil
	case "cascade":
		return NewCascade[T](func() Queue[T] { return NewFCFS[T]() }), nil
	case "cascade-srpt":
		return NewCascade[T](func() Queue[T] { return NewSRPT[T]() }), nil
	}
	return nil, fmt.Errorf("policy: unknown queue discipline %q (have %v)", name, Names())
}

// Names lists the discipline names NewQueue accepts.
func Names() []string { return []string{"fcfs", "srpt", "cascade", "cascade-srpt"} }

// fcfsEntry pairs an item with its started flag.
type fcfsEntry[T Item] struct {
	item    T
	started bool
}

// FCFS is a first-come-first-served queue. With quantum preemption and
// re-queueing at the tail it realizes round-robin (≈ Processor Sharing).
type FCFS[T Item] struct {
	// ring buffer
	buf        []fcfsEntry[T]
	head, size int
}

// NewFCFS returns an empty FCFS queue.
func NewFCFS[T Item]() *FCFS[T] {
	return &FCFS[T]{buf: make([]fcfsEntry[T], 16)}
}

func (q *FCFS[T]) grow() {
	nb := make([]fcfsEntry[T], len(q.buf)*2)
	for i := 0; i < q.size; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}

// Push appends to the tail.
func (q *FCFS[T]) Push(item T, started bool) {
	if q.size == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.size)%len(q.buf)] = fcfsEntry[T]{item, started}
	q.size++
}

// Pop removes the head of the queue.
func (q *FCFS[T]) Pop() (item T, ok bool) {
	if q.size == 0 {
		return item, false
	}
	e := q.buf[q.head]
	q.buf[q.head] = fcfsEntry[T]{} // release reference
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return e.item, true
}

// PopNonStarted removes the first never-started request, preserving the
// relative order of the rest. The gap closes toward the head (the match
// is usually near it, so this is O(match position), not O(queue)).
func (q *FCFS[T]) PopNonStarted() (item T, ok bool) {
	for i := 0; i < q.size; i++ {
		idx := (q.head + i) % len(q.buf)
		if !q.buf[idx].started {
			e := q.buf[idx]
			// Shift the i entries before the match one slot toward the
			// tail, then advance head past the vacated slot.
			for j := i; j > 0; j-- {
				to := (q.head + j) % len(q.buf)
				from := (q.head + j - 1) % len(q.buf)
				q.buf[to] = q.buf[from]
			}
			q.buf[q.head] = fcfsEntry[T]{}
			q.head = (q.head + 1) % len(q.buf)
			q.size--
			return e.item, true
		}
	}
	return item, false
}

// Len returns the queue length.
func (q *FCFS[T]) Len() int { return q.size }

// SRPT is a Shortest-Remaining-Processing-Time queue, the non-blind
// extension §3.1 says Concord's dispatcher-centric design enables. Ties
// break FIFO.
type SRPT[T Item] struct {
	entries []srptEntry[T]
	seq     uint64
}

type srptEntry[T Item] struct {
	item    T
	started bool
	key     sim.Cycles
	seq     uint64
}

// NewSRPT returns an empty SRPT queue.
func NewSRPT[T Item]() *SRPT[T] {
	return &SRPT[T]{}
}

func (q *SRPT[T]) less(i, j int) bool {
	if q.entries[i].key != q.entries[j].key {
		return q.entries[i].key < q.entries[j].key
	}
	return q.entries[i].seq < q.entries[j].seq
}

func (q *SRPT[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.entries[i], q.entries[parent] = q.entries[parent], q.entries[i]
		i = parent
	}
}

func (q *SRPT[T]) down(i int) {
	n := len(q.entries)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.entries[i], q.entries[smallest] = q.entries[smallest], q.entries[i]
		i = smallest
	}
}

// Push inserts keyed by remaining work.
func (q *SRPT[T]) Push(item T, started bool) {
	q.entries = append(q.entries, srptEntry[T]{item, started, item.RemainingCycles(), q.seq})
	q.seq++
	q.up(len(q.entries) - 1)
}

// Pop removes the request with the least remaining work.
func (q *SRPT[T]) Pop() (item T, ok bool) {
	if len(q.entries) == 0 {
		return item, false
	}
	e := q.entries[0]
	last := len(q.entries) - 1
	q.entries[0] = q.entries[last]
	q.entries = q.entries[:last]
	if len(q.entries) > 0 {
		q.down(0)
	}
	return e.item, true
}

// PopNonStarted removes the shortest never-started request.
func (q *SRPT[T]) PopNonStarted() (item T, ok bool) {
	best := -1
	for i, e := range q.entries {
		if !e.started && (best == -1 || q.less(i, best)) {
			best = i
		}
	}
	if best == -1 {
		return item, false
	}
	e := q.entries[best]
	last := len(q.entries) - 1
	q.entries[best] = q.entries[last]
	q.entries = q.entries[:last]
	if best < len(q.entries) {
		q.down(best)
		q.up(best)
	}
	return e.item, true
}

// Len returns the queue length.
func (q *SRPT[T]) Len() int { return len(q.entries) }

// ShortestQueue returns the index of the shortest per-worker queue among
// those with fewer than bound entries, preferring lower indices on ties.
// It returns -1 if every queue is full. This is the JBSQ(k) push rule.
func ShortestQueue(lengths []int, bound int) int {
	best, bestLen := -1, bound
	for i, l := range lengths {
		if l < bestLen {
			best, bestLen = i, l
		}
	}
	return best
}

// JBSQDepth returns the paper's queue-bound sizing rule (§3.2):
// k = ceil(c_next / S) + 1, with a floor of 2 — "we found k = 2 to be
// sufficient for service times above 1µs".
func JBSQDepth(cNext, serviceCycles sim.Cycles) int {
	if serviceCycles <= 0 {
		return 2
	}
	k := int((cNext+serviceCycles-1)/serviceCycles) + 1
	if k < 2 {
		k = 2
	}
	return k
}
