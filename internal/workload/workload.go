// Package workload names the service-time setups of the paper's
// evaluation (§5.1–§5.3) so that figures, benchmarks, and examples refer
// to them consistently.
package workload

import (
	"fmt"
	"sort"

	"concord/internal/dist"
	"concord/internal/kvsim"
	"concord/internal/server"
)

// Spec bundles a named workload with the evaluation parameters the paper
// uses for it: the scheduling quanta studied and the load range swept.
type Spec struct {
	// Name is the catalog key.
	Name string
	// WL is the service-time distribution plus lock model.
	WL server.Workload
	// QuantaUS lists the scheduling quanta the paper evaluates for it.
	QuantaUS []float64
	// LoadsKRps is the figure's x-axis: offered loads in kRps.
	LoadsKRps []float64
}

// The paper's six evaluation workloads.

// YCSBBimodal is Bimodal(50:1, 50:100), from YCSB workload A (Fig. 6).
func YCSBBimodal() Spec {
	return Spec{
		Name:      "bimodal-ycsb",
		WL:        server.Workload{Dist: dist.Bimodal(50, 1, 50, 100)},
		QuantaUS:  []float64{5, 2},
		LoadsKRps: rangeKRps(20, 260, 13),
	}
}

// USRBimodal is Bimodal(99.5:0.5, 0.5:500), from Meta's USR trace (Fig. 7).
func USRBimodal() Spec {
	return Spec{
		Name:      "bimodal-usr",
		WL:        server.Workload{Dist: dist.Bimodal(99.5, 0.5, 0.5, 500)},
		QuantaUS:  []float64{5, 2},
		LoadsKRps: rangeKRps(250, 3250, 13),
	}
}

// FixedOne is the Fixed(1µs) low-dispersion workload (Fig. 8 left).
func FixedOne() Spec {
	return Spec{
		Name:      "fixed-1",
		WL:        server.Workload{Dist: dist.NewFixed(1)},
		QuantaUS:  []float64{5, 2},
		LoadsKRps: rangeKRps(300, 4200, 14),
	}
}

// TPCC is the TPCC-on-in-memory-DB distribution (Fig. 8 right); the
// paper uses a 10µs quantum to avoid needless preemptions.
func TPCC() Spec {
	return Spec{
		Name:      "tpcc",
		WL:        server.Workload{Dist: dist.TPCC()},
		QuantaUS:  []float64{10},
		LoadsKRps: rangeKRps(50, 750, 14),
	}
}

// LevelDB5050 is the 50% GET / 50% SCAN LevelDB workload (Fig. 9).
func LevelDB5050() Spec {
	return Spec{
		Name:      "leveldb-5050",
		WL:        kvsim.Mixed5050(),
		QuantaUS:  []float64{5, 2},
		LoadsKRps: rangeKRps(6, 58, 14),
	}
}

// ZippyDB is the LevelDB workload driven by Meta's ZippyDB traces
// (Fig. 10); all requests exceed 2µs so only the 5µs quantum is used.
func ZippyDB() Spec {
	return Spec{
		Name:      "zippydb",
		WL:        kvsim.ZippyDB(),
		QuantaUS:  []float64{5},
		LoadsKRps: rangeKRps(40, 400, 13),
	}
}

// All returns the full catalog keyed by name.
func All() map[string]Spec {
	specs := []Spec{
		YCSBBimodal(), USRBimodal(), FixedOne(), TPCC(), LevelDB5050(), ZippyDB(),
	}
	out := make(map[string]Spec, len(specs))
	for _, s := range specs {
		out[s.Name] = s
	}
	return out
}

// Names returns the catalog keys, sorted.
func Names() []string {
	var names []string
	for n := range All() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the named spec or an error listing valid names.
func Lookup(name string) (Spec, error) {
	s, ok := All()[name]
	if !ok {
		return Spec{}, fmt.Errorf("workload: unknown %q (valid: %v)", name, Names())
	}
	return s, nil
}

// rangeKRps returns n evenly spaced loads from lo to hi inclusive.
func rangeKRps(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}
