package workload

import (
	"math"
	"testing"
)

func TestCatalogComplete(t *testing.T) {
	want := []string{"bimodal-usr", "bimodal-ycsb", "fixed-1", "leveldb-5050", "tpcc", "zippydb"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("catalog = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("catalog = %v, want %v", got, want)
		}
	}
}

func TestLookup(t *testing.T) {
	s, err := Lookup("tpcc")
	if err != nil {
		t.Fatal(err)
	}
	if s.QuantaUS[0] != 10 {
		t.Errorf("TPCC quantum = %v, paper uses 10µs", s.QuantaUS[0])
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup of unknown workload succeeded")
	}
}

func TestMeansMatchPaper(t *testing.T) {
	cases := map[string]float64{
		"bimodal-ycsb": 50.5,
		"bimodal-usr":  0.995*0.5 + 0.005*500,
		"fixed-1":      1,
		"tpcc":         0.44*5.7 + 0.04*6 + 0.44*20 + 0.04*88 + 0.04*100,
		"leveldb-5050": 0.5*0.6 + 0.5*500,
		"zippydb":      0.78*0.6 + 0.13*2.3 + 0.06*2.3 + 0.03*500,
	}
	for name, want := range cases {
		s, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.WL.Dist.Mean(); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s mean = %v, want %v", name, got, want)
		}
	}
}

func TestLoadRangesCoverWorkerCapacity(t *testing.T) {
	// Each figure's x-axis must extend past the point where 14 workers
	// saturate, so the SLO crossing is inside the sweep.
	for name, s := range All() {
		capacityKRps := 14.0 / s.WL.Dist.Mean() * 1000
		maxLoad := s.LoadsKRps[len(s.LoadsKRps)-1]
		// fixed-1 saturates at the dispatcher and zippydb at the tail
		// (GETs queueing behind scan slices), both below worker capacity;
		// for the rest, sweep to >= 55% of worker capacity.
		if name != "fixed-1" && name != "zippydb" && maxLoad < 0.55*capacityKRps {
			t.Errorf("%s sweeps to %v kRps, < 55%% of capacity %v", name, maxLoad, capacityKRps)
		}
		if len(s.LoadsKRps) < 5 {
			t.Errorf("%s has only %d load points", name, len(s.LoadsKRps))
		}
		for i := 1; i < len(s.LoadsKRps); i++ {
			if s.LoadsKRps[i] <= s.LoadsKRps[i-1] {
				t.Errorf("%s loads not increasing: %v", name, s.LoadsKRps)
			}
		}
	}
}

func TestLevelDBLockModel(t *testing.T) {
	s, _ := Lookup("leveldb-5050")
	if s.WL.CritFracByClass["GET"] <= 0 {
		t.Error("LevelDB GETs must hold locks (§5.3)")
	}
	if _, ok := s.WL.CritFracByClass["SCAN"]; ok {
		t.Error("SCANs iterate a snapshot and must not hold the mutex")
	}
	z, _ := Lookup("zippydb")
	if z.WL.CritFracByClass["PUT"] <= 0 || z.WL.CritFracByClass["DELETE"] <= 0 {
		t.Error("ZippyDB PUT/DELETE must hold locks")
	}
}
