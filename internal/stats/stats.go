// Package stats computes the latency metrics the paper reports: request
// slowdown (total time at the server over un-instrumented service time),
// percentiles (p50/p99/p99.9) — exact or reservoir-sampled — and
// load-sweep summaries including the maximum throughput sustainable
// under a tail-slowdown SLO.
package stats

import (
	"fmt"
	"math"
	"sort"

	"concord/internal/sim"
)

// DefaultSLOSlowdown is the paper's service level objective: 99.9th
// percentile slowdown of 50× the service time (§5.1).
const DefaultSLOSlowdown = 50.0

// DefaultReservoirSize is the retained-sample bound for streaming
// collectors. Runs at or below the bound retain every sample and are
// therefore exact; the bound sits above the paper-fidelity 120k
// requests per load point, so subsampling only kicks in for larger
// custom runs (where ~131 retained tail points still resolve p99.9)
// and SLO crossings near flat curve regions are not perturbed at
// standard fidelity.
const DefaultReservoirSize = 1 << 17

// Sample is one completed request's latency record.
type Sample struct {
	Class     string
	Slowdown  float64 // sojourn / uninstrumented service time
	SojournUS float64 // total time at the server
}

// Collector accumulates per-request samples for one run.
//
// In exact mode (NewCollector) every sample is retained and percentiles
// are exact. In reservoir mode (NewReservoir) at most `limit` samples
// are retained via Vitter's algorithm R with a deterministic, seeded
// RNG, so a long run no longer holds every per-request record; counts
// and the mean remain exact, percentiles become sampled estimates once
// the reservoir overflows. Determinism: the retained set is a pure
// function of the seed and the Add sequence.
type Collector struct {
	samples []Sample
	sorted  bool

	count int     // total samples offered to Add
	sum   float64 // running slowdown sum over ALL samples

	limit int      // 0 = exact mode (retain everything)
	rng   *sim.RNG // eviction choices in reservoir mode
}

// NewCollector returns an exact collector with capacity for n samples.
func NewCollector(n int) *Collector {
	if n < 0 {
		n = 0
	}
	return &Collector{samples: make([]Sample, 0, n)}
}

// NewReservoir returns a streaming collector retaining at most limit
// samples (DefaultReservoirSize if limit <= 0). The seed makes the
// sampled retained set reproducible.
func NewReservoir(limit int, seed uint64) *Collector {
	if limit <= 0 {
		limit = DefaultReservoirSize
	}
	return &Collector{
		samples: make([]Sample, 0, min(limit, 4096)),
		limit:   limit,
		rng:     sim.NewRNG(sim.Mix64(seed, 0x57a75)),
	}
}

// Add records one completed request.
func (c *Collector) Add(s Sample) {
	c.count++
	c.sum += s.Slowdown
	if c.limit == 0 || len(c.samples) < c.limit {
		c.samples = append(c.samples, s)
		c.sorted = false
		return
	}
	// Algorithm R: keep the new sample with probability limit/count,
	// evicting a uniformly random retained one.
	if j := c.rng.Intn(c.count); j < c.limit {
		c.samples[j] = s
		c.sorted = false
	}
}

// Len returns the number of samples offered to the collector (not the
// number retained; see Retained).
func (c *Collector) Len() int { return c.count }

// Retained returns the number of samples currently held. It equals
// Len() for exact collectors and for reservoir collectors that have not
// overflowed.
func (c *Collector) Retained() int { return len(c.samples) }

// Exact reports whether the collector still holds every sample it was
// offered (always true in exact mode).
func (c *Collector) Exact() bool { return c.count == len(c.samples) }

// Samples returns the retained samples (in unspecified order). The
// returned slice is owned by the collector; callers must not modify it.
func (c *Collector) Samples() []Sample { return c.samples }

func (c *Collector) ensureSorted() {
	if !c.sorted {
		sort.Slice(c.samples, func(i, j int) bool {
			return c.samples[i].Slowdown < c.samples[j].Slowdown
		})
		c.sorted = true
	}
}

// SlowdownPercentile returns the p-th percentile slowdown (p in (0,100]),
// computed by the nearest-rank method over the retained samples (exact
// unless the reservoir overflowed). It returns NaN if no samples were
// recorded.
func (c *Collector) SlowdownPercentile(p float64) float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range (0,100]", p))
	}
	c.ensureSorted()
	rank := int(math.Ceil(p / 100 * float64(len(c.samples))))
	if rank < 1 {
		rank = 1
	}
	return c.samples[rank-1].Slowdown
}

// MeanSlowdown returns the average slowdown over every sample offered
// (exact in both modes), or NaN with no samples.
func (c *Collector) MeanSlowdown() float64 {
	if c.count == 0 {
		return math.NaN()
	}
	return c.sum / float64(c.count)
}

// ClassPercentile returns the p-th percentile slowdown among retained
// samples of one class, or NaN if the class has no samples.
func (c *Collector) ClassPercentile(class string, p float64) float64 {
	var vals []float64
	for _, s := range c.samples {
		if s.Class == class {
			vals = append(vals, s.Slowdown)
		}
	}
	if len(vals) == 0 {
		return math.NaN()
	}
	sort.Float64s(vals)
	rank := int(math.Ceil(p / 100 * float64(len(vals))))
	if rank < 1 {
		rank = 1
	}
	return vals[rank-1]
}

// Classes returns the distinct class labels seen among retained
// samples, sorted.
func (c *Collector) Classes() []string {
	set := map[string]bool{}
	for _, s := range c.samples {
		set[s.Class] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Point is one load point in a sweep: offered load and measured tail
// behaviour, mirroring one x-position in the paper's figures.
type Point struct {
	OfferedKRps    float64 // offered load in thousand requests/second
	AchievedKRps   float64 // completed throughput
	P50            float64 // median slowdown
	P99            float64
	P999           float64 // the paper's headline metric
	Mean           float64
	Samples        int
	DispatcherBusy float64 // fraction of time the dispatcher was busy
	WorkerIdle     float64 // mean fraction of time workers sat idle
	StolenFrac     float64 // fraction of requests processed by the dispatcher
	Preemptions    float64 // mean preemptions per request
}

// Curve is a load sweep for one system: the data behind one line in a
// slowdown-vs-load figure.
type Curve struct {
	System string
	Points []Point
}

// MaxLoadUnderSLO returns the largest offered load whose p99.9 slowdown
// meets the SLO, using linear interpolation between the last passing and
// first failing points (the paper's "throughput at target slowdown").
// ok is false if no point meets the SLO.
func (c Curve) MaxLoadUnderSLO(slo float64) (kRps float64, ok bool) {
	best := math.NaN()
	for i, p := range c.Points {
		if math.IsNaN(p.P999) {
			continue
		}
		if p.P999 <= slo {
			best = p.OfferedKRps
			ok = true
			// Interpolate toward the next failing point, if any.
			if i+1 < len(c.Points) {
				n := c.Points[i+1]
				if !math.IsNaN(n.P999) && n.P999 > slo && n.P999 != p.P999 {
					frac := (slo - p.P999) / (n.P999 - p.P999)
					cand := p.OfferedKRps + frac*(n.OfferedKRps-p.OfferedKRps)
					if cand > best {
						best = cand
					}
				}
			}
		}
	}
	return best, ok
}

// Improvement returns the relative throughput gain of curve a over curve
// b at the given SLO, e.g. 0.52 for "52% greater throughput".
func Improvement(a, b Curve, slo float64) (float64, error) {
	la, oka := a.MaxLoadUnderSLO(slo)
	lb, okb := b.MaxLoadUnderSLO(slo)
	if !oka || !okb {
		return 0, fmt.Errorf("stats: curve never meets SLO %.0f (a ok=%v, b ok=%v)", slo, oka, okb)
	}
	if lb == 0 {
		return 0, fmt.Errorf("stats: baseline sustains zero load")
	}
	return la/lb - 1, nil
}
