package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func collectorWith(vals ...float64) *Collector {
	c := NewCollector(len(vals))
	for _, v := range vals {
		c.Add(Sample{Class: "x", Slowdown: v})
	}
	return c
}

func TestPercentileNearestRank(t *testing.T) {
	c := collectorWith(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	cases := []struct {
		p    float64
		want float64
	}{
		{50, 5}, {10, 1}, {100, 10}, {99, 10}, {91, 10}, {90, 9},
	}
	for _, tc := range cases {
		if got := c.SlowdownPercentile(tc.p); got != tc.want {
			t.Errorf("p%v = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestPercentileEmptyAndBounds(t *testing.T) {
	c := NewCollector(0)
	if !math.IsNaN(c.SlowdownPercentile(50)) {
		t.Error("empty collector should return NaN")
	}
	if !math.IsNaN(c.MeanSlowdown()) {
		t.Error("empty collector mean should be NaN")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("percentile 0 should panic")
		}
	}()
	collectorWith(1).SlowdownPercentile(0)
}

func TestPercentileMonotoneProperty(t *testing.T) {
	prop := func(vals []float64, a, b uint8) bool {
		if len(vals) == 0 {
			return true
		}
		c := NewCollector(len(vals))
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			c.Add(Sample{Slowdown: math.Abs(v)})
		}
		pa := 0.1 + float64(a)/256*99
		pb := 0.1 + float64(b)/256*99
		if pa > pb {
			pa, pb = pb, pa
		}
		return c.SlowdownPercentile(pa) <= c.SlowdownPercentile(pb)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileInterleavedAdds(t *testing.T) {
	c := collectorWith(5, 1)
	if got := c.SlowdownPercentile(100); got != 5 {
		t.Fatalf("p100 = %v, want 5", got)
	}
	c.Add(Sample{Slowdown: 9})
	if got := c.SlowdownPercentile(100); got != 9 {
		t.Fatalf("p100 after add = %v, want 9 (re-sort after Add)", got)
	}
}

func TestMeanSlowdown(t *testing.T) {
	if got := collectorWith(1, 2, 3).MeanSlowdown(); got != 2 {
		t.Fatalf("mean = %v, want 2", got)
	}
}

func TestClassPercentile(t *testing.T) {
	c := NewCollector(6)
	for _, v := range []float64{1, 2, 3} {
		c.Add(Sample{Class: "get", Slowdown: v})
	}
	for _, v := range []float64{10, 20, 30} {
		c.Add(Sample{Class: "scan", Slowdown: v})
	}
	if got := c.ClassPercentile("get", 100); got != 3 {
		t.Fatalf("get p100 = %v, want 3", got)
	}
	if got := c.ClassPercentile("scan", 50); got != 20 {
		t.Fatalf("scan p50 = %v, want 20", got)
	}
	if !math.IsNaN(c.ClassPercentile("missing", 50)) {
		t.Fatal("missing class should return NaN")
	}
	classes := c.Classes()
	if !sort.StringsAreSorted(classes) || len(classes) != 2 {
		t.Fatalf("Classes() = %v", classes)
	}
}

func curve(points ...Point) Curve { return Curve{System: "test", Points: points} }

func TestMaxLoadUnderSLO(t *testing.T) {
	c := curve(
		Point{OfferedKRps: 100, P999: 5},
		Point{OfferedKRps: 200, P999: 20},
		Point{OfferedKRps: 300, P999: 80},
	)
	got, ok := c.MaxLoadUnderSLO(50)
	if !ok {
		t.Fatal("SLO met at 200 but ok=false")
	}
	// Interpolation between (200,20) and (300,80): 200 + 100·(30/60) = 250.
	if math.Abs(got-250) > 1e-9 {
		t.Fatalf("max load = %v, want 250", got)
	}
}

func TestMaxLoadUnderSLONeverMet(t *testing.T) {
	c := curve(Point{OfferedKRps: 100, P999: 99})
	if _, ok := c.MaxLoadUnderSLO(50); ok {
		t.Fatal("SLO never met but ok=true")
	}
}

func TestMaxLoadUnderSLOAllPass(t *testing.T) {
	c := curve(
		Point{OfferedKRps: 100, P999: 5},
		Point{OfferedKRps: 200, P999: 10},
	)
	got, ok := c.MaxLoadUnderSLO(50)
	if !ok || got != 200 {
		t.Fatalf("max load = %v ok=%v, want 200 true", got, ok)
	}
}

func TestMaxLoadSkipsNaN(t *testing.T) {
	c := curve(
		Point{OfferedKRps: 100, P999: 5},
		Point{OfferedKRps: 150, P999: math.NaN()},
		Point{OfferedKRps: 200, P999: 30},
	)
	got, ok := c.MaxLoadUnderSLO(50)
	if !ok || got < 200 {
		t.Fatalf("max load = %v ok=%v, want >= 200", got, ok)
	}
}

func TestImprovement(t *testing.T) {
	a := curve(Point{OfferedKRps: 150, P999: 10}, Point{OfferedKRps: 152, P999: 60})
	b := curve(Point{OfferedKRps: 100, P999: 10}, Point{OfferedKRps: 102, P999: 60})
	imp, err := Improvement(a, b, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(imp-0.5) > 0.03 {
		t.Fatalf("improvement = %v, want ≈0.5", imp)
	}
	if _, err := Improvement(a, curve(Point{OfferedKRps: 1, P999: 99}), 50); err == nil {
		t.Fatal("expected error when baseline never meets SLO")
	}
}
