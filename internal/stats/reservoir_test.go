package stats

import (
	"math"
	"reflect"
	"testing"
)

// TestReservoirExactBelowCap: until the cap is reached the reservoir IS
// the exact sample set, so quick-fidelity runs lose nothing.
func TestReservoirExactBelowCap(t *testing.T) {
	r := NewReservoir(100, 1)
	e := NewCollector(50)
	for i := 0; i < 50; i++ {
		s := Sample{Class: "x", Slowdown: float64(i + 1)}
		r.Add(s)
		e.Add(s)
	}
	if r.Retained() != 50 || r.Len() != 50 {
		t.Fatalf("retained=%d len=%d, want 50/50", r.Retained(), r.Len())
	}
	if !r.Exact() {
		t.Fatal("below cap the reservoir should report Exact()")
	}
	for _, p := range []float64{1, 50, 99, 99.9, 100} {
		if r.SlowdownPercentile(p) != e.SlowdownPercentile(p) {
			t.Fatalf("p%v: reservoir %v != exact %v", p, r.SlowdownPercentile(p), e.SlowdownPercentile(p))
		}
	}
	if r.MeanSlowdown() != e.MeanSlowdown() {
		t.Fatal("mean differs below cap")
	}
}

// TestReservoirBoundedRetention: past the cap, retention stays at the
// cap while count and mean remain exact over the full stream.
func TestReservoirBoundedRetention(t *testing.T) {
	const cap, n = 64, 10000
	r := NewReservoir(cap, 42)
	var sum float64
	for i := 0; i < n; i++ {
		v := float64(i%100) + 1
		sum += v
		r.Add(Sample{Slowdown: v})
	}
	if r.Retained() != cap {
		t.Fatalf("retained = %d, want %d", r.Retained(), cap)
	}
	if r.Len() != n {
		t.Fatalf("Len() = %d, want %d (total count, not retained)", r.Len(), n)
	}
	if r.Exact() {
		t.Fatal("past cap the reservoir must not report Exact()")
	}
	if got := r.MeanSlowdown(); math.Abs(got-sum/n) > 1e-9 {
		t.Fatalf("mean = %v, want exact %v", got, sum/n)
	}
	// Percentiles come from the retained subset: must be legal values.
	for _, p := range []float64{50, 99, 100} {
		v := r.SlowdownPercentile(p)
		if v < 1 || v > 100 {
			t.Fatalf("p%v = %v outside the input range", p, v)
		}
	}
}

// TestReservoirDeterministic: same seed and stream → identical retained
// samples; a different seed evicts differently. This is what makes
// reservoir mode safe under the parallel runner.
func TestReservoirDeterministic(t *testing.T) {
	stream := func(r *Collector) {
		for i := 0; i < 5000; i++ {
			r.Add(Sample{Slowdown: float64(i)})
		}
	}
	a, b, c := NewReservoir(32, 9), NewReservoir(32, 9), NewReservoir(32, 10)
	stream(a)
	stream(b)
	stream(c)
	if !reflect.DeepEqual(a.Samples(), b.Samples()) {
		t.Fatal("same seed produced different reservoirs")
	}
	if reflect.DeepEqual(a.Samples(), c.Samples()) {
		t.Fatal("different seeds produced identical reservoirs (suspicious)")
	}
}
