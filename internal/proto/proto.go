// Package proto is concord-kvd's pipelined binary wire protocol: fixed
// little-endian headers, many in-flight requests per connection, and
// responses matched to requests by an opaque client-chosen id so they
// may return out of order.
//
// # Request frame (v1)
//
//	offset size field
//	0      1    magic (0xC2 — no ASCII text command starts with it)
//	1      1    opcode
//	2      8    request id, uint64 LE (echoed verbatim on the response)
//	10     4    key length, uint32 LE
//	14     4    value length, uint32 LE
//	18     k    key bytes
//	18+k   v    value bytes
//
// SPIN encodes its duration as a 4-byte LE microsecond count in the key
// field (key length 4, value length 0).
//
// # Request frame (v2: SLO class)
//
// The v2 frame carries the request's SLO class in a byte between the
// opcode and the id; everything after shifts by one:
//
//	offset size field
//	0      1    magic (0xC4)
//	1      1    opcode
//	2      1    SLO class (0 standard, 1 critical, 2 sheddable)
//	3      8    request id, uint64 LE
//	11     4    key length, uint32 LE
//	15     4    value length, uint32 LE
//	19     k    key bytes
//	19+k   v    value bytes
//
// Versioning is by magic, so the two frame formats interleave freely on
// one connection and a v1-only client never changes: a v1 frame simply
// is a class-standard request. AppendClassRequest canonicalizes —
// class 0 emits the v1 frame (zero overhead for unclassed traffic).
//
// # Response frame
//
//	offset size field
//	0      1    magic (0xC3)
//	1      1    status
//	2      8    request id, uint64 LE
//	10     4    payload length, uint32 LE
//	14     n    payload bytes
//
// StValue carries the value bytes, StCount an 8-byte LE count, StErr a
// human-readable message; every other status has an empty payload.
//
// # Auto-detection
//
// A connection's first byte decides its protocol for the connection's
// lifetime: ReqMagic means binary framing, anything else means the
// line-oriented text protocol. The magics have the high bit set, which
// no text command's first byte ever does.
//
// # Zero copy
//
// FrameReader decodes frames in place inside pooled, ref-counted
// buffers (see Buffer): Frame.Key and Frame.Val alias the read buffer,
// which is recycled only after every frame cut from it has been
// Released — typically when the response is flushed.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Protocol magics. Request and response magic differ so a desynced peer
// fails loudly instead of misparsing. ReqMagicV2 versions the request
// frame (adds the SLO-class byte); there is no v2 response frame.
const (
	ReqMagic   = 0xC2
	RespMagic  = 0xC3
	ReqMagicV2 = 0xC4
)

// IsReqMagic reports whether b opens a request frame of either version
// — the connection-layer auto-detection probe.
func IsReqMagic(b byte) bool { return b == ReqMagic || b == ReqMagicV2 }

// Opcodes.
const (
	OpGet byte = iota + 1
	OpPut
	OpDel
	OpScan
	OpSpin
)

// Response statuses. The numeric values are wire format: append-only.
const (
	StOK         byte = 0  // PUT/DEL/SPIN success, empty payload
	StValue      byte = 1  // GET hit, payload = value
	StNotFound   byte = 2  // GET/DEL miss
	StCount      byte = 3  // SCAN, payload = 8-byte LE count
	StErr        byte = 4  // handler error, payload = message
	StDeadline   byte = 5  // request deadline exceeded
	StOverloaded byte = 6  // submit queue full
	StStopped    byte = 7  // server draining
	StTooLarge   byte = 8  // frame body over the server's -maxreq limit
	StBadRequest byte = 9  // unknown opcode or malformed frame body
	StShed       byte = 10 // sheddable request dropped by class admission
)

// Header sizes.
const (
	ReqHeaderSize   = 18
	ReqV2HeaderSize = 19
	RespHeaderSize  = 14
)

// StatusString names a status for logs and error tokens; it matches the
// text protocol's single-token failure responses where one exists.
func StatusString(st byte) string {
	switch st {
	case StOK:
		return "OK"
	case StValue:
		return "VALUE"
	case StNotFound:
		return "NOTFOUND"
	case StCount:
		return "COUNT"
	case StErr:
		return "ERR"
	case StDeadline:
		return "DEADLINE"
	case StOverloaded:
		return "OVERLOADED"
	case StStopped:
		return "STOPPED"
	case StTooLarge:
		return "TOOLARGE"
	case StBadRequest:
		return "BADREQUEST"
	case StShed:
		return "SHED"
	}
	return fmt.Sprintf("STATUS(%d)", st)
}

// OpString names an opcode; unknown opcodes render numerically.
func OpString(op byte) string {
	switch op {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpDel:
		return "DEL"
	case OpScan:
		return "SCAN"
	case OpSpin:
		return "SPIN"
	}
	return fmt.Sprintf("OP(%d)", op)
}

// ErrBadMagic reports a stream position where a request frame was
// expected but the magic byte did not match: the stream is desynced and
// the connection must be closed.
var ErrBadMagic = errors.New("proto: bad frame magic (stream desynced)")

// TooLargeError reports a frame whose body exceeds the reader's limit.
// The frame's id is preserved so the server can answer StTooLarge; the
// reader discards the oversized body and the stream stays usable.
type TooLargeError struct {
	ID   uint64
	Size int
	Max  int
}

func (e *TooLargeError) Error() string {
	return fmt.Sprintf("proto: frame %d body %dB exceeds limit %dB", e.ID, e.Size, e.Max)
}

// AppendRequest appends one encoded request frame to dst and returns
// the extended slice. The id is echoed verbatim on the response.
func AppendRequest(dst []byte, op byte, id uint64, key, val []byte) []byte {
	var h [ReqHeaderSize]byte
	h[0] = ReqMagic
	h[1] = op
	binary.LittleEndian.PutUint64(h[2:], id)
	binary.LittleEndian.PutUint32(h[10:], uint32(len(key)))
	binary.LittleEndian.PutUint32(h[14:], uint32(len(val)))
	dst = append(dst, h[:]...)
	dst = append(dst, key...)
	return append(dst, val...)
}

// AppendClassRequest appends one encoded request frame carrying an SLO
// class. Class 0 (standard) emits the canonical v1 frame — classless
// traffic pays no format overhead and stays parseable by v1-only peers;
// any other class emits the v2 frame.
func AppendClassRequest(dst []byte, op, class byte, id uint64, key, val []byte) []byte {
	if class == 0 {
		return AppendRequest(dst, op, id, key, val)
	}
	var h [ReqV2HeaderSize]byte
	h[0] = ReqMagicV2
	h[1] = op
	h[2] = class
	binary.LittleEndian.PutUint64(h[3:], id)
	binary.LittleEndian.PutUint32(h[11:], uint32(len(key)))
	binary.LittleEndian.PutUint32(h[15:], uint32(len(val)))
	dst = append(dst, h[:]...)
	dst = append(dst, key...)
	return append(dst, val...)
}

// AppendSpinRequest appends a SPIN frame for the given duration in
// microseconds.
func AppendSpinRequest(dst []byte, id uint64, micros uint32) []byte {
	var arg [4]byte
	binary.LittleEndian.PutUint32(arg[:], micros)
	return AppendRequest(dst, OpSpin, id, arg[:], nil)
}

// AppendSpinClassRequest is AppendSpinRequest with an SLO class.
func AppendSpinClassRequest(dst []byte, class byte, id uint64, micros uint32) []byte {
	var arg [4]byte
	binary.LittleEndian.PutUint32(arg[:], micros)
	return AppendClassRequest(dst, OpSpin, class, id, arg[:], nil)
}

// AppendResponse appends one encoded response frame to dst and returns
// the extended slice.
func AppendResponse(dst []byte, st byte, id uint64, payload []byte) []byte {
	var h [RespHeaderSize]byte
	h[0] = RespMagic
	h[1] = st
	binary.LittleEndian.PutUint64(h[2:], id)
	binary.LittleEndian.PutUint32(h[10:], uint32(len(payload)))
	dst = append(dst, h[:]...)
	return append(dst, payload...)
}

// AppendCountResponse appends a StCount response carrying n.
func AppendCountResponse(dst []byte, id uint64, n uint64) []byte {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], n)
	return AppendResponse(dst, StCount, id, p[:])
}

// DecodeCount reads the 8-byte LE count out of a StCount payload.
func DecodeCount(payload []byte) (uint64, bool) {
	if len(payload) != 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(payload), true
}

// DecodeSpin reads the 4-byte LE microsecond count out of a SPIN
// frame's key field.
func DecodeSpin(key []byte) (uint32, bool) {
	if len(key) != 4 {
		return 0, false
	}
	return binary.LittleEndian.Uint32(key), true
}
