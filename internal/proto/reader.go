// FrameReader: the zero-copy server-side decode path. Frames are
// parsed in place inside pooled buffers; a frame that is torn across
// two reads is completed by rolling the unparsed tail into the next
// buffer, so handlers always see contiguous key/value slices without a
// per-frame copy or allocation.
package proto

import (
	"bufio"
	"encoding/binary"
	"io"
)

// Frame is one decoded request. Key and Val alias the reader's pooled
// buffer: they are valid until Release, which must be called exactly
// once — typically after the response has been written.
type Frame struct {
	Op byte
	// Class is the request's SLO class: the v2 frame's class byte, 0
	// (standard) for v1 frames.
	Class byte
	ID    uint64
	Key   []byte
	Val   []byte
	buf   *Buffer
}

// Release drops the frame's buffer reference. Key and Val must not be
// used afterwards. Safe to call from a different goroutine than the
// reader's (the flusher releases frames as it writes responses).
func (f *Frame) Release() {
	if f.buf != nil {
		f.buf.Release()
		f.buf = nil
	}
}

// FrameReader decodes request frames from a stream into pooled buffers.
// Not safe for concurrent use; one per connection.
type FrameReader struct {
	r    io.Reader
	pool *Pool
	max  int // maximum body (key+value) bytes per frame

	buf        *Buffer
	start, end int // unparsed window within buf.B
}

// NewFrameReader wraps r. max bounds a frame's body (key length plus
// value length); frames over it produce a *TooLargeError from Next and
// are skipped, keeping the stream usable.
func NewFrameReader(r io.Reader, pool *Pool, max int) *FrameReader {
	return &FrameReader{r: r, pool: pool, max: max}
}

// Prime seeds already-consumed bytes (the auto-detection peek) so they
// are decoded before anything further is read from the stream.
func (fr *FrameReader) Prime(b []byte) {
	if len(b) == 0 {
		return
	}
	fr.buf = fr.pool.getSized(len(b))
	fr.end = copy(fr.buf.B, b)
}

// Close releases the reader's buffer reference. Frames already handed
// out stay valid until their own Release.
func (fr *FrameReader) Close() {
	if fr.buf != nil {
		fr.buf.Release()
		fr.buf = nil
	}
}

// Next decodes the next frame. It returns io.EOF at a clean frame
// boundary, io.ErrUnexpectedEOF mid-frame, ErrBadMagic on a desynced
// stream, and *TooLargeError (stream still usable) for an oversized
// frame. Any other error is the underlying reader's.
func (fr *FrameReader) Next() (Frame, error) {
	if err := fr.ensure(ReqHeaderSize, true); err != nil {
		return Frame{}, err
	}
	h := fr.buf.B[fr.start:]
	// Version by magic: v1 fields start at offset 2, v2 inserts the SLO
	// class byte there and shifts the rest by one.
	hdr := ReqHeaderSize
	var class byte
	switch h[0] {
	case ReqMagic:
	case ReqMagicV2:
		hdr = ReqV2HeaderSize
		if err := fr.ensure(hdr, false); err != nil {
			return Frame{}, err
		}
		h = fr.buf.B[fr.start:] // ensure may have rolled the buffer
		class = h[2]
	default:
		return Frame{}, ErrBadMagic
	}
	op := h[1]
	id := binary.LittleEndian.Uint64(h[hdr-16:])
	klen := int64(binary.LittleEndian.Uint32(h[hdr-8:]))
	vlen := int64(binary.LittleEndian.Uint32(h[hdr-4:]))
	body := klen + vlen
	if body > int64(fr.max) {
		// Skip the body without buffering it: consume what is already
		// read, drop the rest on the floor, and report the id so the
		// server can answer StTooLarge on a still-synced stream.
		fr.start += hdr
		have := int64(fr.end - fr.start)
		if have > body {
			have = body
		}
		fr.start += int(have)
		if rest := body - have; rest > 0 {
			if _, err := io.CopyN(io.Discard, fr.r, rest); err != nil {
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return Frame{}, err
			}
		}
		return Frame{}, &TooLargeError{ID: id, Size: int(body), Max: fr.max}
	}
	total := hdr + int(body)
	if err := fr.ensure(total, false); err != nil {
		return Frame{}, err
	}
	b := fr.buf.B[fr.start:]
	f := Frame{
		Op:    op,
		Class: class,
		ID:    id,
		Key:   b[hdr : hdr+int(klen) : hdr+int(klen)],
		Val:   b[hdr+int(klen) : total : total],
		buf:   fr.buf,
	}
	fr.buf.Retain()
	fr.start += total
	return f, nil
}

// ensure makes at least n contiguous unparsed bytes available at
// fr.start, rolling to a fresh (or one-off oversized) buffer when the
// current one lacks tail room. atBoundary selects the clean-EOF
// semantics: io.EOF with nothing buffered, io.ErrUnexpectedEOF
// otherwise.
func (fr *FrameReader) ensure(n int, atBoundary bool) error {
	avail := fr.end - fr.start
	if avail >= n && fr.buf != nil {
		return nil
	}
	if fr.buf == nil {
		fr.buf = fr.pool.getSized(n)
		fr.start, fr.end = 0, 0
	} else if fr.start+n > len(fr.buf.B) {
		if avail == 0 && n <= len(fr.buf.B) && fr.buf.refs.Load() == 1 {
			// Sole owner and fully parsed: recycle in place. No frame
			// can alias the contents (refs would be >1) and nobody else
			// can retain a buffer they hold no reference to.
			fr.start, fr.end = 0, 0
		} else {
			// Roll: move the unparsed tail into a fresh buffer and drop
			// the reader's reference on the old one. Frames cut from it
			// keep it alive until their responses flush.
			nb := fr.pool.getSized(n)
			copy(nb.B, fr.buf.B[fr.start:fr.end])
			fr.buf.Release()
			fr.buf = nb
			fr.start, fr.end = 0, avail
		}
	}
	for fr.end-fr.start < n {
		m, err := fr.r.Read(fr.buf.B[fr.end:])
		fr.end += m
		if err != nil {
			if err == io.EOF {
				if atBoundary && fr.end == fr.start {
					return io.EOF
				}
				return io.ErrUnexpectedEOF
			}
			return err
		}
	}
	return nil
}

// Resp is one decoded response frame. Payload aliases the RespReader's
// internal buffer: valid only until the next call to Next.
type Resp struct {
	Status  byte
	ID      uint64
	Payload []byte
}

// RespReader decodes response frames on the client side. Unlike
// FrameReader it does not pool: one grow-only payload buffer is reused
// across responses, which is allocation-free in steady state for a
// single-reader connection.
type RespReader struct {
	br      *bufio.Reader
	payload []byte
}

// NewRespReader wraps r with a bufSize-byte read buffer (minimum the
// response header size; 0 picks a small default suited to fan-in).
func NewRespReader(r io.Reader, bufSize int) *RespReader {
	if bufSize < RespHeaderSize {
		bufSize = 2048
	}
	return &RespReader{br: bufio.NewReaderSize(r, bufSize)}
}

// Next decodes the next response: io.EOF at a clean boundary,
// io.ErrUnexpectedEOF mid-frame, ErrBadMagic on desync.
func (rr *RespReader) Next() (Resp, error) {
	var h [RespHeaderSize]byte
	if _, err := io.ReadFull(rr.br, h[:1]); err != nil {
		return Resp{}, err // io.EOF here is a clean boundary
	}
	if h[0] != RespMagic {
		return Resp{}, ErrBadMagic
	}
	if _, err := io.ReadFull(rr.br, h[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Resp{}, err
	}
	plen := int(binary.LittleEndian.Uint32(h[10:]))
	if cap(rr.payload) < plen {
		rr.payload = make([]byte, plen)
	}
	rr.payload = rr.payload[:plen]
	if _, err := io.ReadFull(rr.br, rr.payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Resp{}, err
	}
	return Resp{Status: h[1], ID: binary.LittleEndian.Uint64(h[2:]), Payload: rr.payload}, nil
}
