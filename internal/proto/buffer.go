// Pooled, ref-counted read buffers. A FrameReader fills a Buffer from
// the connection and cuts zero-copy frames out of it; each frame holds
// one reference, the reader holds one while it is still filling, and
// the buffer returns to the pool when the count reaches zero — after
// the last response built from it has flushed.
package proto

import (
	"sync"
	"sync/atomic"
)

// Buffer is one pooled read buffer. The zero refs state means "free";
// Pool.Get returns a buffer with one reference (the caller's).
type Buffer struct {
	refs atomic.Int32
	pool *Pool // nil for one-off oversized buffers: Release drops to GC
	// B is the backing storage. Frames alias sub-slices of it; it must
	// not be resliced while references are outstanding.
	B []byte
}

// Retain adds a reference. Each Retain must be paired with exactly one
// Release.
func (b *Buffer) Retain() { b.refs.Add(1) }

// Release drops a reference; the last one returns the buffer to its
// pool (or the GC for one-off buffers). Releasing below zero panics:
// it means a frame was released twice and the buffer may already be
// carrying another connection's bytes.
func (b *Buffer) Release() {
	n := b.refs.Add(-1)
	if n == 0 {
		if b.pool != nil {
			b.pool.put(b)
		}
		return
	}
	if n < 0 {
		panic("proto: Buffer over-released")
	}
}

// Pool recycles fixed-size Buffers. The size bounds per-connection
// memory while a frame is in flight; frames larger than one buffer get
// a one-off right-sized buffer that is garbage collected instead of
// pooled.
type Pool struct {
	size int
	p    sync.Pool
}

// NewPool builds a pool of size-byte buffers. Sizes below 512 are
// rounded up: a buffer must at least hold a maximal fixed header plus a
// small frame.
func NewPool(size int) *Pool {
	if size < 512 {
		size = 512
	}
	p := &Pool{size: size}
	p.p.New = func() any { return &Buffer{pool: p, B: make([]byte, size)} }
	return p
}

// Size returns the pooled buffer size in bytes.
func (p *Pool) Size() int { return p.size }

// Get returns a buffer with one reference held by the caller.
func (p *Pool) Get() *Buffer {
	b := p.p.Get().(*Buffer)
	b.refs.Store(1)
	return b
}

// getSized returns a buffer of at least n bytes: pooled when n fits,
// a one-off otherwise.
func (p *Pool) getSized(n int) *Buffer {
	if n <= p.size {
		return p.Get()
	}
	b := &Buffer{B: make([]byte, n)}
	b.refs.Store(1)
	return b
}

func (p *Pool) put(b *Buffer) { p.p.Put(b) }
