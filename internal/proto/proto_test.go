package proto

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// chunkReader yields at most n bytes per Read, forcing torn frames.
type chunkReader struct {
	r io.Reader
	n int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(p) > c.n {
		p = p[:c.n]
	}
	return c.r.Read(p)
}

func encodeMix(t *testing.T) ([]byte, []Frame) {
	t.Helper()
	want := []Frame{
		{Op: OpGet, ID: 1, Key: []byte("key1"), Val: []byte{}},
		{Op: OpPut, ID: 7, Key: []byte("key2"), Val: bytes.Repeat([]byte("v"), 300)},
		{Op: OpDel, ID: 2, Key: []byte("a"), Val: []byte{}},
		{Op: OpScan, ID: 99, Key: []byte{}, Val: []byte{}},
	}
	var wire []byte
	for _, f := range want {
		wire = AppendRequest(wire, f.Op, f.ID, f.Key, f.Val)
	}
	wire = AppendSpinRequest(wire, 42, 250)
	return wire, want
}

func TestFrameRoundTrip(t *testing.T) {
	wire, want := encodeMix(t)
	fr := NewFrameReader(bytes.NewReader(wire), NewPool(4096), 1<<20)
	for i, w := range want {
		f, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Op != w.Op || f.ID != w.ID || !bytes.Equal(f.Key, w.Key) || !bytes.Equal(f.Val, w.Val) {
			t.Fatalf("frame %d = {%d %d %q %q}, want {%d %d %q %q}",
				i, f.Op, f.ID, f.Key, f.Val, w.Op, w.ID, w.Key, w.Val)
		}
		f.Release()
	}
	f, err := fr.Next()
	if err != nil {
		t.Fatalf("spin frame: %v", err)
	}
	if us, ok := DecodeSpin(f.Key); !ok || us != 250 {
		t.Fatalf("DecodeSpin = %d,%v want 250,true", us, ok)
	}
	f.Release()
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("at end: err = %v, want io.EOF", err)
	}
	fr.Close()
}

// TestTornFrames drips the stream one byte at a time through a tiny
// pool so every frame is torn across reads and buffer rolls, and the
// decoded frames must still come out intact.
func TestTornFrames(t *testing.T) {
	wire, want := encodeMix(t)
	for _, chunk := range []int{1, 2, 3, 7} {
		fr := NewFrameReader(&chunkReader{r: bytes.NewReader(wire), n: chunk}, NewPool(512), 1<<20)
		var got []Frame
		for {
			f, err := fr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("chunk %d: %v", chunk, err)
			}
			// Copy out before Release: the point of the test is that the
			// slices were valid while held.
			got = append(got, Frame{Op: f.Op, ID: f.ID,
				Key: append([]byte(nil), f.Key...), Val: append([]byte(nil), f.Val...)})
			f.Release()
		}
		if len(got) != len(want)+1 {
			t.Fatalf("chunk %d: decoded %d frames, want %d", chunk, len(got), len(want)+1)
		}
		for i, w := range want {
			f := got[i]
			if f.Op != w.Op || f.ID != w.ID || !bytes.Equal(f.Key, w.Key) || !bytes.Equal(f.Val, w.Val) {
				t.Fatalf("chunk %d frame %d mismatch", chunk, i)
			}
		}
		fr.Close()
	}
}

// TestHeldFramesSurviveRoll: frames cut from a buffer stay valid after
// the reader rolls to the next buffer, until each frame is Released.
func TestHeldFramesSurviveRoll(t *testing.T) {
	var wire []byte
	const n = 64
	for i := uint64(0); i < n; i++ {
		wire = AppendRequest(wire, OpPut, i, []byte{byte('a' + i%26)}, bytes.Repeat([]byte{byte(i)}, 40))
	}
	fr := NewFrameReader(bytes.NewReader(wire), NewPool(512), 1<<20) // ~8 frames per buffer
	var held []Frame
	for {
		f, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, f)
	}
	if len(held) != n {
		t.Fatalf("decoded %d frames, want %d", len(held), n)
	}
	for i, f := range held {
		if f.ID != uint64(i) || len(f.Val) != 40 || f.Val[0] != byte(i) {
			t.Fatalf("held frame %d corrupted after roll: id=%d val[0]=%d", i, f.ID, f.Val[0])
		}
		f.Release()
	}
	fr.Close()
}

func TestBadMagicDesync(t *testing.T) {
	wire := []byte{0x47, 0x45, 0x54} // "GET" — text on a binary reader
	fr := NewFrameReader(bytes.NewReader(append(wire, make([]byte, 32)...)), NewPool(512), 1<<20)
	if _, err := fr.Next(); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	fr.Close()
}

// TestTooLargeSkips: an oversized frame reports its id and is skipped;
// the next frame on the stream decodes normally.
func TestTooLargeSkips(t *testing.T) {
	var wire []byte
	big := bytes.Repeat([]byte("x"), 5000)
	wire = AppendRequest(wire, OpPut, 11, []byte("k"), big)
	wire = AppendRequest(wire, OpGet, 12, []byte("after"), nil)
	for _, chunk := range []int{4096, 3} {
		fr := NewFrameReader(&chunkReader{r: bytes.NewReader(wire), n: chunk}, NewPool(1024), 4096)
		_, err := fr.Next()
		var tl *TooLargeError
		if !errors.As(err, &tl) {
			t.Fatalf("chunk %d: err = %v, want TooLargeError", chunk, err)
		}
		if tl.ID != 11 || tl.Size != 5001 || tl.Max != 4096 {
			t.Fatalf("chunk %d: TooLargeError = %+v", chunk, tl)
		}
		f, err := fr.Next()
		if err != nil || f.Op != OpGet || f.ID != 12 || string(f.Key) != "after" {
			t.Fatalf("chunk %d: frame after oversize = %+v, %v", chunk, f, err)
		}
		f.Release()
		if _, err := fr.Next(); err != io.EOF {
			t.Fatalf("chunk %d: err = %v, want io.EOF", chunk, err)
		}
		fr.Close()
	}
}

// TestOversizedLegalFrame: a frame bigger than the pool's buffer but
// under the limit decodes via a one-off buffer.
func TestOversizedLegalFrame(t *testing.T) {
	val := bytes.Repeat([]byte("y"), 3000)
	wire := AppendRequest(nil, OpPut, 5, []byte("k"), val)
	wire = AppendRequest(wire, OpGet, 6, []byte("next"), nil)
	fr := NewFrameReader(bytes.NewReader(wire), NewPool(512), 1<<20)
	f, err := fr.Next()
	if err != nil || !bytes.Equal(f.Val, val) {
		t.Fatalf("oversized legal frame: %v (val %d bytes)", err, len(f.Val))
	}
	f.Release()
	f, err = fr.Next()
	if err != nil || f.ID != 6 {
		t.Fatalf("frame after oversized: %+v, %v", f, err)
	}
	f.Release()
	fr.Close()
}

func TestMidFrameEOF(t *testing.T) {
	wire := AppendRequest(nil, OpPut, 1, []byte("key"), []byte("value"))
	for _, cut := range []int{1, ReqHeaderSize - 1, ReqHeaderSize, ReqHeaderSize + 2} {
		fr := NewFrameReader(bytes.NewReader(wire[:cut]), NewPool(512), 1<<20)
		if _, err := fr.Next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut %d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
		fr.Close()
	}
}

func TestPrime(t *testing.T) {
	wire := AppendRequest(nil, OpGet, 3, []byte("k"), nil)
	fr := NewFrameReader(bytes.NewReader(wire[1:]), NewPool(512), 1<<20)
	fr.Prime(wire[:1]) // the auto-detection byte was already consumed
	f, err := fr.Next()
	if err != nil || f.ID != 3 || string(f.Key) != "k" {
		t.Fatalf("primed frame = %+v, %v", f, err)
	}
	f.Release()
	fr.Close()
}

func TestBufferRefCounting(t *testing.T) {
	p := NewPool(512)
	b := p.Get()
	b.Retain()
	b.Release()
	b.Release() // back to pool
	if got := p.Get(); got != b {
		// Not a strict guarantee of sync.Pool, but on a single goroutine
		// with no GC in between, a put buffer comes straight back.
		t.Skip("pool did not recycle; sync.Pool behavior")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	b.Release()
	b.Release()
}

func TestRespRoundTrip(t *testing.T) {
	var wire []byte
	wire = AppendResponse(wire, StValue, 9, []byte("hello"))
	wire = AppendCountResponse(wire, 10, 15000)
	wire = AppendResponse(wire, StNotFound, 11, nil)
	rr := NewRespReader(&chunkReader{r: bytes.NewReader(wire), n: 2}, 0)
	r, err := rr.Next()
	if err != nil || r.Status != StValue || r.ID != 9 || string(r.Payload) != "hello" {
		t.Fatalf("resp 1 = %+v, %v", r, err)
	}
	r, err = rr.Next()
	if err != nil || r.Status != StCount {
		t.Fatalf("resp 2 = %+v, %v", r, err)
	}
	if n, ok := DecodeCount(r.Payload); !ok || n != 15000 {
		t.Fatalf("DecodeCount = %d,%v", n, ok)
	}
	r, err = rr.Next()
	if err != nil || r.Status != StNotFound || r.ID != 11 || len(r.Payload) != 0 {
		t.Fatalf("resp 3 = %+v, %v", r, err)
	}
	if _, err := rr.Next(); err != io.EOF {
		t.Fatalf("at end: %v, want io.EOF", err)
	}
}

func TestRespMidFrameEOF(t *testing.T) {
	wire := AppendResponse(nil, StOK, 1, []byte("p"))
	for _, cut := range []int{2, RespHeaderSize, RespHeaderSize - 1} {
		rr := NewRespReader(bytes.NewReader(wire[:cut]), 0)
		if _, err := rr.Next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut %d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
	rr := NewRespReader(bytes.NewReader(wire[:0]), 0)
	if _, err := rr.Next(); err != io.EOF {
		t.Fatal("clean boundary should be io.EOF")
	}
}

func TestStatusAndOpStrings(t *testing.T) {
	if StatusString(StDeadline) != "DEADLINE" || StatusString(StOverloaded) != "OVERLOADED" ||
		StatusString(StStopped) != "STOPPED" || StatusString(StTooLarge) != "TOOLARGE" {
		t.Fatal("status tokens must match the text protocol's failure tokens")
	}
	if OpString(OpGet) != "GET" || OpString(OpSpin) != "SPIN" {
		t.Fatal("op names drifted")
	}
}

// TestClassFrameRoundTrip: v2 frames carry the class byte end to end,
// class 0 canonicalizes to a v1 frame on the wire, and v1/v2 frames
// interleave on one stream — all surviving torn reads.
func TestClassFrameRoundTrip(t *testing.T) {
	want := []Frame{
		{Op: OpGet, Class: 1, ID: 1, Key: []byte("crit"), Val: []byte{}},
		{Op: OpPut, Class: 0, ID: 2, Key: []byte("std"), Val: []byte("v")},
		{Op: OpScan, Class: 2, ID: 3, Key: []byte{}, Val: []byte{}},
		{Op: OpGet, Class: 0, ID: 4, Key: []byte("v1"), Val: []byte{}},
	}
	var wire []byte
	for _, f := range want {
		at := len(wire)
		if f.ID == 4 {
			// A v1 writer on the same stream.
			wire = AppendRequest(wire, f.Op, f.ID, f.Key, f.Val)
		} else {
			wire = AppendClassRequest(wire, f.Op, f.Class, f.ID, f.Key, f.Val)
		}
		wantMagic := byte(ReqMagicV2)
		if f.Class == 0 {
			// Canonicalization: standard never pays the v2 byte.
			wantMagic = ReqMagic
		}
		if wire[at] != wantMagic {
			t.Fatalf("frame id %d class %d: magic 0x%02X, want 0x%02X",
				f.ID, f.Class, wire[at], wantMagic)
		}
	}
	wire = AppendSpinClassRequest(wire, 2, 5, 250)

	fr := NewFrameReader(&chunkReader{r: bytes.NewReader(wire), n: 1}, NewPool(8), 1<<20)
	for i, w := range want {
		f, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Op != w.Op || f.Class != w.Class || f.ID != w.ID ||
			!bytes.Equal(f.Key, w.Key) || !bytes.Equal(f.Val, w.Val) {
			t.Fatalf("frame %d = {op %d class %d id %d %q %q}, want {op %d class %d id %d %q %q}",
				i, f.Op, f.Class, f.ID, f.Key, f.Val, w.Op, w.Class, w.ID, w.Key, w.Val)
		}
		f.Release()
	}
	f, err := fr.Next()
	if err != nil {
		t.Fatalf("classed spin frame: %v", err)
	}
	if us, ok := DecodeSpin(f.Key); !ok || us != 250 || f.Class != 2 {
		t.Fatalf("classed spin = %d,%v class %d, want 250,true class 2", us, ok, f.Class)
	}
	f.Release()
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("at end: err = %v, want io.EOF", err)
	}
	fr.Close()
}
