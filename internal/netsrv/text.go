// Text mode: the historical line protocol, lockstep through live.Do.
// The hot path reuses one Request, one parse, and one response buffer
// per connection — the old per-response fmt.Fprintf path allocated a
// format state and boxed operands on every single response.
package netsrv

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"time"

	"concord/internal/live"
	"concord/internal/obs"
	"concord/internal/proto"
)

// errTooLong marks a line over MaxReq; the line was consumed through
// its newline, so the stream is still usable.
var errTooLong = errors.New("netsrv: line too long")

func (s *Server) serveText(conn net.Conn, first []byte) {
	br := bufio.NewReaderSize(io.MultiReader(bytes.NewReader(first), conn), 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<12)
	var (
		spill []byte // reused overflow for lines longer than br's buffer
		out   []byte // reused response buffer
		req   Request
		obsOn bool
	)
	// flushOut writes the buffered response under a write deadline so a
	// client that stops reading cannot pin this goroutine forever.
	flushOut := func() bool {
		if wt := s.opts.WriteTimeout; wt > 0 {
			conn.SetWriteDeadline(time.Now().Add(wt))
		}
		return bw.Flush() == nil
	}
	reply := func(resp []byte) bool {
		resp = append(resp, '\n')
		if _, err := bw.Write(resp); err != nil {
			return false
		}
		return flushOut()
	}
	for {
		line, err := readLine(br, &spill, s.opts.MaxReq)
		if err == errTooLong {
			s.tooLarge.Add(1)
			s.textLines.Add(1)
			if !reply(append(out[:0], proto.StatusString(proto.StTooLarge)...)) {
				return
			}
			continue
		}
		if err != nil {
			return
		}
		s.textLines.Add(1)
		var readTS time.Time
		if s.tr != nil {
			readTS = time.Now()
		}
		req.reset()
		switch perr := parseText(line, &req); {
		case perr == nil:
			if s.tr != nil {
				req.readTS, req.parsedTS = readTS, time.Now()
			}
		case perr == errUnknownOp && s.opts.Control != nil && s.opts.Control(bw, string(line), &obsOn):
			if !flushOut() {
				return
			}
			continue
		default:
			out = append(append(out[:0], "ERR "...), perr.Error()...)
			if !reply(out) {
				return
			}
			continue
		}
		resp := s.rt.Do(&req)
		if resp.Err != nil {
			req.Status, req.errMsg = statusForErr(resp.Err)
		}
		if s.opts.Observe != nil {
			s.opts.Observe(req.Op, resp)
		}
		out = req.appendText(out[:0])
		if obsOn && s.opts.Trailer != nil {
			out = append(out, s.opts.Trailer(resp)...)
		}
		if s.tr != nil {
			s.tr.Record(obs.WriterNet, obs.EvFlushQueued, resp.ID, 0)
		}
		if !reply(out) {
			return
		}
		// Lockstep mode flushes one response per reply; arg 1 mirrors the
		// binary path's batch size.
		if tr, obsEg := s.tr, s.opts.ObserveEgress; tr != nil || obsEg != nil {
			now := time.Now()
			if tr != nil {
				tr.RecordAt(obs.WriterNet, obs.EvFlushed, resp.ID, 1, now)
			}
			if obsEg != nil && !resp.Done.IsZero() {
				obsEg(req.Op, now.Sub(resp.Done))
			}
		}
	}
}

// readLine returns the next newline-terminated line (EOL stripped),
// spilling lines longer than the reader's buffer into *spill. Lines
// over max are consumed to their newline and reported as errTooLong.
// A final unterminated line before EOF is returned as a line, matching
// the old bufio.Scanner behavior.
func readLine(br *bufio.Reader, spill *[]byte, max int) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err == nil {
		return trimEOL(line), nil
	}
	if err == io.EOF {
		if len(line) > 0 {
			return trimEOL(line), nil
		}
		return nil, io.EOF
	}
	if err != bufio.ErrBufferFull {
		return nil, err
	}
	buf := append((*spill)[:0], line...)
	for {
		if len(buf) > max {
			*spill = buf[:0]
			return nil, discardLine(br)
		}
		line, err = br.ReadSlice('\n')
		buf = append(buf, line...)
		if err == nil || (err == io.EOF && len(buf) > 0) {
			if len(buf) > max {
				*spill = buf[:0]
				if err == nil {
					return nil, errTooLong
				}
				return nil, err
			}
			*spill = buf
			return trimEOL(buf), nil
		}
		if err != bufio.ErrBufferFull {
			*spill = buf[:0]
			return nil, err
		}
	}
}

// discardLine consumes the rest of an oversized line and reports
// errTooLong, or the read error that cut it short.
func discardLine(br *bufio.Reader) error {
	for {
		_, err := br.ReadSlice('\n')
		if err == nil {
			return errTooLong
		}
		if err != bufio.ErrBufferFull {
			return err
		}
	}
}

func trimEOL(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}

// errUnknownOp distinguishes "not a data op" (maybe a control line)
// from a malformed data op.
var errUnknownOp = errors.New("unknown op")

type parseError string

func (e parseError) Error() string { return string(e) }

// parseText parses one data line into req without allocating: Key and
// Val alias line, which stays valid through the lockstep live.Do.
// A line may open with an SLO-class token (`@critical GET k`); the
// token sets req.Class and the rest of the line parses as usual. An
// unknown @token is a parse error, not errUnknownOp — '@' never opens
// a control verb, so the line can only be a malformed data op.
func parseText(line []byte, req *Request) error {
	op, rest := cutSpace(line)
	if len(op) > 0 && op[0] == '@' {
		switch {
		case bytes.EqualFold(op[1:], clCRITICAL):
			req.Class = live.ClassCritical
		case bytes.EqualFold(op[1:], clSHEDDABLE):
			req.Class = live.ClassSheddable
		case bytes.EqualFold(op[1:], clSTANDARD):
			req.Class = live.ClassStandard
		default:
			return parseError("unknown SLO class " + string(op))
		}
		if rest == nil {
			return parseError("class token needs a command")
		}
		op, rest = cutSpace(rest)
	}
	switch {
	case bytes.EqualFold(op, opGET):
		if len(rest) == 0 {
			return parseError("GET needs a key")
		}
		req.Op, req.Key = proto.OpGet, rest
	case bytes.EqualFold(op, opDEL):
		if len(rest) == 0 {
			return parseError("DEL needs a key")
		}
		req.Op, req.Key = proto.OpDel, rest
	case bytes.EqualFold(op, opPUT):
		key, val := cutSpace(rest)
		if len(key) == 0 || val == nil {
			return parseError("PUT needs key and value")
		}
		req.Op, req.Key, req.Val = proto.OpPut, key, val
	case bytes.EqualFold(op, opSCAN):
		req.Op = proto.OpScan
	case bytes.EqualFold(op, opSPIN):
		us, ok := parseUint(rest)
		if !ok {
			return parseError("bad SPIN duration")
		}
		req.Op, req.Key = proto.OpSpin, rest
		req.Spin = time.Duration(us) * time.Microsecond
	default:
		return errUnknownOp
	}
	return nil
}

var (
	opGET  = []byte("GET")
	opPUT  = []byte("PUT")
	opDEL  = []byte("DEL")
	opSCAN = []byte("SCAN")
	opSPIN = []byte("SPIN")

	clCRITICAL  = []byte("critical")
	clSTANDARD  = []byte("standard")
	clSHEDDABLE = []byte("sheddable")
)

// cutSpace splits b at its first space.
func cutSpace(b []byte) (head, tail []byte) {
	if i := bytes.IndexByte(b, ' '); i >= 0 {
		return b[:i], b[i+1:]
	}
	return b, nil
}

// parseUint is a no-allocation strconv.Atoi for non-negative values.
func parseUint(b []byte) (uint64, bool) {
	if len(b) == 0 || len(b) > 19 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + uint64(c-'0')
	}
	return v, true
}
