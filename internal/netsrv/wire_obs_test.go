package netsrv

import (
	"fmt"
	"math"
	"net"
	"testing"
	"time"

	"concord/internal/kv"
	"concord/internal/live"
	"concord/internal/obs"
	"concord/internal/proto"
)

// TestWireObservabilityPartition is the end-to-end check behind the
// wire-to-wire breakdown: a pipelined binary client at depth 8 drives a
// tracer-enabled server over loopback TCP, and every completed request's
// six components (ingress, handoff, queue, service, preempted, egress)
// must partition its frame-read→flushed total within 1%.
func TestWireObservabilityPartition(t *testing.T) {
	const (
		workers = 2
		reqs    = 200
		depth   = 8
	)
	tracer := obs.NewTracerSharded(workers, 1, 4096)
	store := kv.New()
	for i := 0; i < 100; i++ {
		store.Put([]byte(fmt.Sprintf("key%03d", i)), []byte("value"))
	}
	rt := live.New(&KVHandler{Store: store, ScanBatch: 64}, live.Options{
		Workers: workers,
		Shards:  1,
		Tracer:  tracer,
	})
	rt.Start()
	s := New(rt, Options{Tracer: tracer})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() {
		ln.Close()
		rt.Stop()
		s.Drain(200 * time.Millisecond)
	})

	conn := dial(t, ln)
	rr := proto.NewRespReader(conn, 0)
	// Windowed pipelining: keep `depth` requests in flight on one
	// connection the way concord-load -pipeline does.
	inflight := 0
	sent, recvd := uint64(0), 0
	for recvd < reqs {
		for inflight < depth && sent < reqs {
			sent++
			key := []byte(fmt.Sprintf("key%03d", sent%100))
			if _, err := conn.Write(proto.AppendRequest(nil, proto.OpGet, sent, key, nil)); err != nil {
				t.Fatal(err)
			}
			inflight++
		}
		r, err := rr.Next()
		if err != nil {
			t.Fatalf("response %d: %v", recvd, err)
		}
		if r.Status != proto.StValue {
			t.Fatalf("response id %d status = %d", r.ID, r.Status)
		}
		inflight--
		recvd++
	}

	// Every response read by the client was flushed first, so the
	// snapshot already holds each request's terminal EvFlushed.
	breakdowns := obs.Analyze(tracer.Snapshot())
	complete := 0
	for _, b := range breakdowns {
		if b.Partial || b.OutcomeString() != "ok" {
			continue
		}
		complete++
		if b.IngressUS <= 0 {
			t.Errorf("req %d ingress = %v µs, want > 0 (frame read must precede submit)", b.Req, b.IngressUS)
		}
		if b.EgressUS <= 0 {
			t.Errorf("req %d egress = %v µs, want > 0 (flush must follow completion)", b.Req, b.EgressUS)
		}
		total := b.TotalUS()
		if total <= 0 {
			t.Errorf("req %d total = %v µs", b.Req, total)
			continue
		}
		// The ISSUE's acceptance bound: the six components account for
		// the full wire-to-wire total within 1%.
		if gap := math.Abs(b.SumUS() - total); gap > 0.01*total {
			t.Errorf("req %d: components sum %.3f != total %.3f (gap %.3f > 1%%)",
				b.Req, b.SumUS(), total, gap)
		}
	}
	if complete != reqs {
		t.Fatalf("complete breakdowns = %d, want %d (ring too small or lifecycle dropped)", complete, reqs)
	}
}
