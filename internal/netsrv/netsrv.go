// Package netsrv is the KV server's connection layer: it speaks both
// wire protocols on top of a live.Server and owns every per-connection
// goroutine.
//
// Each accepted connection is auto-detected by its first byte. Binary
// frames open with a request magic (0xC2 v1 / 0xC4 v2, high bit set),
// text commands with an ASCII letter (or '@' for a class token), so one
// byte disambiguates and is replayed into the chosen decoder — a client
// never announces its protocol.
//
//   - Text mode (text.go) is the historical line protocol: lockstep,
//     one request in flight, served through live.Do. Responses are
//     rendered into a single reused buffer — no per-response fmt
//     allocation.
//   - Binary mode (binary.go) is pipelined: a reader goroutine decodes
//     length-prefixed frames zero-copy into pooled ref-counted buffers
//     and submits each through live.SubmitFunc; a per-connection
//     flusher coalesces completions — arriving in any order — into
//     batched single-write flushes, matching responses to requests by
//     id.
//
// Both modes reject oversized requests (frame body or text line over
// Options.MaxReq) with a single-token TOOLARGE response on a
// still-usable stream, never by silent truncation.
package netsrv

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"concord/internal/live"
	"concord/internal/obs"
	"concord/internal/proto"
	"concord/internal/trace"
)

// Options configures the connection layer.
type Options struct {
	// MaxReq bounds one request: a binary frame's body (key+value
	// bytes) or a text line. Oversized requests answer TOOLARGE
	// (StTooLarge) and the connection stays usable. Default 1 MiB.
	MaxReq int
	// WriteTimeout bounds each flush so a client that stops reading
	// cannot pin a connection goroutine forever. 0 disables.
	WriteTimeout time.Duration
	// BufSize is the pooled read-buffer size for binary connections
	// (frames larger than it, up to MaxReq, take a one-off buffer).
	// Default 4096; kept small because massive fan-in multiplies it by
	// the connection count.
	BufSize int
	// Control, when non-nil, intercepts text lines whose op the data
	// protocol does not know (STATS, TRACE, OBS ...). It reports
	// whether it handled the line; obsOn is the connection's
	// breakdown-trailer toggle. Control output is flushed by the caller.
	Control func(out io.Writer, line string, obsOn *bool) bool
	// Observe, when non-nil, receives every completed data response
	// (both modes) for per-op latency histograms.
	Observe func(op byte, resp live.Response)
	// Trailer, when non-nil, renders the |OBS breakdown trailer
	// appended to text responses while the connection has OBS ON.
	Trailer func(resp live.Response) string
	// Tracer, when non-nil, extends lifecycle tracing across the wire
	// path: requests are stamped at frame read and parse (recorded as
	// EvFrameRead/EvParsed at Submit — Request implements live.NetTimed)
	// and the flushers record EvFlushQueued/EvFlushed under the
	// obs.WriterNet ring. It must be the same tracer the live.Server
	// runs with, or the events won't merge into one stream. When nil,
	// every wire instrumentation point is a single nil-check branch.
	Tracer *obs.Tracer
	// ObserveEgress, when non-nil, receives every flushed data
	// response's egress latency (completion → bytes written to the
	// socket), for per-op histograms. Responses on broken connections
	// are never flushed and are not observed.
	ObserveEgress func(op byte, egress time.Duration)
}

func (o Options) withDefaults() Options {
	if o.MaxReq <= 0 {
		o.MaxReq = 1 << 20
	}
	if o.BufSize <= 0 {
		o.BufSize = 4096
	}
	return o
}

// NetStats is a snapshot of the connection layer's counters.
type NetStats struct {
	Conns     int64  // currently open connections
	Pipeline  int64  // binary frames submitted, response not yet flushed
	FramesIn  uint64 // binary request frames decoded
	FramesOut uint64 // binary response frames written
	Flushes   uint64 // batched response writes (FramesOut/Flushes = mean batch)
	TextLines uint64 // text-protocol lines served (data + control)
	TooLarge  uint64 // requests rejected for exceeding MaxReq
	BadFrames uint64 // frames with an unknown opcode or undecodable body
}

// Server serves both wire protocols on top of a live runtime.
type Server struct {
	rt   *live.Server
	opts Options

	// tr is Options.Tracer as a concrete field so the disabled path is
	// one nil-check branch per wire event site (same contract as
	// live.Server.tr).
	tr *obs.Tracer

	bufPool *proto.Pool
	reqPool sync.Pool

	conns     atomic.Int64
	pipeline  atomic.Int64
	framesIn  atomic.Uint64
	framesOut atomic.Uint64
	flushes   atomic.Uint64
	textLines atomic.Uint64
	tooLarge  atomic.Uint64
	badFrames atomic.Uint64
	// flushBatch is the distribution of responses per flush: depth of
	// coalescing under load (1 everywhere means no pipelining benefit).
	flushBatch trace.Histogram

	mu     sync.Mutex
	open   map[net.Conn]struct{}
	connWG sync.WaitGroup
}

// New builds a connection layer over rt.
func New(rt *live.Server, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		rt:      rt,
		opts:    opts,
		tr:      opts.Tracer,
		bufPool: proto.NewPool(opts.BufSize),
		open:    make(map[net.Conn]struct{}),
	}
	s.reqPool.New = func() any { return new(Request) }
	return s
}

// NetStats snapshots the connection-layer counters.
func (s *Server) NetStats() NetStats {
	return NetStats{
		Conns:     s.conns.Load(),
		Pipeline:  s.pipeline.Load(),
		FramesIn:  s.framesIn.Load(),
		FramesOut: s.framesOut.Load(),
		Flushes:   s.flushes.Load(),
		TextLines: s.textLines.Load(),
		TooLarge:  s.tooLarge.Load(),
		BadFrames: s.badFrames.Load(),
	}
}

// FlushBatch is the histogram of responses coalesced per flush, for
// metrics registration.
func (s *Server) FlushBatch() *trace.Histogram { return &s.flushBatch }

// Serve accepts connections until ln is closed, serving each on its
// own goroutine. It returns after the accept loop exits; in-flight
// connections are still running — bound them with Drain.
func (s *Server) Serve(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.ServeConn(conn)
		}()
	}
}

// Drain gives open connections a grace window to finish writing
// responses for requests already in flight — instead of a reset — by
// arming a read deadline, then waits for every connection goroutine.
// Call after the runtime's Stop so late requests answer STOPPED.
func (s *Server) Drain(grace time.Duration) {
	s.mu.Lock()
	for c := range s.open {
		c.SetReadDeadline(time.Now().Add(grace))
	}
	s.mu.Unlock()
	s.connWG.Wait()
}

// ServeConn serves one connection to completion and closes it. The
// first byte picks the protocol: a request magic (either frame
// version) is a binary client (text ops start with ASCII letters or
// '@'; the magics have the high bit set, so the byte is unambiguous).
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	s.mu.Lock()
	s.open[conn] = struct{}{}
	s.mu.Unlock()
	s.conns.Add(1)
	defer func() {
		s.mu.Lock()
		delete(s.open, conn)
		s.mu.Unlock()
		s.conns.Add(-1)
	}()

	var first [1]byte
	if _, err := io.ReadFull(conn, first[:]); err != nil {
		return
	}
	if proto.IsReqMagic(first[0]) {
		s.serveBinary(conn, first[:])
	} else {
		s.serveText(conn, first[:])
	}
}

func (s *Server) getReq() *Request {
	return s.reqPool.Get().(*Request)
}

// putReq recycles a request after its response has been encoded,
// dropping the frame-buffer reference it pinned.
func (s *Server) putReq(r *Request) {
	r.reset()
	s.reqPool.Put(r)
}
