// The wire-level request object shared by both protocol modes, and the
// KV handler that executes it on the live runtime. A Request is pooled:
// the binary path recycles one per frame after its response flushes,
// the text path reuses a single Request for the whole connection
// (lockstep, one in flight). Results are written into the Request
// rather than returned through live.Response.Payload, so completing a
// request allocates nothing.
package netsrv

import (
	"fmt"
	"time"

	"concord/internal/kv"
	"concord/internal/live"
	"concord/internal/proto"
)

// Request is one parsed command flowing through the runtime. Key and
// Val alias the connection's read buffer (pooled frame buffer in binary
// mode, bufio window in text mode): valid until the response is
// encoded, never after.
type Request struct {
	Op   byte   // proto.Op*
	ID   uint64 // binary request id; 0 in text mode
	Key  []byte
	Val  []byte
	Spin time.Duration // OpSpin only, decoded at ingest
	// Class is the request's SLO class, stamped from the wire (v2
	// frame class byte in binary mode, @class token in text mode);
	// ClassStandard when the client didn't declare one.
	Class live.SLOClass

	// Result, written by KVHandler.Handle (or the error mapping for
	// requests the runtime failed):
	Status byte   // proto.St*
	Out    []byte // StValue payload
	Count  uint64 // StCount payload
	errMsg string // StErr / StBadRequest detail

	// frame pins the pooled read buffer Key/Val alias in binary mode;
	// released when the response is encoded.
	frame proto.Frame

	// Wire-path observability, stamped only when the server traces
	// (Options.Tracer set); zero otherwise.
	readTS   time.Time // frame (or line) read off the socket
	parsedTS time.Time // decoded into this Request
	liveID   uint64    // runtime request id, for flush-event attribution
	doneTS   time.Time // completion timestamp (live.Response.Done)
}

// NetTimes implements live.NetTimed: the runtime records the wire
// timestamps retroactively at Submit, once the request has an id.
func (r *Request) NetTimes() (read, parsed time.Time) {
	return r.readTS, r.parsedTS
}

// reset clears the request for reuse, releasing its frame if held.
func (r *Request) reset() {
	r.frame.Release()
	*r = Request{}
}

// ServiceHint estimates the request's service time for SRPT ordering
// (live.Hinted). Point ops are a few µs of lock-bracketed map work;
// SCAN walks the whole store; SPIN declares its duration outright. The
// estimates only need the right relative order — a wrong hint reorders
// the queue but never affects correctness.
func (r *Request) ServiceHint() time.Duration {
	switch r.Op {
	case proto.OpSpin:
		return r.Spin
	case proto.OpScan:
		return 500 * time.Microsecond
	default: // GET, PUT, DEL
		return 2 * time.Microsecond
	}
}

// SLOClass hands the runtime the class the client declared on the wire
// (live.SLOClassed). Unlike the old op-derived scheduling class, the
// SLO class is the *tenant's* declaration, not a property of the
// operation: the same GET is critical from one caller and sheddable
// from another. It drives admission (critical reserve, sheddable
// shedding), the cascade queue's tier, per-class quanta, and per-class
// tail accounting.
func (r *Request) SLOClass() live.SLOClass { return r.Class }

// decodeOp validates the opcode and decodes op-specific fields (SPIN's
// duration rides in the key). It reports false for frames that can
// never execute; the stream itself is still synced.
func (r *Request) decodeOp() bool {
	switch r.Op {
	case proto.OpGet, proto.OpPut, proto.OpDel, proto.OpScan:
		return true
	case proto.OpSpin:
		us, ok := proto.DecodeSpin(r.Key)
		if !ok {
			r.errMsg = "bad SPIN duration"
			return false
		}
		r.Spin = time.Duration(us) * time.Microsecond
		return true
	default:
		r.errMsg = fmt.Sprintf("unknown op 0x%02x", r.Op)
		return false
	}
}

// appendResp encodes the binary response frame for this request.
func (r *Request) appendResp(b []byte) []byte {
	switch r.Status {
	case proto.StCount:
		return proto.AppendCountResponse(b, r.ID, r.Count)
	case proto.StErr, proto.StBadRequest:
		return proto.AppendResponse(b, r.Status, r.ID, []byte(r.errMsg))
	default:
		return proto.AppendResponse(b, r.Status, r.ID, r.Out)
	}
}

// appendText renders the text-protocol response line (without the
// trailing newline), appending to b — the text path's single reused
// response buffer (the old per-response fmt.Fprintf path allocated on
// every response; see EXPERIMENTS.md).
func (r *Request) appendText(b []byte) []byte {
	switch r.Status {
	case proto.StOK:
		return append(b, "OK"...)
	case proto.StValue:
		b = append(b, "VALUE "...)
		return append(b, r.Out...)
	case proto.StNotFound:
		return append(b, "NOTFOUND"...)
	case proto.StCount:
		b = append(b, "COUNT "...)
		return appendUint(b, r.Count)
	case proto.StErr, proto.StBadRequest:
		b = append(b, "ERR "...)
		return append(b, r.errMsg...)
	default: // DEADLINE, OVERLOADED, STOPPED, TOOLARGE — single tokens
		return append(b, proto.StatusString(r.Status)...)
	}
}

// appendUint is strconv.AppendUint without the import noise.
func appendUint(b []byte, v uint64) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// statusForErr maps a runtime failure onto the wire status the client
// branches on. The text tokens for these statuses are the protocol's
// historical single-token failures (DEADLINE, OVERLOADED, STOPPED,
// SHED). SHED is deliberately distinct from OVERLOADED: overloaded
// invites a retry after backoff, shed tells a sheddable client its
// class is being dropped by policy while the server still has room for
// protected traffic.
func statusForErr(err error) (byte, string) {
	switch {
	case err == live.ErrDeadlineExceeded:
		return proto.StDeadline, ""
	case err == live.ErrShed:
		return proto.StShed, ""
	case err == live.ErrQueueFull:
		return proto.StOverloaded, ""
	case err == live.ErrServerStopped:
		return proto.StStopped, ""
	default:
		return proto.StErr, err.Error()
	}
}

// KVHandler adapts the store to the live runtime's Handler interface,
// writing results into the pooled *Request payload.
type KVHandler struct {
	Store *kv.Store
	// ScanBatch is how many keys a SCAN visits between preemption
	// polls. Default 256.
	ScanBatch int
}

func (h *KVHandler) Setup()          {}
func (h *KVHandler) SetupWorker(int) {}

func (h *KVHandler) Handle(ctx *live.Ctx, payload any) (any, error) {
	r := payload.(*Request)
	switch r.Op {
	case proto.OpGet:
		// Point queries hold the store lock: bracket them with a
		// no-preempt section (the paper's 4-line lock counter, §3.1).
		ctx.BeginNoPreempt()
		v, ok := h.Store.Get(r.Key)
		ctx.EndNoPreempt()
		if !ok {
			r.Status = proto.StNotFound
			return nil, nil
		}
		// v is the store's internal slice: safe to hold until encode
		// because Put replaces values wholesale, never mutates in place.
		r.Status, r.Out = proto.StValue, v
	case proto.OpPut:
		ctx.BeginNoPreempt()
		h.Store.Put(r.Key, r.Val)
		ctx.EndNoPreempt()
		r.Status = proto.StOK
	case proto.OpDel:
		ctx.BeginNoPreempt()
		ok := h.Store.Delete(r.Key)
		ctx.EndNoPreempt()
		if !ok {
			r.Status = proto.StNotFound
			return nil, nil
		}
		r.Status = proto.StOK
	case proto.OpScan:
		// Range queries iterate in batches, polling for preemption
		// between batches so a database-wide scan yields cooperatively.
		batch := h.ScanBatch
		if batch <= 0 {
			batch = 256
		}
		n := uint64(0)
		cursor := []byte(nil)
		for {
			cursor = h.Store.ScanBatch(cursor, batch, func(_, _ []byte) bool {
				n++
				return true
			})
			if cursor == nil {
				r.Status, r.Count = proto.StCount, n
				return nil, nil
			}
			ctx.Poll()
		}
	case proto.OpSpin:
		ctx.Spin(r.Spin)
		r.Status = proto.StOK
	default:
		return nil, fmt.Errorf("unknown op 0x%02x", r.Op)
	}
	return nil, nil
}
