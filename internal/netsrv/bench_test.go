package netsrv

import (
	"bufio"
	"fmt"
	"io"
	"testing"

	"concord/internal/proto"
)

// The two text-mode response write paths, isolated. The old server
// built a payload string per response ("VALUE " + string(value)) and
// rendered it with fmt.Fprintf; the new path appends into one reused
// buffer per connection. Run with -benchmem: the old path pays
// allocations on every response, the new path none.

var benchVal = []byte("vvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvvv")

func BenchmarkTextWriteFprintf(b *testing.B) {
	bw := bufio.NewWriterSize(io.Discard, 1<<12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		payload := "VALUE " + string(benchVal)
		fmt.Fprintf(bw, "%s%s\n", payload, "")
	}
}

func BenchmarkTextWriteAppend(b *testing.B) {
	bw := bufio.NewWriterSize(io.Discard, 1<<12)
	r := Request{Op: proto.OpGet, Status: proto.StValue, Out: benchVal}
	var out []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out = r.appendText(out[:0])
		out = append(out, '\n')
		bw.Write(out)
	}
}
