// Binary mode: the pipelined zero-copy path. One reader goroutine
// decodes frames and submits them; one flusher goroutine coalesces
// completions into batched writes. Responses go out in completion
// order, not arrival order — the client matches them by request id.
package netsrv

import (
	"errors"
	"net"
	"sync"
	"time"

	"concord/internal/live"
	"concord/internal/obs"
	"concord/internal/proto"
)

func (s *Server) serveBinary(conn net.Conn, first []byte) {
	fr := proto.NewFrameReader(conn, s.bufPool, s.opts.MaxReq)
	fr.Prime(first)
	fl := &flusher{
		s:       s,
		conn:    conn,
		wake:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
		stopped: make(chan struct{}),
		pending: make([]*Request, 0, 64),
		spare:   make([]*Request, 0, 64),
	}
	// Bind the completion callback once: a `fl.complete` method-value
	// expression at the submit site would allocate a fresh closure per
	// request.
	fl.completeFn = fl.complete
	go fl.run()

	// The exactly-one-response invariant: every frame taken off the
	// wire joins inflight before it is submitted (or enqueued as a
	// synthetic error) and leaves only after its response is flushed.
	// When the reader stops — clean EOF, mid-frame close, desync — it
	// waits out inflight before the connection dies, so no accepted
	// request's response is ever dropped on the floor.
	for {
		f, err := fr.Next()
		if err != nil {
			var tl *proto.TooLargeError
			if errors.As(err, &tl) {
				// Oversized frame: the body was discarded and the stream
				// is still synced. Answer TOOLARGE and keep serving.
				s.tooLarge.Add(1)
				r := s.getReq()
				r.ID, r.Status = tl.ID, proto.StTooLarge
				fl.inflight.Add(1)
				fl.enqueue(r)
				continue
			}
			// EOF at a boundary, mid-frame close, desync (ErrBadMagic),
			// read error: stop reading. Mid-frame data was never a
			// request, so no response is owed for it.
			if errors.Is(err, proto.ErrBadMagic) {
				s.badFrames.Add(1)
			}
			break
		}
		s.framesIn.Add(1)
		r := s.getReq()
		r.Op, r.ID, r.Key, r.Val, r.frame = f.Op, f.ID, f.Key, f.Val, f
		if f.Class != 0 {
			if cl := live.SLOClass(f.Class); cl < live.NumClasses {
				r.Class = cl
			} else {
				// A class byte the server doesn't know is a malformed v2
				// frame, not a silent downgrade to standard: reject it so
				// the tenant's misconfiguration is visible.
				s.badFrames.Add(1)
				r.Status, r.errMsg = proto.StBadRequest, "unknown SLO class"
				fl.inflight.Add(1)
				fl.enqueue(r)
				continue
			}
		}
		if s.tr != nil {
			r.readTS = time.Now()
		}
		fl.inflight.Add(1)
		if !r.decodeOp() {
			// Unknown opcode or undecodable body: the frame was
			// length-delimited so the stream is synced; reject just this
			// request.
			s.badFrames.Add(1)
			r.Status = proto.StBadRequest
			fl.enqueue(r)
			continue
		}
		if s.tr != nil {
			r.parsedTS = time.Now()
		}
		s.pipeline.Add(1)
		s.rt.SubmitFunc(r, fl.completeFn)
	}
	fr.Close()
	fl.inflight.Wait()
	fl.stop()
}

// flusher drains one connection's completion ring: completions append
// to pending under a mutex and nudge the cap-1 wake channel; the run
// loop swaps the slice out (ping-pong with spare, so steady state
// allocates nothing), encodes the whole batch into one reused buffer,
// and writes it with a single conn.Write.
type flusher struct {
	s    *Server
	conn net.Conn

	mu      sync.Mutex
	pending []*Request
	spare   []*Request

	wake    chan struct{}
	quit    chan struct{}
	stopped chan struct{}

	// completeFn is fl.complete bound once at construction; passing the
	// method value directly would allocate per submission.
	completeFn func(live.Response)

	// inflight tracks accepted frames whose response has not flushed;
	// the reader waits on it before tearing the connection down.
	inflight sync.WaitGroup

	wbuf   []byte
	broken bool // conn write failed: keep draining, stop writing
}

// complete is the single shared live.SubmitFunc callback for the
// connection: every request carries itself back via Response.Req, so
// completion needs no per-request closure or channel. It runs on the
// completing executor and must not block; enqueue is a short critical
// section plus a non-blocking channel nudge.
func (fl *flusher) complete(resp live.Response) {
	r := resp.Req.(*Request)
	r.liveID, r.doneTS = resp.ID, resp.Done
	if resp.Err != nil {
		r.Status, r.errMsg = statusForErr(resp.Err)
		r.Out, r.Count = nil, 0
	}
	if obs := fl.s.opts.Observe; obs != nil {
		obs(r.Op, resp)
	}
	fl.s.pipeline.Add(-1)
	fl.enqueue(r)
}

func (fl *flusher) enqueue(r *Request) {
	// liveID == 0 marks synthetic responses (TOOLARGE, bad frames) that
	// never entered the runtime: no lifecycle to attribute flushes to.
	if tr := fl.s.tr; tr != nil && r.liveID != 0 {
		tr.Record(obs.WriterNet, obs.EvFlushQueued, r.liveID, 0)
	}
	fl.mu.Lock()
	fl.pending = append(fl.pending, r)
	fl.mu.Unlock()
	select {
	case fl.wake <- struct{}{}:
	default: // already signaled; the pending batch will carry this one
	}
}

func (fl *flusher) run() {
	defer close(fl.stopped)
	for {
		select {
		case <-fl.wake:
			fl.flush()
		case <-fl.quit:
			fl.flush() // final drain; empty by construction (see stop)
			return
		}
	}
}

// stop shuts the flusher down. Callers must have waited out inflight
// first, so pending is already flushed or about to be by the final
// drain.
func (fl *flusher) stop() {
	close(fl.quit)
	<-fl.stopped
}

func (fl *flusher) flush() {
	fl.mu.Lock()
	batch := fl.pending
	fl.pending = fl.spare
	fl.mu.Unlock()
	if len(batch) == 0 {
		fl.spare = batch
		return
	}
	wbuf := fl.wbuf[:0]
	for _, r := range batch {
		wbuf = r.appendResp(wbuf)
	}
	fl.wbuf = wbuf
	wrote := false
	if !fl.broken {
		if wt := fl.s.opts.WriteTimeout; wt > 0 {
			fl.conn.SetWriteDeadline(time.Now().Add(wt))
		}
		if _, err := fl.conn.Write(wbuf); err != nil {
			// The client is gone or stalled past the deadline. Responses
			// still owed have nowhere to go; keep consuming completions
			// so their buffers recycle and the reader's inflight drains.
			fl.broken = true
		} else {
			wrote = true
		}
	}
	fl.s.flushes.Add(1)
	fl.s.framesOut.Add(uint64(len(batch)))
	fl.s.flushBatch.ObserveUS(float64(len(batch)))
	if tr, obsEg := fl.s.tr, fl.s.opts.ObserveEgress; wrote && (tr != nil || obsEg != nil) {
		// One clock read covers the whole batch: every response in it
		// reached the socket in the same write.
		now := time.Now()
		for _, r := range batch {
			if r.liveID == 0 {
				continue // synthetic response: never entered the runtime
			}
			if tr != nil {
				tr.RecordAt(obs.WriterNet, obs.EvFlushed, r.liveID, int64(len(batch)), now)
			}
			if obsEg != nil && !r.doneTS.IsZero() {
				obsEg(r.Op, now.Sub(r.doneTS))
			}
		}
	}
	n := len(batch)
	for i := range batch {
		fl.s.putReq(batch[i]) // releases the frame buffer the encode drained
		batch[i] = nil
	}
	fl.spare = batch[:0]
	fl.inflight.Add(-n)
}
