package netsrv

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"concord/internal/kv"
	"concord/internal/live"
	"concord/internal/proto"
)

func newTestServer(t *testing.T, opts Options) (*Server, net.Listener) {
	t.Helper()
	store := kv.New()
	for i := 0; i < 100; i++ {
		store.Put([]byte(fmt.Sprintf("key%03d", i)), []byte("value"))
	}
	rt := live.New(&KVHandler{Store: store, ScanBatch: 64}, live.Options{
		Workers:    2,
		PinThreads: false,
	})
	rt.Start()
	s := New(rt, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() {
		ln.Close()
		rt.Stop()
		s.Drain(200 * time.Millisecond)
	})
	return s, ln
}

func dial(t *testing.T, ln net.Listener) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestTextRoundTrip(t *testing.T) {
	_, ln := newTestServer(t, Options{})
	conn := dial(t, ln)
	send := "PUT k hello world\nGET k\nget k\nDEL k\nGET k\nSCAN\nSPIN 10\nSPIN banana\nBOGUS x\nGET\n"
	if _, err := io.WriteString(conn, send); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"OK", "VALUE hello world", "VALUE hello world", "OK", "NOTFOUND",
		"COUNT 100", "OK", "ERR bad SPIN duration", "ERR unknown op", "ERR GET needs a key",
	}
	br := bufio.NewReader(conn)
	for i, w := range want {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if got := strings.TrimSuffix(line, "\n"); got != w {
			t.Fatalf("response %d = %q, want %q", i, got, w)
		}
	}
}

func TestTextTooLarge(t *testing.T) {
	s, ln := newTestServer(t, Options{MaxReq: 1024})
	conn := dial(t, ln)
	long := "PUT k " + strings.Repeat("x", 200_000)
	if _, err := io.WriteString(conn, long+"\nGET key000\n"); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	for i, w := range []string{"TOOLARGE", "VALUE value"} {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if got := strings.TrimSuffix(line, "\n"); got != w {
			t.Fatalf("response %d = %q, want %q", i, got, w)
		}
	}
	if n := s.NetStats().TooLarge; n != 1 {
		t.Fatalf("TooLarge = %d, want 1", n)
	}
}

func TestTextControl(t *testing.T) {
	_, ln := newTestServer(t, Options{
		Control: func(out io.Writer, line string, obsOn *bool) bool {
			if line == "STATS" {
				fmt.Fprintln(out, "STATS ok=1")
				return true
			}
			return false
		},
	})
	conn := dial(t, ln)
	if _, err := io.WriteString(conn, "STATS\nSTATSX\n"); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	line, _ := br.ReadString('\n')
	if line != "STATS ok=1\n" {
		t.Fatalf("control response = %q", line)
	}
	line, _ = br.ReadString('\n')
	if line != "ERR unknown op\n" {
		t.Fatalf("unhandled control = %q", line)
	}
}

// readResponses reads n binary responses, failing on duplicate ids.
func readResponses(t *testing.T, rr *proto.RespReader, n int) map[uint64]proto.Resp {
	t.Helper()
	got := make(map[uint64]proto.Resp, n)
	order := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		r, err := rr.Next()
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if _, dup := got[r.ID]; dup {
			t.Fatalf("duplicate response for id %d", r.ID)
		}
		r.Payload = append([]byte(nil), r.Payload...)
		got[r.ID] = r
		order = append(order, r.ID)
	}
	_ = order
	return got
}

// TestBinaryPipelined: many requests in flight on one connection; a
// slow SPIN submitted first must not block responses for the fast GETs
// behind it (out-of-order completion matched by id).
func TestBinaryPipelined(t *testing.T) {
	_, ln := newTestServer(t, Options{})
	conn := dial(t, ln)
	var wire []byte
	wire = proto.AppendSpinRequest(wire, 1, 50_000) // 50ms on one worker
	const gets = 32
	for i := uint64(0); i < gets; i++ {
		wire = proto.AppendRequest(wire, proto.OpGet, 100+i, []byte("key001"), nil)
	}
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	rr := proto.NewRespReader(conn, 0)
	first, err := rr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if first.ID == 1 {
		t.Fatal("slow SPIN answered before any of the pipelined GETs behind it")
	}
	got := readResponses(t, rr, gets)
	got[first.ID] = first
	for i := uint64(0); i < gets; i++ {
		r, ok := got[100+i]
		if !ok || r.Status != proto.StValue || string(r.Payload) != "value" {
			t.Fatalf("GET id %d: %+v ok=%v", 100+i, r, ok)
		}
	}
	if r, ok := got[1]; !ok || r.Status != proto.StOK {
		t.Fatalf("SPIN response: %+v ok=%v", r, ok)
	}
}

// TestBinaryOps drives each op lockstep: pipelined requests complete
// out of order, so dependent ops (PUT before its GET) must wait for
// their predecessor's response like any pipelined client would.
func TestBinaryOps(t *testing.T) {
	_, ln := newTestServer(t, Options{})
	conn := dial(t, ln)
	rr := proto.NewRespReader(conn, 0)
	do := func(op byte, id uint64, key, val []byte) proto.Resp {
		t.Helper()
		if _, err := conn.Write(proto.AppendRequest(nil, op, id, key, val)); err != nil {
			t.Fatal(err)
		}
		r, err := rr.Next()
		if err != nil || r.ID != id {
			t.Fatalf("op %s id %d: %+v, %v", proto.OpString(op), id, r, err)
		}
		return r
	}
	if r := do(proto.OpPut, 1, []byte("bk"), []byte("bv")); r.Status != proto.StOK {
		t.Fatalf("PUT: %+v", r)
	}
	if r := do(proto.OpGet, 2, []byte("bk"), nil); r.Status != proto.StValue || string(r.Payload) != "bv" {
		t.Fatalf("GET: %+v", r)
	}
	if r := do(proto.OpDel, 3, []byte("bk"), nil); r.Status != proto.StOK {
		t.Fatalf("DEL: %+v", r)
	}
	if r := do(proto.OpGet, 4, []byte("bk"), nil); r.Status != proto.StNotFound {
		t.Fatalf("GET after DEL: %+v", r)
	}
	r := do(proto.OpScan, 5, nil, nil)
	if n, ok := proto.DecodeCount(r.Payload); r.Status != proto.StCount || !ok || n != 100 {
		t.Fatalf("SCAN: %+v", r)
	}
}

// TestBinaryTornWrites drips one frame a byte at a time: the decoder
// must reassemble it across reads.
func TestBinaryTornWrites(t *testing.T) {
	_, ln := newTestServer(t, Options{})
	conn := dial(t, ln)
	wire := proto.AppendRequest(nil, proto.OpGet, 7, []byte("key002"), nil)
	for _, b := range wire {
		if _, err := conn.Write([]byte{b}); err != nil {
			t.Fatal(err)
		}
	}
	r, err := proto.NewRespReader(conn, 0).Next()
	if err != nil || r.ID != 7 || r.Status != proto.StValue {
		t.Fatalf("torn frame response: %+v, %v", r, err)
	}
}

// TestBinaryBadOpcode: a malformed opcode answers StBadRequest for that
// id; the frame was length-delimited, so the stream stays usable.
func TestBinaryBadOpcode(t *testing.T) {
	s, ln := newTestServer(t, Options{})
	conn := dial(t, ln)
	var wire []byte
	wire = proto.AppendRequest(wire, 0x7f, 21, []byte("k"), nil)
	wire = proto.AppendRequest(wire, proto.OpGet, 22, []byte("key003"), nil)
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	got := readResponses(t, proto.NewRespReader(conn, 0), 2)
	if got[21].Status != proto.StBadRequest {
		t.Fatalf("bad opcode: %+v", got[21])
	}
	if got[22].Status != proto.StValue {
		t.Fatalf("frame after bad opcode: %+v", got[22])
	}
	if n := s.NetStats().BadFrames; n != 1 {
		t.Fatalf("BadFrames = %d, want 1", n)
	}
}

// TestBinaryTooLarge: an oversized frame answers StTooLarge with its id
// and the connection keeps serving.
func TestBinaryTooLarge(t *testing.T) {
	s, ln := newTestServer(t, Options{MaxReq: 1024})
	conn := dial(t, ln)
	var wire []byte
	wire = proto.AppendRequest(wire, proto.OpPut, 31, []byte("k"), make([]byte, 4096))
	wire = proto.AppendRequest(wire, proto.OpGet, 32, []byte("key004"), nil)
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	got := readResponses(t, proto.NewRespReader(conn, 0), 2)
	if got[31].Status != proto.StTooLarge {
		t.Fatalf("oversized frame: %+v", got[31])
	}
	if got[32].Status != proto.StValue {
		t.Fatalf("frame after oversized: %+v", got[32])
	}
	if n := s.NetStats().TooLarge; n != 1 {
		t.Fatalf("TooLarge = %d, want 1", n)
	}
}

// TestMidFrameClose: a client that dies mid-frame still gets exactly
// one response for every complete frame it sent before the cut.
func TestMidFrameClose(t *testing.T) {
	_, ln := newTestServer(t, Options{})
	conn := dial(t, ln)
	const complete = 16
	var wire []byte
	for i := uint64(1); i <= complete; i++ {
		wire = proto.AppendRequest(wire, proto.OpPut, i, []byte("mk"), []byte("mv"))
	}
	partial := proto.AppendRequest(nil, proto.OpPut, 99, []byte("never"), []byte("finished"))
	wire = append(wire, partial[:len(partial)-3]...)
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()
	got := readResponses(t, proto.NewRespReader(conn, 0), complete)
	for i := uint64(1); i <= complete; i++ {
		if got[i].Status != proto.StOK {
			t.Fatalf("id %d: %+v", i, got[i])
		}
	}
	// After the owed responses, the server must close: the partial
	// frame was never a request, so no response may appear for it.
	if r, err := proto.NewRespReader(conn, 0).Next(); err != io.EOF {
		t.Fatalf("after mid-frame close: resp %+v err %v, want EOF", r, err)
	}
}

// fanInConns picks the fan-in scale: bounded by the fd budget (client
// and server ends share this process) and kept small in -short.
func fanInConns(t *testing.T) int {
	if testing.Short() {
		return 128
	}
	target := 10_000
	if raceEnabled {
		// The race detector multiplies per-goroutine cost; scale down
		// so `make race` stays tractable on small machines.
		target = 1_000
	}
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err == nil {
		if budget := (int(rl.Cur) - 512) / 2; budget < target {
			t.Logf("fd budget caps fan-in at %d conns (RLIMIT_NOFILE %d)", budget, rl.Cur)
			target = budget
		}
	}
	return target
}

// TestFanInExactlyOneResponse is the massive fan-in soak: C connections
// each pipeline a burst of requests; every request must get exactly one
// response, every connection must drain cleanly.
func TestFanInExactlyOneResponse(t *testing.T) {
	s, ln := newTestServer(t, Options{})
	conns := fanInConns(t)
	const perConn = 4
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	sem := make(chan struct{}, 256) // bound concurrent dial storms
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				errs <- fmt.Errorf("conn %d: dial: %w", c, err)
				return
			}
			defer conn.Close()
			var wire []byte
			key := []byte(fmt.Sprintf("key%03d", c%100))
			for i := uint64(0); i < perConn; i++ {
				if i%2 == 0 {
					wire = proto.AppendRequest(wire, proto.OpGet, i, key, nil)
				} else {
					wire = proto.AppendRequest(wire, proto.OpPut, i, key, []byte("v"))
				}
			}
			if _, err := conn.Write(wire); err != nil {
				errs <- fmt.Errorf("conn %d: write: %w", c, err)
				return
			}
			conn.(*net.TCPConn).CloseWrite()
			rr := proto.NewRespReader(conn, 0)
			seen := make(map[uint64]bool, perConn)
			for i := 0; i < perConn; i++ {
				r, err := rr.Next()
				if err != nil {
					errs <- fmt.Errorf("conn %d: response %d: %w", c, i, err)
					return
				}
				if seen[r.ID] {
					errs <- fmt.Errorf("conn %d: duplicate response id %d", c, r.ID)
					return
				}
				seen[r.ID] = true
				if r.Status != proto.StOK && r.Status != proto.StValue && r.Status != proto.StNotFound {
					errs <- fmt.Errorf("conn %d: id %d status %s", c, r.ID, proto.StatusString(r.Status))
					return
				}
			}
			if _, err := rr.Next(); err != io.EOF {
				errs <- fmt.Errorf("conn %d: trailing response (err %v)", c, err)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.NetStats()
	want := uint64(conns * perConn)
	if st.FramesIn != want || st.FramesOut != want {
		t.Fatalf("frames in/out = %d/%d, want %d each", st.FramesIn, st.FramesOut, want)
	}
	if st.Pipeline != 0 {
		t.Fatalf("pipeline gauge = %d after drain, want 0", st.Pipeline)
	}
	t.Logf("fan-in: %d conns × %d req, %d flushes (mean batch %.2f)",
		conns, perConn, st.Flushes, float64(st.FramesOut)/float64(st.Flushes))
}

// TestDrainAnswersStopped: requests in flight when the runtime stops
// are answered STOPPED (binary: StStopped), not dropped.
func TestDrainAnswersStopped(t *testing.T) {
	store := kv.New()
	rt := live.New(&KVHandler{Store: store}, live.Options{Workers: 1, PinThreads: false})
	rt.Start()
	s := New(rt, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Park a long spin so the stop overlaps live work, then a tail of
	// gets that may land before or after the stop takes effect. Wait
	// for the spin's acceptance before stopping — on a loaded single
	// CPU the reader goroutine may lag the client's write by
	// milliseconds, and a spin submitted after Stop is (correctly)
	// rejected, which is not the path this test exercises.
	wire := proto.AppendSpinRequest(nil, 1, 20_000)
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(5 * time.Second); rt.Stats().Submitted == 0; {
		if time.Now().After(deadline) {
			t.Fatal("spin was never submitted")
		}
		time.Sleep(time.Millisecond)
	}
	go rt.Stop()
	time.Sleep(5 * time.Millisecond)
	wire = proto.AppendRequest(nil, proto.OpGet, 2, []byte("k"), nil)
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()
	got := readResponses(t, proto.NewRespReader(conn, 0), 2)
	if got[1].Status != proto.StOK {
		t.Fatalf("spin during drain: %s", proto.StatusString(got[1].Status))
	}
	if st := got[2].Status; st != proto.StStopped && st != proto.StNotFound {
		t.Fatalf("request after stop: %s, want STOPPED (or NOTFOUND if it won the race)", proto.StatusString(st))
	}
	ln.Close()
	s.Drain(200 * time.Millisecond)
}

// TestTextClassTokens: an @class prefix parses case-insensitively in
// front of any data op, an unknown @token or a bare token is a parse
// error (not a silent downgrade), and the line after the error still
// parses — lockstep text never desyncs on a bad class.
func TestTextClassTokens(t *testing.T) {
	_, ln := newTestServer(t, Options{})
	conn := dial(t, ln)
	send := "@critical GET key000\n@SHEDDABLE get key000\n@standard PUT ck cv\n" +
		"@critical GET ck\n@premium GET key000\n@critical\nGET key000\n"
	if _, err := io.WriteString(conn, send); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"VALUE value", "VALUE value", "OK", "VALUE cv",
		"ERR unknown SLO class @premium", "ERR class token needs a command",
		"VALUE value",
	}
	br := bufio.NewReader(conn)
	for i, w := range want {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if got := strings.TrimSuffix(line, "\n"); got != w {
			t.Fatalf("response %d = %q, want %q", i, got, w)
		}
	}
}

// TestBinaryClassFrames: v2 frames with known classes serve normally
// interleaved with v1 frames; an out-of-range class byte answers
// StBadRequest for that id (a malformed v2 frame, not a downgrade to
// standard) and the length-delimited stream keeps serving.
func TestBinaryClassFrames(t *testing.T) {
	s, ln := newTestServer(t, Options{})
	conn := dial(t, ln)
	var wire []byte
	wire = proto.AppendClassRequest(wire, proto.OpGet, 1, 41, []byte("key005"), nil)
	wire = proto.AppendClassRequest(wire, proto.OpGet, 2, 42, []byte("key005"), nil)
	wire = proto.AppendRequest(wire, proto.OpGet, 43, []byte("key005"), nil)
	wire = proto.AppendClassRequest(wire, proto.OpGet, 7, 44, []byte("key005"), nil)
	wire = proto.AppendClassRequest(wire, proto.OpGet, 1, 45, []byte("key005"), nil)
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	got := readResponses(t, proto.NewRespReader(conn, 0), 5)
	for _, id := range []uint64{41, 42, 43, 45} {
		if r := got[id]; r.Status != proto.StValue || string(r.Payload) != "value" {
			t.Fatalf("classed GET id %d: %+v", id, r)
		}
	}
	if got[44].Status != proto.StBadRequest {
		t.Fatalf("unknown class byte: %+v, want StBadRequest", got[44])
	}
	if n := s.NetStats().BadFrames; n != 1 {
		t.Fatalf("BadFrames = %d, want 1", n)
	}
}

// TestBinaryShedOnWire: live.ErrShed crosses the wire as StShed. A
// one-worker runtime with a tiny ingress buffer is plugged by a long
// spin, then flooded with pipelined sheddable GETs — the overflow must
// come back SHED (not OVERLOADED), and every frame is answered.
func TestBinaryShedOnWire(t *testing.T) {
	store := kv.New()
	store.Put([]byte("k"), []byte("v"))
	rt := live.New(&KVHandler{Store: store, ScanBatch: 64}, live.Options{
		Workers:        1,
		SubmitBuffer:   4,
		ClassAdmission: true,
		PinThreads:     false,
	})
	rt.Start()
	s := New(rt, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() {
		ln.Close()
		rt.Stop()
		s.Drain(200 * time.Millisecond)
	})

	conn := dial(t, ln)
	const floods = 64
	var wire []byte
	wire = proto.AppendSpinRequest(wire, 1, 20_000) // plug the worker for 20ms
	for i := uint64(0); i < floods; i++ {
		wire = proto.AppendClassRequest(wire, proto.OpGet, byte(live.ClassSheddable), 100+i, []byte("k"), nil)
	}
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	got := readResponses(t, proto.NewRespReader(conn, 0), floods+1)
	if got[1].Status != proto.StOK {
		t.Fatalf("spin: %+v", got[1])
	}
	shed := 0
	for i := uint64(0); i < floods; i++ {
		switch r := got[100+i]; r.Status {
		case proto.StShed:
			shed++
		case proto.StValue:
		default:
			t.Fatalf("sheddable GET id %d: status %s — sheddable overflow must be SHED, never %s",
				100+i, proto.StatusString(proto.StShed), proto.StatusString(r.Status))
		}
	}
	if shed == 0 {
		t.Fatal("64 sheddable GETs through a 4-slot buffer behind a plugged worker and none were shed")
	}
}
