//go:build !race

package netsrv

// raceEnabled reports whether the race detector is compiled in; tests
// use it to scale soak sizes.
const raceEnabled = false
