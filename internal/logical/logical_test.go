package logical

import (
	"math"
	"testing"

	"concord/internal/cost"
	"concord/internal/dist"
	"concord/internal/stats"
)

func TestAllCompleteAtLowLoad(t *testing.T) {
	m := cost.Default()
	cfg := RunToCompletion(m, 4)
	mach := New(cfg, dist.NewFixed(10), dist.NewPoisson(50000), Params{Requests: 20000, Seed: 1})
	res := mach.Run()
	if res.Saturated {
		t.Fatal("saturated at 12.5% utilization")
	}
	if res.Completed != 20000 {
		t.Fatalf("completed %d of 20000", res.Completed)
	}
	if res.Point.P50 < 1 || res.Point.P50 > 1.5 {
		t.Fatalf("p50 slowdown = %v, want ≈1", res.Point.P50)
	}
}

func TestStealingBalancesLoad(t *testing.T) {
	// Round-robin steering sends requests to all queues; with skewed
	// service times, stealing must move work to idle workers: the system
	// behaves like one logical queue rather than n independent ones.
	m := cost.Default()
	cfg := RunToCompletion(m, 4)
	d := dist.Bimodal(75, 1, 25, 100) // mean 25.75µs
	mach := New(cfg, d, dist.NewPoisson(100000), Params{Requests: 30000, Seed: 3})
	res := mach.Run()
	if res.Steals == 0 {
		t.Fatal("no steals despite skewed per-queue load")
	}
	if res.Saturated {
		t.Fatal("saturated at ~64% utilization")
	}
	// Without stealing, a 1µs request stuck behind a 100µs one on its
	// home queue while other workers idle pushes the tail far higher;
	// stealing must cut it by a wide margin.
	noSteal := RunToCompletion(m, 4)
	noSteal.DisableStealing = true
	machNS := New(noSteal, d, dist.NewPoisson(100000), Params{Requests: 30000, Seed: 3})
	resNS := machNS.Run()
	if !(res.Point.P99 < resNS.Point.P99/2) {
		t.Fatalf("stealing p99 %v not well below no-stealing %v", res.Point.P99, resNS.Point.P99)
	}
	if res.Point.P999 > 3*resNS.Point.P999 {
		t.Fatalf("stealing made the far tail worse: %v vs %v", res.Point.P999, resNS.Point.P999)
	}
}

func TestCoopPreemptionImprovesTail(t *testing.T) {
	m := cost.Default()
	d := dist.Bimodal(99.5, 0.5, 0.5, 500)
	p := Params{Requests: 60000, Seed: 5, MaxQueue: 200000}
	load := 1200.0 // kRps on 8 workers: ~45% utilization

	rtc := RunAt(RunToCompletion(m, 8), d, load, p)
	coop := RunAt(CoopPreemption(m, 8, 5), d, load, p)
	if math.IsInf(coop.P999, 1) {
		t.Fatal("coop saturated at moderate load")
	}
	if coop.Preemptions <= 0 {
		t.Fatal("no preemptions under the §6 extension")
	}
	if !(coop.P999 < rtc.P999/2) {
		t.Fatalf("coop p999 %v not well below RTC %v on heavy-tailed load", coop.P999, rtc.P999)
	}
}

func TestNoDispatcherBottleneck(t *testing.T) {
	// The whole point of the logical queue (§6): with no serialized
	// dispatcher, Fixed(1µs) scales to worker capacity, past the ~4 MRps
	// wall the physical-single-queue dispatcher hits (Fig. 8a).
	m := cost.Default()
	cfg := RunToCompletion(m, 8)
	load := 6000.0 // kRps: 75% of the 8-worker capacity, > 1-dispatcher cap
	pt := RunAt(cfg, dist.NewFixed(1), load, Params{Requests: 100000, Seed: 7, MaxQueue: 200000})
	if math.IsInf(pt.P999, 1) {
		t.Fatal("logical queue saturated below worker capacity")
	}
	if pt.P999 > stats.DefaultSLOSlowdown {
		t.Fatalf("p999 = %v at 75%% utilization", pt.P999)
	}
}

func TestPreemptedStaysStealable(t *testing.T) {
	// A preempted request re-joins its owner's queue and can be stolen:
	// total completions must be exact and preemption counts sane.
	m := cost.Default()
	cfg := CoopPreemption(m, 2, 5)
	mach := New(cfg, dist.NewFixed(50), dist.NewPoisson(20000), Params{Requests: 5000, Seed: 9})
	res := mach.Run()
	if res.Completed != 5000 {
		t.Fatalf("completed %d of 5000", res.Completed)
	}
	// 50µs at q=5µs ≈ 9 preemptions each.
	if res.Point.Preemptions < 7 || res.Point.Preemptions > 10 {
		t.Fatalf("preemptions/request = %v, want ≈9", res.Point.Preemptions)
	}
}

func TestSweepShapes(t *testing.T) {
	m := cost.Default()
	d := dist.Bimodal(99.5, 0.5, 0.5, 500)
	loads := []float64{300, 900, 1500}
	c := Sweep(CoopPreemption(m, 8, 5), d, loads, Params{Requests: 30000, Seed: 11, MaxQueue: 200000})
	if len(c.Points) != 3 {
		t.Fatalf("sweep returned %d points", len(c.Points))
	}
	if c.Points[0].P999 > c.Points[2].P999 {
		t.Fatalf("p999 not increasing with load: %v", c.Points)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	m := cost.Default()
	cfg := CoopPreemption(m, 4, 5)
	a := RunAt(cfg, dist.Bimodal(50, 1, 50, 100), 100, Params{Requests: 8000, Seed: 13})
	b := RunAt(cfg, dist.Bimodal(50, 1, 50, 100), 100, Params{Requests: 8000, Seed: 13})
	if a.P999 != b.P999 || a.P50 != b.P50 {
		t.Fatal("same-seed runs differ")
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero workers did not panic")
		}
	}()
	New(Config{Workers: 0, Model: cost.Default()}, dist.NewFixed(1), dist.NewPoisson(1000), Params{})
}
