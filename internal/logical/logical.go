// Package logical simulates single-LOGICAL-queue runtimes — the
// Shenango/Caladan/ZygOS family §2 defers and §6 returns to: there is no
// dispatcher-owned central queue; requests land in per-worker queues and
// idle workers steal from busy ones, so the set of queues behaves like
// one logical queue.
//
// §6 argues Concord's mechanisms transplant onto this architecture: a
// dedicated scheduler hyperthread (Caladan already has one) monitors
// per-worker elapsed quanta and writes the preemption cache lines, and
// preempted requests re-join the *owner's* queue (there is no central
// queue to return to), where they can be stolen like any other request.
// This package implements exactly that, so the repository covers both
// halves of the paper's design space:
//
//   - RunToCompletion (Shenango-like): stealing, no preemption.
//   - CoopPreemption (the §6 Concord extension): stealing + a scheduler
//     thread driving compiler-enforced cooperation.
//
// The same cost model applies: steals cost coherence misses, the
// scheduler is a serial resource, probes inflate service time.
package logical

import (
	"math"

	"concord/internal/cost"
	"concord/internal/dist"
	"concord/internal/mech"
	"concord/internal/sim"
	"concord/internal/stats"
)

// Config describes one single-logical-queue system.
type Config struct {
	// Name labels the system in reports.
	Name string
	// Workers is the number of worker threads.
	Workers int
	// QuantumUS is the scheduling quantum; 0 disables preemption.
	QuantumUS float64
	// Mech is the preemption mechanism (§6 uses CacheLine); ignored when
	// QuantumUS == 0.
	Mech mech.Mechanism
	// Model is the CPU cost model.
	Model cost.Model
	// StealCost is the coherence cost of stealing one request from
	// another worker's queue; 0 uses 2× the model's NextRequest (a CAS
	// plus the request-line transfer, per the ZygOS measurements).
	StealCost sim.Cycles
	// DisableStealing turns off work stealing, leaving n independent
	// queues — the strawman the single-logical-queue design exists to
	// beat; used for ablation.
	DisableStealing bool
}

func (c Config) stealCost() sim.Cycles {
	if c.StealCost > 0 {
		return c.StealCost
	}
	return c.Model.NextRequest
}

// RunToCompletion returns a Shenango-like configuration: work stealing,
// no preemption.
func RunToCompletion(m cost.Model, workers int) Config {
	return Config{
		Name:    "Logical-RTC",
		Workers: workers,
		Mech:    mech.None{M: m},
		Model:   m,
	}
}

// CoopPreemption returns the §6 Concord extension: work stealing plus a
// scheduler hyperthread driving cache-line cooperative preemption.
func CoopPreemption(m cost.Model, workers int, quantumUS float64) Config {
	return Config{
		Name:      "Logical-Concord",
		Workers:   workers,
		QuantumUS: quantumUS,
		Mech:      mech.CacheLine{M: m},
		Model:     m,
	}
}

// request is one in-flight request.
type request struct {
	class         string
	serviceCycles sim.Cycles
	remainingBase sim.Cycles
	arrival       sim.Cycles
	preemptions   int
	warmup        bool
}

// worker is one worker thread with its own queue.
type worker struct {
	id    int
	queue []*request
	cur   *request

	runStart sim.Cycles
	segEnd   sim.Cycles
	signaled bool
	idle     bool
	// waking is set between an enqueue-to-idle-worker and the worker
	// actually starting, so concurrent enqueues don't double-start it.
	waking       bool
	idleSince    sim.Cycles
	totalIdle    sim.Cycles
	completionEv *sim.Event
	quantumEv    *sim.Event
	yieldEv      *sim.Event
}

// Machine simulates one run of a single-logical-queue server.
type Machine struct {
	cfg Config
	dst dist.Dist
	arr dist.Arrival
	p   Params

	eng     *sim.Engine
	rng     *sim.RNG
	workers []*worker
	// scheduler is a serial resource: quantum signals queue behind each
	// other like the dispatcher's ops do in internal/server.
	schedBusyUntil sim.Cycles
	schedBusy      sim.Cycles

	workerOv float64

	admitted, completed int
	preemptions, steals int
	arrivalsDone        bool
	watchdog            *sim.Event
	saturated           bool
	rr                  int // round-robin arrival steering

	collector *stats.Collector
}

// Params controls one run.
type Params struct {
	Requests     int
	WarmupFrac   float64
	Seed         uint64
	DrainSlackUS float64
	MaxQueue     int
}

func (p Params) withDefaults() Params {
	if p.Requests <= 0 {
		p.Requests = 100000
	}
	if p.WarmupFrac <= 0 {
		p.WarmupFrac = 0.1
	}
	if p.DrainSlackUS <= 0 {
		p.DrainSlackUS = 50000
	}
	if p.MaxQueue <= 0 {
		p.MaxQueue = 1 << 20
	}
	return p
}

// Result summarizes one run.
type Result struct {
	Point     stats.Point
	Saturated bool
	Steals    int
	Completed int
}

// New builds a machine.
func New(cfg Config, d dist.Dist, arrival dist.Arrival, p Params) *Machine {
	if cfg.Workers < 1 {
		panic("logical: need at least one worker")
	}
	p = p.withDefaults()
	m := &Machine{
		cfg:       cfg,
		dst:       d,
		arr:       arrival,
		p:         p,
		eng:       sim.NewEngine(),
		rng:       sim.NewRNG(p.Seed),
		collector: stats.NewCollector(p.Requests),
	}
	m.workers = make([]*worker, cfg.Workers)
	for i := range m.workers {
		m.workers[i] = &worker{id: i, idle: true}
	}
	if cfg.Mech != nil {
		m.workerOv = cfg.Mech.ProcOverhead()
	} else {
		m.workerOv = cfg.Model.RuntimeOverhead
	}
	return m
}

// Run executes the simulation.
func (m *Machine) Run() Result {
	m.scheduleArrival(0)
	m.eng.Run()
	span := m.eng.Now()
	if span <= 0 {
		span = 1
	}
	var idle sim.Cycles
	for _, w := range m.workers {
		idle += w.totalIdle
		if w.idle {
			idle += span - w.idleSince
		}
	}
	pt := stats.Point{
		AchievedKRps:   float64(m.completed) / (m.cfg.Model.CyclesToMicros(span) / 1000) / 1000,
		P50:            m.collector.SlowdownPercentile(50),
		P99:            m.collector.SlowdownPercentile(99),
		P999:           m.collector.SlowdownPercentile(99.9),
		Mean:           m.collector.MeanSlowdown(),
		Samples:        m.collector.Len(),
		WorkerIdle:     float64(idle) / float64(span) / float64(m.cfg.Workers),
		DispatcherBusy: float64(m.schedBusy) / float64(span),
	}
	if m.completed > 0 {
		pt.Preemptions = float64(m.preemptions) / float64(m.completed)
	}
	sat := m.saturated || m.completed < m.admitted
	if sat {
		pt.P999 = math.Inf(1)
	}
	return Result{Point: pt, Saturated: sat, Steals: m.steals, Completed: m.completed}
}

// ---------- arrivals ----------

func (m *Machine) scheduleArrival(now sim.Cycles) {
	if m.admitted >= m.p.Requests {
		m.arrivalsDone = true
		slack := m.cfg.Model.MicrosToCycles(m.p.DrainSlackUS)
		m.watchdog = m.eng.At(now+slack, func(sim.Cycles) {
			m.saturated = true
			m.eng.Stop()
		})
		return
	}
	gap := m.cfg.Model.MicrosToCycles(m.arr.NextGapUS(m.rng))
	m.eng.After(gap, func(t sim.Cycles) {
		s := m.dst.Sample(m.rng)
		sc := m.cfg.Model.MicrosToCycles(s.ServiceUS)
		if sc < 1 {
			sc = 1
		}
		req := &request{
			class: s.Class, serviceCycles: sc, remainingBase: sc, arrival: t,
			warmup: m.admitted < int(float64(m.p.Requests)*m.p.WarmupFrac),
		}
		m.admitted++
		// The networker steers the packet straight into a worker queue
		// (round-robin): no serialized dispatcher on the request path.
		w := m.workers[m.rr%len(m.workers)]
		m.rr++
		m.enqueue(w, req, t)
		m.scheduleArrival(t)
	})
}

func (m *Machine) enqueue(w *worker, req *request, now sim.Cycles) {
	w.queue = append(w.queue, req)
	if len(w.queue) > m.p.MaxQueue {
		m.saturated = true
		m.eng.Stop()
		return
	}
	if w.idle && !w.waking {
		// The owner wakes and pays the handoff coherence cost.
		w.waking = true
		m.eng.After(m.cfg.Model.NextRequest, func(t sim.Cycles) {
			w.waking = false
			m.startNext(w, t)
		})
		return
	}
	if m.cfg.DisableStealing {
		return
	}
	// Work stealing keeps the queues logically one: any idle worker
	// grabs the request after the steal handshake.
	if thief := m.idleWorker(); thief != nil {
		m.stealInto(thief, now)
	}
}

func (m *Machine) idleWorker() *worker {
	for _, w := range m.workers {
		if w.idle && !w.waking {
			return w
		}
	}
	return nil
}

// stealInto makes thief steal one request from the longest queue after
// the steal cost elapses (if work is still there by then).
func (m *Machine) stealInto(thief *worker, now sim.Cycles) {
	if !thief.idle || thief.waking {
		return
	}
	thief.idle = false // reserve the thief so one steal is in flight
	thief.totalIdle += now - thief.idleSince
	m.eng.After(m.cfg.stealCost(), func(t sim.Cycles) {
		victim := m.longestQueue()
		if victim == nil || len(victim.queue) == 0 {
			thief.idle = true
			thief.idleSince = t
			return
		}
		req := victim.queue[0]
		victim.queue = victim.queue[1:]
		m.steals++
		m.begin(thief, req, t)
	})
}

func (m *Machine) longestQueue() *worker {
	var best *worker
	for _, w := range m.workers {
		if len(w.queue) == 0 {
			continue
		}
		if best == nil || len(w.queue) > len(best.queue) {
			best = w
		}
	}
	return best
}

// ---------- execution ----------

// startNext has w take its own queue head (or steal) at time now.
func (m *Machine) startNext(w *worker, now sim.Cycles) {
	if len(w.queue) > 0 {
		req := w.queue[0]
		w.queue = w.queue[1:]
		if w.idle {
			w.idle = false
			w.totalIdle += now - w.idleSince
		}
		m.begin(w, req, now)
		return
	}
	// Own queue empty: try to steal.
	if m.cfg.DisableStealing {
		if !w.idle {
			w.idle = true
			w.idleSince = now
		}
		return
	}
	victim := m.longestQueue()
	if victim != nil {
		if !w.idle {
			w.idle = true
			w.idleSince = now
		}
		m.stealInto(w, now)
		return
	}
	if !w.idle {
		w.idle = true
		w.idleSince = now
	}
}

func (m *Machine) begin(w *worker, req *request, now sim.Cycles) {
	start := now + m.cfg.Model.ContextSwitch
	w.cur = req
	w.signaled = false
	w.runStart = start
	wall := sim.Cycles(float64(req.remainingBase) * (1 + m.workerOv))
	if wall < 1 {
		wall = 1
	}
	w.segEnd = start + wall
	w.completionEv = m.eng.At(w.segEnd, func(t sim.Cycles) {
		m.complete(w, t)
	})
	m.scheduleQuantum(w, req, start)
}

// scheduleQuantum models the scheduler hyperthread: it notices the
// elapsed quantum and writes the worker's cache line; signals serialize
// on the scheduler like dispatcher ops do.
func (m *Machine) scheduleQuantum(w *worker, req *request, start sim.Cycles) {
	if m.cfg.QuantumUS <= 0 || m.cfg.Mech == nil {
		return
	}
	q := m.cfg.Model.MicrosToCycles(m.cfg.QuantumUS)
	expiry := start + q
	if expiry >= w.segEnd {
		return
	}
	w.quantumEv = m.eng.At(expiry, func(t sim.Cycles) {
		// Serialize on the scheduler thread.
		at := t
		if m.schedBusyUntil > at {
			at = m.schedBusyUntil
		}
		cost := m.cfg.Mech.SignalCost()
		m.schedBusyUntil = at + cost
		m.schedBusy += cost
		m.eng.At(at+cost, func(ts sim.Cycles) {
			m.deliverSignal(w, req, ts)
		})
	})
}

func (m *Machine) deliverSignal(w *worker, req *request, now sim.Cycles) {
	if w.cur != req || w.signaled {
		return
	}
	w.signaled = true
	yieldAt := now + m.cfg.Mech.ObserveDelay(m.rng)
	if yieldAt >= w.segEnd {
		return
	}
	w.yieldEv = m.eng.At(yieldAt, func(t sim.Cycles) {
		m.yield(w, req, t)
	})
}

func (m *Machine) yield(w *worker, req *request, now sim.Cycles) {
	if w.cur != req {
		return
	}
	elapsed := now - w.runStart
	consumed := sim.Cycles(float64(elapsed) / (1 + m.workerOv))
	if consumed >= req.remainingBase {
		consumed = req.remainingBase - 1
	}
	if consumed < 0 {
		consumed = 0
	}
	req.remainingBase -= consumed
	req.preemptions++
	m.preemptions++
	m.eng.Cancel(w.completionEv)
	m.eng.Cancel(w.quantumEv)
	w.cur = nil
	w.signaled = false
	// The preempted request re-joins the owner's queue tail (§6: no
	// central queue to return to); it is stealable there.
	w.queue = append(w.queue, req)
	overhead := m.cfg.Mech.NotifyCost() + m.cfg.Model.ContextSwitch
	m.eng.After(overhead, func(t sim.Cycles) {
		m.startNext(w, t)
	})
}

func (m *Machine) complete(w *worker, now sim.Cycles) {
	req := w.cur
	req.remainingBase = 0
	m.eng.Cancel(w.quantumEv)
	m.eng.Cancel(w.yieldEv)
	w.cur = nil
	m.completed++
	if !req.warmup {
		m.collector.Add(stats.Sample{
			Class:    req.class,
			Slowdown: float64(now-req.arrival) / float64(req.serviceCycles),
		})
	}
	if m.arrivalsDone && m.completed == m.admitted {
		m.eng.Cancel(m.watchdog)
		m.eng.Stop()
		return
	}
	m.startNext(w, now)
}

// RunAt sweeps one load point with a Poisson arrival process.
func RunAt(cfg Config, d dist.Dist, kRps float64, p Params) stats.Point {
	mach := New(cfg, d, dist.NewPoisson(kRps*1000), p)
	res := mach.Run()
	pt := res.Point
	pt.OfferedKRps = kRps
	return pt
}

// Sweep runs a load sweep and returns the slowdown curve.
func Sweep(cfg Config, d dist.Dist, loadsKRps []float64, p Params) stats.Curve {
	c := stats.Curve{System: cfg.Name}
	for i, kRps := range loadsKRps {
		pp := p
		pp.Seed = p.Seed*1_000_003 + uint64(i) + 1
		c.Points = append(c.Points, RunAt(cfg, d, kRps, pp))
	}
	return c
}
