// Package probe models compiler instrumentation at the basic-block level
// to reproduce Table 1: the overhead and preemption timeliness of
// Concord's cache-line probes versus Compiler Interrupts' rdtsc probes
// across 24 benchmarks from Splash-2, Phoenix, and Parsec.
//
// We cannot run the original C benchmarks under LLVM passes here, so each
// benchmark is modeled as a stream of instrumented regions (§4.3: a probe
// at every function entry, loop back-edge, and around calls to
// un-instrumented code, i.e. approximately one probe per ≈200 LLVM IR
// instructions, with loop bodies unrolled up to that size). A benchmark is
// characterized by its mean region length, the region-length variability,
// and the fraction of work in unrollable loops — the three properties that
// drive both the probe overhead and the yield latency.
package probe

import (
	"math"

	"concord/internal/sim"
)

// Benchmark describes one synthetic program in the Table 1 suite.
type Benchmark struct {
	Name  string
	Suite string

	// MeanRegionNS is the average time between two consecutive probes
	// (one instrumented region) in nanoseconds of straight-line code.
	MeanRegionNS float64

	// RegionCV is the coefficient of variation of region lengths: tight
	// numeric kernels have uniform regions, irregular pointer-chasing
	// code has high variance.
	RegionCV float64

	// LoopFrac is the fraction of execution inside unrollable loops.
	// Concord's loop unrolling often *speeds these up* (Table 1 reports
	// negative overheads), partially offsetting probe cost.
	LoopFrac float64
}

// Costs parameterizes the two instrumentation schemes.
type Costs struct {
	// ConcordProbeNS is one cache-line poll (L1 hit + compare): ≈1ns.
	ConcordProbeNS float64
	// RdtscProbeNS is one rdtsc() bookkeeping probe: ≈15ns at 2GHz.
	RdtscProbeNS float64
	// UnrollSpeedup is the fractional speedup unrolling gives loop code.
	UnrollSpeedup float64
}

// DefaultCosts returns the paper's cost points at a 2 GHz clock.
func DefaultCosts() Costs {
	return Costs{
		ConcordProbeNS: 2.4,  // ≈2-cycle hit amortized with occasional misses
		RdtscProbeNS:   15.0, // ≈30 cycles
		UnrollSpeedup:  0.025,
	}
}

// Result is one Table 1 row.
type Result struct {
	Benchmark       Benchmark
	ConcordOverhead float64 // fraction of runtime added by Concord probes
	CIOverhead      float64 // fraction added by rdtsc probes
	StdDevUS        float64 // std-dev of achieved quantum around target, µs
	P99WithinSigma  float64 // achieved-quantum p99 in units of std-devs
}

// Evaluate computes one benchmark's row analytically from the region
// model; EvaluateMeasured cross-checks it by Monte-Carlo simulation.
//
// Overhead: one probe per region, so overhead = probeCost/meanRegion.
// Concord additionally gains UnrollSpeedup on the loop fraction, which
// can push its net overhead negative, as Table 1 observes.
//
// Timeliness: a preemption flag written at a uniformly random phase is
// observed at the end of the current region, so the yield delay is the
// residual region time. For region length L with E[L]=m and CV c, the
// residual's variance is driven by the length-biased distribution; we
// compute it by simulation in EvaluateMeasured and approximate it here
// with the standard renewal-theory residual moments.
func Evaluate(b Benchmark, c Costs) Result {
	m := b.MeanRegionNS
	concord := c.ConcordProbeNS/m - c.UnrollSpeedup*b.LoopFrac
	ci := c.RdtscProbeNS / m

	// Residual time R of a renewal process: E[R] = m(1+c²)/2,
	// E[R²] = E[L³]/(3m). For a lognormal region length with CV c:
	// E[L³] = m³(1+c²)³.
	cv2 := b.RegionCV * b.RegionCV
	er := m * (1 + cv2) / 2
	er2 := m * m * math.Pow(1+cv2, 3) / 3
	varR := er2 - er*er
	if varR < 0 {
		varR = 0
	}
	return Result{
		Benchmark:       b,
		ConcordOverhead: concord,
		CIOverhead:      ci,
		StdDevUS:        math.Sqrt(varR) / 1000,
	}
}

// EvaluateMeasured runs a Monte-Carlo simulation of the region stream:
// it draws region lengths, fires a 5µs quantum at a random phase, and
// measures the achieved quantum (target + residual region). It returns
// the measured overheads and timeliness statistics.
func EvaluateMeasured(b Benchmark, c Costs, trials int, rng *sim.RNG) Result {
	if trials <= 0 {
		trials = 20000
	}
	// Lognormal parameters matching mean and CV.
	cv2 := b.RegionCV * b.RegionCV
	sigma := math.Sqrt(math.Log(1 + cv2))
	mu := math.Log(b.MeanRegionNS) - sigma*sigma/2

	// The compiler bounds probe spacing (§4.3 unrolls loops and inserts
	// probes at least every ≈200 IR instructions), so region length — and
	// with it the yield delay — is capped. Irregular code (high CV)
	// tolerates longer uninstrumented stretches around external calls.
	capNS := b.MeanRegionNS * (1 + 3*b.RegionCV)

	const targetUS = 5.0
	var sum, sumsq float64
	delays := make([]float64, trials)
	for i := 0; i < trials; i++ {
		// The preemption flag lands in a region chosen length-biased
		// (longer regions are proportionally more likely to contain the
		// signal); the worker yields at the region's end, so the delay is
		// a uniform residual of that region.
		var region float64
		for {
			region = math.Exp(mu + sigma*rng.Normal(0, 1))
			if region > capNS {
				region = capNS
			}
			if rng.Float64() < region/capNS {
				break
			}
		}
		delayNS := region * rng.Float64()
		achieved := targetUS + delayNS/1000
		delays[i] = achieved
		sum += achieved
		sumsq += achieved * achieved
	}
	mean := sum / float64(trials)
	variance := sumsq/float64(trials) - mean*mean
	if variance < 0 {
		variance = 0
	}
	sd := math.Sqrt(variance)

	// p99 of the achieved quantum, in std-devs above its mean (§5.4:
	// "the 99th percentile of the achieved scheduling quanta was always
	// within 3 standard deviations").
	p99 := percentile(delays, 0.99)
	within := 0.0
	if sd > 0 {
		within = (p99 - mean) / sd
	}

	r := Evaluate(b, c)
	r.StdDevUS = sd
	r.P99WithinSigma = within
	return r
}

func percentile(v []float64, p float64) float64 {
	// Nearest-rank on a copy.
	cp := make([]float64, len(v))
	copy(cp, v)
	// insertion-free: use quickselect-ish simple sort for small n
	sortFloats(cp)
	idx := int(math.Ceil(p*float64(len(cp)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}

func sortFloats(v []float64) {
	// Heapsort: no dependencies, O(n log n) worst case.
	n := len(v)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(v, i, n)
	}
	for i := n - 1; i > 0; i-- {
		v[0], v[i] = v[i], v[0]
		siftDown(v, 0, i)
	}
}

func siftDown(v []float64, i, n int) {
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && v[l] > v[largest] {
			largest = l
		}
		if r < n && v[r] > v[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		v[i], v[largest] = v[largest], v[i]
		i = largest
	}
}

// Suite returns the 24-benchmark suite mirroring Table 1's programs.
// Region parameters are chosen per benchmark family: regular numeric
// kernels (fft, radix, blackscholes) have short uniform regions; solvers
// and irregular codes (ocean, lu, cholesky, canneal) have longer and more
// variable regions; streaming kernels sit in between.
func Suite() []Benchmark {
	return []Benchmark{
		{Name: "water-nsquared", Suite: "Splash-2", MeanRegionNS: 140, RegionCV: 1.2, LoopFrac: 0.75},
		{Name: "water-spatial", Suite: "Splash-2", MeanRegionNS: 150, RegionCV: 1.1, LoopFrac: 0.80},
		{Name: "ocean-cp", Suite: "Splash-2", MeanRegionNS: 320, RegionCV: 2.4, LoopFrac: 0.35},
		{Name: "ocean-ncp", Suite: "Splash-2", MeanRegionNS: 260, RegionCV: 2.0, LoopFrac: 0.35},
		{Name: "volrend", Suite: "Splash-2", MeanRegionNS: 120, RegionCV: 1.6, LoopFrac: 0.45},
		{Name: "fmm", Suite: "Splash-2", MeanRegionNS: 110, RegionCV: 0.8, LoopFrac: 0.55},
		{Name: "raytrace", Suite: "Splash-2", MeanRegionNS: 120, RegionCV: 0.6, LoopFrac: 0.85},
		{Name: "radix", Suite: "Splash-2", MeanRegionNS: 110, RegionCV: 1.5, LoopFrac: 0.70},
		{Name: "fft", Suite: "Splash-2", MeanRegionNS: 115, RegionCV: 1.5, LoopFrac: 0.75},
		{Name: "lu-c", Suite: "Splash-2", MeanRegionNS: 140, RegionCV: 1.4, LoopFrac: 0.20},
		{Name: "lu-nc", Suite: "Splash-2", MeanRegionNS: 160, RegionCV: 1.3, LoopFrac: 0.85},
		{Name: "cholesky", Suite: "Splash-2", MeanRegionNS: 180, RegionCV: 1.6, LoopFrac: 0.85},
		{Name: "histogram", Suite: "Phoenix", MeanRegionNS: 105, RegionCV: 1.5, LoopFrac: 0.40},
		{Name: "kmeans", Suite: "Phoenix", MeanRegionNS: 160, RegionCV: 1.7, LoopFrac: 0.62},
		{Name: "pca", Suite: "Phoenix", MeanRegionNS: 200, RegionCV: 0.7, LoopFrac: 0.90},
		{Name: "string_match", Suite: "Phoenix", MeanRegionNS: 130, RegionCV: 1.6, LoopFrac: 0.35},
		{Name: "linear_regression", Suite: "Phoenix", MeanRegionNS: 125, RegionCV: 1.5, LoopFrac: 0.15},
		{Name: "word_count", Suite: "Phoenix", MeanRegionNS: 160, RegionCV: 1.7, LoopFrac: 0.30},
		{Name: "blackscholes", Suite: "Parsec", MeanRegionNS: 175, RegionCV: 1.6, LoopFrac: 0.25},
		{Name: "fluidanimate", Suite: "Parsec", MeanRegionNS: 75, RegionCV: 0.5, LoopFrac: 0.50},
		{Name: "swapoptions", Suite: "Parsec", MeanRegionNS: 145, RegionCV: 1.5, LoopFrac: 0.30},
		{Name: "canneal", Suite: "Parsec", MeanRegionNS: 65, RegionCV: 0.3, LoopFrac: 0.40},
		{Name: "streamcluster", Suite: "Parsec", MeanRegionNS: 150, RegionCV: 0.6, LoopFrac: 0.80},
		{Name: "dedup", Suite: "Parsec", MeanRegionNS: 135, RegionCV: 1.8, LoopFrac: 0.55},
	}
}

// SuiteResults evaluates the whole suite with measured timeliness.
func SuiteResults(trials int, seed uint64) []Result {
	rng := sim.NewRNG(seed)
	bench := Suite()
	out := make([]Result, 0, len(bench))
	for _, b := range bench {
		out = append(out, EvaluateMeasured(b, DefaultCosts(), trials, rng.Split()))
	}
	return out
}

// Averages summarizes a result set: mean and max of each column, the
// paper's bottom rows.
func Averages(rs []Result) (meanConcord, meanCI, meanSD, maxConcord, maxCI, maxSD float64) {
	if len(rs) == 0 {
		return
	}
	maxConcord, maxCI, maxSD = math.Inf(-1), math.Inf(-1), math.Inf(-1)
	for _, r := range rs {
		meanConcord += r.ConcordOverhead
		meanCI += r.CIOverhead
		meanSD += r.StdDevUS
		maxConcord = math.Max(maxConcord, r.ConcordOverhead)
		maxCI = math.Max(maxCI, r.CIOverhead)
		maxSD = math.Max(maxSD, r.StdDevUS)
	}
	n := float64(len(rs))
	return meanConcord / n, meanCI / n, meanSD / n, maxConcord, maxCI, maxSD
}
