package probe

import (
	"math"
	"sort"
	"testing"

	"concord/internal/sim"
)

func TestSuiteHas24Benchmarks(t *testing.T) {
	s := Suite()
	if len(s) != 24 {
		t.Fatalf("suite has %d benchmarks, Table 1 has 24", len(s))
	}
	suites := map[string]int{}
	names := map[string]bool{}
	for _, b := range s {
		suites[b.Suite]++
		if names[b.Name] {
			t.Errorf("duplicate benchmark %q", b.Name)
		}
		names[b.Name] = true
		if b.MeanRegionNS <= 0 || b.RegionCV < 0 || b.LoopFrac < 0 || b.LoopFrac > 1 {
			t.Errorf("%s has invalid parameters: %+v", b.Name, b)
		}
	}
	if suites["Splash-2"] != 12 || suites["Phoenix"] != 6 || suites["Parsec"] != 6 {
		t.Errorf("suite composition %v, Table 1 has 12/6/6", suites)
	}
}

func TestTable1HeadlineNumbers(t *testing.T) {
	rs := SuiteResults(20000, 1)
	meanC, meanCI, meanSD, maxC, maxCI, maxSD := Averages(rs)

	// Table 1: Concord average ≈1.04%, CI average ≈13.7%; Concord is
	// ≈13× lower on average.
	if meanC < 0 || meanC > 0.03 {
		t.Errorf("Concord mean overhead = %.4f, Table 1 says ≈0.0104", meanC)
	}
	if meanCI < 0.08 || meanCI > 0.3 {
		t.Errorf("CI mean overhead = %.4f, Table 1 says ≈0.137", meanCI)
	}
	if ratio := meanCI / math.Max(meanC, 1e-6); ratio < 8 {
		t.Errorf("CI/Concord mean ratio = %.1f, Table 1 says ≈13×", ratio)
	}
	// Maximums: Concord ≈6.7%, CI ≈37%.
	if maxC > 0.08 {
		t.Errorf("Concord max overhead = %.4f, Table 1 max is 6.7%%", maxC)
	}
	if maxCI > 0.45 {
		t.Errorf("CI max overhead = %.4f, Table 1 max is 37%%", maxCI)
	}
	// Timeliness: every std-dev < 2µs, average well below 1µs.
	if maxSD >= 2 {
		t.Errorf("max quantum std-dev = %.2fµs, paper says < 2µs", maxSD)
	}
	if meanSD > 1 {
		t.Errorf("mean quantum std-dev = %.2fµs, paper reports 0.29µs", meanSD)
	}
}

func TestSomeConcordOverheadsNegative(t *testing.T) {
	// Table 1: "Concord's overhead is often negative due to its loop
	// unrolling". At least a few benchmarks must show that.
	rs := SuiteResults(5000, 2)
	neg := 0
	for _, r := range rs {
		if r.ConcordOverhead < 0 {
			neg++
		}
	}
	if neg < 3 {
		t.Errorf("only %d benchmarks show negative Concord overhead, Table 1 has several", neg)
	}
}

func TestP99WithinThreeSigma(t *testing.T) {
	// §5.4: "the 99th percentile of the achieved scheduling quanta was
	// always within 3 standard deviations".
	rs := SuiteResults(30000, 3)
	for _, r := range rs {
		if r.P99WithinSigma > 3.5 {
			t.Errorf("%s p99 at %.1fσ, paper says within 3σ", r.Benchmark.Name, r.P99WithinSigma)
		}
	}
}

func TestAnalyticMatchesMeasuredOverheads(t *testing.T) {
	c := DefaultCosts()
	rng := sim.NewRNG(4)
	for _, b := range Suite()[:6] {
		a := Evaluate(b, c)
		m := EvaluateMeasured(b, c, 20000, rng.Split())
		// Overheads are computed identically; timeliness differs
		// (renewal approximation vs Monte-Carlo) but must correlate.
		if a.ConcordOverhead != m.ConcordOverhead || a.CIOverhead != m.CIOverhead {
			t.Errorf("%s: overhead mismatch analytic vs measured", b.Name)
		}
		if a.StdDevUS <= 0 || m.StdDevUS <= 0 {
			t.Errorf("%s: non-positive std-dev", b.Name)
		}
	}
}

func TestTimelinessScalesWithRegionLength(t *testing.T) {
	c := DefaultCosts()
	rng := sim.NewRNG(5)
	small := EvaluateMeasured(Benchmark{Name: "s", MeanRegionNS: 50, RegionCV: 0.5}, c, 30000, rng.Split())
	large := EvaluateMeasured(Benchmark{Name: "l", MeanRegionNS: 2000, RegionCV: 0.5}, c, 30000, rng.Split())
	if large.StdDevUS <= small.StdDevUS {
		t.Errorf("longer regions should mean worse timeliness: %v vs %v", large.StdDevUS, small.StdDevUS)
	}
}

func TestPercentileHelper(t *testing.T) {
	v := []float64{5, 1, 4, 2, 3}
	if got := percentile(v, 0.5); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
	if got := percentile(v, 1.0); got != 5 {
		t.Errorf("p100 = %v, want 5", got)
	}
	// Input must not be mutated.
	if !sort.Float64sAreSorted([]float64{1, 2, 3, 4, 5}) {
		t.Fatal("unreachable")
	}
	if v[0] != 5 {
		t.Error("percentile mutated its input")
	}
}
