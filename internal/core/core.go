// Package core is the top-level API of the Concord reproduction: it ties
// the simulated server (internal/server), the workload catalog
// (internal/workload), and the metrics (internal/stats) into one-call
// experiments — "run these systems on this workload across these loads
// and compare their throughput at the tail-latency SLO".
//
// The package exists so that examples, benchmarks, and the CLI all drive
// experiments the same way; the figure generators in internal/figures
// are thin arrangements of the same pieces.
package core

import (
	"fmt"
	"sort"

	"concord/internal/cost"
	"concord/internal/runner"
	"concord/internal/server"
	"concord/internal/stats"
	"concord/internal/workload"
)

// Experiment describes one slowdown-vs-load comparison.
type Experiment struct {
	// Name labels the experiment in reports.
	Name string
	// Workload is the service-time distribution and lock model.
	Workload workload.Spec
	// QuantumUS is the scheduling quantum for preemptive systems.
	QuantumUS float64
	// Systems are the configurations to compare. Empty means the paper's
	// trio: Persephone-FCFS, Shinjuku, Concord.
	Systems []server.Config
	// Workers overrides the paper's 14 when positive.
	Workers int
	// LoadsKRps overrides the workload's default sweep when non-empty.
	LoadsKRps []float64
	// Params tunes run fidelity; the zero value uses sensible defaults.
	Params server.RunParams
	// SLOSlowdown is the tail target; 0 means the paper's 50×.
	SLOSlowdown float64
	// Parallel bounds concurrent simulation runs (0 = GOMAXPROCS,
	// 1 = serial). Results are identical at any setting: per-run seeds
	// derive from grid coordinates, never from execution order.
	Parallel int
}

// Result is the outcome of an experiment.
type Result struct {
	Experiment Experiment
	Curves     []stats.Curve
	// MaxLoadKRps maps system name to the highest load meeting the SLO
	// (absent if never met).
	MaxLoadKRps map[string]float64
}

// DefaultSystems returns the paper's three evaluated systems.
func DefaultSystems(m cost.Model, workers int, quantumUS float64) []server.Config {
	return []server.Config{
		server.PersephoneFCFS(m, workers),
		server.Shinjuku(m, workers, quantumUS),
		server.Concord(m, workers, quantumUS),
	}
}

// AblationSystems returns the Fig. 11 cumulative-mechanism ladder.
func AblationSystems(m cost.Model, workers int, quantumUS float64) []server.Config {
	return []server.Config{
		server.Shinjuku(m, workers, quantumUS),
		server.CoopSQ(m, workers, quantumUS),
		server.CoopJBSQ(m, workers, quantumUS),
		server.Concord(m, workers, quantumUS),
	}
}

// Run executes the experiment.
func (e Experiment) Run() Result {
	workers := e.Workers
	if workers <= 0 {
		workers = 14
	}
	systems := e.Systems
	if len(systems) == 0 {
		systems = DefaultSystems(cost.Default(), workers, e.QuantumUS)
	}
	loads := e.LoadsKRps
	if len(loads) == 0 {
		loads = e.Workload.LoadsKRps
	}
	slo := e.SLOSlowdown
	if slo <= 0 {
		slo = stats.DefaultSLOSlowdown
	}

	res := Result{Experiment: e, MaxLoadKRps: map[string]float64{}}
	res.Curves = runner.New(e.Parallel).Sweeps(systems, e.Workload.WL, loads, e.Params)
	for _, curve := range res.Curves {
		if max, ok := curve.MaxLoadUnderSLO(slo); ok {
			res.MaxLoadKRps[curve.System] = max
		}
	}
	return res
}

// Improvement returns system a's throughput gain over system b at the
// SLO (e.g. 0.52 for +52%).
func (r Result) Improvement(a, b string) (float64, error) {
	la, oka := r.MaxLoadKRps[a]
	lb, okb := r.MaxLoadKRps[b]
	if !oka || !okb {
		return 0, fmt.Errorf("core: no SLO crossing for %q (%v) or %q (%v)", a, oka, b, okb)
	}
	if lb == 0 {
		return 0, fmt.Errorf("core: baseline %q sustains zero load", b)
	}
	return la/lb - 1, nil
}

// Summary renders the per-system SLO throughput, best system first.
func (r Result) Summary() string {
	type row struct {
		name string
		load float64
	}
	var rows []row
	for _, c := range r.Curves {
		if load, ok := r.MaxLoadKRps[c.System]; ok {
			rows = append(rows, row{c.System, load})
		} else {
			rows = append(rows, row{c.System, 0})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].load > rows[j].load })
	out := fmt.Sprintf("%s (quantum %gµs):\n", r.Experiment.Name, r.Experiment.QuantumUS)
	for _, rw := range rows {
		if rw.load > 0 {
			out += fmt.Sprintf("  %-20s %8.1f kRps at SLO\n", rw.name, rw.load)
		} else {
			out += fmt.Sprintf("  %-20s never meets SLO in swept range\n", rw.name)
		}
	}
	return out
}
