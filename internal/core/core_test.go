package core

import (
	"strings"
	"testing"

	"concord/internal/cost"
	"concord/internal/server"
	"concord/internal/workload"
)

func quickExperiment() Experiment {
	return Experiment{
		Name:      "quick-ycsb",
		Workload:  workload.YCSBBimodal(),
		QuantumUS: 5,
		Workers:   8,
		LoadsKRps: []float64{20, 60, 100, 130, 160},
		Params:    server.RunParams{Requests: 15000, Seed: 3, MaxCentralQueue: 100000, DrainSlackUS: 30000},
	}
}

func TestExperimentRunDefaults(t *testing.T) {
	res := quickExperiment().Run()
	if len(res.Curves) != 3 {
		t.Fatalf("curves = %d, want 3 default systems", len(res.Curves))
	}
	names := map[string]bool{}
	for _, c := range res.Curves {
		names[c.System] = true
		if len(c.Points) != 5 {
			t.Fatalf("%s has %d points", c.System, len(c.Points))
		}
	}
	for _, want := range []string{"Persephone-FCFS", "Shinjuku", "Concord"} {
		if !names[want] {
			t.Errorf("missing system %q", want)
		}
	}
	// On a high-dispersion workload the preemptive systems must beat
	// FCFS at the SLO.
	concord, okC := res.MaxLoadKRps["Concord"]
	fcfs, okF := res.MaxLoadKRps["Persephone-FCFS"]
	if okC && okF && concord < fcfs {
		t.Errorf("Concord %v kRps below FCFS %v on high-dispersion workload", concord, fcfs)
	}
}

func TestImprovement(t *testing.T) {
	res := Result{MaxLoadKRps: map[string]float64{"a": 150, "b": 100}}
	imp, err := res.Improvement("a", "b")
	if err != nil || imp != 0.5 {
		t.Fatalf("improvement = %v, %v", imp, err)
	}
	if _, err := res.Improvement("a", "missing"); err == nil {
		t.Fatal("missing baseline did not error")
	}
}

func TestSummaryFormat(t *testing.T) {
	e := quickExperiment()
	res := e.Run()
	s := res.Summary()
	if !strings.Contains(s, e.Name) {
		t.Fatalf("summary missing name:\n%s", s)
	}
	for _, sys := range []string{"Concord", "Shinjuku", "Persephone-FCFS"} {
		if !strings.Contains(s, sys) {
			t.Fatalf("summary missing %s:\n%s", sys, s)
		}
	}
}

func TestAblationSystems(t *testing.T) {
	sys := AblationSystems(cost.Default(), 4, 5)
	if len(sys) != 4 {
		t.Fatalf("ablation ladder has %d rungs", len(sys))
	}
	want := []string{"Shinjuku", "Co-op+SQ", "Co-op+JBSQ(2)", "Concord"}
	for i, cfg := range sys {
		if cfg.Name != want[i] {
			t.Errorf("rung %d = %q, want %q", i, cfg.Name, want[i])
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s invalid: %v", cfg.Name, err)
		}
	}
}

func TestCustomSystems(t *testing.T) {
	e := quickExperiment()
	m := cost.Default()
	e.Systems = []server.Config{server.Concord(m, 8, 5), server.ConcordNoSteal(m, 8, 5)}
	res := e.Run()
	if len(res.Curves) != 2 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
}
