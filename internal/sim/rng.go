// Package sim provides a deterministic discrete-event simulation engine
// used by every simulated experiment in this repository.
//
// The engine is deliberately small: a monotonic clock measured in CPU
// cycles, a binary-heap event queue with stable FIFO ordering for
// simultaneous events, and a fast deterministic random number generator.
// All higher-level behaviour (dispatchers, workers, preemption) is built
// on top of it in internal/server.
package sim

import "math"

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256**, seeded via splitmix64. It is not safe for concurrent use;
// every simulated entity that needs randomness owns its own RNG (or a
// Split of a parent RNG) so that simulations are reproducible regardless
// of event interleaving.
type RNG struct {
	s [4]uint64
	// spare holds a cached second normal deviate from the Box-Muller
	// transform; spareOK reports whether it is valid.
	spare   float64
	spareOK bool
}

// splitmix64 advances the given state and returns the next output. It is
// used only for seeding, following the xoshiro authors' recommendation.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 hashes a sequence of 64-bit values into one well-distributed
// 64-bit value by absorbing each word through a splitmix64 round. It is
// the seed-derivation primitive for sweeps: deriving per-run seeds as
// Mix64(base, systemIndex, loadIndex) guarantees distinct, decorrelated
// streams for every cell of an experiment grid, unlike affine schemes
// (seed*K+off) that collide across sweeps sharing a base seed.
func Mix64(vs ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vs {
		s := h ^ v
		h = splitmix64(&s)
	}
	return h
}

// NewRNG returns a generator seeded from the given seed. Two RNGs created
// with the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// Guard against the theoretically possible all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a new independent generator from r. The child stream is
// decorrelated from the parent by reseeding through splitmix64.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// Exp returns an exponentially distributed value with the given mean.
// It panics if mean is negative; a zero mean returns zero.
func (r *RNG) Exp(mean float64) float64 {
	if mean < 0 {
		panic("sim: Exp called with negative mean")
	}
	if mean == 0 {
		return 0
	}
	// -ln(1-U) is Exp(1); 1-Float64() is in (0,1] so the log is finite.
	return -mean * math.Log(1-r.Float64())
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, via the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	if r.spareOK {
		r.spareOK = false
		return mean + stddev*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.spareOK = true
	return mean + stddev*u*m
}

// OneSidedNormal returns max(mean, Normal(mean, stddev)): a normal deviate
// truncated below at its mean. This models Concord's preemption delay,
// which never fires before the quantum elapses (§3.1, Fig. 5).
func (r *RNG) OneSidedNormal(mean, stddev float64) float64 {
	v := r.Normal(mean, stddev)
	if v < mean {
		return 2*mean - v // reflect: preserves the one-sided density shape
	}
	return v
}

// Lognormal returns exp(Normal(mu, sigma)).
func (r *RNG) Lognormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Pareto returns a Pareto-distributed value with scale xm and shape alpha.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("sim: Pareto requires positive scale and shape")
	}
	return xm / math.Pow(1-r.Float64(), 1/alpha)
}
