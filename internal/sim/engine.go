package sim

import (
	"container/heap"
	"fmt"
)

// Cycles is the simulation time unit: CPU clock cycles. All costs in the
// model (IPI delivery, cache misses, context switches, service times) are
// expressed in cycles so that the simulated machine's frequency is a
// single conversion constant (see internal/cost).
type Cycles int64

// Event is a scheduled callback. The callback runs when simulated time
// reaches At; it may schedule further events.
type Event struct {
	At Cycles
	Fn func(now Cycles)

	seq   uint64 // tie-break: FIFO among simultaneous events
	index int    // heap index, -1 once popped or cancelled
}

// Cancelled reports whether the event was removed from the queue before
// firing (or has already fired).
func (e *Event) Cancelled() bool { return e.index == -1 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. Events fire in
// nondecreasing time order; simultaneous events fire in scheduling order.
type Engine struct {
	now     Cycles
	queue   eventHeap
	seq     uint64
	stopped bool
	free    []*Event // recycled events when pooling is enabled
	pooling bool

	// Executed counts events fired so far, useful as a runaway guard and
	// for reporting simulator throughput.
	Executed uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// NewEngineSized returns an engine whose event queue is preallocated for
// about hint pending events, avoiding heap regrowth in steady state.
func NewEngineSized(hint int) *Engine {
	if hint < 0 {
		hint = 0
	}
	return &Engine{queue: make(eventHeap, 0, hint)}
}

// EnablePooling makes the engine recycle Event objects: an event is
// returned to a freelist as soon as it fires or is cancelled, and later
// At/After calls reuse it. This eliminates the per-event allocation in
// hot simulation loops, but callers MUST drop (or overwrite) every
// retained *Event handle once the event has fired or been cancelled —
// calling Cancel on a stale handle may cancel an unrelated reused event.
// internal/server follows that discipline; leave pooling off otherwise.
func (e *Engine) EnablePooling() { e.pooling = true }

func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &Event{}
}

func (e *Engine) release(ev *Event) {
	ev.Fn = nil
	e.free = append(e.free, ev)
}

// Now returns the current simulated time.
func (e *Engine) Now() Cycles { return e.now }

// Len returns the number of pending events.
func (e *Engine) Len() int { return len(e.queue) }

// At schedules fn to run at absolute time at. Scheduling in the past
// panics: it always indicates a model bug.
func (e *Engine) At(at Cycles, fn func(now Cycles)) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", at, e.now))
	}
	var ev *Event
	if e.pooling {
		ev = e.alloc()
		ev.At, ev.Fn, ev.seq = at, fn, e.seq
	} else {
		ev = &Event{At: at, Fn: fn, seq: e.seq}
	}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycles, fn func(now Cycles)) *Event {
	if delay < 0 {
		panic("sim: negative delay")
	}
	return e.At(e.now+delay, fn)
}

// Cancel removes a pending event from the queue. Cancelling an event that
// already fired (or was already cancelled) is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index == -1 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	if e.pooling {
		e.release(ev)
	}
}

// Stop makes Run/RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the next event, if any, and reports whether one fired.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.At
	e.Executed++
	ev.Fn(e.now)
	if e.pooling {
		e.release(ev)
	}
	return true
}

// Run fires events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil fires events with At <= deadline, then advances the clock to
// the deadline (if the queue drained or only later events remain).
func (e *Engine) RunUntil(deadline Cycles) {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 || e.queue[0].At > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline && !e.stopped {
		e.now = deadline
	}
}
