package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineFiresInOrder(t *testing.T) {
	e := NewEngine()
	var fired []Cycles
	for _, at := range []Cycles{50, 10, 30, 10, 20} {
		at := at
		e.At(at, func(now Cycles) {
			if now != at {
				t.Errorf("event scheduled at %d fired at %d", at, now)
			}
			fired = append(fired, now)
		})
	}
	e.Run()
	want := []Cycles{10, 10, 20, 30, 50}
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Errorf("fired[%d] = %d, want %d", i, fired[i], want[i])
		}
	}
}

func TestEngineSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func(Cycles) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events fired out of scheduling order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var count int
	var step func(Cycles)
	step = func(now Cycles) {
		count++
		if count < 100 {
			e.After(7, step)
		}
	}
	e.After(0, step)
	e.Run()
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if e.Now() != 99*7 {
		t.Fatalf("clock = %d, want %d", e.Now(), 99*7)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func(Cycles) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(50, func(Cycles) {})
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func(Cycles) { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double-cancel is a no-op
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after cancel")
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var fired []int
	var events []*Event
	for i := 0; i < 20; i++ {
		i := i
		events = append(events, e.At(Cycles(i*10), func(Cycles) { fired = append(fired, i) }))
	}
	// Cancel every third event.
	for i := 0; i < 20; i += 3 {
		e.Cancel(events[i])
	}
	e.Run()
	for _, v := range fired {
		if v%3 == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if len(fired) != 13 {
		t.Fatalf("fired %d events, want 13", len(fired))
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.At(Cycles(i), func(Cycles) {
			count++
			if count == 5 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5 after Stop", count)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Cycles(i*10), func(Cycles) { count++ })
	}
	e.RunUntil(55)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 55 {
		t.Fatalf("clock = %d, want 55", e.Now())
	}
	e.RunUntil(1000)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

// Property: any batch of scheduled times fires in sorted order.
func TestEngineOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Cycles
		for _, d := range delays {
			e.At(Cycles(d), func(now Cycles) { fired = append(fired, now) })
		}
		e.Run()
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed RNGs agree on %d of 1000 outputs", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	prop := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for n := 1; n < 50; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(10)
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.2 {
		t.Fatalf("Exp(10) sample mean = %v, want ~10", mean)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(5, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("Normal mean = %v, want ~5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("Normal stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestRNGOneSidedNormal(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 100000; i++ {
		if v := r.OneSidedNormal(5, 2); v < 5 {
			t.Fatalf("OneSidedNormal(5,2) = %v below mean", v)
		}
	}
}

func TestRNGParetoRange(t *testing.T) {
	r := NewRNG(19)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(1.5, 2); v < 1.5 {
			t.Fatalf("Pareto(1.5,2) = %v below scale", v)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(23)
	child := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("parent and split child agree on %d of 1000 outputs", same)
	}
}

func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine()
	var step func(Cycles)
	n := 0
	step = func(Cycles) {
		n++
		if n < b.N {
			e.After(3, step)
		}
	}
	b.ResetTimer()
	e.After(0, step)
	e.Run()
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}
