// Package cost defines the CPU cost model underlying every simulated
// experiment: the per-event cycle costs of preemption notifications,
// cache-coherence misses, context switches, and dispatcher operations.
//
// All constants come from the Concord paper (SOSP 2023) §2–§3 or the
// measurements it cites:
//
//   - receiving a posted IPI in Shinjuku: ≈1200 cycles (§2.2.1)
//   - Linux IPIs: ≈2× Shinjuku's posted IPIs (§2.2.1)
//   - an rdtsc() call: ≈30 cycles (§2.2.1)
//   - a cache-line probe that hits L1 plus a compare: ≈2 cycles (§3.1)
//   - the final probe's Read-after-Write coherence miss: ≈150 cycles (§3.1)
//   - two coherence misses on the dispatcher→worker handoff: ≈400 cycles
//     total (§2.2.2, citing David et al. SOSP'13)
//   - cooperative user-level context switch: ≈100ns (§3.1)
//   - Intel user-space interrupts (UIPI): chosen so that Concord's
//     notification is ≈2× cheaper (§5.6)
//
// Times are expressed in CPU cycles (sim.Cycles). Model converts between
// cycles and wall-clock using its Frequency.
package cost

import (
	"concord/internal/sim"
)

// Model holds every tunable cost in the simulated machine. The zero value
// is not useful; start from Default() (the paper's c6420 testbed) or
// SapphireRapids() (§5.6) and override fields as needed.
type Model struct {
	// FrequencyGHz is the clock rate used to convert cycles to time.
	// The paper's testbed runs at 2.6 GHz; its arithmetic examples use
	// 2 GHz ("assuming a 2GHz clock", §2.2.1).
	FrequencyGHz float64

	// IPIReceive is the cost, borne by the worker, of receiving a posted
	// inter-processor interrupt (Shinjuku's mechanism).
	IPIReceive sim.Cycles

	// LinuxIPIReceive is the cost of a standard Linux IPI (≈2× posted).
	LinuxIPIReceive sim.Cycles

	// UIPIReceive is the cost of receiving an Intel user-space interrupt.
	UIPIReceive sim.Cycles

	// IPISend is the dispatcher-side cost of posting an IPI (writing the
	// posted-interrupt descriptor and the doorbell).
	IPISend sim.Cycles

	// Rdtsc is the cost of one rdtsc() bookkeeping probe.
	Rdtsc sim.Cycles

	// ProbeHit is the cost of one Concord cache-line probe when the line
	// is already in the worker's L1 (the common case): a load plus a
	// compare.
	ProbeHit sim.Cycles

	// ProbeMiss is the cost of the final Concord probe: a Read-after-Write
	// coherence miss on the line the dispatcher just wrote.
	ProbeMiss sim.Cycles

	// CacheLineWrite is the dispatcher-side cost of writing a preemption
	// flag into a remote worker's cache line (Read-for-ownership).
	CacheLineWrite sim.Cycles

	// ContextSwitch is the cost of a cooperative user-level context
	// switch (save registers + stack swap), ≈100ns.
	ContextSwitch sim.Cycles

	// NextRequest is c_next: the coherence cost of the synchronous
	// worker→dispatcher→worker handoff in a single-queue system: at
	// minimum a Read-after-Write miss (dispatcher reads the worker's
	// "done" flag) plus a Write-after-Read miss (dispatcher writes the
	// worker's request slot), ≈400 cycles total.
	NextRequest sim.Cycles

	// JBSQLocalPop is the cost for a worker to pop the next request from
	// its own bounded queue (data already local or prefetched): a handful
	// of cycles, plus starting the quantum timer which in JBSQ must be
	// done by the worker itself (§3.2).
	JBSQLocalPop sim.Cycles

	// ArrivalCost is the dispatcher-side cost of accepting one incoming
	// request from the networker and enqueueing it on the central queue.
	ArrivalCost sim.Cycles

	// DispatchBase is the dispatcher-side cost of dispatching one request
	// in single-queue mode (poll flags, pick request, write line).
	DispatchBase sim.Cycles

	// RequeueCost is the dispatcher-side cost of re-placing a preempted
	// request on the central queue.
	RequeueCost sim.Cycles

	// SlotFreeCost is the dispatcher-side cost of noticing that a worker
	// finished a request (polling the worker's flag / occupancy counter).
	SlotFreeCost sim.Cycles

	// DispatcherSlice is how long the work-conserving dispatcher runs
	// application code before its rdtsc self-preemption probes make it
	// check for pending dispatcher work (§3.3).
	DispatcherSlice sim.Cycles

	// DispatchJBSQExtra is the extra dispatcher cost per request for
	// computing the shortest per-worker queue under JBSQ (the source of
	// Concord's ≈2% deficit in Fig. 8 left).
	DispatchJBSQExtra sim.Cycles

	// NetworkRTT is the client↔server round-trip added to end-to-end
	// latency (the testbed measures ≈10µs).
	NetworkRTT sim.Cycles

	// InstrOverheadConcord is c_proc for Concord's instrumentation as a
	// fraction of service time (≈1% on average, Table 1). Negative values
	// are possible in reality (loop unrolling can speed code up) but the
	// model uses the average.
	InstrOverheadConcord float64

	// InstrOverheadRdtsc is c_proc for rdtsc-based Compiler Interrupts
	// instrumentation (≈21% in Fig. 2; Table 1 averages 13.7%).
	InstrOverheadRdtsc float64

	// RuntimeOverhead is the baseline runtime tax (logging, accounting)
	// charged on every system as a fraction of service time.
	RuntimeOverhead float64

	// ProbeSpacingCycles is the average gap between consecutive
	// instrumentation probes (≈200 LLVM IR instructions ≈ 50-100ns of
	// straight-line code). It bounds how stale a preemption flag can be
	// observed, i.e. Concord's preemption-delay granularity.
	ProbeSpacingCycles sim.Cycles

	// PreemptCacheReload is the extra work (cold-cache refill) a request
	// pays when it resumes after a preemption. The paper does not
	// isolate this cost and the default model leaves it at 0; the
	// cache-reload ablation shows its effect on low-dispersion workloads
	// (it is why real FCFS systems keep a small edge on TPCC).
	PreemptCacheReload sim.Cycles

	// PreemptDelayStdDev is the standard deviation (in cycles) of
	// Concord's one-sided preemption lateness, measured ≈0.29µs on
	// average and < 2µs worst case across 24 benchmarks (Table 1). The
	// delay distribution is a one-sided normal per Fig. 5.
	PreemptDelayStdDev sim.Cycles
}

// Default returns the cost model of the paper's evaluation testbed
// (Cloudlab c6420, Xeon Gold 6142 @ 2.6 GHz).
func Default() Model {
	const ghz = 2.0 // the paper's arithmetic ("assuming a 2GHz clock")
	return Model{
		FrequencyGHz:         ghz,
		IPIReceive:           1200,
		LinuxIPIReceive:      2400,
		UIPIReceive:          300,
		IPISend:              700,
		Rdtsc:                30,
		ProbeHit:             2,
		ProbeMiss:            150,
		CacheLineWrite:       100,
		ContextSwitch:        sim.Cycles(100 * ghz), // ≈100ns
		NextRequest:          400,
		JBSQLocalPop:         30,
		ArrivalCost:          230,
		DispatchBase:         250,
		RequeueCost:          60,
		SlotFreeCost:         25,
		DispatchJBSQExtra:    25,
		DispatcherSlice:      sim.Cycles(1000 * ghz),   // 1µs self-check interval
		NetworkRTT:           sim.Cycles(10_000 * ghz), // 10µs
		InstrOverheadConcord: 0.0104,                   // Table 1 average
		InstrOverheadRdtsc:   0.21,                     // Fig. 2
		RuntimeOverhead:      0.005,
		ProbeSpacingCycles:   sim.Cycles(100 * ghz), // ≈100ns between probes
		PreemptDelayStdDev:   sim.Cycles(290 * ghz), // 0.29µs (Table 1 avg)
	}
}

// Ideal returns a frictionless machine: every mechanism cost is zero and
// instrumentation is free. It turns the server into a pure queueing
// simulator, which is what the paper's Fig. 5 sensitivity study uses.
func Ideal() Model {
	const ghz = 2.0
	return Model{
		FrequencyGHz:    ghz,
		DispatcherSlice: sim.Cycles(1000 * ghz),
	}
}

// SapphireRapids returns the §5.6 future-proofing configuration: a
// 192-core Sapphire Rapids server where coherence misses are ≈1.5× more
// expensive and user-space interrupts are available.
func SapphireRapids() Model {
	m := Default()
	m.ProbeMiss = sim.Cycles(float64(m.ProbeMiss) * 1.5)
	m.CacheLineWrite = sim.Cycles(float64(m.CacheLineWrite) * 1.5)
	m.NextRequest = sim.Cycles(float64(m.NextRequest) * 1.5)
	// UIPI receive cost calibrated so compiler-enforced cooperation shows
	// ≈2× lower overhead (Fig. 15): Concord pays ProbeMiss ≈ 225 cycles
	// at yield; UIPI delivery costs ≈2× that.
	m.UIPIReceive = 450
	return m
}

// MicrosToCycles converts microseconds to cycles under the model's clock.
func (m Model) MicrosToCycles(us float64) sim.Cycles {
	return sim.Cycles(us * 1000 * m.FrequencyGHz)
}

// NanosToCycles converts nanoseconds to cycles under the model's clock.
func (m Model) NanosToCycles(ns float64) sim.Cycles {
	return sim.Cycles(ns * m.FrequencyGHz)
}

// CyclesToMicros converts cycles to microseconds under the model's clock.
func (m Model) CyclesToMicros(c sim.Cycles) float64 {
	return float64(c) / (1000 * m.FrequencyGHz)
}

// CyclesToNanos converts cycles to nanoseconds under the model's clock.
func (m Model) CyclesToNanos(c sim.Cycles) float64 {
	return float64(c) / m.FrequencyGHz
}
