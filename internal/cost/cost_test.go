package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultMatchesPaperConstants(t *testing.T) {
	m := Default()
	if m.IPIReceive != 1200 {
		t.Errorf("IPIReceive = %d, paper says ≈1200", m.IPIReceive)
	}
	if m.LinuxIPIReceive != 2*m.IPIReceive {
		t.Errorf("LinuxIPIReceive = %d, paper says 2× posted IPI", m.LinuxIPIReceive)
	}
	if m.Rdtsc != 30 {
		t.Errorf("Rdtsc = %d, paper says ≈30", m.Rdtsc)
	}
	if m.ProbeHit != 2 {
		t.Errorf("ProbeHit = %d, paper says ≈2", m.ProbeHit)
	}
	if m.ProbeMiss != 150 {
		t.Errorf("ProbeMiss = %d, paper says ≈150", m.ProbeMiss)
	}
	if m.NextRequest != 400 {
		t.Errorf("NextRequest = %d, paper says ≈400", m.NextRequest)
	}
	// §3.1: cnotif is 1/8th the cost of a Shinjuku IPI.
	if m.IPIReceive/m.ProbeMiss != 8 {
		t.Errorf("IPI/ProbeMiss ratio = %d, paper says 8", m.IPIReceive/m.ProbeMiss)
	}
}

func TestConversionsRoundTrip(t *testing.T) {
	m := Default()
	prop := func(usInt uint16) bool {
		us := float64(usInt)
		c := m.MicrosToCycles(us)
		back := m.CyclesToMicros(c)
		return math.Abs(back-us) < 0.001
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConversionConsistency(t *testing.T) {
	m := Default()
	if got := m.MicrosToCycles(1); got != m.NanosToCycles(1000) {
		t.Errorf("1µs = %d cycles but 1000ns = %d cycles", got, m.NanosToCycles(1000))
	}
	if m.MicrosToCycles(5) != 10000 {
		t.Errorf("5µs at 2GHz = %d cycles, want 10000", m.MicrosToCycles(5))
	}
	if ns := m.CyclesToNanos(m.ContextSwitch); math.Abs(ns-100) > 1 {
		t.Errorf("context switch = %vns, paper says ≈100ns", ns)
	}
}

func TestSapphireRapidsScaling(t *testing.T) {
	base, spr := Default(), SapphireRapids()
	if spr.ProbeMiss <= base.ProbeMiss {
		t.Error("Sapphire Rapids coherence miss should be more expensive")
	}
	ratio := float64(spr.ProbeMiss) / float64(base.ProbeMiss)
	if math.Abs(ratio-1.5) > 0.01 {
		t.Errorf("SPR coherence scaling = %v, paper says ≈1.5×", ratio)
	}
	// §5.6: UIPI delivery ≈2× Concord's notification cost on SPR.
	uipiRatio := float64(spr.UIPIReceive) / float64(spr.ProbeMiss)
	if math.Abs(uipiRatio-2) > 0.1 {
		t.Errorf("UIPI/ProbeMiss on SPR = %v, want ≈2", uipiRatio)
	}
}

func TestInstrumentationOverheadOrdering(t *testing.T) {
	m := Default()
	// Table 1: Concord ≈1%, Compiler Interrupts ≈13-21%.
	if m.InstrOverheadConcord >= m.InstrOverheadRdtsc {
		t.Error("Concord instrumentation must be cheaper than rdtsc instrumentation")
	}
	if r := m.InstrOverheadRdtsc / m.InstrOverheadConcord; r < 10 {
		t.Errorf("rdtsc/Concord overhead ratio = %v, paper says ≈13-20×", r)
	}
}
