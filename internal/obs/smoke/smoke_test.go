//go:build obssmoke

package smoke

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestObsSmoke is the `make obs-smoke` CI job: a full out-of-process
// round trip through the observability surface.
func TestObsSmoke(t *testing.T) {
	dir := t.TempDir()
	kvd := filepath.Join(dir, "concord-kvd")
	load := filepath.Join(dir, "concord-load")
	for bin, pkg := range map[string]string{kvd: "concord/cmd/concord-kvd", load: "concord/cmd/concord-load"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	traceJSON := filepath.Join(dir, "trace.json")
	decJSON := filepath.Join(dir, "decisions.json")
	shadowJSON := filepath.Join(dir, "shadow.json")
	srv := exec.Command(kvd,
		"-addr", "127.0.0.1:0", "-obs", "127.0.0.1:0",
		"-workers", "2", "-quantum", "200us", "-keys", "2000", "-drain", "2s",
		"-adaptive", "-tracedump", traceJSON, "-decisiondump", decJSON,
		"-shadow", "-shadow-interval", "500ms", "-shadow-rate", "4",
		"-shadowdump", shadowJSON)
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- srv.Wait() }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			srv.Process.Kill()
			t.Error("server did not drain after SIGTERM")
			return
		}
		// The drain wrote the Chrome trace; it must be JSON Perfetto
		// accepts: an object with a non-empty traceEvents array.
		raw, err := os.ReadFile(traceJSON)
		if err != nil {
			t.Errorf("tracedump missing: %v", err)
			return
		}
		var doc struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Errorf("tracedump is not valid JSON: %v", err)
			return
		}
		if len(doc.TraceEvents) < 10 {
			t.Errorf("tracedump has only %d events", len(doc.TraceEvents))
		}
		// The drain also wrote the adaptive controller's decision log;
		// it must parse and carry at least one tick from the run.
		decRaw, err := os.ReadFile(decJSON)
		if err != nil {
			t.Errorf("decisiondump missing: %v", err)
			return
		}
		var dump struct {
			Schema     int     `json:"schema"`
			IntervalMS float64 `json:"interval_ms"`
			Decisions  []struct {
				Tick   uint64 `json:"tick"`
				Action string `json:"action"`
				Policy string `json:"policy"`
			} `json:"decisions"`
		}
		if err := json.Unmarshal(decRaw, &dump); err != nil {
			t.Errorf("decisiondump is not valid JSON: %v\n%s", err, decRaw)
			return
		}
		if dump.Schema != 1 || dump.IntervalMS <= 0 {
			t.Errorf("decisiondump header = schema %d interval %v", dump.Schema, dump.IntervalMS)
		}
		if len(dump.Decisions) == 0 {
			t.Error("decisiondump recorded no controller ticks")
		}
		for _, d := range dump.Decisions {
			if d.Tick == 0 || d.Action == "" || d.Policy == "" {
				t.Errorf("decisiondump entry incomplete: %+v", d)
				break
			}
		}
		// And the shadow replayer's window history: schema 1 with at
		// least one scored window whose counterfactuals all replayed.
		shadowRaw, err := os.ReadFile(shadowJSON)
		if err != nil {
			t.Errorf("shadowdump missing: %v", err)
			return
		}
		var shdump struct {
			Schema   int      `json:"schema"`
			Policies []string `json:"policies"`
			Rate     int      `json:"capture_rate"`
			Windows  uint64   `json:"windows"`
			Results  []struct {
				Recs          int     `json:"recs"`
				AchievedP99US float64 `json:"achieved_p99_us"`
				Policies      []struct {
					Policy string `json:"policy"`
				} `json:"policies"`
				Best string `json:"best"`
			} `json:"results"`
		}
		if err := json.Unmarshal(shadowRaw, &shdump); err != nil {
			t.Errorf("shadowdump is not valid JSON: %v\n%s", err, shadowRaw)
			return
		}
		if shdump.Schema != 1 || shdump.Rate != 4 || len(shdump.Policies) != 3 {
			t.Errorf("shadowdump header = schema %d rate %d policies %v", shdump.Schema, shdump.Rate, shdump.Policies)
		}
		if shdump.Windows == 0 || len(shdump.Results) == 0 {
			t.Errorf("shadowdump scored no windows: %+v", shdump)
			return
		}
		for _, r := range shdump.Results {
			if r.Recs < 2 || r.AchievedP99US <= 0 || len(r.Policies) != 3 {
				t.Errorf("shadowdump window incomplete: %+v", r)
				break
			}
		}
	}()

	// The server logs its chosen addresses; -addr/-obs use port 0.
	kvAddr, obsAddr := parseAddrs(t, stderr)
	t.Logf("kv on %s, obs on %s", kvAddr, obsAddr)

	// Drive some traffic with breakdowns enabled; the report must show
	// the per-component table.
	loadOut, err := exec.Command(load,
		"-addr", kvAddr, "-rate", "2000", "-duration", "2s",
		"-conns", "8", "-mix", "get", "-keys", "2000", "-breakdown").CombinedOutput()
	if err != nil {
		t.Fatalf("concord-load: %v\n%s", err, loadOut)
	}
	for _, want := range []string{
		"component breakdown", "queueing", "service", "p99.9",
		"ingress", "egress", "client-vs-server latency gap",
	} {
		if !strings.Contains(string(loadOut), want) {
			t.Fatalf("load report missing %q:\n%s", want, loadOut)
		}
	}

	// A pipelined binary phase exercises the frame decoder and the
	// batched flusher — the paths the net-phase tracing instruments.
	binOut, err := exec.Command(load,
		"-addr", kvAddr, "-rate", "2000", "-duration", "2s",
		"-conns", "4", "-proto", "binary", "-pipeline", "8",
		"-mix", "get", "-keys", "2000").CombinedOutput()
	if err != nil {
		t.Fatalf("concord-load binary: %v\n%s", err, binOut)
	}
	if !strings.Contains(string(binOut), "p99.9") {
		t.Fatalf("binary load report missing latency table:\n%s", binOut)
	}

	// Scrape the metrics endpoint.
	body := httpGet(t, "http://"+obsAddr+"/metrics")
	for _, want := range []string{
		"concord_submitted_total", "concord_completed_total",
		"concord_queue_depth", "concord_worker_occupancy",
		`concord_request_us_bucket{op="get",component="service",le="`,
		`concord_request_us_bucket{op="get",component="ingress",le="`,
		`concord_request_us_bucket{op="get",component="egress",le="`,
		"_sum", "_count",
		// Runtime health surface and build identity.
		"concord_go_goroutines", "concord_go_heap_live_bytes",
		"concord_go_gc_cycles_total", `concord_go_gc_pause_us{quantile="0.99"}`,
		"concord_build_info",
		// Flush-batch distribution and control-plane decision counters.
		`concord_net_flush_batch_quantile{quantile="p99"}`,
		`concord_adapt_decisions_total{action="hold"}`,
		// Per-class service-time sketches and hint-error histograms.
		`concord_svc_time_us{class="short",quantile="p99"}`,
		`concord_svc_time_samples_total{class="short"}`,
		`concord_hint_error_bucket{class="short",le="`,
		// Shadow-replay regret surface.
		`concord_regret_p99_ratio{policy="srpt_oracle"}`,
		`concord_regret_best_policy{policy="fcfs"}`,
		"concord_regret_ratio", "concord_regret_windows_total",
		`concord_shadow_captures_total{result="kept"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q; got:\n%.2000s", want, body)
		}
	}
	// pprof must be mounted on the same listener.
	if pprof := httpGet(t, "http://"+obsAddr+"/debug/pprof/cmdline"); !strings.Contains(pprof, "concord-kvd") {
		t.Fatalf("pprof cmdline = %q", pprof)
	}
	// Readiness: the server is serving, so /healthz answers ok.
	if hz := httpGet(t, "http://"+obsAddr+"/healthz"); strings.TrimSpace(hz) != "ok" {
		t.Fatalf("/healthz = %q, want ok", hz)
	}

	// Text protocol: STATS depths, OBS trailers, and TRACE timelines.
	conn, err := net.Dial("tcp", kvAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rw := bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn))
	ask := func(req string) string {
		fmt.Fprintf(rw, "%s\n", req)
		rw.Flush()
		resp, err := rw.ReadString('\n')
		if err != nil {
			t.Fatalf("%s: %v", req, err)
		}
		return strings.TrimSpace(resp)
	}
	if got := ask("STATS"); !strings.Contains(got, "central=") || !strings.Contains(got, "occ=") {
		t.Fatalf("STATS missing live depths: %q", got)
	}
	if got := ask("OBS ON"); got != "OK" {
		t.Fatalf("OBS ON = %q", got)
	}
	got := ask("GET key00000001")
	cut := strings.Index(got, "|OBS ")
	if cut < 0 {
		t.Fatalf("breakdown trailer missing: %q", got)
	}
	var h, q, s, p, in, eg float64
	var n, d int
	if _, err := fmt.Sscanf(got[cut:], "|OBS h=%f q=%f s=%f p=%f i=%f e=%f n=%d d=%d",
		&h, &q, &s, &p, &in, &eg, &n, &d); err != nil {
		t.Fatalf("trailer did not parse: %q: %v", got, err)
	}
	// The net phases must be live, not zero-stubbed: the frame was read
	// off a real socket and the response accrued egress before render.
	if in <= 0 || eg <= 0 {
		t.Fatalf("net-phase trailer values must be non-zero: i=%v e=%v in %q", in, eg, got)
	}
	fmt.Fprintf(rw, "TRACE 5\n")
	rw.Flush()
	var traceLines []string
	for {
		line, err := rw.ReadString('\n')
		if err != nil {
			t.Fatalf("TRACE read: %v", err)
		}
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "END") {
			traceLines = append(traceLines, line)
			break
		}
		traceLines = append(traceLines, line)
	}
	joined := strings.Join(traceLines, "\n")
	for _, want := range []string{"REQ ", "total=", "submit", "complete", "END"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("TRACE output missing %q:\n%s", want, joined)
		}
	}

	// DECISIONS streams the controller's recent ticks the same way.
	fmt.Fprintf(rw, "DECISIONS 5\n")
	rw.Flush()
	var decLines []string
	for {
		line, err := rw.ReadString('\n')
		if err != nil {
			t.Fatalf("DECISIONS read: %v", err)
		}
		line = strings.TrimSpace(line)
		decLines = append(decLines, line)
		if strings.HasPrefix(line, "END") {
			break
		}
	}
	decJoined := strings.Join(decLines, "\n")
	for _, want := range []string{"tick=", "action=", "policy=", "quantum_us=", "END"} {
		if !strings.Contains(decJoined, want) {
			t.Fatalf("DECISIONS output missing %q:\n%s", want, decJoined)
		}
	}

	// STATS must now carry the sketch quantiles and regret fields the
	// replayer publishes.
	if got := ask("STATS"); !strings.Contains(got, "svc_p99_us=") ||
		!strings.Contains(got, "regret_windows=") || !strings.Contains(got, "regret_best=") {
		t.Fatalf("STATS missing sketch/regret fields: %q", got)
	}

	// SHADOW streams the scored counterfactual windows. Traffic ran for
	// ~4s at a 1-in-4 capture rate with 500ms replay windows, so at
	// least one window must have scored by now.
	fmt.Fprintf(rw, "SHADOW 5\n")
	rw.Flush()
	var shadowLines []string
	for {
		line, err := rw.ReadString('\n')
		if err != nil {
			t.Fatalf("SHADOW read: %v", err)
		}
		line = strings.TrimSpace(line)
		shadowLines = append(shadowLines, line)
		if strings.HasPrefix(line, "END") || strings.HasPrefix(line, "ERR") {
			break
		}
	}
	shadowJoined := strings.Join(shadowLines, "\n")
	if len(shadowLines) < 2 {
		t.Fatalf("SHADOW returned no scored windows:\n%s", shadowJoined)
	}
	for _, want := range []string{"achieved_p99", "fcfs", "srpt_hint", "srpt_oracle", "best", "END"} {
		if !strings.Contains(shadowJoined, want) {
			t.Fatalf("SHADOW output missing %q:\n%s", want, shadowJoined)
		}
	}
}

func parseAddrs(t *testing.T, stderr io.Reader) (kvAddr, obsAddr string) {
	t.Helper()
	kvRe := regexp.MustCompile(`concord-kvd on ([^ ]+): \d+ workers`)
	obsRe := regexp.MustCompile(`metrics\+pprof\+healthz on ([^,]+),`)
	sc := bufio.NewScanner(stderr)
	deadline := time.After(10 * time.Second)
	lines := make(chan string)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	// Keep draining stderr in the background after we have what we
	// need so the server never blocks on a full pipe.
	defer func() {
		go func() {
			for range lines {
			}
		}()
	}()
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("server exited before logging addresses (kv=%q obs=%q)", kvAddr, obsAddr)
			}
			if m := kvRe.FindStringSubmatch(line); m != nil {
				kvAddr = m[1]
			}
			if m := obsRe.FindStringSubmatch(line); m != nil {
				obsAddr = m[1]
			}
			if kvAddr != "" && obsAddr != "" {
				return kvAddr, obsAddr
			}
		case <-deadline:
			t.Fatalf("timed out waiting for server addresses (kv=%q obs=%q)", kvAddr, obsAddr)
		}
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
