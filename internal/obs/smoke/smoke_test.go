//go:build obssmoke

package smoke

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestObsSmoke is the `make obs-smoke` CI job: a full out-of-process
// round trip through the observability surface.
func TestObsSmoke(t *testing.T) {
	dir := t.TempDir()
	kvd := filepath.Join(dir, "concord-kvd")
	load := filepath.Join(dir, "concord-load")
	for bin, pkg := range map[string]string{kvd: "concord/cmd/concord-kvd", load: "concord/cmd/concord-load"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	traceJSON := filepath.Join(dir, "trace.json")
	srv := exec.Command(kvd,
		"-addr", "127.0.0.1:0", "-obs", "127.0.0.1:0",
		"-workers", "2", "-quantum", "200us", "-keys", "2000", "-drain", "2s",
		"-tracedump", traceJSON)
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- srv.Wait() }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			srv.Process.Kill()
			t.Error("server did not drain after SIGTERM")
			return
		}
		// The drain wrote the Chrome trace; it must be JSON Perfetto
		// accepts: an object with a non-empty traceEvents array.
		raw, err := os.ReadFile(traceJSON)
		if err != nil {
			t.Errorf("tracedump missing: %v", err)
			return
		}
		var doc struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Errorf("tracedump is not valid JSON: %v", err)
			return
		}
		if len(doc.TraceEvents) < 10 {
			t.Errorf("tracedump has only %d events", len(doc.TraceEvents))
		}
	}()

	// The server logs its chosen addresses; -addr/-obs use port 0.
	kvAddr, obsAddr := parseAddrs(t, stderr)
	t.Logf("kv on %s, obs on %s", kvAddr, obsAddr)

	// Drive some traffic with breakdowns enabled; the report must show
	// the per-component table.
	loadOut, err := exec.Command(load,
		"-addr", kvAddr, "-rate", "2000", "-duration", "2s",
		"-conns", "8", "-mix", "get", "-keys", "2000", "-breakdown").CombinedOutput()
	if err != nil {
		t.Fatalf("concord-load: %v\n%s", err, loadOut)
	}
	for _, want := range []string{"component breakdown", "queueing", "service", "p99.9"} {
		if !strings.Contains(string(loadOut), want) {
			t.Fatalf("load report missing %q:\n%s", want, loadOut)
		}
	}

	// Scrape the metrics endpoint.
	body := httpGet(t, "http://"+obsAddr+"/metrics")
	for _, want := range []string{
		"concord_submitted_total", "concord_completed_total",
		"concord_queue_depth", "concord_worker_occupancy",
		`concord_request_us_bucket{op="get",component="service",le="`,
		"_sum", "_count",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q; got:\n%.2000s", want, body)
		}
	}
	// pprof must be mounted on the same listener.
	if pprof := httpGet(t, "http://"+obsAddr+"/debug/pprof/cmdline"); !strings.Contains(pprof, "concord-kvd") {
		t.Fatalf("pprof cmdline = %q", pprof)
	}

	// Text protocol: STATS depths, OBS trailers, and TRACE timelines.
	conn, err := net.Dial("tcp", kvAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rw := bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn))
	ask := func(req string) string {
		fmt.Fprintf(rw, "%s\n", req)
		rw.Flush()
		resp, err := rw.ReadString('\n')
		if err != nil {
			t.Fatalf("%s: %v", req, err)
		}
		return strings.TrimSpace(resp)
	}
	if got := ask("STATS"); !strings.Contains(got, "central=") || !strings.Contains(got, "occ=") {
		t.Fatalf("STATS missing live depths: %q", got)
	}
	if got := ask("OBS ON"); got != "OK" {
		t.Fatalf("OBS ON = %q", got)
	}
	if got := ask("GET key00000001"); !strings.Contains(got, "|OBS ") || !strings.Contains(got, "s=") {
		t.Fatalf("breakdown trailer missing: %q", got)
	}
	fmt.Fprintf(rw, "TRACE 5\n")
	rw.Flush()
	var traceLines []string
	for {
		line, err := rw.ReadString('\n')
		if err != nil {
			t.Fatalf("TRACE read: %v", err)
		}
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "END") {
			traceLines = append(traceLines, line)
			break
		}
		traceLines = append(traceLines, line)
	}
	joined := strings.Join(traceLines, "\n")
	for _, want := range []string{"REQ ", "total=", "submit", "complete", "END"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("TRACE output missing %q:\n%s", want, joined)
		}
	}
}

func parseAddrs(t *testing.T, stderr io.Reader) (kvAddr, obsAddr string) {
	t.Helper()
	kvRe := regexp.MustCompile(`concord-kvd on ([^ ]+): \d+ workers`)
	obsRe := regexp.MustCompile(`metrics\+pprof on ([^,]+),`)
	sc := bufio.NewScanner(stderr)
	deadline := time.After(10 * time.Second)
	lines := make(chan string)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	// Keep draining stderr in the background after we have what we
	// need so the server never blocks on a full pipe.
	defer func() {
		go func() {
			for range lines {
			}
		}()
	}()
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("server exited before logging addresses (kv=%q obs=%q)", kvAddr, obsAddr)
			}
			if m := kvRe.FindStringSubmatch(line); m != nil {
				kvAddr = m[1]
			}
			if m := obsRe.FindStringSubmatch(line); m != nil {
				obsAddr = m[1]
			}
			if kvAddr != "" && obsAddr != "" {
				return kvAddr, obsAddr
			}
		case <-deadline:
			t.Fatalf("timed out waiting for server addresses (kv=%q obs=%q)", kvAddr, obsAddr)
		}
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
