// Package smoke holds the end-to-end observability smoke test: it
// builds concord-kvd and concord-load, boots the server with -obs,
// scrapes /metrics, pulls a TRACE, and checks the -breakdown client
// path. The test is behind the obssmoke build tag (run via
// `make obs-smoke`) so plain `go test ./...` stays fast.
package smoke
