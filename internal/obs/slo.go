// SLO error-budget accounting in the Google SRE style: every request is
// good or bad against a latency target, the tracker keeps windowed
// good/total counts, and burn rate is how fast the error budget is being
// consumed relative to the objective (burn 1.0 = exactly spending the
// budget over the window; 14.4 over 5m+1h is the classic page
// threshold). Alerting requires both the short and the long window to
// burn hot — the short window makes the alert fast to clear, the long
// one keeps a brief spike from paging.
package obs

import (
	"fmt"
	"sync"
	"time"
)

// SLOConfig describes one latency SLO.
type SLOConfig struct {
	// Target is the latency bound: a request is good when it completes
	// without error within Target.
	Target time.Duration
	// Objective is the good-ratio goal, e.g. 0.999 for "99.9% of
	// requests within Target". The error budget is 1-Objective.
	Objective float64
	// ShortWindow and LongWindow are the two burn-rate horizons.
	// Defaults: 5m and 1h.
	ShortWindow, LongWindow time.Duration
	// BurnAlert is the burn-rate threshold; the tracker alerts while
	// both windows burn at or above it. Default 14.4 (consumes a
	// 30-day budget in ~2 days).
	BurnAlert float64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Objective <= 0 || c.Objective >= 1 {
		c.Objective = 0.999
	}
	if c.ShortWindow <= 0 {
		c.ShortWindow = 5 * time.Minute
	}
	if c.LongWindow <= c.ShortWindow {
		c.LongWindow = 12 * c.ShortWindow
	}
	if c.BurnAlert <= 0 {
		c.BurnAlert = 14.4
	}
	return c
}

// sloEpoch is one rotation slot of windowed good/total counts.
type sloEpoch struct {
	num         int64
	good, total uint64
}

// SLOTracker accounts requests against an SLOConfig and derives
// multi-window burn rates. It is safe for concurrent use.
type SLOTracker struct {
	cfg SLOConfig

	mu      sync.Mutex
	epochNS int64
	ring    []sloEpoch
	// alerting latches between Snapshot calls: it fires when both
	// windows burn at or above BurnAlert and clears as soon as the
	// short window cools below it (the SRE reset condition).
	alerting bool
	now      func() int64 // monotonic ns; injected by tests
}

// NewSLOTracker builds a tracker; zero-valued config fields take the
// documented defaults.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	cfg = cfg.withDefaults()
	// Epochs at 1/20 of the short window bound the quantization error
	// of both horizons to ≤5% of the short window.
	epoch := cfg.ShortWindow / 20
	if epoch < time.Millisecond {
		epoch = time.Millisecond
	}
	n := int(cfg.LongWindow/epoch) + 1
	t := &SLOTracker{cfg: cfg, epochNS: int64(epoch), ring: make([]sloEpoch, n), now: monotonicNS}
	for i := range t.ring {
		t.ring[i].num = -1
	}
	return t
}

// Config returns the tracker's resolved configuration.
func (t *SLOTracker) Config() SLOConfig { return t.cfg }

// Observe accounts one completed request: good when ok and within the
// latency target.
func (t *SLOTracker) Observe(latency time.Duration, ok bool) {
	t.mu.Lock()
	e := t.now() / t.epochNS
	s := &t.ring[e%int64(len(t.ring))]
	if s.num != e {
		s.num, s.good, s.total = e, 0, 0
	}
	s.total++
	if ok && latency <= t.cfg.Target {
		s.good++
	}
	t.mu.Unlock()
}

// SLOSnapshot is a point-in-time view of the SLO accounting.
type SLOSnapshot struct {
	// ShortBurn and LongBurn are the burn rates over the two windows:
	// the windows' bad-request ratios divided by the error budget
	// (1-Objective). 0 when the window saw no traffic.
	ShortBurn, LongBurn float64
	// Good/Total counts over each window.
	ShortGood, ShortTotal uint64
	LongGood, LongTotal   uint64
	// BudgetUsed is the fraction of the long window's error budget
	// already consumed (LongBurn, equivalently — kept separate so
	// dashboards can gauge it 0..1+).
	BudgetUsed float64
	// Alerting reports the latched multi-window alert state.
	Alerting bool
}

// counts sums good/total over the trailing window. Callers hold t.mu.
func (t *SLOTracker) counts(e int64, window time.Duration) (good, total uint64) {
	k := (int64(window) + t.epochNS - 1) / t.epochNS
	if max := int64(len(t.ring)); k > max {
		k = max
	}
	for i := e - k + 1; i <= e; i++ {
		if i < 0 {
			continue
		}
		s := &t.ring[i%int64(len(t.ring))]
		if s.num == i {
			good += s.good
			total += s.total
		}
	}
	return good, total
}

// burnRate converts windowed counts to a burn rate against the budget.
func (t *SLOTracker) burnRate(good, total uint64) float64 {
	if total == 0 {
		return 0
	}
	badRatio := float64(total-good) / float64(total)
	return badRatio / (1 - t.cfg.Objective)
}

// Snapshot computes both windows' burn rates and updates the latched
// alert state.
func (t *SLOTracker) Snapshot() SLOSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.now() / t.epochNS
	var snap SLOSnapshot
	snap.ShortGood, snap.ShortTotal = t.counts(e, t.cfg.ShortWindow)
	snap.LongGood, snap.LongTotal = t.counts(e, t.cfg.LongWindow)
	snap.ShortBurn = t.burnRate(snap.ShortGood, snap.ShortTotal)
	snap.LongBurn = t.burnRate(snap.LongGood, snap.LongTotal)
	snap.BudgetUsed = snap.LongBurn
	if t.alerting {
		if snap.ShortBurn < t.cfg.BurnAlert {
			t.alerting = false
		}
	} else if snap.ShortBurn >= t.cfg.BurnAlert && snap.LongBurn >= t.cfg.BurnAlert {
		t.alerting = true
	}
	snap.Alerting = t.alerting
	return snap
}

// String renders the SLO target, e.g. "p99.9 ≤ 200µs" for a 0.999
// objective at 200µs.
func (c SLOConfig) String() string {
	return fmt.Sprintf("p%g ≤ %v", 100*c.Objective, c.Target)
}
