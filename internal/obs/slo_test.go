package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func newClockedSLO(cfg SLOConfig) (*SLOTracker, *fakeClock) {
	tr := NewSLOTracker(cfg)
	clk := &fakeClock{}
	tr.now = clk.now
	return tr, clk
}

func TestSLOConfigDefaults(t *testing.T) {
	cfg := SLOConfig{Target: 200 * time.Microsecond}.withDefaults()
	if cfg.Objective != 0.999 {
		t.Fatalf("default objective = %v", cfg.Objective)
	}
	if cfg.ShortWindow != 5*time.Minute || cfg.LongWindow != time.Hour {
		t.Fatalf("default windows = %v/%v, want 5m/1h", cfg.ShortWindow, cfg.LongWindow)
	}
	if cfg.BurnAlert != 14.4 {
		t.Fatalf("default burn alert = %v", cfg.BurnAlert)
	}
	if s := cfg.String(); !strings.Contains(s, "p99.9") || !strings.Contains(s, "200µs") {
		t.Fatalf("String() = %q", s)
	}
}

func TestSLOTrackerEmpty(t *testing.T) {
	tr, _ := newClockedSLO(SLOConfig{Target: time.Millisecond})
	s := tr.Snapshot()
	if s.ShortBurn != 0 || s.LongBurn != 0 || s.Alerting {
		t.Fatalf("empty tracker snapshot = %+v", s)
	}
}

// TestSLOBurnRateValues: with a 0.99 objective (1% budget), a 2% bad
// ratio burns at 2.0, a 100% bad ratio at 100.
func TestSLOBurnRateValues(t *testing.T) {
	tr, _ := newClockedSLO(SLOConfig{Target: time.Millisecond, Objective: 0.99})
	for i := 0; i < 98; i++ {
		tr.Observe(time.Microsecond, true)
	}
	tr.Observe(time.Second, true) // over target
	tr.Observe(time.Microsecond, false)
	s := tr.Snapshot()
	if s.ShortGood != 98 || s.ShortTotal != 100 {
		t.Fatalf("good/total = %d/%d, want 98/100", s.ShortGood, s.ShortTotal)
	}
	if s.ShortBurn < 1.99 || s.ShortBurn > 2.01 {
		t.Fatalf("short burn = %v, want 2.0", s.ShortBurn)
	}
	if s.LongBurn != s.ShortBurn {
		t.Fatalf("long burn = %v, short = %v; same traffic should match", s.LongBurn, s.ShortBurn)
	}
	if s.BudgetUsed != s.LongBurn {
		t.Fatalf("budget used = %v, want %v", s.BudgetUsed, s.LongBurn)
	}
	if s.Alerting {
		t.Fatal("burn 2.0 must not alert at the 14.4 threshold")
	}
}

// TestSLOAlertFiresAndClears drives the canonical incident shape with a
// fake clock: sustained hot burn fires the alert (both windows hot);
// recovery traffic cools the short window first, clearing the alert
// even while the long window still remembers the incident.
func TestSLOAlertFiresAndClears(t *testing.T) {
	cfg := SLOConfig{
		Target:      time.Millisecond,
		Objective:   0.99, // 1% budget
		ShortWindow: 5 * time.Minute,
		LongWindow:  time.Hour,
		BurnAlert:   10,
	}
	tr, clk := newClockedSLO(cfg)

	// Phase 1 — healthy baseline for 10 minutes.
	for m := 0; m < 10; m++ {
		for i := 0; i < 100; i++ {
			tr.Observe(time.Microsecond, true)
		}
		clk.advance(time.Minute)
		if s := tr.Snapshot(); s.Alerting {
			t.Fatalf("alert fired on healthy traffic at minute %d: %+v", m, s)
		}
	}

	// Phase 2 — incident: 50% of requests breach the target (burn 50).
	// The short window heats up within its horizon; the long window
	// needs enough hot minutes for its average to cross too.
	fired := false
	for m := 0; m < 30; m++ {
		for i := 0; i < 100; i++ {
			tr.Observe(time.Microsecond, i%2 == 0)
		}
		clk.advance(time.Minute)
		s := tr.Snapshot()
		if s.Alerting {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("alert never fired during a sustained 50x burn")
	}

	// Phase 3 — recovery: healthy traffic. The short window cools
	// within ~its horizon and the alert clears, long before the long
	// window's burn average decays.
	cleared := false
	for m := 0; m < 10; m++ {
		for i := 0; i < 100; i++ {
			tr.Observe(time.Microsecond, true)
		}
		clk.advance(time.Minute)
		s := tr.Snapshot()
		if !s.Alerting {
			cleared = true
			if s.LongBurn < 1 {
				t.Fatalf("long window forgot the incident too fast: %+v", s)
			}
			break
		}
	}
	if !cleared {
		t.Fatal("alert did not clear after recovery outlasted the short window")
	}
}

// TestSLOShortSpikeDoesNotPage: a burst far shorter than the long
// window pushes the short burn past the threshold but not the long
// one, so no alert fires (the point of multi-window burn rates).
func TestSLOShortSpikeDoesNotPage(t *testing.T) {
	cfg := SLOConfig{
		Target:      time.Millisecond,
		Objective:   0.99,
		ShortWindow: 5 * time.Minute,
		LongWindow:  time.Hour,
		BurnAlert:   10,
	}
	tr, clk := newClockedSLO(cfg)
	// 55 minutes of healthy traffic...
	for m := 0; m < 55; m++ {
		for i := 0; i < 100; i++ {
			tr.Observe(time.Microsecond, true)
		}
		clk.advance(time.Minute)
	}
	// ...then one hot minute: 100% bad = burn 100 over that minute.
	for i := 0; i < 100; i++ {
		tr.Observe(time.Second, true)
	}
	clk.advance(time.Minute)
	s := tr.Snapshot()
	if s.ShortBurn < cfg.BurnAlert {
		t.Fatalf("short burn = %v, expected hot (> %v)", s.ShortBurn, cfg.BurnAlert)
	}
	if s.LongBurn >= cfg.BurnAlert {
		t.Fatalf("long burn = %v, expected cool", s.LongBurn)
	}
	if s.Alerting {
		t.Fatal("one-minute spike paged despite a cool long window")
	}
}

// TestSLOIdleGap: counts age out after an idle gap longer than the
// long window.
func TestSLOIdleGap(t *testing.T) {
	tr, clk := newClockedSLO(SLOConfig{Target: time.Millisecond, Objective: 0.99})
	for i := 0; i < 100; i++ {
		tr.Observe(time.Second, true) // all bad
	}
	clk.advance(2 * time.Hour)
	s := tr.Snapshot()
	if s.LongTotal != 0 || s.LongBurn != 0 {
		t.Fatalf("stale counts survived the gap: %+v", s)
	}
}

func TestSLOTrackerConcurrent(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{Target: 100 * time.Microsecond, Objective: 0.999})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				tr.Observe(time.Duration(i%200)*time.Microsecond, true)
				if i%100 == 0 {
					tr.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := tr.Snapshot()
	if s.ShortTotal != 4*5000 {
		t.Fatalf("total = %d, want %d", s.ShortTotal, 4*5000)
	}
}
