package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestChromeTraceGolden freezes the exact trace_event JSON for a known
// event stream. Run with -update to regenerate after an intentional
// format change.
func TestChromeTraceGolden(t *testing.T) {
	events := append(preemptedLifecycle(42),
		evt(90, 43, EvSubmit, WriterClient, 0),
		evt(95, 43, EvReject, WriterClient, StatusQueueFull),
	)
	// A wire-to-wire request exercises the net lane (frame read, parse,
	// flush events on the net thread) in the same export.
	for _, e := range wireLifecycle(44) {
		e.TS += 100 * time.Microsecond
		events = append(events, e)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run go test -run ChromeTraceGolden -update ./internal/obs)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestChromeTraceShape validates the structural contract Perfetto
// relies on, independent of the golden bytes.
func TestChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, preemptedLifecycle(7)); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var phases = map[string]int{}
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		phases[ph]++
		if _, ok := e["ts"].(float64); !ok && ph != "M" {
			t.Fatalf("event missing numeric ts: %v", e)
		}
		if _, ok := e["pid"].(float64); !ok {
			t.Fatalf("event missing pid: %v", e)
		}
	}
	// One async span (b/e), two run slices (X), instants (i), and
	// thread-name metadata (M).
	if phases["b"] != 1 || phases["e"] != 1 {
		t.Fatalf("async span events = %v", phases)
	}
	if phases["X"] != 2 {
		t.Fatalf("run slices = %d, want 2 (start→yield, resume→complete)", phases["X"])
	}
	if phases["i"] == 0 || phases["M"] == 0 {
		t.Fatalf("instants/metadata missing: %v", phases)
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("empty export invalid: %s", buf.Bytes())
	}
}
