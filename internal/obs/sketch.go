// Per-class service-time estimation: a lock-free, mergeable log-bucket
// quantile sketch fed from the runtime's completion path, and the
// per-scheduling-class bundle (service-time sketch + hint-error
// attribution) the adaptive controller and the /metrics surface read.
//
// The sketch is the scheduling-quality counterpart of trace.Histogram:
// where the histogram's base-2 buckets are fine enough for latency
// *display*, the controller derives per-class preemption quanta from
// these quantiles, so the sketch subdivides every octave into 8
// sub-buckets (growth factor 2^(1/8) ≈ 1.0905). Reporting the geometric
// midpoint of the winning bucket bounds the relative error by
// 2^(1/16)−1 ≈ 4.4% — inside the 5% the actuation contract asks for —
// while keeping observation completely lock-free: one atomic add on a
// fixed-size bucket array, no allocation, no mutex, mergeable by
// summing counts.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"

	"concord/internal/trace"
)

const (
	// sketchSubBuckets subdivides each power-of-two octave.
	sketchSubBuckets = 8
	// SketchBuckets is the fixed bucket count: 64 octaves cover every
	// positive int64 nanosecond value.
	SketchBuckets = 64 * sketchSubBuckets
)

// sketchBounds[j] = 2^(j/8): the sub-bucket thresholds within an
// octave, precomputed so Observe never calls math.Log2.
var sketchBounds = func() [sketchSubBuckets]float64 {
	var b [sketchSubBuckets]float64
	for j := range b {
		b[j] = math.Pow(2, float64(j)/sketchSubBuckets)
	}
	return b
}()

// sketchIndex maps a nanosecond value to its bucket: bucket i covers
// [2^(i/8), 2^((i+1)/8)) ns, with everything below 1ns clamped into
// bucket 0.
func sketchIndex(ns int64) int {
	if ns <= 1 {
		return 0
	}
	octave := bits.Len64(uint64(ns)) - 1
	frac := float64(ns) / float64(uint64(1)<<uint(octave)) // [1, 2)
	sub := sketchSubBuckets - 1
	for j := 1; j < sketchSubBuckets; j++ {
		if frac < sketchBounds[j] {
			sub = j - 1
			break
		}
	}
	return octave*sketchSubBuckets + sub
}

// SketchBucketLowerNS returns bucket i's lower bound in nanoseconds.
func SketchBucketLowerNS(i int) float64 {
	return math.Pow(2, float64(i)/sketchSubBuckets)
}

// QuantileSketch is a lock-free log-bucket quantile sketch over
// nanosecond values. Observe is wait-free (one atomic add on a fixed
// array); Snapshot and quantile queries run off the hot path. The zero
// value is ready to use.
type QuantileSketch struct {
	buckets [SketchBuckets]atomic.Uint64
	sumNS   atomic.Int64
}

// Observe adds one observation in nanoseconds. Non-positive values
// clamp into the lowest bucket (they still count).
func (s *QuantileSketch) Observe(ns int64) {
	s.buckets[sketchIndex(ns)].Add(1)
	if ns > 0 {
		s.sumNS.Add(ns)
	}
}

// SketchSnapshot is a point-in-time copy of a sketch, mergeable with
// other snapshots by summing counts. Concurrent observation during a
// snapshot can split a racing observation between Count and SumNS; the
// skew is bounded by the in-flight writes, never accumulates, and is
// irrelevant at quantile-query granularity.
type SketchSnapshot struct {
	Buckets [SketchBuckets]uint64
	Count   uint64
	SumNS   int64
}

// Snapshot copies the live bucket counts.
func (s *QuantileSketch) Snapshot() SketchSnapshot {
	var out SketchSnapshot
	for i := range s.buckets {
		c := s.buckets[i].Load()
		out.Buckets[i] = c
		out.Count += c
	}
	out.SumNS = s.sumNS.Load()
	return out
}

// Merge folds another snapshot into this one: the result describes the
// union of the two observation sets (the sketch's mergeability
// contract — per-worker or per-process sketches combine exactly).
func (s *SketchSnapshot) Merge(o SketchSnapshot) {
	for i, c := range o.Buckets {
		s.Buckets[i] += c
	}
	s.Count += o.Count
	s.SumNS += o.SumNS
}

// QuantileNS estimates the q-quantile (q in [0,1]) in nanoseconds,
// reporting the geometric midpoint of the bucket containing the target
// rank (relative error ≤ 2^(1/16)−1 ≈ 4.4%). NaN when empty.
func (s SketchSnapshot) QuantileNS(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	q = math.Min(1, math.Max(0, q))
	target := q * float64(s.Count)
	if target < 1 {
		target = 1
	}
	cum := 0.0
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		cum += float64(c)
		if cum >= target {
			// Geometric midpoint of [2^(i/8), 2^((i+1)/8)).
			return math.Pow(2, (float64(i)+0.5)/sketchSubBuckets)
		}
	}
	return SketchBucketLowerNS(SketchBuckets - 1)
}

// MeanNS returns the exact mean of all positive observations; NaN when
// empty.
func (s SketchSnapshot) MeanNS() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return float64(s.SumNS) / float64(s.Count)
}

// HintErrorScale is the fixed-point scale hint-error ratios are
// observed at in the concord_hint_error histograms: a recorded value of
// 100 means hint == actual, 10 means the hint undershot 10×, 1000 means
// it overshot 10×. The scale exists because trace.Histogram's log-2
// buckets collapse everything below 1 into one bucket; ×100 spreads the
// under-estimation half of the ratio range across real buckets.
const HintErrorScale = 100

// classSketch is one scheduling class's estimator pair.
type classSketch struct {
	svc     QuantileSketch
	hintErr trace.Histogram
}

// ClassSketches bundles a per-scheduling-class service-time sketch and
// hint-error histogram, fed from the runtime's completion path (one
// call per successfully completed request). Class indices follow the
// live runtime's SLOClass taxonomy; out-of-range classes fold into
// class 0 rather than being dropped.
type ClassSketches struct {
	classes []classSketch
}

// NewClassSketches builds sketches for n scheduling classes (n ≥ 1 is
// forced).
func NewClassSketches(n int) *ClassSketches {
	if n < 1 {
		n = 1
	}
	return &ClassSketches{classes: make([]classSketch, n)}
}

// Classes returns the number of scheduling classes tracked.
func (c *ClassSketches) Classes() int { return len(c.classes) }

// Observe records one completed request: its scheduling class, its
// measured service time, and the service hint it was submitted with
// (0 = unhinted; unhinted requests feed the service sketch but not the
// hint-error histogram). Safe for concurrent use from every executor.
func (c *ClassSketches) Observe(class int, serviceNS, hintNS int64) {
	if class < 0 || class >= len(c.classes) {
		class = 0
	}
	cs := &c.classes[class]
	cs.svc.Observe(serviceNS)
	if hintNS > 0 && serviceNS > 0 {
		cs.hintErr.ObserveUS(float64(hintNS) / float64(serviceNS) * HintErrorScale)
	}
}

// Service returns the class's service-time sketch (nil when out of
// range), for snapshotting and metric export.
func (c *ClassSketches) Service(class int) *QuantileSketch {
	if class < 0 || class >= len(c.classes) {
		return nil
	}
	return &c.classes[class].svc
}

// HintError returns the class's hint/actual ratio histogram (values
// scaled by HintErrorScale); nil when out of range.
func (c *ClassSketches) HintError(class int) *trace.Histogram {
	if class < 0 || class >= len(c.classes) {
		return nil
	}
	return &c.classes[class].hintErr
}

// ServiceQuantileNS returns the class's q-quantile service time in
// nanoseconds, or 0 when the class has no observations yet — the "no
// data" sentinel the controller's class-quantum derivation branches on.
func (c *ClassSketches) ServiceQuantileNS(class int, q float64) float64 {
	sk := c.Service(class)
	if sk == nil {
		return 0
	}
	snap := sk.Snapshot()
	if snap.Count == 0 {
		return 0
	}
	return snap.QuantileNS(q)
}

// ServiceQuantilesNS returns every class's q-quantile service time in
// nanoseconds (0 = no data), indexed by class — the shape the adaptive
// controller's Config.ClassSvcNS source returns.
func (c *ClassSketches) ServiceQuantilesNS(q float64) []float64 {
	out := make([]float64, len(c.classes))
	for i := range c.classes {
		out[i] = c.ServiceQuantileNS(i, q)
	}
	return out
}
