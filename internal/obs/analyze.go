// Latency-breakdown attribution: turn a merged event stream into
// per-request component times (the paper's Table-1 decomposition).
package obs

import (
	"sort"
	"time"
)

// Breakdown attributes one request's end-to-end latency to lifecycle
// components. For a request with a full event sequence the components
// partition the total exactly:
//
//	Total = Ingress + Handoff + Queue + Service + Preempted + Egress
//
// Ingress is frame-read → submit (wire decode plus the pipelined submit
// path; zero for requests that never crossed the network frontend),
// Handoff is submit → first enqueue-central (dispatcher ingest delay),
// Queue is first enqueue-central → first CPU hand-off (central + JBSQ
// queueing), Service is the sum of running intervals, Preempted is the
// time parked between a yield and the next resume (requeue plus
// re-queueing) including a final parked interval before an abort or
// expiry, and Egress is terminal event → response flushed to the socket
// (zero when the snapshot holds no EvFlushed for the request).
type Breakdown struct {
	Req         uint64
	SubmitTS    time.Duration // first event's timestamp (tracer epoch)
	EndTS       time.Duration // last event's timestamp (flush if recorded, else terminal)
	IngressUS   float64
	HandoffUS   float64
	QueueUS     float64
	ServiceUS   float64
	PreemptedUS float64
	EgressUS    float64
	Preemptions int
	Outcome     Kind  // EvComplete, EvExpire, EvAbort, or EvReject
	Status      int64 // Status* arg of the terminal event
	Partial     bool  // ring wraparound lost this request's first event
}

// TotalUS is the end-to-end latency derived from the event stream.
func (b Breakdown) TotalUS() float64 {
	return float64(b.EndTS-b.SubmitTS) / float64(time.Microsecond)
}

// SumUS is the sum of the six components; for a non-partial request it
// equals TotalUS up to float rounding.
func (b Breakdown) SumUS() float64 {
	return b.IngressUS + b.HandoffUS + b.QueueUS + b.ServiceUS + b.PreemptedUS + b.EgressUS
}

// OutcomeString renders the terminal state for reports.
func (b Breakdown) OutcomeString() string {
	switch b.Outcome {
	case EvComplete:
		if b.Status == StatusOK {
			return "ok"
		}
		return "error"
	case EvExpire:
		return "expired"
	case EvAbort:
		return "aborted"
	case EvReject:
		if b.Status == StatusQueueFull {
			return "rejected-full"
		}
		return "rejected-stopped"
	}
	return "in-flight"
}

// group collects each request's events in time order, preserving the
// merged stream's ordering, and returns request ids ordered by the
// request's last event.
func group(events []Event) (map[uint64][]Event, []uint64) {
	byReq := make(map[uint64][]Event)
	for _, e := range events {
		if e.Kind == EvPreemptSignal && e.Req == 0 {
			continue // signal raced a finishing request; unattributed
		}
		byReq[e.Req] = append(byReq[e.Req], e)
	}
	ids := make([]uint64, 0, len(byReq))
	for id := range byReq {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		ei, ej := byReq[ids[i]], byReq[ids[j]]
		li, lj := ei[len(ei)-1].TS, ej[len(ej)-1].TS
		if li != lj {
			return li < lj
		}
		return ids[i] < ids[j]
	})
	return byReq, ids
}

// analyzeOne walks one request's events (time-ordered) through the
// lifecycle state machine. Requests without a terminal event return
// ok=false. A terminal event does not end the walk: the frontend's
// EvFlushed trails it and extends the request with the egress phase.
func analyzeOne(id uint64, evs []Event) (Breakdown, bool) {
	b := Breakdown{Req: id, SubmitTS: evs[0].TS,
		Partial: evs[0].Kind != EvSubmit && evs[0].Kind != EvFrameRead}
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	var (
		frameTS    time.Duration
		hasFrame   bool
		startTS    = evs[0].TS // EvSubmit timestamp once seen
		enqueueTS  time.Duration
		hasEnqueue bool
		runStart   time.Duration
		running    bool
		firstRun   bool
		yieldTS    time.Duration
		yielded    bool
		termTS     time.Duration
		terminal   bool
	)
	for _, e := range evs {
		switch e.Kind {
		case EvFrameRead:
			if !hasFrame {
				hasFrame, frameTS = true, e.TS
			}
		case EvSubmit:
			startTS = e.TS
			if hasFrame {
				b.IngressUS = us(e.TS - frameTS)
			}
		case EvEnqueueCentral:
			if !hasEnqueue {
				hasEnqueue = true
				enqueueTS = e.TS
				b.HandoffUS = us(e.TS - startTS)
			}
		case EvStart, EvResume:
			if !firstRun {
				firstRun = true
				if hasEnqueue {
					b.QueueUS = us(e.TS - enqueueTS)
				}
			} else if yielded {
				b.PreemptedUS += us(e.TS - yieldTS)
			}
			running, yielded = true, false
			runStart = e.TS
		case EvYield:
			if running {
				b.ServiceUS += us(e.TS - runStart)
				running = false
			}
			yielded, yieldTS = true, e.TS
			b.Preemptions++
		case EvComplete, EvExpire, EvAbort, EvReject:
			if terminal {
				break
			}
			b.Outcome, b.Status, b.EndTS = e.Kind, e.Arg, e.TS
			switch {
			case running:
				b.ServiceUS += us(e.TS - runStart)
			case yielded:
				b.PreemptedUS += us(e.TS - yieldTS)
			case hasEnqueue && !firstRun:
				// Died queued (expired or aborted before first run).
				b.QueueUS = us(e.TS - enqueueTS)
			}
			running, yielded = false, false
			terminal, termTS = true, e.TS
		case EvFlushed:
			if terminal && b.EgressUS == 0 {
				b.EgressUS = us(e.TS - termTS)
				b.EndTS = e.TS
			}
		}
	}
	return b, terminal
}

// Analyze derives per-request breakdowns from a time-ordered event
// stream (as returned by Tracer.Snapshot). Requests still in flight —
// no terminal event in the snapshot — are omitted. Results are ordered
// by completion time.
func Analyze(events []Event) []Breakdown {
	byReq, ids := group(events)
	out := make([]Breakdown, 0, len(ids))
	for _, id := range ids {
		if b, ok := analyzeOne(id, byReq[id]); ok {
			out = append(out, b)
		}
	}
	return out
}
