// Per-SLO-class tail accounting: one TailTracker (rolling latency
// windows + SLO burn accounting) per service class, behind the same
// one-nil-check hot-path contract as the classless TailTracker. This is
// the observability half of the runtime's multi-tenancy story — the
// classless tracker answers "how is the server doing", the class tails
// answer "how is each tenant class doing", which is the number the
// admission/shedding machinery is judged by.
package obs

import "time"

// ClassSLO configures one class's tail tracker.
type ClassSLO struct {
	// Target is the class's latency objective (SLOConfig.Target).
	Target time.Duration
	// Objective is the good-ratio goal; 0 takes the SLO default (0.999).
	Objective float64
}

// ClassTails is a fixed array of per-class TailTrackers, indexed by the
// live runtime's SLOClass values. Out-of-range classes fold into class
// 0 rather than being dropped (the ClassSketches convention). Safe for
// concurrent use.
type ClassTails struct {
	tails []*TailTracker
}

// NewClassTails builds one tracker per configured class, each with its
// own SLOTracker at the class's latency objective. windows sizes every
// class's rolling histogram (nil = DefaultWindows). At least one class
// is forced.
func NewClassTails(slos []ClassSLO, windows []time.Duration) *ClassTails {
	if len(slos) == 0 {
		slos = []ClassSLO{{}}
	}
	ct := &ClassTails{tails: make([]*TailTracker, len(slos))}
	for i, c := range slos {
		var slo *SLOTracker
		if c.Target > 0 {
			slo = NewSLOTracker(SLOConfig{Target: c.Target, Objective: c.Objective})
		}
		ct.tails[i] = NewTailTracker(windows, slo)
	}
	return ct
}

// Classes returns the number of classes tracked.
func (c *ClassTails) Classes() int { return len(c.tails) }

// clamp folds out-of-range classes into class 0.
func (c *ClassTails) clamp(class int) int {
	if class < 0 || class >= len(c.tails) {
		return 0
	}
	return class
}

// Observe accounts one delivered response against its class.
func (c *ClassTails) Observe(class int, latency time.Duration, ok bool) {
	c.tails[c.clamp(class)].Observe(latency, ok)
}

// ObserveRejected accounts a rejected submission (shed, queue-full, or
// stopped) as an SLO-bad event for its class.
func (c *ClassTails) ObserveRejected(class int) {
	c.tails[c.clamp(class)].ObserveRejected()
}

// Tail returns one class's tracker (nil when out of range), for metric
// export and quantile queries.
func (c *ClassTails) Tail(class int) *TailTracker {
	if class < 0 || class >= len(c.tails) {
		return nil
	}
	return c.tails[class]
}
