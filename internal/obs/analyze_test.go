package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// evt builds a synthetic event at t microseconds.
func evt(us int64, req uint64, kind Kind, ring int, arg int64) Event {
	return Event{TS: time.Duration(us) * time.Microsecond, Req: req, Kind: kind, Ring: ring, Arg: arg}
}

// preemptedLifecycle is a full single-preemption request: submitted at
// 0, ingested at 10, dispatched and started at 20, preempted (yield at
// 50), requeued, resumed at 60, completed at 80.
func preemptedLifecycle(req uint64) []Event {
	return []Event{
		evt(0, req, EvSubmit, WriterClient, 0),
		evt(10, req, EvEnqueueCentral, WriterDispatcher, 0),
		evt(12, req, EvDispatch, WriterDispatcher, 0),
		evt(20, req, EvStart, 0, 1),
		evt(40, req, EvPreemptSignal, WriterDispatcher, 0),
		evt(50, req, EvYield, 0, 0),
		evt(51, req, EvRequeue, 0, 0),
		evt(52, req, EvEnqueueCentral, WriterDispatcher, 0),
		evt(55, req, EvDispatch, WriterDispatcher, 1),
		evt(60, req, EvResume, 1, 2),
		evt(80, req, EvComplete, 1, StatusOK),
	}
}

// wireLifecycle is a full wire-to-wire request: frame read at 0, parsed
// at 2, submitted at 3, enqueued at 13, started at 23, completed at 53,
// flush-queued at 54, flushed (batch of 2) at 57.
func wireLifecycle(req uint64) []Event {
	return []Event{
		evt(0, req, EvFrameRead, WriterNet, 0),
		evt(2, req, EvParsed, WriterNet, 0),
		evt(3, req, EvSubmit, WriterClient, 0),
		evt(13, req, EvEnqueueCentral, WriterDispatcher, 0),
		evt(15, req, EvDispatch, WriterDispatcher, 0),
		evt(23, req, EvStart, 0, 1),
		evt(53, req, EvComplete, 0, StatusOK),
		evt(54, req, EvFlushQueued, WriterNet, 0),
		evt(57, req, EvFlushed, WriterNet, 2),
	}
}

// TestAnalyzeWirePhases: with the net events present the breakdown
// gains ingress (frame read → submit) and egress (complete → flushed)
// and the six components still partition the total exactly — the
// telescoping identity the -breakdown e2e check rests on.
func TestAnalyzeWirePhases(t *testing.T) {
	bs := Analyze(wireLifecycle(11))
	if len(bs) != 1 {
		t.Fatalf("got %d breakdowns, want 1", len(bs))
	}
	b := bs[0]
	if b.Partial {
		t.Fatalf("frame-read-first lifecycle marked partial: %+v", b)
	}
	if b.IngressUS != 3 {
		t.Fatalf("ingress = %v, want 3 (frame-read→submit)", b.IngressUS)
	}
	if b.HandoffUS != 10 {
		t.Fatalf("handoff = %v, want 10 (submit→enqueue, not frame→enqueue)", b.HandoffUS)
	}
	if b.QueueUS != 10 || b.ServiceUS != 30 || b.PreemptedUS != 0 {
		t.Fatalf("scheduler components = %+v", b)
	}
	if b.EgressUS != 4 {
		t.Fatalf("egress = %v, want 4 (complete→flushed)", b.EgressUS)
	}
	if b.TotalUS() != 57 {
		t.Fatalf("total = %v, want 57 (frame-read→flushed)", b.TotalUS())
	}
	if math.Abs(b.SumUS()-b.TotalUS()) > 1e-9 {
		t.Fatalf("components sum %v != total %v", b.SumUS(), b.TotalUS())
	}
	if b.OutcomeString() != "ok" {
		t.Fatalf("outcome = %q", b.OutcomeString())
	}
}

// TestAnalyzeEgressOnPreempted: flush events appended to a preempted
// lifecycle extend the total to the flush timestamp without disturbing
// the scheduler components, and the partition stays exact.
func TestAnalyzeEgressOnPreempted(t *testing.T) {
	evs := append(preemptedLifecycle(9),
		evt(81, 9, EvFlushQueued, WriterNet, 0),
		evt(83, 9, EvFlushed, WriterNet, 1),
	)
	bs := Analyze(evs)
	if len(bs) != 1 {
		t.Fatalf("got %d breakdowns, want 1", len(bs))
	}
	b := bs[0]
	if b.IngressUS != 0 {
		t.Fatalf("ingress = %v, want 0 (no frame-read event)", b.IngressUS)
	}
	if b.EgressUS != 3 {
		t.Fatalf("egress = %v, want 3 (complete@80→flushed@83)", b.EgressUS)
	}
	if b.HandoffUS != 10 || b.QueueUS != 10 || b.ServiceUS != 50 || b.PreemptedUS != 10 {
		t.Fatalf("scheduler components disturbed by flush events: %+v", b)
	}
	if b.TotalUS() != 83 {
		t.Fatalf("total = %v, want 83 (submit→flushed)", b.TotalUS())
	}
	if math.Abs(b.SumUS()-b.TotalUS()) > 1e-9 {
		t.Fatalf("components sum %v != total %v", b.SumUS(), b.TotalUS())
	}
}

func TestAnalyzePreemptedRequest(t *testing.T) {
	bs := Analyze(preemptedLifecycle(42))
	if len(bs) != 1 {
		t.Fatalf("got %d breakdowns, want 1", len(bs))
	}
	b := bs[0]
	if b.Req != 42 || b.Partial {
		t.Fatalf("breakdown = %+v", b)
	}
	if b.HandoffUS != 10 {
		t.Fatalf("handoff = %v, want 10 (submit→enqueue)", b.HandoffUS)
	}
	if b.QueueUS != 10 {
		t.Fatalf("queue = %v, want 10 (enqueue→start)", b.QueueUS)
	}
	if b.ServiceUS != 50 {
		t.Fatalf("service = %v, want 50 ((50-20)+(80-60))", b.ServiceUS)
	}
	if b.PreemptedUS != 10 {
		t.Fatalf("preempted = %v, want 10 (yield→resume)", b.PreemptedUS)
	}
	if b.Preemptions != 1 {
		t.Fatalf("preemptions = %d, want 1", b.Preemptions)
	}
	if b.TotalUS() != 80 {
		t.Fatalf("total = %v, want 80", b.TotalUS())
	}
	if math.Abs(b.SumUS()-b.TotalUS()) > 1e-9 {
		t.Fatalf("components sum %v != total %v", b.SumUS(), b.TotalUS())
	}
	if b.OutcomeString() != "ok" {
		t.Fatalf("outcome = %q", b.OutcomeString())
	}
}

func TestAnalyzeRejected(t *testing.T) {
	bs := Analyze([]Event{evt(5, 7, EvReject, WriterClient, StatusQueueFull)})
	if len(bs) != 1 {
		t.Fatalf("got %d breakdowns", len(bs))
	}
	b := bs[0]
	if b.OutcomeString() != "rejected-full" || b.SumUS() != 0 || b.TotalUS() != 0 {
		t.Fatalf("reject breakdown = %+v", b)
	}
}

func TestAnalyzeExpiredInQueue(t *testing.T) {
	bs := Analyze([]Event{
		evt(0, 3, EvSubmit, WriterClient, 0),
		evt(5, 3, EvEnqueueCentral, WriterDispatcher, 0),
		evt(100, 3, EvExpire, WriterDispatcher, StatusDeadline),
	})
	if len(bs) != 1 {
		t.Fatal("expired request missing")
	}
	b := bs[0]
	if b.HandoffUS != 5 || b.QueueUS != 95 || b.ServiceUS != 0 {
		t.Fatalf("expired breakdown = %+v", b)
	}
	if b.OutcomeString() != "expired" {
		t.Fatalf("outcome = %q", b.OutcomeString())
	}
	if math.Abs(b.SumUS()-b.TotalUS()) > 1e-9 {
		t.Fatalf("sum %v != total %v", b.SumUS(), b.TotalUS())
	}
}

func TestAnalyzeAbortedWhileParked(t *testing.T) {
	bs := Analyze([]Event{
		evt(0, 4, EvSubmit, WriterClient, 0),
		evt(2, 4, EvEnqueueCentral, WriterDispatcher, 0),
		evt(4, 4, EvStart, 0, 1),
		evt(30, 4, EvYield, 0, 0),
		evt(90, 4, EvAbort, WriterDispatcher, StatusStopped),
	})
	b := bs[0]
	if b.ServiceUS != 26 || b.PreemptedUS != 60 {
		t.Fatalf("aborted breakdown = %+v (final parked interval must land in Preempted)", b)
	}
	if math.Abs(b.SumUS()-b.TotalUS()) > 1e-9 {
		t.Fatalf("sum %v != total %v", b.SumUS(), b.TotalUS())
	}
}

func TestAnalyzeInFlightOmittedAndOrdering(t *testing.T) {
	events := append(preemptedLifecycle(1),
		evt(200, 2, EvSubmit, WriterClient, 0), // still in flight
		evt(90, 5, EvSubmit, WriterClient, 0),
		evt(95, 5, EvEnqueueCentral, WriterDispatcher, 0),
		evt(96, 5, EvStart, 0, 1),
		evt(99, 5, EvComplete, 0, StatusOK),
	)
	bs := Analyze(events)
	if len(bs) != 2 {
		t.Fatalf("got %d breakdowns, want 2 (in-flight omitted)", len(bs))
	}
	if bs[0].Req != 1 || bs[1].Req != 5 {
		t.Fatalf("not ordered by completion: %v, %v", bs[0].Req, bs[1].Req)
	}
}

func TestAnalyzePartial(t *testing.T) {
	// Wraparound lost the submit: first event is a resume.
	bs := Analyze([]Event{
		evt(60, 9, EvResume, 1, 2),
		evt(80, 9, EvComplete, 1, StatusOK),
	})
	if len(bs) != 1 || !bs[0].Partial {
		t.Fatalf("partial request mishandled: %+v", bs)
	}
	if bs[0].ServiceUS != 20 {
		t.Fatalf("partial service = %v", bs[0].ServiceUS)
	}
}

func TestWriteTimelines(t *testing.T) {
	events := append(preemptedLifecycle(1), preemptedLifecycle(2)...)
	var b strings.Builder
	n := WriteTimelines(&b, events, 1)
	if n != 1 {
		t.Fatalf("printed %d timelines, want 1", n)
	}
	out := b.String()
	if !strings.Contains(out, "REQ 2 ok") || strings.Contains(out, "REQ 1") {
		t.Fatalf("last-n selection wrong:\n%s", out)
	}
	for _, want := range []string{"submit", "enqueue-central", "dispatch", "start", "preempt-signal", "yield", "requeue", "resume", "complete", "worker 1", "dispatcher", "clients"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	var all strings.Builder
	if n := WriteTimelines(&all, events, 0); n != 2 {
		t.Fatalf("n<=0 should print all timelines, printed %d", n)
	}
}
