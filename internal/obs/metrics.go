// A minimal Prometheus-text-exposition metrics registry. No external
// dependency: counters and gauges are registered as callbacks sampled
// at scrape time, histograms are *trace.Histogram snapshots rendered as
// cumulative le-buckets.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"concord/internal/trace"
)

// SampleFunc is sampled at scrape time for counters and gauges.
type SampleFunc func() float64

type metricKind uint8

const (
	counterMetric metricKind = iota
	gaugeMetric
)

type sampled struct {
	name, help string
	kind       metricKind
	fn         SampleFunc
}

type histEntry struct {
	name, help string
	h          *trace.Histogram
}

// Metrics is a scrape-time registry. Registration is not hot-path;
// scraping takes the registry lock but samples callbacks outside any
// application lock the caller doesn't hold.
type Metrics struct {
	mu      sync.Mutex
	samples []sampled
	hists   []histEntry
}

// RegisterCounter registers a monotonically non-decreasing sample.
func (m *Metrics) RegisterCounter(name, help string, fn SampleFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.samples = append(m.samples, sampled{name, help, counterMetric, fn})
}

// RegisterGauge registers a point-in-time sample.
func (m *Metrics) RegisterGauge(name, help string, fn SampleFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.samples = append(m.samples, sampled{name, help, gaugeMetric, fn})
}

// RegisterHistogram registers a live histogram; scrapes snapshot it.
// Bucket bounds are the histogram's log-2 µs boundaries.
func (m *Metrics) RegisterHistogram(name, help string, h *trace.Histogram) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hists = append(m.hists, histEntry{name, help, h})
}

// baseName strips a {label="..."} suffix for TYPE/HELP lines, so
// several registrations sharing a metric family render one header.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4).
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	samples := append([]sampled(nil), m.samples...)
	hists := append([]histEntry(nil), m.hists...)
	m.mu.Unlock()

	headerDone := map[string]bool{}
	header := func(name, help, typ string) {
		base := baseName(name)
		if headerDone[base] {
			return
		}
		headerDone[base] = true
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", base, help, base, typ)
	}
	for _, s := range samples {
		typ := "counter"
		if s.kind == gaugeMetric {
			typ = "gauge"
		}
		header(s.name, s.help, typ)
		fmt.Fprintf(w, "%s %g\n", s.name, s.fn())
	}
	for _, h := range hists {
		header(h.name, h.help, "histogram")
		snap := h.h.Snapshot()
		cum := 0
		for i, c := range snap.Buckets {
			cum += c
			// Only emit boundaries up to the last non-empty bucket to
			// keep the exposition small; +Inf carries the rest.
			if cum == 0 || (c == 0 && cum == snap.Count) {
				continue
			}
			fmt.Fprintf(w, "%s %d\n", suffixed(h.name, "_bucket", fmt.Sprintf("%g", trace.BucketUpperUS(i))), cum)
		}
		fmt.Fprintf(w, "%s %d\n", suffixed(h.name, "_bucket", "+Inf"), snap.Count)
		fmt.Fprintf(w, "%s %g\n", suffixed(h.name, "_sum", ""), snap.SumUS)
		fmt.Fprintf(w, "%s %d\n", suffixed(h.name, "_count", ""), snap.Count)
	}
}

// suffixed splices a histogram suffix before any label set and, when le
// is non-empty, merges the le label into it:
//
//	suffixed(`h{op="get"}`, "_bucket", "4") = `h_bucket{op="get",le="4"}`
func suffixed(name, suffix, le string) string {
	labels := ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		labels = name[i+1 : len(name)-1]
		name = name[:i]
	}
	if le != "" {
		if labels != "" {
			labels += ","
		}
		labels += `le="` + le + `"`
	}
	if labels == "" {
		return name + suffix
	}
	return name + suffix + "{" + labels + "}"
}

// ServeHTTP makes the registry an http.Handler for /metrics.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.WritePrometheus(w)
}

// sortSamplesForTest orders registrations by name; used by tests to get
// deterministic output regardless of registration order.
func (m *Metrics) sortSamplesForTest() {
	m.mu.Lock()
	defer m.mu.Unlock()
	sort.Slice(m.samples, func(i, j int) bool { return m.samples[i].name < m.samples[j].name })
	sort.Slice(m.hists, func(i, j int) bool { return m.hists[i].name < m.hists[j].name })
}
