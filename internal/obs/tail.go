// TailTracker is the single hook the serving path carries for the
// time-windowed observability layer: one Observe per delivered response
// feeds both the rolling-window latency histogram and the SLO
// burn-rate accounting. The live runtime guards the call with one nil
// check, the same disabled-cost contract as the lifecycle tracer.
package obs

import (
	"sort"
	"time"
)

// DefaultWindows are the rolling horizons surfaced when none are
// configured: the "right now" view, the smoothing view, and the
// minute trend.
func DefaultWindows() []time.Duration {
	return []time.Duration{time.Second, 10 * time.Second, time.Minute}
}

// TailTracker bundles a WindowedHistogram sized to a set of query
// windows with an optional SLOTracker. It is safe for concurrent use.
type TailTracker struct {
	win     *WindowedHistogram
	windows []time.Duration
	slo     *SLOTracker
}

// NewTailTracker builds a tracker for the given query windows (nil
// means DefaultWindows) and an optional SLO. The backing ring's epoch
// is a quarter of the shortest window and its span the longest one;
// the SLO horizons live in the SLOTracker's own (counts-only) ring.
func NewTailTracker(windows []time.Duration, slo *SLOTracker) *TailTracker {
	if len(windows) == 0 {
		windows = DefaultWindows()
	}
	windows = append([]time.Duration(nil), windows...)
	sort.Slice(windows, func(i, j int) bool { return windows[i] < windows[j] })
	return &TailTracker{
		win:     NewWindowedHistogram(windows[0]/4, windows[len(windows)-1]),
		windows: windows,
		slo:     slo,
	}
}

// Windows returns the configured query horizons, ascending.
func (t *TailTracker) Windows() []time.Duration { return t.windows }

// SLO returns the tracker's SLO accounting, or nil.
func (t *TailTracker) SLO() *SLOTracker { return t.slo }

// Window returns the backing rolling histogram.
func (t *TailTracker) Window() *WindowedHistogram { return t.win }

// Observe accounts one delivered response.
func (t *TailTracker) Observe(latency time.Duration, ok bool) {
	t.win.ObserveDuration(latency)
	if t.slo != nil {
		t.slo.Observe(latency, ok)
	}
}

// ObserveRejected accounts a rejected submission as an SLO-bad event
// without touching the latency window: the request was never served,
// so it has no meaningful latency, but it certainly did not meet the
// objective.
func (t *TailTracker) ObserveRejected() {
	if t.slo != nil {
		t.slo.Observe(0, false)
	}
}

// Quantile estimates the q-quantile in µs over the trailing window.
func (t *TailTracker) Quantile(window time.Duration, q float64) float64 {
	return t.win.Quantile(window, q)
}
