package obs

import (
	"net/http/httptest"
	"strings"
	"testing"

	"concord/internal/trace"
)

func TestWritePrometheus(t *testing.T) {
	m := &Metrics{}
	m.RegisterCounter("concord_submitted_total", "requests accepted", func() float64 { return 42 })
	m.RegisterGauge(`concord_queue_depth{queue="central"}`, "live queue occupancy", func() float64 { return 3 })
	m.RegisterGauge(`concord_queue_depth{queue="submit"}`, "live queue occupancy", func() float64 { return 1 })
	var h trace.Histogram
	h.ObserveUS(0.5) // bucket 0, le=1
	h.ObserveUS(3)   // bucket 2, le=4
	h.ObserveUS(3)
	m.RegisterHistogram(`concord_request_us{op="get",component="total"}`, "per-op latency", &h)
	m.sortSamplesForTest()

	var b strings.Builder
	m.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# HELP concord_submitted_total requests accepted",
		"# TYPE concord_submitted_total counter",
		"concord_submitted_total 42",
		"# TYPE concord_queue_depth gauge",
		`concord_queue_depth{queue="central"} 3`,
		`concord_queue_depth{queue="submit"} 1`,
		"# TYPE concord_request_us histogram",
		`concord_request_us_bucket{op="get",component="total",le="1"} 1`,
		`concord_request_us_bucket{op="get",component="total",le="4"} 3`,
		`concord_request_us_bucket{op="get",component="total",le="+Inf"} 3`,
		`concord_request_us_sum{op="get",component="total"} 6.5`,
		`concord_request_us_count{op="get",component="total"} 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// The shared family header must appear exactly once.
	if strings.Count(out, "# TYPE concord_queue_depth gauge") != 1 {
		t.Fatalf("family header duplicated:\n%s", out)
	}
	// Cumulative monotonicity: le=2 bucket (empty) is elided, not reset.
	if strings.Contains(out, `le="2"} 0`) {
		t.Fatalf("empty mid-bucket should carry cumulative count:\n%s", out)
	}
}

func TestMetricsServeHTTP(t *testing.T) {
	m := &Metrics{}
	m.RegisterCounter("x_total", "x", func() float64 { return 1 })
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}
