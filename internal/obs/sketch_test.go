package obs

import (
	"math"
	"sort"
	"sync"
	"testing"

	"concord/internal/sim"
)

// exactQuantile returns the empirical q-quantile of vals (nearest-rank).
func exactQuantile(vals []float64, q float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// The acceptance contract: sketch quantiles within 5% of exact
// quantiles on known distributions. The sketch's bucket geometry bounds
// the error at 2^(1/16)−1 ≈ 4.4%, so 5% must hold across distribution
// shapes and quantile ranks.
func TestSketchQuantileAccuracy(t *testing.T) {
	rng := sim.NewRNG(42)
	dists := map[string]func() float64{
		"fixed":     func() float64 { return 12_345 },
		"exp":       func() float64 { return rng.Exp(50_000) },
		"lognormal": func() float64 { return rng.Lognormal(math.Log(20_000), 1.5) },
		"pareto":    func() float64 { return rng.Pareto(1_000, 1.2) },
	}
	for name, draw := range dists {
		var sk QuantileSketch
		vals := make([]float64, 0, 20000)
		for i := 0; i < 20000; i++ {
			v := draw()
			vals = append(vals, v)
			sk.Observe(int64(v))
		}
		snap := sk.Snapshot()
		if snap.Count != 20000 {
			t.Fatalf("%s: count = %d, want 20000", name, snap.Count)
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			exact := exactQuantile(vals, q)
			got := snap.QuantileNS(q)
			if relErr := math.Abs(got-exact) / exact; relErr > 0.05 {
				t.Errorf("%s p%g: sketch %.0f vs exact %.0f (rel err %.2f%% > 5%%)",
					name, q*100, got, exact, relErr*100)
			}
		}
	}
}

func TestSketchMean(t *testing.T) {
	var sk QuantileSketch
	for _, v := range []int64{100, 200, 300} {
		sk.Observe(v)
	}
	if m := sk.Snapshot().MeanNS(); m != 200 {
		t.Fatalf("mean = %v, want 200 (means are exact, not bucketed)", m)
	}
}

func TestSketchEmptyAndClamping(t *testing.T) {
	var sk QuantileSketch
	if q := sk.Snapshot().QuantileNS(0.99); !math.IsNaN(q) {
		t.Fatalf("empty sketch quantile = %v, want NaN", q)
	}
	sk.Observe(0)
	sk.Observe(-5)
	snap := sk.Snapshot()
	if snap.Count != 2 {
		t.Fatalf("non-positive observations must count: count = %d", snap.Count)
	}
	if snap.Buckets[0] != 2 {
		t.Fatalf("non-positive observations must clamp into bucket 0, got %v", snap.Buckets)
	}
}

// Merging two sketches' snapshots must equal a single sketch that saw
// the union of the observations — the per-worker aggregation contract.
func TestSketchMerge(t *testing.T) {
	rng := sim.NewRNG(7)
	var a, b, union QuantileSketch
	for i := 0; i < 5000; i++ {
		v := int64(rng.Exp(30_000))
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		union.Observe(v)
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	want := union.Snapshot()
	if merged != want {
		t.Fatal("merged snapshot differs from union sketch")
	}
}

// Concurrent observation must lose nothing (the sketch is the
// completion path's estimator: every executor feeds it in parallel).
func TestSketchConcurrent(t *testing.T) {
	var sk QuantileSketch
	const writers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sk.Observe(int64(1000 + w*100 + i))
			}
		}()
	}
	wg.Wait()
	if c := sk.Snapshot().Count; c != writers*per {
		t.Fatalf("count = %d, want %d", c, writers*per)
	}
}

func TestClassSketchesObserve(t *testing.T) {
	cs := NewClassSketches(4)
	// Class 1: 10µs service with exact hints; class 2: 100µs with 10×
	// overshooting hints; out-of-range class folds into 0.
	for i := 0; i < 100; i++ {
		cs.Observe(1, 10_000, 10_000)
		cs.Observe(2, 100_000, 1_000_000)
		cs.Observe(99, 5_000, 0)
	}
	if got := cs.ServiceQuantileNS(1, 0.5); math.Abs(got-10_000)/10_000 > 0.05 {
		t.Errorf("class 1 p50 = %v, want ≈10000", got)
	}
	if got := cs.ServiceQuantileNS(2, 0.5); math.Abs(got-100_000)/100_000 > 0.05 {
		t.Errorf("class 2 p50 = %v, want ≈100000", got)
	}
	if got := cs.ServiceQuantileNS(0, 0.5); math.Abs(got-5_000)/5_000 > 0.05 {
		t.Errorf("out-of-range class must fold into class 0: p50 = %v, want ≈5000", got)
	}
	if got := cs.ServiceQuantileNS(3, 0.5); got != 0 {
		t.Errorf("class with no data must report 0, got %v", got)
	}
	// Hint-error: class 1 sits at the exact-hint mark, class 2 at 10×
	// over; unhinted class-0 observations record no ratio at all.
	if p50 := cs.HintError(1).Quantile(0.5); math.Abs(p50-HintErrorScale)/HintErrorScale > 0.5 {
		t.Errorf("class 1 hint-error p50 = %v, want ≈%d (exact hints)", p50, HintErrorScale)
	}
	if p50 := cs.HintError(2).Quantile(0.5); p50 < 5*HintErrorScale {
		t.Errorf("class 2 hint-error p50 = %v, want ≥%d (10× overshoot)", p50, 5*HintErrorScale)
	}
	if n := cs.HintError(0).Count(); n != 0 {
		t.Errorf("unhinted observations must not feed hint-error: count = %d", n)
	}
	qs := cs.ServiceQuantilesNS(0.5)
	if len(qs) != 4 || qs[3] != 0 || qs[1] == 0 {
		t.Errorf("ServiceQuantilesNS = %v", qs)
	}
}
