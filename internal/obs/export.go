// Exporters: Chrome trace_event JSON (loadable in Perfetto or
// chrome://tracing) and plain-text per-request timelines.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// shardTIDBase offsets dispatcher shards ≥ 1 into their own Chrome
// thread-id range, far above any plausible worker count, so the
// historical worker tids (2+w) never collide with shard dispatchers.
const shardTIDBase = 1 << 16

// tid maps a writer id onto a stable Chrome thread id: clients/ingress
// on 0, the shard-0 dispatcher on 1, worker w on 2+w, dispatcher shard
// s ≥ 1 on shardTIDBase+s, and the network frontend on 2*shardTIDBase.
func tid(writer int) int {
	switch {
	case writer == WriterClient:
		return 0
	case writer == WriterDispatcher:
		return 1
	case writer == WriterNet:
		return 2 * shardTIDBase
	case writer <= -3:
		return shardTIDBase + dispatcherShard(writer)
	default:
		return 2 + writer
	}
}

func tidName(writer int) string {
	switch {
	case writer == WriterClient:
		return "clients"
	case writer == WriterDispatcher:
		return "dispatcher"
	case writer == WriterNet:
		return "net"
	case writer <= -3:
		return fmt.Sprintf("dispatcher %d", dispatcherShard(writer))
	default:
		return fmt.Sprintf("worker %d", writer)
	}
}

// chromeEvent is one trace_event entry. Field order is fixed by the
// struct so the export is byte-deterministic for a given event stream
// (json.Marshal also sorts the Args map keys).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds since tracer epoch
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   *uint64        `json:"id,omitempty"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const chromePID = 1

// WriteChromeTrace renders a time-ordered event stream (from
// Tracer.Snapshot) as Chrome trace_event JSON. Each request becomes a
// nestable async span ("b"/"e") keyed by its id, each running interval
// becomes a complete slice ("X") on the executing worker's thread, and
// every raw event is also emitted as a thread-scoped instant so the
// full lifecycle is visible in Perfetto.
func WriteChromeTrace(w io.Writer, events []Event) error {
	var out []chromeEvent

	// Thread-name metadata for every writer that appears, in tid order.
	seen := map[int]bool{}
	for _, e := range events {
		seen[e.Ring] = true
	}
	for _, writer := range []int{WriterClient, WriterDispatcher, WriterNet} {
		if seen[writer] {
			out = append(out, metaThread(writer))
			delete(seen, writer)
		}
	}
	var shardWriters []int
	for w := range seen {
		if w <= -3 {
			shardWriters = append(shardWriters, w)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(shardWriters))) // -3, -4, … = shard 1, 2, …
	for _, w := range shardWriters {
		out = append(out, metaThread(w))
		delete(seen, w)
	}
	for wkr := 0; ; wkr++ {
		if len(seen) == 0 {
			break
		}
		if seen[wkr] {
			out = append(out, metaThread(wkr))
			delete(seen, wkr)
		}
	}

	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

	byReq, ids := group(events)
	for _, id := range ids {
		evs := byReq[id]
		reqID := id
		spanName := fmt.Sprintf("req %d", id)
		// Async span covering the request's lifetime in this snapshot.
		out = append(out, chromeEvent{
			Name: spanName, Cat: "request", Ph: "b",
			TS: us(evs[0].TS), PID: chromePID, TID: tid(evs[0].Ring), ID: &reqID,
		})
		var runStart time.Duration
		var runRing int
		running := false
		for _, e := range evs {
			switch e.Kind {
			case EvStart, EvResume:
				running, runStart, runRing = true, e.TS, e.Ring
			case EvYield, EvComplete, EvExpire, EvAbort:
				if running {
					running = false
					dur := us(e.TS - runStart)
					out = append(out, chromeEvent{
						Name: "run", Cat: "service", Ph: "X",
						TS: us(runStart), Dur: &dur,
						PID: chromePID, TID: tid(runRing),
						Args: map[string]any{"req": reqID},
					})
				}
			}
			out = append(out, chromeEvent{
				Name: e.Kind.String(), Cat: "event", Ph: "i",
				TS: us(e.TS), PID: chromePID, TID: tid(e.Ring), S: "t",
				Args: map[string]any{"arg": e.Arg, "req": reqID},
			})
		}
		out = append(out, chromeEvent{
			Name: spanName, Cat: "request", Ph: "e",
			TS: us(evs[len(evs)-1].TS), PID: chromePID, TID: tid(evs[len(evs)-1].Ring), ID: &reqID,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ns"})
}

func metaThread(writer int) chromeEvent {
	return chromeEvent{
		Name: "thread_name", Ph: "M", PID: chromePID, TID: tid(writer),
		Args: map[string]any{"name": tidName(writer)},
	}
}

// WriteTimelines prints the last n completed requests (all of them when
// n <= 0) as plain-text timelines with their component breakdowns, and
// returns how many it printed.
func WriteTimelines(w io.Writer, events []Event, n int) int {
	byReq, _ := group(events)
	breakdowns := Analyze(events)
	if n > 0 && len(breakdowns) > n {
		breakdowns = breakdowns[len(breakdowns)-n:]
	}
	for _, b := range breakdowns {
		partial := ""
		if b.Partial {
			partial = " partial"
		}
		fmt.Fprintf(w, "REQ %d %s%s total=%.1fus ingress=%.1fus handoff=%.1fus queue=%.1fus service=%.1fus preempted=%.1fus egress=%.1fus preempts=%d\n",
			b.Req, b.OutcomeString(), partial, b.TotalUS(), b.IngressUS, b.HandoffUS, b.QueueUS, b.ServiceUS, b.PreemptedUS, b.EgressUS, b.Preemptions)
		for _, e := range byReq[b.Req] {
			fmt.Fprintf(w, "  +%.1fus %-15s %s arg=%d\n",
				float64(e.TS-b.SubmitTS)/float64(time.Microsecond), e.Kind.String(), tidName(e.Ring), e.Arg)
		}
	}
	return len(breakdowns)
}
