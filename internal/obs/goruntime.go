// Runtime health surface: concord_go_* families sampled from
// runtime/metrics at scrape time, plus a concord_build_info gauge, so a
// tail excursion can be attributed to the Go runtime (GC pause,
// scheduler latency, goroutine population, heap growth) rather than to
// the scheduling layers. Sampling happens only when /metrics is
// scraped; nothing here touches the request hot path.
package obs

import (
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	rtm "runtime/metrics"
)

// goQuantiles are the per-histogram quantile gauges exported for the
// runtime's Float64Histogram metrics (GC pauses, sched latencies).
var goQuantiles = []float64{0.5, 0.99}

// RegisterGoRuntime registers the concord_go_* families on m. Metrics
// the running toolchain does not export are skipped, so the set adapts
// to the Go version without build tags.
func RegisterGoRuntime(m *Metrics) {
	exists := map[string]bool{}
	for _, d := range rtm.All() {
		exists[d.Name] = true
	}
	firstExisting := func(names ...string) string {
		for _, n := range names {
			if exists[n] {
				return n
			}
		}
		return ""
	}

	gauge := func(pname, help, rname string) {
		if exists[rname] {
			m.RegisterGauge(pname, help, sampleScalar(rname))
		}
	}
	counter := func(pname, help, rname string) {
		if exists[rname] {
			m.RegisterCounter(pname, help, sampleScalar(rname))
		}
	}
	histGauges := func(pname, help string, rnames ...string) {
		rname := firstExisting(rnames...)
		if rname == "" {
			return
		}
		for _, q := range goQuantiles {
			m.RegisterGauge(fmt.Sprintf("%s{quantile=%q}", pname, fmt.Sprintf("%g", q)),
				help, sampleHistQuantile(rname, q))
		}
	}

	gauge("concord_go_goroutines", "Live goroutine count.", "/sched/goroutines:goroutines")
	gauge("concord_go_gomaxprocs", "GOMAXPROCS at last scrape.", "/sched/gomaxprocs:threads")
	gauge("concord_go_heap_live_bytes", "Bytes occupied by live heap objects.", "/memory/classes/heap/objects:bytes")
	gauge("concord_go_heap_goal_bytes", "Heap size target of the next GC cycle.", "/gc/heap/goal:bytes")
	counter("concord_go_gc_cycles_total", "Completed GC cycles.", "/gc/cycles/total:gc-cycles")
	histGauges("concord_go_gc_pause_us", "Distribution of GC stop-the-world pause latencies (microseconds).",
		"/sched/pauses/total/gc:seconds", "/gc/pauses:seconds")
	histGauges("concord_go_sched_latency_us", "Distribution of goroutine scheduling latencies (microseconds).",
		"/sched/latencies:seconds")
}

// RegisterBuildInfo registers the concord_build_info gauge: constant 1,
// with the build's version (module version or VCS revision) and the Go
// toolchain as labels.
func RegisterBuildInfo(m *Metrics) {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			version = v
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				version = s.Value[:12]
			}
		}
	}
	m.RegisterGauge(fmt.Sprintf("concord_build_info{version=%q,goversion=%q}", version, runtime.Version()),
		"Build metadata; constant 1.", func() float64 { return 1 })
}

// sampleScalar reads one runtime/metrics sample per scrape. The small
// per-call slice keeps concurrent scrapes race-free.
func sampleScalar(rname string) SampleFunc {
	return func() float64 {
		s := []rtm.Sample{{Name: rname}}
		rtm.Read(s)
		switch s[0].Value.Kind() {
		case rtm.KindUint64:
			return float64(s[0].Value.Uint64())
		case rtm.KindFloat64:
			return s[0].Value.Float64()
		}
		return 0
	}
}

// sampleHistQuantile reads a Float64Histogram metric (unit: seconds)
// and reports the q-quantile in microseconds.
func sampleHistQuantile(rname string, q float64) SampleFunc {
	return func() float64 {
		s := []rtm.Sample{{Name: rname}}
		rtm.Read(s)
		if s[0].Value.Kind() != rtm.KindFloat64Histogram {
			return 0
		}
		return histQuantileSeconds(s[0].Value.Float64Histogram(), q) * 1e6
	}
}

// histQuantileSeconds approximates a quantile of a runtime
// Float64Histogram as the upper bound of the bucket containing it
// (lower bound for the +Inf-capped last bucket). Zero when empty.
func histQuantileSeconds(h *rtm.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			// Bucket i spans Buckets[i]..Buckets[i+1].
			if up := h.Buckets[i+1]; !math.IsInf(up, 1) {
				return up
			}
			if lo := h.Buckets[i]; !math.IsInf(lo, -1) {
				return lo
			}
			return 0
		}
	}
	return 0
}
