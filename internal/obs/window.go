// Time-windowed tail estimation: a rolling latency histogram built from
// a ring of rotating trace.Histogram epochs. Cumulative histograms
// answer "what has the tail been since process start"; WindowedHistogram
// answers "what is p99.9 *right now*" — the real-time estimate that
// microsecond-scale scheduling decisions (RackSched, LibPreemptible) and
// SLO burn-rate accounting both need.
package obs

import (
	"math"
	"sync"
	"time"

	"concord/internal/trace"
)

// procStart anchors the package's monotonic clock; readings are
// nanoseconds since an arbitrary epoch and never go backwards.
var procStart = time.Now()

// monotonicNS is the default clock for windowed estimators.
func monotonicNS() int64 { return int64(time.Since(procStart)) }

// winEpoch is one rotation slot: the absolute epoch number it currently
// holds (-1 when never used) and that epoch's observations. Slots are
// reused in place — rotation resets a stale slot rather than allocating,
// so the steady state allocates nothing.
type winEpoch struct {
	num  int64
	hist trace.Histogram
}

// WindowedHistogram is a rolling log-2 latency histogram: observations
// land in the epoch covering "now", and a window snapshot merges the
// epochs spanning the window, dropping anything older. Epochs stale
// after an idle gap are discarded lazily on reuse, so idle periods cost
// nothing and never leak old samples into fresh windows.
//
// The estimate is conservative in time: a window of W merges the
// ceil(W/epoch) most recent epochs including the partially-filled
// current one, so it covers between W-epoch and W of history (mean
// W-epoch/2). Choose the epoch duration a small fraction of the
// shortest window queried (NewTailTracker uses a quarter).
//
// It is safe for concurrent use.
type WindowedHistogram struct {
	mu      sync.Mutex
	epochNS int64
	ring    []winEpoch
	now     func() int64 // monotonic ns; injected by tests
}

// NewWindowedHistogram returns a rolling histogram with the given epoch
// granularity covering at least span of history. Epoch is clamped to
// ≥1ms; span to ≥epoch.
func NewWindowedHistogram(epoch, span time.Duration) *WindowedHistogram {
	if epoch < time.Millisecond {
		epoch = time.Millisecond
	}
	if span < epoch {
		span = epoch
	}
	// +1 slot so the current partial epoch never evicts a slot still
	// inside the longest window.
	n := int(span/epoch) + 1
	w := &WindowedHistogram{epochNS: int64(epoch), ring: make([]winEpoch, n), now: monotonicNS}
	for i := range w.ring {
		w.ring[i].num = -1
	}
	return w
}

// Epoch returns the rotation granularity.
func (w *WindowedHistogram) Epoch() time.Duration { return time.Duration(w.epochNS) }

// Span returns the longest history the ring can cover.
func (w *WindowedHistogram) Span() time.Duration {
	return time.Duration(int64(len(w.ring)-1) * w.epochNS)
}

// slot returns the ring slot for absolute epoch e, resetting it in
// place if it still holds an older epoch. Callers hold w.mu.
func (w *WindowedHistogram) slot(e int64) *winEpoch {
	s := &w.ring[e%int64(len(w.ring))]
	if s.num != e {
		s.hist.Reset()
		s.num = e
	}
	return s
}

// ObserveUS adds one latency observation in µs to the current epoch.
func (w *WindowedHistogram) ObserveUS(us float64) {
	w.mu.Lock()
	w.slot(w.now() / w.epochNS).hist.ObserveUS(us)
	w.mu.Unlock()
}

// ObserveDuration adds one latency observation to the current epoch.
func (w *WindowedHistogram) ObserveDuration(d time.Duration) {
	w.ObserveUS(float64(d) / float64(time.Microsecond))
}

// WindowSnapshot merges the epochs covering the trailing window into
// one snapshot. A window longer than Span() is clamped to it; an idle
// window yields an empty snapshot (Count 0, NaN quantiles).
func (w *WindowedHistogram) WindowSnapshot(window time.Duration) trace.HistSnapshot {
	k := (int64(window) + w.epochNS - 1) / w.epochNS
	if k < 1 {
		k = 1
	}
	if max := int64(len(w.ring)); k > max {
		k = max
	}
	var merged trace.Histogram
	w.mu.Lock()
	e := w.now() / w.epochNS
	for i := e - k + 1; i <= e; i++ {
		if i < 0 {
			continue
		}
		s := &w.ring[i%int64(len(w.ring))]
		if s.num == i {
			merged.Merge(s.hist.Snapshot())
		}
	}
	w.mu.Unlock()
	return merged.Snapshot()
}

// Quantile estimates the q-quantile (q in [0,1]) in µs over the
// trailing window; NaN when the window holds no observations.
func (w *WindowedHistogram) Quantile(window time.Duration, q float64) float64 {
	return w.WindowSnapshot(window).Quantile(q)
}

// Rate returns the observation throughput over the trailing window in
// events/second (count divided by the window, so a partially idle
// window reads low rather than extrapolating).
func (w *WindowedHistogram) Rate(window time.Duration) float64 {
	if window <= 0 {
		return math.NaN()
	}
	return float64(w.WindowSnapshot(window).Count) / window.Seconds()
}
