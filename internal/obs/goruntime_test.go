package obs

import (
	"math"
	"runtime"
	rtm "runtime/metrics"
	"strings"
	"testing"
)

// TestRegisterGoRuntime: the health families register and scrape to
// plausible values — at least one goroutine is alive (this test's), and
// GOMAXPROCS is at least 1.
func TestRegisterGoRuntime(t *testing.T) {
	m := &Metrics{}
	RegisterGoRuntime(m)
	var sb strings.Builder
	m.WritePrometheus(&sb)
	out := sb.String()
	for _, family := range []string{
		"concord_go_goroutines", "concord_go_gomaxprocs",
		"concord_go_heap_live_bytes", "concord_go_heap_goal_bytes",
		"concord_go_gc_cycles_total",
		"concord_go_gc_pause_us", "concord_go_sched_latency_us",
	} {
		if !strings.Contains(out, "# TYPE "+family+" ") {
			t.Errorf("/metrics missing %q:\n%s", family, out)
		}
	}
	for _, series := range []string{
		`concord_go_gc_pause_us{quantile="0.5"}`,
		`concord_go_gc_pause_us{quantile="0.99"}`,
		`concord_go_sched_latency_us{quantile="0.5"}`,
	} {
		if !strings.Contains(out, series) {
			t.Errorf("/metrics missing quantile series %q", series)
		}
	}
	if v := sampleScalar("/sched/goroutines:goroutines")(); v < 1 {
		t.Errorf("goroutines = %v, want >= 1", v)
	}
	if v := sampleScalar("/sched/gomaxprocs:threads")(); v < 1 {
		t.Errorf("gomaxprocs = %v, want >= 1", v)
	}
}

// TestRegisterBuildInfo: the gauge carries a goversion label matching
// the running toolchain and reads 1.
func TestRegisterBuildInfo(t *testing.T) {
	m := &Metrics{}
	RegisterBuildInfo(m)
	var sb strings.Builder
	m.WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, "# TYPE concord_build_info gauge") {
		t.Fatalf("build info family missing:\n%s", out)
	}
	if !strings.Contains(out, `goversion="`+runtime.Version()+`"`) {
		t.Fatalf("goversion label missing:\n%s", out)
	}
	if !strings.Contains(out, "} 1\n") {
		t.Fatalf("build info gauge must read 1:\n%s", out)
	}
}

// TestHistQuantileSeconds: bucket-upper-bound approximation with
// explicit Counts/Buckets, including the ±Inf edge buckets runtime
// histograms carry.
func TestHistQuantileSeconds(t *testing.T) {
	h := &rtm.Float64Histogram{
		// Bucket spans: [-Inf,1e-6) [1e-6,1e-5) [1e-5,1e-4) [1e-4,+Inf)
		Counts:  []uint64{10, 80, 9, 1},
		Buckets: []float64{math.Inf(-1), 1e-6, 1e-5, 1e-4, math.Inf(1)},
	}
	if got := histQuantileSeconds(h, 0.5); got != 1e-5 {
		t.Errorf("p50 = %v, want 1e-5 (upper bound of the median bucket)", got)
	}
	if got := histQuantileSeconds(h, 0.99); got != 1e-4 {
		t.Errorf("p99 = %v, want 1e-4 (lower bound of the +Inf bucket)", got)
	}
	if got := histQuantileSeconds(h, 0.0); got != 1e-6 {
		t.Errorf("p0 = %v, want 1e-6", got)
	}
	empty := &rtm.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}
	if got := histQuantileSeconds(empty, 0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}
