// Package obs is the always-on observability layer for the live
// Concord runtime: per-writer fixed-size ring buffers that record
// timestamped request-lifecycle events without allocating or taking
// shared locks on the hot path, a snapshot API that merges the rings
// into one time-ordered trace, breakdown analysis that attributes each
// request's latency to queueing / service / preemption / dispatcher
// hand-off, exporters for Chrome trace_event JSON (Perfetto) and plain
// text timelines, and a small Prometheus-text metrics registry.
//
// # Ring design
//
// Each writer (one per worker, one per dispatcher shard, one shared by
// client goroutines calling Submit) owns a power-of-two ring of slots.
// A writer claims a ticket with one atomic fetch-add, marks the slot
// odd (write in progress), stores the payload, then publishes the slot
// with the even sequence value 2*(ticket+1). Readers never block
// writers: Snapshot validates each slot's sequence before and after
// copying it and simply drops slots that were concurrently overwritten.
// All slot accesses are atomic, so the scheme is race-detector clean.
// When the runtime is built with tracing disabled (a nil *Tracer), the
// cost at every instrumentation point is one predictable nil-check
// branch.
package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// Kind identifies one request lifecycle transition.
type Kind uint8

// Lifecycle event kinds, in rough lifecycle order.
const (
	EvSubmit         Kind = 1 + iota // client called Submit
	EvReject                         // never accepted (arg: Status*)
	EvEnqueueCentral                 // dispatcher ingested into central FIFO
	EvDispatch                       // JBSQ push to a worker (arg: worker)
	EvStart                          // first CPU hand-off; goroutine begins
	EvPreemptSignal                  // dispatcher wrote a preemption flag (arg: worker)
	EvYield                          // request parked at a Poll
	EvRequeue                        // worker re-submitted a preempted request
	EvResume                         // subsequent CPU hand-off
	EvExpire                         // completed with ErrDeadlineExceeded
	EvAbort                          // completed with ErrServerStopped
	EvComplete                       // completed normally (arg: Status*)

	// Wire-path events recorded by the network frontend (writer
	// WriterNet). FrameRead/Parsed are stamped before the request has a
	// runtime id, so the frontend carries the timestamps on the request
	// and the runtime records them retroactively at Submit (RecordAt).
	EvFrameRead   // frame (or text line) read off the socket
	EvParsed      // frame decoded into a request
	EvFlushQueued // completion handed to the connection flusher
	EvFlushed     // response bytes written to the socket (arg: batch size)

	kindMax
)

var kindNames = [kindMax]string{
	EvSubmit:         "submit",
	EvReject:         "reject",
	EvEnqueueCentral: "enqueue-central",
	EvDispatch:       "dispatch",
	EvStart:          "start",
	EvPreemptSignal:  "preempt-signal",
	EvYield:          "yield",
	EvRequeue:        "requeue",
	EvResume:         "resume",
	EvExpire:         "expire",
	EvAbort:          "abort",
	EvComplete:       "complete",
	EvFrameRead:      "frame-read",
	EvParsed:         "parsed",
	EvFlushQueued:    "flush-queued",
	EvFlushed:        "flushed",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Terminal reports whether k ends a request's lifecycle.
func (k Kind) Terminal() bool {
	switch k {
	case EvReject, EvExpire, EvAbort, EvComplete:
		return true
	}
	return false
}

// Status codes carried in the arg of terminal events.
const (
	StatusOK int64 = iota
	StatusDeadline
	StatusStopped
	StatusError
	StatusQueueFull
	// StatusShed marks a sheddable request dropped by class admission
	// control (live.ErrShed) — shed by policy, not out of room.
	StatusShed
)

// Writer ids for the non-worker rings. Worker w writes ring w.
// WriterNet sits far outside the dispatcher-shard id space -(s+2), which
// grows downward from -3.
const (
	WriterDispatcher = -1
	WriterClient     = -2
	WriterNet        = -(1 << 20) // network frontend (reader loops + flushers)
)

// DispatcherWriter returns the writer id for dispatcher shard s. Shard
// 0 is WriterDispatcher, so single-shard servers keep the historical
// id; shard s ≥ 1 maps to -(s+2), below WriterClient. Each shard's
// dispatcher goroutine is a distinct writer and must own its own ring.
func DispatcherWriter(s int) int {
	if s == 0 {
		return WriterDispatcher
	}
	return -(s + 2)
}

// dispatcherShard inverts DispatcherWriter; -1 when the writer is not a
// dispatcher.
func dispatcherShard(writer int) int {
	switch {
	case writer == WriterDispatcher:
		return 0
	case writer <= -3 && writer != WriterNet:
		return -writer - 2
	}
	return -1
}

// Event is one decoded lifecycle event.
type Event struct {
	TS   time.Duration // since the tracer's epoch
	Req  uint64
	Kind Kind
	Ring int   // writer: worker index, WriterDispatcher, or WriterClient
	Arg  int64 // kind-specific: worker id, status code, epoch
}

const argBits = 56

// slot is one seqlock-protected ring entry. Every field is atomic so
// concurrent reads during an overwrite are races only in the benign,
// detected-and-discarded sense, not in the memory-model sense.
type slot struct {
	seq  atomic.Uint64 // 2*(ticket+1) when published, odd while writing
	ts   atomic.Int64
	req  atomic.Uint64
	meta atomic.Uint64 // kind<<argBits | arg
}

// ring is one writer's buffer. pos is padded onto its own cache line so
// independent writers never false-share their claim counters.
type ring struct {
	pos   atomic.Uint64
	_     [56]byte
	slots []slot
}

func (r *ring) record(ts int64, kind Kind, req uint64, arg int64) {
	n := r.pos.Add(1) - 1
	s := &r.slots[n&uint64(len(r.slots)-1)]
	s.seq.Store(2*(n+1) - 1) // mark write in progress
	s.ts.Store(ts)
	s.req.Store(req)
	s.meta.Store(uint64(kind)<<argBits | uint64(arg)&(1<<argBits-1))
	s.seq.Store(2 * (n + 1)) // publish
}

// Tracer owns the per-writer rings. Create one with NewTracer (or
// NewTracerSharded for a multi-shard server) and hand it to
// live.Options.Tracer; Workers and Shards must match the server's.
type Tracer struct {
	epoch   time.Time
	workers int
	shards  int
	rings   []*ring // workers, then one per dispatcher shard, then client, then net
}

// NewTracer builds a tracer for a single-dispatcher server with the
// given worker count. ringSize is the per-writer capacity in events,
// rounded up to a power of two; <=0 selects the default 4096.
func NewTracer(workers, ringSize int) *Tracer {
	return NewTracerSharded(workers, 1, ringSize)
}

// NewTracerSharded builds a tracer for a server with the given worker
// and dispatcher-shard counts: every shard's dispatcher is its own
// writer (the rings are strictly single-writer).
func NewTracerSharded(workers, shards, ringSize int) *Tracer {
	if workers < 1 {
		workers = 1
	}
	if shards < 1 {
		shards = 1
	}
	if ringSize <= 0 {
		ringSize = 4096
	}
	size := 1
	for size < ringSize {
		size <<= 1
	}
	t := &Tracer{epoch: time.Now(), workers: workers, shards: shards}
	t.rings = make([]*ring, workers+shards+2)
	for i := range t.rings {
		t.rings[i] = &ring{slots: make([]slot, size)}
	}
	return t
}

// Workers returns the worker count the tracer was built for.
func (t *Tracer) Workers() int { return t.workers }

// Shards returns the dispatcher-shard count the tracer was built for.
func (t *Tracer) Shards() int { return t.shards }

// ringFor maps a writer id to its ring index.
func (t *Tracer) ringFor(writer int) *ring {
	if writer >= 0 {
		return t.rings[writer]
	}
	switch writer {
	case WriterClient:
		return t.rings[t.workers+t.shards]
	case WriterNet:
		return t.rings[t.workers+t.shards+1]
	}
	return t.rings[t.workers+dispatcherShard(writer)]
}

// Record appends one event to the writer's ring. It never allocates and
// never blocks: one fetch-add plus four atomic stores.
func (t *Tracer) Record(writer int, kind Kind, req uint64, arg int64) {
	t.ringFor(writer).record(int64(time.Since(t.epoch)), kind, req, arg)
}

// RecordAt is Record with an explicit wall-clock timestamp, for events
// observed before the request had a runtime id (the network frontend
// stamps frame-read/parse times on the request and the runtime records
// them retroactively at Submit). Snapshot sorts by timestamp, so
// out-of-order recording is fine.
func (t *Tracer) RecordAt(writer int, kind Kind, req uint64, arg int64, at time.Time) {
	t.ringFor(writer).record(int64(at.Sub(t.epoch)), kind, req, arg)
}

// Snapshot copies every currently valid event out of every ring and
// returns them merged in timestamp order. It is safe to call while
// writers are active; events overwritten mid-copy are dropped.
func (t *Tracer) Snapshot() []Event {
	var out []Event
	for ri, r := range t.rings {
		writer := ri
		switch {
		case ri == t.workers+t.shards+1:
			writer = WriterNet
		case ri == t.workers+t.shards:
			writer = WriterClient
		case ri >= t.workers:
			writer = DispatcherWriter(ri - t.workers)
		}
		size := uint64(len(r.slots))
		pos := r.pos.Load()
		start := uint64(0)
		if pos > size {
			start = pos - size
		}
		for n := start; n < pos; n++ {
			s := &r.slots[n&(size-1)]
			want := 2 * (n + 1)
			if s.seq.Load() != want {
				continue
			}
			ts := s.ts.Load()
			req := s.req.Load()
			meta := s.meta.Load()
			if s.seq.Load() != want {
				continue // overwritten while copying
			}
			out = append(out, Event{
				TS:   time.Duration(ts),
				Req:  req,
				Kind: Kind(meta >> argBits),
				Ring: writer,
				Arg:  int64(meta<<(64-argBits)) >> (64 - argBits),
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}
