package obs

import (
	"math"
	"sync"
	"testing"
	"time"

	"concord/internal/trace"
)

// fakeClock is a hand-advanced monotonic clock for window tests.
type fakeClock struct {
	mu sync.Mutex
	ns int64
}

func (c *fakeClock) now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ns
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.ns += int64(d)
	c.mu.Unlock()
}

func newClockedWindow(epoch, span time.Duration) (*WindowedHistogram, *fakeClock) {
	w := NewWindowedHistogram(epoch, span)
	clk := &fakeClock{}
	w.now = clk.now
	return w, clk
}

func TestWindowedHistogramEmpty(t *testing.T) {
	w, _ := newClockedWindow(250*time.Millisecond, time.Minute)
	s := w.WindowSnapshot(10 * time.Second)
	if s.Count != 0 {
		t.Fatalf("empty window Count = %d", s.Count)
	}
	if q := w.Quantile(10*time.Second, 0.999); !math.IsNaN(q) {
		t.Fatalf("empty window quantile = %v, want NaN", q)
	}
	if r := w.Rate(10 * time.Second); r != 0 {
		t.Fatalf("empty window rate = %v, want 0", r)
	}
}

// TestWindowedHistogramRotation: observations age out of short windows
// while remaining visible in longer ones.
func TestWindowedHistogramRotation(t *testing.T) {
	w, clk := newClockedWindow(250*time.Millisecond, time.Minute)
	for i := 0; i < 100; i++ {
		w.ObserveUS(100)
	}
	clk.advance(2 * time.Second)
	for i := 0; i < 50; i++ {
		w.ObserveUS(3000)
	}

	if got := w.WindowSnapshot(time.Second).Count; got != 50 {
		t.Fatalf("1s window Count = %d, want only the recent 50", got)
	}
	if got := w.WindowSnapshot(10 * time.Second).Count; got != 150 {
		t.Fatalf("10s window Count = %d, want all 150", got)
	}
	// The 1s view must not see the old 100µs mass at all.
	if q := w.Quantile(time.Second, 0.5); q < 2048 || q > 4096 {
		t.Fatalf("1s p50 = %v, want within the 3000µs bucket (2048,4096]", q)
	}
}

// TestWindowedHistogramIdleGap: after an idle gap longer than the span,
// every window is empty again, and stale slots reused after wraparound
// never leak old observations into fresh windows.
func TestWindowedHistogramIdleGap(t *testing.T) {
	w, clk := newClockedWindow(250*time.Millisecond, 10*time.Second)
	for i := 0; i < 100; i++ {
		w.ObserveUS(42)
	}
	clk.advance(time.Hour) // idle gap, many full ring wraparounds
	if got := w.WindowSnapshot(10 * time.Second).Count; got != 0 {
		t.Fatalf("post-gap window Count = %d, want 0 (stale epochs must drop)", got)
	}
	w.ObserveUS(7)
	s := w.WindowSnapshot(10 * time.Second)
	if s.Count != 1 || s.SumUS != 7 {
		t.Fatalf("post-gap observation: Count=%d SumUS=%v, want 1/7", s.Count, s.SumUS)
	}
}

// TestWindowedHistogramIdleGapEpochAliasing: the adversarial idle-gap
// case for lazy slot reuse. The ring addresses slots as epoch mod len,
// so a clock jump of exactly k×len×epoch lands every new epoch on a
// slot whose stale occupant has the *same index* but an older epoch
// number — the one case where a reuse bug would silently alias old
// samples into fresh windows instead of failing loudly. Stale slots
// must be lazily reset on write (slot()) and skipped on read
// (WindowSnapshot's s.num != i check), so merged quantiles carry no
// ghost samples.
func TestWindowedHistogramIdleGapEpochAliasing(t *testing.T) {
	const epoch = 250 * time.Millisecond
	w, clk := newClockedWindow(epoch, 10*time.Second)
	ringLen := len(w.ring)

	// Fill every slot with old 5000µs samples so any leak is visible.
	for i := 0; i < ringLen; i++ {
		w.ObserveUS(5000)
		clk.advance(epoch)
	}

	// Jump the clock by exactly three full ring revolutions: every
	// epoch now aliases a stale slot at the same ring index.
	clk.advance(time.Duration(3*ringLen) * epoch)

	// Read-side laziness: without a single new write, every stale slot
	// must be skipped during the merge.
	if got := w.WindowSnapshot(w.Span()).Count; got != 0 {
		t.Fatalf("full-span window after aliasing jump: Count = %d, want 0", got)
	}

	// Write-side laziness: one new observation resets only its own
	// slot; the merged window must hold exactly that sample, and the
	// quantile must sit in the new sample's bucket, nowhere near the
	// stale 5000µs mass.
	w.ObserveUS(10)
	s := w.WindowSnapshot(w.Span())
	if s.Count != 1 || s.SumUS != 10 {
		t.Fatalf("post-jump window: Count=%d SumUS=%v, want 1/10 (ghost samples leaked)", s.Count, s.SumUS)
	}
	if q := s.Quantile(0.999); q > 16 {
		t.Fatalf("post-jump p99.9 = %vµs, want within the 10µs bucket (stale 5000µs mass leaked)", q)
	}

	// A second partial-gap jump (shorter than the span) must keep the
	// surviving epoch visible and still expose no stale slots.
	clk.advance(4 * time.Second)
	w.ObserveUS(20)
	s = w.WindowSnapshot(w.Span())
	if s.Count != 2 || s.SumUS != 30 {
		t.Fatalf("partial-gap window: Count=%d SumUS=%v, want 2/30", s.Count, s.SumUS)
	}
	// But a window shorter than the partial gap must only see the
	// newest sample.
	if got := w.WindowSnapshot(time.Second); got.Count != 1 || got.SumUS != 20 {
		t.Fatalf("1s window after partial gap: Count=%d SumUS=%v, want 1/20", got.Count, got.SumUS)
	}
}

// TestWindowedHistogramSteadyLoad: under steady load the windowed
// quantiles agree with a cumulative histogram of the same distribution
// (both are log-2 bucketed, so agreement is exact per bucket).
func TestWindowedHistogramSteadyLoad(t *testing.T) {
	w, clk := newClockedWindow(250*time.Millisecond, time.Minute)
	var cum trace.Histogram
	// 20s of steady bimodal load at 100 req/s: 98% at ~10µs, 2% at
	// ~1ms. (2%, not 1%: the tested quantiles must sit in bucket
	// interiors, away from the distribution breakpoint where subsample
	// phase flips the containing bucket.)
	for tick := 0; tick < 200; tick++ {
		for i := 0; i < 10; i++ {
			us := 10.0
			if (tick*10+i)%100 >= 98 {
				us = 1000
			}
			w.ObserveUS(us)
			cum.ObserveUS(us)
		}
		clk.advance(100 * time.Millisecond)
	}
	for _, q := range []float64{0.50, 0.99, 0.999} {
		got := w.Quantile(15*time.Second, q)
		want := cum.Quantile(q)
		// The window holds a large steady subsample of the same
		// distribution: quantiles must land in the same log-2 bucket,
		// i.e. within 2x (and typically much closer).
		if got < want/2 || got > want*2 {
			t.Fatalf("steady-load q%v: windowed %v vs cumulative %v", q, got, want)
		}
	}
	// The full-span view holds every sample still in range; the count
	// over 60s is everything (only 20s elapsed).
	if got, want := w.WindowSnapshot(time.Minute).Count, cum.Count(); got != want {
		t.Fatalf("60s window Count = %d, cumulative = %d", got, want)
	}
}

// TestWindowedHistogramPartialEpochCoverage: a window merges the
// current partial epoch plus enough whole epochs to cover it.
func TestWindowedHistogramPartialEpochCoverage(t *testing.T) {
	w, clk := newClockedWindow(time.Second, time.Minute)
	w.ObserveUS(1) // epoch 0
	clk.advance(1100 * time.Millisecond)
	w.ObserveUS(2) // epoch 1
	// Now at t=1.1s: a 1s window spans epochs 1 and 0... epoch 0 is
	// within ceil(1s/1s)=1 epoch back including current, so only
	// epoch 1 is merged.
	if got := w.WindowSnapshot(time.Second).Count; got != 1 {
		t.Fatalf("1s window Count = %d, want 1 (current epoch only)", got)
	}
	if got := w.WindowSnapshot(2 * time.Second).Count; got != 2 {
		t.Fatalf("2s window Count = %d, want 2", got)
	}
}

func TestWindowedHistogramClamps(t *testing.T) {
	w := NewWindowedHistogram(0, 0)
	if w.Epoch() < time.Millisecond {
		t.Fatalf("epoch not clamped: %v", w.Epoch())
	}
	if len(w.ring) < 2 {
		t.Fatalf("ring too small: %d", len(w.ring))
	}
	// A window far beyond the span is clamped, not a panic.
	w.ObserveUS(5)
	if got := w.WindowSnapshot(time.Hour).Count; got != 1 {
		t.Fatalf("over-span window Count = %d, want 1", got)
	}
}

// TestWindowedHistogramConcurrent exercises concurrent observers and
// readers across rotations under -race.
func TestWindowedHistogramConcurrent(t *testing.T) {
	w := NewWindowedHistogram(time.Millisecond, 50*time.Millisecond)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				w.ObserveUS(float64(i % 1000))
			}
		}(g)
	}
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				w.WindowSnapshot(25 * time.Millisecond)
				w.Quantile(10*time.Millisecond, 0.99)
			}
		}
	}()
	wg.Wait()
	close(stop)
}

func TestTailTrackerDefaults(t *testing.T) {
	tt := NewTailTracker(nil, nil)
	want := DefaultWindows()
	got := tt.Windows()
	if len(got) != len(want) {
		t.Fatalf("Windows() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Windows() = %v, want %v", got, want)
		}
	}
	if tt.SLO() != nil {
		t.Fatal("unexpected SLO tracker")
	}
	if e := tt.Window().Epoch(); e != want[0]/4 {
		t.Fatalf("epoch = %v, want %v", e, want[0]/4)
	}
	tt.Observe(100*time.Microsecond, true)
	if got := tt.Window().WindowSnapshot(time.Minute).Count; got != 1 {
		t.Fatalf("observation not recorded: Count = %d", got)
	}
	if q := tt.Quantile(time.Minute, 0.5); q < 64 || q > 128 {
		t.Fatalf("p50 = %v, want within the 100µs bucket (64,128]", q)
	}
}

func TestTailTrackerWithSLO(t *testing.T) {
	slo := NewSLOTracker(SLOConfig{Target: 200 * time.Microsecond, Objective: 0.99})
	tt := NewTailTracker([]time.Duration{time.Second}, slo)
	tt.Observe(100*time.Microsecond, true)  // good
	tt.Observe(500*time.Microsecond, true)  // bad: over target
	tt.Observe(100*time.Microsecond, false) // bad: errored
	s := slo.Snapshot()
	if s.ShortTotal != 3 || s.ShortGood != 1 {
		t.Fatalf("SLO counts good/total = %d/%d, want 1/3", s.ShortGood, s.ShortTotal)
	}
}
