package obs

import (
	"sync"
	"testing"
	"time"
)

func TestKindStrings(t *testing.T) {
	for k := Kind(1); k < kindMax; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(0).String() != "unknown" || Kind(200).String() != "unknown" {
		t.Fatal("out-of-range kinds should render unknown")
	}
	if !EvComplete.Terminal() || !EvReject.Terminal() || EvYield.Terminal() {
		t.Fatal("Terminal misclassifies")
	}
}

func TestRecordSnapshotRoundTrip(t *testing.T) {
	tr := NewTracer(2, 64)
	tr.Record(0, EvStart, 7, 3)
	tr.Record(1, EvYield, 8, 0)
	tr.Record(WriterDispatcher, EvDispatch, 7, 1)
	tr.Record(WriterClient, EvSubmit, 9, -2)
	evs := tr.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	rings := map[int]bool{}
	for _, e := range evs {
		rings[e.Ring] = true
	}
	for _, want := range []int{0, 1, WriterDispatcher, WriterClient} {
		if !rings[want] {
			t.Fatalf("missing events from writer %d: %+v", want, evs)
		}
	}
	for _, e := range evs {
		if e.Ring == WriterClient {
			if e.Kind != EvSubmit || e.Req != 9 || e.Arg != -2 {
				t.Fatalf("client event corrupted: %+v (negative arg must sign-extend)", e)
			}
		}
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("snapshot not time-ordered: %+v", evs)
		}
	}
}

// TestRingWraparound overfills one writer's ring and checks the
// snapshot keeps only the newest events, all intact.
func TestRingWraparound(t *testing.T) {
	tr := NewTracer(1, 8) // ring capacity 8
	const total = 20
	for i := 1; i <= total; i++ {
		tr.Record(0, EvComplete, uint64(i), int64(i))
	}
	evs := tr.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("got %d events after wraparound, want 8", len(evs))
	}
	for i, e := range evs {
		wantReq := uint64(total - 8 + 1 + i)
		if e.Req != wantReq || e.Arg != int64(wantReq) {
			t.Fatalf("event %d = %+v, want req %d (oldest events must be the dropped ones)", i, e, wantReq)
		}
	}
}

func TestRingSizeRounding(t *testing.T) {
	tr := NewTracer(0, 5) // workers clamped to 1, size rounded to 8
	if tr.Workers() != 1 {
		t.Fatalf("workers = %d", tr.Workers())
	}
	for i := 0; i < 8; i++ {
		tr.Record(0, EvSubmit, uint64(i+1), 0)
	}
	if got := len(tr.Snapshot()); got != 8 {
		t.Fatalf("rounded ring kept %d events, want 8", got)
	}
}

// TestConcurrentWritersSnapshot hammers the shared client ring and the
// worker rings from many goroutines while a reader snapshots
// continuously. Run under -race this validates the seqlock scheme:
// readers never block writers, and every event a snapshot returns is
// internally consistent (req encodes the expected arg).
func TestConcurrentWritersSnapshot(t *testing.T) {
	tr := NewTracer(4, 128)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			writer := WriterClient
			if g < 4 {
				writer = g // worker rings get one goroutine each
			}
			for i := 1; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := uint64(g)<<32 | uint64(i)
				tr.Record(writer, EvSubmit, req, int64(req&0xffff))
			}
		}(g)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	snaps := 0
	for time.Now().Before(deadline) {
		evs := tr.Snapshot()
		snaps++
		for _, e := range evs {
			if e.Kind != EvSubmit {
				t.Fatalf("torn event: kind %v", e.Kind)
			}
			if e.Arg != int64(e.Req&0xffff) {
				t.Fatalf("torn event: req %d arg %d", e.Req, e.Arg)
			}
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].TS < evs[i-1].TS {
				t.Fatal("snapshot not sorted")
			}
		}
	}
	close(stop)
	wg.Wait()
	if snaps == 0 {
		t.Fatal("no snapshots taken")
	}
}

// TestNetWriterRoundTrip: the net frontend has its own ring behind the
// client ring; the wire event kinds survive the seqlock round trip and
// never leak into the client, worker, or shard-dispatcher rings.
func TestNetWriterRoundTrip(t *testing.T) {
	tr := NewTracerSharded(2, 2, 64)
	tr.Record(WriterNet, EvFrameRead, 7, 0)
	tr.Record(WriterNet, EvParsed, 7, 0)
	tr.Record(WriterNet, EvFlushQueued, 7, 0)
	tr.Record(WriterNet, EvFlushed, 7, 3)
	tr.Record(WriterClient, EvSubmit, 7, 0)
	tr.Record(DispatcherWriter(1), EvDispatch, 7, 0)
	tr.Record(1, EvStart, 7, 1)
	byRing := map[int][]Event{}
	for _, e := range tr.Snapshot() {
		byRing[e.Ring] = append(byRing[e.Ring], e)
	}
	net := byRing[WriterNet]
	if len(net) != 4 {
		t.Fatalf("net ring events = %+v", net)
	}
	wantKinds := []Kind{EvFrameRead, EvParsed, EvFlushQueued, EvFlushed}
	for i, e := range net {
		if e.Kind != wantKinds[i] || e.Req != 7 {
			t.Fatalf("net event %d = %+v, want kind %v", i, e, wantKinds[i])
		}
	}
	if net[3].Arg != 3 {
		t.Fatalf("flushed batch-size arg = %d, want 3", net[3].Arg)
	}
	if len(byRing[WriterClient]) != 1 || len(byRing[DispatcherWriter(1)]) != 1 || len(byRing[1]) != 1 {
		t.Fatalf("net events polluted other rings: %+v", byRing)
	}
}

// TestRecordAtRetroactive: RecordAt stamps the caller's timestamp, so a
// frame-read recorded late (at Submit, once the request has an id)
// still sorts before events that happened after it on the wall clock.
func TestRecordAtRetroactive(t *testing.T) {
	tr := NewTracer(1, 64)
	readAt := time.Now()
	time.Sleep(time.Millisecond)
	tr.Record(WriterClient, EvSubmit, 5, 0)           // later wall time
	tr.RecordAt(WriterNet, EvFrameRead, 5, 0, readAt) // recorded last, happened first
	evs := tr.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Kind != EvFrameRead || evs[1].Kind != EvSubmit {
		t.Fatalf("retroactive event did not sort by its stamped time: %+v", evs)
	}
	if d := evs[1].TS - evs[0].TS; d < time.Millisecond/2 {
		t.Fatalf("stamped gap = %v, want ≈1ms", d)
	}
}

// TestNetWriterDistinct: the net writer id must never collide with a
// shard dispatcher's, and the shard decoder must not claim it.
func TestNetWriterDistinct(t *testing.T) {
	for s := 0; s < 1<<10; s++ {
		if DispatcherWriter(s) == WriterNet {
			t.Fatalf("DispatcherWriter(%d) collides with WriterNet", s)
		}
	}
	if got := dispatcherShard(WriterNet); got != -1 {
		t.Fatalf("dispatcherShard(WriterNet) = %d, want -1", got)
	}
}

func TestDispatcherWriterRoundTrip(t *testing.T) {
	seen := map[int]bool{}
	for s := 0; s < 8; s++ {
		w := DispatcherWriter(s)
		if w >= 0 || w == WriterClient || seen[w] {
			t.Fatalf("DispatcherWriter(%d) = %d collides", s, w)
		}
		seen[w] = true
		if got := dispatcherShard(w); got != s {
			t.Fatalf("dispatcherShard(DispatcherWriter(%d)) = %d", s, got)
		}
	}
	if DispatcherWriter(0) != WriterDispatcher {
		t.Fatal("shard 0 must keep the historical dispatcher writer id")
	}
	if dispatcherShard(WriterClient) != -1 || dispatcherShard(3) != -1 {
		t.Fatal("dispatcherShard must reject non-dispatcher writers")
	}
}

// TestShardedTracerRings: every shard dispatcher is its own writer with
// its own ring; events come back attributed to the right shard and the
// client ring still works behind the shard block.
func TestShardedTracerRings(t *testing.T) {
	tr := NewTracerSharded(2, 3, 64)
	if tr.Workers() != 2 || tr.Shards() != 3 {
		t.Fatalf("dims = %d workers %d shards", tr.Workers(), tr.Shards())
	}
	for s := 0; s < 3; s++ {
		tr.Record(DispatcherWriter(s), EvDispatch, uint64(100+s), int64(s))
	}
	tr.Record(WriterClient, EvSubmit, 7, 0)
	tr.Record(1, EvStart, 7, 1)
	byRing := map[int][]Event{}
	for _, e := range tr.Snapshot() {
		byRing[e.Ring] = append(byRing[e.Ring], e)
	}
	for s := 0; s < 3; s++ {
		evs := byRing[DispatcherWriter(s)]
		if len(evs) != 1 || evs[0].Req != uint64(100+s) || evs[0].Arg != int64(s) {
			t.Fatalf("shard %d ring events = %+v", s, evs)
		}
	}
	if len(byRing[WriterClient]) != 1 || len(byRing[1]) != 1 {
		t.Fatalf("client/worker rings polluted: %+v", byRing)
	}
}

// TestShardedConcurrentDispatcherWriters drives all shard dispatcher
// rings concurrently under -race: the single-writer-per-ring contract
// must hold with the shard writers, not just the historical three.
func TestShardedConcurrentDispatcherWriters(t *testing.T) {
	const shards = 4
	tr := NewTracerSharded(1, shards, 128)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 1; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr.Record(DispatcherWriter(s), EvDispatch, uint64(s)<<32|uint64(i), int64(s))
			}
		}(s)
	}
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, e := range tr.Snapshot() {
			if int64(e.Req>>32) != e.Arg {
				t.Fatalf("event attributed to wrong shard: %+v", e)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func BenchmarkRecord(b *testing.B) {
	tr := NewTracer(1, 4096)
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			i++
			tr.Record(WriterClient, EvSubmit, i, 0)
		}
	})
}
