package runner

import (
	"reflect"
	"sync/atomic"
	"testing"

	"concord/internal/cost"
	"concord/internal/dist"
	"concord/internal/server"
)

// TestDoCoversAllIndices checks the parallel-for visits every index
// exactly once at several worker counts.
func TestDoCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		const n = 100
		var hits [n]int32
		New(workers).Do(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

// TestPointsOrderIndependent checks results land in spec order no matter
// how many goroutines execute the grid.
func TestPointsOrderIndependent(t *testing.T) {
	m := cost.Default()
	wl := server.Workload{Dist: dist.Bimodal(50, 1, 50, 100)}
	base := server.RunParams{Requests: 2000, MaxCentralQueue: 100000, DrainSlackUS: 50_000}

	var specs []Spec
	for si, cfg := range []server.Config{server.Concord(m, 4, 5), server.Shinjuku(m, 4, 5)} {
		for li, load := range []float64{30, 60, 90} {
			p := base
			p.Seed = server.SeedFor(3, si, li)
			specs = append(specs, Spec{Cfg: cfg, WL: wl, KRps: load, Params: p})
		}
	}

	want := New(1).Points(specs)
	if len(want) != len(specs) {
		t.Fatalf("got %d points for %d specs", len(want), len(specs))
	}
	for _, workers := range []int{2, 4, 16} {
		got := New(workers).Points(specs)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("Points with %d workers differs from serial", workers)
		}
	}
}

// TestSweepsMatchesServerSweep checks the grid fan-out agrees with the
// per-system serial reference path.
func TestSweepsMatchesServerSweep(t *testing.T) {
	m := cost.Default()
	cfgs := []server.Config{server.PersephoneFCFS(m, 4), server.Concord(m, 4, 5)}
	wl := server.Workload{Dist: dist.Bimodal(50, 1, 50, 100)}
	loads := []float64{30, 60, 90}
	p := server.RunParams{Requests: 2000, Seed: 5, MaxCentralQueue: 100000, DrainSlackUS: 50_000}

	got := New(4).Sweeps(cfgs, wl, loads, p)
	if len(got) != len(cfgs) {
		t.Fatalf("got %d curves for %d systems", len(got), len(cfgs))
	}
	for si, cfg := range cfgs {
		want := server.SweepIndexed(cfg, wl, loads, si, p)
		if !reflect.DeepEqual(want, got[si]) {
			t.Errorf("curve %d (%s) differs from serial SweepIndexed", si, cfg.Name)
		}
	}
}

func TestWorkersDefault(t *testing.T) {
	if w := New(0).Workers(); w < 1 {
		t.Fatalf("New(0).Workers() = %d, want >= 1", w)
	}
	if w := New(-3).Workers(); w < 1 {
		t.Fatalf("New(-3).Workers() = %d, want >= 1", w)
	}
	if w := New(6).Workers(); w != 6 {
		t.Fatalf("New(6).Workers() = %d, want 6", w)
	}
}
