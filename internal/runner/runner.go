// Package runner executes independent simulation runs in parallel,
// deterministically. Every paper figure is a grid of (system, load
// point) cells whose runs share nothing: each cell owns its Machine,
// RNG, and collector, and its seed is a pure function of the experiment
// base seed and the cell's coordinates (server.SeedFor). The runner
// fans the grid out over a bounded worker pool and reassembles results
// in spec order, so output is bit-identical to the serial path
// regardless of pool size or OS scheduling — parallelism changes only
// wall-clock time, never results.
//
// Layering: internal/figures and internal/core submit whole experiment
// grids here instead of nesting serial sweep loops; cmd/concordsim
// additionally runs independent figures concurrently on top.
package runner

import (
	"runtime"
	"sync"

	"concord/internal/server"
	"concord/internal/stats"
)

// Spec is one fully-determined simulation run: a (system, load point)
// cell of an experiment grid. Params.Seed must already be the final
// per-run seed (SweepSpecs derives it via server.SeedFor).
type Spec struct {
	Cfg    server.Config
	WL     server.Workload
	KRps   float64
	Params server.RunParams
}

// Runner is a bounded fan-out executor for independent runs.
type Runner struct {
	workers int
}

// New returns a runner executing at most workers runs concurrently;
// workers <= 0 means runtime.GOMAXPROCS(0). A runner with one worker
// executes specs sequentially in order — the serial reference path.
func New(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers}
}

// Workers returns the pool's concurrency bound.
func (r *Runner) Workers() int { return r.workers }

// Do runs fn(i) for every i in [0, n), at most Workers() concurrently.
// fn must confine its writes to per-index state (slot i of a results
// slice); under that contract the aggregate outcome is order-independent
// and therefore identical at any pool size.
func (r *Runner) Do(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	par := r.workers
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var mu sync.Mutex
	next := 0
	var wg sync.WaitGroup
	for g := 0; g < par; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Points executes every spec via server.RunAt and returns the measured
// points in spec order, regardless of completion order.
func (r *Runner) Points(specs []Spec) []stats.Point {
	out := make([]stats.Point, len(specs))
	r.Do(len(specs), func(i int) {
		s := specs[i]
		out[i] = server.RunAt(s.Cfg, s.WL, s.KRps, s.Params)
	})
	return out
}

// SweepSpecs builds the spec grid for an experiment: every system in
// cfgs crossed with every load point, seeded per cell with
// server.SeedFor(p.Seed, systemIndex, loadIndex). Specs are ordered
// system-major (all of cfgs[0]'s loads first).
func SweepSpecs(cfgs []server.Config, wl server.Workload, loadsKRps []float64, p server.RunParams) []Spec {
	specs := make([]Spec, 0, len(cfgs)*len(loadsKRps))
	for si, cfg := range cfgs {
		for li, kRps := range loadsKRps {
			sp := p
			sp.Seed = server.SeedFor(p.Seed, si, li)
			specs = append(specs, Spec{Cfg: cfg, WL: wl, KRps: kRps, Params: sp})
		}
	}
	return specs
}

// Sweeps runs the full systems×loads grid in parallel and reassembles
// one curve per system, in cfgs order. The result is bit-identical to
// calling server.SweepIndexed(cfgs[i], wl, loads, i, p) for each system
// serially.
func (r *Runner) Sweeps(cfgs []server.Config, wl server.Workload, loadsKRps []float64, p server.RunParams) []stats.Curve {
	pts := r.Points(SweepSpecs(cfgs, wl, loadsKRps, p))
	curves := make([]stats.Curve, len(cfgs))
	for si, cfg := range cfgs {
		curves[si] = stats.Curve{
			System: cfg.Name,
			Points: pts[si*len(loadsKRps) : (si+1)*len(loadsKRps)],
		}
	}
	return curves
}
