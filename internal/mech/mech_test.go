package mech

import (
	"math"
	"testing"

	"concord/internal/cost"
	"concord/internal/sim"
)

func TestIPIOverheadMatchesPaperArithmetic(t *testing.T) {
	m := cost.Default()
	ipi := IPI{M: m}
	// §2.2.1: "receiving an IPI in Shinjuku costs ≈1200 cycles which
	// results in an ≈12% overhead for q = 5µs, and an ≈30% overhead for
	// q = 2µs, assuming a 2GHz clock". The spin benchmark adds the small
	// runtime tax on top.
	s := m.MicrosToCycles(500)
	at2 := SpinOverhead(ipi, s, m.MicrosToCycles(2))
	if math.Abs(at2-0.30) > 0.02 {
		t.Errorf("IPI overhead at 2µs = %.3f, paper says ≈0.30", at2)
	}
	at5 := SpinOverhead(ipi, s, m.MicrosToCycles(5))
	if math.Abs(at5-0.12) > 0.02 {
		t.Errorf("IPI overhead at 5µs = %.3f, paper says ≈0.12", at5)
	}
}

func TestRdtscOverheadFlat(t *testing.T) {
	m := cost.Default()
	r := Rdtsc{M: m}
	s := m.MicrosToCycles(500)
	var prev float64
	for i, qus := range []float64{1, 5, 10, 25, 50, 100} {
		o := SpinOverhead(r, s, m.MicrosToCycles(qus))
		if math.Abs(o-0.21) > 0.02 {
			t.Errorf("rdtsc overhead at %gµs = %.3f, paper says ≈0.21 flat", qus, o)
		}
		if i > 0 && math.Abs(o-prev) > 1e-9 {
			t.Errorf("rdtsc overhead varies with quantum: %v vs %v", o, prev)
		}
		prev = o
	}
}

func TestConcordOverheadLowAndNearFlat(t *testing.T) {
	m := cost.Default()
	c := CacheLine{M: m}
	ipi := IPI{M: m}
	s := m.MicrosToCycles(500)
	for _, qus := range []float64{2, 5, 10} {
		q := m.MicrosToCycles(qus)
		co, io := SpinOverhead(c, s, q), SpinOverhead(ipi, s, q)
		if co >= io {
			t.Errorf("at q=%gµs Concord overhead %.3f not below IPI %.3f", qus, co, io)
		}
		if co > 0.06 {
			t.Errorf("at q=%gµs Concord overhead %.3f too high (paper: low single digits)", qus, co)
		}
	}
	// Concord must be several times cheaper than IPIs at small quanta.
	q2 := m.MicrosToCycles(2)
	if ratio := SpinOverhead(ipi, s, q2) / SpinOverhead(c, s, q2); ratio < 4 {
		t.Errorf("IPI/Concord overhead ratio at 2µs = %.1f, want >= 4 (paper: ≈12)", ratio)
	}
}

func TestUIPIBetweenIPIAndConcord(t *testing.T) {
	m := cost.SapphireRapids()
	s := m.MicrosToCycles(500)
	for _, qus := range []float64{1, 2, 5, 10} {
		q := m.MicrosToCycles(qus)
		u := SpinOverhead(UIPI{M: m}, s, q)
		c := SpinOverhead(CacheLine{M: m}, s, q)
		i := SpinOverhead(IPI{M: m}, s, q)
		if !(c < u && u < i) {
			t.Errorf("at q=%gµs want Concord(%.3f) < UIPI(%.3f) < IPI(%.3f)", qus, c, u, i)
		}
	}
	// §5.6: UIPI ≈2× Concord's overhead at small quanta.
	q := m.MicrosToCycles(2)
	ratio := SpinOverhead(UIPI{M: m}, s, q) / SpinOverhead(CacheLine{M: m}, s, q)
	if ratio < 1.4 || ratio > 3 {
		t.Errorf("UIPI/Concord ratio = %.2f, paper says ≈2", ratio)
	}
}

func TestObserveDelays(t *testing.T) {
	m := cost.Default()
	rng := sim.NewRNG(1)
	if d := (IPI{M: m}).ObserveDelay(rng); d != 0 {
		t.Errorf("IPI delay = %d, want 0 (precise)", d)
	}
	if d := (UIPI{M: m}).ObserveDelay(rng); d != 0 {
		t.Errorf("UIPI delay = %d, want 0 (precise)", d)
	}
	// rdtsc: uniform in [0, spacing).
	r := Rdtsc{M: m}
	for i := 0; i < 10000; i++ {
		d := r.ObserveDelay(rng)
		if d < 0 || d >= m.ProbeSpacingCycles {
			t.Fatalf("rdtsc delay %d outside [0, %d)", d, m.ProbeSpacingCycles)
		}
	}
	// Concord: one-sided, non-negative, std-dev configurable.
	c := CacheLine{M: m, DelayStdDev: m.MicrosToCycles(2)}
	var sum, sumsq float64
	const n = 100000
	for i := 0; i < n; i++ {
		d := float64(c.ObserveDelay(rng))
		if d < 0 {
			t.Fatalf("Concord delay %v negative", d)
		}
		sum += d
		sumsq += d * d
	}
	mean := sum / n
	if mean <= 0 {
		t.Fatal("Concord delay mean should be positive")
	}
	// |N(0,σ)| has mean σ·sqrt(2/π) ≈ 0.798σ.
	wantMean := float64(m.MicrosToCycles(2)) * math.Sqrt(2/math.Pi)
	if math.Abs(mean-wantMean)/wantMean > 0.05 {
		t.Errorf("one-sided delay mean = %v cycles, want ≈%v", mean, wantMean)
	}
}

func TestSelfPreempting(t *testing.T) {
	m := cost.Default()
	if !(Rdtsc{M: m}).SelfPreempting() {
		t.Error("rdtsc must self-preempt")
	}
	for _, mm := range []Mechanism{IPI{M: m}, UIPI{M: m}, CacheLine{M: m}, None{M: m}, LinuxIPI{M: m}} {
		if mm.SelfPreempting() {
			t.Errorf("%s should not self-preempt", mm.Name())
		}
	}
}

func TestLinuxIPITwicePosted(t *testing.T) {
	m := cost.Default()
	if (LinuxIPI{M: m}).NotifyCost() != 2*(IPI{M: m}).NotifyCost() {
		t.Error("Linux IPI should cost 2× posted IPI")
	}
}

func TestPreemptionCycleOverheadDominatedByNext(t *testing.T) {
	m := cost.Default()
	s, q := m.MicrosToCycles(500), m.MicrosToCycles(5)
	c := CacheLine{M: m}
	withSQ := PreemptionCycleOverhead(c, s, q, m.ContextSwitch, m.NextRequest)
	withJBSQ := PreemptionCycleOverhead(c, s, q, m.ContextSwitch, m.JBSQLocalPop)
	if withJBSQ >= withSQ {
		t.Error("JBSQ should reduce the per-preemption-cycle overhead")
	}
	full := IPI{M: m}
	shinjuku := PreemptionCycleOverhead(full, s, q, m.ContextSwitch, m.NextRequest)
	// Fig. 12: Concord (coop+JBSQ) reduces preemptive-scheduling overhead
	// by ≈4× vs Shinjuku (IPI+SQ).
	if ratio := shinjuku / withJBSQ; ratio < 3 {
		t.Errorf("Shinjuku/Concord preemption overhead ratio = %.1f, want >= 3 (paper ≈4)", ratio)
	}
}

func TestSpinOverheadPanics(t *testing.T) {
	m := cost.Default()
	for name, fn := range map[string]func(){
		"zero service": func() { SpinOverhead(IPI{M: m}, 0, 100) },
		"zero quantum": func() { SpinOverhead(IPI{M: m}, 100, 0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}
