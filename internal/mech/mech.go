// Package mech models the preemption mechanisms compared in the paper:
//
//   - IPI: Shinjuku's posted inter-processor interrupts (§2.2.1). Precise
//     (zero observation delay) but expensive to receive (≈1200 cycles).
//   - LinuxIPI: standard kernel IPIs, ≈2× the posted-IPI cost.
//   - UIPI: Intel user-space interrupts (§5.6). Precise, cheaper than
//     kernel IPIs, still ≈2× Concord's cost.
//   - Rdtsc: Compiler Interrupts-style self-preemption via rdtsc()
//     bookkeeping probes (§2.2.1). No notification cost (the worker
//     observes time itself) but a large, quantum-independent processing
//     overhead (≈21%).
//   - CacheLine: Concord's compiler-enforced cooperation (§3.1). The
//     dispatcher writes a dedicated per-worker cache line; instrumented
//     code polls it. Cheap probes (≈2 cycles, L1 hit) and a cheap final
//     observation (≈150-cycle coherence miss), at the price of a small,
//     one-sided observation delay (imprecise quanta).
//   - None: no preemption (run-to-completion, e.g. Persephone C-FCFS).
//
// Each mechanism answers four questions the server model needs: what does
// the dispatcher pay to signal, what does the worker pay when it observes,
// how late is the observation, and what fraction of service time does the
// mechanism's bookkeeping add.
package mech

import (
	"concord/internal/cost"
	"concord/internal/sim"
)

// Mechanism describes one preemption mechanism under a given cost model.
type Mechanism interface {
	// Name identifies the mechanism in reports.
	Name() string

	// SignalCost is the dispatcher-side cost of sending one preemption
	// signal. Zero for self-preempting mechanisms.
	SignalCost() sim.Cycles

	// NotifyCost is the worker-side cost of observing one preemption
	// signal (receiving the IPI, or the final probe's coherence miss).
	NotifyCost() sim.Cycles

	// ObserveDelay returns how long after the signal the worker observes
	// it. Interrupt mechanisms are (nearly) immediate; cooperative
	// mechanisms must reach the next probe.
	ObserveDelay(r *sim.RNG) sim.Cycles

	// ProcOverhead is the mechanism's bookkeeping cost as a fraction of
	// service time (c_proc in the §2 model), independent of the quantum.
	ProcOverhead() float64

	// SelfPreempting reports whether the worker preempts itself without a
	// dispatcher signal (true for rdtsc-based Compiler Interrupts).
	SelfPreempting() bool
}

// IPI is Shinjuku's posted-interrupt mechanism.
type IPI struct{ M cost.Model }

func (i IPI) Name() string                     { return "IPI" }
func (i IPI) SignalCost() sim.Cycles           { return i.M.IPISend }
func (i IPI) NotifyCost() sim.Cycles           { return i.M.IPIReceive }
func (i IPI) ObserveDelay(*sim.RNG) sim.Cycles { return 0 }
func (i IPI) ProcOverhead() float64            { return i.M.RuntimeOverhead }
func (i IPI) SelfPreempting() bool             { return false }

// LinuxIPI is a standard (non-posted) kernel IPI, deployable anywhere but
// twice as expensive to receive.
type LinuxIPI struct{ M cost.Model }

func (l LinuxIPI) Name() string                     { return "LinuxIPI" }
func (l LinuxIPI) SignalCost() sim.Cycles           { return l.M.IPISend }
func (l LinuxIPI) NotifyCost() sim.Cycles           { return l.M.LinuxIPIReceive }
func (l LinuxIPI) ObserveDelay(*sim.RNG) sim.Cycles { return 0 }
func (l LinuxIPI) ProcOverhead() float64            { return l.M.RuntimeOverhead }
func (l LinuxIPI) SelfPreempting() bool             { return false }

// UIPI is Intel's user-space interrupt mechanism (§5.6).
type UIPI struct{ M cost.Model }

func (u UIPI) Name() string                     { return "UIPI" }
func (u UIPI) SignalCost() sim.Cycles           { return u.M.IPISend / 2 }
func (u UIPI) NotifyCost() sim.Cycles           { return u.M.UIPIReceive }
func (u UIPI) ObserveDelay(*sim.RNG) sim.Cycles { return 0 }
func (u UIPI) ProcOverhead() float64            { return u.M.RuntimeOverhead }
func (u UIPI) SelfPreempting() bool             { return false }

// Rdtsc is Compiler Interrupts-style instrumentation: rdtsc() probes at
// ≈200-IR-instruction intervals let the worker self-preempt.
type Rdtsc struct{ M cost.Model }

func (r Rdtsc) Name() string           { return "rdtsc" }
func (r Rdtsc) SignalCost() sim.Cycles { return 0 }
func (r Rdtsc) NotifyCost() sim.Cycles { return 0 }

// ObserveDelay for self-preemption is the residual until the next probe:
// uniform in [0, spacing).
func (r Rdtsc) ObserveDelay(rng *sim.RNG) sim.Cycles {
	return sim.Cycles(rng.Float64() * float64(r.M.ProbeSpacingCycles))
}
func (r Rdtsc) ProcOverhead() float64 {
	return r.M.RuntimeOverhead + r.M.InstrOverheadRdtsc
}
func (r Rdtsc) SelfPreempting() bool { return true }

// CacheLine is Concord's compiler-enforced cooperation.
type CacheLine struct {
	M cost.Model
	// DelayStdDev overrides the model's preemption-lateness standard
	// deviation when positive (used by the Fig. 5 sensitivity study).
	DelayStdDev sim.Cycles
}

func (c CacheLine) Name() string           { return "Concord-coop" }
func (c CacheLine) SignalCost() sim.Cycles { return c.M.CacheLineWrite }
func (c CacheLine) NotifyCost() sim.Cycles { return c.M.ProbeMiss }

// ObserveDelay is one-sided (the worker can only observe the flag at or
// after the write): the paper models it as a one-sided normal (Fig. 5)
// and measures std-devs of 0.03–1.8µs across 24 benchmarks (Table 1).
func (c CacheLine) ObserveDelay(rng *sim.RNG) sim.Cycles {
	sd := c.DelayStdDev
	if sd == 0 {
		sd = c.M.PreemptDelayStdDev
	}
	if sd <= 0 {
		return 0
	}
	return sim.Cycles(rng.OneSidedNormal(0, float64(sd)))
}
func (c CacheLine) ProcOverhead() float64 {
	return c.M.RuntimeOverhead + c.M.InstrOverheadConcord
}
func (c CacheLine) SelfPreempting() bool { return false }

// None disables preemption: requests run to completion.
type None struct{ M cost.Model }

func (n None) Name() string                     { return "none" }
func (n None) SignalCost() sim.Cycles           { return 0 }
func (n None) NotifyCost() sim.Cycles           { return 0 }
func (n None) ObserveDelay(*sim.RNG) sim.Cycles { return 0 }
func (n None) ProcOverhead() float64            { return n.M.RuntimeOverhead }
func (n None) SelfPreempting() bool             { return false }
