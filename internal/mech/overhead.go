package mech

import "concord/internal/sim"

// SpinOverhead computes the throughput overhead of a preemption mechanism
// for the Fig. 2/12/15 microbenchmark: requests spinning for service
// cycles, preempted every quantum with a *no-op* handler. Per the paper,
// this isolates the mechanism cost: it excludes context switches and the
// time to receive the next request (Eq. 3's c_switch and c_next).
//
// The returned value is the fraction of extra cycles over the
// un-instrumented service time: (floor(S/q)·c_notif)/S + c_proc/S.
func SpinOverhead(m Mechanism, service, quantum sim.Cycles) float64 {
	if service <= 0 {
		panic("mech: non-positive service time")
	}
	if quantum <= 0 {
		panic("mech: non-positive quantum")
	}
	preemptions := float64(service / quantum)
	notif := preemptions * float64(m.NotifyCost())
	return notif/float64(service) + m.ProcOverhead()
}

// PreemptionCycleOverhead computes the Fig. 12 variant: the full per-
// preemption cost including the context switch and waiting for the next
// request, per Eq. 3: c_pre = floor(S/q)·(c_notif + c_switch + c_next).
// nextCost is c_next (≈400 cycles for a synchronous single queue, near
// zero for JBSQ), switchCost is the context-switch cost.
func PreemptionCycleOverhead(m Mechanism, service, quantum, switchCost, nextCost sim.Cycles) float64 {
	if service <= 0 || quantum <= 0 {
		panic("mech: non-positive service time or quantum")
	}
	preemptions := float64(service / quantum)
	perPreempt := float64(m.NotifyCost() + switchCost + nextCost)
	return preemptions*perPreempt/float64(service) + m.ProcOverhead()
}
