// The background replayer: periodically drains the live capture ring,
// replays the window through the counterfactual simulator, and keeps a
// bounded history of results for the control plane (metrics gauges, the
// kvd SHADOW verb, the adaptive controller's regret input, and the
// shutdown dump).
package shadow

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"concord/internal/live"
)

// historyCap bounds the retained per-window results; old windows age
// out. Plenty for a dump and for eyeballing trends over SHADOW n.
const historyCap = 64

// Replayer owns the capture ring's consumption side. Start it for
// periodic replay, or drive it manually with ReplayOnce (tests, final
// drain). Safe for concurrent use.
type Replayer struct {
	ring     *live.CaptureRing
	cfg      Config
	interval time.Duration

	latest  atomic.Pointer[Result]
	windows atomic.Uint64 // windows replayed
	skipped atomic.Uint64 // windows too small to score

	mu      sync.Mutex
	history []Result // newest last

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewReplayer builds a replayer draining ring every interval (default
// 1s) under cfg's counterfactual servers.
func NewReplayer(ring *live.CaptureRing, cfg Config, interval time.Duration) *Replayer {
	if interval <= 0 {
		interval = time.Second
	}
	return &Replayer{
		ring:     ring,
		cfg:      cfg.withDefaults(),
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the periodic replay loop. Subsequent calls are no-ops.
func (r *Replayer) Start() {
	r.startOnce.Do(func() {
		go func() {
			defer close(r.done)
			t := time.NewTicker(r.interval)
			defer t.Stop()
			for {
				select {
				case <-r.stop:
					return
				case <-t.C:
					r.ReplayOnce()
				}
			}
		}()
	})
}

// Stop halts the loop (if started) and waits for it to exit. A final
// ReplayOnce after Stop scores whatever the ring still holds.
func (r *Replayer) Stop() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	r.startOnce.Do(func() { close(r.done) }) // never started: nothing to wait on
	<-r.done
}

// ReplayOnce drains the ring and scores the window synchronously.
// ok is false when the window was too small to score (it still counts
// as skipped).
func (r *Replayer) ReplayOnce() (Result, bool) {
	w := r.ring.TakeWindow()
	res, ok := ReplayWindow(w, r.cfg)
	if !ok {
		r.skipped.Add(1)
		return Result{}, false
	}
	r.windows.Add(1)
	r.latest.Store(&res)
	r.mu.Lock()
	r.history = append(r.history, res)
	if len(r.history) > historyCap {
		r.history = r.history[len(r.history)-historyCap:]
	}
	r.mu.Unlock()
	return res, true
}

// Latest returns the most recent scored window, nil before the first.
func (r *Replayer) Latest() *Result { return r.latest.Load() }

// Ring exposes the capture ring the replayer drains (for capture-rate
// counters on the metrics surface).
func (r *Replayer) Ring() *live.CaptureRing { return r.ring }

// Results returns up to n retained windows, newest first.
func (r *Replayer) Results(n int) []Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > len(r.history) {
		n = len(r.history)
	}
	out := make([]Result, n)
	for i := 0; i < n; i++ {
		out[i] = r.history[len(r.history)-1-i]
	}
	return out
}

// Counts reports windows scored and windows skipped (too few samples).
func (r *Replayer) Counts() (windows, skipped uint64) {
	return r.windows.Load(), r.skipped.Load()
}

// shadowDump is the -shadowdump JSON schema.
type shadowDump struct {
	Schema   int      `json:"schema"`
	Policies []string `json:"policies"`
	Rate     int      `json:"capture_rate"`
	Windows  uint64   `json:"windows"`
	Skipped  uint64   `json:"skipped"`
	Offered  uint64   `json:"captures_offered"`
	Captured uint64   `json:"captures_kept"`
	Results  []Result `json:"results"` // newest first
}

// WriteDump serializes the replayer's retained history as indented
// JSON, schema 1.
func (r *Replayer) WriteDump(w io.Writer) error {
	windows, skipped := r.Counts()
	offered, captured := r.ring.Stats()
	d := shadowDump{
		Schema:   1,
		Policies: Policies(),
		Rate:     r.ring.Rate(),
		Windows:  windows,
		Skipped:  skipped,
		Offered:  offered,
		Captured: captured,
		Results:  r.Results(0),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
