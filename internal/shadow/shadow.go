// Package shadow answers "what would the tail have been under a
// different scheduling policy?" without running one. It takes sampled
// capture windows from the live runtime (live.CaptureRing) — arrival
// spacing, class, service hint, measured service time — and replays
// them through the deterministic simulator (internal/server) under
// counterfactual configurations:
//
//	fcfs        — hint-blind FIFO central queue
//	srpt_hint   — SRPT keyed on the hints requests actually submitted
//	srpt_oracle — SRPT keyed on the true measured service times
//
// The gap between the achieved p99 and the best counterfactual p99 is
// the scheduler's *regret*: how much tail latency the current policy
// (and the quality of the client hints) left on the table. Because the
// simulator models the paper's cost parameters rather than this
// machine's, the counterfactual numbers are approximations of what a
// policy change would buy — the per-policy *ordering* and the
// hint-vs-oracle spread are the trustworthy signals, not the absolute
// microseconds.
package shadow

import (
	"fmt"
	"math"
	"sort"
	"time"

	"concord/internal/cost"
	"concord/internal/dist"
	"concord/internal/live"
	"concord/internal/server"
	"concord/internal/sim"
)

// Canonical counterfactual policy names, in report order.
const (
	PolicyFCFS       = "fcfs"
	PolicySRPTHint   = "srpt_hint"
	PolicySRPTOracle = "srpt_oracle"
)

// Policies lists the counterfactuals every replay evaluates, in order.
func Policies() []string {
	return []string{PolicyFCFS, PolicySRPTHint, PolicySRPTOracle}
}

// Config parameterizes the counterfactual servers. The zero value is
// usable; unset fields take the defaults below.
type Config struct {
	// Workers and QuantumUS describe the simulated server; mirror the
	// live server's shape so counterfactuals answer "same machine,
	// different policy".
	Workers   int     // default 2
	QuantumUS float64 // default 100
	// QueueBound is the per-worker JBSQ depth (default 2).
	QueueBound int
	// WorkConserving lets the simulated dispatcher run requests itself
	// when all workers are busy (default true, matching live).
	WorkConserving bool
	// Seed drives the simulator's RNG. Replay consumes no random
	// service times or gaps — both come from the trace — so the seed
	// only perturbs internal tie-breaking; any fixed value gives
	// bit-identical replays.
	Seed uint64
	// MinRecs is the smallest window worth replaying (default 16):
	// below it, p99 of the sample is noise.
	MinRecs int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QuantumUS <= 0 {
		c.QuantumUS = 100
	}
	if c.QueueBound <= 0 {
		c.QueueBound = 2
	}
	if c.MinRecs <= 0 {
		c.MinRecs = 16
	}
	return c
}

// PolicyResult is one counterfactual's outcome on a window.
type PolicyResult struct {
	Policy string `json:"policy"`
	// P99US / MeanUS summarize simulated sojourn times. Zero when
	// Saturated — JSON has no Inf, and a saturated counterfactual has
	// no meaningful tail.
	P99US  float64 `json:"p99_us"`
	MeanUS float64 `json:"mean_us"`
	// Ratio is counterfactual p99 over achieved p99: < 1 means this
	// policy would have beaten the configuration that produced the
	// window. Zero when Saturated.
	Ratio     float64 `json:"ratio"`
	Completed int     `json:"completed"`
	Saturated bool    `json:"saturated,omitempty"`
}

// Result is one replayed window: what happened, and what could have.
type Result struct {
	Start   time.Time `json:"start"`
	SpanMS  float64   `json:"span_ms"`
	Recs    int       `json:"recs"`
	Offered uint64    `json:"offered"`
	// AchievedP99US is the p99 of the *measured* latencies in the
	// window — the reality the counterfactuals are scored against.
	AchievedP99US float64        `json:"achieved_p99_us"`
	Policies      []PolicyResult `json:"policies"`
	// Best is the non-saturated policy with the lowest p99; BestRatio
	// its Ratio. Empty/zero when every counterfactual saturated.
	Best      string  `json:"best"`
	BestRatio float64 `json:"best_ratio"`
}

// RegretRatio is achieved p99 over the best counterfactual p99: 1 means
// the scheduler (plus its hints) is already optimal among the evaluated
// policies, 2 means the tail could have been halved. 0 = no signal.
func (r *Result) RegretRatio() float64 {
	if r == nil || r.BestRatio <= 0 {
		return 0
	}
	return 1 / r.BestRatio
}

// PolicyRatio returns the named policy's Ratio, 0 when absent/saturated.
func (r *Result) PolicyRatio(policy string) float64 {
	if r == nil {
		return 0
	}
	for _, p := range r.Policies {
		if p.Policy == policy {
			return p.Ratio
		}
	}
	return 0
}

// String renders the one-line form served by the kvd SHADOW verb.
func (r *Result) String() string {
	s := fmt.Sprintf("window %dms recs %d achieved_p99 %.0fus",
		int64(r.SpanMS), r.Recs, r.AchievedP99US)
	for _, p := range r.Policies {
		if p.Saturated {
			s += fmt.Sprintf(" %s saturated", p.Policy)
			continue
		}
		s += fmt.Sprintf(" %s %.0fus (x%.2f)", p.Policy, p.P99US, p.Ratio)
	}
	if r.Best != "" {
		s += fmt.Sprintf(" best %s regret x%.2f", r.Best, r.RegretRatio())
	}
	return s
}

// ---------- trace replay through the simulator ----------

// traceDist replays captured service times (and hints) in arrival
// order. The Machine calls Dist.Sample exactly once per admitted
// request, in arrival order, so a cursor suffices; past the end it
// clamps to the last record (defensive — Requests == len(recs) makes
// that unreachable).
type traceDist struct {
	recs []live.CaptureRec
	mean float64
	i    int
}

func newTraceDist(recs []live.CaptureRec) *traceDist {
	var sum float64
	for _, r := range recs {
		sum += float64(r.ServiceNS)
	}
	return &traceDist{recs: recs, mean: sum / float64(len(recs)) / 1e3}
}

func (d *traceDist) Name() string  { return "trace-replay" }
func (d *traceDist) Mean() float64 { return d.mean }
func (d *traceDist) Sample(_ *sim.RNG) dist.Sample {
	r := d.recs[d.i]
	if d.i < len(d.recs)-1 {
		d.i++
	}
	return dist.Sample{
		Class:     className(r.Class),
		ServiceUS: float64(r.ServiceNS) / 1e3,
		HintUS:    float64(r.HintNS) / 1e3,
	}
}

func className(c uint8) string {
	return live.SLOClass(c).String()
}

// traceArrival replays captured inter-arrival gaps. The Machine calls
// NextGapUS once before each arrival (including the first), so gap 0 is
// 0 — the trace's absolute offset is irrelevant, only spacing matters.
type traceArrival struct {
	gaps []float64
	i    int
}

func newTraceArrival(recs []live.CaptureRec) *traceArrival {
	gaps := make([]float64, len(recs))
	for i := 1; i < len(recs); i++ {
		gaps[i] = float64(recs[i].ArrivalNS-recs[i-1].ArrivalNS) / 1e3
	}
	return &traceArrival{gaps: gaps}
}

func (a *traceArrival) Name() string { return "trace-replay" }
func (a *traceArrival) NextGapUS(_ *sim.RNG) float64 {
	g := a.gaps[a.i]
	if a.i < len(a.gaps)-1 {
		a.i++
	}
	return g
}

// ReplayWindow replays one capture window under every counterfactual
// policy. It is pure and deterministic: the same window and config
// produce a bit-identical Result. ok is false when the window is too
// small to score.
func ReplayWindow(w live.CaptureWindow, cfg Config) (Result, bool) {
	cfg = cfg.withDefaults()
	if len(w.Recs) < cfg.MinRecs || len(w.Recs) < 2 {
		return Result{}, false
	}
	res := Result{
		Start:         w.Start,
		SpanMS:        float64(w.Span) / float64(time.Millisecond),
		Recs:          len(w.Recs),
		Offered:       w.Offered,
		AchievedP99US: achievedP99US(w.Recs),
	}
	bestP99 := math.Inf(1)
	for _, policy := range Policies() {
		pr := replayPolicy(w.Recs, cfg, policy)
		if !pr.Saturated && res.AchievedP99US > 0 {
			pr.Ratio = pr.P99US / res.AchievedP99US
			if pr.P99US < bestP99 {
				bestP99 = pr.P99US
				res.Best = pr.Policy
				res.BestRatio = pr.Ratio
			}
		}
		res.Policies = append(res.Policies, pr)
	}
	return res, true
}

func replayPolicy(recs []live.CaptureRec, cfg Config, policy string) PolicyResult {
	sc := server.Concord(cost.Default(), cfg.Workers, cfg.QuantumUS)
	sc.QueueBound = cfg.QueueBound
	sc.WorkConserving = cfg.WorkConserving
	switch policy {
	case PolicyFCFS:
		sc.SRPT = false
	case PolicySRPTHint:
		sc.SRPT, sc.HintedSRPT = true, true
	case PolicySRPTOracle:
		sc.SRPT = true
	}
	wl := server.Workload{Dist: newTraceDist(recs), Arrival: newTraceArrival(recs)}
	r := server.New(sc, wl, server.RunParams{
		Requests:   len(recs),
		WarmupFrac: 1e-9, // withDefaults coerces 0 to 0.1; replay keeps every sample
		Seed:       cfg.Seed,
		// A drained trace replays in roughly its own span; captured
		// windows span seconds, so give the drain the same order of
		// slack rather than the default 100ms.
		DrainSlackUS: 10e6,
		ExactSamples: true,
	}).Run()
	pr := PolicyResult{Policy: policy, Completed: r.Completed, Saturated: r.Saturated}
	if r.Saturated {
		return pr
	}
	soj := make([]float64, 0, len(r.Collector.Samples()))
	var sum float64
	for _, s := range r.Collector.Samples() {
		soj = append(soj, s.SojournUS)
		sum += s.SojournUS
	}
	if len(soj) == 0 {
		pr.Saturated = true
		return pr
	}
	sort.Float64s(soj)
	pr.P99US = quantileSorted(soj, 0.99)
	pr.MeanUS = sum / float64(len(soj))
	return pr
}

func achievedP99US(recs []live.CaptureRec) float64 {
	lat := make([]float64, len(recs))
	for i, r := range recs {
		lat[i] = float64(r.LatencyNS) / 1e3
	}
	sort.Float64s(lat)
	return quantileSorted(lat, 0.99)
}

// quantileSorted is the exact empirical quantile (nearest-rank) of a
// sorted slice — the same definition the collector's percentiles use.
func quantileSorted(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(xs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}
