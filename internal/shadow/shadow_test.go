package shadow

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"time"

	"concord/internal/dist"
	"concord/internal/live"
	"concord/internal/sim"
)

// synthWindow builds a deterministic capture window: lognormal service
// times under Poisson arrivals, every record hinted at hintFactor × its
// true size (hintFactor 0 strips hints), classes alternating
// short/long/default.
func synthWindow(n int, seed uint64, ratePerSec, hintFactor float64) live.CaptureWindow {
	rng := sim.NewRNG(seed)
	svc := dist.Lognormal{Mu: math.Log(20), Sigma: 1.5}
	arr := dist.NewPoisson(ratePerSec)
	w := live.CaptureWindow{Start: time.Unix(0, 0)}
	var at float64
	for i := 0; i < n; i++ {
		at += arr.NextGapUS(rng)
		s := svc.Sample(rng)
		svcNS := int64(s.ServiceUS * 1e3)
		if svcNS < 1 {
			svcNS = 1
		}
		rec := live.CaptureRec{
			ArrivalNS: int64(at * 1e3),
			Class:     uint8(i % 3),
			ServiceNS: svcNS,
			LatencyNS: svcNS * 4, // stand-in for an achieved sojourn
		}
		if hintFactor > 0 {
			rec.HintNS = int64(float64(svcNS) * hintFactor)
		}
		w.Recs = append(w.Recs, rec)
	}
	w.Span = time.Duration(at*1e3) * time.Nanosecond
	w.Offered = uint64(n)
	return w
}

// TestReplayDeterministic: the same window and config replay to a
// bit-identical Result — the property that makes regret gauges
// comparable across scrapes and the dump reproducible.
func TestReplayDeterministic(t *testing.T) {
	w := synthWindow(1000, 11, 20000, 1)
	cfg := Config{Workers: 2, QuantumUS: 100, Seed: 7}
	a, ok := ReplayWindow(w, cfg)
	b, ok2 := ReplayWindow(w, cfg)
	if !ok || !ok2 {
		t.Fatal("replay skipped a 1000-record window")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay not deterministic:\n%+v\nvs\n%+v", a, b)
	}
	if len(a.Policies) != 3 || a.Best == "" || a.BestRatio <= 0 {
		t.Fatalf("result incomplete: %+v", a)
	}
	for i, name := range Policies() {
		if a.Policies[i].Policy != name {
			t.Fatalf("policy %d = %q, want %q", i, a.Policies[i].Policy, name)
		}
	}
}

// TestReplayExactHintsMatchOracle: with every hint exact, the
// hinted-SRPT counterfactual must be indistinguishable from the oracle
// — same completions, p99, and mean.
func TestReplayExactHintsMatchOracle(t *testing.T) {
	w := synthWindow(2000, 3, 20000, 1)
	res, ok := ReplayWindow(w, Config{Workers: 2, QuantumUS: 100})
	if !ok {
		t.Fatal("replay skipped")
	}
	var hint, oracle, fcfs PolicyResult
	for _, p := range res.Policies {
		switch p.Policy {
		case PolicySRPTHint:
			hint = p
		case PolicySRPTOracle:
			oracle = p
		case PolicyFCFS:
			fcfs = p
		}
	}
	if hint.Saturated || oracle.Saturated || fcfs.Saturated {
		t.Fatalf("saturated counterfactual: %+v", res.Policies)
	}
	if hint.P99US != oracle.P99US || hint.MeanUS != oracle.MeanUS || hint.Completed != oracle.Completed {
		t.Fatalf("exact hints diverged from oracle:\nhint   %+v\noracle %+v", hint, oracle)
	}
	// SRPT minimizes mean sojourn; with this heavy-tailed trace it must
	// beat FCFS on the mean.
	if oracle.MeanUS >= fcfs.MeanUS {
		t.Fatalf("oracle SRPT mean %.1fus not better than FCFS %.1fus", oracle.MeanUS, fcfs.MeanUS)
	}
}

// TestReplayNoisyHintsCostTail: ×10 multiplicative hint noise must not
// beat the oracle — the regret ordering the bench scenario CI95-gates.
func TestReplayNoisyHintsCostTail(t *testing.T) {
	w := synthWindow(2000, 3, 20000, 1)
	// Perturb hints deterministically: alternate ×10 over- and ×0.1
	// under-estimates (rank-scrambling, the damaging kind of noise).
	for i := range w.Recs {
		if i%2 == 0 {
			w.Recs[i].HintNS *= 10
		} else {
			w.Recs[i].HintNS /= 10
		}
	}
	res, ok := ReplayWindow(w, Config{Workers: 2, QuantumUS: 100})
	if !ok {
		t.Fatal("replay skipped")
	}
	noisy, oracle := res.PolicyRatio(PolicySRPTHint), res.PolicyRatio(PolicySRPTOracle)
	if noisy <= 0 || oracle <= 0 {
		t.Fatalf("missing ratios: %+v", res.Policies)
	}
	if oracle > noisy {
		t.Fatalf("oracle ratio %.3f worse than x10-noisy hints %.3f", oracle, noisy)
	}
}

// TestReplayerLifecycle: skip accounting on thin windows, scoring on
// real ones, history/latest/dump plumbing.
func TestReplayerLifecycle(t *testing.T) {
	ring := live.NewCaptureRing(4096, 1)
	r := NewReplayer(ring, Config{Workers: 2, QuantumUS: 100, MinRecs: 16}, time.Hour)

	if _, ok := r.ReplayOnce(); ok {
		t.Fatal("empty ring scored a window")
	}
	if w, s := r.Counts(); w != 0 || s != 1 {
		t.Fatalf("counts after empty drain: %d/%d, want 0/1", w, s)
	}
	if r.Latest() != nil {
		t.Fatal("Latest non-nil before any scored window")
	}

	feedRing(ring, synthWindow(500, 21, 20000, 1))
	res, ok := r.ReplayOnce()
	if !ok {
		t.Fatal("500-record window skipped")
	}
	if got := r.Latest(); got == nil || got.AchievedP99US != res.AchievedP99US {
		t.Fatalf("Latest = %+v, want the scored window", got)
	}
	if hist := r.Results(0); len(hist) != 1 {
		t.Fatalf("history len %d, want 1", len(hist))
	}
	if res.String() == "" || res.RegretRatio() <= 0 {
		t.Fatalf("summary incomplete: %q regret %.2f", res.String(), res.RegretRatio())
	}

	var buf bytes.Buffer
	if err := r.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Schema   int      `json:"schema"`
		Policies []string `json:"policies"`
		Windows  uint64   `json:"windows"`
		Skipped  uint64   `json:"skipped"`
		Results  []Result `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump not valid JSON: %v\n%s", err, buf.String())
	}
	if dump.Schema != 1 || dump.Windows != 1 || dump.Skipped != 1 || len(dump.Results) != 1 || len(dump.Policies) != 3 {
		t.Fatalf("dump fields: %+v", dump)
	}
	r.Stop() // never Started: must not hang
}

// feedRing loads a synthetic window's records into a live ring through
// the public-ish surface the observer uses (rate 1 keeps everything).
func feedRing(ring *live.CaptureRing, w live.CaptureWindow) {
	for _, rec := range w.Recs {
		ring.OfferRecord(rec)
	}
}
