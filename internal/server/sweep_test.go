package server

import (
	"reflect"
	"testing"

	"concord/internal/cost"
	"concord/internal/dist"
)

// TestSeedForGolden pins the seed-derivation function. These values are
// load-bearing: every figure's numbers depend on them, and the parallel
// runner relies on seeds being a pure function of grid coordinates. Any
// change here silently shifts every published table.
func TestSeedForGolden(t *testing.T) {
	cases := []struct {
		base         uint64
		system, load int
		want         uint64
	}{
		{1, 0, 0, 0x35aa233257ed720d},
		{1, 0, 1, 0x2d8ba0bbf2dedaf7},
		{1, 1, 0, 0x0ff428b25743d371},
		{1, 2, 7, 0x618f5b611e1e791a},
		{7, 0, 0, 0xcb2209f1f72ad2b9},
		{7, 3, 5, 0xc5fc8dddbad0b0cc},
		{12345, 9, 41, 0xeafb448f56c60318},
	}
	for _, c := range cases {
		if got := SeedFor(c.base, c.system, c.load); got != c.want {
			t.Errorf("SeedFor(%d, %d, %d) = %#016x, want %#016x",
				c.base, c.system, c.load, got, c.want)
		}
	}
	// Distinct coordinates must yield distinct seeds (the old linear
	// seed*1e6+offset scheme collided across systems).
	seen := map[uint64][2]int{}
	for s := 0; s < 8; s++ {
		for l := 0; l < 64; l++ {
			v := SeedFor(1, s, l)
			if prev, dup := seen[v]; dup {
				t.Fatalf("seed collision: (%d,%d) and (%d,%d) both map to %#x",
					s, l, prev[0], prev[1], v)
			}
			seen[v] = [2]int{s, l}
		}
	}
}

// TestSweepParallelMatchesSerial checks the core determinism contract:
// SweepParallel produces exactly the serial Sweep's curve at any worker
// count, including counts exceeding the number of load points.
func TestSweepParallelMatchesSerial(t *testing.T) {
	m := cost.Default()
	cfg := Concord(m, 4, 5)
	wl := Workload{Dist: dist.Bimodal(50, 1, 50, 100)}
	loads := []float64{20, 40, 60, 80}
	p := RunParams{Requests: 3000, Seed: 11, MaxCentralQueue: 100000, DrainSlackUS: 50_000}

	want := Sweep(cfg, wl, loads, p)
	for _, par := range []int{1, 2, 3, 8} {
		got := SweepParallel(cfg, wl, loads, p, par)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("SweepParallel(par=%d) differs from serial Sweep", par)
		}
	}
	// Repeat runs must also be identical (no hidden global state).
	if again := SweepParallel(cfg, wl, loads, p, 2); !reflect.DeepEqual(want, again) {
		t.Errorf("repeated SweepParallel(par=2) differs from first run")
	}
}
