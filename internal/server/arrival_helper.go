package server

import "concord/internal/dist"

// poissonAt returns a Poisson arrival process at the given kRps.
func poissonAt(kRps float64) dist.Arrival {
	return dist.NewPoisson(kRps * 1000)
}
