package server

import (
	"math"

	"concord/internal/policy"
	"concord/internal/sim"
	"concord/internal/stats"
)

// opKind enumerates the dispatcher's serialized operations.
type opKind int

const (
	opArrival  opKind = iota // accept + enqueue an incoming request
	opPush                   // dispatch one request to a worker queue
	opSignal                 // send a preemption signal to a worker
	opRequeue                // re-place a preempted request; frees the slot
	opSlotFree               // notice a completed request left a worker
)

// op is one unit of dispatcher work.
type op struct {
	kind   opKind
	req    *Request
	epoch  uint32 // req's epoch at enqueue time; guards against pooled reuse
	worker int
	cost   sim.Cycles
}

// worker models one worker thread.
type worker struct {
	id       int
	local    []*Request // bounded local queue (in-service request not included)
	cur      *Request
	runStart sim.Cycles // when the current segment began executing
	segEnd   sim.Cycles // when the current segment will complete
	signaled bool
	idle     bool
	// transit is true while the worker pays yield overheads (notify +
	// context switch); it cannot accept a new request until they finish.
	transit   bool
	idleSince sim.Cycles
	totalIdle sim.Cycles

	completionEv *sim.Event
	quantumEv    *sim.Event
	yieldEv      *sim.Event

	// Callbacks bound once at machine construction so the hot path
	// schedules events without allocating a fresh closure per segment.
	// Each nils its own event handle on fire — required by the engine's
	// event pooling (a fired event's handle must never be Cancelled).
	completeFn func(sim.Cycles)
	observeFn  func(sim.Cycles) // self-preemption quantum observation
	signalFn   func(sim.Cycles) // dispatcher-monitored quantum expiry
	yieldFn    func(sim.Cycles)
	transitFn  func(sim.Cycles)
}

// Machine is one simulated server instance processing one run.
type Machine struct {
	cfg Config
	wl  Workload
	p   RunParams

	eng     *sim.Engine
	rng     *sim.RNG
	central policy.Queue[*Request]
	workers []*worker
	occ     []int // dispatcher's view of per-worker occupancy

	ops     []op
	opsHead int
	dBusy   bool
	saved   *Request // work-conserving dispatcher's parked request

	// pending is the dispatcher operation currently paying its cost;
	// dBusy serializes the dispatcher so one slot suffices. Keeping it in
	// a field (with a bound dispatchFn) avoids a closure per operation.
	pending    op
	dispatchFn func(sim.Cycles)
	arrivalFn  func(sim.Cycles)
	stealFn    func(sim.Cycles)

	// In-flight work-conserving steal state (single slot, like pending).
	stealReq      *Request
	stealSlice    sim.Cycles
	stealTotal    sim.Cycles
	stealFinishes bool

	// freeReqs recycles completed Request objects; in steady state the
	// allocation rate drops from one per request to one per unit of peak
	// concurrency. Disabled when OnComplete is set (callers may retain).
	freeReqs []*Request

	quantum  sim.Cycles
	workerOv float64 // worker-side c_proc fraction
	dispOv   float64 // dispatcher-side c_proc fraction (rdtsc instrumentation)

	// run state
	admitted     int
	completed    int
	stolen       int
	preemptions  int
	arrivalsDone bool
	lastArrival  sim.Cycles
	watchdog     *sim.Event
	saturated    bool
	dBusyCycles  sim.Cycles

	collector *stats.Collector
	// OnComplete, when non-nil, receives every completed request
	// (including warmup) for trace analysis.
	OnComplete func(*Request)

	nextID uint64
}

// Result summarizes one run.
type Result struct {
	Point     stats.Point
	Collector *stats.Collector
	Saturated bool
	Completed int
	Admitted  int
}

// New builds a machine for the given system, workload, and run
// parameters. It panics on an invalid Config (use Config.Validate to
// check first when the config is not statically known).
func New(cfg Config, wl Workload, p RunParams) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p = p.withDefaults()
	m := &Machine{
		cfg: cfg,
		wl:  wl,
		p:   p,
		eng: sim.NewEngineSized(64 + 4*cfg.Workers),
		rng: sim.NewRNG(p.Seed),
		ops: make([]op, 0, 256),
	}
	m.eng.EnablePooling()
	if p.ExactSamples {
		m.collector = stats.NewCollector(p.Requests)
	} else {
		m.collector = stats.NewReservoir(stats.DefaultReservoirSize, p.Seed)
	}
	if cfg.SRPT {
		m.central = policy.NewSRPT[*Request]()
	} else {
		m.central = policy.NewFCFS[*Request]()
	}
	m.workers = make([]*worker, cfg.Workers)
	m.occ = make([]int, cfg.Workers)
	for i := range m.workers {
		w := &worker{
			id:    i,
			idle:  true,
			local: make([]*Request, 0, cfg.QueueBound),
		}
		w.completeFn = func(t sim.Cycles) {
			w.completionEv = nil
			m.completeSegment(w, t)
		}
		w.observeFn = func(t sim.Cycles) {
			w.quantumEv = nil
			if w.cur != nil {
				m.yield(w, w.cur, t)
			}
		}
		w.signalFn = func(t sim.Cycles) {
			w.quantumEv = nil
			req := w.cur
			if req == nil {
				return
			}
			m.enqueueOp(op{
				kind:   opSignal,
				req:    req,
				epoch:  req.epoch,
				worker: w.id,
				cost:   m.cfg.Mech.SignalCost(),
			}, t)
		}
		w.yieldFn = func(t sim.Cycles) {
			w.yieldEv = nil
			if w.cur != nil {
				m.yield(w, w.cur, t)
			}
		}
		w.transitFn = func(t sim.Cycles) {
			w.transit = false
			m.workerNext(w, t)
		}
		m.workers[i] = w
	}
	m.dispatchFn = m.dispatchDone
	m.arrivalFn = m.arrive
	m.stealFn = m.stealDone
	m.quantum = cfg.Model.MicrosToCycles(cfg.QuantumUS)
	if cfg.Mech != nil {
		m.workerOv = cfg.Mech.ProcOverhead()
	} else {
		m.workerOv = cfg.Model.RuntimeOverhead
	}
	// The dispatcher's stolen work always runs under rdtsc
	// self-preemption instrumentation (§3.3).
	m.dispOv = cfg.Model.RuntimeOverhead + cfg.Model.InstrOverheadRdtsc
	return m
}

// Run executes the simulation to completion and returns the summary.
func (m *Machine) Run() Result {
	m.scheduleArrival(0)
	m.eng.Run()
	return m.result()
}

// ---------- arrivals ----------

func (m *Machine) scheduleArrival(now sim.Cycles) {
	if m.admitted >= m.p.Requests {
		m.arrivalsDone = true
		m.lastArrival = now
		slack := m.cfg.Model.MicrosToCycles(m.p.DrainSlackUS)
		m.watchdog = m.eng.At(now+slack, func(sim.Cycles) {
			m.watchdog = nil
			m.saturated = true
			m.eng.Stop()
		})
		return
	}
	gap := m.cfg.Model.MicrosToCycles(m.wl.Arrival.NextGapUS(m.rng))
	m.eng.After(gap, m.arrivalFn)
}

func (m *Machine) arrive(t sim.Cycles) {
	req := m.newRequest(t)
	m.admitted++
	m.enqueueOp(op{kind: opArrival, req: req, epoch: req.epoch, cost: m.cfg.Model.ArrivalCost}, t)
	m.scheduleArrival(t)
}

func (m *Machine) newRequest(now sim.Cycles) *Request {
	s := m.wl.Dist.Sample(m.rng)
	sc := m.cfg.Model.MicrosToCycles(s.ServiceUS)
	if sc < 1 {
		sc = 1
	}
	var req *Request
	if n := len(m.freeReqs); n > 0 {
		req = m.freeReqs[n-1]
		m.freeReqs[n-1] = nil
		m.freeReqs = m.freeReqs[:n-1]
		*req = Request{epoch: req.epoch}
	} else {
		req = &Request{}
	}
	req.ID = m.nextID
	req.Class = s.Class
	req.ServiceUS = s.ServiceUS
	req.serviceCycles = sc
	req.remainingBase = sc
	req.Arrival = now
	req.FirstStart = -1
	req.warmup = m.admitted < int(float64(m.p.Requests)*m.p.WarmupFrac)
	if m.cfg.HintedSRPT {
		req.useHint = true
		if s.HintUS > 0 {
			if req.hintCycles = m.cfg.Model.MicrosToCycles(s.HintUS); req.hintCycles < 1 {
				req.hintCycles = 1
			}
		}
	}
	m.nextID++
	if frac, ok := m.wl.CritFracByClass[s.Class]; ok && frac > 0 {
		critBase := sim.Cycles(float64(sc) * frac)
		req.critWall = wallFor(critBase, m.workerOv)
	}
	return req
}

// ---------- dispatcher ----------

func (m *Machine) enqueueOp(o op, now sim.Cycles) {
	m.ops = append(m.ops, o)
	m.kick(now)
}

func (m *Machine) popOp() (op, bool) {
	if m.opsHead >= len(m.ops) {
		return op{}, false
	}
	o := m.ops[m.opsHead]
	m.ops[m.opsHead] = op{}
	m.opsHead++
	if m.opsHead == len(m.ops) {
		m.ops = m.ops[:0]
		m.opsHead = 0
	} else if m.opsHead > 1024 && m.opsHead*2 > len(m.ops) {
		n := copy(m.ops, m.ops[m.opsHead:])
		for i := n; i < len(m.ops); i++ {
			m.ops[i] = op{}
		}
		m.ops = m.ops[:n]
		m.opsHead = 0
	}
	return o, true
}

// kick advances the dispatcher if it is idle. Dispatches take priority
// over pending operations: as in the real dispatch loop, requests flow to
// free worker slots before new packets are ingested, and the two phases
// alternate naturally because dispatching drains the central queue while
// pending arrivals refill it.
func (m *Machine) kick(now sim.Cycles) {
	if m.dBusy {
		return
	}
	o, ok := m.generateOp()
	if !ok {
		o, ok = m.popOp()
	}
	if ok {
		m.dBusy = true
		m.pending = o
		m.eng.After(o.cost, m.dispatchFn)
		return
	}
	if m.cfg.WorkConserving {
		m.steal(now)
	}
}

func (m *Machine) dispatchDone(t sim.Cycles) {
	o := m.pending
	m.pending = op{}
	m.dBusy = false
	m.dBusyCycles += o.cost
	m.apply(o, t)
	m.kick(t)
}

// generateOp creates a dispatch operation if the central queue has work
// and some worker queue has room.
func (m *Machine) generateOp() (op, bool) {
	if m.central.Len() == 0 {
		return op{}, false
	}
	w := policy.ShortestQueue(m.occ, m.cfg.QueueBound)
	if w < 0 {
		return op{}, false
	}
	c := m.cfg.Model.DispatchBase + m.cfg.DispatchExtra
	if m.cfg.QueueBound > 1 {
		c += m.cfg.Model.DispatchJBSQExtra
	}
	return op{kind: opPush, worker: w, cost: c}, true
}

func (m *Machine) apply(o op, now sim.Cycles) {
	switch o.kind {
	case opArrival:
		m.central.Push(o.req, false)
		if m.central.Len() > m.p.MaxCentralQueue {
			m.saturated = true
			m.eng.Stop()
		}
	case opPush:
		req, ok := m.central.Pop()
		if !ok {
			return
		}
		w := m.workers[o.worker]
		m.occ[o.worker]++
		if w.idle && w.cur == nil && len(w.local) == 0 {
			// The worker is stalled waiting: it pays the synchronous
			// handoff's coherence misses (c_next) before it can start.
			m.eng.After(m.cfg.Model.NextRequest, func(t sim.Cycles) {
				m.receive(w, req, t)
			})
		} else {
			// Push overlaps with the worker's current execution.
			m.receive(w, req, now)
		}
	case opSignal:
		m.deliverSignal(o, now)
	case opRequeue:
		m.occ[o.worker]--
		m.central.Push(o.req, true)
	case opSlotFree:
		m.occ[o.worker]--
	}
}

// ---------- work-conserving dispatcher (§3.3) ----------

func (m *Machine) steal(now sim.Cycles) {
	req := m.saved
	if req == nil {
		if !m.allQueuesFull() {
			return
		}
		var ok bool
		req, ok = m.central.PopNonStarted()
		if !ok {
			return
		}
		req.started = true
		req.onDispatcher = true
		if req.FirstStart < 0 {
			req.FirstStart = now
		}
	}
	m.saved = nil
	wall := wallFor(req.remainingBase, m.dispOv)
	slice := m.cfg.Model.DispatcherSlice
	finishes := wall <= slice
	if finishes {
		slice = wall
	}
	// A context switch into (and, if parking, out of) the request.
	total := slice + m.cfg.Model.ContextSwitch
	if total < 1 {
		total = 1
	}
	m.dBusy = true
	m.stealReq = req
	m.stealSlice = slice
	m.stealTotal = total
	m.stealFinishes = finishes
	m.eng.After(total, m.stealFn)
}

func (m *Machine) stealDone(t sim.Cycles) {
	req, slice, total, finishes := m.stealReq, m.stealSlice, m.stealTotal, m.stealFinishes
	m.stealReq = nil
	m.dBusy = false
	m.dBusyCycles += total
	if finishes {
		req.remainingBase = 0
		m.stolen++
		m.complete(req, t)
	} else {
		req.remainingBase -= baseFor(slice, m.dispOv)
		if req.remainingBase < 1 {
			req.remainingBase = 1
		}
		m.saved = req
	}
	m.kick(t)
}

func (m *Machine) allQueuesFull() bool {
	for _, o := range m.occ {
		if o < m.cfg.QueueBound {
			return false
		}
	}
	return true
}

// ---------- workers ----------

func (m *Machine) receive(w *worker, req *Request, now sim.Cycles) {
	w.local = append(w.local, req)
	if w.cur == nil && !w.transit {
		m.acquireNext(w, now)
	}
}

func (m *Machine) acquireNext(w *worker, now sim.Cycles) {
	req := w.local[0]
	copy(w.local, w.local[1:])
	w.local[len(w.local)-1] = nil
	w.local = w.local[:len(w.local)-1]
	if w.idle {
		w.totalIdle += now - w.idleSince
		w.idle = false
	}
	overhead := m.cfg.Model.JBSQLocalPop + m.cfg.Model.ContextSwitch
	m.startSegment(w, req, now+overhead)
}

func (m *Machine) startSegment(w *worker, req *Request, start sim.Cycles) {
	w.cur = req
	w.signaled = false
	w.runStart = start
	if !req.started {
		req.started = true
	}
	if req.FirstStart < 0 {
		req.FirstStart = start
	}
	wall := wallFor(req.remainingBase, m.workerOv)
	if req.Preemptions > 0 {
		// Resuming a preempted request refills its working set.
		wall += m.cfg.Model.PreemptCacheReload
	}
	w.segEnd = start + wall
	w.completionEv = m.eng.At(w.segEnd, w.completeFn)
	m.scheduleQuantum(w, req, start)
}

func (m *Machine) scheduleQuantum(w *worker, req *Request, start sim.Cycles) {
	if m.quantum <= 0 || m.cfg.Mech == nil {
		return
	}
	if m.cfg.DeferWholeRequest && req.critWall > 0 {
		// Shinjuku's LevelDB port: preemption disabled for the whole
		// request when it may take locks.
		return
	}
	expiry := start + m.quantum
	if expiry >= w.segEnd {
		return // completes within the quantum
	}
	if m.cfg.Mech.SelfPreempting() {
		observe := expiry + m.cfg.Mech.ObserveDelay(m.rng)
		if observe >= w.segEnd {
			return
		}
		w.quantumEv = m.eng.At(observe, w.observeFn)
		return
	}
	// The dispatcher monitors elapsed time and signals at expiry; the
	// signal is one of its serialized operations, so it is late when the
	// dispatcher is busy.
	w.quantumEv = m.eng.At(expiry, w.signalFn)
}

func (m *Machine) deliverSignal(o op, now sim.Cycles) {
	w := m.workers[o.worker]
	if w.cur != o.req || o.req.epoch != o.epoch || w.signaled {
		return // stale: the request already left this worker
	}
	w.signaled = true
	yieldAt := now + m.cfg.Mech.ObserveDelay(m.rng)
	if o.req.Preemptions == 0 && o.req.critWall > 0 {
		// Safety-first preemption: defer the yield past the critical
		// section (§3.1).
		if critEnd := w.runStart + o.req.critWall; critEnd > yieldAt {
			yieldAt = critEnd
		}
	}
	if yieldAt >= w.segEnd {
		return // the request completes before it would yield
	}
	w.yieldEv = m.eng.At(yieldAt, w.yieldFn)
}

func (m *Machine) yield(w *worker, req *Request, now sim.Cycles) {
	if w.cur != req {
		return
	}
	elapsed := now - w.runStart
	consumed := baseFor(elapsed, m.workerOv)
	if consumed >= req.remainingBase {
		consumed = req.remainingBase - 1
	}
	if consumed < 0 {
		consumed = 0
	}
	req.remainingBase -= consumed
	req.Preemptions++
	m.preemptions++
	m.eng.Cancel(w.completionEv)
	w.completionEv = nil
	m.eng.Cancel(w.quantumEv)
	w.quantumEv = nil
	w.cur = nil
	w.signaled = false
	w.transit = true
	m.enqueueOp(op{kind: opRequeue, req: req, epoch: req.epoch, worker: w.id, cost: m.cfg.Model.RequeueCost}, now)
	overhead := m.cfg.Mech.NotifyCost() + m.cfg.Model.ContextSwitch
	m.eng.After(overhead, w.transitFn)
}

func (m *Machine) completeSegment(w *worker, now sim.Cycles) {
	req := w.cur
	req.remainingBase = 0
	m.eng.Cancel(w.quantumEv)
	w.quantumEv = nil
	m.eng.Cancel(w.yieldEv)
	w.yieldEv = nil
	w.cur = nil
	w.signaled = false
	m.complete(req, now)
	m.enqueueOp(op{kind: opSlotFree, worker: w.id, cost: m.cfg.Model.SlotFreeCost}, now)
	m.workerNext(w, now)
}

func (m *Machine) workerNext(w *worker, now sim.Cycles) {
	if len(w.local) > 0 {
		m.acquireNext(w, now)
		return
	}
	w.idle = true
	w.idleSince = now
}

// ---------- completion & results ----------

func (m *Machine) complete(req *Request, now sim.Cycles) {
	req.Done = now
	m.completed++
	if m.OnComplete != nil {
		m.OnComplete(req)
	}
	if !req.warmup {
		m.collector.Add(stats.Sample{
			Class:     req.Class,
			Slowdown:  float64(now-req.Arrival) / float64(req.serviceCycles),
			SojournUS: m.cfg.Model.CyclesToMicros(now - req.Arrival),
		})
	}
	if m.arrivalsDone && m.completed == m.admitted {
		m.eng.Cancel(m.watchdog)
		m.watchdog = nil
		m.eng.Stop()
	}
	if m.OnComplete == nil {
		// Recycle: nothing outside the machine can retain the request.
		// Bump the epoch now so any still-queued dispatcher op for the
		// finished lifetime is recognizably stale.
		req.epoch++
		m.freeReqs = append(m.freeReqs, req)
	}
}

func (m *Machine) result() Result {
	span := m.eng.Now()
	if span <= 0 {
		span = 1
	}
	var idle sim.Cycles
	for _, w := range m.workers {
		idle += w.totalIdle
		if w.idle {
			idle += m.eng.Now() - w.idleSince
		}
	}
	pt := stats.Point{
		AchievedKRps:   float64(m.completed) / (m.cfg.Model.CyclesToMicros(span) / 1000) / 1000,
		P50:            m.collector.SlowdownPercentile(50),
		P99:            m.collector.SlowdownPercentile(99),
		P999:           m.collector.SlowdownPercentile(99.9),
		Mean:           m.collector.MeanSlowdown(),
		Samples:        m.collector.Len(),
		DispatcherBusy: float64(m.dBusyCycles) / float64(span),
		WorkerIdle:     float64(idle) / float64(span) / float64(m.cfg.Workers),
	}
	if m.completed > 0 {
		pt.StolenFrac = float64(m.stolen) / float64(m.completed)
		pt.Preemptions = float64(m.preemptions) / float64(m.completed)
	}
	sat := m.saturated || m.completed < m.admitted
	if sat {
		// Unfinished requests are worse than anything measured: the tail
		// metric is unbounded at this load.
		pt.P999 = math.Inf(1)
	}
	return Result{
		Point:     pt,
		Collector: m.collector,
		Saturated: sat,
		Completed: m.completed,
		Admitted:  m.admitted,
	}
}
