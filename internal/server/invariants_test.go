package server

import (
	"math"
	"testing"
	"testing/quick"

	"concord/internal/cost"
	"concord/internal/dist"
)

// TestSlowdownNeverBelowOne: sojourn includes service, so slowdown >= 1
// for every completed request in every configuration.
func TestSlowdownNeverBelowOne(t *testing.T) {
	m := cost.Default()
	for _, cfg := range []Config{
		Shinjuku(m, 3, 5),
		PersephoneFCFS(m, 3),
		Concord(m, 3, 5),
	} {
		wl := Workload{Dist: dist.Bimodal(80, 1, 20, 50)}
		wl.Arrival = dist.NewPoisson(100000)
		mach := New(cfg, wl, RunParams{Requests: 20000, Seed: 29, MaxCentralQueue: 100000})
		mach.OnComplete = func(r *Request) {
			if r.Done < r.Arrival+r.RemainingCycles() { // remaining is 0 at completion
				t.Fatalf("%s: request done before arrival+service", cfg.Name)
			}
			slow := float64(r.Done-r.Arrival) / math.Max(1, float64(m.MicrosToCycles(r.ServiceUS)))
			if slow < 0.99 {
				t.Fatalf("%s: slowdown %v < 1 (service %vµs)", cfg.Name, slow, r.ServiceUS)
			}
		}
		mach.Run()
	}
}

// TestFirstStartAfterArrival: requests cannot start before they arrive,
// and preempted requests keep monotone progress.
func TestFirstStartAfterArrival(t *testing.T) {
	m := cost.Default()
	cfg := Concord(m, 2, 5)
	wl := Workload{Dist: dist.Bimodal(50, 1, 50, 100)}
	wl.Arrival = dist.NewPoisson(50000)
	mach := New(cfg, wl, RunParams{Requests: 10000, Seed: 31, MaxCentralQueue: 100000})
	mach.OnComplete = func(r *Request) {
		if r.FirstStart < r.Arrival {
			t.Fatalf("request started at %d before arrival %d", r.FirstStart, r.Arrival)
		}
		if r.Done < r.FirstStart {
			t.Fatalf("request done at %d before first start %d", r.Done, r.FirstStart)
		}
	}
	mach.Run()
}

// TestWorkConservationJBSQ: with JBSQ(2) at saturation, workers spend
// almost no time idle — the §3.2 claim the design exists to deliver.
func TestWorkConservationJBSQ(t *testing.T) {
	m := cost.Default()
	cfg := CoopJBSQ(m, 4, 0)
	wl := Workload{Dist: dist.NewFixed(10)}
	wl.Arrival = dist.NewPoisson(480000) // 1.2× the 4-worker capacity
	res := New(cfg, wl, RunParams{Requests: 40000, Seed: 37, MaxCentralQueue: 200000}).Run()
	if res.Point.WorkerIdle > 0.02 {
		t.Fatalf("JBSQ(2) worker idle fraction = %v at saturation, want ~0", res.Point.WorkerIdle)
	}
}

// TestFCFSOrderingAtLowLoad: with a single worker, run-to-completion,
// and well-spaced arrivals, completions preserve arrival order.
func TestFCFSOrderingAtLowLoad(t *testing.T) {
	m := cost.Default()
	cfg := PersephoneFCFS(m, 1)
	wl := Workload{Dist: dist.NewFixed(5)}
	wl.Arrival = dist.NewUniform(50000) // 20µs gaps ≫ 5µs service
	var lastID uint64
	first := true
	mach := New(cfg, wl, RunParams{Requests: 5000, Seed: 41})
	mach.OnComplete = func(r *Request) {
		if !first && r.ID <= lastID {
			t.Fatalf("completion order violated: %d after %d", r.ID, lastID)
		}
		lastID, first = r.ID, false
	}
	mach.Run()
}

// TestSeedSweepStability: the measured p50 at moderate load is stable
// across seeds (the simulator is not chaotically sensitive).
func TestSeedSweepStability(t *testing.T) {
	m := cost.Default()
	cfg := Concord(m, 4, 5)
	wl := Workload{Dist: dist.NewFixed(10)}
	var p50s []float64
	for seed := uint64(1); seed <= 5; seed++ {
		wl.Arrival = dist.NewPoisson(200000)
		res := New(cfg, wl, RunParams{Requests: 20000, Seed: seed}).Run()
		p50s = append(p50s, res.Point.P50)
	}
	for _, v := range p50s[1:] {
		if math.Abs(v-p50s[0]) > 0.25*p50s[0] {
			t.Fatalf("p50 varies wildly across seeds: %v", p50s)
		}
	}
}

// Property: for any small workload mix, every admitted request is
// eventually completed at sub-saturation load, exactly once.
func TestAllRequestsCompleteOnceProperty(t *testing.T) {
	m := cost.Default()
	prop := func(seed uint16, longPct uint8) bool {
		pct := float64(longPct%50) + 1
		wl := Workload{Dist: dist.Bimodal(100-pct, 1, pct, 20)}
		wl.Arrival = dist.NewPoisson(100000) // far below 3-worker capacity
		seen := map[uint64]int{}
		mach := New(Concord(m, 3, 5), wl, RunParams{Requests: 3000, Seed: uint64(seed) + 1})
		mach.OnComplete = func(r *Request) { seen[r.ID]++ }
		res := mach.Run()
		if res.Saturated || res.Completed != res.Admitted {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return len(seen) == res.Admitted
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPreemptionCountMatchesQuantumArithmetic: an isolated request of
// length S preempted at quantum q yields ≈ floor(S/q) times (§2, Eq. 3).
func TestPreemptionCountMatchesQuantumArithmetic(t *testing.T) {
	m := cost.Default()
	for _, tc := range []struct {
		serviceUS, quantumUS float64
		wantMin, wantMax     int
	}{
		{100, 5, 17, 20},
		{100, 10, 8, 10},
		{50, 5, 8, 10},
		{4, 5, 0, 0},
	} {
		cfg := Concord(m, 1, tc.quantumUS)
		cfg.WorkConserving = false
		wl := Workload{Dist: dist.NewFixed(tc.serviceUS)}
		wl.Arrival = dist.NewPoisson(500) // one at a time
		total, n := 0, 0
		mach := New(cfg, wl, RunParams{Requests: 200, Seed: 43})
		mach.OnComplete = func(r *Request) { total += r.Preemptions; n++ }
		mach.Run()
		avg := float64(total) / float64(n)
		if avg < float64(tc.wantMin)-0.5 || avg > float64(tc.wantMax)+0.5 {
			t.Errorf("S=%v q=%v: avg preemptions %v, want in [%d,%d]",
				tc.serviceUS, tc.quantumUS, avg, tc.wantMin, tc.wantMax)
		}
	}
}
