// Package server simulates a microsecond-scale RPC server built in the
// style of Shinjuku, Persephone, and Concord (§2.1's system model): one
// dispatcher thread that owns a central queue, n worker threads pinned to
// cores, and a configurable preemption mechanism, worker-queue bound
// (JBSQ(k), with k=1 being a synchronous single queue), and
// work-conserving dispatcher.
//
// The simulation is event-driven at CPU-cycle resolution. Every overhead
// the paper's §2 model names is charged explicitly: c_proc as a rate
// inflation on application work, c_notif on each observed preemption,
// c_switch on each context switch, and c_next on each synchronous
// dispatcher→worker handoff. The dispatcher is a serial resource: every
// enqueue, dispatch, preemption signal, and re-queue costs dispatcher
// cycles, so dispatcher saturation and late preemption signals emerge
// naturally rather than being modeled analytically.
package server

import (
	"concord/internal/sim"
)

// Request is one in-flight request in the simulated server.
type Request struct {
	ID    uint64
	Class string

	// ServiceUS is the un-instrumented service time in µs; slowdown is
	// measured against it (§5.1).
	ServiceUS float64

	// serviceCycles is ServiceUS in cycles (the slowdown denominator).
	serviceCycles sim.Cycles

	// remainingBase is the un-instrumented work left. Wall-clock execution
	// inflates it by the executing thread's instrumentation rate.
	remainingBase sim.Cycles

	// critWall is the wall-cycle length of the initial critical section
	// (lock held): preemption is deferred until it ends (§3.1's
	// safety-first preemption). Only the first execution segment can be
	// inside the critical section.
	critWall sim.Cycles

	Arrival     sim.Cycles
	FirstStart  sim.Cycles
	Done        sim.Cycles
	Preemptions int

	// started reports the request has executed at least one segment.
	started bool
	// onDispatcher marks requests the work-conserving dispatcher picked
	// up; they can never migrate to a worker (§3.3).
	onDispatcher bool
	// warmup marks requests in the discarded warmup window.
	warmup bool
	// epoch increments each time this Request object is recycled through
	// the machine's freelist; pending dispatcher ops carry the epoch they
	// were enqueued under so stale ops for a completed-and-reused request
	// are recognized and dropped (pointer identity alone is not enough
	// once objects are pooled).
	epoch uint32

	// hintCycles is the request's size estimate in cycles (0 = unhinted)
	// and useHint selects the estimated-size key space below — set only
	// under Config.HintedSRPT, so oracle SRPT costs nothing.
	hintCycles sim.Cycles
	useHint    bool
}

// Hinted-SRPT key bands, mirroring the live runtime's task keys: three
// disjoint ranges so the queue can never invert priorities across
// kinds. In-budget hinted requests key by remaining estimate; requests
// that have outrun their hint key by elapsed overage in a band above
// any credible hint (the estimate is spent, and the longer a request
// has overrun the longer it is likely to keep running); unhinted
// requests take the max-key sentinel and run last, FIFO among
// themselves via the SRPT heap's sequence tie-break.
const (
	overBudgetKeyBase = sim.Cycles(1) << 60
	unhintedKey       = sim.Cycles(int64(^uint64(0) >> 1)) // math.MaxInt64
)

// RemainingCycles implements policy.Item. Oracle SRPT keys on the true
// un-instrumented work left; hinted SRPT (Config.HintedSRPT) keys on
// the hint minus work executed so far, in the three-band space above.
func (r *Request) RemainingCycles() sim.Cycles {
	if !r.useHint {
		return r.remainingBase
	}
	if r.hintCycles <= 0 {
		return unhintedKey
	}
	executed := r.serviceCycles - r.remainingBase
	rem := r.hintCycles - executed
	if rem < 0 {
		over := -rem
		if over >= unhintedKey-overBudgetKeyBase {
			over = unhintedKey - overBudgetKeyBase - 1 // stay below the sentinel
		}
		return overBudgetKeyBase + over
	}
	return rem
}

// wallFor returns the wall-clock cycles needed to execute base work at
// an inflation rate of (1+overhead).
func wallFor(base sim.Cycles, overhead float64) sim.Cycles {
	w := sim.Cycles(float64(base) * (1 + overhead))
	if w < base {
		w = base
	}
	if w < 1 {
		w = 1
	}
	return w
}

// baseFor returns the un-instrumented work executed during wall cycles at
// an inflation rate of (1+overhead).
func baseFor(wall sim.Cycles, overhead float64) sim.Cycles {
	b := sim.Cycles(float64(wall) / (1 + overhead))
	if b < 0 {
		b = 0
	}
	return b
}
