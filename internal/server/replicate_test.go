package server

import (
	"math"
	"testing"

	"concord/internal/cost"
	"concord/internal/dist"
)

func TestReplicatedMatchesSingleAtLowLoad(t *testing.T) {
	m := cost.Default()
	cfg := Concord(m, 4, 5)
	wl := Workload{Dist: dist.NewFixed(10)}
	p := RunParams{Requests: 20000, Seed: 51, MaxCentralQueue: 100000}

	single := RunReplicated(cfg, wl, 50, 1, p)
	dual := RunReplicated(cfg, wl, 50, 2, p)
	if math.IsInf(single.P999, 1) || math.IsInf(dual.P999, 1) {
		t.Fatal("saturated at trivially low load")
	}
	// At 50 kRps on 4 workers at 10µs (12.5% util) replication changes
	// nothing material.
	if math.Abs(single.P50-dual.P50) > 0.3*single.P50 {
		t.Fatalf("p50 differs at low load: single %v vs dual %v", single.P50, dual.P50)
	}
}

func TestReplicationRelievesDispatcherBottleneck(t *testing.T) {
	// Fixed(1µs) saturates the dispatcher far below worker capacity
	// (Fig. 8a); splitting into two single-dispatcher instances (§6)
	// roughly doubles the sustainable load.
	m := cost.Default()
	cfg := Concord(m, 8, 0)
	cfg.Mech = nil
	cfg.QuantumUS = 0
	cfg.WorkConserving = false
	wl := Workload{Dist: dist.NewFixed(1)}
	p := RunParams{Requests: 60000, Seed: 53, MaxCentralQueue: 60000, DrainSlackUS: 20000}

	// ~5 MRps: beyond one dispatcher (~4 MRps) but fine for two.
	load := 5000.0
	one := RunReplicated(cfg, wl, load, 1, p)
	two := RunReplicated(cfg, wl, load, 2, p)
	if !math.IsInf(one.P999, 1) && one.P999 < 50 {
		t.Fatalf("single dispatcher unexpectedly healthy at %v kRps: p999=%v", load, one.P999)
	}
	if math.IsInf(two.P999, 1) || two.P999 > 50 {
		t.Fatalf("two dispatchers still saturated at %v kRps: p999=%v", load, two.P999)
	}
}

func TestReplicatedValidation(t *testing.T) {
	m := cost.Default()
	cfg := Concord(m, 4, 5)
	wl := Workload{Dist: dist.NewFixed(10)}
	for name, fn := range map[string]func(){
		"zero replicas": func() { RunReplicated(cfg, wl, 10, 0, RunParams{Requests: 100}) },
		"uneven split":  func() { RunReplicated(cfg, wl, 10, 3, RunParams{Requests: 100}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}
