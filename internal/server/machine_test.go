package server

import (
	"math"
	"testing"

	"concord/internal/cost"
	"concord/internal/dist"
	"concord/internal/mech"
	"concord/internal/stats"
)

func fixedWL(us float64) Workload {
	return Workload{Dist: dist.NewFixed(us)}
}

func lowLoadParams(n int) RunParams {
	return RunParams{Requests: n, Seed: 42}
}

func TestSingleRequestLowLoadSlowdownNearOne(t *testing.T) {
	m := cost.Default()
	cfg := Concord(m, 2, 5)
	wl := fixedWL(10)
	wl.Arrival = dist.NewPoisson(1000) // 1 kRps: essentially no queueing
	res := New(cfg, wl, RunParams{Requests: 2000, Seed: 1}).Run()
	if res.Saturated {
		t.Fatal("saturated at 1 kRps on 2 workers")
	}
	if res.Completed != res.Admitted {
		t.Fatalf("completed %d of %d", res.Completed, res.Admitted)
	}
	p50 := res.Point.P50
	// Sojourn = dispatch pipeline + service; for a 10µs request the fixed
	// costs are well under 1µs, so slowdown should be just over 1.
	if p50 < 1 || p50 > 1.3 {
		t.Fatalf("p50 slowdown = %v, want ≈1", p50)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	m := cost.Default()
	cfg := Concord(m, 4, 5)
	wl := Workload{Dist: dist.Bimodal(50, 1, 50, 100)}
	wl.Arrival = dist.NewPoisson(30000)
	a := New(cfg, wl, RunParams{Requests: 5000, Seed: 7}).Run()
	b := New(cfg, wl, RunParams{Requests: 5000, Seed: 7}).Run()
	if a.Point.P999 != b.Point.P999 || a.Point.AchievedKRps != b.Point.AchievedKRps {
		t.Fatalf("same seed differs: %+v vs %+v", a.Point, b.Point)
	}
	c := New(cfg, wl, RunParams{Requests: 5000, Seed: 8}).Run()
	if a.Point.P999 == c.Point.P999 && a.Point.P50 == c.Point.P50 {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

func TestPreemptionOccursForLongRequests(t *testing.T) {
	m := cost.Default()
	cfg := Shinjuku(m, 2, 5)
	wl := fixedWL(100) // every request needs ~20 preemptions at q=5µs
	wl.Arrival = dist.NewPoisson(1000)
	var pre int
	mach := New(cfg, wl, RunParams{Requests: 500, Seed: 3})
	mach.OnComplete = func(r *Request) { pre += r.Preemptions }
	res := mach.Run()
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	avg := float64(pre) / float64(res.Completed)
	if avg < 15 || avg > 22 {
		t.Fatalf("avg preemptions = %v, want ≈19-20 for 100µs at q=5µs", avg)
	}
}

func TestNoPreemptionWithoutQuantum(t *testing.T) {
	m := cost.Default()
	cfg := PersephoneFCFS(m, 2)
	wl := fixedWL(100)
	wl.Arrival = dist.NewPoisson(1000)
	mach := New(cfg, wl, RunParams{Requests: 500, Seed: 3})
	mach.OnComplete = func(r *Request) {
		if r.Preemptions != 0 {
			t.Fatalf("request preempted %d times under run-to-completion", r.Preemptions)
		}
	}
	mach.Run()
}

func TestFCFSHeadOfLineBlocking(t *testing.T) {
	// Without preemption, short requests get stuck behind 500µs requests;
	// with preemption they do not. This is the paper's core premise.
	m := cost.Default()
	wl := Workload{Dist: dist.Bimodal(99.5, 0.5, 0.5, 500)}
	wl.Arrival = dist.NewPoisson(200000) // 200 kRps on 4 workers: ~15% util
	p := RunParams{Requests: 100000, Seed: 5}

	fcfs := New(PersephoneFCFS(m, 4), wl, p).Run()
	shin := New(Shinjuku(m, 4, 5), wl, p).Run()
	if fcfs.Saturated || shin.Saturated {
		t.Fatalf("saturated at low load: fcfs=%v shinjuku=%v", fcfs.Saturated, shin.Saturated)
	}
	// The p99.9 under FCFS must reflect blocking behind 500µs requests
	// (slowdown in the hundreds for 0.5µs requests), while preemptive
	// scheduling bounds it near the quantum.
	if fcfs.Point.P999 < 100 {
		t.Errorf("FCFS p99.9 = %v, expected severe head-of-line blocking (>100)", fcfs.Point.P999)
	}
	if shin.Point.P999 > fcfs.Point.P999/2 {
		t.Errorf("preemption did not help: shinjuku %v vs fcfs %v", shin.Point.P999, fcfs.Point.P999)
	}
}

func TestJBSQOccupancyBounded(t *testing.T) {
	m := cost.Default()
	for _, k := range []int{1, 2, 3} {
		cfg := Concord(m, 4, 5)
		cfg.QueueBound = k
		cfg.WorkConserving = false
		wl := fixedWL(2)
		wl.Arrival = dist.NewPoisson(1_500_000) // overload
		mach := New(cfg, wl, RunParams{Requests: 30000, Seed: 9, MaxCentralQueue: 50000})
		// Check the invariant on every dispatcher op application.
		done := false
		check := func() {
			if done {
				return
			}
			for i, o := range mach.occ {
				if o > k || o < 0 {
					t.Errorf("occ[%d] = %d outside [0,%d]", i, o, k)
					done = true
				}
				actual := len(mach.workers[i].local)
				if mach.workers[i].cur != nil {
					actual++
				}
				if actual > k {
					t.Errorf("worker %d holds %d requests > bound %d", i, actual, k)
					done = true
				}
			}
		}
		mach.OnComplete = func(*Request) { check() }
		mach.Run()
		check()
	}
}

func TestWorkConservingDispatcherCompletesRequests(t *testing.T) {
	m := cost.Default()
	cfg := Concord(m, 2, 5)
	wl := fixedWL(20)
	wl.Arrival = dist.NewPoisson(110_000) // just above 2-worker capacity (100k)
	res := New(cfg, wl, RunParams{Requests: 50000, Seed: 11}).Run()
	if res.Point.StolenFrac <= 0 {
		t.Fatal("work-conserving dispatcher never processed a request above worker capacity")
	}
	// Without work conservation the same load saturates.
	cfg2 := ConcordNoSteal(m, 2, 5)
	res2 := New(cfg2, wl, RunParams{Requests: 50000, Seed: 11}).Run()
	if !res2.Saturated && res.Saturated {
		t.Fatal("stealing made things worse")
	}
	if res.Point.AchievedKRps <= res2.Point.AchievedKRps {
		t.Errorf("work conservation did not raise throughput: %v vs %v kRps",
			res.Point.AchievedKRps, res2.Point.AchievedKRps)
	}
}

func TestDispatcherOnlyStealsNonStarted(t *testing.T) {
	m := cost.Default()
	cfg := Concord(m, 2, 5)
	wl := Workload{Dist: dist.Bimodal(50, 1, 50, 100)}
	wl.Arrival = dist.NewPoisson(200_000)
	mach := New(cfg, wl, RunParams{Requests: 30000, Seed: 13, MaxCentralQueue: 100000})
	mach.OnComplete = func(r *Request) {
		if r.onDispatcher && r.Preemptions > 0 {
			t.Fatalf("stolen request %d was preempted on a worker", r.ID)
		}
	}
	mach.Run()
}

func TestSaturationDetected(t *testing.T) {
	m := cost.Default()
	cfg := Shinjuku(m, 2, 5)
	wl := fixedWL(10)
	wl.Arrival = dist.NewPoisson(1_000_000) // 5× the 2-worker capacity
	res := New(cfg, wl, RunParams{Requests: 50000, Seed: 15, MaxCentralQueue: 10000}).Run()
	if !res.Saturated {
		t.Fatal("overload not flagged as saturated")
	}
	if !math.IsInf(res.Point.P999, 1) {
		t.Fatalf("saturated P999 = %v, want +Inf", res.Point.P999)
	}
}

func TestWorkerIdleLowerWithJBSQ(t *testing.T) {
	// Fig. 3's mechanism: at short service times, single-queue workers
	// stall on the synchronous handoff; JBSQ(2) workers do not.
	m := cost.Default()
	wl := fixedWL(2)
	p := RunParams{Requests: 100000, Seed: 17, MaxCentralQueue: 1 << 21}
	load := 2_000_000.0 // 4 workers at 2µs: offered slightly above capacity

	sq := Shinjuku(m, 4, 100) // quantum larger than service: no preemption
	sq.Name = "SQ"
	wl.Arrival = dist.NewPoisson(load)
	rSQ := New(sq, wl, p).Run()

	jb := CoopJBSQ(m, 4, 100)
	rJB := New(jb, wl, p).Run()

	if rJB.Point.WorkerIdle >= rSQ.Point.WorkerIdle {
		t.Fatalf("JBSQ idle %v >= SQ idle %v", rJB.Point.WorkerIdle, rSQ.Point.WorkerIdle)
	}
	if ratio := rSQ.Point.WorkerIdle / math.Max(rJB.Point.WorkerIdle, 1e-9); ratio < 3 {
		t.Errorf("SQ/JBSQ idle ratio = %.1f, want >= 3 (paper: 9-13×)", ratio)
	}
}

func TestCriticalSectionDefersYield(t *testing.T) {
	m := cost.Default()
	cfg := Concord(m, 1, 5)
	cfg.WorkConserving = false
	// Requests of 50µs holding a lock for the first 60% (30µs): the first
	// preemption cannot happen before 30µs.
	wl := Workload{
		Dist:            dist.NewFixed(50),
		CritFracByClass: map[string]float64{"fixed": 0.6},
	}
	wl.Arrival = dist.NewPoisson(1000)
	mach := New(cfg, wl, RunParams{Requests: 300, Seed: 19})
	mach.OnComplete = func(r *Request) {
		// 50µs at q=5µs would be ~9 preemptions unlocked; deferring the
		// first yield to 30µs leaves at most ~5.
		if r.Preemptions > 6 {
			t.Fatalf("request preempted %d times despite 30µs critical section", r.Preemptions)
		}
	}
	mach.Run()
}

func TestDeferWholeRequestDisablesPreemption(t *testing.T) {
	m := cost.Default()
	cfg := ShinjukuDeferAPI(m, 1, 5)
	wl := Workload{
		Dist:            dist.NewFixed(100),
		CritFracByClass: map[string]float64{"fixed": 0.01},
	}
	wl.Arrival = dist.NewPoisson(1000)
	mach := New(cfg, wl, RunParams{Requests: 300, Seed: 21})
	mach.OnComplete = func(r *Request) {
		if r.Preemptions != 0 {
			t.Fatalf("defer-whole-request still preempted %d times", r.Preemptions)
		}
	}
	mach.Run()
}

func TestSweepMonotoneSaturation(t *testing.T) {
	m := cost.Default()
	cfg := Shinjuku(m, 4, 5)
	wl := Workload{Dist: dist.NewFixed(10)}
	curve := Sweep(cfg, wl, []float64{50, 150, 250, 350, 450}, RunParams{Requests: 30000, Seed: 23, MaxCentralQueue: 100000})
	if len(curve.Points) != 5 {
		t.Fatalf("sweep returned %d points", len(curve.Points))
	}
	// 4 workers at 10µs ≈ 400 kRps capacity: the last point must be
	// saturated, the first must not be.
	if math.IsInf(curve.Points[0].P999, 1) {
		t.Error("50 kRps saturated on 4 workers at 10µs")
	}
	if !math.IsInf(curve.Points[4].P999, 1) && curve.Points[4].P999 < stats.DefaultSLOSlowdown {
		t.Errorf("450 kRps (>capacity) shows healthy p999 = %v", curve.Points[4].P999)
	}
	if _, ok := curve.MaxLoadUnderSLO(stats.DefaultSLOSlowdown); !ok {
		t.Error("no load met the SLO")
	}
}

func TestValidate(t *testing.T) {
	m := cost.Default()
	bad := []Config{
		{Name: "no-workers", Workers: 0, QueueBound: 1, Model: m},
		{Name: "no-bound", Workers: 1, QueueBound: 0, Model: m},
		{Name: "neg-quantum", Workers: 1, QueueBound: 1, QuantumUS: -1, Model: m},
		{Name: "quantum-no-mech", Workers: 1, QueueBound: 1, QuantumUS: 5, Model: m},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q validated but is invalid", c.Name)
		}
	}
	good := Concord(m, 14, 5)
	if err := good.Validate(); err != nil {
		t.Errorf("Concord preset invalid: %v", err)
	}
	_ = mech.None{}
	_ = lowLoadParams
}
