package server

import (
	"concord/internal/cost"
	"concord/internal/mech"
)

// The evaluated systems (§5.1) and the ablation variants of Fig. 11/12.
// Each constructor takes the cost model, the worker count, and the
// scheduling quantum in µs.

// Shinjuku is the state-of-the-art baseline: posted IPIs, a synchronous
// single queue, and a dedicated dispatcher.
func Shinjuku(m cost.Model, workers int, quantumUS float64) Config {
	return Config{
		Name:       "Shinjuku",
		Workers:    workers,
		QuantumUS:  quantumUS,
		Mech:       mech.IPI{M: m},
		Model:      m,
		QueueBound: 1,
	}
}

// ShinjukuDeferAPI is Shinjuku's LevelDB port, which disables preemption
// for the entire duration of any request that may acquire a lock (§3.1).
func ShinjukuDeferAPI(m cost.Model, workers int, quantumUS float64) Config {
	c := Shinjuku(m, workers, quantumUS)
	c.Name = "Shinjuku-defer-API"
	c.DeferWholeRequest = true
	return c
}

// PersephoneFCFS is Persephone configured with the blind C-FCFS policy:
// a single queue, no preemption, networker sharing the dispatcher thread.
func PersephoneFCFS(m cost.Model, workers int) Config {
	return Config{
		Name:          "Persephone-FCFS",
		Workers:       workers,
		QuantumUS:     0,
		Mech:          mech.None{M: m},
		Model:         m,
		QueueBound:    1,
		DispatchExtra: 60, // networker work shares the dispatcher thread
	}
}

// Concord combines all three mechanisms: compiler-enforced cooperation,
// JBSQ(2), and the work-conserving dispatcher.
func Concord(m cost.Model, workers int, quantumUS float64) Config {
	return Config{
		Name:           "Concord",
		Workers:        workers,
		QuantumUS:      quantumUS,
		Mech:           mech.CacheLine{M: m},
		Model:          m,
		QueueBound:     2,
		WorkConserving: true,
	}
}

// ConcordNoSteal is Concord with the dispatcher's work stealing disabled
// (§5.5: users can trade the low-load slowdown increase away).
func ConcordNoSteal(m cost.Model, workers int, quantumUS float64) Config {
	c := Concord(m, workers, quantumUS)
	c.Name = "Concord-no-steal"
	c.WorkConserving = false
	return c
}

// CoopSQ is the Fig. 11/12 ablation step one: compiler-enforced
// cooperation replacing IPIs, still a synchronous single queue.
func CoopSQ(m cost.Model, workers int, quantumUS float64) Config {
	return Config{
		Name:       "Co-op+SQ",
		Workers:    workers,
		QuantumUS:  quantumUS,
		Mech:       mech.CacheLine{M: m},
		Model:      m,
		QueueBound: 1,
	}
}

// CoopJBSQ is ablation step two: cooperation plus JBSQ(2), without the
// work-conserving dispatcher.
func CoopJBSQ(m cost.Model, workers int, quantumUS float64) Config {
	return Config{
		Name:       "Co-op+JBSQ(2)",
		Workers:    workers,
		QuantumUS:  quantumUS,
		Mech:       mech.CacheLine{M: m},
		Model:      m,
		QueueBound: 2,
	}
}

// ConcordJBSQ returns Concord with an explicit JBSQ depth, for the
// queue-bound ablation.
func ConcordJBSQ(m cost.Model, workers int, quantumUS float64, k int) Config {
	c := Concord(m, workers, quantumUS)
	c.Name = "Concord-JBSQ(" + string(rune('0'+k)) + ")"
	c.QueueBound = k
	return c
}
