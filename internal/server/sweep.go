package server

import (
	"concord/internal/stats"
)

// Sweep runs one system across a list of offered loads (in kRps) and
// returns the slowdown-vs-load curve: the data behind one line in the
// paper's figures. The workload's Arrival field is overridden per load
// point with a Poisson process at that rate.
func Sweep(cfg Config, wl Workload, loadsKRps []float64, p RunParams) stats.Curve {
	curve := stats.Curve{System: cfg.Name}
	for i, kRps := range loadsKRps {
		pt := RunAt(cfg, wl, kRps, withSeedOffset(p, uint64(i)))
		curve.Points = append(curve.Points, pt)
		// Past saturation every higher load is also saturated; keep
		// sweeping anyway so the curve shows the cliff, but the runs get
		// cheap because the queue-cap guard fires early.
	}
	return curve
}

// RunAt runs one system at one offered load and returns its point.
func RunAt(cfg Config, wl Workload, kRps float64, p RunParams) stats.Point {
	wl.Arrival = poissonAt(kRps)
	m := New(cfg, wl, p)
	res := m.Run()
	pt := res.Point
	pt.OfferedKRps = kRps
	return pt
}

func withSeedOffset(p RunParams, off uint64) RunParams {
	p.Seed = p.Seed*1_000_003 + off + 1
	return p
}
