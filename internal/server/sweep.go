package server

import (
	"runtime"
	"sync"

	"concord/internal/sim"
	"concord/internal/stats"
)

// SeedFor derives the RNG seed for one cell of an experiment grid from a
// base seed, the system's index within the experiment, and the load
// point's index within the sweep. It mixes all three through splitmix64
// (sim.Mix64), so distinct cells get decorrelated streams even across
// sweeps that share a base seed — unlike the previous affine derivation
// (seed*1_000_003+off+1), which collided whenever two sweeps' offsets
// differed by a multiple pattern of the base. The mapping is pinned by a
// golden test; changing it changes every simulated figure.
func SeedFor(base uint64, system, load int) uint64 {
	return sim.Mix64(base, uint64(system), uint64(load))
}

// Sweep runs one system across a list of offered loads (in kRps) and
// returns the slowdown-vs-load curve: the data behind one line in the
// paper's figures. The workload's Arrival field is overridden per load
// point with a Poisson process at that rate. Seeds derive from
// SeedFor(p.Seed, 0, i); multi-system experiments that want distinct
// per-system streams use SweepIndexed or internal/runner.
func Sweep(cfg Config, wl Workload, loadsKRps []float64, p RunParams) stats.Curve {
	return SweepIndexed(cfg, wl, loadsKRps, 0, p)
}

// SweepIndexed is Sweep with an explicit system index for seed
// derivation. It is the serial reference implementation: the parallel
// paths (SweepParallel, internal/runner) must produce bit-identical
// curves.
func SweepIndexed(cfg Config, wl Workload, loadsKRps []float64, system int, p RunParams) stats.Curve {
	curve := stats.Curve{System: cfg.Name, Points: make([]stats.Point, 0, len(loadsKRps))}
	for i, kRps := range loadsKRps {
		pt := RunAt(cfg, wl, kRps, withSeedFor(p, system, i))
		curve.Points = append(curve.Points, pt)
		// Past saturation every higher load is also saturated; keep
		// sweeping anyway so the curve shows the cliff, but the runs get
		// cheap because the queue-cap guard fires early.
	}
	return curve
}

// SweepParallel runs the sweep's load points concurrently on up to par
// goroutines (GOMAXPROCS when par <= 0) and returns a curve identical to
// Sweep's: every run's seed is a pure function of (p.Seed, load index),
// each run owns its Machine and RNG, and points are reassembled in load
// order, so the result is independent of scheduling order.
func SweepParallel(cfg Config, wl Workload, loadsKRps []float64, p RunParams, par int) stats.Curve {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(loadsKRps) {
		par = len(loadsKRps)
	}
	if par <= 1 {
		return Sweep(cfg, wl, loadsKRps, p)
	}
	points := make([]stats.Point, len(loadsKRps))
	var next int
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		i := next
		next++
		mu.Unlock()
		return i
	}
	var wg sync.WaitGroup
	for g := 0; g < par; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := take()
				if i >= len(loadsKRps) {
					return
				}
				points[i] = RunAt(cfg, wl, loadsKRps[i], withSeedFor(p, 0, i))
			}
		}()
	}
	wg.Wait()
	return stats.Curve{System: cfg.Name, Points: points}
}

// RunAt runs one system at one offered load and returns its point.
func RunAt(cfg Config, wl Workload, kRps float64, p RunParams) stats.Point {
	wl.Arrival = poissonAt(kRps)
	m := New(cfg, wl, p)
	res := m.Run()
	pt := res.Point
	pt.OfferedKRps = kRps
	return pt
}

func withSeedFor(p RunParams, system, load int) RunParams {
	p.Seed = SeedFor(p.Seed, system, load)
	return p
}
