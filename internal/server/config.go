package server

import (
	"fmt"

	"concord/internal/cost"
	"concord/internal/dist"
	"concord/internal/mech"
	"concord/internal/sim"
)

// Config describes one simulated system: the knobs that distinguish
// Shinjuku, Persephone-FCFS, Concord, and the ablation variants.
type Config struct {
	// Name labels the system in reports.
	Name string

	// Workers is the number of worker threads (the paper uses 14 on the
	// big testbed and 2 in the 4-core VM study).
	Workers int

	// QuantumUS is the scheduling quantum in µs; 0 disables preemption.
	QuantumUS float64

	// Mech is the preemption mechanism. Ignored when QuantumUS == 0.
	Mech mech.Mechanism

	// Model is the CPU cost model.
	Model cost.Model

	// QueueBound is k in JBSQ(k): the per-worker occupancy bound counting
	// the in-service request. 1 is a synchronous single queue.
	QueueBound int

	// WorkConserving enables the dispatcher to run application code when
	// it would otherwise idle and all per-worker queues are full (§3.3).
	WorkConserving bool

	// SRPT switches the central queue from FCFS to shortest-remaining-
	// processing-time (the §3.1 extension; no evaluated system uses it).
	SRPT bool

	// HintedSRPT makes the SRPT queue key on each request's size
	// *estimate* (dist.Sample.HintUS) instead of its true remaining
	// work — scheduling with estimated sizes rather than an oracle. The
	// key space mirrors the live runtime's three bands (see
	// Request.RemainingCycles): in-budget hinted requests order by
	// hint minus executed work, requests that have outrun their hint
	// order by overage in a band above any credible hint, and unhinted
	// requests run last, FIFO. Requires SRPT.
	HintedSRPT bool

	// DispatchExtra is added to each dispatch operation (e.g. Persephone
	// runs its networker on the dispatcher thread, slowing each loop).
	DispatchExtra sim.Cycles

	// DeferWholeRequest models the Shinjuku prototype's LevelDB port: any
	// request with a critical section disables preemption for its entire
	// duration, not just the critical section (§3.1).
	DeferWholeRequest bool
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Workers < 1 {
		return fmt.Errorf("server: need at least 1 worker, have %d", c.Workers)
	}
	if c.QueueBound < 1 {
		return fmt.Errorf("server: queue bound must be >= 1, have %d", c.QueueBound)
	}
	if c.QuantumUS < 0 {
		return fmt.Errorf("server: negative quantum %v", c.QuantumUS)
	}
	if c.QuantumUS > 0 && c.Mech == nil {
		return fmt.Errorf("server: quantum set but no preemption mechanism")
	}
	if c.HintedSRPT && !c.SRPT {
		return fmt.Errorf("server: HintedSRPT requires SRPT")
	}
	return nil
}

// Workload describes the offered load: the service-time distribution, the
// arrival process, and optional per-class critical-section fractions
// (the prefix of a request during which it holds an application lock).
type Workload struct {
	Dist    dist.Dist
	Arrival dist.Arrival

	// CritFracByClass maps a request class to the fraction of its service
	// time spent holding a lock at the start of the request. Classes not
	// present hold no locks.
	CritFracByClass map[string]float64
}

// RunParams controls one simulation run.
type RunParams struct {
	// Requests is the number of requests to offer.
	Requests int
	// WarmupFrac is the fraction of initial requests discarded from
	// latency statistics (the paper discards the first 10%).
	WarmupFrac float64
	// Seed makes runs reproducible.
	Seed uint64
	// DrainSlackUS is extra simulated time allowed after the last arrival
	// for the system to drain before the run is declared saturated.
	DrainSlackUS float64
	// MaxCentralQueue aborts the run (as saturated) when the central
	// queue exceeds this length; 0 means the default of 1<<20.
	MaxCentralQueue int
	// ExactSamples forces the run's collector to retain every
	// per-request sample (exact percentiles at O(Requests) memory). By
	// default runs longer than stats.DefaultReservoirSize samples use
	// deterministic reservoir sampling for percentiles; counts and means
	// are exact either way. Callers that consume Collector.Samples()
	// wholesale (e.g. RunReplicated's merge) must set this.
	ExactSamples bool
}

func (p RunParams) withDefaults() RunParams {
	if p.Requests <= 0 {
		p.Requests = 200000
	}
	if p.WarmupFrac <= 0 {
		p.WarmupFrac = 0.1
	}
	if p.DrainSlackUS <= 0 {
		p.DrainSlackUS = 100_000 // 100ms
	}
	if p.MaxCentralQueue <= 0 {
		p.MaxCentralQueue = 1 << 20
	}
	return p
}
