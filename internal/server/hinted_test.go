package server

import (
	"math"
	"testing"

	"concord/internal/cost"
	"concord/internal/dist"
	"concord/internal/sim"
)

// hintedDist wraps a distribution, deriving each sample's HintUS from
// its true size: hint = service × Factor (Factor 1 = exact hints), and
// Factor 0 = strip hints entirely.
type hintedDist struct {
	inner  dist.Dist
	factor float64
}

func (d hintedDist) Name() string  { return d.inner.Name() }
func (d hintedDist) Mean() float64 { return d.inner.Mean() }
func (d hintedDist) Sample(r *sim.RNG) dist.Sample {
	s := d.inner.Sample(r)
	s.HintUS = s.ServiceUS * d.factor
	return s
}

func hintedRun(t *testing.T, factor float64, hinted bool) Result {
	t.Helper()
	cfg := Concord(cost.Default(), 2, 100)
	cfg.SRPT = true
	cfg.HintedSRPT = hinted
	var d dist.Dist = dist.Lognormal{Mu: math.Log(20), Sigma: 1.5}
	if hinted {
		d = hintedDist{inner: d, factor: factor}
	}
	wl := Workload{Dist: d, Arrival: dist.NewPoisson(25000)}
	return New(cfg, wl, RunParams{Requests: 20000, Seed: 7, ExactSamples: true}).Run()
}

// With exact hints, the hinted key (hint − executed) equals the oracle
// key (true remaining work) at every scheduling decision, so the two
// runs must be indistinguishable sample for sample.
func TestHintedSRPTExactHintsMatchOracle(t *testing.T) {
	oracle := hintedRun(t, 0, false)
	exact := hintedRun(t, 1, true)
	if oracle.Saturated || exact.Saturated {
		t.Fatal("runs saturated; lower the load")
	}
	if oracle.Completed != exact.Completed {
		t.Fatalf("completed: oracle %d vs exact-hints %d", oracle.Completed, exact.Completed)
	}
	os, es := oracle.Collector.Samples(), exact.Collector.Samples()
	if len(os) != len(es) {
		t.Fatalf("sample counts differ: %d vs %d", len(os), len(es))
	}
	for i := range os {
		if os[i] != es[i] {
			t.Fatalf("sample %d differs: oracle %+v vs exact-hints %+v", i, os[i], es[i])
		}
	}
}

// Badly wrong hints must cost tail latency relative to the oracle —
// the regret the shadow replayer measures — and unhinted requests
// (HintUS 0) must still complete, keyed into the last band.
func TestHintedSRPTNoisyHintsDegradeTail(t *testing.T) {
	oracle := hintedRun(t, 0, false)
	// Inverted hints: every request claims a fixed-size estimate
	// uncorrelated with its true size is the worst case; a constant
	// factor preserves ordering, so use the stripped-hint extreme.
	unhinted := hintedRun(t, 0, true)
	if oracle.Saturated || unhinted.Saturated {
		t.Fatal("runs saturated; lower the load")
	}
	if unhinted.Point.P99 < oracle.Point.P99 {
		t.Fatalf("hint-blind SRPT p99 slowdown %.2f beat oracle %.2f — key bands are inverted",
			unhinted.Point.P99, oracle.Point.P99)
	}
}

func TestHintedSRPTConfigValidation(t *testing.T) {
	cfg := Concord(cost.Default(), 2, 100)
	cfg.HintedSRPT = true // without SRPT
	if err := cfg.Validate(); err == nil {
		t.Fatal("HintedSRPT without SRPT must not validate")
	}
}
