package server

import (
	"math"

	"concord/internal/stats"
)

// RunReplicated runs R independent single-dispatcher instances that
// feed disjoint sets of cores — the scaling escape hatch §6 proposes for
// when one dispatcher saturates. The configuration's Workers field is
// the *total* worker count, split evenly across replicas; offered load
// splits with it (random assignment of a Poisson stream is Poisson
// thinning, so running each replica at kRps/R is exact).
//
// Latency percentiles are computed over the union of the replicas'
// samples; throughput and utilization are summed/averaged.
func RunReplicated(cfg Config, wl Workload, kRps float64, replicas int, p RunParams) stats.Point {
	if replicas < 1 {
		panic("server: need at least one replica")
	}
	if cfg.Workers%replicas != 0 {
		panic("server: workers must divide evenly across replicas")
	}
	sub := cfg
	sub.Workers = cfg.Workers / replicas
	subParams := p.withDefaults()
	// The merge below consumes every per-replica sample, so replicas must
	// retain them all rather than reservoir-sample.
	subParams.ExactSamples = true
	subParams.Requests = subParams.Requests / replicas
	if subParams.Requests < 1 {
		subParams.Requests = 1
	}

	merged := stats.NewCollector(subParams.Requests * replicas)
	var achieved, dBusy, wIdle, stolen, preempts float64
	saturated := false
	for r := 0; r < replicas; r++ {
		rp := subParams
		rp.Seed = subParams.Seed*31 + uint64(r) + 1
		wl.Arrival = poissonAt(kRps / float64(replicas))
		res := New(sub, wl, rp).Run()
		for _, s := range res.Collector.Samples() {
			merged.Add(s)
		}
		achieved += res.Point.AchievedKRps
		dBusy += res.Point.DispatcherBusy
		wIdle += res.Point.WorkerIdle
		stolen += res.Point.StolenFrac
		preempts += res.Point.Preemptions
		saturated = saturated || res.Saturated
	}

	n := float64(replicas)
	pt := stats.Point{
		OfferedKRps:    kRps,
		AchievedKRps:   achieved,
		P50:            merged.SlowdownPercentile(50),
		P99:            merged.SlowdownPercentile(99),
		P999:           merged.SlowdownPercentile(99.9),
		Mean:           merged.MeanSlowdown(),
		Samples:        merged.Len(),
		DispatcherBusy: dBusy / n,
		WorkerIdle:     wIdle / n,
		StolenFrac:     stolen / n,
		Preemptions:    preempts / n,
	}
	if saturated {
		pt.P999 = math.Inf(1)
	}
	return pt
}
