// Ingest layer: admission control. Submit builds the task, applies the
// deadline, captures the SRPT service hint and the SLOClass, checks the
// stop gate, and places the task on a shard's ingress buffer —
// round-robin across shards with fallback to any sibling with room.
//
// Admission is class-aware when Options.ClassAdmission is on: each
// class has an ingress-occupancy watermark (Server.classLimit) and is
// rejected once every shard's buffer has crossed it. Critical admits up
// to the full buffer; standard stops short of the critical reserve
// (ErrQueueFull); sheddable is shed earliest (ErrShed), so under
// sustained overload the buffers drain sheddable load first and always
// keep headroom for critical arrivals. The occupancy probe reads
// len(chan), which is racy against concurrent submitters — the race
// only ever misjudges by the handful of in-flight sends, and errs on
// whichever side the interleaving lands, so the watermark holds in
// expectation and the exactly-one-response contract is untouched.
package live

import (
	"time"

	"concord/internal/obs"
)

// Submit enqueues a request and returns a channel that will receive
// exactly one response. The channel has capacity 1; the caller need not
// read it immediately. Submit never blocks: after Stop has begun it
// responds ErrServerStopped, and when every shard's submit buffer is
// full (or past the payload's class watermark) it responds ErrQueueFull
// — ErrShed for sheddable payloads dropped by admission control.
func (s *Server) Submit(payload any) <-chan Response {
	ch := make(chan Response, 1)
	s.submit(payload, ch, nil)
	return ch
}

// SubmitFunc is Submit with a completion callback instead of a response
// channel: done is invoked exactly once with the request's Response —
// synchronously on the submitting goroutine when the request is
// rejected (stop or backpressure), on the completing executor's
// goroutine otherwise. done must not block: it runs on the worker or
// dispatcher hot path. Connection layers use it to coalesce completions
// into batched flushes without a channel allocation per request; the
// Response's Req field carries the submitted payload back so a single
// shared callback can correlate without a per-request closure.
func (s *Server) SubmitFunc(payload any, done func(Response)) {
	s.submit(payload, nil, done)
}

// submit is the shared ingest path: exactly one of ch / done carries
// the response.
func (s *Server) submit(payload any, ch chan Response, done func(Response)) {
	t := newTask()
	t.id = s.nextID.Add(1)
	t.payload = payload
	t.arrival = time.Now()
	t.result = ch
	t.done = done
	if d := s.opts.RequestTimeout; d > 0 {
		t.deadline = t.arrival.Add(d)
	}
	if s.hinted.Load() {
		if h, ok := payload.(Hinted); ok {
			if hint := int64(h.ServiceHint()); hint > 0 {
				t.hintNS = hint
			}
		}
	}
	if s.classed.Load() {
		if c, ok := payload.(SLOClassed); ok {
			if cl := c.SLOClass(); cl > 0 && cl < NumClasses {
				t.class = uint8(cl)
			}
		}
	}
	if s.tr != nil {
		// Wire-path attribution: the frontend stamped the request before
		// it had an id, so record its events retroactively. Snapshot
		// sorts by timestamp, so late recording is invisible downstream.
		if nt, ok := payload.(NetTimed); ok {
			if read, parsed := nt.NetTimes(); !read.IsZero() {
				t.readTS = read
				s.tr.RecordAt(obs.WriterNet, obs.EvFrameRead, t.id, 0, read)
				if !parsed.IsZero() {
					s.tr.RecordAt(obs.WriterNet, obs.EvParsed, t.id, 0, parsed)
				}
			}
		}
	}
	s.submitMu.RLock()
	if s.stopping {
		s.submitMu.RUnlock()
		s.reject(t, ErrServerStopped, obs.StatusStopped)
		return
	}
	if testSubmitGate != nil {
		testSubmitGate()
	}
	// Snapshot the fields needed after enqueue: the moment enqueue
	// succeeds a worker may complete the task and release it to the
	// pool, so touching t again would race with its reset.
	id, class := t.id, t.class
	if s.enqueue(t) {
		s.stats.submitted.Add(1)
		s.stats.classSubmitted[class].Add(1)
		if s.tr != nil {
			s.tr.Record(obs.WriterClient, obs.EvSubmit, id, 0)
		}
		s.submitMu.RUnlock()
	} else {
		s.submitMu.RUnlock()
		err, status := ErrQueueFull, int64(obs.StatusQueueFull)
		if s.opts.ClassAdmission && SLOClass(t.class) == ClassSheddable {
			err, status = ErrShed, obs.StatusShed
			s.stats.shed.Add(1)
		}
		s.reject(t, err, status)
	}
}

// reject delivers a rejection response, records it against every
// configured sink, and recycles the task (a rejected task was never
// enqueued, so nothing can alias it).
func (s *Server) reject(t *task, err error, status int64) {
	s.stats.rejected.Add(1)
	s.stats.classRejected[t.class].Add(1)
	if s.tr != nil {
		s.tr.Record(obs.WriterClient, obs.EvReject, t.id, status)
	}
	if s.tail != nil {
		s.tail.ObserveRejected()
	}
	if s.ctails != nil {
		s.ctails.ObserveRejected(int(t.class))
	}
	t.deliver(Response{ID: t.id, Err: err, Req: t.payload, Done: time.Now()})
	t.release()
}

// enqueue places t on a shard's ingress buffer and reports whether it
// found room under t's class watermark. Single-shard servers keep the
// historical one-select fast path; multi-shard servers start at the
// round-robin cursor and fall back to each sibling once.
func (s *Server) enqueue(t *task) bool {
	limit := s.classLimit[t.class]
	if len(s.shards) == 1 {
		ch := s.shards[0].submit
		if len(ch) >= limit {
			return false
		}
		select {
		case ch <- t:
			return true
		default:
			return false
		}
	}
	n := uint64(len(s.shards))
	start := s.rr.Add(1)
	for i := uint64(0); i < n; i++ {
		ch := s.shards[(start+i)%n].submit
		if len(ch) >= limit {
			continue
		}
		select {
		case ch <- t:
			return true
		default:
		}
	}
	return false
}
