// Ingest layer: admission control. Submit builds the task, applies the
// deadline, captures the SRPT service hint, checks the stop gate, and
// places the task on a shard's ingress buffer — round-robin across
// shards with fallback to any sibling with room, rejecting with
// ErrQueueFull only when every buffer is full.
package live

import (
	"time"

	"concord/internal/obs"
)

// Submit enqueues a request and returns a channel that will receive
// exactly one response. The channel has capacity 1; the caller need not
// read it immediately. Submit never blocks: after Stop has begun it
// responds ErrServerStopped, and when every shard's submit buffer is
// full it responds ErrQueueFull.
func (s *Server) Submit(payload any) <-chan Response {
	ch := make(chan Response, 1)
	t := &task{
		id:      s.nextID.Add(1),
		payload: payload,
		arrival: time.Now(),
		result:  ch,
		resume:  make(chan *executor),
		parked:  make(chan parkEvent),
	}
	if d := s.opts.RequestTimeout; d > 0 {
		t.deadline = t.arrival.Add(d)
	}
	if s.hinted {
		if h, ok := payload.(Hinted); ok {
			if hint := int64(h.ServiceHint()); hint > 0 {
				t.hintNS = hint
			}
		}
	}
	s.submitMu.RLock()
	if s.stopping {
		s.submitMu.RUnlock()
		s.stats.rejected.Add(1)
		if s.tr != nil {
			s.tr.Record(obs.WriterClient, obs.EvReject, t.id, obs.StatusStopped)
		}
		if s.tail != nil {
			s.tail.ObserveRejected()
		}
		ch <- Response{ID: t.id, Err: ErrServerStopped}
		return ch
	}
	if testSubmitGate != nil {
		testSubmitGate()
	}
	if s.enqueue(t) {
		s.stats.submitted.Add(1)
		if s.tr != nil {
			s.tr.Record(obs.WriterClient, obs.EvSubmit, t.id, 0)
		}
		s.submitMu.RUnlock()
	} else {
		s.submitMu.RUnlock()
		s.stats.rejected.Add(1)
		if s.tr != nil {
			s.tr.Record(obs.WriterClient, obs.EvReject, t.id, obs.StatusQueueFull)
		}
		if s.tail != nil {
			s.tail.ObserveRejected()
		}
		ch <- Response{ID: t.id, Err: ErrQueueFull}
	}
	return ch
}

// enqueue places t on a shard's ingress buffer and reports whether it
// found room. Single-shard servers keep the historical one-select fast
// path; multi-shard servers start at the round-robin cursor and fall
// back to each sibling once.
func (s *Server) enqueue(t *task) bool {
	if len(s.shards) == 1 {
		select {
		case s.shards[0].submit <- t:
			return true
		default:
			return false
		}
	}
	n := uint64(len(s.shards))
	start := s.rr.Add(1)
	for i := uint64(0); i < n; i++ {
		select {
		case s.shards[(start+i)%n].submit <- t:
			return true
		default:
		}
	}
	return false
}
