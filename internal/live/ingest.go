// Ingest layer: admission control. Submit builds the task, applies the
// deadline, captures the SRPT service hint, checks the stop gate, and
// places the task on a shard's ingress buffer — round-robin across
// shards with fallback to any sibling with room, rejecting with
// ErrQueueFull only when every buffer is full.
package live

import (
	"time"

	"concord/internal/obs"
)

// Submit enqueues a request and returns a channel that will receive
// exactly one response. The channel has capacity 1; the caller need not
// read it immediately. Submit never blocks: after Stop has begun it
// responds ErrServerStopped, and when every shard's submit buffer is
// full it responds ErrQueueFull.
func (s *Server) Submit(payload any) <-chan Response {
	ch := make(chan Response, 1)
	s.submit(payload, ch, nil)
	return ch
}

// SubmitFunc is Submit with a completion callback instead of a response
// channel: done is invoked exactly once with the request's Response —
// synchronously on the submitting goroutine when the request is
// rejected (stop or backpressure), on the completing executor's
// goroutine otherwise. done must not block: it runs on the worker or
// dispatcher hot path. Connection layers use it to coalesce completions
// into batched flushes without a channel allocation per request; the
// Response's Req field carries the submitted payload back so a single
// shared callback can correlate without a per-request closure.
func (s *Server) SubmitFunc(payload any, done func(Response)) {
	s.submit(payload, nil, done)
}

// submit is the shared ingest path: exactly one of ch / done carries
// the response.
func (s *Server) submit(payload any, ch chan Response, done func(Response)) {
	t := &task{
		id:      s.nextID.Add(1),
		payload: payload,
		arrival: time.Now(),
		result:  ch,
		done:    done,
		resume:  make(chan *executor),
		parked:  make(chan parkEvent),
	}
	if d := s.opts.RequestTimeout; d > 0 {
		t.deadline = t.arrival.Add(d)
	}
	if s.hinted.Load() {
		if h, ok := payload.(Hinted); ok {
			if hint := int64(h.ServiceHint()); hint > 0 {
				t.hintNS = hint
			}
		}
	}
	if s.classed.Load() {
		if c, ok := payload.(Classed); ok {
			if cl := c.SchedClass(); cl > 0 && cl < NumClasses {
				t.class = uint8(cl)
			}
		}
	}
	if s.tr != nil {
		// Wire-path attribution: the frontend stamped the request before
		// it had an id, so record its events retroactively. Snapshot
		// sorts by timestamp, so late recording is invisible downstream.
		if nt, ok := payload.(NetTimed); ok {
			if read, parsed := nt.NetTimes(); !read.IsZero() {
				t.readTS = read
				s.tr.RecordAt(obs.WriterNet, obs.EvFrameRead, t.id, 0, read)
				if !parsed.IsZero() {
					s.tr.RecordAt(obs.WriterNet, obs.EvParsed, t.id, 0, parsed)
				}
			}
		}
	}
	s.submitMu.RLock()
	if s.stopping {
		s.submitMu.RUnlock()
		s.stats.rejected.Add(1)
		if s.tr != nil {
			s.tr.Record(obs.WriterClient, obs.EvReject, t.id, obs.StatusStopped)
		}
		if s.tail != nil {
			s.tail.ObserveRejected()
		}
		t.deliver(Response{ID: t.id, Err: ErrServerStopped, Req: t.payload, Done: time.Now()})
		return
	}
	if testSubmitGate != nil {
		testSubmitGate()
	}
	if s.enqueue(t) {
		s.stats.submitted.Add(1)
		if s.tr != nil {
			s.tr.Record(obs.WriterClient, obs.EvSubmit, t.id, 0)
		}
		s.submitMu.RUnlock()
	} else {
		s.submitMu.RUnlock()
		s.stats.rejected.Add(1)
		if s.tr != nil {
			s.tr.Record(obs.WriterClient, obs.EvReject, t.id, obs.StatusQueueFull)
		}
		if s.tail != nil {
			s.tail.ObserveRejected()
		}
		t.deliver(Response{ID: t.id, Err: ErrQueueFull, Req: t.payload, Done: time.Now()})
	}
}

// enqueue places t on a shard's ingress buffer and reports whether it
// found room. Single-shard servers keep the historical one-select fast
// path; multi-shard servers start at the round-robin cursor and fall
// back to each sibling once.
func (s *Server) enqueue(t *task) bool {
	if len(s.shards) == 1 {
		select {
		case s.shards[0].submit <- t:
			return true
		default:
			return false
		}
	}
	n := uint64(len(s.shards))
	start := s.rr.Add(1)
	for i := uint64(0); i < n; i++ {
		select {
		case s.shards[(start+i)%n].submit <- t:
			return true
		default:
		}
	}
	return false
}
