package live

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// spinHandler spins for the duration given in the payload.
type spinHandler struct {
	setupCalls  atomic.Int32
	workerSetup sync.Map
}

func (h *spinHandler) Setup() { h.setupCalls.Add(1) }
func (h *spinHandler) SetupWorker(w int) {
	h.workerSetup.Store(w, true)
}
func (h *spinHandler) Handle(ctx *Ctx, payload any) (any, error) {
	d, ok := payload.(time.Duration)
	if !ok {
		return nil, errors.New("bad payload")
	}
	ctx.Spin(d)
	return d, nil
}

func testOptions(workers int, quantum time.Duration) Options {
	return Options{
		Workers:    workers,
		Quantum:    quantum,
		QueueBound: 2,
		PinThreads: false, // tests run many servers; don't hog OS threads
	}
}

func TestBasicRequestCompletion(t *testing.T) {
	h := &spinHandler{}
	s := New(h, testOptions(2, 0))
	s.Start()
	defer s.Stop()

	resp := s.Do(100 * time.Microsecond)
	if resp.Err != nil {
		t.Fatalf("request failed: %v", resp.Err)
	}
	if resp.Payload != 100*time.Microsecond {
		t.Fatalf("payload = %v", resp.Payload)
	}
	if resp.Latency <= 0 {
		t.Fatal("latency not recorded")
	}
	if h.setupCalls.Load() != 1 {
		t.Fatalf("Setup called %d times", h.setupCalls.Load())
	}
}

func TestManyRequestsAllComplete(t *testing.T) {
	h := &spinHandler{}
	s := New(h, testOptions(4, 200*time.Microsecond))
	s.Start()

	const n = 400
	var chans []<-chan Response
	for i := 0; i < n; i++ {
		d := 20 * time.Microsecond
		if i%10 == 0 {
			d = 500 * time.Microsecond
		}
		chans = append(chans, s.Submit(d))
	}
	for i, ch := range chans {
		select {
		case resp := <-ch:
			if resp.Err != nil {
				t.Fatalf("request %d failed: %v", i, resp.Err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("request %d timed out", i)
		}
	}
	s.Stop()
	st := s.Stats()
	if st.Completed != n {
		t.Fatalf("completed %d of %d", st.Completed, n)
	}
}

func TestLongRequestsGetPreempted(t *testing.T) {
	h := &spinHandler{}
	s := New(h, testOptions(1, 100*time.Microsecond))
	s.Start()
	defer s.Stop()

	// A long request must be preempted several times at a 100µs quantum.
	// Retry a few times: on a heavily oversubscribed machine the OS may
	// starve the whole process so badly that wall-clock spins finish in
	// a handful of scheduler slices.
	best := 0
	for attempt := 0; attempt < 4; attempt++ {
		resp := s.Do(2 * time.Millisecond)
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		if resp.Preemptions > best {
			best = resp.Preemptions
		}
		if best >= 3 {
			return
		}
	}
	if best == 0 {
		t.Skip("no preemptions observed; host too oversubscribed for wall-clock quanta")
	}
	t.Fatalf("2ms requests preempted at most %d times at 100µs quantum", best)
}

func TestPreemptionBoundsShortRequestLatency(t *testing.T) {
	// A single worker with one long request in service: short requests
	// should still complete long before the long one does, thanks to
	// preemption (the paper's core premise).
	h := &spinHandler{}
	s := New(h, testOptions(1, 100*time.Microsecond))
	s.Start()
	defer s.Stop()

	longCh := s.Submit(20 * time.Millisecond)
	time.Sleep(time.Millisecond) // let the long request start
	start := time.Now()
	shortResp := s.Do(50 * time.Microsecond)
	shortLatency := time.Since(start)
	long := <-longCh

	if shortResp.Err != nil || long.Err != nil {
		t.Fatalf("errors: %v %v", shortResp.Err, long.Err)
	}
	if shortLatency > 5*time.Millisecond {
		t.Fatalf("short request took %v behind a 20ms request: preemption not working", shortLatency)
	}
	if long.Preemptions == 0 {
		t.Fatal("long request was never preempted")
	}
}

func TestNoPreemptionWithoutQuantum(t *testing.T) {
	h := &spinHandler{}
	s := New(h, testOptions(2, 0))
	s.Start()
	defer s.Stop()
	resp := s.Do(2 * time.Millisecond)
	if resp.Preemptions != 0 {
		t.Fatalf("preempted %d times with quantum 0", resp.Preemptions)
	}
}

// noPreemptHandler holds a no-preempt section for the first half of its
// work.
type noPreemptHandler struct{}

func (noPreemptHandler) Setup()          {}
func (noPreemptHandler) SetupWorker(int) {}
func (noPreemptHandler) Handle(ctx *Ctx, payload any) (any, error) {
	d := payload.(time.Duration)
	ctx.BeginNoPreempt()
	ctx.Spin(d / 2) // polls are no-ops here
	ctx.EndNoPreempt()
	ctx.Spin(d / 2)
	return ctx.Worker(), nil
}

func TestNoPreemptSectionDefersYield(t *testing.T) {
	s := New(noPreemptHandler{}, testOptions(1, 50*time.Microsecond))
	s.Start()
	defer s.Stop()
	resp := s.Do(2 * time.Millisecond)
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	// Preemptions can only happen in the second half: at most ~1ms/50µs
	// plus scheduling slack; crucially the first 1ms contributes none.
	// (A fully preemptible 2ms request would see roughly twice as many.)
	full := New(noPreemptHandler{}, testOptions(1, 50*time.Microsecond))
	full.Start()
	defer full.Stop()
	if resp.Preemptions == 0 {
		t.Skip("no preemptions observed; scheduler too coarse on this machine")
	}
}

func TestEndNoPreemptUnderflowPanics(t *testing.T) {
	c := &Ctx{}
	defer func() {
		if recover() == nil {
			t.Fatal("EndNoPreempt underflow did not panic")
		}
	}()
	c.EndNoPreempt()
}

func TestHandlerPanicBecomesError(t *testing.T) {
	h := panicHandler{}
	s := New(h, testOptions(1, 0))
	s.Start()
	defer s.Stop()
	resp := s.Do("boom")
	if resp.Err == nil {
		t.Fatal("handler panic not converted to error")
	}
}

type panicHandler struct{}

func (panicHandler) Setup()          {}
func (panicHandler) SetupWorker(int) {}
func (panicHandler) Handle(*Ctx, any) (any, error) {
	panic("boom")
}

func TestWorkConservingDispatcherRunsRequests(t *testing.T) {
	h := &spinHandler{}
	opts := testOptions(1, 200*time.Microsecond)
	opts.WorkConserving = true
	opts.QueueBound = 1
	s := New(h, opts)
	s.Start()

	// Flood a single k=1 worker so the dispatcher must pitch in.
	const n = 64
	var chans []<-chan Response
	for i := 0; i < n; i++ {
		chans = append(chans, s.Submit(300*time.Microsecond))
	}
	dispatcherRun := 0
	for _, ch := range chans {
		resp := <-ch
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		if resp.OnDispatcher {
			dispatcherRun++
		}
	}
	s.Stop()
	if dispatcherRun == 0 {
		t.Fatal("work-conserving dispatcher never completed a request under overload")
	}
	if got := s.Stats().DispatcherRun; got != uint64(dispatcherRun) {
		t.Fatalf("DispatcherRun counter %d != observed %d", got, dispatcherRun)
	}
}

func TestDispatcherSetupWorkerCalled(t *testing.T) {
	h := &spinHandler{}
	s := New(h, testOptions(2, 0))
	s.Start()
	s.Do(10 * time.Microsecond)
	s.Stop()
	if _, ok := h.workerSetup.Load(-1); !ok {
		t.Fatal("SetupWorker(-1) not called for dispatcher")
	}
	for w := 0; w < 2; w++ {
		if _, ok := h.workerSetup.Load(w); !ok {
			t.Fatalf("SetupWorker(%d) not called", w)
		}
	}
}

func TestSubmitAfterStopFails(t *testing.T) {
	h := &spinHandler{}
	s := New(h, testOptions(1, 0))
	s.Start()
	s.Stop()
	resp := <-s.Submit(time.Microsecond)
	if resp.Err == nil {
		t.Fatal("submit after Stop succeeded")
	}
}

func TestStatsConsistency(t *testing.T) {
	h := &spinHandler{}
	s := New(h, testOptions(3, 150*time.Microsecond))
	s.Start()
	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Do(50 * time.Microsecond)
		}()
	}
	wg.Wait()
	s.Stop()
	st := s.Stats()
	if st.Submitted != n || st.Completed != n {
		t.Fatalf("stats = %+v, want %d submitted and completed", st, n)
	}
}
