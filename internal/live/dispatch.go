// Dispatch layer: per-shard dispatcher loops. Each shard owns a
// disjoint worker subset and its own central queue; its loop ingests
// submissions, signals preemption for its workers, expires deadlines,
// JBSQ-pushes to the shortest local queue (§3.2), steals never-started
// requests from the longest sibling queue when it would otherwise idle,
// and runs requests itself under time-based self-preemption when every
// local queue is full (§3.3). One shard is exactly the paper's single
// dispatcher.
package live

import (
	"runtime"
	"time"

	"concord/internal/obs"
)

// critQuantumShrink divides a running lower-tier request's effective
// quantum while ClassCritical work is queued on its shard, so critical
// requests reach a CPU within a fraction of the normal quantum instead
// of a full one.
const critQuantumShrink = 4

// shard is one dispatcher: policy queue, ingress buffer, worker subset,
// and the work-conserving executor state.
type shard struct {
	id     int
	writer int // obs writer id for this shard's dispatcher ring
	q      *centralQueue
	submit chan *task
	// workers holds the global indices of the workers this shard owns.
	workers []int
	// ex is the dispatcher-as-executor identity for work conservation.
	ex *executor
	// saved parks a preempted dispatcher-run request between slices;
	// such requests never migrate (§3.3).
	saved *task
	// lastFlagged dedups preemption signals per local worker (parallel
	// to workers).
	lastFlagged []uint64
	// polEpoch is the policy-change epoch this shard last applied; when
	// Server.polState moves past it the loop drain-and-swaps its queue
	// at the top of the iteration (a quiesce point: no dispatch
	// decision is in flight).
	polEpoch uint64
	done     chan struct{} // this shard's dispatcher exited
}

func (s *Server) dispatcherLoop(sh *shard) {
	if s.opts.PinThreads {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	s.handler.SetupWorker(sh.ex.id)
	multi := len(s.shards) > 1

	for {
		progress := false
		aborting := s.abort.Load()

		// 0. Policy swap: when the control plane has retargeted the
		// discipline (SetPolicy), drain this shard's queue into a fresh
		// one of the new kind. This is the quiesce point — between
		// dispatch decisions, under the queue lock — so queued requests
		// are re-ordered, never lost or duplicated.
		if ps := s.polState.Load(); ps.epoch != sh.polEpoch {
			sh.polEpoch = ps.epoch
			sh.q.SwapPolicy(ps.name)
			progress = true
		}

		// 1. Ingest submissions (bounded batch per iteration, so
		// preemption signaling stays timely). Runs in abort mode too:
		// workers re-submit preempted tasks here and must never be
		// stranded against a departed dispatcher.
		for i := 0; i < 64; i++ {
			select {
			case t := <-sh.submit:
				if s.tr != nil {
					if t.enqueueTS.IsZero() {
						t.enqueueTS = time.Now()
					}
					s.tr.Record(sh.writer, obs.EvEnqueueCentral, t.id, 0)
				}
				sh.q.Push(t)
				progress = true
				continue
			default:
			}
			break
		}

		if aborting {
			// Drain deadline expired: fail everything queued or parked,
			// and signal every running local request so it parks (and is
			// then failed by its worker) at its next Poll.
			for i, w := range sh.workers {
				if info := s.running[w].Load(); info != nil {
					s.workers[w].flag.Store(info.epoch)
					if s.tr != nil && info.epoch != sh.lastFlagged[i] {
						sh.lastFlagged[i] = info.epoch
						s.tr.Record(sh.writer, obs.EvPreemptSignal, info.id, int64(w))
					}
				}
			}
			if s.failPending(sh) {
				progress = true
			}
		} else {
			// 2. Preemption signaling: write the flag of any local
			// worker whose current request outlived its quantum — the
			// class's override when one is set, the runtime-adjustable
			// global quantum otherwise. While ClassCritical work waits
			// in this shard's queue, running lower-tier requests get
			// their quantum tightened by critQuantumShrink so a CPU
			// frees up sooner — the dispatch-layer half of the priority
			// cascade (the queue half is the cascade discipline's tier
			// order). The flag carries the epoch being preempted, so a
			// signal aimed at a finished request is inert for its
			// successor — no check-then-act retraction window.
			baseQ := time.Duration(s.quantum.Load())
			classed := s.classed.Load()
			if baseQ > 0 || classed {
				now := time.Now()
				critWaiting := classed && sh.q.CriticalLen() > 0
				for i, w := range sh.workers {
					info := s.running[w].Load()
					if info == nil || info.epoch == sh.lastFlagged[i] {
						continue
					}
					q := baseQ
					if classed {
						if cq := s.classQuanta[info.class].Load(); cq > 0 {
							q = time.Duration(cq)
						}
						if critWaiting && SLOClass(info.class) != ClassCritical {
							q /= critQuantumShrink
						}
					}
					if q <= 0 {
						continue
					}
					if now.Sub(info.start) >= q {
						s.workers[w].flag.Store(info.epoch)
						sh.lastFlagged[i] = info.epoch
						if s.tr != nil {
							s.tr.Record(sh.writer, obs.EvPreemptSignal, info.id, int64(w))
						}
						progress = true
					}
				}
			}

			// 2b. Deadline sweep: requests stuck behind full worker
			// queues still expire. The heap head check is O(1), so this
			// runs every iteration instead of on a coarse timer.
			if s.opts.RequestTimeout > 0 && sh.q.Len() > 0 {
				for _, t := range sh.q.SweepExpired(time.Now()) {
					s.expire(sh, t)
					progress = true
				}
			}

			// 3. JBSQ push: move requests to the shortest non-full
			// local queue, expiring lazily at the pop, stealing from
			// the longest sibling when the local queue runs dry.
			for {
				w := s.shortestQueue(sh)
				if w < 0 {
					break
				}
				t, ok := sh.q.Pop()
				if !ok && multi {
					t, ok = s.steal(sh)
				}
				if !ok {
					break
				}
				if !t.deadline.IsZero() && t.expired(time.Now()) {
					s.expire(sh, t)
					progress = true
					continue
				}
				s.occ[w].Add(1)
				if s.tr != nil {
					s.tr.Record(sh.writer, obs.EvDispatch, t.id, int64(w))
				}
				s.locals[w] <- t
				progress = true
			}

			// 4. Work conservation (also during graceful drain — the
			// dispatcher helping finishes the backlog sooner).
			if s.opts.WorkConserving && !progress {
				if t := sh.saved; t != nil {
					sh.saved = nil
					if t.expired(time.Now()) {
						s.expire(sh, t)
					} else {
						s.runSlice(sh, t) // re-sets saved if the task parks again
					}
					progress = true
				} else if t := s.takeNonStarted(sh); t != nil {
					s.runSlice(sh, t)
					progress = true
				}
			}
		}

		if s.stopped.Load() && s.drained(sh) {
			close(sh.done)
			return
		}
		if !progress {
			runtime.Gosched()
		}
	}
}

// shortestQueue returns the shard-local worker with the fewest queued
// requests, or -1 when every local queue is at the JBSQ bound.
func (s *Server) shortestQueue(sh *shard) int {
	best, bestOcc := -1, int32(s.opts.QueueBound)
	for _, w := range sh.workers {
		if o := s.occ[w].Load(); o < bestOcc {
			best, bestOcc = w, o
		}
	}
	return best
}

// steal pops one never-started request from the longest sibling queue.
// Only never-started requests migrate: once a request has run on a
// shard's worker its requeue path and epoch bookkeeping stay with that
// shard, mirroring the paper's rule that dispatcher-run requests never
// migrate (§3.3). The thief dispatches the stolen task on this same
// loop iteration — before its own drained check — so a steal racing
// Stop can never strand the task.
func (s *Server) steal(sh *shard) (*task, bool) {
	var victim *shard
	best := 0
	for _, sib := range s.shards {
		if sib == sh {
			continue
		}
		if l := sib.q.Len(); l > best {
			best, victim = l, sib
		}
	}
	if victim == nil {
		return nil, false
	}
	t, ok := victim.q.PopNonStarted()
	if !ok {
		return nil, false
	}
	if testStealGate != nil {
		testStealGate()
	}
	s.stats.steals.Add(1)
	return t, true
}

// takeNonStarted pops the next never-started request from the shard's
// queue — the only kind the dispatcher may run itself (§3.3) — but only
// when every local worker queue is full. Expired requests found on the
// way are completed with ErrDeadlineExceeded.
func (s *Server) takeNonStarted(sh *shard) *task {
	for _, w := range sh.workers {
		if s.occ[w].Load() < int32(s.opts.QueueBound) {
			return nil
		}
	}
	now := time.Now()
	for {
		t, ok := sh.q.PopNonStarted()
		if !ok {
			return nil
		}
		if t.expired(now) {
			s.expire(sh, t)
			continue
		}
		return t
	}
}

// runSlice executes one dispatcher slice of a task the work-conserving
// dispatcher runs itself (§3.3).
func (s *Server) runSlice(sh *shard, t *task) {
	ex := sh.ex
	ex.sliceStart = time.Now()
	ex.sliceLen = s.opts.DispatcherSlice
	first := !t.started
	if !t.started {
		t.started = true
		t.onDispatcher = true
		s.startTask(t)
	}
	if s.tr != nil {
		if t.firstRunTS.IsZero() {
			t.firstRunTS = ex.sliceStart
		}
		kind := obs.EvResume
		if first {
			kind = obs.EvStart
		}
		s.tr.Record(sh.writer, kind, t.id, 0)
	}
	// Capture trackRun once per slice: it can flip on mid-slice
	// (SetPolicy srpt), and charging Since(runStart) against a zero
	// runStart would corrupt runNS.
	track := s.trackRun.Load()
	if track {
		t.runStart = ex.sliceStart
	}
	t.resume <- ex
	ev := <-t.parked
	if track {
		t.runNS += int64(time.Since(t.runStart))
	}
	if ev.done {
		ev.resp.OnDispatcher = true
		s.finish(sh.writer, t, ev.resp)
		s.stats.dispatcherRun.Add(1)
		return
	}
	t.preempts++
	s.stats.preemptions.Add(1)
	if s.tr != nil {
		s.tr.Record(sh.writer, obs.EvYield, t.id, 0)
	}
	// Dispatcher-run requests cannot migrate: park in the dedicated
	// buffer.
	sh.saved = t
}

// failPending completes every queued or parked request of this shard
// with ErrServerStopped; it reports whether it failed anything.
func (s *Server) failPending(sh *shard) bool {
	failed := false
	for _, t := range sh.q.DrainAll() {
		s.failTask(t, ErrServerStopped, sh.ex)
		s.stats.aborted.Add(1)
		failed = true
	}
	if t := sh.saved; t != nil {
		sh.saved = nil
		s.failTask(t, ErrServerStopped, sh.ex)
		s.stats.aborted.Add(1)
		failed = true
	}
	return failed
}

// expire completes a queued or parked request with ErrDeadlineExceeded.
func (s *Server) expire(sh *shard, t *task) {
	s.stats.expired.Add(1)
	s.failTask(t, ErrDeadlineExceeded, sh.ex)
}

// drained reports whether this shard has no pending work anywhere:
// ingress, central queue, saved slot, or local worker queues. A stolen
// task never floats unaccounted between shards (see steal), so every
// shard observing its own drain implies the server has drained.
func (s *Server) drained(sh *shard) bool {
	if len(sh.submit) > 0 || sh.q.Len() > 0 || sh.saved != nil {
		return false
	}
	for _, w := range sh.workers {
		if s.occ[w].Load() != 0 {
			return false
		}
	}
	return true
}
