package live

import (
	"bytes"
	"math"
	"testing"
	"time"

	"concord/internal/obs"
)

func tracedOptions(workers int, quantum time.Duration, ringSize int) Options {
	o := testOptions(workers, quantum)
	o.Tracer = obs.NewTracer(workers, ringSize)
	return o
}

// TestTracerLifecycleEvents runs one preempted request and checks the
// snapshot holds its full event sequence.
func TestTracerLifecycleEvents(t *testing.T) {
	opts := tracedOptions(1, 100*time.Microsecond, 1024)
	s := New(&spinHandler{}, opts)
	s.Start()
	resp := s.Do(2 * time.Millisecond) // long enough to be preempted
	s.Stop()
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp.Preemptions == 0 {
		t.Fatal("request was never preempted; quantum not enforced")
	}
	kinds := map[obs.Kind]int{}
	for _, e := range opts.Tracer.Snapshot() {
		if e.Req == resp.ID {
			kinds[e.Kind]++
		}
	}
	for _, want := range []obs.Kind{
		obs.EvSubmit, obs.EvEnqueueCentral, obs.EvDispatch, obs.EvStart,
		obs.EvPreemptSignal, obs.EvYield, obs.EvRequeue, obs.EvResume,
		obs.EvComplete,
	} {
		if kinds[want] == 0 {
			t.Fatalf("missing %v event; got %v", want, kinds)
		}
	}
	if kinds[obs.EvComplete] != 1 {
		t.Fatalf("request must complete exactly once, got %d", kinds[obs.EvComplete])
	}
	if kinds[obs.EvYield] != resp.Preemptions {
		t.Fatalf("yield events = %d, response says %d preemptions", kinds[obs.EvYield], resp.Preemptions)
	}
}

// TestBreakdownSumsToLatency is the end-to-end attribution invariant:
// for every traced request, the four components of Response.Breakdown
// sum exactly to Response.Latency, and the event-derived breakdown
// agrees with the response's end-to-end latency within epsilon.
func TestBreakdownSumsToLatency(t *testing.T) {
	opts := tracedOptions(2, 200*time.Microsecond, 1<<15)
	s := New(&spinHandler{}, opts)
	s.Start()
	const n = 50
	chans := make([]<-chan Response, 0, n)
	for i := 0; i < n; i++ {
		d := 100 * time.Microsecond
		if i%10 == 0 {
			d = time.Millisecond // long requests get preempted
		}
		chans = append(chans, s.Submit(d))
	}
	latencies := map[uint64]time.Duration{}
	for _, ch := range chans {
		resp := <-ch
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		if resp.Breakdown == nil {
			t.Fatal("traced server must attach a Breakdown to every response")
		}
		b := resp.Breakdown
		sum := b.Handoff + b.Queue + b.Service + b.Preempted
		if diff := (sum - resp.Latency).Abs(); diff > resp.Latency/100+time.Microsecond {
			t.Fatalf("breakdown sum %v != latency %v (handoff=%v queue=%v service=%v preempted=%v)",
				sum, resp.Latency, b.Handoff, b.Queue, b.Service, b.Preempted)
		}
		if b.Service <= 0 {
			t.Fatalf("spin request has no service time: %+v", b)
		}
		latencies[resp.ID] = resp.Latency
	}
	s.Stop()

	// Cross-check through the event pipeline: Analyze must reconstruct
	// totals that match the response latencies within 1% + jitter slack
	// (the event timestamps are taken adjacent to, not at, the
	// latency-defining time.Now calls).
	bds := obs.Analyze(opts.Tracer.Snapshot())
	checked := 0
	for _, b := range bds {
		lat, ok := latencies[b.Req]
		if !ok || b.Partial {
			continue
		}
		checked++
		latUS := float64(lat) / float64(time.Microsecond)
		if math.Abs(b.SumUS()-b.TotalUS()) > b.TotalUS()/100+1 {
			t.Fatalf("req %d: event components %v don't sum to event total %v", b.Req, b.SumUS(), b.TotalUS())
		}
		if math.Abs(b.TotalUS()-latUS) > latUS/100+500 {
			t.Fatalf("req %d: event-derived total %vµs vs response latency %vµs", b.Req, b.TotalUS(), latUS)
		}
	}
	if checked < n {
		t.Fatalf("only %d/%d requests fully traced (ring too small?)", checked, n)
	}
}

// TestTracedChromeExport drives real traffic and checks the exporter
// produces valid, non-trivial JSON end to end.
func TestTracedChromeExport(t *testing.T) {
	opts := tracedOptions(2, 100*time.Microsecond, 1<<14)
	s := New(&spinHandler{}, opts)
	s.Start()
	for i := 0; i < 20; i++ {
		if resp := s.Do(200 * time.Microsecond); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	s.Stop()
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, opts.Tracer.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 100 || !bytes.Contains(buf.Bytes(), []byte(`"traceEvents"`)) {
		t.Fatalf("implausible export (%d bytes)", buf.Len())
	}
}

// TestDepths checks the live queue-depth surface reflects momentary
// occupancy while the server is saturated.
func TestDepths(t *testing.T) {
	opts := tracedOptions(1, 0, 1024)
	opts.QueueBound = 1
	s := New(&spinHandler{}, opts)
	s.Start()
	defer s.Stop()
	const n = 8
	chans := make([]<-chan Response, 0, n)
	for i := 0; i < n; i++ {
		chans = append(chans, s.Submit(5*time.Millisecond))
	}
	sawBusy := false
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		d := s.Depths()
		if len(d.Workers) != 1 {
			t.Fatalf("worker depth slice = %v", d.Workers)
		}
		if d.Workers[0] >= 1 && d.Submit+d.Central+d.Workers[0] >= 2 {
			sawBusy = true
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	if !sawBusy {
		t.Fatal("never observed queue depth under saturation")
	}
	for _, ch := range chans {
		if resp := <-ch; resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
}

// TestRejectedTraced checks rejections are traced with the right
// status and get no breakdown components.
func TestRejectedTraced(t *testing.T) {
	opts := tracedOptions(1, 0, 256)
	s := New(&spinHandler{}, opts)
	s.Start()
	s.Stop()
	resp := s.Do(time.Microsecond)
	if resp.Err == nil {
		t.Fatal("submit after stop must fail")
	}
	found := false
	for _, e := range opts.Tracer.Snapshot() {
		if e.Req == resp.ID && e.Kind == obs.EvReject && e.Arg == obs.StatusStopped {
			found = true
		}
	}
	if !found {
		t.Fatal("reject event missing")
	}
}

func TestTracerWorkerMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New must panic on tracer/worker mismatch")
		}
	}()
	New(&spinHandler{}, Options{Workers: 2, Tracer: obs.NewTracer(3, 64)})
}
