package live

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestSubmitAfterStopDeterministic: every submission after Stop has
// returned gets ErrServerStopped immediately — the contract the Stop
// doc comment promises. Pre-fix, Submit could instead block forever on
// a full buffer with no dispatcher left to drain it.
func TestSubmitAfterStopDeterministic(t *testing.T) {
	s := New(&spinHandler{}, testOptions(1, 0))
	s.Start()
	s.Stop()
	for i := 0; i < 100; i++ {
		select {
		case resp := <-s.Submit(time.Microsecond):
			if !errors.Is(resp.Err, ErrServerStopped) {
				t.Fatalf("post-stop submit err = %v, want ErrServerStopped", resp.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("post-stop submit hung")
		}
	}
	if st := s.Stats(); st.Rejected != 100 {
		t.Fatalf("Rejected = %d, want 100", st.Rejected)
	}
}

// TestSubmitNeverBlocksAgainstStop is the regression test for the
// Submit/Stop hang: submitters racing Stop on a tiny buffer. Pre-fix, a
// Submit that passed the stopped check could block forever sending into
// a buffer nobody drains, stranding the caller. Post-fix every Submit
// returns promptly and every returned channel delivers exactly one
// response.
func TestSubmitNeverBlocksAgainstStop(t *testing.T) {
	for iter := 0; iter < 10; iter++ {
		opts := testOptions(1, 100*time.Microsecond)
		opts.SubmitBuffer = 2
		s := New(&spinHandler{}, opts)
		s.Start()

		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					ch := s.Submit(20 * time.Microsecond)
					select {
					case <-ch:
						select {
						case <-ch:
							t.Error("second response on one submission")
						default:
						}
					case <-time.After(10 * time.Second):
						t.Error("submission never answered")
						return
					}
				}
			}()
		}
		time.Sleep(time.Duration(iter%4) * 500 * time.Microsecond)
		stopDone := make(chan struct{})
		go func() { s.Stop(); close(stopDone) }()
		wg.Wait()
		select {
		case <-stopDone:
		case <-time.After(10 * time.Second):
			t.Fatal("Stop hung")
		}
		if st := s.Stats(); st.Submitted != st.Completed {
			t.Fatalf("iter %d: submitted %d != completed %d (accepted request dropped)",
				iter, st.Submitted, st.Completed)
		}
	}
}

// TestDrainWindowNoTaskLoss is the regression test for the preemption
// requeue race: pre-fix, the worker released its occupancy before
// re-submitting a preempted task, so the dispatcher could observe an
// idle server mid-hand-off, declare the drain complete, and exit —
// losing the task and hanging both its caller and Stop. Heavy
// preemption traffic through a size-1 buffer makes the window wide.
func TestDrainWindowNoTaskLoss(t *testing.T) {
	for iter := 0; iter < 30; iter++ {
		opts := testOptions(1, 50*time.Microsecond)
		opts.SubmitBuffer = 1
		s := New(&spinHandler{}, opts)
		s.Start()

		var chans []<-chan Response
		for i := 0; i < 6; i++ {
			chans = append(chans, s.Submit(300*time.Microsecond))
		}
		time.Sleep(time.Duration(iter%5) * 100 * time.Microsecond)
		stopDone := make(chan struct{})
		go func() { s.Stop(); close(stopDone) }()

		for i, ch := range chans {
			select {
			case <-ch:
			case <-time.After(10 * time.Second):
				t.Fatalf("iter %d: request %d lost in the drain window", iter, i)
			}
		}
		select {
		case <-stopDone:
		case <-time.After(10 * time.Second):
			t.Fatalf("iter %d: Stop hung", iter)
		}
	}
}

// TestDrainWindowNoTaskLossGated is the deterministic version of the
// drain-window regression: the requeue gate holds the worker between
// its preemption park and the re-submit while Stop runs. Pre-fix the
// worker had already released its occupancy, so the dispatcher declared
// the server drained, exited, and the task was lost — this test then
// fails its 10s receive. Post-fix the occupancy is held across the
// hand-off, so the dispatcher waits and the request completes.
func TestDrainWindowNoTaskLossGated(t *testing.T) {
	entered := make(chan struct{}, 64)
	release := make(chan struct{})
	testRequeueGate = func() {
		entered <- struct{}{}
		<-release
	}
	defer func() { testRequeueGate = nil }()

	opts := testOptions(1, 50*time.Microsecond)
	opts.SubmitBuffer = 1
	s := New(&spinHandler{}, opts)
	s.Start()

	ch := s.Submit(500 * time.Microsecond)
	select {
	case <-entered: // the task parked and is mid-hand-off
	case <-time.After(10 * time.Second):
		t.Skip("no preemption observed; host too slow for wall-clock quanta")
	}
	stopDone := make(chan struct{})
	go func() { s.Stop(); close(stopDone) }()
	time.Sleep(2 * time.Millisecond) // give a buggy dispatcher time to "drain"
	close(release)

	select {
	case resp := <-ch:
		if resp.Err != nil {
			t.Fatalf("preempted request failed: %v", resp.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("task lost in the drain window")
	}
	select {
	case <-stopDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop hung")
	}
}

// TestSubmitStopRaceGated is the deterministic version of the
// Submit/Stop hang: the submit gate holds a submission between its
// stop check and its enqueue while Stop runs to completion. Pre-fix the
// submission then landed in a buffer nobody drains and the caller hung
// forever. Post-fix Submit holds the read lock across the hand-off, so
// Stop cannot begin until the submission is safely enqueued, and the
// request is drained normally.
func TestSubmitStopRaceGated(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	testSubmitGate = func() {
		close(entered)
		<-release
	}
	defer func() { testSubmitGate = nil }()

	s := New(&spinHandler{}, testOptions(1, 0))
	s.Start()

	var ch <-chan Response
	submitted := make(chan struct{})
	go func() {
		ch = s.Submit(10 * time.Microsecond)
		close(submitted)
	}()
	<-entered // submission passed the stop check, now gated
	stopDone := make(chan struct{})
	go func() { s.Stop(); close(stopDone) }()
	time.Sleep(2 * time.Millisecond) // buggy Stop completes here; fixed Stop blocks
	close(release)
	<-submitted

	select {
	case resp := <-ch:
		if resp.Err != nil {
			t.Fatalf("racing submission failed: %v", resp.Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("racing submission stranded: response never delivered")
	}
	select {
	case <-stopDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop hung")
	}
}

// TestStaleEpochFlagIgnored: a preemption signal aimed at epoch N must
// be inert for the request running at epoch N+1. Pre-fix the flag was a
// bare 0/1 bit retracted with a check-then-act sequence, so a new
// request could consume its predecessor's signal; epoch-valued flags
// make that structurally impossible.
func TestStaleEpochFlagIgnored(t *testing.T) {
	ex := &executor{id: 0}
	ex.epoch = 2
	ex.flag.Store(1) // stale signal for the previous request
	c := &Ctx{
		task: &task{resume: make(chan *executor), parked: make(chan parkEvent)},
		ex:   ex, yieldEvery: -1,
	}
	returned := make(chan struct{})
	go func() {
		c.Poll()
		close(returned)
	}()
	select {
	case <-returned:
	case <-c.task.parked:
		t.Fatal("stale preemption flag preempted the successor request")
	case <-time.After(5 * time.Second):
		t.Fatal("Poll blocked")
	}
}

// TestCurrentEpochFlagYields: the matching epoch still preempts.
func TestCurrentEpochFlagYields(t *testing.T) {
	ex := &executor{id: 0}
	ex.epoch = 2
	ex.flag.Store(2)
	c := &Ctx{
		task: &task{resume: make(chan *executor), parked: make(chan parkEvent)},
		ex:   ex, yieldEvery: -1,
	}
	returned := make(chan struct{})
	go func() {
		c.Poll()
		close(returned)
	}()
	select {
	case ev := <-c.task.parked:
		if ev.done {
			t.Fatal("park event marked done")
		}
		c.task.resume <- ex // resume so the goroutine exits
		<-returned
	case <-returned:
		t.Fatal("current-epoch flag did not preempt")
	case <-time.After(5 * time.Second):
		t.Fatal("Poll neither parked nor returned")
	}
}

// TestQueueFullRejected: a full submit buffer rejects immediately with
// ErrQueueFull instead of blocking the caller — explicit backpressure.
func TestQueueFullRejected(t *testing.T) {
	opts := testOptions(1, 0)
	opts.SubmitBuffer = 1
	s := New(&spinHandler{}, opts)
	// Not started: nothing drains the buffer, so the second submission
	// deterministically finds it full.
	first := s.Submit(time.Microsecond)
	select {
	case resp := <-s.Submit(time.Microsecond):
		if !errors.Is(resp.Err, ErrQueueFull) {
			t.Fatalf("err = %v, want ErrQueueFull", resp.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("submit on a full buffer blocked")
	}
	if st := s.Stats(); st.Rejected != 1 || st.Submitted != 1 {
		t.Fatalf("stats = %+v, want 1 submitted 1 rejected", st)
	}
	s.Start()
	if resp := <-first; resp.Err != nil {
		t.Fatalf("buffered request failed: %v", resp.Err)
	}
	s.Stop()
}

// TestRequestTimeoutExpiresQueued: requests stuck behind a hog on a
// k=1, no-preemption server expire with ErrDeadlineExceeded instead of
// waiting out the hog.
func TestRequestTimeoutExpiresQueued(t *testing.T) {
	opts := testOptions(1, 0)
	opts.QueueBound = 1
	opts.RequestTimeout = 5 * time.Millisecond
	s := New(&spinHandler{}, opts)
	s.Start()
	defer s.Stop()

	hog := s.Submit(80 * time.Millisecond)
	time.Sleep(time.Millisecond) // let the hog reach the worker
	var rest []<-chan Response
	for i := 0; i < 4; i++ {
		rest = append(rest, s.Submit(10*time.Microsecond))
	}
	expired := 0
	for i, ch := range rest {
		select {
		case resp := <-ch:
			if errors.Is(resp.Err, ErrDeadlineExceeded) {
				expired++
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("queued request %d never answered", i)
		}
	}
	if expired == 0 {
		t.Fatal("no queued request expired behind an 80ms hog with a 5ms deadline")
	}
	if resp := <-hog; resp.Err != nil {
		t.Fatalf("hog failed: %v", resp.Err)
	}
	if st := s.Stats(); st.Expired != uint64(expired) {
		t.Fatalf("Expired = %d, observed %d", st.Expired, expired)
	}
}

// TestDrainTimeoutAbortsPending: Stop with a DrainTimeout returns in
// bounded time even with a very long polling request in flight; the
// aborted request gets ErrServerStopped.
func TestDrainTimeoutAbortsPending(t *testing.T) {
	opts := testOptions(1, 100*time.Microsecond)
	opts.DrainTimeout = 30 * time.Millisecond
	s := New(&spinHandler{}, opts)
	s.Start()

	long := s.Submit(10 * time.Second) // polls, but won't finish on its own
	time.Sleep(2 * time.Millisecond)
	var queued []<-chan Response
	for i := 0; i < 4; i++ {
		queued = append(queued, s.Submit(time.Millisecond))
	}

	start := time.Now()
	s.Stop()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Stop took %v with a 30ms DrainTimeout", elapsed)
	}
	select {
	case resp := <-long:
		if !errors.Is(resp.Err, ErrServerStopped) {
			t.Fatalf("aborted request err = %v, want ErrServerStopped", resp.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("aborted request never answered")
	}
	for i, ch := range queued {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("queued request %d never answered after drain abort", i)
		}
	}
	if st := s.Stats(); st.Submitted != st.Completed {
		t.Fatalf("submitted %d != completed %d after aborted drain", st.Submitted, st.Completed)
	}
}

// TestGracefulStopCompletesAccepted: with no DrainTimeout, Stop
// completes every accepted request successfully — none are dropped or
// failed.
func TestGracefulStopCompletesAccepted(t *testing.T) {
	s := New(&spinHandler{}, testOptions(2, 100*time.Microsecond))
	s.Start()
	var chans []<-chan Response
	for i := 0; i < 50; i++ {
		chans = append(chans, s.Submit(200*time.Microsecond))
	}
	s.Stop()
	for i, ch := range chans {
		select {
		case resp := <-ch:
			if resp.Err != nil {
				t.Fatalf("request %d failed during graceful drain: %v", i, resp.Err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("request %d dropped during graceful drain", i)
		}
	}
	if st := s.Stats(); st.Submitted != 50 || st.Completed != 50 {
		t.Fatalf("stats = %+v, want 50/50", st)
	}
}
