package live

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSubmitFuncExactlyOnce: every SubmitFunc request gets its callback
// invoked exactly once, with Req echoing the submitted payload.
func TestSubmitFuncExactlyOnce(t *testing.T) {
	h := &spinHandler{}
	s := New(h, testOptions(2, 0))
	s.Start()

	const n = 200
	var calls [n]atomic.Int32
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		s.SubmitFunc(10*time.Microsecond, func(r Response) {
			if calls[i].Add(1) != 1 {
				t.Errorf("request %d: callback invoked more than once", i)
			}
			if r.Err != nil {
				t.Errorf("request %d: err = %v", i, r.Err)
			}
			if r.Req != 10*time.Microsecond {
				t.Errorf("request %d: Req = %v", i, r.Req)
			}
			wg.Done()
		})
	}
	wg.Wait()
	s.Stop()
	for i := range calls {
		if calls[i].Load() != 1 {
			t.Fatalf("request %d: %d callback invocations", i, calls[i].Load())
		}
	}
}

// TestSubmitFuncRejection: after Stop, SubmitFunc invokes the callback
// synchronously with ErrServerStopped and the payload echoed in Req.
func TestSubmitFuncRejection(t *testing.T) {
	h := &spinHandler{}
	s := New(h, testOptions(2, 0))
	s.Start()
	s.Stop()

	called := false
	s.SubmitFunc(time.Microsecond, func(r Response) {
		called = true
		if !errors.Is(r.Err, ErrServerStopped) {
			t.Errorf("err = %v, want ErrServerStopped", r.Err)
		}
		if r.Req != time.Microsecond {
			t.Errorf("Req = %v", r.Req)
		}
	})
	if !called {
		t.Fatal("rejection callback was not invoked synchronously")
	}
}

// TestSubmitFuncDrainAbort: requests in flight when a bounded drain
// expires still get exactly one callback (with ErrServerStopped).
func TestSubmitFuncDrainAbort(t *testing.T) {
	h := &spinHandler{}
	opts := testOptions(1, 0)
	opts.DrainTimeout = 5 * time.Millisecond
	s := New(h, opts)
	s.Start()

	const n = 50
	var calls atomic.Int32
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		s.SubmitFunc(5*time.Millisecond, func(r Response) {
			calls.Add(1)
			wg.Done()
		})
	}
	s.Stop()
	wg.Wait()
	if calls.Load() != n {
		t.Fatalf("%d callbacks for %d requests", calls.Load(), n)
	}
}
