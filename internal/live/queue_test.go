package live

// centralQueue unit tests: tombstone expiry, the deadline min-heap
// sweep, drain semantics, and the depth-10k dispatch micro-benchmark
// that pins the O(log n) hot path (the pre-refactor dispatcher swept
// the whole FIFO per millisecond and spliced mid-slice, both O(n)).

import (
	"testing"
	"time"
)

func qtask(id uint64, deadline time.Time) *task {
	return &task{id: id, deadline: deadline}
}

func TestCentralQueueSweepTombstones(t *testing.T) {
	q, err := newCentralQueue(PolicyFCFS)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now()
	soon := base.Add(time.Millisecond)
	late := base.Add(time.Hour)

	q.Push(qtask(1, soon))
	q.Push(qtask(2, late))
	q.Push(qtask(3, soon))
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}

	expired := q.SweepExpired(base.Add(time.Second))
	if len(expired) != 2 {
		t.Fatalf("swept %d tasks, want 2", len(expired))
	}
	for _, e := range expired {
		if e.id != 1 && e.id != 3 {
			t.Fatalf("swept wrong task %d", e.id)
		}
	}
	if q.Len() != 1 {
		t.Fatalf("Len after sweep = %d, want 1", q.Len())
	}

	// Pop must skip the two tombstones and yield only the live task.
	got, ok := q.Pop()
	if !ok || got.id != 2 {
		t.Fatalf("Pop = %v/%v, want task 2", got, ok)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop returned a tombstoned task")
	}
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d, want 0", q.Len())
	}
}

func TestCentralQueueSweepSkipsDeparted(t *testing.T) {
	q, err := newCentralQueue(PolicyFCFS)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now()
	tk := qtask(7, base.Add(time.Millisecond))
	q.Push(tk)
	if got, ok := q.Pop(); !ok || got.id != 7 {
		t.Fatalf("Pop = %v/%v", got, ok)
	}
	// The task left the queue (it is being dispatched); its stale heap
	// entry must be dropped without producing an expiry.
	if swept := q.SweepExpired(base.Add(time.Second)); len(swept) != 0 {
		t.Fatalf("sweep expired %d departed tasks", len(swept))
	}
	if tk.inDL {
		t.Fatal("departed task still marked in deadline heap")
	}
	// A requeue after the sweep re-adds the deadline entry.
	q.Push(tk)
	if swept := q.SweepExpired(base.Add(time.Second)); len(swept) != 1 {
		t.Fatalf("requeued task not swept: got %d", len(swept))
	}
}

func TestCentralQueuePopNonStartedSkipsTombstones(t *testing.T) {
	q, err := newCentralQueue(PolicyFCFS)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now()
	started := qtask(1, time.Time{})
	started.started = true
	q.Push(started)
	q.Push(qtask(2, base.Add(time.Millisecond)))
	q.Push(qtask(3, time.Time{}))
	q.SweepExpired(base.Add(time.Second)) // kills task 2

	got, ok := q.PopNonStarted()
	if !ok || got.id != 3 {
		t.Fatalf("PopNonStarted = %v/%v, want task 3", got, ok)
	}
	if got, ok := q.Pop(); !ok || got.id != 1 {
		t.Fatalf("Pop = %v/%v, want started task 1", got, ok)
	}
}

func TestCentralQueueDrainAll(t *testing.T) {
	for _, policy := range []string{PolicyFCFS, PolicySRPT} {
		q, err := newCentralQueue(policy)
		if err != nil {
			t.Fatal(err)
		}
		base := time.Now()
		q.Push(qtask(1, base.Add(time.Millisecond)))
		q.Push(qtask(2, base.Add(time.Hour)))
		q.Push(qtask(3, time.Time{}))
		q.SweepExpired(base.Add(time.Second)) // tombstones task 1

		out := q.DrainAll()
		if len(out) != 2 {
			t.Fatalf("[%s] drained %d tasks, want 2 live", policy, len(out))
		}
		for _, tk := range out {
			if tk.id == 1 {
				t.Fatalf("[%s] drain returned tombstoned task", policy)
			}
			if tk.inQueue || tk.inDL {
				t.Fatalf("[%s] drained task %d still flagged inQueue/inDL", policy, tk.id)
			}
		}
		if q.Len() != 0 {
			t.Fatalf("[%s] Len after DrainAll = %d", policy, q.Len())
		}
		if _, ok := q.Pop(); ok {
			t.Fatalf("[%s] Pop succeeded after DrainAll", policy)
		}
	}
}

func TestCentralQueueRejectsUnknownPolicy(t *testing.T) {
	if _, err := newCentralQueue("lifo"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// BenchmarkDispatchDepth10k pins the dispatch-path queue cost with 10k
// requests (all carrying deadlines) already queued: one Pop, one no-op
// deadline sweep, one Push per op. Before the heap+tombstone rework the
// sweep alone walked all 10k entries; now the head check is O(1) and
// expiry O(log n), so ns/op must stay flat in depth.
func BenchmarkDispatchDepth10k(b *testing.B) {
	for _, policy := range []string{PolicyFCFS, PolicySRPT} {
		b.Run(policy, func(b *testing.B) {
			q, err := newCentralQueue(policy)
			if err != nil {
				b.Fatal(err)
			}
			far := time.Now().Add(time.Hour)
			for i := 0; i < 10000; i++ {
				q.Push(qtask(uint64(i), far))
			}
			now := time.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tk, ok := q.Pop()
				if !ok {
					b.Fatal("queue empty")
				}
				q.SweepExpired(now)
				q.Push(tk)
			}
		})
	}
}
