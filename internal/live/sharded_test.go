package live

// Sharded-dispatcher coverage: Shards > 1 must preserve every lifecycle
// invariant the single-dispatcher runtime guarantees (exactly one
// response per Submit, Submitted == Completed after Stop), work stealing
// must never lose or double-run a task even when it races Stop, and the
// SRPT policy must order the live central queue by remaining work.

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func shardedOptions(workers, shards int, quantum time.Duration) Options {
	o := testOptions(workers, quantum)
	o.Shards = shards
	return o
}

// TestShardedManyRequestsAllComplete is the basic completion invariant
// across shard counts, including shards sized so worker partitions are
// uneven (4 workers over 3 shards is exercised via clamping elsewhere).
func TestShardedManyRequestsAllComplete(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(shardName(shards), func(t *testing.T) {
			h := &spinHandler{}
			s := New(h, shardedOptions(4, shards, 200*time.Microsecond))
			if got := s.Shards(); got != shards {
				t.Fatalf("Shards() = %d, want %d", got, shards)
			}
			s.Start()
			const n = 300
			var chans []<-chan Response
			for i := 0; i < n; i++ {
				d := 20 * time.Microsecond
				if i%10 == 0 {
					d = 400 * time.Microsecond
				}
				chans = append(chans, s.Submit(d))
			}
			for i, ch := range chans {
				select {
				case resp := <-ch:
					if resp.Err != nil {
						t.Fatalf("request %d failed: %v", i, resp.Err)
					}
				case <-time.After(10 * time.Second):
					t.Fatalf("request %d timed out", i)
				}
			}
			s.Stop()
			st := s.Stats()
			if st.Completed != n {
				t.Fatalf("completed %d of %d", st.Completed, n)
			}
			if shards == 1 && st.Steals != 0 {
				t.Fatalf("single shard recorded %d steals", st.Steals)
			}
		})
	}
}

func shardName(shards int) string {
	return map[int]string{1: "shards-1", 2: "shards-2", 4: "shards-4"}[shards]
}

// TestShardedDepthsShape: Depths exposes one queue-depth and one
// occupancy slot per shard, and the aggregate views still sum.
func TestShardedDepthsShape(t *testing.T) {
	h := &spinHandler{}
	s := New(h, shardedOptions(4, 2, 0))
	s.Start()
	defer s.Stop()
	s.Do(10 * time.Microsecond)
	d := s.Depths()
	if len(d.ShardQueues) != 2 || len(d.ShardOcc) != 2 {
		t.Fatalf("per-shard depth slices = %d/%d, want 2/2", len(d.ShardQueues), len(d.ShardOcc))
	}
	if len(d.Workers) != 4 {
		t.Fatalf("worker occupancy slots = %d, want 4", len(d.Workers))
	}
}

// TestShardsClampedToWorkers: more shards than workers degrades to one
// shard per worker rather than empty shards.
func TestShardsClampedToWorkers(t *testing.T) {
	s := New(&spinHandler{}, shardedOptions(2, 8, 0))
	if got := s.Shards(); got != 2 {
		t.Fatalf("Shards() = %d, want clamp to 2", got)
	}
	s.Start()
	defer s.Stop()
	if resp := s.Do(10 * time.Microsecond); resp.Err != nil {
		t.Fatal(resp.Err)
	}
}

// TestShardedChaosLifecycle reruns the chaos invariant (exactly one
// response per submission; Submitted == Completed after Stop) with the
// dispatcher sharded 2 and 4 ways, including a work-conserving variant.
func TestShardedChaosLifecycle(t *testing.T) {
	configs := []struct {
		name string
		opts Options
	}{
		{"shards-2", Options{Workers: 4, Shards: 2, Quantum: 100 * time.Microsecond, QueueBound: 2,
			DrainTimeout: 500 * time.Millisecond, PinThreads: false}},
		{"shards-4", Options{Workers: 4, Shards: 4, Quantum: 100 * time.Microsecond, QueueBound: 1,
			WorkConserving: true, DrainTimeout: 500 * time.Millisecond, PinThreads: false}},
		{"shards-2-srpt", Options{Workers: 4, Shards: 2, Policy: PolicySRPT,
			Quantum: 100 * time.Microsecond, QueueBound: 2,
			DrainTimeout: 500 * time.Millisecond, PinThreads: false}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			s := New(chaosHandler{}, cfg.opts)
			s.Start()
			const clients, perClient = 8, 40
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(c)*7919 + 1))
					for i := 0; i < perClient; i++ {
						ch := s.Submit(randomChaosReq(rng))
						if !receiveExactlyOne(t, ch) {
							return
						}
					}
				}(c)
			}
			time.Sleep(2 * time.Millisecond)
			stopDone := make(chan struct{})
			go func() { s.Stop(); close(stopDone) }()
			wg.Wait()
			select {
			case <-stopDone:
			case <-time.After(15 * time.Second):
				t.Fatal("sharded chaos: Stop hung")
			}
			st := s.Stats()
			if st.Submitted != st.Completed {
				t.Fatalf("sharded chaos: submitted %d != completed %d; stats %+v",
					st.Submitted, st.Completed, st)
			}
		})
	}
}

// blockingHandler parks handler goroutines on a channel so tests can
// hold workers busy deterministically.
type blockingHandler struct {
	release chan struct{}
	order   struct {
		mu    sync.Mutex
		hints []time.Duration
	}
}

func (h *blockingHandler) Setup()          {}
func (h *blockingHandler) SetupWorker(int) {}
func (h *blockingHandler) Handle(ctx *Ctx, payload any) (any, error) {
	switch p := payload.(type) {
	case string: // "block"
		<-h.release
		return p, nil
	case hintedSpin:
		h.order.mu.Lock()
		h.order.hints = append(h.order.hints, p.hint)
		h.order.mu.Unlock()
		return p.hint, nil
	default:
		return payload, nil
	}
}

// hintedSpin is a payload carrying an SRPT service hint.
type hintedSpin struct {
	hint time.Duration
}

func (p hintedSpin) ServiceHint() time.Duration { return p.hint }

// TestSRPTLiveOrdering: with one worker held busy, queued hinted
// requests must run shortest-remaining-first once the worker frees up.
func TestSRPTLiveOrdering(t *testing.T) {
	h := &blockingHandler{release: make(chan struct{})}
	o := testOptions(1, 0)
	o.Policy = PolicySRPT
	o.QueueBound = 1
	s := New(h, o)
	s.Start()

	blocked := s.Submit("block")
	time.Sleep(time.Millisecond) // let the blocker reach the worker

	hints := []time.Duration{400, 100, 300, 200} // microseconds, submitted out of order
	var chans []<-chan Response
	for _, us := range hints {
		chans = append(chans, s.Submit(hintedSpin{hint: us * time.Microsecond}))
	}
	time.Sleep(time.Millisecond) // let all four reach the central queue
	close(h.release)
	<-blocked
	for _, ch := range chans {
		if resp := <-ch; resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	s.Stop()

	h.order.mu.Lock()
	got := append([]time.Duration(nil), h.order.hints...)
	h.order.mu.Unlock()
	want := []time.Duration{100, 200, 300, 400}
	if len(got) != len(want) {
		t.Fatalf("ran %d hinted requests, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i]*time.Microsecond {
			t.Fatalf("SRPT run order %v, want %v µs", got, want)
		}
	}
}

// TestFCFSIgnoresHints: the same out-of-order submission under FCFS must
// run in arrival order — hints are policy-scoped, not a global reorder.
func TestFCFSIgnoresHints(t *testing.T) {
	h := &blockingHandler{release: make(chan struct{})}
	o := testOptions(1, 0)
	o.QueueBound = 1
	s := New(h, o)
	s.Start()

	blocked := s.Submit("block")
	time.Sleep(time.Millisecond)
	hints := []time.Duration{400, 100, 300, 200}
	var chans []<-chan Response
	for _, us := range hints {
		chans = append(chans, s.Submit(hintedSpin{hint: us * time.Microsecond}))
	}
	time.Sleep(time.Millisecond)
	close(h.release)
	<-blocked
	for _, ch := range chans {
		if resp := <-ch; resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	s.Stop()

	h.order.mu.Lock()
	got := append([]time.Duration(nil), h.order.hints...)
	h.order.mu.Unlock()
	for i, us := range hints {
		if got[i] != us*time.Microsecond {
			t.Fatalf("FCFS run order %v, want submission order %v µs", got, hints)
		}
	}
}

// TestWorkStealingRacingStop holds one shard's worker busy so the other
// shard must steal its backlog, widens the steal window with the test
// gate, and fires Stop inside that window. Invariants: at least one
// steal happened, every submission got exactly one response, and no
// request was lost or run twice (Submitted == Completed, and each
// hinted request ran at most once).
func TestWorkStealingRacingStop(t *testing.T) {
	h := &blockingHandler{release: make(chan struct{})}
	o := Options{Workers: 2, Shards: 2, QueueBound: 1,
		DrainTimeout: 5 * time.Second, PinThreads: false}

	var stealOnce sync.Once
	stealSeen := make(chan struct{})
	testStealGate = func() {
		stealOnce.Do(func() { close(stealSeen) })
		// Widen the pop-to-dispatch window so Stop's drain check runs
		// while the stolen task is in the thief's hands.
		time.Sleep(200 * time.Microsecond)
	}
	defer func() { testStealGate = nil }()

	s := New(h, o)
	s.Start()

	// Occupy both workers (one per shard) with blockers.
	blockers := []<-chan Response{s.Submit("block"), s.Submit("block")}
	time.Sleep(time.Millisecond)

	// Pile never-started work into both central queues.
	const n = 32
	var chans []<-chan Response
	for i := 0; i < n; i++ {
		chans = append(chans, s.Submit(hintedSpin{hint: time.Duration(i) * time.Microsecond}))
	}
	time.Sleep(time.Millisecond)

	// Free exactly one worker: its shard drains its own queue, then must
	// steal the blocked sibling's backlog.
	h.release <- struct{}{}

	stopDone := make(chan struct{})
	go func() {
		select {
		case <-stealSeen:
		case <-time.After(10 * time.Second):
		}
		go func() { s.Stop(); close(stopDone) }()
		time.Sleep(time.Millisecond)
		close(h.release) // free the second blocker so drain can finish
	}()

	select {
	case <-stealSeen:
	case <-time.After(10 * time.Second):
		t.Fatal("no steal observed")
	}
	for _, ch := range blockers {
		if !receiveExactlyOne(t, ch) {
			t.Fatal("blocker lost")
		}
	}
	for i, ch := range chans {
		if !receiveExactlyOne(t, ch) {
			t.Fatalf("request %d lost", i)
		}
	}
	select {
	case <-stopDone:
	case <-time.After(15 * time.Second):
		t.Fatal("Stop hung during steal race")
	}

	st := s.Stats()
	if st.Steals == 0 {
		t.Fatal("Steals counter is zero after an observed steal")
	}
	if st.Submitted != st.Completed {
		t.Fatalf("submitted %d != completed %d after steal race; stats %+v",
			st.Submitted, st.Completed, st)
	}
	// No double-run: each hinted request records its hint exactly once.
	h.order.mu.Lock()
	counts := map[time.Duration]int{}
	for _, hint := range h.order.hints {
		counts[hint]++
	}
	h.order.mu.Unlock()
	for hint, c := range counts {
		if c > 1 {
			t.Fatalf("request with hint %v ran %d times", hint, c)
		}
	}
}

// TestStealKeepsThroughputWhenOneShardStalls: with stealing, a stalled
// shard's backlog still completes via its siblings (global work
// conservation, §3.3 across shards).
func TestStealKeepsThroughputWhenOneShardStalls(t *testing.T) {
	h := &blockingHandler{release: make(chan struct{})}
	s := New(h, Options{Workers: 2, Shards: 2, QueueBound: 1,
		DrainTimeout: 5 * time.Second, PinThreads: false})
	s.Start()

	// Stall both workers, queue work, then free only one.
	blockers := []<-chan Response{s.Submit("block"), s.Submit("block")}
	time.Sleep(time.Millisecond)
	const n = 24
	var chans []<-chan Response
	for i := 0; i < n; i++ {
		chans = append(chans, s.Submit(hintedSpin{hint: time.Microsecond}))
	}
	time.Sleep(time.Millisecond)
	h.release <- struct{}{}

	// Every queued request must complete even though one shard's worker
	// never frees up — the live shard steals the backlog.
	var done atomic.Int32
	var wg sync.WaitGroup
	for _, ch := range chans {
		wg.Add(1)
		go func(ch <-chan Response) {
			defer wg.Done()
			select {
			case resp := <-ch:
				if resp.Err == nil {
					done.Add(1)
				}
			case <-time.After(10 * time.Second):
			}
		}(ch)
	}
	wg.Wait()
	if got := done.Load(); got != n {
		t.Fatalf("only %d of %d requests completed with one shard stalled", got, n)
	}
	if s.Stats().Steals == 0 {
		t.Fatal("no steals recorded while draining a stalled shard's backlog")
	}
	close(h.release)
	for _, ch := range blockers {
		<-ch
	}
	s.Stop()
}
