// Scheduling-policy layer: the central queue. All queue order decisions
// live behind internal/policy.Queue[*task] (FCFS or SRPT, selected by
// Options.Policy); this file only adapts that single-goroutine
// interface for shard-concurrent access and bolts on what the policies
// deliberately don't know about: deadlines.
//
// Expiry uses a deadline min-heap plus tombstones instead of scanning:
// the old dispatcher swept the whole FIFO every millisecond (O(n)
// per sweep, O(n·m) per request lifetime at depth n) and spliced
// mid-slice on work-conserving steals. Here the sweep pops only
// already-expired heap heads (O(log n) each), the popped task is marked
// dead in place, and the policy queue drops tombstones lazily on Pop —
// no mid-structure removal ever happens, so dispatch cost stays flat
// with depth (see BenchmarkDispatchDepth10k).
package live

import (
	"sync"
	"sync/atomic"
	"time"

	"concord/internal/policy"
)

// dlEntry is one deadline-heap element.
type dlEntry struct {
	at time.Time
	t  *task
}

// centralQueue is one shard's run queue: a policy.Queue[*task] under a
// mutex (the owning dispatcher pushes and pops; sibling shards pop
// non-started tasks when stealing), a deadline min-heap, and an atomic
// live-length mirror that Depths and steal-victim selection read
// without the lock.
type centralQueue struct {
	mu sync.Mutex
	q  policy.Queue[*task]
	dl []dlEntry
	// length counts live (non-tombstoned) queued tasks.
	length atomic.Int64
	// critical counts live queued ClassCritical tasks — the
	// dispatcher's lock-free "is protected work waiting?" probe that
	// tightens lower-class quanta while critical work is queued.
	critical atomic.Int64
}

// newCentralQueue builds a queue with the named discipline.
func newCentralQueue(name string) (*centralQueue, error) {
	q, err := policy.NewQueue[*task](name)
	if err != nil {
		return nil, err
	}
	return &centralQueue{q: q}, nil
}

// Len returns the live queue length without taking the lock.
func (c *centralQueue) Len() int { return int(c.length.Load()) }

// CriticalLen returns the live queued ClassCritical count without
// taking the lock.
func (c *centralQueue) CriticalLen() int { return int(c.critical.Load()) }

// Push enqueues t. The caller must have finished all writes to the
// task: once inside, a sibling shard may pop it.
func (c *centralQueue) Push(t *task) {
	c.mu.Lock()
	t.inQueue = true
	c.q.Push(t, t.started)
	if !t.deadline.IsZero() && !t.inDL {
		t.inDL = true
		c.dlPush(dlEntry{at: t.deadline, t: t})
	}
	c.mu.Unlock()
	c.length.Add(1)
	if SLOClass(t.class) == ClassCritical {
		c.critical.Add(1)
	}
}

// Pop removes and returns the next live task per the discipline,
// discarding tombstones on the way.
func (c *centralQueue) Pop() (*task, bool) {
	c.mu.Lock()
	for {
		t, ok := c.q.Pop()
		if !ok {
			c.mu.Unlock()
			return nil, false
		}
		if t.dead {
			continue // expired by the sweep while queued
		}
		t.inQueue = false
		c.mu.Unlock()
		c.length.Add(-1)
		if SLOClass(t.class) == ClassCritical {
			c.critical.Add(-1)
		}
		return t, true
	}
}

// PopNonStarted removes and returns the next live never-started task —
// what the work-conserving dispatcher may run (§3.3) and what sibling
// shards may steal.
func (c *centralQueue) PopNonStarted() (*task, bool) {
	c.mu.Lock()
	for {
		t, ok := c.q.PopNonStarted()
		if !ok {
			c.mu.Unlock()
			return nil, false
		}
		if t.dead {
			continue
		}
		t.inQueue = false
		c.mu.Unlock()
		c.length.Add(-1)
		if SLOClass(t.class) == ClassCritical {
			c.critical.Add(-1)
		}
		return t, true
	}
}

// SweepExpired pops every deadline at or before now off the heap and
// returns the expired tasks that were still queued, tombstoning their
// policy-queue entries in place. Heap entries whose task has since left
// the queue are dropped (the task re-adds itself on its next Push).
func (c *centralQueue) SweepExpired(now time.Time) []*task {
	c.mu.Lock()
	var out []*task
	for len(c.dl) > 0 && !c.dl[0].at.After(now) {
		e := c.dlPop()
		e.t.inDL = false
		if e.t.inQueue && !e.t.dead {
			e.t.dead = true
			c.length.Add(-1)
			if SLOClass(e.t.class) == ClassCritical {
				c.critical.Add(-1)
			}
			out = append(out, e.t)
		}
	}
	c.mu.Unlock()
	return out
}

// SwapPolicy replaces the queue's discipline, re-enqueueing every live
// task into a fresh policy queue of the named kind under the lock (the
// dispatcher's quiesce point for runtime policy switching). Tombstoned
// tasks are dropped on the way — their deadline-sweep completion
// already happened — and the deadline heap is untouched: it orders by
// time, not discipline. Unknown names panic: SetPolicy validated the
// name, so reaching here with a bad one is a programming error.
func (c *centralQueue) SwapPolicy(name string) {
	nq, err := policy.NewQueue[*task](name)
	if err != nil {
		panic("live: " + err.Error())
	}
	c.mu.Lock()
	for {
		t, ok := c.q.Pop()
		if !ok {
			break
		}
		if t.dead {
			continue
		}
		nq.Push(t, t.started)
	}
	c.q = nq
	c.mu.Unlock()
}

// DrainAll removes and returns every live task in discipline order, for
// abort-mode failPending.
func (c *centralQueue) DrainAll() []*task {
	c.mu.Lock()
	var out []*task
	for {
		t, ok := c.q.Pop()
		if !ok {
			break
		}
		if t.dead {
			continue
		}
		t.inQueue = false
		t.inDL = false
		c.length.Add(-1)
		if SLOClass(t.class) == ClassCritical {
			c.critical.Add(-1)
		}
		out = append(out, t)
	}
	c.dl = c.dl[:0]
	c.mu.Unlock()
	return out
}

// ---------- deadline min-heap (ordered by at) ----------

func (c *centralQueue) dlPush(e dlEntry) {
	c.dl = append(c.dl, e)
	i := len(c.dl) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !c.dl[i].at.Before(c.dl[parent].at) {
			break
		}
		c.dl[i], c.dl[parent] = c.dl[parent], c.dl[i]
		i = parent
	}
}

func (c *centralQueue) dlPop() dlEntry {
	e := c.dl[0]
	last := len(c.dl) - 1
	c.dl[0] = c.dl[last]
	c.dl[last] = dlEntry{}
	c.dl = c.dl[:last]
	n := len(c.dl)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && c.dl[l].at.Before(c.dl[smallest].at) {
			smallest = l
		}
		if r < n && c.dl[r].at.Before(c.dl[smallest].at) {
			smallest = r
		}
		if smallest == i {
			return e
		}
		c.dl[i], c.dl[smallest] = c.dl[smallest], c.dl[i]
		i = smallest
	}
}
