package live

import (
	"math"
	"testing"
	"time"

	"concord/internal/obs"
)

// TestTailTrackerWiring: every delivered response lands in the rolling
// window, and the SLO accounts good vs bad against the latency target.
func TestTailTrackerWiring(t *testing.T) {
	slo := obs.NewSLOTracker(obs.SLOConfig{Target: 250 * time.Microsecond, Objective: 0.99})
	tail := obs.NewTailTracker([]time.Duration{time.Second, 10 * time.Second}, slo)
	o := testOptions(2, 0)
	o.Tail = tail
	s := New(&spinHandler{}, o)
	s.Start()

	// good counts the responses whose *observed* latency met the 250µs
	// target: under load (GC pauses, a shuffled test order putting heavy
	// suites first) a nominally-20µs request can legitimately exceed the
	// target on the wall clock, and the SLO tracker must count it bad.
	const short, long = 40, 10
	good := 0
	for i := 0; i < short; i++ {
		resp := s.Do(20 * time.Microsecond)
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		if resp.Latency <= 250*time.Microsecond {
			good++
		}
	}
	for i := 0; i < long; i++ {
		// Far over the 250µs SLO target: counted served but bad.
		resp := s.Do(2 * time.Millisecond)
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		if resp.Latency <= 250*time.Microsecond {
			good++
		}
	}
	s.Stop()
	if good < short/2 {
		t.Skipf("only %d of %d fast requests met the target; host too loaded to judge SLO accounting", good, short)
	}

	if got := tail.Window().WindowSnapshot(10 * time.Second).Count; got != short+long {
		t.Fatalf("window Count = %d, want %d (every response observed)", got, short+long)
	}
	// The rolling p99.9 must reflect the 2ms class, the p50 the 20µs one.
	if q := tail.Quantile(10*time.Second, 0.999); q < 1000 {
		t.Fatalf("rolling p99.9 = %vµs, want ≥1000 (the slow class)", q)
	}
	if q := tail.Quantile(10*time.Second, 0.5); math.IsNaN(q) || q > 1000 {
		t.Fatalf("rolling p50 = %vµs, want the fast class", q)
	}
	snap := slo.Snapshot()
	if snap.ShortTotal != short+long {
		t.Fatalf("SLO total = %d, want %d", snap.ShortTotal, short+long)
	}
	if snap.ShortGood != uint64(good) {
		t.Fatalf("SLO good = %d, want %d (responses observed within the 250µs target)", snap.ShortGood, good)
	}
}

// TestTailTrackerCountsRejections: a rejected submission is SLO-bad but
// never pollutes the latency window.
func TestTailTrackerCountsRejections(t *testing.T) {
	slo := obs.NewSLOTracker(obs.SLOConfig{Target: time.Second, Objective: 0.99})
	tail := obs.NewTailTracker(nil, slo)
	o := testOptions(1, 0)
	o.Tail = tail
	s := New(&spinHandler{}, o)
	s.Start()
	if resp := s.Do(time.Microsecond); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	s.Stop()
	// Post-stop submissions are rejected with ErrServerStopped.
	if resp := s.Do(time.Microsecond); resp.Err == nil {
		t.Fatal("submission after Stop succeeded")
	}
	snap := slo.Snapshot()
	if snap.ShortTotal != 2 || snap.ShortGood != 1 {
		t.Fatalf("SLO good/total = %d/%d, want 1/2 (rejection counted bad)", snap.ShortGood, snap.ShortTotal)
	}
	if got := tail.Window().WindowSnapshot(time.Minute).Count; got != 1 {
		t.Fatalf("window Count = %d, want 1 (rejections stay out of the latency window)", got)
	}
}
