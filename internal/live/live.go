// Package live is a working Go implementation of the Concord runtime: a
// dispatcher thread plus pinned worker threads serving µs-to-ms-scale
// requests with
//
//   - cooperative preemption via per-worker padded atomic flags that
//     handler code polls (the paper's compiler-enforced cooperation,
//     §3.1 — in Go the "compiler pass" is either explicit ctx.Poll()
//     calls or source instrumentation via cmd/concordc),
//   - JBSQ(k) bounded per-worker queues fed push-style by the
//     dispatcher (§3.2), and
//   - a work-conserving dispatcher that runs requests itself, under
//     time-based self-preemption, when all worker queues are full
//     (§3.3); such requests never migrate to workers.
//
// Go cannot hold 2µs quanta (timer and scheduler jitter are comparable),
// so realistic quanta here are ≥ 50µs; the scheduling *structure* is
// exactly the paper's. Each request runs on its own goroutine that parks
// cooperatively, mirroring Shinjuku-style user-level contexts.
//
// # Lifecycle
//
// A Server moves through three states: serving, draining, stopped.
// Submit never blocks: it either accepts a request (exactly one
// Response is always delivered for an accepted request) or rejects it
// immediately with ErrServerStopped (after Stop has begun) or
// ErrQueueFull (submit buffer full — explicit backpressure instead of
// unbounded blocking). Stop drains every accepted request before
// returning; Options.DrainTimeout bounds the drain, after which queued
// and parked requests are completed with ErrServerStopped and running
// requests are aborted at their next Poll. Options.RequestTimeout gives
// every request a deadline; requests that expire while queued or parked
// are completed with ErrDeadlineExceeded.
package live

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"concord/internal/obs"
)

// Handler is the application callback interface, mirroring the paper's
// three-callback API (§4.1): setup(), setup_worker(core), and
// handle_request(req).
type Handler interface {
	// Setup initializes global application state before serving.
	Setup()
	// SetupWorker initializes per-worker state; worker -1 is the
	// dispatcher (it runs application code too when work-conserving).
	SetupWorker(worker int)
	// Handle processes one request. Long handlers must call ctx.Poll()
	// regularly (or be instrumented with cmd/concordc) so preemption
	// works; they may bracket lock-held regions with ctx.BeginNoPreempt /
	// ctx.EndNoPreempt.
	Handle(ctx *Ctx, payload any) (any, error)
}

// Options configures a Server.
type Options struct {
	// Workers is the number of worker goroutines (each pinned to an OS
	// thread). Default 2.
	Workers int
	// Quantum is the scheduling quantum; 0 disables preemption.
	Quantum time.Duration
	// QueueBound is k in JBSQ(k), counting the in-service request.
	// Default 2. 1 degenerates to a synchronous single queue.
	QueueBound int
	// WorkConserving lets the dispatcher run requests when every worker
	// queue is full.
	WorkConserving bool
	// DispatcherSlice is how long the dispatcher works on a stolen
	// request before checking for dispatcher duties. Default: Quantum,
	// or 100µs if Quantum is 0.
	DispatcherSlice time.Duration
	// PinThreads locks workers and dispatcher to OS threads. Default
	// true; tests disable it to run many servers concurrently.
	PinThreads bool
	// CoopTimeshare makes request code call runtime.Gosched every N
	// polls so the dispatcher and workers make progress when there are
	// fewer CPUs than runtime threads (the dispatcher otherwise starves
	// and preemption flags are never written). 0 auto-detects from
	// GOMAXPROCS; negative disables.
	CoopTimeshare int
	// SubmitBuffer is the ingress channel capacity. Default 4096. When
	// the buffer is full, Submit rejects with ErrQueueFull rather than
	// blocking.
	SubmitBuffer int
	// RequestTimeout bounds each request's total time at the server.
	// Requests that expire while queued or parked are completed with
	// ErrDeadlineExceeded; a request actively running handler code is
	// not interrupted (it is cooperative, like preemption). 0 disables.
	RequestTimeout time.Duration
	// DrainTimeout bounds Stop's graceful drain. When it expires,
	// queued and parked requests are completed with ErrServerStopped
	// and running requests are aborted at their next Poll. 0 waits for
	// every accepted request to finish.
	DrainTimeout time.Duration
	// Tracer, when non-nil, receives a lifecycle event at every request
	// state transition (submit, enqueue, dispatch, start, preempt
	// signal, yield, requeue, resume, completion) and enables per-request
	// latency Breakdown on every Response. It must be built with
	// obs.NewTracer for the same worker count as this server. When nil,
	// the cost at each instrumentation point is a single predictable
	// branch.
	Tracer *obs.Tracer
	// Tail, when non-nil, receives every delivered response's latency
	// and success at completion, feeding rolling-window tail quantiles
	// and SLO burn-rate accounting. Independent of Tracer. When nil,
	// the cost is a single nil-check branch per completion.
	Tail *obs.TailTracker
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueBound <= 0 {
		o.QueueBound = 2
	}
	if o.DispatcherSlice <= 0 {
		if o.Quantum > 0 {
			o.DispatcherSlice = o.Quantum
		} else {
			o.DispatcherSlice = 100 * time.Microsecond
		}
	}
	if o.SubmitBuffer <= 0 {
		o.SubmitBuffer = 4096
	}
	if o.CoopTimeshare == 0 {
		if runtime.GOMAXPROCS(0) < o.Workers+2 {
			// Not enough CPUs to run the dispatcher, the workers, and
			// request code in parallel: timeshare cooperatively.
			o.CoopTimeshare = 64
		} else {
			o.CoopTimeshare = -1
		}
	}
	return o
}

// Response is the result of one request.
type Response struct {
	ID      uint64
	Payload any
	Err     error
	// Latency is the total time at the server (sojourn).
	Latency time.Duration
	// Preemptions counts how many times the request yielded.
	Preemptions int
	// OnDispatcher reports the request was executed by the
	// work-conserving dispatcher.
	OnDispatcher bool
	// Breakdown attributes Latency to lifecycle components. It is
	// non-nil only when the server runs with Options.Tracer set.
	Breakdown *Breakdown
}

// Breakdown decomposes one request's sojourn into the paper's Table-1
// components. Handoff + Queue + Service + Preempted == Latency by
// construction (Preempted absorbs the remainder: requeue gaps plus
// scheduling jitter between timestamps).
type Breakdown struct {
	// Handoff is submit → dispatcher ingest (notification cost).
	Handoff time.Duration
	// Queue is ingest → first time on a CPU (central + JBSQ queueing).
	Queue time.Duration
	// Service is time actually executing handler code.
	Service time.Duration
	// Preempted is time parked between a yield and the next resume.
	Preempted time.Duration
}

// Stats are cumulative server counters, safe to read while serving.
// Completed counts delivered responses, including error responses for
// expired or aborted requests, so Submitted == Completed after Stop.
type Stats struct {
	Submitted   uint64
	Completed   uint64
	Rejected    uint64 // never accepted: queue full or server stopped
	Expired     uint64 // completed with ErrDeadlineExceeded
	Aborted     uint64 // completed with ErrServerStopped by drain abort
	Preemptions uint64
	Stolen      uint64 // completed by the dispatcher
}

// Sentinel errors. Compare with errors.Is.
var (
	// ErrServerStopped is returned for submissions after Stop has begun
	// and for accepted requests abandoned when DrainTimeout expires.
	ErrServerStopped = errors.New("live: server stopped")
	// ErrQueueFull is returned when the submit buffer is full.
	ErrQueueFull = errors.New("live: submit queue full")
	// ErrDeadlineExceeded is returned when a request's RequestTimeout
	// expires before it completes.
	ErrDeadlineExceeded = errors.New("live: request deadline exceeded")
)

// cacheLinePad avoids false sharing between per-worker flags.
const cacheLinePad = 64

// Test-only scheduling gates. When non-nil they run at the two
// historically racy hand-off points, widening windows that are a few
// instructions wide (and unobservable on single-CPU machines) so the
// lifecycle regression tests can exercise them deterministically.
var (
	testSubmitGate  func() // between Submit's stop check and its enqueue
	testRequeueGate func() // between a preemption park and its re-submit
)

// deadlineSweep is how often the dispatcher scans the central queue for
// expired requests (expiry is also checked on every dispatch).
const deadlineSweep = time.Millisecond

// executor is a CPU context a task can run on: a worker or the
// dispatcher in work-conserving mode.
type executor struct {
	id int // worker index, or -1 for the dispatcher
	// flag is the dedicated "cache line" the dispatcher writes to
	// request preemption and the task's Poll reads. It holds the epoch
	// being preempted (never 0): a request yields only when the flag
	// matches its own epoch, so a signal aimed at one request can never
	// hit its successor and no retraction handshake is needed.
	flag atomic.Uint64
	_    [cacheLinePad - 8]byte
	// epoch is the worker's current scheduling epoch. Written by the
	// worker loop between requests, read by the request goroutine; the
	// resume/parked channel handshake orders the accesses.
	epoch uint64
	// sliceStart/sliceLen drive time-based self-preemption when the
	// dispatcher runs tasks (there is nobody to write its flag, §3.3).
	sliceStart time.Time
	sliceLen   time.Duration
}

type parkEvent struct {
	done bool
	resp Response
}

// task is one in-flight request and its suspended continuation.
type task struct {
	id       uint64
	payload  any
	arrival  time.Time
	deadline time.Time // zero = none
	result   chan Response

	resume chan *executor
	parked chan parkEvent

	// abortErr, when set before a resume, makes the request unwind with
	// this error at the resume point instead of continuing. Written
	// before the resume send, read after the resume receive.
	abortErr error

	started      bool
	onDispatcher bool
	preempts     int

	// Observability timestamps, written only when the server has a
	// tracer. All writes happen on the goroutine that owns the task at
	// that moment; the channel hand-offs order them.
	enqueueTS  time.Time // first dispatcher ingest
	firstRunTS time.Time // first CPU hand-off
	runStart   time.Time // current running interval's start
	runNS      int64     // accumulated running time
}

func (t *task) expired(now time.Time) bool {
	return !t.deadline.IsZero() && now.After(t.deadline)
}

// taskAbort is the panic payload used to unwind an aborted request's
// handler; startTask's recover converts it to a Response error.
type taskAbort struct{ err error }

// runInfo is the per-worker "currently running" record the dispatcher
// reads to detect expired quanta.
type runInfo struct {
	epoch uint64
	id    uint64 // request id, for preempt-signal attribution
	start time.Time
}

// Server is a running Concord scheduling runtime.
type Server struct {
	opts    Options
	handler Handler

	submit  chan *task
	central []*task // dispatcher-owned FIFO
	locals  []chan *task
	occ     []atomic.Int32 // per-worker occupancy incl. in-service
	workers []*executor
	running []atomic.Pointer[runInfo]

	dispatcherEx *executor
	saved        *task

	// tr is Options.Tracer, kept as a concrete pointer so the disabled
	// path is one nil-check branch per event site. tail is Options.Tail
	// under the same contract: one nil check per completion.
	tr   *obs.Tracer
	tail *obs.TailTracker
	// centralLen mirrors len(central) (dispatcher-owned) once per
	// dispatcher iteration so Depths can read it from any goroutine.
	centralLen atomic.Int64

	nextID atomic.Uint64
	stats  struct {
		submitted   atomic.Uint64
		completed   atomic.Uint64
		rejected    atomic.Uint64
		expired     atomic.Uint64
		aborted     atomic.Uint64
		preemptions atomic.Uint64
		stolen      atomic.Uint64
	}

	// submitMu orders Submit against Stop: Submit holds the read lock
	// across the stopping check and the enqueue, so once Stop has taken
	// the write lock and set stopping, no further task can enter the
	// submit buffer and every later Submit deterministically returns
	// ErrServerStopped.
	submitMu sync.RWMutex
	stopping bool // guarded by submitMu

	started atomic.Bool
	stopped atomic.Bool   // dispatcher-visible mirror of stopping
	abort   atomic.Bool   // drain deadline expired: fail pending work
	done    chan struct{} // dispatcher exited
	wg      sync.WaitGroup

	startOnce sync.Once
	stopOnce  sync.Once
}

// New builds a server; call Start before submitting. It panics when
// Options.Tracer was built for a different worker count.
func New(h Handler, opts Options) *Server {
	opts = opts.withDefaults()
	if opts.Tracer != nil && opts.Tracer.Workers() != opts.Workers {
		panic(fmt.Sprintf("live: tracer built for %d workers, server has %d",
			opts.Tracer.Workers(), opts.Workers))
	}
	s := &Server{
		opts:    opts,
		tr:      opts.Tracer,
		tail:    opts.Tail,
		handler: h,
		submit:  make(chan *task, opts.SubmitBuffer),
		locals:  make([]chan *task, opts.Workers),
		occ:     make([]atomic.Int32, opts.Workers),
		workers: make([]*executor, opts.Workers),
		running: make([]atomic.Pointer[runInfo], opts.Workers),
		done:    make(chan struct{}),
	}
	for i := range s.locals {
		s.locals[i] = make(chan *task, opts.QueueBound)
		s.workers[i] = &executor{id: i}
	}
	s.dispatcherEx = &executor{id: -1}
	return s
}

// Start launches the dispatcher and workers.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		s.started.Store(true)
		s.handler.Setup()
		for i := 0; i < s.opts.Workers; i++ {
			s.wg.Add(1)
			go s.workerLoop(i)
		}
		go s.dispatcherLoop()
	})
}

// Stop drains the server and shuts it down. Every request accepted
// before Stop gets exactly one response: with no DrainTimeout, Stop
// waits for all of them to complete; with one, requests still queued or
// parked when it expires are completed with ErrServerStopped and
// running requests are aborted at their next Poll. Submissions after
// Stop begins are rejected with ErrServerStopped. Stop is idempotent.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		s.submitMu.Lock()
		s.stopping = true
		s.submitMu.Unlock()
		s.stopped.Store(true)
		if !s.started.Load() {
			return // never started: nothing to drain
		}
		if d := s.opts.DrainTimeout; d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-s.done:
				timer.Stop()
			case <-timer.C:
				s.abort.Store(true)
				<-s.done
			}
		} else {
			<-s.done
		}
		for _, ch := range s.locals {
			close(ch)
		}
		s.wg.Wait()
	})
}

// Depths is a point-in-time queue-occupancy snapshot: momentary
// overload that lifetime counters cannot show.
type Depths struct {
	// Submit is the ingress buffer occupancy (accepted, not yet
	// ingested by the dispatcher).
	Submit int
	// Central is the dispatcher FIFO length, mirrored once per
	// dispatcher iteration (so it can lag by one iteration).
	Central int
	// Workers is per-worker JBSQ occupancy including the in-service
	// request.
	Workers []int
}

// Depths returns a live queue-depth snapshot. Safe to call while
// serving.
func (s *Server) Depths() Depths {
	d := Depths{
		Submit:  len(s.submit),
		Central: int(s.centralLen.Load()),
		Workers: make([]int, len(s.occ)),
	}
	for w := range s.occ {
		d.Workers[w] = int(s.occ[w].Load())
	}
	return d
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		Submitted:   s.stats.submitted.Load(),
		Completed:   s.stats.completed.Load(),
		Rejected:    s.stats.rejected.Load(),
		Expired:     s.stats.expired.Load(),
		Aborted:     s.stats.aborted.Load(),
		Preemptions: s.stats.preemptions.Load(),
		Stolen:      s.stats.stolen.Load(),
	}
}

// Submit enqueues a request and returns a channel that will receive
// exactly one response. The channel has capacity 1; the caller need not
// read it immediately. Submit never blocks: after Stop has begun it
// responds ErrServerStopped, and when the submit buffer is full it
// responds ErrQueueFull.
func (s *Server) Submit(payload any) <-chan Response {
	ch := make(chan Response, 1)
	t := &task{
		id:      s.nextID.Add(1),
		payload: payload,
		arrival: time.Now(),
		result:  ch,
		resume:  make(chan *executor),
		parked:  make(chan parkEvent),
	}
	if d := s.opts.RequestTimeout; d > 0 {
		t.deadline = t.arrival.Add(d)
	}
	s.submitMu.RLock()
	if s.stopping {
		s.submitMu.RUnlock()
		s.stats.rejected.Add(1)
		if s.tr != nil {
			s.tr.Record(obs.WriterClient, obs.EvReject, t.id, obs.StatusStopped)
		}
		if s.tail != nil {
			s.tail.ObserveRejected()
		}
		ch <- Response{ID: t.id, Err: ErrServerStopped}
		return ch
	}
	if testSubmitGate != nil {
		testSubmitGate()
	}
	select {
	case s.submit <- t:
		s.stats.submitted.Add(1)
		if s.tr != nil {
			s.tr.Record(obs.WriterClient, obs.EvSubmit, t.id, 0)
		}
		s.submitMu.RUnlock()
	default:
		s.submitMu.RUnlock()
		s.stats.rejected.Add(1)
		if s.tr != nil {
			s.tr.Record(obs.WriterClient, obs.EvReject, t.id, obs.StatusQueueFull)
		}
		if s.tail != nil {
			s.tail.ObserveRejected()
		}
		ch <- Response{ID: t.id, Err: ErrQueueFull}
	}
	return ch
}

// Do submits a request and waits for its response.
func (s *Server) Do(payload any) Response {
	return <-s.Submit(payload)
}

// ---------- dispatcher ----------

func (s *Server) dispatcherLoop() {
	if s.opts.PinThreads {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	s.handler.SetupWorker(-1)
	lastFlagged := make([]uint64, s.opts.Workers)
	var lastSweep time.Time

	for {
		progress := false
		aborting := s.abort.Load()

		// 1. Ingest submissions (bounded batch per iteration, so
		// preemption signaling stays timely). Runs in abort mode too:
		// workers re-submit preempted tasks here and must never be
		// stranded against a departed dispatcher.
		for i := 0; i < 64; i++ {
			select {
			case t := <-s.submit:
				s.central = append(s.central, t)
				if s.tr != nil {
					if t.enqueueTS.IsZero() {
						t.enqueueTS = time.Now()
					}
					s.tr.Record(obs.WriterDispatcher, obs.EvEnqueueCentral, t.id, 0)
				}
				progress = true
				continue
			default:
			}
			break
		}

		if aborting {
			// Drain deadline expired: fail everything queued or parked,
			// and signal every running request so it parks (and is then
			// failed by its worker) at its next Poll.
			for w := range s.workers {
				if info := s.running[w].Load(); info != nil {
					s.workers[w].flag.Store(info.epoch)
					if s.tr != nil && info.epoch != lastFlagged[w] {
						lastFlagged[w] = info.epoch
						s.tr.Record(obs.WriterDispatcher, obs.EvPreemptSignal, info.id, int64(w))
					}
				}
			}
			if s.failPending() {
				progress = true
			}
		} else {
			// 2. Preemption signaling: write the flag of any worker
			// whose current request outlived the quantum. The flag
			// carries the epoch being preempted, so a signal aimed at a
			// finished request is inert for its successor — no
			// check-then-act retraction window.
			if q := s.opts.Quantum; q > 0 {
				now := time.Now()
				for w := range s.workers {
					info := s.running[w].Load()
					if info == nil || info.epoch == lastFlagged[w] {
						continue
					}
					if now.Sub(info.start) >= q {
						s.workers[w].flag.Store(info.epoch)
						lastFlagged[w] = info.epoch
						if s.tr != nil {
							s.tr.Record(obs.WriterDispatcher, obs.EvPreemptSignal, info.id, int64(w))
						}
						progress = true
					}
				}
			}

			// 2b. Coarse deadline sweep over the central queue, so
			// requests stuck behind full worker queues still expire.
			if s.opts.RequestTimeout > 0 && len(s.central) > 0 {
				if now := time.Now(); now.Sub(lastSweep) >= deadlineSweep {
					lastSweep = now
					kept := s.central[:0]
					for _, t := range s.central {
						if t.expired(now) {
							s.expire(t)
							progress = true
						} else {
							kept = append(kept, t)
						}
					}
					for i := len(kept); i < len(s.central); i++ {
						s.central[i] = nil
					}
					s.central = kept
				}
			}

			// 3. JBSQ push: move requests to the shortest non-full
			// queue, expiring lazily at the head.
			for len(s.central) > 0 {
				t := s.central[0]
				if !t.deadline.IsZero() && t.expired(time.Now()) {
					s.central[0] = nil
					s.central = s.central[1:]
					s.expire(t)
					progress = true
					continue
				}
				w := s.shortestQueue()
				if w < 0 {
					break
				}
				s.central[0] = nil
				s.central = s.central[1:]
				s.occ[w].Add(1)
				if s.tr != nil {
					s.tr.Record(obs.WriterDispatcher, obs.EvDispatch, t.id, int64(w))
				}
				s.locals[w] <- t
				progress = true
			}

			// 4. Work conservation (also during graceful drain — the
			// dispatcher helping finishes the backlog sooner).
			if s.opts.WorkConserving && !progress {
				if t := s.saved; t != nil {
					s.saved = nil
					if t.expired(time.Now()) {
						s.expire(t)
					} else {
						s.runSlice(t) // re-sets saved if the task parks again
					}
					progress = true
				} else if t := s.takeNonStarted(); t != nil {
					s.runSlice(t)
					progress = true
				}
			}
		}

		s.centralLen.Store(int64(len(s.central)))
		if s.stopped.Load() && s.drained() {
			close(s.done)
			return
		}
		if !progress {
			runtime.Gosched()
		}
	}
}

func (s *Server) shortestQueue() int {
	best, bestOcc := -1, int32(s.opts.QueueBound)
	for w := range s.occ {
		if o := s.occ[w].Load(); o < bestOcc {
			best, bestOcc = w, o
		}
	}
	return best
}

// takeNonStarted pops the first never-started request from the central
// queue — the only kind the dispatcher may steal (§3.3) — but only when
// every worker queue is full. Expired requests found on the way are
// completed with ErrDeadlineExceeded.
func (s *Server) takeNonStarted() *task {
	for w := range s.occ {
		if s.occ[w].Load() < int32(s.opts.QueueBound) {
			return nil
		}
	}
	now := time.Now()
	for i := 0; i < len(s.central); {
		t := s.central[i]
		if t.expired(now) {
			s.central = append(s.central[:i], s.central[i+1:]...)
			s.expire(t)
			continue
		}
		if !t.started {
			s.central = append(s.central[:i], s.central[i+1:]...)
			return t
		}
		i++
	}
	return nil
}

// runSlice executes one dispatcher slice of a stolen task.
func (s *Server) runSlice(t *task) {
	ex := s.dispatcherEx
	ex.sliceStart = time.Now()
	ex.sliceLen = s.opts.DispatcherSlice
	first := !t.started
	if !t.started {
		t.started = true
		t.onDispatcher = true
		s.startTask(t)
	}
	if s.tr != nil {
		if t.firstRunTS.IsZero() {
			t.firstRunTS = ex.sliceStart
		}
		t.runStart = ex.sliceStart
		kind := obs.EvResume
		if first {
			kind = obs.EvStart
		}
		s.tr.Record(obs.WriterDispatcher, kind, t.id, 0)
	}
	t.resume <- ex
	ev := <-t.parked
	if s.tr != nil {
		t.runNS += int64(time.Since(t.runStart))
	}
	if ev.done {
		ev.resp.OnDispatcher = true
		s.finish(obs.WriterDispatcher, t, ev.resp)
		s.stats.stolen.Add(1)
		return
	}
	t.preempts++
	s.stats.preemptions.Add(1)
	if s.tr != nil {
		s.tr.Record(obs.WriterDispatcher, obs.EvYield, t.id, 0)
	}
	// Stolen requests cannot migrate: park in the dedicated buffer.
	s.saved = t
}

// failPending completes every queued or parked request with
// ErrServerStopped; it reports whether it failed anything.
func (s *Server) failPending() bool {
	failed := false
	for _, t := range s.central {
		s.failTask(t, ErrServerStopped, s.dispatcherEx)
		s.stats.aborted.Add(1)
		failed = true
	}
	s.central = nil
	if t := s.saved; t != nil {
		s.saved = nil
		s.failTask(t, ErrServerStopped, s.dispatcherEx)
		s.stats.aborted.Add(1)
		failed = true
	}
	return failed
}

// expire completes a queued or parked request with ErrDeadlineExceeded.
func (s *Server) expire(t *task) {
	s.stats.expired.Add(1)
	s.failTask(t, ErrDeadlineExceeded, s.dispatcherEx)
}

// failTask completes a request that is not currently running with err.
// A never-started task gets a direct error response; a parked task is
// resumed with abortErr set so its goroutine unwinds (handler defers
// run) and delivers the error itself. The unwind is not counted as
// service time.
func (s *Server) failTask(t *task, err error, ex *executor) {
	if !t.started {
		s.finish(ex.id, t, Response{ID: t.id, Err: err})
		return
	}
	t.abortErr = err
	t.resume <- ex
	ev := <-t.parked
	s.finish(ex.id, t, ev.resp)
}

func (s *Server) drained() bool {
	if len(s.central) > 0 || s.saved != nil || len(s.submit) > 0 {
		return false
	}
	for w := range s.occ {
		if s.occ[w].Load() != 0 {
			return false
		}
	}
	return true
}

// ---------- workers ----------

func (s *Server) workerLoop(w int) {
	defer s.wg.Done()
	if s.opts.PinThreads {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	s.handler.SetupWorker(w)
	ex := s.workers[w]
	var epoch uint64
	for t := range s.locals[w] {
		if s.abort.Load() {
			s.failTask(t, ErrServerStopped, ex)
			s.stats.aborted.Add(1)
			s.occ[w].Add(-1)
			continue
		}
		epoch++ // epochs start at 1; flag value 0 means "no signal"
		ex.epoch = epoch
		now := time.Now()
		s.running[w].Store(&runInfo{epoch: epoch, id: t.id, start: now})
		first := !t.started
		if !t.started {
			t.started = true
			s.startTask(t)
		}
		if s.tr != nil {
			if t.firstRunTS.IsZero() {
				t.firstRunTS = now
			}
			t.runStart = now
			kind := obs.EvResume
			if first {
				kind = obs.EvStart
			}
			s.tr.Record(w, kind, t.id, int64(epoch))
		}
		t.resume <- ex
		ev := <-t.parked
		s.running[w].Store(nil)
		if s.tr != nil {
			t.runNS += int64(time.Since(t.runStart))
		}
		if ev.done {
			s.finish(w, t, ev.resp)
			s.occ[w].Add(-1)
			continue
		}
		t.preempts++
		s.stats.preemptions.Add(1)
		if s.tr != nil {
			s.tr.Record(w, obs.EvYield, t.id, 0)
		}
		if s.abort.Load() {
			s.failTask(t, ErrServerStopped, ex)
			s.stats.aborted.Add(1)
			s.occ[w].Add(-1)
			continue
		}
		// Re-place the preempted request on the central queue. occ is
		// held across the hand-off so drained() can never observe an
		// idle server while the task is between queues — releasing occ
		// first opened a window where the dispatcher shut down and the
		// task was lost (and this send blocked forever).
		if testRequeueGate != nil {
			testRequeueGate()
		}
		if s.tr != nil {
			s.tr.Record(w, obs.EvRequeue, t.id, 0)
		}
		s.submit <- t
		s.occ[w].Add(-1)
	}
}

// startTask launches the request's goroutine (its user-level context).
func (s *Server) startTask(t *task) {
	go func() {
		ex := <-t.resume
		if err := t.abortErr; err != nil {
			t.parked <- parkEvent{done: true, resp: Response{ID: t.id, Err: err}}
			return
		}
		ctx := &Ctx{task: t, ex: ex, yieldEvery: s.opts.CoopTimeshare}
		out, err := func() (out any, err error) {
			defer func() {
				if r := recover(); r != nil {
					if ab, ok := r.(taskAbort); ok {
						err = ab.err
					} else {
						err = fmt.Errorf("live: handler panicked: %v", r)
					}
				}
			}()
			return s.handler.Handle(ctx, t.payload)
		}()
		t.parked <- parkEvent{done: true, resp: Response{
			ID:      t.id,
			Payload: out,
			Err:     err,
		}}
	}()
}

// finish delivers a request's single response; ring identifies the
// executor completing it (a worker index or obs.WriterDispatcher) for
// event attribution.
func (s *Server) finish(ring int, t *task, resp Response) {
	resp.Preemptions = t.preempts
	resp.OnDispatcher = resp.OnDispatcher || t.onDispatcher
	if s.tr != nil {
		end := time.Now()
		resp.Latency = end.Sub(t.arrival)
		resp.Breakdown = t.breakdown(end, resp.Latency)
		kind, status := completionEvent(resp.Err)
		s.tr.Record(ring, kind, t.id, status)
	} else {
		resp.Latency = time.Since(t.arrival)
	}
	if s.tail != nil {
		s.tail.Observe(resp.Latency, resp.Err == nil)
	}
	s.stats.completed.Add(1)
	t.result <- resp
}

// breakdown attributes the sojourn to components from the task's
// observability timestamps. Preempted absorbs the remainder, so the
// four components always sum exactly to total.
func (t *task) breakdown(end time.Time, total time.Duration) *Breakdown {
	b := &Breakdown{}
	if !t.enqueueTS.IsZero() {
		b.Handoff = t.enqueueTS.Sub(t.arrival)
		if !t.firstRunTS.IsZero() {
			b.Queue = t.firstRunTS.Sub(t.enqueueTS)
		} else {
			// Never ran: died queued (expired or aborted).
			b.Queue = end.Sub(t.enqueueTS)
		}
	}
	b.Service = time.Duration(t.runNS)
	if rest := total - b.Handoff - b.Queue - b.Service; rest > 0 {
		b.Preempted = rest
	}
	return b
}

// completionEvent maps a response error onto the terminal event kind
// and status code.
func completionEvent(err error) (obs.Kind, int64) {
	switch {
	case err == nil:
		return obs.EvComplete, obs.StatusOK
	case errors.Is(err, ErrDeadlineExceeded):
		return obs.EvExpire, obs.StatusDeadline
	case errors.Is(err, ErrServerStopped):
		return obs.EvAbort, obs.StatusStopped
	default:
		return obs.EvComplete, obs.StatusError
	}
}

// ---------- request context ----------

// Ctx is the per-request context handlers receive. It is only valid on
// the goroutine running the handler.
type Ctx struct {
	task       *task
	ex         *executor
	noPreempt  int
	yieldEvery int
	polls      int
	spinSink   uint64
}

// Worker returns the executor currently running the request: a worker
// index, or -1 on the dispatcher.
func (c *Ctx) Worker() int { return c.ex.id }

// Poll is the cooperative preemption probe — the call Concord's compiler
// pass inserts at function entries and loop back-edges. If the
// dispatcher has signaled preemption of this request's epoch (or the
// dispatcher's self-check slice has expired) and no no-preempt section
// is open, the request yields: its goroutine parks and the worker picks
// up its next request. If the server aborted the request while it was
// parked (drain deadline or request deadline), Poll panics with an
// internal value that unwinds the handler — its defers run — and
// becomes the response error.
func (c *Ctx) Poll() {
	if c.yieldEvery > 0 {
		// On CPU-constrained machines, hand the OS thread over so the
		// dispatcher can observe quanta and write flags. This does not
		// yield the request in the scheduling sense.
		if c.polls++; c.polls >= c.yieldEvery {
			c.polls = 0
			runtime.Gosched()
		}
	}
	if c.noPreempt != 0 {
		return
	}
	if c.ex.id >= 0 {
		f := c.ex.flag.Load()
		if f == 0 || f != c.ex.epoch {
			return // no signal, or a stale signal for a predecessor
		}
	} else {
		// Dispatcher slice: self-preempt on elapsed time (§3.3).
		if time.Since(c.ex.sliceStart) < c.ex.sliceLen {
			return
		}
	}
	c.task.parked <- parkEvent{done: false}
	c.ex = <-c.task.resume
	if err := c.task.abortErr; err != nil {
		panic(taskAbort{err})
	}
}

// BeginNoPreempt opens a critical section during which Poll will not
// yield — the paper's lock counter (§3.1). Sections nest.
func (c *Ctx) BeginNoPreempt() { c.noPreempt++ }

// EndNoPreempt closes a critical section. It panics on underflow.
func (c *Ctx) EndNoPreempt() {
	if c.noPreempt == 0 {
		panic("live: EndNoPreempt without BeginNoPreempt")
	}
	c.noPreempt--
}

// Spin busily consumes CPU for roughly d, polling for preemption at a
// fine grain. It is the synthetic "spin for the requested service time"
// workload of §5.1.
func (c *Ctx) Spin(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		for i := 0; i < 64; i++ {
			c.spinSink++
		}
		c.Poll()
	}
}
