// Package live is a working Go implementation of the Concord runtime: a
// dispatcher thread plus pinned worker threads serving µs-to-ms-scale
// requests with
//
//   - cooperative preemption via per-worker padded atomic flags that
//     handler code polls (the paper's compiler-enforced cooperation,
//     §3.1 — in Go the "compiler pass" is either explicit ctx.Poll()
//     calls or source instrumentation via cmd/concordc),
//   - JBSQ(k) bounded per-worker queues fed push-style by the
//     dispatcher (§3.2), and
//   - a work-conserving dispatcher that runs requests itself, under
//     time-based self-preemption, when all worker queues are full
//     (§3.3); such requests never migrate to workers.
//
// Go cannot hold 2µs quanta (timer and scheduler jitter are comparable),
// so realistic quanta here are ≥ 50µs; the scheduling *structure* is
// exactly the paper's. Each request runs on its own goroutine that parks
// cooperatively, mirroring Shinjuku-style user-level contexts.
package live

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Handler is the application callback interface, mirroring the paper's
// three-callback API (§4.1): setup(), setup_worker(core), and
// handle_request(req).
type Handler interface {
	// Setup initializes global application state before serving.
	Setup()
	// SetupWorker initializes per-worker state; worker -1 is the
	// dispatcher (it runs application code too when work-conserving).
	SetupWorker(worker int)
	// Handle processes one request. Long handlers must call ctx.Poll()
	// regularly (or be instrumented with cmd/concordc) so preemption
	// works; they may bracket lock-held regions with ctx.BeginNoPreempt /
	// ctx.EndNoPreempt.
	Handle(ctx *Ctx, payload any) (any, error)
}

// Options configures a Server.
type Options struct {
	// Workers is the number of worker goroutines (each pinned to an OS
	// thread). Default 2.
	Workers int
	// Quantum is the scheduling quantum; 0 disables preemption.
	Quantum time.Duration
	// QueueBound is k in JBSQ(k), counting the in-service request.
	// Default 2. 1 degenerates to a synchronous single queue.
	QueueBound int
	// WorkConserving lets the dispatcher run requests when every worker
	// queue is full.
	WorkConserving bool
	// DispatcherSlice is how long the dispatcher works on a stolen
	// request before checking for dispatcher duties. Default: Quantum,
	// or 100µs if Quantum is 0.
	DispatcherSlice time.Duration
	// PinThreads locks workers and dispatcher to OS threads. Default
	// true; tests disable it to run many servers concurrently.
	PinThreads bool
	// CoopTimeshare makes request code call runtime.Gosched every N
	// polls so the dispatcher and workers make progress when there are
	// fewer CPUs than runtime threads (the dispatcher otherwise starves
	// and preemption flags are never written). 0 auto-detects from
	// GOMAXPROCS; negative disables.
	CoopTimeshare int
	// SubmitBuffer is the ingress channel capacity. Default 4096.
	SubmitBuffer int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueBound <= 0 {
		o.QueueBound = 2
	}
	if o.DispatcherSlice <= 0 {
		if o.Quantum > 0 {
			o.DispatcherSlice = o.Quantum
		} else {
			o.DispatcherSlice = 100 * time.Microsecond
		}
	}
	if o.SubmitBuffer <= 0 {
		o.SubmitBuffer = 4096
	}
	if o.CoopTimeshare == 0 {
		if runtime.GOMAXPROCS(0) < o.Workers+2 {
			// Not enough CPUs to run the dispatcher, the workers, and
			// request code in parallel: timeshare cooperatively.
			o.CoopTimeshare = 64
		} else {
			o.CoopTimeshare = -1
		}
	}
	return o
}

// Response is the result of one request.
type Response struct {
	ID      uint64
	Payload any
	Err     error
	// Latency is the total time at the server (sojourn).
	Latency time.Duration
	// Preemptions counts how many times the request yielded.
	Preemptions int
	// OnDispatcher reports the request was executed by the
	// work-conserving dispatcher.
	OnDispatcher bool
}

// Stats are cumulative server counters, safe to read while serving.
type Stats struct {
	Submitted   uint64
	Completed   uint64
	Preemptions uint64
	Stolen      uint64 // completed by the dispatcher
}

// errServerStopped is returned for submissions after Stop.
var errServerStopped = errors.New("live: server stopped")

// cacheLinePad avoids false sharing between per-worker flags.
const cacheLinePad = 64

// executor is a CPU context a task can run on: a worker or the
// dispatcher in work-conserving mode.
type executor struct {
	id int // worker index, or -1 for the dispatcher
	// flag is the dedicated "cache line" the dispatcher writes to
	// request preemption and the task's Poll reads.
	flag atomic.Uint32
	_    [cacheLinePad - 4]byte
	// sliceStart/sliceLen drive time-based self-preemption when the
	// dispatcher runs tasks (there is nobody to write its flag, §3.3).
	sliceStart time.Time
	sliceLen   time.Duration
}

type parkEvent struct {
	done bool
	resp Response
}

// task is one in-flight request and its suspended continuation.
type task struct {
	id      uint64
	payload any
	arrival time.Time
	result  chan Response

	resume chan *executor
	parked chan parkEvent

	started      bool
	onDispatcher bool
	preempts     int
}

// runInfo is the per-worker "currently running" record the dispatcher
// reads to detect expired quanta.
type runInfo struct {
	epoch uint64
	start time.Time
}

// Server is a running Concord scheduling runtime.
type Server struct {
	opts    Options
	handler Handler

	submit  chan *task
	central []*task // dispatcher-owned FIFO
	locals  []chan *task
	occ     []atomic.Int32 // per-worker occupancy incl. in-service
	workers []*executor
	running []atomic.Pointer[runInfo]

	dispatcherEx *executor
	saved        *task

	nextID atomic.Uint64
	stats  struct {
		submitted   atomic.Uint64
		completed   atomic.Uint64
		preemptions atomic.Uint64
		stolen      atomic.Uint64
	}

	stopped atomic.Bool
	done    chan struct{} // dispatcher exited
	wg      sync.WaitGroup

	startOnce sync.Once
	stopOnce  sync.Once
}

// New builds a server; call Start before submitting.
func New(h Handler, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		handler: h,
		submit:  make(chan *task, opts.SubmitBuffer),
		locals:  make([]chan *task, opts.Workers),
		occ:     make([]atomic.Int32, opts.Workers),
		workers: make([]*executor, opts.Workers),
		running: make([]atomic.Pointer[runInfo], opts.Workers),
		done:    make(chan struct{}),
	}
	for i := range s.locals {
		s.locals[i] = make(chan *task, opts.QueueBound)
		s.workers[i] = &executor{id: i}
	}
	s.dispatcherEx = &executor{id: -1}
	return s
}

// Start launches the dispatcher and workers.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		s.handler.Setup()
		for i := 0; i < s.opts.Workers; i++ {
			s.wg.Add(1)
			go s.workerLoop(i)
		}
		go s.dispatcherLoop()
	})
}

// Stop drains in-flight requests and shuts the server down. Submissions
// racing with Stop may be rejected with an error response.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		s.stopped.Store(true)
		<-s.done
		for _, ch := range s.locals {
			close(ch)
		}
		s.wg.Wait()
	})
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		Submitted:   s.stats.submitted.Load(),
		Completed:   s.stats.completed.Load(),
		Preemptions: s.stats.preemptions.Load(),
		Stolen:      s.stats.stolen.Load(),
	}
}

// Submit enqueues a request and returns a channel that will receive its
// response. The channel has capacity 1; the caller need not read it
// immediately.
func (s *Server) Submit(payload any) <-chan Response {
	ch := make(chan Response, 1)
	if s.stopped.Load() {
		ch <- Response{Err: errServerStopped}
		return ch
	}
	t := &task{
		id:      s.nextID.Add(1),
		payload: payload,
		arrival: time.Now(),
		result:  ch,
		resume:  make(chan *executor),
		parked:  make(chan parkEvent),
	}
	s.stats.submitted.Add(1)
	s.submit <- t
	return ch
}

// Do submits a request and waits for its response.
func (s *Server) Do(payload any) Response {
	return <-s.Submit(payload)
}

// ---------- dispatcher ----------

func (s *Server) dispatcherLoop() {
	if s.opts.PinThreads {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	s.handler.SetupWorker(-1)
	lastFlagged := make([]uint64, s.opts.Workers)

	for {
		progress := false

		// 1. Ingest submissions (bounded batch per iteration, so
		// preemption signaling stays timely).
		for i := 0; i < 64; i++ {
			select {
			case t := <-s.submit:
				s.central = append(s.central, t)
				progress = true
				continue
			default:
			}
			break
		}

		// 2. Preemption signaling: write the flag of any worker whose
		// current request outlived the quantum.
		if q := s.opts.Quantum; q > 0 {
			now := time.Now()
			for w := range s.workers {
				info := s.running[w].Load()
				if info == nil || info.epoch == lastFlagged[w] {
					continue
				}
				if now.Sub(info.start) >= q {
					s.workers[w].flag.Store(1)
					lastFlagged[w] = info.epoch
					// If the worker switched tasks while we decided,
					// retract the stale signal.
					if cur := s.running[w].Load(); cur == nil || cur.epoch != info.epoch {
						s.workers[w].flag.Store(0)
					}
					progress = true
				}
			}
		}

		// 3. JBSQ push: move requests to the shortest non-full queue.
		for len(s.central) > 0 {
			w := s.shortestQueue()
			if w < 0 {
				break
			}
			t := s.central[0]
			s.central[0] = nil
			s.central = s.central[1:]
			s.occ[w].Add(1)
			s.locals[w] <- t
			progress = true
		}

		// 4. Work conservation.
		if s.opts.WorkConserving && !progress {
			if t := s.saved; t != nil {
				s.saved = nil
				s.runSlice(t) // re-sets saved if the task parks again
				progress = true
			} else if t := s.takeNonStarted(); t != nil {
				s.runSlice(t)
				progress = true
			}
		}

		if s.stopped.Load() && s.drained() {
			close(s.done)
			return
		}
		if !progress {
			runtime.Gosched()
		}
	}
}

func (s *Server) shortestQueue() int {
	best, bestOcc := -1, int32(s.opts.QueueBound)
	for w := range s.occ {
		if o := s.occ[w].Load(); o < bestOcc {
			best, bestOcc = w, o
		}
	}
	return best
}

// takeNonStarted pops the first never-started request from the central
// queue — the only kind the dispatcher may steal (§3.3) — but only when
// every worker queue is full.
func (s *Server) takeNonStarted() *task {
	for w := range s.occ {
		if s.occ[w].Load() < int32(s.opts.QueueBound) {
			return nil
		}
	}
	for i, t := range s.central {
		if !t.started {
			s.central = append(s.central[:i], s.central[i+1:]...)
			return t
		}
	}
	return nil
}

// runSlice executes one dispatcher slice of a stolen task.
func (s *Server) runSlice(t *task) {
	ex := s.dispatcherEx
	ex.sliceStart = time.Now()
	ex.sliceLen = s.opts.DispatcherSlice
	if !t.started {
		t.started = true
		t.onDispatcher = true
		s.startTask(t)
	}
	t.resume <- ex
	ev := <-t.parked
	if ev.done {
		ev.resp.OnDispatcher = true
		s.finish(t, ev.resp)
		s.stats.stolen.Add(1)
		return
	}
	t.preempts++
	s.stats.preemptions.Add(1)
	// Stolen requests cannot migrate: park in the dedicated buffer.
	s.saved = t
}

func (s *Server) drained() bool {
	if len(s.central) > 0 || s.saved != nil || len(s.submit) > 0 {
		return false
	}
	for w := range s.occ {
		if s.occ[w].Load() != 0 {
			return false
		}
	}
	return true
}

// ---------- workers ----------

func (s *Server) workerLoop(w int) {
	defer s.wg.Done()
	if s.opts.PinThreads {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	s.handler.SetupWorker(w)
	ex := s.workers[w]
	var epoch uint64
	for t := range s.locals[w] {
		epoch++
		s.running[w].Store(&runInfo{epoch: epoch, start: time.Now()})
		ex.flag.Store(0)
		if !t.started {
			t.started = true
			s.startTask(t)
		}
		t.resume <- ex
		ev := <-t.parked
		s.running[w].Store(nil)
		s.occ[w].Add(-1)
		if ev.done {
			s.finish(t, ev.resp)
			continue
		}
		t.preempts++
		s.stats.preemptions.Add(1)
		// Re-place the preempted request on the central queue.
		s.submit <- t
	}
}

// startTask launches the request's goroutine (its user-level context).
func (s *Server) startTask(t *task) {
	go func() {
		ex := <-t.resume
		ctx := &Ctx{task: t, ex: ex, yieldEvery: s.opts.CoopTimeshare}
		out, err := func() (out any, err error) {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("live: handler panicked: %v", r)
				}
			}()
			return s.handler.Handle(ctx, t.payload)
		}()
		t.parked <- parkEvent{done: true, resp: Response{
			ID:      t.id,
			Payload: out,
			Err:     err,
		}}
	}()
}

func (s *Server) finish(t *task, resp Response) {
	resp.Latency = time.Since(t.arrival)
	resp.Preemptions = t.preempts
	resp.OnDispatcher = resp.OnDispatcher || t.onDispatcher
	s.stats.completed.Add(1)
	t.result <- resp
}

// ---------- request context ----------

// Ctx is the per-request context handlers receive. It is only valid on
// the goroutine running the handler.
type Ctx struct {
	task       *task
	ex         *executor
	noPreempt  int
	yieldEvery int
	polls      int
	spinSink   uint64
}

// Worker returns the executor currently running the request: a worker
// index, or -1 on the dispatcher.
func (c *Ctx) Worker() int { return c.ex.id }

// Poll is the cooperative preemption probe — the call Concord's compiler
// pass inserts at function entries and loop back-edges. If the
// dispatcher has signaled preemption (or the dispatcher's self-check
// slice has expired) and no no-preempt section is open, the request
// yields: its goroutine parks and the worker picks up its next request.
func (c *Ctx) Poll() {
	if c.yieldEvery > 0 {
		// On CPU-constrained machines, hand the OS thread over so the
		// dispatcher can observe quanta and write flags. This does not
		// yield the request in the scheduling sense.
		if c.polls++; c.polls >= c.yieldEvery {
			c.polls = 0
			runtime.Gosched()
		}
	}
	if c.noPreempt != 0 {
		return
	}
	if c.ex.id >= 0 {
		if c.ex.flag.Load() == 0 {
			return
		}
		c.ex.flag.Store(0)
	} else {
		// Dispatcher slice: self-preempt on elapsed time (§3.3).
		if time.Since(c.ex.sliceStart) < c.ex.sliceLen {
			return
		}
	}
	c.task.parked <- parkEvent{done: false}
	c.ex = <-c.task.resume
}

// BeginNoPreempt opens a critical section during which Poll will not
// yield — the paper's lock counter (§3.1). Sections nest.
func (c *Ctx) BeginNoPreempt() { c.noPreempt++ }

// EndNoPreempt closes a critical section. It panics on underflow.
func (c *Ctx) EndNoPreempt() {
	if c.noPreempt == 0 {
		panic("live: EndNoPreempt without BeginNoPreempt")
	}
	c.noPreempt--
}

// Spin busily consumes CPU for roughly d, polling for preemption at a
// fine grain. It is the synthetic "spin for the requested service time"
// workload of §5.1.
func (c *Ctx) Spin(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		for i := 0; i < 64; i++ {
			c.spinSink++
		}
		c.Poll()
	}
}
