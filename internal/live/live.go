// Package live is a working Go implementation of the Concord runtime: a
// dispatcher thread plus pinned worker threads serving µs-to-ms-scale
// requests with
//
//   - cooperative preemption via per-worker padded atomic flags that
//     handler code polls (the paper's compiler-enforced cooperation,
//     §3.1 — in Go the "compiler pass" is either explicit ctx.Poll()
//     calls or source instrumentation via cmd/concordc),
//   - JBSQ(k) bounded per-worker queues fed push-style by the
//     dispatcher (§3.2), and
//   - a work-conserving dispatcher that runs requests itself, under
//     time-based self-preemption, when all worker queues are full
//     (§3.3); such requests never migrate to workers.
//
// Go cannot hold 2µs quanta (timer and scheduler jitter are comparable),
// so realistic quanta here are ≥ 50µs; the scheduling *structure* is
// exactly the paper's. Each request runs on its own goroutine that parks
// cooperatively, mirroring Shinjuku-style user-level contexts.
//
// # Layering
//
// The runtime is four layers, one file each, with the request flowing
// top to bottom:
//
//	ingest (ingest.go)      Submit: admission, backpressure, deadlines,
//	                        shard selection (round-robin with fallback)
//	policy (queue.go)       the central queue: an internal/policy
//	                        Queue[*task] — FCFS or SRPT via
//	                        Options.Policy — behind a small concurrency
//	                        adapter with a deadline heap
//	dispatch (dispatch.go)  per-shard dispatcher loops: JBSQ placement,
//	                        preemption signaling, work conservation,
//	                        cross-shard stealing
//	execution (exec.go)     worker loops, request goroutines, Ctx and
//	                        its Poll probe
//
// live.go holds the public surface (Options, Server lifecycle, Stats)
// and task.go the request object that flows through the layers.
//
// Dispatch generalizes the paper's single dispatcher to N shards
// (Options.Shards), RackSched-style: each shard owns a disjoint worker
// subset and its own policy queue, ingest round-robins across shards,
// and a shard whose queue is empty steals never-started requests from
// the longest sibling queue, so work conservation (§3.3) holds
// globally. Shards: 1 is the paper's architecture unchanged.
//
// # Lifecycle
//
// A Server moves through three states: serving, draining, stopped.
// Submit never blocks: it either accepts a request (exactly one
// Response is always delivered for an accepted request) or rejects it
// immediately with ErrServerStopped (after Stop has begun) or
// ErrQueueFull (submit buffers full — explicit backpressure instead of
// unbounded blocking). Stop drains every accepted request before
// returning; Options.DrainTimeout bounds the drain, after which queued
// and parked requests are completed with ErrServerStopped and running
// requests are aborted at their next Poll. Options.RequestTimeout gives
// every request a deadline; requests that expire while queued or parked
// are completed with ErrDeadlineExceeded.
package live

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"concord/internal/obs"
)

// Handler is the application callback interface, mirroring the paper's
// three-callback API (§4.1): setup(), setup_worker(core), and
// handle_request(req).
type Handler interface {
	// Setup initializes global application state before serving.
	Setup()
	// SetupWorker initializes per-worker state; negative workers are
	// dispatchers (they run application code too when work-conserving):
	// -1 for shard 0 — the only dispatcher at Shards 1 — and -(s+1) for
	// shard s.
	SetupWorker(worker int)
	// Handle processes one request. Long handlers must call ctx.Poll()
	// regularly (or be instrumented with cmd/concordc) so preemption
	// works; they may bracket lock-held regions with ctx.BeginNoPreempt /
	// ctx.EndNoPreempt.
	Handle(ctx *Ctx, payload any) (any, error)
}

// Central-queue disciplines for Options.Policy, resolved through
// policy.NewQueue. The cascade disciplines serve strict SLOClass tiers
// (critical before standard before sheddable) with the named base
// discipline ordering each tier internally.
const (
	PolicyFCFS        = "fcfs"
	PolicySRPT        = "srpt"
	PolicyCascade     = "cascade"      // class tiers, FCFS within a tier
	PolicyCascadeSRPT = "cascade-srpt" // class tiers, SRPT within a tier
)

// policyHinted reports whether the discipline consumes service hints
// (and therefore needs run-time tracking and hint capture).
func policyHinted(name string) bool {
	return name == PolicySRPT || name == PolicyCascadeSRPT
}

// policyClassed reports whether the discipline orders by SLOClass tier.
func policyClassed(name string) bool {
	return name == PolicyCascade || name == PolicyCascadeSRPT
}

// ValidPolicy reports whether name is a discipline SetPolicy accepts.
func ValidPolicy(name string) bool {
	switch name {
	case PolicyFCFS, PolicySRPT, PolicyCascade, PolicyCascadeSRPT:
		return true
	}
	return false
}

// Options configures a Server.
type Options struct {
	// Workers is the number of worker goroutines (each pinned to an OS
	// thread). Default 2.
	Workers int
	// Shards is the number of dispatcher shards. Each shard owns a
	// disjoint contiguous subset of the workers and runs its own
	// central queue and dispatcher loop; ingest round-robins across
	// shards and an idle shard steals never-started requests from the
	// longest sibling queue. Default 1 (the paper's single dispatcher);
	// values above Workers are clamped to Workers.
	Shards int
	// Policy selects the central-queue discipline: PolicyFCFS (default),
	// PolicySRPT, or the class-tiered PolicyCascade / PolicyCascadeSRPT
	// (strict SLOClass priority, the named discipline within each
	// tier). Under SRPT, payloads implementing Hinted are
	// ordered by estimated remaining service time (hint minus
	// accumulated service); payloads that have outrun their hint order
	// by elapsed overage after every in-budget request, and unhinted
	// payloads run last among queued peers, FIFO among themselves (the
	// runtime knows nothing about them, so it must not let them starve
	// genuinely short hinted work). The policy can be switched at
	// runtime with SetPolicy.
	Policy string
	// Quantum is the initial scheduling quantum; 0 disables preemption.
	// Adjustable at runtime with SetQuantum, and refined per scheduling
	// class with SetClassQuantum.
	Quantum time.Duration
	// Adaptive declares that a control plane may retune this server at
	// runtime (SetPolicy / SetQuantum / SetClassQuantum). It enables
	// service-hint capture and run-time tracking from the start, so a
	// later switch into SRPT orders requests submitted before the
	// switch too.
	Adaptive bool
	// ServiceObserver, when non-nil, receives every successfully
	// completed request's accumulated service time in nanoseconds — the
	// feed for an online service-time estimator (e.g. the adaptive
	// controller's CV estimate). It runs on the completing executor's
	// hot path and must not block. Enables run-time tracking.
	ServiceObserver func(serviceNS int64)
	// QueueBound is k in JBSQ(k), counting the in-service request.
	// Default 2. 1 degenerates to a synchronous single queue.
	QueueBound int
	// WorkConserving lets a shard's dispatcher run requests when every
	// one of its worker queues is full.
	WorkConserving bool
	// DispatcherSlice is how long a dispatcher works on a stolen
	// request before checking for dispatcher duties. Default: Quantum,
	// or 100µs if Quantum is 0.
	DispatcherSlice time.Duration
	// PinThreads locks workers and dispatchers to OS threads. Default
	// true; tests disable it to run many servers concurrently.
	PinThreads bool
	// CoopTimeshare makes request code call runtime.Gosched every N
	// polls so the dispatchers and workers make progress when there are
	// fewer CPUs than runtime threads (a dispatcher otherwise starves
	// and preemption flags are never written). 0 auto-detects from
	// GOMAXPROCS; negative disables.
	CoopTimeshare int
	// SubmitBuffer is the per-shard ingress channel capacity. Default
	// 4096. When every shard's buffer is full, Submit rejects with
	// ErrQueueFull rather than blocking.
	SubmitBuffer int
	// RequestTimeout bounds each request's total time at the server.
	// Requests that expire while queued or parked are completed with
	// ErrDeadlineExceeded; a request actively running handler code is
	// not interrupted (it is cooperative, like preemption). 0 disables.
	RequestTimeout time.Duration
	// DrainTimeout bounds Stop's graceful drain. When it expires,
	// queued and parked requests are completed with ErrServerStopped
	// and running requests are aborted at their next Poll. 0 waits for
	// every accepted request to finish.
	DrainTimeout time.Duration
	// Tracer, when non-nil, receives a lifecycle event at every request
	// state transition (submit, enqueue, dispatch, start, preempt
	// signal, yield, requeue, resume, completion) and enables per-request
	// latency Breakdown on every Response. It must be built with
	// obs.NewTracer (or obs.NewTracerSharded) for the same worker and
	// shard counts as this server. When nil, the cost at each
	// instrumentation point is a single predictable branch.
	Tracer *obs.Tracer
	// Tail, when non-nil, receives every delivered response's latency
	// and success at completion, feeding rolling-window tail quantiles
	// and SLO burn-rate accounting. Independent of Tracer.
	Tail *obs.TailTracker
	// Sketches, when non-nil, receives every successfully completed
	// request's (class, measured service ns, hint ns) — the per-class
	// service-time quantile sketches plus hint-error attribution that
	// the adaptive controller's class-quantum derivation and the
	// concord_svc_time_us / concord_hint_error metric families read.
	// Enables run-time tracking, hint capture, and class capture.
	Sketches *obs.ClassSketches
	// Capture, when non-nil, samples successfully completed requests
	// (arrival offset, class, hint, measured service time, achieved
	// latency, deadline) into a replayable window for counterfactual
	// shadow replay (internal/shadow). Enables run-time tracking, hint
	// capture, and class capture.
	Capture *CaptureRing
	// ClassAdmission enables per-SLOClass admission control on the
	// ingress buffers: a slice of every shard's SubmitBuffer is held in
	// reserve for ClassCritical, ClassSheddable is shed (ErrShed) at a
	// lower watermark than standard's ErrQueueFull point, and standard
	// is rejected before the critical reserve is touched. Enables class
	// capture. Off, every class sees the uniform ErrQueueFull contract.
	ClassAdmission bool
	// ClassTails, when non-nil, receives every delivered response's
	// latency and success keyed by SLOClass — one TailTracker/SLOTracker
	// per class, the per-tenant counterpart of Tail. Rejections
	// (ErrShed, ErrQueueFull, ErrServerStopped) count against the
	// rejected class's SLO. Enables class capture.
	ClassTails *obs.ClassTails
	//
	// Tail, ServiceObserver, Sketches, Capture, and ClassTails are
	// composed into one multiplexed completion observer at New, so the
	// completion path pays a single branch whether zero or all of them
	// are set.
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Shards > o.Workers {
		o.Shards = o.Workers
	}
	if o.Policy == "" {
		o.Policy = PolicyFCFS
	}
	if o.QueueBound <= 0 {
		o.QueueBound = 2
	}
	if o.DispatcherSlice <= 0 {
		if o.Quantum > 0 {
			o.DispatcherSlice = o.Quantum
		} else {
			o.DispatcherSlice = 100 * time.Microsecond
		}
	}
	if o.SubmitBuffer <= 0 {
		o.SubmitBuffer = 4096
	}
	if o.CoopTimeshare == 0 {
		if runtime.GOMAXPROCS(0) < o.Workers+o.Shards+1 {
			// Not enough CPUs to run the dispatchers, the workers, and
			// request code in parallel: timeshare cooperatively.
			o.CoopTimeshare = 64
		} else {
			o.CoopTimeshare = -1
		}
	}
	return o
}

// Response is the result of one request.
type Response struct {
	ID      uint64
	Payload any
	Err     error
	// Req echoes the submitted payload, letting a single shared
	// SubmitFunc callback correlate completions without a per-request
	// closure or channel. Always set, on rejections too.
	Req any
	// Latency is the total time at the server (sojourn).
	Latency time.Duration
	// Done is when the response was finalized (the terminal lifecycle
	// event). Connection layers use it to attribute egress time
	// (completion → bytes flushed to the socket). Always set.
	Done time.Time
	// Preemptions counts how many times the request yielded.
	Preemptions int
	// OnDispatcher reports the request was executed by a
	// work-conserving dispatcher.
	OnDispatcher bool
	// Breakdown attributes Latency to lifecycle components. It is
	// non-nil only when the server runs with Options.Tracer set.
	Breakdown *Breakdown
}

// Breakdown decomposes one request's sojourn into the paper's Table-1
// components. Handoff + Queue + Service + Preempted == Latency by
// construction (Preempted absorbs the remainder: requeue gaps plus
// scheduling jitter between timestamps). Ingress sits in front of that
// identity: it precedes the submit that Latency is measured from.
type Breakdown struct {
	// Ingress is wire read → submit: the network frontend's decode and
	// pipelined submit-path time. Zero unless the payload implements
	// NetTimed and the server runs with a Tracer.
	Ingress time.Duration
	// Handoff is submit → dispatcher ingest (notification cost).
	Handoff time.Duration
	// Queue is ingest → first time on a CPU (central + JBSQ queueing).
	Queue time.Duration
	// Service is time actually executing handler code.
	Service time.Duration
	// Preempted is time parked between a yield and the next resume.
	Preempted time.Duration
}

// Admission watermarks, as fractions of the per-shard SubmitBuffer.
// Only consulted when Options.ClassAdmission is on.
const (
	// criticalReserveFrac of each ingress buffer is reserved for
	// ClassCritical: standard and sheddable are rejected once occupancy
	// crosses 1−criticalReserveFrac, while critical admits to the brim.
	criticalReserveFrac = 8 // reserve = SubmitBuffer / 8 (12.5%)
	// shedFrac is ClassSheddable's watermark within the non-reserved
	// region: sheddable is shed once occupancy crosses 3/4 of the
	// standard limit, well before standard feels backpressure.
	shedNum, shedDen = 3, 4
)

// Stats are cumulative server counters, safe to read while serving.
// Completed counts delivered responses, including error responses for
// expired or aborted requests, so Submitted == Completed after Stop.
type Stats struct {
	Submitted   uint64
	Completed   uint64
	Rejected    uint64 // never accepted: queue full, shed, or server stopped
	Shed        uint64 // subset of Rejected: sheddable dropped by admission (ErrShed)
	Expired     uint64 // completed with ErrDeadlineExceeded
	Aborted     uint64 // completed with ErrServerStopped by drain abort
	Preemptions uint64
	// DispatcherRun counts requests completed by a work-conserving
	// dispatcher — from its own shard's queue or a sibling's. (It was
	// once named Stolen, which wrongly suggested cross-shard migration;
	// Steals is the true migration counter.)
	DispatcherRun uint64
	Steals        uint64 // never-started requests migrated between shards
	// ClassSubmitted / ClassCompleted / ClassRejected break the
	// top-line counters down by SLOClass (accepted, delivered, never
	// accepted). Indexed by SLOClass.
	ClassSubmitted [NumClasses]uint64
	ClassCompleted [NumClasses]uint64
	ClassRejected  [NumClasses]uint64
}

// Sentinel errors. Compare with errors.Is.
var (
	// ErrServerStopped is returned for submissions after Stop has begun
	// and for accepted requests abandoned when DrainTimeout expires.
	ErrServerStopped = errors.New("live: server stopped")
	// ErrQueueFull is returned when the submit buffer is full (for
	// ClassStandard under admission control: when occupancy has crossed
	// into the critical reserve).
	ErrQueueFull = errors.New("live: submit queue full")
	// ErrShed is returned for ClassSheddable requests dropped by
	// admission control under pressure — the load was shed by policy,
	// before the buffers were exhausted, so retrying immediately is
	// counterproductive; ErrQueueFull means the server is truly out of
	// room even for protected traffic.
	ErrShed = errors.New("live: sheddable request shed under load")
	// ErrDeadlineExceeded is returned when a request's RequestTimeout
	// expires before it completes.
	ErrDeadlineExceeded = errors.New("live: request deadline exceeded")
)

// cacheLinePad avoids false sharing between per-worker flags.
const cacheLinePad = 64

// Test-only scheduling gates. When non-nil they run at historically
// racy hand-off points, widening windows that are a few instructions
// wide (and unobservable on single-CPU machines) so the lifecycle
// regression tests can exercise them deterministically.
var (
	testSubmitGate  func() // between Submit's stop check and its enqueue
	testRequeueGate func() // between a preemption park and its re-submit
	testStealGate   func() // between a steal's pop and its local dispatch
)

// Server is a running Concord scheduling runtime.
type Server struct {
	opts    Options
	handler Handler

	shards  []*shard
	locals  []chan *task
	occ     []atomic.Int32 // per-worker occupancy incl. in-service
	workers []*executor
	running []atomic.Pointer[runInfo]
	shardOf []int // worker index → owning shard

	// tr is Options.Tracer, kept as a concrete pointer so the disabled
	// path is one nil-check branch per event site. comp is the composed
	// completion observer (Tail + ServiceObserver + Sketches + Capture +
	// ClassTails) under the same contract: one nil check per completion.
	// tail and ctails are kept separately for the rejection paths, which
	// bypass finish.
	tr     *obs.Tracer
	tail   *obs.TailTracker
	ctails *obs.ClassTails
	comp   *compObserver

	// classLimit is the per-class ingress occupancy watermark (per
	// shard): a class is rejected once len(shard.submit) reaches its
	// limit. With ClassAdmission off every entry equals SubmitBuffer, so
	// the check degenerates to the channel's own capacity.
	classLimit [NumClasses]int

	// trackRun enables per-task service-time accumulation: needed for
	// Breakdown (tracer set), for SRPT's remaining-work keys, and for
	// ServiceObserver. Atomic because SetPolicy(srpt) enables it at
	// runtime; once on it stays on.
	trackRun atomic.Bool
	// hinted enables the Hinted type assertion on Submit; SRPT (current
	// or reachable via SetPolicy on an Adaptive server) consumes
	// service hints. Like trackRun, it only ever turns on.
	hinted atomic.Bool

	// quantum is the live preemption quantum in nanoseconds,
	// runtime-adjustable via SetQuantum; 0 disables preemption.
	quantum atomic.Int64
	// classQuanta overrides quantum per SLOClass; 0 falls back to the
	// global quantum. Consulted at preemption-signal time in the
	// dispatch layer.
	classQuanta [NumClasses]atomic.Int64
	// classed is set once anything consumes classes (a class quantum, a
	// cascade policy, admission control, class tails, or an estimator
	// sink); until then Submit skips the SLOClassed type assertion
	// entirely.
	classed atomic.Bool
	// polState is the target policy and its change epoch; each shard's
	// dispatcher swaps its queue at a quiesce point when the epoch
	// moves past the one it last applied. policyMu serializes writers.
	polState atomic.Pointer[policyState]
	policyMu sync.Mutex

	rr     atomic.Uint64 // round-robin ingest cursor (multi-shard only)
	nextID atomic.Uint64
	stats  struct {
		submitted      atomic.Uint64
		completed      atomic.Uint64
		rejected       atomic.Uint64
		shed           atomic.Uint64
		expired        atomic.Uint64
		aborted        atomic.Uint64
		preemptions    atomic.Uint64
		dispatcherRun  atomic.Uint64
		steals         atomic.Uint64
		classSubmitted [NumClasses]atomic.Uint64
		classCompleted [NumClasses]atomic.Uint64
		classRejected  [NumClasses]atomic.Uint64
	}

	// submitMu orders Submit against Stop: Submit holds the read lock
	// across the stopping check and the enqueue, so once Stop has taken
	// the write lock and set stopping, no further task can enter any
	// submit buffer and every later Submit deterministically returns
	// ErrServerStopped.
	submitMu sync.RWMutex
	stopping bool // guarded by submitMu

	started atomic.Bool
	stopped atomic.Bool // dispatcher-visible mirror of stopping
	abort   atomic.Bool // drain deadline expired: fail pending work
	wg      sync.WaitGroup

	startOnce sync.Once
	stopOnce  sync.Once
}

// New builds a server; call Start before submitting. It panics when
// Options.Policy is unknown or Options.Tracer was built for a different
// worker or shard count.
func New(h Handler, opts Options) *Server {
	opts = opts.withDefaults()
	if opts.Tracer != nil &&
		(opts.Tracer.Workers() != opts.Workers || opts.Tracer.Shards() != opts.Shards) {
		panic(fmt.Sprintf("live: tracer built for %d workers / %d shards, server has %d / %d",
			opts.Tracer.Workers(), opts.Tracer.Shards(), opts.Workers, opts.Shards))
	}
	s := &Server{
		opts:    opts,
		tr:      opts.Tracer,
		tail:    opts.Tail,
		ctails:  opts.ClassTails,
		comp:    newCompObserver(opts),
		handler: h,
		locals:  make([]chan *task, opts.Workers),
		occ:     make([]atomic.Int32, opts.Workers),
		workers: make([]*executor, opts.Workers),
		running: make([]atomic.Pointer[runInfo], opts.Workers),
		shardOf: make([]int, opts.Workers),
	}
	// The estimator sinks need measured service times, submitted hints
	// (for hint-error attribution and replay), and scheduling classes.
	estimating := opts.Sketches != nil || opts.Capture != nil
	s.trackRun.Store(opts.Tracer != nil || policyHinted(opts.Policy) ||
		opts.Adaptive || opts.ServiceObserver != nil || estimating)
	s.hinted.Store(policyHinted(opts.Policy) || opts.Adaptive || estimating)
	if estimating || opts.ClassAdmission || opts.ClassTails != nil || policyClassed(opts.Policy) {
		s.classed.Store(true)
	}
	// Per-class admission watermarks (ingress occupancy at which the
	// class is rejected). Critical admits to the brim; standard stops at
	// the critical reserve; sheddable sheds at 3/4 of standard's limit.
	b := opts.SubmitBuffer
	for c := range s.classLimit {
		s.classLimit[c] = b
	}
	if opts.ClassAdmission {
		reserve := b / criticalReserveFrac
		if reserve < 1 {
			reserve = 1
		}
		std := b - reserve
		if std < 1 {
			std = 1
		}
		shed := std * shedNum / shedDen
		if shed < 1 {
			shed = 1
		}
		s.classLimit[ClassStandard] = std
		s.classLimit[ClassSheddable] = shed
	}
	s.quantum.Store(int64(opts.Quantum))
	s.polState.Store(&policyState{name: opts.Policy})
	for i := range s.locals {
		s.locals[i] = make(chan *task, opts.QueueBound)
		s.workers[i] = &executor{id: i, writer: i}
	}
	for sid := 0; sid < opts.Shards; sid++ {
		q, err := newCentralQueue(opts.Policy)
		if err != nil {
			panic("live: " + err.Error())
		}
		sh := &shard{
			id:     sid,
			writer: obs.DispatcherWriter(sid),
			q:      q,
			submit: make(chan *task, opts.SubmitBuffer),
			ex:     &executor{id: -(sid + 1), writer: obs.DispatcherWriter(sid)},
			done:   make(chan struct{}),
		}
		// Contiguous worker partition: shard i owns [i·W/S, (i+1)·W/S).
		lo, hi := sid*opts.Workers/opts.Shards, (sid+1)*opts.Workers/opts.Shards
		for w := lo; w < hi; w++ {
			sh.workers = append(sh.workers, w)
			s.shardOf[w] = sid
		}
		sh.lastFlagged = make([]uint64, len(sh.workers))
		s.shards = append(s.shards, sh)
	}
	return s
}

// Start launches the dispatchers and workers.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		s.started.Store(true)
		s.handler.Setup()
		for i := 0; i < s.opts.Workers; i++ {
			s.wg.Add(1)
			go s.workerLoop(i)
		}
		for _, sh := range s.shards {
			go s.dispatcherLoop(sh)
		}
	})
}

// Stop drains the server and shuts it down. Every request accepted
// before Stop gets exactly one response: with no DrainTimeout, Stop
// waits for all of them to complete; with one, requests still queued or
// parked when it expires are completed with ErrServerStopped and
// running requests are aborted at their next Poll. Submissions after
// Stop begins are rejected with ErrServerStopped. Stop is idempotent.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		s.submitMu.Lock()
		s.stopping = true
		s.submitMu.Unlock()
		s.stopped.Store(true)
		if !s.started.Load() {
			return // never started: nothing to drain
		}
		allDone := make(chan struct{})
		go func() {
			for _, sh := range s.shards {
				<-sh.done
			}
			close(allDone)
		}()
		if d := s.opts.DrainTimeout; d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-allDone:
				timer.Stop()
			case <-timer.C:
				s.abort.Store(true)
				<-allDone
			}
		} else {
			<-allDone
		}
		for _, ch := range s.locals {
			close(ch)
		}
		s.wg.Wait()
	})
}

// Depths is a point-in-time queue-occupancy snapshot: momentary
// overload that lifetime counters cannot show.
type Depths struct {
	// Submit is the total ingress buffer occupancy across shards
	// (accepted, not yet ingested by a dispatcher).
	Submit int
	// Central is the total central-queue length across shards.
	Central int
	// ShardQueues is the per-shard central-queue length.
	ShardQueues []int
	// ShardOcc is the per-shard sum of its workers' JBSQ occupancy.
	ShardOcc []int
	// Workers is per-worker JBSQ occupancy including the in-service
	// request.
	Workers []int
}

// Depths returns a live queue-depth snapshot. Safe to call while
// serving.
func (s *Server) Depths() Depths {
	d := Depths{
		Workers:     make([]int, len(s.occ)),
		ShardQueues: make([]int, len(s.shards)),
		ShardOcc:    make([]int, len(s.shards)),
	}
	for _, sh := range s.shards {
		d.Submit += len(sh.submit)
		q := sh.q.Len()
		d.ShardQueues[sh.id] = q
		d.Central += q
	}
	for w := range s.occ {
		o := int(s.occ[w].Load())
		d.Workers[w] = o
		d.ShardOcc[s.shardOf[w]] += o
	}
	return d
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Submitted:     s.stats.submitted.Load(),
		Completed:     s.stats.completed.Load(),
		Rejected:      s.stats.rejected.Load(),
		Shed:          s.stats.shed.Load(),
		Expired:       s.stats.expired.Load(),
		Aborted:       s.stats.aborted.Load(),
		Preemptions:   s.stats.preemptions.Load(),
		DispatcherRun: s.stats.dispatcherRun.Load(),
		Steals:        s.stats.steals.Load(),
	}
	for c := 0; c < NumClasses; c++ {
		st.ClassSubmitted[c] = s.stats.classSubmitted[c].Load()
		st.ClassCompleted[c] = s.stats.classCompleted[c].Load()
		st.ClassRejected[c] = s.stats.classRejected[c].Load()
	}
	return st
}

// Shards returns the configured dispatcher-shard count.
func (s *Server) Shards() int { return len(s.shards) }

// ---------- runtime actuators (the adaptive control plane's surface) ----------

// policyState is the target discipline and a monotonically increasing
// change epoch; dispatchers compare the epoch to the one they last
// applied and drain-and-swap their queue when it moves.
type policyState struct {
	epoch uint64
	name  string
}

// SetQuantum adjusts the preemption quantum at runtime; 0 disables
// preemption, negative values are clamped to 0. Dispatchers observe the
// new value on their next signaling pass. Safe to call while serving.
func (s *Server) SetQuantum(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.quantum.Store(int64(d))
}

// Quantum returns the current preemption quantum.
func (s *Server) Quantum() time.Duration { return time.Duration(s.quantum.Load()) }

// SetClassQuantum overrides the quantum for one SLOClass (payloads
// implementing SLOClassed, or class-stamped wire requests); 0 removes
// the override, falling back to the global quantum. Out-of-range
// classes are ignored. The table is consulted at preemption-signal
// time, so a change takes effect for requests already running.
func (s *Server) SetClassQuantum(class int, d time.Duration) {
	if class < 0 || class >= NumClasses {
		return
	}
	if d < 0 {
		d = 0
	}
	s.classQuanta[class].Store(int64(d))
	if d > 0 {
		s.classed.Store(true)
	}
}

// ClassQuantum returns the class's quantum override (0 = none).
func (s *Server) ClassQuantum(class int) time.Duration {
	if class < 0 || class >= NumClasses {
		return 0
	}
	return time.Duration(s.classQuanta[class].Load())
}

// SetPolicy switches the central-queue discipline at runtime: each
// shard's dispatcher drains its policy queue into a fresh one of the
// new discipline at a quiesce point (between dispatch decisions, under
// the queue lock), so queued requests are re-ordered rather than lost.
// Switching to SRPT enables service-hint capture and run-time tracking
// for subsequently submitted requests; on a server built without
// Options.Adaptive, requests submitted before the switch carry no hint
// and therefore run last, FIFO, under the new discipline. Safe to call
// while serving; returns an error for unknown names.
func (s *Server) SetPolicy(name string) error {
	if !ValidPolicy(name) {
		return fmt.Errorf("live: unknown policy %q (have %s, %s, %s, %s)",
			name, PolicyFCFS, PolicySRPT, PolicyCascade, PolicyCascadeSRPT)
	}
	s.policyMu.Lock()
	defer s.policyMu.Unlock()
	cur := s.polState.Load()
	if cur.name == name {
		return nil
	}
	if policyHinted(name) {
		// Order matters: hint capture must be live before any dispatcher
		// applies the SRPT queue, or a racing Submit could enqueue a
		// hinted payload without its key.
		s.trackRun.Store(true)
		s.hinted.Store(true)
	}
	if policyClassed(name) {
		// Same ordering argument for the class byte the cascade tiers on.
		s.classed.Store(true)
	}
	s.polState.Store(&policyState{epoch: cur.epoch + 1, name: name})
	return nil
}

// Policy returns the target central-queue discipline (the last accepted
// SetPolicy value, applied by each dispatcher at its next quiesce
// point).
func (s *Server) Policy() string { return s.polState.Load().name }

// Do submits a request and waits for its response.
func (s *Server) Do(payload any) Response {
	return <-s.Submit(payload)
}
