package live

import (
	"testing"
	"time"

	"concord/internal/obs"
)

// BenchmarkRoundTrip measures the runtime's per-request overhead: a
// no-work handler through submit, dispatch, JBSQ push, execution, and
// response delivery.
func BenchmarkRoundTrip(b *testing.B) {
	s := New(&spinHandler{}, testOptions(2, 0))
	s.Start()
	defer s.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := s.Do(time.Duration(0)); resp.Err != nil {
			b.Fatal(resp.Err)
		}
	}
}

// BenchmarkRoundTripTraced is BenchmarkRoundTrip with the obs tracer
// enabled: the delta is the full per-request cost of lifecycle tracing
// (ring records plus breakdown timestamps).
func BenchmarkRoundTripTraced(b *testing.B) {
	s := New(&spinHandler{}, tracedOptions(2, 0, 1<<14))
	s.Start()
	defer s.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := s.Do(time.Duration(0)); resp.Err != nil {
			b.Fatal(resp.Err)
		}
	}
}

// BenchmarkRoundTripTailTracked is BenchmarkRoundTrip with the rolling
// tail window and SLO accounting enabled: the delta is the enabled cost
// of windowed tail tracking per request (one mutexed histogram insert
// plus one SLO count).
func BenchmarkRoundTripTailTracked(b *testing.B) {
	o := testOptions(2, 0)
	o.Tail = obs.NewTailTracker(nil, obs.NewSLOTracker(obs.SLOConfig{Target: 200 * time.Microsecond}))
	s := New(&spinHandler{}, o)
	s.Start()
	defer s.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := s.Do(time.Duration(0)); resp.Err != nil {
			b.Fatal(resp.Err)
		}
	}
}

// BenchmarkPreemptedRequest measures a 500µs request under a 100µs
// quantum: the full yield/requeue/redispatch cycle several times over.
func BenchmarkPreemptedRequest(b *testing.B) {
	s := New(&spinHandler{}, testOptions(1, 100*time.Microsecond))
	s.Start()
	defer s.Stop()
	b.ResetTimer()
	preempts := 0
	for i := 0; i < b.N; i++ {
		resp := s.Do(500 * time.Microsecond)
		if resp.Err != nil {
			b.Fatal(resp.Err)
		}
		preempts += resp.Preemptions
	}
	b.ReportMetric(float64(preempts)/float64(b.N), "preempts/req")
}

// BenchmarkPollHot measures the probe cost on the fast path (no flag
// set): this is the c_proc the instrumentation adds per poll.
func BenchmarkPollHot(b *testing.B) {
	ex := &executor{id: 0}
	c := &Ctx{task: &task{}, ex: ex, yieldEvery: -1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Poll()
	}
}
