// The request object that flows through the layers: ingest creates a
// task, the policy queue orders it, dispatch places it, execution runs
// it. Also the Hinted contract that feeds SRPT its service estimates.
package live

import (
	"time"

	"concord/internal/sim"
)

// Hinted is implemented by payloads that can estimate their own service
// time. Under Options.Policy PolicySRPT the estimate orders the central
// queue by remaining work (hint minus accumulated service); FCFS
// ignores it. Hints are advisory: a wrong hint reorders the queue but
// never affects correctness.
type Hinted interface {
	ServiceHint() time.Duration
}

type parkEvent struct {
	done bool
	resp Response
}

// task is one in-flight request and its suspended continuation.
type task struct {
	id       uint64
	payload  any
	arrival  time.Time
	deadline time.Time // zero = none
	// Exactly one of result / done carries the response: result for
	// Submit (channel, capacity 1), done for SubmitFunc (callback).
	result chan Response
	done   func(Response)

	resume chan *executor
	parked chan parkEvent

	// abortErr, when set before a resume, makes the request unwind with
	// this error at the resume point instead of continuing. Written
	// before the resume send, read after the resume receive.
	abortErr error

	started      bool
	onDispatcher bool
	preempts     int

	// hintNS is the payload's service-time estimate (0 when absent or
	// the policy is hint-blind); with runNS it yields the SRPT key.
	hintNS int64

	// Centralqueue bookkeeping, guarded by the owning centralQueue's
	// mutex (see queue.go).
	inQueue bool
	dead    bool
	inDL    bool

	// Observability timestamps, written only when the server tracks
	// service time (tracer set or SRPT policy). All writes happen on
	// the goroutine that owns the task at that moment; the channel
	// hand-offs order them.
	enqueueTS  time.Time // first dispatcher ingest
	firstRunTS time.Time // first CPU hand-off
	runStart   time.Time // current running interval's start
	runNS      int64     // accumulated running time
}

// deliver hands the task's single response to its owner: the callback
// for SubmitFunc tasks, the capacity-1 channel for Submit tasks.
func (t *task) deliver(resp Response) {
	if t.done != nil {
		t.done(resp)
		return
	}
	t.result <- resp
}

func (t *task) expired(now time.Time) bool {
	return !t.deadline.IsZero() && now.After(t.deadline)
}

// RemainingCycles keys the central queue under SRPT: the service-time
// hint minus accumulated service, clamped at zero (cycles are
// nanoseconds here; only the ordering matters). The policy queue calls
// it during Push, when the pushing goroutine owns the task.
func (t *task) RemainingCycles() sim.Cycles {
	rem := t.hintNS - t.runNS
	if rem < 0 {
		rem = 0
	}
	return sim.Cycles(rem)
}

// taskAbort is the panic payload used to unwind an aborted request's
// handler; startTask's recover converts it to a Response error.
type taskAbort struct{ err error }

// runInfo is the per-worker "currently running" record a dispatcher
// reads to detect expired quanta.
type runInfo struct {
	epoch uint64
	id    uint64 // request id, for preempt-signal attribution
	start time.Time
}

// breakdown attributes the sojourn to components from the task's
// observability timestamps. Preempted absorbs the remainder, so the
// four components always sum exactly to total.
func (t *task) breakdown(end time.Time, total time.Duration) *Breakdown {
	b := &Breakdown{}
	if !t.enqueueTS.IsZero() {
		b.Handoff = t.enqueueTS.Sub(t.arrival)
		if !t.firstRunTS.IsZero() {
			b.Queue = t.firstRunTS.Sub(t.enqueueTS)
		} else {
			// Never ran: died queued (expired or aborted).
			b.Queue = end.Sub(t.enqueueTS)
		}
	}
	b.Service = time.Duration(t.runNS)
	if rest := total - b.Handoff - b.Queue - b.Service; rest > 0 {
		b.Preempted = rest
	}
	return b
}
