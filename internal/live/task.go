// The request object that flows through the layers: ingest creates a
// task, the policy queue orders it, dispatch places it, execution runs
// it. Also the Hinted contract that feeds SRPT its service estimates.
package live

import (
	"sync"
	"time"

	"concord/internal/sim"
)

// Hinted is implemented by payloads that can estimate their own service
// time. Under Options.Policy PolicySRPT the estimate orders the central
// queue by remaining work (hint minus accumulated service); FCFS
// ignores it. Hints are advisory: a wrong hint reorders the queue but
// never affects correctness. A request that outruns its hint orders by
// elapsed overage behind every in-budget request, and unhinted payloads
// run last among queued peers (FIFO among themselves) — see
// task.RemainingCycles for the key contract.
type Hinted interface {
	ServiceHint() time.Duration
}

// SLOClass is a request's service class: the first-class multi-tenancy
// abstraction carried end-to-end from the wire frame through admission,
// queueing, dispatch, and per-class observability. Three classes cover
// the tenancy contract:
//
//   - ClassStandard (the zero value) is every request that doesn't
//     declare a class — v1 wire frames, classless payloads, existing
//     callers. Baseline admission and the middle priority tier.
//   - ClassCritical is protected traffic: a slice of every ingress
//     buffer is reserved for it, it occupies the top priority tier
//     under the cascade discipline, and the dispatcher tightens other
//     classes' quanta while critical work is queued.
//   - ClassSheddable is best-effort traffic: it is dropped first under
//     pressure (ErrShed, before standard feels any backpressure) and
//     occupies the bottom priority tier.
type SLOClass uint8

const (
	ClassStandard  SLOClass = 0
	ClassCritical  SLOClass = 1
	ClassSheddable SLOClass = 2
	// NumClasses bounds the class-indexed tables (quanta, admission
	// limits, stats, tails); SLOClass values at or above it are treated
	// as ClassStandard.
	NumClasses = 3
)

// Tier maps the class onto its strict-priority cascade tier: lower is
// served first (policy.Cascade's contract). The numbering is distinct
// from the class constants on purpose — the zero class (standard) is
// the *middle* tier, matching policy.DefaultTier for untiered items.
func (c SLOClass) Tier() int {
	switch c {
	case ClassCritical:
		return 0
	case ClassSheddable:
		return 2
	default:
		return 1
	}
}

// String returns the class's canonical lowercase name, used as the wire
// text token, the STATS/metrics label, and the -class flag value.
func (c SLOClass) String() string {
	switch c {
	case ClassCritical:
		return "critical"
	case ClassSheddable:
		return "sheddable"
	default:
		return "standard"
	}
}

// DefaultObjective is the class's default latency objective, used when
// a per-class SLO target isn't configured explicitly: critical answers
// interactively, standard is the general-purpose budget, sheddable only
// promises eventual service.
func (c SLOClass) DefaultObjective() time.Duration {
	switch c {
	case ClassCritical:
		return 1 * time.Millisecond
	case ClassSheddable:
		return 100 * time.Millisecond
	default:
		return 10 * time.Millisecond
	}
}

// ParseSLOClass resolves a class name (as produced by String); ok is
// false for unknown names.
func ParseSLOClass(name string) (SLOClass, bool) {
	switch name {
	case "standard", "":
		return ClassStandard, true
	case "critical":
		return ClassCritical, true
	case "sheddable":
		return ClassSheddable, true
	}
	return ClassStandard, false
}

// SLOClassed is implemented by payloads that declare a service class.
// The class drives admission (reserved critical capacity, sheddable
// shedding), the cascade queue's priority tier, per-class preemption
// quanta, and per-class tail accounting. Payloads that don't implement
// it are ClassStandard.
type SLOClassed interface {
	SLOClass() SLOClass
}

// NetTimed is implemented by payloads that crossed a network frontend
// before Submit. When the server runs with a Tracer, Submit records the
// wire timestamps retroactively as EvFrameRead/EvParsed events (writer
// obs.WriterNet) and the response Breakdown gains the Ingress
// component. Zero times mean the frontend did not stamp the request
// (tracing off at the connection layer); the assertion is skipped
// entirely on untraced servers.
type NetTimed interface {
	NetTimes() (read, parsed time.Time)
}

type parkEvent struct {
	done bool
	resp Response
}

// task is one in-flight request and its suspended continuation.
type task struct {
	id       uint64
	payload  any
	arrival  time.Time
	deadline time.Time // zero = none
	// Exactly one of result / done carries the response: result for
	// Submit (channel, capacity 1), done for SubmitFunc (callback).
	result chan Response
	done   func(Response)

	resume chan *executor
	parked chan parkEvent

	// abortErr, when set before a resume, makes the request unwind with
	// this error at the resume point instead of continuing. Written
	// before the resume send, read after the resume receive.
	abortErr error

	started      bool
	onDispatcher bool
	preempts     int

	// hintNS is the payload's service-time estimate (0 when absent or
	// the policy is hint-blind); with runNS it yields the SRPT key.
	hintNS int64
	// class is the payload's SLOClass (admission, cascade tier,
	// per-class quanta, per-class tails); ClassStandard when the payload
	// is not SLOClassed or class handling is off.
	class uint8

	// Centralqueue bookkeeping, guarded by the owning centralQueue's
	// mutex (see queue.go).
	inQueue bool
	dead    bool
	inDL    bool

	// Observability timestamps, written only when the server tracks
	// service time (tracer set or SRPT policy). All writes happen on
	// the goroutine that owns the task at that moment; the channel
	// hand-offs order them.
	enqueueTS  time.Time // first dispatcher ingest
	firstRunTS time.Time // first CPU hand-off
	runStart   time.Time // current running interval's start
	runNS      int64     // accumulated running time
	readTS     time.Time // wire read (NetTimed payloads on traced servers)

	// ctx is the request's Ctx, embedded so startTask doesn't allocate
	// one per request. Only the handler goroutine touches it, between
	// the first resume and the final parked send.
	ctx Ctx
}

// taskPool recycles tasks and their resume/parked handshake channels —
// the remaining fixed allocations on the per-request path. A task is
// returned to the pool at finish only when it provably has no aliases:
// deadline-free tasks never enter the deadline heap and are never
// tombstoned in a policy queue, so at delivery time nothing else holds
// a pointer to them. Tasks with a deadline are left to the GC (their
// heap entry may outlive delivery as a lazily-dropped tombstone).
var taskPool = sync.Pool{New: func() any {
	return &task{
		resume: make(chan *executor),
		parked: make(chan parkEvent),
	}
}}

// newTask returns a zeroed task with live handshake channels.
func newTask() *task {
	return taskPool.Get().(*task)
}

// release recycles the task when no queue structure can still alias it;
// see taskPool. The handshake channels are empty by construction: both
// are unbuffered, and the final parked send has completed before finish
// runs.
func (t *task) release() {
	if !t.deadline.IsZero() {
		return
	}
	*t = task{resume: t.resume, parked: t.parked}
	taskPool.Put(t)
}

// Tier places the task in the cascade queue's strict-priority order
// (policy.Tiered).
func (t *task) Tier() int { return SLOClass(t.class).Tier() }

// deliver hands the task's single response to its owner: the callback
// for SubmitFunc tasks, the capacity-1 channel for Submit tasks.
func (t *task) deliver(resp Response) {
	if t.done != nil {
		t.done(resp)
		return
	}
	t.result <- resp
}

func (t *task) expired(now time.Time) bool {
	return !t.deadline.IsZero() && now.After(t.deadline)
}

// SRPT key bands. Keys live in three disjoint ranges so the queue can
// never invert priorities across kinds:
//
//   - in-budget hinted requests key by remaining work, [0, hint];
//   - requests that have outrun their hint key by elapsed overage in a
//     band above any realistic remaining hint — the estimate is spent,
//     and under the inspection-paradox logic of scheduling with
//     estimated sizes, the longer a request has overrun the longer it
//     is likely to keep running, so larger overage sorts later;
//   - unhinted requests take the max-key sentinel: the runtime knows
//     nothing about them, so they run last among queued peers, FIFO
//     among themselves (the SRPT heap's seq tie-break).
//
// The old behavior clamped hint−run at zero, which sorted unhinted and
// over-budget requests to the *head* of the heap: a long request that
// exhausted its estimate became and stayed top priority, starving
// genuinely short requests — the classic underestimated-size pathology.
const (
	// overBudgetKeyBase opens the over-budget band: above any credible
	// remaining hint (2^60 ns ≈ 36 years), below the unhinted sentinel.
	overBudgetKeyBase = int64(1) << 60
	// unhintedKey is the max-key sentinel for hintless requests.
	unhintedKey = int64(^uint64(0) >> 1) // math.MaxInt64
)

// RemainingCycles keys the central queue under SRPT (cycles are
// nanoseconds here; only the ordering matters). The policy queue calls
// it during Push, when the pushing goroutine owns the task. See the key
// bands above for the contract.
func (t *task) RemainingCycles() sim.Cycles {
	if t.hintNS <= 0 {
		return sim.Cycles(unhintedKey)
	}
	rem := t.hintNS - t.runNS
	if rem < 0 {
		over := -rem
		if over >= unhintedKey-overBudgetKeyBase {
			over = unhintedKey - overBudgetKeyBase - 1 // stay below the sentinel
		}
		return sim.Cycles(overBudgetKeyBase + over)
	}
	return sim.Cycles(rem)
}

// taskAbort is the panic payload used to unwind an aborted request's
// handler; startTask's recover converts it to a Response error.
type taskAbort struct{ err error }

// runInfo is the per-worker "currently running" record a dispatcher
// reads to detect expired quanta.
type runInfo struct {
	epoch uint64
	id    uint64 // request id, for preempt-signal attribution
	start time.Time
	// class selects the effective quantum at signal time when per-class
	// quanta are configured.
	class uint8
}

// breakdown attributes the sojourn to components from the task's
// observability timestamps. Preempted absorbs the remainder, so the
// four components always sum exactly to total.
func (t *task) breakdown(end time.Time, total time.Duration) *Breakdown {
	b := &Breakdown{}
	if !t.readTS.IsZero() {
		if ing := t.arrival.Sub(t.readTS); ing > 0 {
			b.Ingress = ing
		}
	}
	if !t.enqueueTS.IsZero() {
		b.Handoff = t.enqueueTS.Sub(t.arrival)
		if !t.firstRunTS.IsZero() {
			b.Queue = t.firstRunTS.Sub(t.enqueueTS)
		} else {
			// Never ran: died queued (expired or aborted).
			b.Queue = end.Sub(t.enqueueTS)
		}
	}
	b.Service = time.Duration(t.runNS)
	if rest := total - b.Handoff - b.Queue - b.Service; rest > 0 {
		b.Preempted = rest
	}
	return b
}
