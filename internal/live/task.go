// The request object that flows through the layers: ingest creates a
// task, the policy queue orders it, dispatch places it, execution runs
// it. Also the Hinted contract that feeds SRPT its service estimates.
package live

import (
	"time"

	"concord/internal/sim"
)

// Hinted is implemented by payloads that can estimate their own service
// time. Under Options.Policy PolicySRPT the estimate orders the central
// queue by remaining work (hint minus accumulated service); FCFS
// ignores it. Hints are advisory: a wrong hint reorders the queue but
// never affects correctness. A request that outruns its hint orders by
// elapsed overage behind every in-budget request, and unhinted payloads
// run last among queued peers (FIFO among themselves) — see
// task.RemainingCycles for the key contract.
type Hinted interface {
	ServiceHint() time.Duration
}

// Scheduling classes for per-class preemption quanta
// (Server.SetClassQuantum). ClassDefault is every payload that doesn't
// implement Classed; ClassShort is point work that wants a tight
// quantum; ClassLong is scan-like work that can afford a loose one.
const (
	ClassDefault = 0
	ClassShort   = 1
	ClassLong    = 2
	// NumClasses bounds the class→quantum table; SchedClass values at
	// or above it are treated as ClassDefault.
	NumClasses = 4
)

// Classed is implemented by payloads that belong to a scheduling class.
// The class selects a per-class preemption quantum when one is set via
// Server.SetClassQuantum; otherwise it has no effect.
type Classed interface {
	SchedClass() int
}

// NetTimed is implemented by payloads that crossed a network frontend
// before Submit. When the server runs with a Tracer, Submit records the
// wire timestamps retroactively as EvFrameRead/EvParsed events (writer
// obs.WriterNet) and the response Breakdown gains the Ingress
// component. Zero times mean the frontend did not stamp the request
// (tracing off at the connection layer); the assertion is skipped
// entirely on untraced servers.
type NetTimed interface {
	NetTimes() (read, parsed time.Time)
}

type parkEvent struct {
	done bool
	resp Response
}

// task is one in-flight request and its suspended continuation.
type task struct {
	id       uint64
	payload  any
	arrival  time.Time
	deadline time.Time // zero = none
	// Exactly one of result / done carries the response: result for
	// Submit (channel, capacity 1), done for SubmitFunc (callback).
	result chan Response
	done   func(Response)

	resume chan *executor
	parked chan parkEvent

	// abortErr, when set before a resume, makes the request unwind with
	// this error at the resume point instead of continuing. Written
	// before the resume send, read after the resume receive.
	abortErr error

	started      bool
	onDispatcher bool
	preempts     int

	// hintNS is the payload's service-time estimate (0 when absent or
	// the policy is hint-blind); with runNS it yields the SRPT key.
	hintNS int64
	// class is the payload's scheduling class (per-class quanta);
	// ClassDefault when the payload is not Classed or classes are off.
	class uint8

	// Centralqueue bookkeeping, guarded by the owning centralQueue's
	// mutex (see queue.go).
	inQueue bool
	dead    bool
	inDL    bool

	// Observability timestamps, written only when the server tracks
	// service time (tracer set or SRPT policy). All writes happen on
	// the goroutine that owns the task at that moment; the channel
	// hand-offs order them.
	enqueueTS  time.Time // first dispatcher ingest
	firstRunTS time.Time // first CPU hand-off
	runStart   time.Time // current running interval's start
	runNS      int64     // accumulated running time
	readTS     time.Time // wire read (NetTimed payloads on traced servers)
}

// deliver hands the task's single response to its owner: the callback
// for SubmitFunc tasks, the capacity-1 channel for Submit tasks.
func (t *task) deliver(resp Response) {
	if t.done != nil {
		t.done(resp)
		return
	}
	t.result <- resp
}

func (t *task) expired(now time.Time) bool {
	return !t.deadline.IsZero() && now.After(t.deadline)
}

// SRPT key bands. Keys live in three disjoint ranges so the queue can
// never invert priorities across kinds:
//
//   - in-budget hinted requests key by remaining work, [0, hint];
//   - requests that have outrun their hint key by elapsed overage in a
//     band above any realistic remaining hint — the estimate is spent,
//     and under the inspection-paradox logic of scheduling with
//     estimated sizes, the longer a request has overrun the longer it
//     is likely to keep running, so larger overage sorts later;
//   - unhinted requests take the max-key sentinel: the runtime knows
//     nothing about them, so they run last among queued peers, FIFO
//     among themselves (the SRPT heap's seq tie-break).
//
// The old behavior clamped hint−run at zero, which sorted unhinted and
// over-budget requests to the *head* of the heap: a long request that
// exhausted its estimate became and stayed top priority, starving
// genuinely short requests — the classic underestimated-size pathology.
const (
	// overBudgetKeyBase opens the over-budget band: above any credible
	// remaining hint (2^60 ns ≈ 36 years), below the unhinted sentinel.
	overBudgetKeyBase = int64(1) << 60
	// unhintedKey is the max-key sentinel for hintless requests.
	unhintedKey = int64(^uint64(0) >> 1) // math.MaxInt64
)

// RemainingCycles keys the central queue under SRPT (cycles are
// nanoseconds here; only the ordering matters). The policy queue calls
// it during Push, when the pushing goroutine owns the task. See the key
// bands above for the contract.
func (t *task) RemainingCycles() sim.Cycles {
	if t.hintNS <= 0 {
		return sim.Cycles(unhintedKey)
	}
	rem := t.hintNS - t.runNS
	if rem < 0 {
		over := -rem
		if over >= unhintedKey-overBudgetKeyBase {
			over = unhintedKey - overBudgetKeyBase - 1 // stay below the sentinel
		}
		return sim.Cycles(overBudgetKeyBase + over)
	}
	return sim.Cycles(rem)
}

// taskAbort is the panic payload used to unwind an aborted request's
// handler; startTask's recover converts it to a Response error.
type taskAbort struct{ err error }

// runInfo is the per-worker "currently running" record a dispatcher
// reads to detect expired quanta.
type runInfo struct {
	epoch uint64
	id    uint64 // request id, for preempt-signal attribution
	start time.Time
	// class selects the effective quantum at signal time when per-class
	// quanta are configured.
	class uint8
}

// breakdown attributes the sojourn to components from the task's
// observability timestamps. Preempted absorbs the remainder, so the
// four components always sum exactly to total.
func (t *task) breakdown(end time.Time, total time.Duration) *Breakdown {
	b := &Breakdown{}
	if !t.readTS.IsZero() {
		if ing := t.arrival.Sub(t.readTS); ing > 0 {
			b.Ingress = ing
		}
	}
	if !t.enqueueTS.IsZero() {
		b.Handoff = t.enqueueTS.Sub(t.arrival)
		if !t.firstRunTS.IsZero() {
			b.Queue = t.firstRunTS.Sub(t.enqueueTS)
		} else {
			// Never ran: died queued (expired or aborted).
			b.Queue = end.Sub(t.enqueueTS)
		}
	}
	b.Service = time.Duration(t.runNS)
	if rest := total - b.Handoff - b.Queue - b.Service; rest > 0 {
		b.Preempted = rest
	}
	return b
}
