package live

// Capture-ring and composed-observer coverage: sampling arithmetic,
// ring wrap/drain semantics, end-to-end sketch+capture feeding from a
// live server, and the interleaved A/B overhead gate the observability
// tentpole is budgeted against (≤2% on the completion path when every
// sink is disabled).

import (
	"math"
	"testing"
	"time"

	"concord/internal/obs"
)

// captureTask fabricates a completed task for direct offer() calls.
func captureTask(arrival time.Time, class uint8, hintNS, runNS int64) (*task, *Response) {
	t := &task{arrival: arrival, class: class, hintNS: hintNS, runNS: runNS, started: true}
	return t, &Response{Latency: time.Duration(runNS) * 3}
}

func TestCaptureRingSamplingRate(t *testing.T) {
	r := NewCaptureRing(64, 4)
	base := time.Now()
	for i := 0; i < 100; i++ {
		tk, resp := captureTask(base.Add(time.Duration(i)*time.Microsecond), 0, 0, 1000)
		r.offer(tk, resp)
	}
	offered, captured := r.Stats()
	if offered != 100 {
		t.Fatalf("offered = %d, want 100", offered)
	}
	if captured != 25 {
		t.Fatalf("captured = %d at rate 4, want 25", captured)
	}
	w := r.TakeWindow()
	if len(w.Recs) != 25 || w.Offered != 100 {
		t.Fatalf("window: %d recs / %d offered, want 25 / 100", len(w.Recs), w.Offered)
	}
}

func TestCaptureRingWrapKeepsNewestSorted(t *testing.T) {
	r := NewCaptureRing(8, 1)
	base := time.Now()
	for i := 0; i < 12; i++ {
		tk, resp := captureTask(base.Add(time.Duration(i)*time.Millisecond), 0, 0, int64(i+1))
		r.offer(tk, resp)
	}
	w := r.TakeWindow()
	if len(w.Recs) != 8 {
		t.Fatalf("wrapped ring drained %d recs, want capacity 8", len(w.Recs))
	}
	// The 8 survivors must be the newest (ServiceNS 5..12) in arrival order.
	for i, rec := range w.Recs {
		if want := int64(i + 5); rec.ServiceNS != want {
			t.Fatalf("rec %d: ServiceNS %d, want %d (oldest overwritten, rest arrival-sorted)",
				i, rec.ServiceNS, want)
		}
		if i > 0 && rec.ArrivalNS < w.Recs[i-1].ArrivalNS {
			t.Fatalf("rec %d out of arrival order", i)
		}
	}
	// Drain resets the window: a fresh record lands alone with its
	// offset keyed to the new epoch.
	if w2 := r.TakeWindow(); len(w2.Recs) != 0 || w2.Offered != 0 {
		t.Fatalf("second drain not empty: %d recs / %d offered", len(w2.Recs), w2.Offered)
	}
	tk, resp := captureTask(time.Now(), uint8(ClassSheddable), 2000, 1500)
	r.offer(tk, resp)
	w3 := r.TakeWindow()
	if len(w3.Recs) != 1 || w3.Offered != 1 {
		t.Fatalf("post-reset window: %d recs / %d offered, want 1 / 1", len(w3.Recs), w3.Offered)
	}
	rec := w3.Recs[0]
	if rec.Class != uint8(ClassSheddable) || rec.HintNS != 2000 || rec.ServiceNS != 1500 || rec.LatencyNS != 4500 {
		t.Fatalf("record fields dropped: %+v", rec)
	}
}

// obsSpin is a payload exercising every observer input at once: it
// spins for d under an SLO class with a service hint.
type obsSpin struct {
	d     time.Duration
	class SLOClass
	hint  time.Duration
}

func (p obsSpin) SLOClass() SLOClass         { return p.class }
func (p obsSpin) ServiceHint() time.Duration { return p.hint }

type obsSpinHandler struct{}

func (obsSpinHandler) Setup()          {}
func (obsSpinHandler) SetupWorker(int) {}
func (obsSpinHandler) Handle(ctx *Ctx, payload any) (any, error) {
	ctx.Spin(payload.(obsSpin).d)
	return nil, nil
}

// TestSketchesAndCaptureFedFromCompletions: a server built with
// Sketches+Capture (and nothing else observer-shaped) must classify,
// hint-track, and measure every completion — the options alone flip the
// classed/hinted/trackRun switches.
func TestSketchesAndCaptureFedFromCompletions(t *testing.T) {
	sk := obs.NewClassSketches(NumClasses)
	ring := NewCaptureRing(256, 1)
	o := testOptions(2, 0)
	o.Sketches = sk
	o.Capture = ring
	s := New(obsSpinHandler{}, o)
	s.Start()

	const perClass = 20
	var chans []<-chan Response
	for i := 0; i < perClass; i++ {
		chans = append(chans, s.Submit(obsSpin{d: 20 * time.Microsecond, class: ClassCritical, hint: 20 * time.Microsecond}))
		chans = append(chans, s.Submit(obsSpin{d: 200 * time.Microsecond, class: ClassSheddable, hint: 100 * time.Microsecond}))
	}
	for _, ch := range chans {
		if resp := <-ch; resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	s.Stop()

	for _, class := range []int{int(ClassCritical), int(ClassSheddable)} {
		snap := sk.Service(class).Snapshot()
		if snap.Count != perClass {
			t.Fatalf("class %d sketch count %d, want %d", class, snap.Count, perClass)
		}
		if q := sk.ServiceQuantileNS(class, 0.5); q <= 0 {
			t.Fatalf("class %d p50 = %v, want > 0", class, q)
		}
	}
	// Long requests spin 10× the short ones; the sketches must order
	// their medians accordingly (generous 2× margin for timer jitter).
	if short, long := sk.ServiceQuantileNS(int(ClassCritical), 0.5), sk.ServiceQuantileNS(int(ClassSheddable), 0.5); long < 2*short {
		t.Fatalf("median service: short %.0fns long %.0fns — classes not separated", short, long)
	}
	if n := sk.Service(int(ClassStandard)).Snapshot().Count; n != 0 {
		t.Fatalf("standard class saw %d completions, want 0", n)
	}

	w := ring.TakeWindow()
	if len(w.Recs) != 2*perClass {
		t.Fatalf("capture window %d recs, want %d", len(w.Recs), 2*perClass)
	}
	for i, rec := range w.Recs {
		if rec.ServiceNS <= 0 || rec.LatencyNS < rec.ServiceNS || rec.HintNS <= 0 {
			t.Fatalf("rec %d incomplete: %+v", i, rec)
		}
		if rec.Class != uint8(ClassCritical) && rec.Class != uint8(ClassSheddable) {
			t.Fatalf("rec %d class %d, want critical/sheddable", i, rec.Class)
		}
	}
}

// TestObserverDisabledOverhead: the composed-observer refactor's budget
// — a server with no sinks configured must complete requests within 2%
// of … itself. Interleaved A/B batches against a fully-instrumented
// server; the gate passes when the instrumented mean is within 2% of
// the bare mean OR within 3 standard errors (self-calibrating on noisy
// CI machines — the point is catching gross regressions like an
// accidental always-taken lock, not benchmarking).
func TestObserverDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate; skipped in -short")
	}
	newServer := func(instrument bool) *Server {
		o := testOptions(2, 0)
		if instrument {
			o.Sketches = obs.NewClassSketches(NumClasses)
			o.Capture = NewCaptureRing(4096, 16)
		}
		s := New(obsSpinHandler{}, o)
		s.Start()
		return s
	}
	bare, full := newServer(false), newServer(true)
	defer bare.Stop()
	defer full.Stop()

	const batches, perBatch = 12, 200
	runBatch := func(s *Server) float64 {
		start := time.Now()
		for i := 0; i < perBatch; i++ {
			if resp := s.Do(obsSpin{d: 10 * time.Microsecond, class: ClassCritical, hint: 10 * time.Microsecond}); resp.Err != nil {
				t.Fatal(resp.Err)
			}
		}
		return time.Since(start).Seconds()
	}
	runBatch(bare) // warm both paths before measuring
	runBatch(full)

	var bareS, fullS []float64
	for i := 0; i < batches; i++ { // interleave to share thermal/GC drift
		bareS = append(bareS, runBatch(bare))
		fullS = append(fullS, runBatch(full))
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	stderr := func(xs []float64, m float64) float64 {
		var ss float64
		for _, x := range xs {
			ss += (x - m) * (x - m)
		}
		return math.Sqrt(ss/float64(len(xs)-1)) / math.Sqrt(float64(len(xs)))
	}
	bm, fm := mean(bareS), mean(fullS)
	noise := 3 * math.Hypot(stderr(bareS, bm), stderr(fullS, fm))
	ratio := fm / bm
	t.Logf("bare %.4fms full %.4fms ratio %.4f noise ±%.4fms", bm*1e3, fm*1e3, ratio, noise*1e3)
	if ratio > 1.02 && fm-bm > noise {
		t.Fatalf("instrumented server %.2f%% slower (%.4fms vs %.4fms, noise ±%.4fms) — over the 2%% observer budget",
			(ratio-1)*100, fm*1e3, bm*1e3, noise*1e3)
	}
}
