package live

// Fault-injection harness for the live runtime: randomly panicking
// handlers, handlers that never Poll, slow clients that delay reading
// responses, clients that batch-submit without reading, and Stop racing
// mid-request — all under one invariant, checked per submission and in
// aggregate: every Submit channel delivers exactly one response, and
// after Stop, Submitted == Completed (no accepted request is ever
// dropped). Run with -race; see `make race`.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// chaosReq drives one misbehaving (or well-behaved) request. The zero
// class is standard, so the pre-existing suites run classless.
type chaosReq struct {
	kind  string // "quick", "spin", "nopoll", "panic"
	d     time.Duration
	class SLOClass
}

func (r chaosReq) SLOClass() SLOClass { return r.class }

type chaosHandler struct{}

func (chaosHandler) Setup()          {}
func (chaosHandler) SetupWorker(int) {}
func (chaosHandler) Handle(ctx *Ctx, payload any) (any, error) {
	req := payload.(chaosReq)
	switch req.kind {
	case "panic":
		panic("chaos: handler panic")
	case "nopoll":
		// Burn CPU without ever polling: preemption signals and drain
		// aborts must tolerate a handler that ignores them.
		sink := 0
		until := time.Now().Add(req.d)
		for time.Now().Before(until) {
			sink++
		}
		return sink, nil
	case "spin":
		ctx.Spin(req.d)
		return "spun", nil
	default:
		return "ok", nil
	}
}

func randomChaosReq(rng *rand.Rand) chaosReq {
	switch v := rng.Float64(); {
	case v < 0.05:
		return chaosReq{kind: "panic"}
	case v < 0.20:
		return chaosReq{kind: "nopoll", d: time.Duration(10+rng.Intn(40)) * time.Microsecond}
	case v < 0.50:
		return chaosReq{kind: "spin", d: time.Duration(50+rng.Intn(250)) * time.Microsecond}
	default:
		return chaosReq{kind: "quick"}
	}
}

// receiveExactlyOne asserts the submission channel yields one response
// and no second one.
func receiveExactlyOne(t *testing.T, ch <-chan Response) bool {
	t.Helper()
	select {
	case <-ch:
		select {
		case <-ch:
			t.Error("chaos: second response on one submission")
			return false
		default:
		}
		return true
	case <-time.After(15 * time.Second):
		t.Error("chaos: submission never answered")
		return false
	}
}

func TestChaosLifecycle(t *testing.T) {
	configs := []struct {
		name string
		opts Options
	}{
		{"k1-steal", Options{Workers: 1, Quantum: 100 * time.Microsecond, QueueBound: 1,
			WorkConserving: true, DrainTimeout: 500 * time.Millisecond, PinThreads: false}},
		{"w4", Options{Workers: 4, Quantum: 100 * time.Microsecond, QueueBound: 2,
			DrainTimeout: 500 * time.Millisecond, PinThreads: false}},
		{"no-preempt", Options{Workers: 2, Quantum: 0,
			DrainTimeout: 500 * time.Millisecond, PinThreads: false}},
		{"tiny-buffer", Options{Workers: 2, Quantum: 50 * time.Microsecond, SubmitBuffer: 4,
			DrainTimeout: 500 * time.Millisecond, PinThreads: false}},
	}

	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			s := New(chaosHandler{}, cfg.opts)
			s.Start()

			const clients, perClient = 8, 40
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(c)*7919 + 1))
					if c%3 == 0 {
						// Abusive client: batch-submit everything, then
						// read late — responses must not be lost while
						// nobody is listening (result channels buffer).
						var chans []<-chan Response
						for i := 0; i < perClient; i++ {
							chans = append(chans, s.Submit(randomChaosReq(rng)))
						}
						time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
						for _, ch := range chans {
							if !receiveExactlyOne(t, ch) {
								return
							}
						}
						return
					}
					// Closed-loop client with random think/read delays.
					for i := 0; i < perClient; i++ {
						ch := s.Submit(randomChaosReq(rng))
						if rng.Intn(4) == 0 {
							time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
						}
						if !receiveExactlyOne(t, ch) {
							return
						}
					}
				}(c)
			}

			// Stop mid-flight: some submissions are in queues, some are
			// running, some haven't been made yet (those get rejected).
			time.Sleep(2 * time.Millisecond)
			stopDone := make(chan struct{})
			go func() { s.Stop(); close(stopDone) }()
			wg.Wait()
			select {
			case <-stopDone:
			case <-time.After(15 * time.Second):
				t.Fatal("chaos: Stop hung")
			}

			st := s.Stats()
			if st.Submitted != st.Completed {
				t.Fatalf("chaos: submitted %d != completed %d (accepted request dropped); stats %+v",
					st.Submitted, st.Completed, st)
			}
		})
	}
}

// TestChaosSheddingOverloadStop: overload with per-class admission
// actively shedding, then Stop mid-load — the exactly-one-response
// invariant must survive the three-way race between class admission
// (ErrShed), backpressure (ErrQueueFull), and the stop gate
// (ErrServerStopped), across shard counts like the lifecycle suites.
// ErrShed must only ever land on sheddable submissions.
func TestChaosSheddingOverloadStop(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			s := New(chaosHandler{}, Options{
				Workers: 4, Shards: shards,
				Quantum: 100 * time.Microsecond,
				Policy:  PolicyCascade,
				// A tiny buffer keeps the sheddable watermark in easy
				// reach, so admission sheds from the first burst.
				SubmitBuffer:   8,
				ClassAdmission: true,
				DrainTimeout:   500 * time.Millisecond,
				PinThreads:     false,
			})
			s.Start()

			const clients, perClient = 8, 60
			var wg sync.WaitGroup
			var shedWrongClass sync.Map
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(c)*104729 + 3))
					check := func(req chaosReq, ch <-chan Response) bool {
						select {
						case resp := <-ch:
							if resp.Err == ErrShed && req.class != ClassSheddable {
								shedWrongClass.Store(req.class, true)
							}
							select {
							case <-ch:
								t.Error("chaos: second response on one submission")
								return false
							default:
							}
							return true
						case <-time.After(15 * time.Second):
							t.Error("chaos: submission never answered")
							return false
						}
					}
					classed := func() chaosReq {
						req := randomChaosReq(rng)
						switch v := rng.Float64(); {
						case v < 0.2:
							req.class = ClassCritical
						case v < 0.5:
							req.class = ClassStandard
						default:
							req.class = ClassSheddable
						}
						return req
					}
					if c%2 == 0 {
						// Flooder: batch-submit the lot to overrun the
						// tiny buffers, read late.
						reqs := make([]chaosReq, perClient)
						chans := make([]<-chan Response, perClient)
						for i := range reqs {
							reqs[i] = classed()
							chans[i] = s.Submit(reqs[i])
						}
						time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
						for i := range reqs {
							if !check(reqs[i], chans[i]) {
								return
							}
						}
						return
					}
					for i := 0; i < perClient; i++ {
						req := classed()
						if !check(req, s.Submit(req)) {
							return
						}
					}
				}(c)
			}

			time.Sleep(2 * time.Millisecond)
			stopDone := make(chan struct{})
			go func() { s.Stop(); close(stopDone) }()
			wg.Wait()
			select {
			case <-stopDone:
			case <-time.After(15 * time.Second):
				t.Fatal("chaos: Stop hung during active shedding")
			}

			shedWrongClass.Range(func(k, _ any) bool {
				t.Errorf("chaos: ErrShed delivered to %v submission", k)
				return true
			})
			st := s.Stats()
			if st.Submitted != st.Completed {
				t.Fatalf("chaos: submitted %d != completed %d (accepted request dropped); stats %+v",
					st.Submitted, st.Completed, st)
			}
			if st.Shed == 0 {
				t.Error("chaos: flooded a tiny buffer with sheddable-heavy load and nothing was shed — admission inert")
			}
		})
	}
}

// TestChaosRepeatedStopIdempotent: concurrent and repeated Stops are
// safe and all return.
func TestChaosRepeatedStopIdempotent(t *testing.T) {
	s := New(chaosHandler{}, Options{Workers: 2, Quantum: 100 * time.Microsecond, PinThreads: false})
	s.Start()
	for i := 0; i < 20; i++ {
		s.Submit(chaosReq{kind: "spin", d: 100 * time.Microsecond})
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Stop()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("concurrent Stops hung")
	}
}
