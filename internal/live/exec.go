// Execution layer: worker loops, the per-request goroutine, completion
// delivery, and the Ctx cooperative-preemption surface handlers program
// against. Nothing here knows about queue disciplines or shard counts —
// a worker's only scheduling relationship is with its owning shard's
// dispatcher (via locals[w] in, shard.submit out).
package live

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"concord/internal/obs"
)

// executor is a CPU context a task can run on: a worker or a shard's
// dispatcher in work-conserving mode.
type executor struct {
	id int // worker index, or -(shard+1) for a dispatcher
	// writer is the obs ring this executor records to: equal to id for
	// workers, obs.DispatcherWriter(shard) for dispatchers (distinct
	// from id so shard 1's dispatcher never collides with the client
	// ring).
	writer int
	// flag is the dedicated "cache line" the dispatcher writes to
	// request preemption and the task's Poll reads. It holds the epoch
	// being preempted (never 0): a request yields only when the flag
	// matches its own epoch, so a signal aimed at one request can never
	// hit its successor and no retraction handshake is needed.
	flag atomic.Uint64
	_    [cacheLinePad - 8]byte
	// epoch is the worker's current scheduling epoch. Written by the
	// worker loop between requests, read by the request goroutine; the
	// resume/parked channel handshake orders the accesses.
	epoch uint64
	// sliceStart/sliceLen drive time-based self-preemption when a
	// dispatcher runs tasks (there is nobody to write its flag, §3.3).
	sliceStart time.Time
	sliceLen   time.Duration
}

func (s *Server) workerLoop(w int) {
	defer s.wg.Done()
	if s.opts.PinThreads {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	s.handler.SetupWorker(w)
	ex := s.workers[w]
	var epoch uint64
	for t := range s.locals[w] {
		if s.abort.Load() {
			s.failTask(t, ErrServerStopped, ex)
			s.stats.aborted.Add(1)
			s.occ[w].Add(-1)
			continue
		}
		// Deadline check at local dequeue: a request whose deadline
		// passed while it sat in this worker's JBSQ queue (behind a slow
		// request) must answer ErrDeadlineExceeded, not run to a
		// too-late success. The central-queue sweep cannot see it here —
		// this is the only enforcement point once a task is dispatched.
		if !t.deadline.IsZero() && t.expired(time.Now()) {
			s.stats.expired.Add(1)
			s.failTask(t, ErrDeadlineExceeded, ex)
			s.occ[w].Add(-1)
			continue
		}
		epoch++ // epochs start at 1; flag value 0 means "no signal"
		ex.epoch = epoch
		now := time.Now()
		s.running[w].Store(&runInfo{epoch: epoch, id: t.id, start: now, class: t.class})
		first := !t.started
		if !t.started {
			t.started = true
			s.startTask(t)
		}
		if s.tr != nil {
			if t.firstRunTS.IsZero() {
				t.firstRunTS = now
			}
			kind := obs.EvResume
			if first {
				kind = obs.EvStart
			}
			s.tr.Record(w, kind, t.id, int64(epoch))
		}
		// One capture per slice: trackRun can flip on mid-slice
		// (SetPolicy srpt) and must not charge against a zero runStart.
		track := s.trackRun.Load()
		if track {
			t.runStart = now
		}
		t.resume <- ex
		ev := <-t.parked
		s.running[w].Store(nil)
		if track {
			t.runNS += int64(time.Since(t.runStart))
		}
		if ev.done {
			s.finish(w, t, ev.resp)
			s.occ[w].Add(-1)
			continue
		}
		t.preempts++
		s.stats.preemptions.Add(1)
		if s.tr != nil {
			s.tr.Record(w, obs.EvYield, t.id, 0)
		}
		if s.abort.Load() {
			s.failTask(t, ErrServerStopped, ex)
			s.stats.aborted.Add(1)
			s.occ[w].Add(-1)
			continue
		}
		// Re-place the preempted request on the owning shard's ingress.
		// occ is held across the hand-off so drained() can never observe
		// an idle shard while the task is between queues — releasing occ
		// first opened a window where the dispatcher shut down and the
		// task was lost (and this send blocked forever). Started tasks
		// keep the affinity of the shard that ran them: they re-enter
		// through its submit buffer, never through ingest round-robin.
		if testRequeueGate != nil {
			testRequeueGate()
		}
		if s.tr != nil {
			s.tr.Record(w, obs.EvRequeue, t.id, 0)
		}
		s.shards[s.shardOf[w]].submit <- t
		s.occ[w].Add(-1)
	}
}

// startTask launches the request's goroutine (its user-level context).
func (s *Server) startTask(t *task) {
	go func() {
		ex := <-t.resume
		if err := t.abortErr; err != nil {
			t.parked <- parkEvent{done: true, resp: Response{ID: t.id, Err: err}}
			return
		}
		// The Ctx lives inside the task (one fewer allocation per
		// request); the pool reset zeroes it with the rest of the task.
		ctx := &t.ctx
		*ctx = Ctx{task: t, ex: ex, yieldEvery: s.opts.CoopTimeshare}
		out, err := func() (out any, err error) {
			defer func() {
				if r := recover(); r != nil {
					if ab, ok := r.(taskAbort); ok {
						err = ab.err
					} else {
						err = fmt.Errorf("live: handler panicked: %v", r)
					}
				}
			}()
			return s.handler.Handle(ctx, t.payload)
		}()
		t.parked <- parkEvent{done: true, resp: Response{
			ID:      t.id,
			Payload: out,
			Err:     err,
		}}
	}()
}

// failTask completes a request with err: directly when it never
// started, through the abort handshake (so handler defers run) when it
// did.
func (s *Server) failTask(t *task, err error, ex *executor) {
	if !t.started {
		s.finish(ex.writer, t, Response{ID: t.id, Err: err})
		return
	}
	t.abortErr = err
	t.resume <- ex
	ev := <-t.parked
	s.finish(ex.writer, t, ev.resp)
}

// finish delivers a request's single response; writer identifies the
// executor completing it (a worker index or a dispatcher writer id) for
// event attribution. After delivery the task is recycled when nothing
// can still alias it (see task.release).
func (s *Server) finish(writer int, t *task, resp Response) {
	resp.Preemptions = t.preempts
	resp.OnDispatcher = resp.OnDispatcher || t.onDispatcher
	resp.Req = t.payload
	end := time.Now()
	resp.Done = end
	resp.Latency = end.Sub(t.arrival)
	if s.tr != nil {
		resp.Breakdown = t.breakdown(end, resp.Latency)
		kind, status := completionEvent(resp.Err)
		s.tr.Record(writer, kind, t.id, status)
	}
	if s.comp != nil {
		s.comp.observe(t, &resp)
	}
	s.stats.completed.Add(1)
	s.stats.classCompleted[t.class].Add(1)
	t.deliver(resp)
	t.release()
}

// completionEvent maps a response error onto the terminal event kind
// and status code.
func completionEvent(err error) (obs.Kind, int64) {
	switch {
	case err == nil:
		return obs.EvComplete, obs.StatusOK
	case errors.Is(err, ErrDeadlineExceeded):
		return obs.EvExpire, obs.StatusDeadline
	case errors.Is(err, ErrServerStopped):
		return obs.EvAbort, obs.StatusStopped
	default:
		return obs.EvComplete, obs.StatusError
	}
}

// ---------- request context ----------

// Ctx is the per-request context handlers receive. It is only valid on
// the goroutine running the handler.
type Ctx struct {
	task       *task
	ex         *executor
	noPreempt  int
	yieldEvery int
	polls      int
	spinSink   uint64
}

// Worker returns the executor currently running the request: a worker
// index, or a negative value on a dispatcher (-1 for shard 0, -(s+1)
// for shard s).
func (c *Ctx) Worker() int { return c.ex.id }

// Poll is the cooperative preemption probe — the call Concord's compiler
// pass inserts at function entries and loop back-edges. If the
// dispatcher has signaled preemption of this request's epoch (or the
// dispatcher's self-check slice has expired) and no no-preempt section
// is open, the request yields: its goroutine parks and the worker picks
// up its next request. If the server aborted the request while it was
// parked (drain deadline or request deadline), Poll panics with an
// internal value that unwinds the handler — its defers run — and
// becomes the response error.
func (c *Ctx) Poll() {
	if c.yieldEvery > 0 {
		// On CPU-constrained machines, hand the OS thread over so the
		// dispatcher can observe quanta and write flags. This does not
		// yield the request in the scheduling sense.
		if c.polls++; c.polls >= c.yieldEvery {
			c.polls = 0
			runtime.Gosched()
		}
	}
	if c.noPreempt != 0 {
		return
	}
	if c.ex.id >= 0 {
		f := c.ex.flag.Load()
		if f == 0 || f != c.ex.epoch {
			return // no signal, or a stale signal for a predecessor
		}
	} else {
		// Dispatcher slice: self-preempt on elapsed time (§3.3).
		if time.Since(c.ex.sliceStart) < c.ex.sliceLen {
			return
		}
	}
	c.task.parked <- parkEvent{done: false}
	c.ex = <-c.task.resume
	if err := c.task.abortErr; err != nil {
		panic(taskAbort{err})
	}
}

// BeginNoPreempt opens a critical section during which Poll will not
// yield — the paper's lock counter (§3.1). Sections nest.
func (c *Ctx) BeginNoPreempt() { c.noPreempt++ }

// EndNoPreempt closes a critical section. It panics on underflow.
func (c *Ctx) EndNoPreempt() {
	if c.noPreempt == 0 {
		panic("live: EndNoPreempt without BeginNoPreempt")
	}
	c.noPreempt--
}

// Spin busily consumes CPU for roughly d, polling for preemption at a
// fine grain. It is the synthetic "spin for the requested service time"
// workload of §5.1.
func (c *Ctx) Spin(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		for i := 0; i < 64; i++ {
			c.spinSink++
		}
		c.Poll()
	}
}
