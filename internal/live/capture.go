// The shadow capture ring: a sampled record of admitted-and-completed
// requests, detailed enough for the counterfactual replayer
// (internal/shadow) to reconstruct the offered load — arrival spacing,
// scheduling class, service hint, true measured service time — and
// compare what latency *was* (LatencyNS) against what the deterministic
// simulator says it *could have been* under a different discipline.
//
// Sampling contract: completions are counted on a shared atomic and
// every Rate-th one is captured, so the sampled arrival process is a
// p-thinning of the true one (a thinned Poisson process is Poisson at
// rate λ/Rate — the replayer's counterfactuals see a statistically
// faithful, proportionally lighter offered load). Capture itself is a
// short uncontended mutex append off the sampling fast path; requests
// that are never sampled pay exactly one atomic increment.
package live

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// CaptureRec is one sampled request, in the replayer's vocabulary.
// Times are nanoseconds; ArrivalNS is the offset from the window's
// epoch (negative for requests admitted before the current window
// opened — the replayer keys on arrival *spacing*, so only differences
// matter).
type CaptureRec struct {
	ArrivalNS  int64 `json:"arrival_ns"`
	Class      uint8 `json:"class"`
	HintNS     int64 `json:"hint_ns,omitempty"`     // 0 = unhinted
	ServiceNS  int64 `json:"service_ns"`            // measured run time
	LatencyNS  int64 `json:"latency_ns"`            // achieved sojourn
	DeadlineNS int64 `json:"deadline_ns,omitempty"` // allowed sojourn budget; 0 = none
}

// CaptureWindow is one drained capture interval: the sampled records in
// arrival order plus enough accounting to place them in time.
type CaptureWindow struct {
	// Start is when the window opened (the epoch ArrivalNS offsets are
	// relative to).
	Start time.Time
	// Span is how long the window was open.
	Span time.Duration
	// Offered counts every completion the ring saw during the window,
	// sampled or not — Offered/len(Recs) ≈ the sampling rate, letting
	// the replayer reason about the thinning factor.
	Offered uint64
	// Recs are the sampled records, sorted by arrival.
	Recs []CaptureRec
}

// CaptureRing samples completed requests into a fixed-capacity ring for
// periodic counterfactual replay. Safe for concurrent use from every
// executor; TakeWindow drains and re-opens the window.
type CaptureRing struct {
	rate uint64
	tick atomic.Uint64 // completions offered, lifetime
	kept atomic.Uint64 // records captured, lifetime (incl. overwritten)

	mu      sync.Mutex
	start   time.Time
	tick0   uint64 // tick at window open, for per-window Offered
	buf     []CaptureRec
	next    int // ring cursor
	filled  int
	windows uint64 // TakeWindow calls, lifetime
}

// NewCaptureRing builds a ring keeping up to capacity sampled records,
// capturing one completion in rate (rate ≤ 1 captures everything).
func NewCaptureRing(capacity, rate int) *CaptureRing {
	if capacity <= 0 {
		capacity = 4096
	}
	if rate < 1 {
		rate = 1
	}
	return &CaptureRing{
		rate:  uint64(rate),
		start: time.Now(),
		buf:   make([]CaptureRec, capacity),
	}
}

// Rate returns the configured 1-in-N sampling rate.
func (r *CaptureRing) Rate() int { return int(r.rate) }

// Cap returns the ring capacity in records.
func (r *CaptureRing) Cap() int { return len(r.buf) }

// Stats returns lifetime counters: completions offered to the ring and
// records sampled into it (including ones later overwritten or
// drained).
func (r *CaptureRing) Stats() (offered, captured uint64) {
	return r.tick.Load(), r.kept.Load()
}

// offer is the completion-path entry point: count, sample, and (rarely)
// append. Called by the composed completion observer for successful,
// measured requests only.
func (r *CaptureRing) offer(t *task, resp *Response) {
	if r.tick.Add(1)%r.rate != 0 {
		return
	}
	rec := CaptureRec{
		Class:     t.class,
		HintNS:    t.hintNS,
		ServiceNS: t.runNS,
		LatencyNS: int64(resp.Latency),
	}
	if !t.deadline.IsZero() {
		rec.DeadlineNS = int64(t.deadline.Sub(t.arrival))
	}
	r.kept.Add(1)
	r.mu.Lock()
	rec.ArrivalNS = t.arrival.Sub(r.start).Nanoseconds()
	r.append(rec)
	r.mu.Unlock()
}

// OfferRecord feeds a prebuilt record through the sampling path — trace
// injection for tests, benchmarks, and offline replay. The record's
// ArrivalNS is kept as given (relative to the caller's own epoch; only
// spacing matters to the replayer).
func (r *CaptureRing) OfferRecord(rec CaptureRec) {
	if r.tick.Add(1)%r.rate != 0 {
		return
	}
	r.kept.Add(1)
	r.mu.Lock()
	r.append(rec)
	r.mu.Unlock()
}

// append stores one sampled record; callers hold mu.
func (r *CaptureRing) append(rec CaptureRec) {
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.filled < len(r.buf) {
		r.filled++
	}
}

// TakeWindow drains the ring: it returns every sampled record since the
// last drain (arrival-sorted) and re-opens the window. When the ring
// wrapped, the oldest records were overwritten and the window holds the
// most recent Cap() samples.
func (r *CaptureRing) TakeWindow() CaptureWindow {
	now := time.Now()
	tick := r.tick.Load()
	r.mu.Lock()
	w := CaptureWindow{
		Start:   r.start,
		Span:    now.Sub(r.start),
		Offered: tick - r.tick0,
		Recs:    make([]CaptureRec, 0, r.filled),
	}
	if r.filled < len(r.buf) {
		w.Recs = append(w.Recs, r.buf[:r.filled]...)
	} else {
		// Oldest-first: the cursor points at the oldest record.
		w.Recs = append(w.Recs, r.buf[r.next:]...)
		w.Recs = append(w.Recs, r.buf[:r.next]...)
	}
	r.filled, r.next = 0, 0
	r.start = now
	r.tick0 = tick
	r.windows++
	r.mu.Unlock()
	sort.SliceStable(w.Recs, func(i, j int) bool { return w.Recs[i].ArrivalNS < w.Recs[j].ArrivalNS })
	return w
}
