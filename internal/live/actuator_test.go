package live

// Control-plane actuator coverage: the runtime-adjustable quantum, the
// per-class quantum table, the fcfs↔srpt drain-and-swap, plus the
// randomized property and chaos cases the adaptive controller leans on
// — an SRPT pop-order property across mixed bands, lifecycle
// invariants across shard counts, and a policy flipper racing live
// load.

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestSetQuantumTakesEffect: a server built with no quantum never
// preempts; after SetQuantum a long request is preempted mid-flight.
func TestSetQuantumTakesEffect(t *testing.T) {
	h := &spinHandler{}
	s := New(h, testOptions(1, 0))
	s.Start()
	defer s.Stop()

	if resp := s.Do(1500 * time.Microsecond); resp.Err != nil || resp.Preemptions != 0 {
		t.Fatalf("quantum 0: err %v, preemptions %d, want none", resp.Err, resp.Preemptions)
	}
	s.SetQuantum(100 * time.Microsecond)
	if got := s.Quantum(); got != 100*time.Microsecond {
		t.Fatalf("Quantum() = %v after SetQuantum(100µs)", got)
	}
	if resp := s.Do(1500 * time.Microsecond); resp.Err != nil || resp.Preemptions == 0 {
		t.Fatalf("quantum 100µs: err %v, preemptions %d, want > 0", resp.Err, resp.Preemptions)
	}
	// Back to 0 disables preemption again.
	s.SetQuantum(0)
	if resp := s.Do(1500 * time.Microsecond); resp.Err != nil || resp.Preemptions != 0 {
		t.Fatalf("quantum reset to 0: err %v, preemptions %d, want none", resp.Err, resp.Preemptions)
	}
}

// classedSpin spins for d under an SLO class.
type classedSpin struct {
	d     time.Duration
	class SLOClass
}

func (p classedSpin) SLOClass() SLOClass { return p.class }

type classedSpinHandler struct{}

func (classedSpinHandler) Setup()          {}
func (classedSpinHandler) SetupWorker(int) {}
func (classedSpinHandler) Handle(ctx *Ctx, payload any) (any, error) {
	ctx.Spin(payload.(classedSpin).d)
	return nil, nil
}

// TestSetClassQuantumOverridesBase: with a loose base quantum, a tight
// class override preempts that class's requests while default-class
// requests run unpreempted.
func TestSetClassQuantumOverridesBase(t *testing.T) {
	s := New(classedSpinHandler{}, testOptions(1, 5*time.Millisecond))
	s.Start()
	defer s.Stop()

	s.SetClassQuantum(int(ClassCritical), 100*time.Microsecond)
	if got := s.ClassQuantum(int(ClassCritical)); got != 100*time.Microsecond {
		t.Fatalf("ClassQuantum(ClassCritical) = %v, want 100µs", got)
	}

	crit := s.Submit(classedSpin{d: 1500 * time.Microsecond, class: ClassCritical})
	if resp := <-crit; resp.Err != nil || resp.Preemptions == 0 {
		t.Fatalf("ClassCritical under 100µs override: err %v, preemptions %d, want > 0", resp.Err, resp.Preemptions)
	}
	std := s.Submit(classedSpin{d: 1500 * time.Microsecond, class: ClassStandard})
	if resp := <-std; resp.Err != nil || resp.Preemptions != 0 {
		t.Fatalf("ClassStandard under 5ms base: err %v, preemptions %d, want none", resp.Err, resp.Preemptions)
	}

	// Out-of-range classes are ignored, not a panic.
	s.SetClassQuantum(-1, time.Microsecond)
	s.SetClassQuantum(int(NumClasses), time.Microsecond)
	if got := s.ClassQuantum(-1); got != 0 {
		t.Fatalf("ClassQuantum(-1) = %v, want 0", got)
	}
}

// TestSetPolicyValidates: unknown names are rejected without touching
// the queues; same-name sets are no-ops.
func TestSetPolicyValidates(t *testing.T) {
	s := New(&spinHandler{}, testOptions(1, 0))
	if err := s.SetPolicy("lifo"); err == nil {
		t.Fatal("SetPolicy(lifo) accepted an unknown policy")
	}
	if got := s.Policy(); got != PolicyFCFS {
		t.Fatalf("Policy() = %q after rejected set, want fcfs", got)
	}
	if err := s.SetPolicy(PolicyFCFS); err != nil {
		t.Fatalf("same-policy set errored: %v", err)
	}
}

// TestSetPolicySwapReordersQueuedWork: requests queued under FCFS are
// re-ordered by remaining work when the control plane swaps to SRPT
// mid-flight. Options.Adaptive keeps hint capture on from the start, so
// pre-swap submissions carry their hints into the new queue.
func TestSetPolicySwapReordersQueuedWork(t *testing.T) {
	h := &orderRecHandler{release: make(chan struct{})}
	o := testOptions(1, 0)
	o.QueueBound = 1
	o.Adaptive = true
	s := New(h, o)
	s.Start()

	blocked := s.Submit("block")
	time.Sleep(time.Millisecond)

	hints := []time.Duration{400, 100, 300, 200} // µs, FCFS order as submitted
	var chans []<-chan Response
	for _, us := range hints {
		chans = append(chans, s.Submit(labeledReq{
			label: us.String(), hint: us * time.Microsecond,
		}))
	}
	time.Sleep(time.Millisecond) // let all four queue under FCFS

	if err := s.SetPolicy(PolicySRPT); err != nil {
		t.Fatal(err)
	}
	if got := s.Policy(); got != PolicySRPT {
		t.Fatalf("Policy() = %q after swap, want srpt", got)
	}
	time.Sleep(time.Millisecond) // let the dispatcher drain-and-swap

	close(h.release)
	<-blocked
	for _, ch := range chans {
		if resp := <-ch; resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	s.Stop()

	want := []string{"100ns", "200ns", "300ns", "400ns"}
	got := h.recorded()
	if len(got) != len(want) {
		t.Fatalf("ran %d requests, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-swap run order %v, want SRPT order %v", got, want)
		}
	}
}

// TestSRPTQueuePopOrderProperty: for random mixes of in-budget,
// over-budget, and un-hinted tasks, an SRPT central queue pops keys in
// nondecreasing order and un-hinted tasks FIFO among themselves.
func TestSRPTQueuePopOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		q, err := newCentralQueue(PolicySRPT)
		if err != nil {
			t.Fatal(err)
		}
		n := 50 + rng.Intn(150)
		for i := 0; i < n; i++ {
			tk := &task{id: uint64(i + 1)}
			switch rng.Intn(3) {
			case 0: // in-budget
				tk.hintNS = int64(1+rng.Intn(1000)) * 1000
				tk.runNS = int64(float64(tk.hintNS) * rng.Float64())
			case 1: // over-budget
				tk.hintNS = int64(1+rng.Intn(100)) * 1000
				tk.runNS = tk.hintNS + int64(1+rng.Intn(1000))*1000
			case 2: // un-hinted
			}
			q.Push(tk)
		}
		lastKey := int64(-1)
		lastUnhintedID := uint64(0)
		for i := 0; i < n; i++ {
			tk, ok := q.Pop()
			if !ok {
				t.Fatalf("trial %d: queue dry after %d of %d pops", trial, i, n)
			}
			key := int64(tk.RemainingCycles())
			if key < lastKey {
				t.Fatalf("trial %d: pop %d key %d after key %d — not nondecreasing", trial, i, key, lastKey)
			}
			lastKey = key
			if key == unhintedKey {
				if tk.id <= lastUnhintedID {
					t.Fatalf("trial %d: un-hinted id %d popped after id %d — not FIFO", trial, i, lastUnhintedID)
				}
				lastUnhintedID = tk.id
			}
		}
	}
}

// TestSRPTSingleWorkerMixProperty: randomized hinted/un-hinted mixes
// released against one worker must run hinted-ascending first, then
// un-hinted in submission order.
func TestSRPTSingleWorkerMixProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		h := &orderRecHandler{release: make(chan struct{})}
		o := testOptions(1, 0)
		o.Policy = PolicySRPT
		o.QueueBound = 1
		s := New(h, o)
		s.Start()

		blocked := s.Submit("block")
		time.Sleep(time.Millisecond)

		var hinted []time.Duration
		var unhinted []string
		var chans []<-chan Response
		n := 10 + rng.Intn(20)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				label := time.Duration(i).String() + "-u"
				unhinted = append(unhinted, label)
				chans = append(chans, s.Submit(unlabeledReq{label: label}))
			} else {
				// Distinct hints so the expected order is unambiguous.
				hint := time.Duration(1000+i) * time.Microsecond
				hinted = append(hinted, hint)
				chans = append(chans, s.Submit(labeledReq{label: hint.String(), hint: hint}))
			}
		}
		time.Sleep(time.Millisecond)
		close(h.release)
		<-blocked
		for _, ch := range chans {
			if resp := <-ch; resp.Err != nil {
				t.Fatal(resp.Err)
			}
		}
		s.Stop()

		sort.Slice(hinted, func(i, j int) bool { return hinted[i] < hinted[j] })
		var want []string
		for _, d := range hinted {
			want = append(want, d.String())
		}
		want = append(want, unhinted...)
		got := h.recorded()
		if len(got) != len(want) {
			t.Fatalf("trial %d: ran %d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: run order %v, want %v", trial, got, want)
			}
		}
	}
}

// TestSRPTShardedMixInvariants: the same random mixes across shard
// counts keep the lifecycle invariants (exactly one response per
// submission, Submitted == Completed) — ordering is per-shard and
// perturbed by stealing, so only the invariants are global.
func TestSRPTShardedMixInvariants(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(shardName(shards), func(t *testing.T) {
			o := shardedOptions(4, shards, 100*time.Microsecond)
			o.Policy = PolicySRPT
			s := New(&spinHandler{}, o)
			s.Start()
			rng := rand.New(rand.NewSource(int64(shards) * 1313))
			const n = 200
			var chans []<-chan Response
			for i := 0; i < n; i++ {
				if rng.Intn(3) == 0 {
					// Un-hinted short work rides the sentinel band.
					chans = append(chans, s.Submit(20*time.Microsecond))
				} else {
					d := time.Duration(10+rng.Intn(400)) * time.Microsecond
					chans = append(chans, s.Submit(hintedSpin{hint: d}))
				}
			}
			for i, ch := range chans {
				if !receiveExactlyOne(t, ch) {
					t.Fatalf("request %d violated exactly-one-response", i)
				}
			}
			s.Stop()
			st := s.Stats()
			if st.Submitted != st.Completed {
				t.Fatalf("submitted %d != completed %d; stats %+v", st.Submitted, st.Completed, st)
			}
		})
	}
}

// TestPolicyFlipChaos flips fcfs↔srpt continuously while chaos load
// (panics, poll-less burns, spins) runs across a sharded server; every
// submission must still get exactly one response and the books must
// balance after Stop.
func TestPolicyFlipChaos(t *testing.T) {
	o := Options{Workers: 4, Shards: 2, Quantum: 100 * time.Microsecond,
		QueueBound: 2, Adaptive: true, WorkConserving: true,
		DrainTimeout: 500 * time.Millisecond, PinThreads: false}
	s := New(chaosHandler{}, o)
	s.Start()

	flipStop := make(chan struct{})
	var flips int
	go func() {
		policies := []string{PolicySRPT, PolicyFCFS}
		for i := 0; ; i++ {
			select {
			case <-flipStop:
				return
			case <-time.After(200 * time.Microsecond):
				if err := s.SetPolicy(policies[i%2]); err != nil {
					panic(err)
				}
				flips++
			}
		}
	}()

	const clients, perClient = 8, 40
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)*104729 + 3))
			for i := 0; i < perClient; i++ {
				ch := s.Submit(randomChaosReq(rng))
				if !receiveExactlyOne(t, ch) {
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(flipStop)
	s.Stop()

	st := s.Stats()
	if st.Submitted != st.Completed {
		t.Fatalf("policy-flip chaos: submitted %d != completed %d; stats %+v",
			st.Submitted, st.Completed, st)
	}
}
