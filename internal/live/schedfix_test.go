package live

// Regression coverage for two scheduling bugs:
//
//  1. SRPT priority inversion: RemainingCycles used to clamp hint−run at
//     zero, so un-hinted requests (hintNS == 0) and requests that had
//     outrun their estimate keyed to the *head* of the heap and starved
//     genuinely short work. Fixed with three disjoint key bands
//     (in-budget / over-budget / unhinted sentinel) — see task.go.
//  2. Local-queue deadline gap: workerLoop never checked expiry at local
//     dequeue, so a request whose deadline passed while it sat in a
//     worker's JBSQ queue behind a slow request ran to a too-late
//     success instead of answering ErrDeadlineExceeded. The central
//     sweep cannot see such a request — dequeue is the only
//     enforcement point once it has been dispatched.
//
// Each test here fails against the pre-fix code.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"concord/internal/sim"
)

// TestSRPTKeyBands pins the three-band key contract directly.
func TestSRPTKeyBands(t *testing.T) {
	key := func(hintNS, runNS int64) int64 {
		tk := &task{hintNS: hintNS, runNS: runNS}
		return int64(tk.RemainingCycles())
	}

	// In-budget: key is remaining work.
	if got := key(1000, 400); got != 600 {
		t.Fatalf("in-budget key = %d, want 600", got)
	}
	// Exactly on budget still counts as in-budget (key 0 is fine here:
	// zero remaining work genuinely is the shortest remaining).
	if got := key(1000, 1000); got != 0 {
		t.Fatalf("on-budget key = %d, want 0", got)
	}
	// Over-budget: banded above any in-budget key, ordered by overage.
	ob1, ob2 := key(1000, 1500), key(1000, 9000)
	if ob1 < overBudgetKeyBase || ob2 < overBudgetKeyBase {
		t.Fatalf("over-budget keys %d, %d below band base %d", ob1, ob2, overBudgetKeyBase)
	}
	if ob1 >= ob2 {
		t.Fatalf("larger overage must sort later: %d >= %d", ob1, ob2)
	}
	// Un-hinted: the max-key sentinel, above every over-budget key.
	if got := key(0, 12345); got != unhintedKey {
		t.Fatalf("un-hinted key = %d, want sentinel %d", got, unhintedKey)
	}
	if ob2 >= unhintedKey {
		t.Fatalf("over-budget key %d reached the un-hinted sentinel", ob2)
	}
	// Pathological overage saturates below the sentinel, never wraps.
	if got := key(1, int64(^uint64(0)>>1)); got >= unhintedKey || got < overBudgetKeyBase {
		t.Fatalf("saturated over-budget key %d escaped the band", got)
	}
}

// TestSRPTQueueOrdersBands pushes crafted tasks straight into an SRPT
// central queue and checks the pop order across all three bands.
// Pre-fix, the over-budget and un-hinted tasks clamped to key 0 and
// popped first — the exact inversion.
func TestSRPTQueueOrdersBands(t *testing.T) {
	q, err := newCentralQueue(PolicySRPT)
	if err != nil {
		t.Fatal(err)
	}
	us := int64(time.Microsecond)
	tasks := map[string]*task{
		"unhinted":   {id: 1},
		"over-190us": {id: 2, hintNS: 10 * us, runNS: 200 * us},
		"over-70us":  {id: 3, hintNS: 50 * us, runNS: 120 * us},
		"rem-100us":  {id: 4, hintNS: 100 * us},
		"rem-50us":   {id: 5, hintNS: 300 * us, runNS: 250 * us},
	}
	for _, name := range []string{"unhinted", "over-190us", "over-70us", "rem-100us", "rem-50us"} {
		q.Push(tasks[name])
	}
	want := []string{"rem-50us", "rem-100us", "over-70us", "over-190us", "unhinted"}
	for i, name := range want {
		got, ok := q.Pop()
		if !ok {
			t.Fatalf("queue dry after %d pops, want %d", i, len(want))
		}
		if got != tasks[name] {
			t.Fatalf("pop %d: got task %d, want %q (id %d)", i, got.id, name, tasks[name].id)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue not empty after popping all tasks")
	}
	_ = sim.Cycles(0) // keep the import honest about what keys are
}

// labeledReq is a payload with an optional SRPT hint and a label the
// handler records, so tests can observe run order across hinted and
// un-hinted requests in one stream.
type labeledReq struct {
	label string
	hint  time.Duration // 0 = does not implement a useful hint
}

func (p labeledReq) ServiceHint() time.Duration { return p.hint }

// unlabeledReq is a payload that does not implement Hinted at all.
type unlabeledReq struct {
	label string
}

// orderRecHandler blocks on "block" payloads and records the label of
// everything else it runs.
type orderRecHandler struct {
	release chan struct{}
	mu      sync.Mutex
	order   []string
}

func (h *orderRecHandler) Setup()          {}
func (h *orderRecHandler) SetupWorker(int) {}
func (h *orderRecHandler) Handle(ctx *Ctx, payload any) (any, error) {
	switch p := payload.(type) {
	case string: // "block"
		<-h.release
		return p, nil
	case labeledReq:
		h.mu.Lock()
		h.order = append(h.order, p.label)
		h.mu.Unlock()
		return p.label, nil
	case unlabeledReq:
		h.mu.Lock()
		h.order = append(h.order, p.label)
		h.mu.Unlock()
		return p.label, nil
	default:
		return payload, nil
	}
}

func (h *orderRecHandler) recorded() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.order...)
}

// TestSRPTUnhintedRunsLast: with the worker held busy, un-hinted
// requests queued alongside hinted ones must run after every hinted
// request, FIFO among themselves. Pre-fix they keyed to 0 and ran
// first, starving the genuinely short hinted work.
func TestSRPTUnhintedRunsLast(t *testing.T) {
	h := &orderRecHandler{release: make(chan struct{})}
	o := testOptions(1, 0)
	o.Policy = PolicySRPT
	o.QueueBound = 1
	s := New(h, o)
	s.Start()

	blocked := s.Submit("block")
	time.Sleep(time.Millisecond) // let the blocker reach the worker

	var chans []<-chan Response
	submit := func(p any) { chans = append(chans, s.Submit(p)) }
	submit(unlabeledReq{label: "u1"})
	submit(labeledReq{label: "s-400", hint: 400 * time.Microsecond})
	submit(unlabeledReq{label: "u2"})
	submit(labeledReq{label: "s-100", hint: 100 * time.Microsecond})
	time.Sleep(time.Millisecond) // let all four reach the central queue
	close(h.release)
	<-blocked
	for _, ch := range chans {
		if resp := <-ch; resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	s.Stop()

	want := []string{"s-100", "s-400", "u1", "u2"}
	got := h.recorded()
	if len(got) != len(want) {
		t.Fatalf("ran %d requests, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SRPT run order %v, want %v (un-hinted must run last, FIFO)", got, want)
		}
	}
}

// waitUntil polls cond every 100µs for up to 5s.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestLocalQueueDeadlineEnforced is the deterministic deadline-gap
// repro: a short request is JBSQ-pushed behind a blocker into the
// single worker's local queue, its deadline passes while it waits
// there, and the blocker is then released. The central-queue sweep
// cannot see the request (it already left the central queue), so the
// worker's dequeue check is the only thing standing between it and a
// too-late success. Pre-fix it completed successfully; it must answer
// ErrDeadlineExceeded and count in Stats.Expired.
func TestLocalQueueDeadlineEnforced(t *testing.T) {
	h := &orderRecHandler{release: make(chan struct{})}
	o := testOptions(1, 0)
	o.QueueBound = 2
	o.RequestTimeout = 25 * time.Millisecond
	s := New(h, o)
	s.Start()

	blocked := s.Submit("block")
	waitUntil(t, "blocker to occupy the worker", func() bool {
		return s.Depths().Workers[0] == 1
	})

	late := s.Submit(unlabeledReq{label: "late"})
	waitUntil(t, "late request to reach the worker's local queue", func() bool {
		d := s.Depths()
		return d.Workers[0] == 2 && d.Central == 0 && d.Submit == 0
	})

	// Let the late request's deadline pass while it sits in the local
	// queue, invisible to the central sweep.
	time.Sleep(o.RequestTimeout + 25*time.Millisecond)
	close(h.release)
	<-blocked

	resp := <-late
	if !errors.Is(resp.Err, ErrDeadlineExceeded) {
		t.Fatalf("request expired in the local queue answered %v, want ErrDeadlineExceeded", resp.Err)
	}
	s.Stop()
	if got := s.Stats().Expired; got == 0 {
		t.Fatal("Stats.Expired did not count the local-queue expiry")
	}
	if order := h.recorded(); len(order) != 0 {
		t.Fatalf("expired request still ran: %v", order)
	}
}
