// Completion-observer fan-out. The runtime has grown several completion
// sinks — rolling tail/SLO tracking (Options.Tail), the adaptive
// controller's service-time estimator (Options.ServiceObserver), the
// per-class quantile sketches (Options.Sketches), and the shadow
// capture ring (Options.Capture). Threading each as its own nil-checked
// hook put one branch per sink on the completion hot path; composing
// them here keeps finish() at exactly one branch regardless of how many
// sinks are configured, and gives new sinks one obvious place to land.
package live

import "concord/internal/obs"

// compObserver multiplexes every configured completion sink behind a
// single nil check in finish(). Built once at New; immutable after.
type compObserver struct {
	tail   *obs.TailTracker
	ctails *obs.ClassTails
	svcObs func(serviceNS int64)
	sk     *obs.ClassSketches
	cap    *CaptureRing
}

// newCompObserver composes the configured sinks; nil when no sink is
// configured, so an unobserved server pays one predictable untaken
// branch per completion.
func newCompObserver(o Options) *compObserver {
	if o.Tail == nil && o.ServiceObserver == nil && o.Sketches == nil &&
		o.Capture == nil && o.ClassTails == nil {
		return nil
	}
	return &compObserver{
		tail:   o.Tail,
		ctails: o.ClassTails,
		svcObs: o.ServiceObserver,
		sk:     o.Sketches,
		cap:    o.Capture,
	}
}

// observe fans one delivered response out to every sink. It runs on
// the completing executor's hot path: every sink is wait-free or a
// short uncontended critical section, and none may block.
func (o *compObserver) observe(t *task, resp *Response) {
	if o.tail != nil {
		o.tail.Observe(resp.Latency, resp.Err == nil)
	}
	if o.ctails != nil {
		o.ctails.Observe(int(t.class), resp.Latency, resp.Err == nil)
	}
	if resp.Err != nil || !t.started {
		return // service-time sinks only see measured, successful runs
	}
	if o.svcObs != nil {
		o.svcObs(t.runNS)
	}
	if o.sk != nil {
		o.sk.Observe(int(t.class), t.runNS, t.hintNS)
	}
	if o.cap != nil {
		o.cap.offer(t, resp)
	}
}
