// futureproof: the §5.6 what-if study as a library walkthrough — will
// compiler-enforced cooperation still matter once hardware offers fast
// user-space interrupts (Intel UIPI on Sapphire Rapids)?
//
// The program prints the preemption-mechanism overhead across scheduling
// quanta on (a) the paper's testbed cost model and (b) the Sapphire
// Rapids cost model, plus the §2 analytical system-overhead breakdown
// that explains the gap.
//
// Run with: go run ./examples/futureproof
package main

import (
	"fmt"

	"concord/internal/analytic"
	"concord/internal/cost"
	"concord/internal/mech"
)

func table(title string, m cost.Model, mechs []mech.Mechanism) {
	fmt.Println(title)
	fmt.Printf("  %-12s", "quantum")
	for _, mc := range mechs {
		fmt.Printf("%14s", mc.Name())
	}
	fmt.Println()
	s := m.MicrosToCycles(500)
	for _, qus := range []float64{1, 2, 5, 10, 25, 50, 100} {
		fmt.Printf("  %8.0fµs  ", qus)
		for _, mc := range mechs {
			fmt.Printf("%13.1f%%", 100*mech.SpinOverhead(mc, s, m.MicrosToCycles(qus)))
		}
		fmt.Println()
	}
	fmt.Println()
}

func main() {
	fmt.Println("Is Concord future-proof? Preemption-mechanism overhead for 500µs requests")
	fmt.Println()

	today := cost.Default()
	table("Today's servers (posted IPIs vs instrumentation):", today,
		[]mech.Mechanism{mech.IPI{M: today}, mech.Rdtsc{M: today}, mech.CacheLine{M: today}})

	spr := cost.SapphireRapids()
	table("Sapphire Rapids (user-space interrupts available):", spr,
		[]mech.Mechanism{mech.UIPI{M: spr}, mech.Rdtsc{M: spr}, mech.CacheLine{M: spr}})

	// The §2 analytical model, end to end: whole-system overhead for a
	// 14-worker machine at a 5µs quantum.
	fmt.Println("Whole-system overhead (Eq. 1) at q=5µs, 500µs requests, 14 workers:")
	for _, cfg := range []struct {
		name           string
		mc             mech.Mechanism
		jbsq, conserve bool
	}{
		{"Shinjuku (IPI + SQ + dedicated dispatcher)", mech.IPI{M: today}, false, false},
		{"UIPI + SQ + dedicated dispatcher", mech.UIPI{M: spr}, false, false},
		{"Concord (coop + JBSQ + work-conserving)", mech.CacheLine{M: today}, true, true},
	} {
		p := analytic.ForSystem(today, cfg.mc, 14,
			today.MicrosToCycles(500), today.MicrosToCycles(5), cfg.jbsq, cfg.conserve)
		fmt.Printf("  %-45s %5.1f%% of machine cycles lost\n", cfg.name, 100*p.SystemOverhead())
	}
	fmt.Println()
	fmt.Println("Interrupt delivery keeps getting cheaper, but it still rides the same")
	fmt.Println("coherence fabric as Concord's cache-line writes — and a shared line")
	fmt.Println("plus an L1-hit probe remains the cheapest possible signal (§5.6).")
}
