// Quickstart: run the live Concord runtime in-process and watch
// cooperative preemption bound tail latency.
//
// A single worker serves a bimodal stream: many 50µs requests and a few
// 5ms "scans". Without preemption the short requests get stuck behind
// the scans; with a 200µs quantum the scans yield and the short
// requests' tail collapses.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"time"

	"concord/internal/live"
	"concord/internal/trace"
)

// spinner is the synthetic service of §5.1: it spins for the requested
// duration, polling for preemption as instrumented code would.
type spinner struct{}

func (spinner) Setup()          {}
func (spinner) SetupWorker(int) {}
func (spinner) Handle(ctx *live.Ctx, payload any) (any, error) {
	ctx.Spin(payload.(time.Duration))
	return nil, nil
}

func run(name string, quantum time.Duration, workConserving bool) float64 {
	srv := live.New(spinner{}, live.Options{
		Workers:        1,
		Quantum:        quantum,
		QueueBound:     2,
		WorkConserving: workConserving,
		PinThreads:     false,
	})
	srv.Start()
	defer srv.Stop()

	rng := rand.New(rand.NewSource(42))
	lg := trace.NewLog(256)
	var pending []<-chan live.Response
	var classes []string
	var services []time.Duration

	for i := 0; i < 200; i++ {
		service := 50 * time.Microsecond
		class := "short"
		if rng.Float64() < 0.05 {
			service = 5 * time.Millisecond
			class = "long"
		}
		pending = append(pending, srv.Submit(service))
		classes = append(classes, class)
		services = append(services, service)
		time.Sleep(time.Duration(rng.ExpFloat64() * float64(150*time.Microsecond)))
	}
	for i, ch := range pending {
		resp := <-ch
		lg.Add(trace.Record{
			Class:        classes[i],
			ServiceUS:    float64(services[i]) / float64(time.Microsecond),
			SojournUS:    float64(resp.Latency) / float64(time.Microsecond),
			Preemptions:  resp.Preemptions,
			OnDispatcher: resp.OnDispatcher,
		})
	}
	st := srv.Stats()
	sum := lg.Summarize()
	fmt.Printf("%-20s %s\n", name, sum)
	fmt.Printf("%-20s server counters: %d completed, %d preemptions, %d run by dispatcher\n\n",
		"", st.Completed, st.Preemptions, st.DispatcherRun)
	return sum.P99
}

func main() {
	fmt.Println("Concord quickstart: 1 worker, 95% x 50µs + 5% x 5ms requests")
	fmt.Println()
	fcfs := run("FCFS (q=0):", 0, false)
	concord := run("Concord (q=200µs):", 200*time.Microsecond, true)
	fmt.Printf("With preemption, short requests no longer wait out entire 5ms scans:\n")
	fmt.Printf("p99 slowdown %.0fx -> %.0fx (%.1fx better) at identical load.\n", fcfs, concord, fcfs/concord)
}
