// kvserver: the paper's LevelDB experiment (§5.3) in-process — the
// skiplist KV store served by the live Concord runtime under a
// ZippyDB-like mix (78% GET / 13% PUT / 6% DELETE / 3% SCAN), comparing
// run-to-completion against Concord's preemptive scheduling.
//
// Point queries bracket the store's mutex with no-preempt sections (the
// paper's lock counter); scans iterate in batches with a preemption poll
// between batches, so a database-wide scan yields cooperatively.
//
// Run with: go run ./examples/kvserver
package main

import (
	"fmt"
	"math/rand"
	"time"

	"concord/internal/kv"
	"concord/internal/live"
	"concord/internal/trace"
)

const (
	numKeys   = 15000 // the paper populates 15,000 unique keys
	scanBatch = 128
)

type kvOp struct {
	op  string
	key []byte
}

// ServiceHint gives the runtime's SRPT policy each op's expected cost
// (the paper's measured LevelDB service times): point ops are ~µs,
// scans dominate at 500µs, so hinted scheduling runs points first.
func (o kvOp) ServiceHint() time.Duration {
	if o.op == "SCAN" {
		return 500 * time.Microsecond
	}
	return 2 * time.Microsecond
}

type kvHandler struct {
	store *kv.Store
}

func (h *kvHandler) Setup() {}

func (h *kvHandler) SetupWorker(w int) {}

func (h *kvHandler) Handle(ctx *live.Ctx, payload any) (any, error) {
	req := payload.(kvOp)
	switch req.op {
	case "GET":
		ctx.BeginNoPreempt() // holds the store mutex: defer preemption
		v, ok := h.store.Get(req.key)
		ctx.EndNoPreempt()
		if !ok {
			return nil, nil
		}
		return len(v), nil
	case "PUT":
		ctx.BeginNoPreempt()
		h.store.Put(req.key, []byte("updated-value"))
		ctx.EndNoPreempt()
		return nil, nil
	case "DELETE":
		ctx.BeginNoPreempt()
		h.store.Delete(req.key)
		ctx.EndNoPreempt()
		return nil, nil
	case "SCAN":
		count := 0
		cursor := []byte(nil)
		for {
			cursor = h.store.ScanBatch(cursor, scanBatch, func(_, _ []byte) bool {
				count++
				return true
			})
			if cursor == nil {
				return count, nil
			}
			ctx.Poll() // yield point between scan batches
		}
	}
	return nil, fmt.Errorf("unknown op %s", req.op)
}

func sampleOp(rng *rand.Rand) (kvOp, string) {
	key := []byte(fmt.Sprintf("key%08d", rng.Intn(numKeys)))
	switch v := rng.Float64(); {
	case v < 0.78:
		return kvOp{"GET", key}, "GET"
	case v < 0.91:
		return kvOp{"PUT", key}, "PUT"
	case v < 0.97:
		return kvOp{"DELETE", key}, "DELETE"
	default:
		return kvOp{"SCAN", nil}, "SCAN"
	}
}

func run(name string, quantum time.Duration, shards int, policy string) {
	store := kv.New()
	for i := 0; i < numKeys; i++ {
		store.Put([]byte(fmt.Sprintf("key%08d", i)), []byte("initial-value-000"))
	}
	srv := live.New(&kvHandler{store: store}, live.Options{
		Workers:        2,
		Shards:         shards,
		Policy:         policy,
		Quantum:        quantum,
		QueueBound:     2,
		WorkConserving: true,
		PinThreads:     false,
		CoopTimeshare:  16, // scans poll coarsely; timeshare aggressively
	})
	srv.Start()
	defer srv.Stop()

	rng := rand.New(rand.NewSource(7))
	logs := map[string]*trace.Log{}
	type inflight struct {
		ch    <-chan live.Response
		class string
		start time.Time
	}
	var reqs []inflight

	for i := 0; i < 600; i++ {
		op, class := sampleOp(rng)
		reqs = append(reqs, inflight{srv.Submit(op), class, time.Now()})
		time.Sleep(time.Duration(rng.ExpFloat64() * float64(200*time.Microsecond)))
	}
	for _, r := range reqs {
		resp := <-r.ch
		if resp.Err != nil {
			fmt.Println("error:", resp.Err)
			continue
		}
		if logs[r.class] == nil {
			logs[r.class] = trace.NewLog(64)
		}
		logs[r.class].Add(trace.Record{
			Class:       r.class,
			ServiceUS:   1, // report raw sojourn percentiles per class
			SojournUS:   float64(resp.Latency) / float64(time.Microsecond),
			Preemptions: resp.Preemptions,
		})
	}
	st := srv.Stats()
	fmt.Printf("%s (quantum %v): %d requests, %d preemptions, %d run by dispatcher, %d cross-shard steals\n",
		name, quantum, st.Completed, st.Preemptions, st.DispatcherRun, st.Steals)
	for _, class := range []string{"GET", "PUT", "DELETE", "SCAN"} {
		if lg := logs[class]; lg != nil {
			s := lg.Summarize()
			fmt.Printf("  %-7s n=%-4d sojourn p50=%8.0fµs p99=%8.0fµs preempts/req=%.1f\n",
				class, s.Count, s.P50, s.P99, s.MeanPreemptions)
		}
	}
	fmt.Println()
}

func main() {
	fmt.Printf("LevelDB-style KV store on the live Concord runtime (%d keys, ZippyDB mix)\n\n", numKeys)
	run("run-to-completion", 0, 1, live.PolicyFCFS)
	run("Concord", 100*time.Microsecond, 1, live.PolicyFCFS)
	run("Concord sharded+SRPT", 100*time.Microsecond, 2, live.PolicySRPT)
	fmt.Println("Preemption keeps GET tail latency near its service time even while")
	fmt.Println("full-database SCANs are in flight; the scans absorb the (small) cost.")
	fmt.Println("The third run splits the dispatcher into two shards (one worker each,")
	fmt.Println("idle shards steal queued work) and orders each central queue by the")
	fmt.Println("ops' ServiceHint (SRPT), so points always bypass queued scans.")
}
