// tailstudy: use the simulation library to reproduce the paper's central
// policy finding — no single scheduling policy wins everywhere (§1, §5.2):
//
//   - at HIGH service-time dispersion, preemptive single-queue scheduling
//     (Shinjuku, Concord) dominates FCFS, and Concord's cheap mechanisms
//     beat Shinjuku's;
//   - at LOW dispersion, preemption is pure overhead and FCFS
//     (Persephone) wins — yet Concord stays close because its preemption
//     costs so little.
//
// Run with: go run ./examples/tailstudy   (about a minute)
package main

import (
	"fmt"

	"concord/internal/core"
	"concord/internal/server"
	"concord/internal/workload"
)

func study(name string, spec workload.Spec, quantumUS float64) core.Result {
	e := core.Experiment{
		Name:      name,
		Workload:  spec,
		QuantumUS: quantumUS,
		Params: server.RunParams{
			Requests:        60000,
			Seed:            11,
			MaxCentralQueue: 150000,
			DrainSlackUS:    50000,
		},
	}
	res := e.Run()
	fmt.Print(res.Summary())
	if imp, err := res.Improvement("Concord", "Shinjuku"); err == nil {
		fmt.Printf("  Concord vs Shinjuku: %+.0f%%\n", 100*imp)
	}
	if imp, err := res.Improvement("Concord", "Persephone-FCFS"); err == nil {
		fmt.Printf("  Concord vs Persephone-FCFS: %+.0f%%\n", 100*imp)
	}
	fmt.Println()
	return res
}

func main() {
	fmt.Println("Scheduling-policy study: max throughput at the 50x p99.9-slowdown SLO")
	fmt.Println("(14 simulated workers, cost model from the paper)")
	fmt.Println()

	study("HIGH dispersion: Bimodal(99.5% x 0.5µs, 0.5% x 500µs)", workload.USRBimodal(), 5)
	study("HIGH dispersion: LevelDB 50% GET / 50% SCAN", workload.LevelDB5050(), 5)
	study("LOW dispersion: TPCC on in-memory DB", workload.TPCC(), 10)

	fmt.Println("Reading: preemption pays exactly when a few huge requests would")
	fmt.Println("otherwise block many tiny ones; when service times are uniform it")
	fmt.Println("only adds overhead — and Concord shrinks that overhead enough to")
	fmt.Println("stay competitive in both regimes.")
}
