// Package concord is a from-scratch Go reproduction of "Achieving
// Microsecond-Scale Tail Latency Efficiently with Approximate Optimal
// Scheduling" (Iyer, Unal, Kogias, Candea — SOSP 2023), the Concord
// scheduling runtime.
//
// The repository contains two complementary implementations of the
// paper's system plus everything needed to regenerate its evaluation:
//
//   - a cycle-level discrete-event simulation of the
//     dispatcher/worker server architecture (internal/sim,
//     internal/server) parameterized by the paper's published cost
//     model (internal/cost, internal/mech), which regenerates every
//     figure and table (internal/figures, cmd/concordsim);
//   - a working Go runtime with cooperative preemption, JBSQ(k)
//     bounded worker queues, and a work-conserving dispatcher
//     (internal/live), served over TCP by cmd/concord-kvd against the
//     skiplist KV store in internal/kv, with source instrumentation by
//     cmd/concordc (internal/instrument) standing in for the paper's
//     LLVM pass.
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// paper-to-module map, and EXPERIMENTS.md for reproduced-vs-paper
// results. The benchmarks in bench_test.go regenerate one figure or
// table each:
//
//	go test -bench=. -benchmem
package concord
