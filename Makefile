# Tier-1 gate: everything must build and every test must pass. Tests
# run in shuffled order so inter-test ordering dependencies can't hide.
tier1:
	go build ./...
	go test -shuffle=on ./...

# Race hygiene for the concurrent packages: the parallel runner stack,
# the live serving path (runtime lifecycle + load-generator
# measurement), and the policy queues (cascade tiers + admission paths
# exercise them from many goroutines). Slower than tier1; run before
# merging changes to any of these.
race:
	go test -race ./internal/runner ./internal/server ./internal/figures ./internal/live ./internal/trace ./internal/obs ./internal/adapt ./internal/shadow ./internal/bench ./internal/proto ./internal/netsrv ./internal/policy

vet:
	go vet ./...

bench:
	go test -run xxx -bench . -benchmem .

# End-to-end observability smoke: builds concord-kvd and concord-load,
# boots the server with -obs -adaptive, scrapes /metrics, /healthz and
# pprof, pulls a TRACE and DECISIONS, asserts non-zero net-phase |OBS
# trailers, runs text -breakdown and pipelined-binary loads, and
# validates the tracedump and decisiondump written at drain.
# Out-of-process, so kept behind a build tag rather than in tier1.
obs-smoke:
	go test -tags obssmoke -run TestObsSmoke -v -timeout 120s ./internal/obs/smoke

# Continuous benchmark harness: full run of the standardized scenario
# suite. Writes into the gitignored bench-out/ scratch directory; to
# refresh the checked-in baselines, copy the BENCH_*.json you mean to
# re-baseline to the repo root and commit them deliberately.
bench-json:
	go run ./cmd/concord-bench -reps 5 -warmup 1 -outdir bench-out

# Short-rep suite run compared against the checked-in baselines on the
# hermetic metrics only (deterministic simulator quantiles, allocation
# counts — safe across machines). Exits non-zero on a regression beyond
# the noise band; machine-bound movements print as advisory.
bench-smoke:
	go run ./cmd/concord-bench -short -scenarios core,live,live_sharded,live_adaptive,live_regret,live_multitenant -outdir bench-out
	go run ./cmd/concord-bench -compare -hermetic BENCH_core.json bench-out/BENCH_core.json
	go run ./cmd/concord-bench -compare -hermetic BENCH_live.json bench-out/BENCH_live.json
	go run ./cmd/concord-bench -compare -hermetic BENCH_live_sharded.json bench-out/BENCH_live_sharded.json
	go run ./cmd/concord-bench -compare -hermetic BENCH_live_adaptive.json bench-out/BENCH_live_adaptive.json
	go run ./cmd/concord-bench -compare -hermetic BENCH_live_regret.json bench-out/BENCH_live_regret.json
	go run ./cmd/concord-bench -compare -hermetic BENCH_live_multitenant.json bench-out/BENCH_live_multitenant.json

# Wire-protocol smoke: the live_net scenario over real loopback TCP
# (text + pipelined binary, up to 10k connections), gated hermetically
# on allocations per request — the contract that the zero-copy binary
# path stays strictly leaner than the text path.
net-smoke:
	go run ./cmd/concord-bench -short -scenarios live_net -outdir bench-out
	go run ./cmd/concord-bench -compare -hermetic BENCH_live_net.json bench-out/BENCH_live_net.json
	# Task-pooling floor: allocs/req must stay strictly below the
	# pre-pooling baselines (text 8.15, binary 7.33) no matter what the
	# checked-in baseline drifts to.
	go run ./cmd/concord-bench -assert bench-out/BENCH_live_net.json 'allocs_per_req_text<8.15' 'allocs_per_req_binary<7.33'

.PHONY: tier1 race vet bench obs-smoke bench-json bench-smoke net-smoke
