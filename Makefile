# Tier-1 gate: everything must build and every test must pass.
tier1:
	go build ./...
	go test ./...

# Race hygiene for the concurrent packages: the parallel runner stack
# and the live serving path (runtime lifecycle + load-generator
# measurement). Slower than tier1; run before merging changes to any of
# these.
race:
	go test -race ./internal/runner ./internal/server ./internal/figures ./internal/live ./internal/trace

vet:
	go vet ./...

bench:
	go test -run xxx -bench . -benchmem .

.PHONY: tier1 race vet bench
