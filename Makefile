# Tier-1 gate: everything must build and every test must pass.
tier1:
	go build ./...
	go test ./...

# Race hygiene for the packages the parallel runner touches. Slower than
# tier1; run before merging changes to runner/server/figures.
race:
	go test -race ./internal/runner ./internal/server ./internal/figures

bench:
	go test -run xxx -bench . -benchmem .

.PHONY: tier1 race bench
