# Tier-1 gate: everything must build and every test must pass.
tier1:
	go build ./...
	go test ./...

# Race hygiene for the concurrent packages: the parallel runner stack
# and the live serving path (runtime lifecycle + load-generator
# measurement). Slower than tier1; run before merging changes to any of
# these.
race:
	go test -race ./internal/runner ./internal/server ./internal/figures ./internal/live ./internal/trace ./internal/obs

vet:
	go vet ./...

bench:
	go test -run xxx -bench . -benchmem .

# End-to-end observability smoke: builds concord-kvd and concord-load,
# boots the server with -obs, scrapes /metrics and pprof, pulls a TRACE,
# and runs a -breakdown load. Out-of-process, so kept behind a build tag
# rather than in tier1.
obs-smoke:
	go test -tags obssmoke -run TestObsSmoke -v -timeout 120s ./internal/obs/smoke

.PHONY: tier1 race vet bench obs-smoke
