package concord

import (
	"math"
	"testing"

	"concord/internal/cost"
	"concord/internal/dist"
	"concord/internal/figures"
	"concord/internal/server"
	"concord/internal/workload"
)

// Each benchmark regenerates one of the paper's tables or figures at
// reduced fidelity (fewer requests and load points than the
// paper-fidelity `concordsim -fig <id>` runs, so the suite finishes in
// minutes). The reported metric is wall time to regenerate the figure;
// b.ReportMetric attaches the figure's headline number where one exists.

// benchOpts returns low-fidelity options sized for benchmarking.
func benchOpts() figures.Options {
	return figures.Options{Requests: 12000, LoadPoints: 5, Seed: 1}
}

// runFigure regenerates figure id b.N times and sanity-checks the shape.
func runFigure(b *testing.B, id string) figures.Table {
	b.Helper()
	gen := figures.All()[id]
	if gen == nil {
		b.Fatalf("unknown figure %q", id)
	}
	var t figures.Table
	for i := 0; i < b.N; i++ {
		t = gen(benchOpts())
	}
	if len(t.Rows) == 0 {
		b.Fatalf("%s produced no rows", id)
	}
	return t
}

func BenchmarkFig02PreemptionMechanisms(b *testing.B) {
	t := runFigure(b, "fig2")
	// Headline: IPI/Concord overhead ratio at a 2µs quantum.
	ipi, cc := t.Column("ipi_pct"), t.Column("concord_pct")
	b.ReportMetric(t.Rows[1][ipi]/t.Rows[1][cc], "ipi/concord@2us")
}

func BenchmarkFig03WorkerIdleJBSQ(b *testing.B) {
	t := runFigure(b, "fig3")
	sq, jb := t.Column("shinjuku_sq_pct"), t.Column("concord_jbsq2_pct")
	b.ReportMetric(t.Rows[1][sq]/math.Max(t.Rows[1][jb], 1e-9), "sq/jbsq@5us")
}

func BenchmarkFig05PreemptionVariance(b *testing.B) {
	t := runFigure(b, "fig5")
	np, pr := t.Column("no_preempt"), t.Column("precise_N5_0")
	last := t.Rows[len(t.Rows)-1]
	b.ReportMetric(last[np]/math.Max(last[pr], 1e-9), "nopreempt/precise@hiload")
}

func BenchmarkFig06BimodalYCSB(b *testing.B)     { runFigure(b, "fig6") }
func BenchmarkFig07BimodalUSR(b *testing.B)      { runFigure(b, "fig7") }
func BenchmarkFig08aFixedOne(b *testing.B)       { runFigure(b, "fig8a") }
func BenchmarkFig08bTPCC(b *testing.B)           { runFigure(b, "fig8b") }
func BenchmarkFig09LevelDB5050(b *testing.B)     { runFigure(b, "fig9") }
func BenchmarkFig10ZippyDB(b *testing.B)         { runFigure(b, "fig10") }
func BenchmarkFig11MechanismLadder(b *testing.B) { runFigure(b, "fig11") }

func BenchmarkFig12PreemptionOverheadBreakdown(b *testing.B) {
	t := runFigure(b, "fig12")
	sh, cc := t.Column("shinjuku_ipi_sq_pct"), t.Column("concord_coop_jbsq_pct")
	var row []float64
	for _, r := range t.Rows {
		if r[0] == 5 {
			row = r
		}
	}
	b.ReportMetric(row[sh]/row[cc], "shinjuku/concord@5us")
}

func BenchmarkFig13SmallVMDispatcher(b *testing.B) { runFigure(b, "fig13") }
func BenchmarkFig14LowLoadZoom(b *testing.B)       { runFigure(b, "fig14") }

func BenchmarkFig15UIPI(b *testing.B) {
	t := runFigure(b, "fig15")
	ui, cc := t.Column("uipi_pct"), t.Column("concord_pct")
	b.ReportMetric(t.Rows[1][ui]/t.Rows[1][cc], "uipi/concord@2us")
}

func BenchmarkTable1Instrumentation(b *testing.B) {
	t := runFigure(b, "table1")
	avg := t.Rows[24]
	ci, cc := t.Column("ci_overhead_pct"), t.Column("concord_overhead_pct")
	b.ReportMetric(avg[ci]/math.Max(avg[cc], 0.01), "ci/concord-avg")
}

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblationJBSQDepth(b *testing.B)  { runFigure(b, "ablation-jbsq-depth") }
func BenchmarkAblationPolicySRPT(b *testing.B) { runFigure(b, "ablation-policy") }
func BenchmarkAblationDeferWhole(b *testing.B) { runFigure(b, "ablation-defer") }

func BenchmarkAblationLogicalQueue(b *testing.B) { runFigure(b, "ablation-logical") }

// BenchmarkAblationDispatcherWork measures the work-conserving
// dispatcher's contribution across core counts (the §2.2.3 small-VM
// argument): fraction of requests the dispatcher completes at fixed
// load with 2 vs 8 workers.
func BenchmarkAblationDispatcherWork(b *testing.B) {
	m := cost.Default()
	wl := workload.LevelDB5050().WL
	var stolen2, stolen8 float64
	for i := 0; i < b.N; i++ {
		p := server.RunParams{Requests: 8000, Seed: uint64(i + 1), MaxCentralQueue: 100000, DrainSlackUS: 50000}
		pt2 := server.RunAt(server.Concord(m, 2, 5), wl, 6, p)
		pt8 := server.RunAt(server.Concord(m, 8, 5), wl, 6, p)
		stolen2, stolen8 = pt2.StolenFrac, pt8.StolenFrac
	}
	b.ReportMetric(100*stolen2, "stolen%-2workers")
	b.ReportMetric(100*stolen8, "stolen%-8workers")
}

// BenchmarkAblationReplication measures the §6 scaling escape hatch:
// splitting one saturated single-dispatcher instance into two relieves
// the dispatcher bottleneck on Fixed(1µs) (compare the p999 metrics).
func BenchmarkAblationReplication(b *testing.B) {
	m := cost.Default()
	cfg := server.Concord(m, 8, 0)
	cfg.Mech = nil
	cfg.WorkConserving = false
	wl := server.Workload{Dist: dist.NewFixed(1)}
	var one, two float64
	for i := 0; i < b.N; i++ {
		p := server.RunParams{Requests: 40000, Seed: uint64(i + 1), MaxCentralQueue: 60000, DrainSlackUS: 20000}
		one = server.RunReplicated(cfg, wl, 5000, 1, p).P999
		two = server.RunReplicated(cfg, wl, 5000, 2, p).P999
	}
	if math.IsInf(one, 1) {
		one = 1e6 // render saturated as a large finite metric
	}
	b.ReportMetric(one, "p999-1dispatcher")
	b.ReportMetric(two, "p999-2dispatchers")
}

// sweepBench holds the fixed grid both sweep benchmarks run: one system
// across 8 load points on the YCSB bimodal workload, 8000 requests per
// point. Serial and parallel produce identical curves (see
// internal/runner); only wall time differs.
func sweepBench(b *testing.B, parallel int) {
	m := cost.Default()
	cfg := server.Concord(m, 14, 5)
	wl := server.Workload{Dist: dist.Bimodal(50, 1, 50, 100)}
	loads := []float64{40, 80, 120, 160, 200, 240, 280, 320}
	p := server.RunParams{Requests: 8000, Seed: 1, MaxCentralQueue: 150000, DrainSlackUS: 50000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if parallel == 1 {
			server.Sweep(cfg, wl, loads, p)
		} else {
			server.SweepParallel(cfg, wl, loads, p, parallel)
		}
	}
	b.ReportMetric(float64(len(loads)*b.N)/b.Elapsed().Seconds(), "runs/s")
}

func BenchmarkSweepSerial(b *testing.B) { sweepBench(b, 1) }

// BenchmarkSweepParallel uses one worker per load point; speedup over
// BenchmarkSweepSerial tracks available cores (≈1× on a 1-core host).
func BenchmarkSweepParallel(b *testing.B) { sweepBench(b, 8) }

// BenchmarkSimulatorThroughput measures raw simulator speed: simulated
// requests per second of wall time on the USR bimodal workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	m := cost.Default()
	cfg := server.Concord(m, 14, 5)
	wl := server.Workload{Dist: dist.Bimodal(99.5, 0.5, 0.5, 500)}
	const n = 20000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := server.RunParams{Requests: n, Seed: uint64(i + 1), MaxCentralQueue: 100000}
		server.RunAt(cfg, wl, 1500, p)
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "sim-req/s")
}

// BenchmarkAblationCacheReload quantifies the cost the default model
// omits: cold-cache refill when a preempted request resumes. On TPCC it
// is the difference between Concord edging Persephone-FCFS (reload 0)
// and trailing it slightly, as the paper observes.
func BenchmarkAblationCacheReload(b *testing.B) {
	wl := server.Workload{Dist: dist.TPCC()}
	var p999Cold, p999Warm float64
	for i := 0; i < b.N; i++ {
		p := server.RunParams{Requests: 30000, Seed: uint64(i + 1), MaxCentralQueue: 150000}
		warm := cost.Default()
		cold := cost.Default()
		cold.PreemptCacheReload = 2000 // ≈1µs of refill per resume
		p999Warm = server.RunAt(server.Concord(warm, 14, 10), wl, 650, p).P999
		p999Cold = server.RunAt(server.Concord(cold, 14, 10), wl, 650, p).P999
	}
	b.ReportMetric(p999Warm, "p999-no-reload")
	b.ReportMetric(p999Cold, "p999-2k-reload")
}
