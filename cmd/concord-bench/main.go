// concord-bench runs the standardized benchmark scenario suite and
// gates regressions.
//
// Run mode executes each selected scenario (warmup repetitions
// discarded, then N measured repetitions), aggregates every metric into
// mean ± CI95, and writes one schema-versioned BENCH_<scenario>.json
// per scenario:
//
//	concord-bench -reps 5 -warmup 1 -outdir .
//
// Compare mode gates a new report against an old one and exits
// non-zero when any metric moved in the worse direction beyond the
// noise band (relative change past -threshold AND 95% confidence
// intervals disjoint):
//
//	concord-bench -compare BENCH_live.json new/BENCH_live.json
//
// With -hermetic only machine-independent metrics (deterministic
// simulator quantiles, allocation counts) gate the exit code;
// machine-bound movements (wall-clock throughput, live latency) are
// printed as advisory. Use it when old and new come from different
// hardware, e.g. comparing a CI run against a checked-in baseline.
//
// -short reduces repetitions only — never per-repetition workload
// sizes — so hermetic metrics from a short run remain comparable to
// full-run baselines, just with wider confidence intervals on the
// machine-bound ones.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"concord/internal/bench"
)

func main() {
	var (
		scenarios = flag.String("scenarios", "all", "comma-separated scenario names, or \"all\"")
		reps      = flag.Int("reps", 5, "measured repetitions per scenario")
		warmup    = flag.Int("warmup", 1, "discarded warmup repetitions per scenario")
		outdir    = flag.String("outdir", ".", "directory for BENCH_<scenario>.json reports")
		short     = flag.Bool("short", false, "cap repetitions at 2 and warmup at 1 (sizes unchanged)")
		compare   = flag.Bool("compare", false, "compare two reports: concord-bench -compare old.json new.json")
		assert    = flag.Bool("assert", false, "assert absolute metric bounds: concord-bench -assert report.json 'metric<value'...")
		threshold = flag.Float64("threshold", 0.10, "relative worse-direction change required to flag")
		hermetic  = flag.Bool("hermetic", false, "gate only hermetic metrics (cross-machine compare)")
		list      = flag.Bool("list", false, "list scenarios and their metrics")
	)
	flag.Parse()

	if *list {
		for _, s := range bench.Scenarios() {
			fmt.Printf("%-6s %s\n", s.Name, s.Describe)
			for _, m := range scenarioMetricNames(s) {
				meta := s.Metrics[m]
				herm := "machine-bound"
				if meta.Hermetic {
					herm = "hermetic"
				}
				fmt.Printf("       %-18s %-7s %s-is-better, %s\n", m, meta.Unit, meta.Better, herm)
			}
		}
		return
	}

	if *compare {
		os.Exit(runCompare(flag.Args(), *threshold, *hermetic))
	}
	if *assert {
		os.Exit(runAssert(flag.Args()))
	}
	os.Exit(runSuite(*scenarios, *reps, *warmup, *outdir, *short))
}

func scenarioMetricNames(s bench.Scenario) []string {
	r := bench.Report{Metrics: map[string]bench.Metric{}}
	for name := range s.Metrics {
		r.Metrics[name] = bench.Metric{}
	}
	return r.MetricNames()
}

func runSuite(scenarios string, reps, warmup int, outdir string, short bool) int {
	if short {
		if reps > 2 {
			reps = 2
		}
		if warmup > 1 {
			warmup = 1
		}
	}
	var selected []bench.Scenario
	if scenarios == "all" {
		selected = bench.Scenarios()
	} else {
		for _, name := range strings.Split(scenarios, ",") {
			s, err := bench.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			selected = append(selected, s)
		}
	}
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, s := range selected {
		r, err := bench.Run(s, warmup, reps, func(msg string) {
			fmt.Fprintln(os.Stderr, msg)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		path := filepath.Join(outdir, "BENCH_"+s.Name+".json")
		if err := r.WriteFile(path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Printf("%s: %d reps (+%d warmup) → %s\n", s.Name, reps, warmup, path)
		for _, name := range r.MetricNames() {
			m := r.Metrics[name]
			fmt.Printf("  %-18s %12.4g ±%-10.3g %s\n", name, m.Mean, m.CI95, m.Unit)
		}
	}
	return 0
}

// runAssert checks absolute bounds of the form "metric<value" against
// one report — compare gates drift relative to a moving baseline, while
// assert pins an invariant to a fixed number (e.g. "allocs/req stays
// strictly below the pre-task-pooling count, whatever the baseline
// currently says").
func runAssert(args []string) int {
	if len(args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: concord-bench -assert report.json 'metric<value'...")
		return 2
	}
	r, err := bench.ReadFile(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	failed := 0
	for _, bound := range args[1:] {
		name, limStr, ok := strings.Cut(bound, "<")
		if !ok {
			fmt.Fprintf(os.Stderr, "concord-bench: malformed bound %q (want metric<value)\n", bound)
			return 2
		}
		lim, err := strconv.ParseFloat(limStr, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "concord-bench: bad bound value in %q: %v\n", bound, err)
			return 2
		}
		m, ok := r.Metrics[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "concord-bench: report %s has no metric %q\n", args[0], name)
			return 2
		}
		if m.Mean < lim {
			fmt.Printf("  ok: %s = %.4g < %g %s\n", name, m.Mean, lim, m.Unit)
		} else {
			fmt.Printf("  ASSERT FAILED: %s = %.4g, want < %g %s\n", name, m.Mean, lim, m.Unit)
			failed++
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}

func runCompare(args []string, threshold float64, hermetic bool) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: concord-bench -compare old.json new.json")
		return 2
	}
	old, err := bench.ReadFile(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	cur, err := bench.ReadFile(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	res, err := bench.Compare(old, cur, threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	fmt.Printf("compare %s: %s vs %s (threshold %.0f%%)\n", res.Scenario, args[0], args[1], threshold*100)
	if res.OldGo != res.NewGo {
		fmt.Printf("  warning: toolchains differ (%s vs %s); allocation counts may shift\n", res.OldGo, res.NewGo)
	}
	for _, name := range res.Missing {
		fmt.Printf("  missing in one report: %s\n", name)
	}
	for _, d := range res.Improvements {
		fmt.Printf("  improved:   %s\n", d)
	}

	gating := res.Regressions
	if hermetic {
		var advisory []bench.Delta
		gating, advisory = bench.FilterHermetic(res.Regressions)
		for _, d := range advisory {
			fmt.Printf("  advisory (machine-bound, not gated): %s\n", d)
		}
	}
	for _, d := range gating {
		fmt.Printf("  REGRESSION: %s\n", d)
	}
	fmt.Printf("  %d stable, %d improved, %d regressed", res.Stable, len(res.Improvements), len(gating))
	if hermetic {
		fmt.Printf(" (hermetic gate)")
	}
	fmt.Println()
	if len(gating) > 0 {
		return 1
	}
	return 0
}
