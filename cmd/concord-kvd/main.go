// Command concord-kvd serves the in-memory key-value store over TCP on
// top of the live Concord runtime — the LevelDB-server experiment of
// §5.3 as a runnable system.
//
// Protocol (text, one request per line):
//
//	GET <key>            -> VALUE <value> | NOTFOUND
//	PUT <key> <value>    -> OK
//	DEL <key>            -> OK | NOTFOUND
//	SCAN                 -> COUNT <n>
//	SPIN <micros>        -> OK            (synthetic spin request)
//	STATS                -> submitted/completed/rejected/... counters
//
// Failure responses are single tokens clients can branch on: DEADLINE
// (request timeout exceeded), OVERLOADED (submit queue full), STOPPED
// (server draining), or ERR <msg> for everything else.
//
// On SIGINT/SIGTERM the server stops accepting, drains in-flight
// requests (bounded by -drain), answers late requests with STOPPED, and
// exits cleanly.
//
// Flags choose worker count, quantum, JBSQ depth, and work conservation;
// defaults mirror the paper's Concord configuration scaled to small
// machines.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"concord/internal/kv"
	"concord/internal/live"
)

// kvHandler adapts the store to the live runtime's Handler interface.
type kvHandler struct {
	store     *kv.Store
	scanBatch int
}

func (h *kvHandler) Setup()          {}
func (h *kvHandler) SetupWorker(int) {}

// request is one parsed protocol command.
type request struct {
	op         string
	key, value []byte
}

func (h *kvHandler) Handle(ctx *live.Ctx, payload any) (any, error) {
	req := payload.(request)
	switch req.op {
	case "GET":
		// Point queries hold the store lock: bracket them with a
		// no-preempt section (the paper's 4-line lock counter, §3.1).
		ctx.BeginNoPreempt()
		v, ok := h.store.Get(req.key)
		ctx.EndNoPreempt()
		if !ok {
			return "NOTFOUND", nil
		}
		return "VALUE " + string(v), nil
	case "PUT":
		ctx.BeginNoPreempt()
		h.store.Put(req.key, req.value)
		ctx.EndNoPreempt()
		return "OK", nil
	case "DEL":
		ctx.BeginNoPreempt()
		ok := h.store.Delete(req.key)
		ctx.EndNoPreempt()
		if !ok {
			return "NOTFOUND", nil
		}
		return "OK", nil
	case "SCAN":
		// Range queries iterate in batches, polling for preemption
		// between batches so a database-wide scan yields cooperatively.
		n := 0
		cursor := []byte(nil)
		for {
			cursor = h.store.ScanBatch(cursor, h.scanBatch, func(_, _ []byte) bool {
				n++
				return true
			})
			if cursor == nil {
				return fmt.Sprintf("COUNT %d", n), nil
			}
			ctx.Poll()
		}
	case "SPIN":
		us, err := strconv.Atoi(string(req.key))
		if err != nil || us < 0 {
			return nil, fmt.Errorf("bad SPIN duration %q", req.key)
		}
		ctx.Spin(time.Duration(us) * time.Microsecond)
		return "OK", nil
	default:
		return nil, fmt.Errorf("unknown op %q", req.op)
	}
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7070", "listen address")
		workers    = flag.Int("workers", 2, "worker threads")
		quantum    = flag.Duration("quantum", 200*time.Microsecond, "scheduling quantum (0 disables preemption)")
		bound      = flag.Int("k", 2, "JBSQ queue bound")
		steal      = flag.Bool("steal", true, "work-conserving dispatcher")
		keys       = flag.Int("keys", 15000, "pre-populated unique keys (paper: 15,000)")
		valSize    = flag.Int("valsize", 64, "value size in bytes")
		scanStep   = flag.Int("scanbatch", 256, "keys per scan batch between preemption polls")
		reqTimeout = flag.Duration("reqtimeout", 0, "per-request deadline; expired requests answer DEADLINE (0 disables)")
		drain      = flag.Duration("drain", 5*time.Second, "graceful-drain bound on shutdown (0 waits for all in-flight)")
		wtimeout   = flag.Duration("wtimeout", 5*time.Second, "per-response connection write deadline (0 disables)")
	)
	flag.Parse()

	store := kv.New()
	val := strings.Repeat("v", *valSize)
	for i := 0; i < *keys; i++ {
		store.Put([]byte(fmt.Sprintf("key%08d", i)), []byte(val))
	}

	srv := live.New(&kvHandler{store: store, scanBatch: *scanStep}, live.Options{
		Workers:        *workers,
		Quantum:        *quantum,
		QueueBound:     *bound,
		WorkConserving: *steal,
		RequestTimeout: *reqTimeout,
		DrainTimeout:   *drain,
	})
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("concord-kvd on %s: %d workers, quantum %v, JBSQ(%d), steal=%v, %d keys",
		*addr, *workers, *quantum, *bound, *steal, *keys)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		log.Printf("received %v: draining (bound %v)", sig, *drain)
		ln.Close() // unblocks Accept; the loop below starts the drain
	}()

	var (
		connMu sync.Mutex
		conns  = make(map[net.Conn]struct{})
		connWG sync.WaitGroup
	)
	for {
		conn, err := ln.Accept()
		if err != nil {
			break // listener closed by the signal handler
		}
		connMu.Lock()
		conns[conn] = struct{}{}
		connMu.Unlock()
		connWG.Add(1)
		go func() {
			defer connWG.Done()
			serveConn(conn, srv, *wtimeout)
			connMu.Lock()
			delete(conns, conn)
			connMu.Unlock()
		}()
	}

	// Drain: complete every accepted request (bounded by -drain; late
	// submissions answer STOPPED), then give connection readers a short
	// grace window — requests already in flight from clients get a
	// STOPPED response instead of a connection reset — and wait for
	// them to finish writing their final responses.
	srv.Stop()
	connMu.Lock()
	for c := range conns {
		c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	}
	connMu.Unlock()
	connWG.Wait()
	st := srv.Stats()
	log.Printf("drained: submitted=%d completed=%d rejected=%d expired=%d aborted=%d",
		st.Submitted, st.Completed, st.Rejected, st.Expired, st.Aborted)
}

func serveConn(conn net.Conn, srv *live.Server, wtimeout time.Duration) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	out := bufio.NewWriter(conn)
	// flush writes the buffered response under a write deadline so a
	// client that stops reading cannot pin this goroutine forever.
	flush := func() bool {
		if wtimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(wtimeout))
		}
		if err := out.Flush(); err != nil {
			return false
		}
		return true
	}
	for sc.Scan() {
		line := sc.Text()
		if line == "STATS" {
			st := srv.Stats()
			fmt.Fprintf(out, "STATS submitted=%d completed=%d rejected=%d expired=%d aborted=%d preemptions=%d stolen=%d\n",
				st.Submitted, st.Completed, st.Rejected, st.Expired, st.Aborted, st.Preemptions, st.Stolen)
			if !flush() {
				return
			}
			continue
		}
		req, err := parse(line)
		if err != nil {
			fmt.Fprintf(out, "ERR %v\n", err)
			if !flush() {
				return
			}
			continue
		}
		resp := srv.Do(req)
		switch {
		case resp.Err == nil:
			fmt.Fprintf(out, "%s\n", resp.Payload)
		case errors.Is(resp.Err, live.ErrDeadlineExceeded):
			fmt.Fprintln(out, "DEADLINE")
		case errors.Is(resp.Err, live.ErrQueueFull):
			fmt.Fprintln(out, "OVERLOADED")
		case errors.Is(resp.Err, live.ErrServerStopped):
			fmt.Fprintln(out, "STOPPED")
		default:
			fmt.Fprintf(out, "ERR %v\n", resp.Err)
		}
		if !flush() {
			return
		}
	}
}

func parse(line string) (request, error) {
	parts := strings.SplitN(line, " ", 3)
	op := strings.ToUpper(parts[0])
	switch op {
	case "GET", "DEL", "SPIN":
		if len(parts) < 2 {
			return request{}, fmt.Errorf("%s needs a key", op)
		}
		return request{op: op, key: []byte(parts[1])}, nil
	case "PUT":
		if len(parts) < 3 {
			return request{}, fmt.Errorf("PUT needs key and value")
		}
		return request{op: op, key: []byte(parts[1]), value: []byte(parts[2])}, nil
	case "SCAN":
		return request{op: op}, nil
	default:
		return request{}, fmt.Errorf("unknown op %q", parts[0])
	}
}
