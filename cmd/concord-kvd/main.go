// Command concord-kvd serves the in-memory key-value store over TCP on
// top of the live Concord runtime — the LevelDB-server experiment of
// §5.3 as a runnable system.
//
// Each connection speaks one of two protocols, auto-detected from its
// first byte (see internal/netsrv and DESIGN.md §Wire protocol):
//
// Text (one request per line, lockstep):
//
//	GET <key>            -> VALUE <value> | NOTFOUND
//	PUT <key> <value>    -> OK
//	DEL <key>            -> OK | NOTFOUND
//	SCAN                 -> COUNT <n>
//	SPIN <micros>        -> OK            (synthetic spin request)
//	STATS                -> lifetime counters + live queue depths
//	OBS ON|OFF           -> OK            (append |OBS latency-breakdown
//	                                       trailers to this connection's
//	                                       responses; needs -obs)
//	TRACE <n>            -> last n request timelines, terminated by END
//	DECISIONS <n>        -> last n adaptive-controller decisions, one
//	                        key=value line each, terminated by END
//	                        (needs -adaptive)
//
// Binary (length-prefixed frames, pipelined): the same data ops framed
// with a request id, many in flight per connection, responses coalesced
// into batched flushes and matched by id — the massive-fan-in path.
// concord-load drives it with -proto binary.
//
// With -obs ADDR the server also serves HTTP on ADDR: /metrics is
// Prometheus text exposition of all counters, queue depths, per-op
// latency-component histograms (including the wire phases ingress and
// egress), the connection-layer families (frames, flush batches with
// p50/p99, pipeline depth), the Go runtime health families
// (concord_go_*: GC pauses, scheduler latencies, goroutines, heap), and
// a concord_build_info gauge; /healthz answers 200 ok while serving and
// 503 draining once shutdown begins; /debug/pprof/* is net/http/pprof.
// The same flag enables the in-process lifecycle tracer that backs
// TRACE and the |OBS trailers — with -obs the tracer also follows each
// request across the wire path (frame read, parse, flush), so
// breakdowns partition the full wire-to-wire time — and without it
// tracing costs one branch per event.
//
// -obs also turns on time-windowed tail tracking: rolling
// p50/p99/p99.9 latency over the -windows horizons (default
// 1s/10s/60s) and SLO error-budget accounting against -slotarget /
// -sloobjective with Google-SRE-style multi-window (5m+1h) burn rates.
// Both surface as gauges on /metrics (concord_rolling_latency_us,
// concord_slo_*) and as extra STATS fields (p50_1s=..., burn_short=,
// burn_long=, slo_alerting=).
//
// -adaptive runs the scheduling control plane (internal/adapt): a
// 50ms-period controller that walks the preemption quantum by AIMD
// between -adapt-minq and -adapt-maxq chasing -slotarget, derives
// tighter quanta for point ops and looser ones for scans, and switches
// the central-queue discipline fcfs↔srpt (with hysteresis) as the
// workload's service-time dispersion crosses the CV≈1 threshold. Its
// state surfaces as concord_adapt_* metric families and adapt_* STATS
// fields. Every control tick is also recorded in a fixed-size decision
// ring — inputs (CV, tails, burn rates) plus the action taken — read
// back with the DECISIONS verb, dumped as JSON at shutdown with
// -decisiondump, and counted per action in
// concord_adapt_decisions_total.
//
// Failure responses are single tokens clients can branch on: DEADLINE
// (request timeout exceeded), OVERLOADED (submit queue full), STOPPED
// (server draining), TOOLARGE (request over -maxreq), or ERR <msg> for
// everything else. Binary responses carry the equivalent status byte.
//
// On SIGINT/SIGTERM the server stops accepting, drains in-flight
// requests (bounded by -drain), answers late requests with STOPPED, and
// exits cleanly.
//
// Flags choose worker count, quantum, JBSQ depth, and work conservation;
// defaults mirror the paper's Concord configuration scaled to small
// machines. -shards splits the dispatcher into N shards, each owning a
// disjoint worker subset with its own central queue (idle shards steal
// never-started requests from the longest sibling queue), and -policy
// picks the central-queue discipline: fcfs, or srpt ordered by each
// op's service-time estimate (SPIN hints its requested duration).
// Per-shard queue depth and occupancy surface as
// concord_shard_queue_depth / concord_shard_occupancy gauges and as the
// shardq=/shardocc= STATS fields; cross-shard migrations count in
// concord_steals_total / steals=.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"concord/internal/adapt"
	"concord/internal/kv"
	"concord/internal/live"
	"concord/internal/netsrv"
	"concord/internal/obs"
	"concord/internal/proto"
	"concord/internal/shadow"
	"concord/internal/trace"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7070", "listen address")
		workers    = flag.Int("workers", 2, "worker threads")
		quantum    = flag.Duration("quantum", 200*time.Microsecond, "scheduling quantum (0 disables preemption)")
		bound      = flag.Int("k", 2, "JBSQ queue bound")
		shards     = flag.Int("shards", 1, "dispatcher shards, each owning a disjoint worker subset (clamped to [1,workers])")
		policyName = flag.String("policy", live.PolicyFCFS, "central-queue discipline: fcfs, srpt (ordered by per-op service hints), cascade, or cascade-srpt (strict SLO-class tiers, fcfs/srpt within each tier)")
		steal      = flag.Bool("steal", true, "work-conserving dispatcher")
		keys       = flag.Int("keys", 15000, "pre-populated unique keys (paper: 15,000)")
		valSize    = flag.Int("valsize", 64, "value size in bytes")
		scanStep   = flag.Int("scanbatch", 256, "keys per scan batch between preemption polls")
		maxReq     = flag.Int("maxreq", 1<<20, "maximum request size in bytes (binary frame body or text line); larger requests answer TOOLARGE")
		reqTimeout = flag.Duration("reqtimeout", 0, "per-request deadline; expired requests answer DEADLINE (0 disables)")
		drain      = flag.Duration("drain", 5*time.Second, "graceful-drain bound on shutdown (0 waits for all in-flight)")
		wtimeout   = flag.Duration("wtimeout", 5*time.Second, "per-response connection write deadline (0 disables)")
		obsAddr    = flag.String("obs", "", "serve Prometheus /metrics and /debug/pprof on this address and enable lifecycle tracing (empty disables)")
		traceBuf   = flag.Int("tracebuf", 4096, "per-writer trace ring capacity in events (rounded up to a power of two)")
		traceDump  = flag.String("tracedump", "", "on shutdown, write the trace rings as Chrome trace_event JSON (Perfetto-loadable) to this file; needs -obs")
		windows    = flag.String("windows", "1s,10s,60s", "rolling tail-quantile windows, comma-separated durations (needs -obs)")
		sloTarget  = flag.Duration("slotarget", 200*time.Microsecond, "SLO latency target: requests served within it count good (0 disables SLO tracking; needs -obs)")
		sloObj     = flag.Float64("sloobjective", 0.999, "SLO good-ratio objective; the error budget is 1-objective")
		sloBurn    = flag.Float64("sloburn", 14.4, "SLO burn-rate alert threshold over the 5m+1h windows")
		adaptive   = flag.Bool("adaptive", false, "run the scheduling control plane: adjust the preemption quantum against -slotarget, set per-class quanta, and switch fcfs<->srpt as the workload's service-time dispersion drifts")
		adaptEvery = flag.Duration("adapt-interval", 50*time.Millisecond, "control-plane period (needs -adaptive)")
		adaptMinQ  = flag.Duration("adapt-minq", 5*time.Microsecond, "adaptive quantum floor (needs -adaptive)")
		adaptMaxQ  = flag.Duration("adapt-maxq", 500*time.Microsecond, "adaptive quantum ceiling (needs -adaptive)")
		decDump    = flag.String("decisiondump", "", "on shutdown, write the adaptive controller's decision log as JSON to this file (needs -adaptive)")
		shadowOn   = flag.Bool("shadow", false, "run the counterfactual shadow replayer: sample completed requests and periodically replay them through the deterministic simulator under fcfs, srpt-on-hints, and oracle-srpt, publishing per-policy regret (SHADOW verb, regret_* STATS fields, concord_regret_* metrics)")
		shadowInt  = flag.Duration("shadow-interval", time.Second, "shadow replay period (needs -shadow)")
		shadowRate = flag.Int("shadow-rate", 16, "capture 1 in N completed requests for shadow replay (needs -shadow)")
		shadowDump = flag.String("shadowdump", "", "on shutdown, write the shadow replayer's window history as JSON to this file (needs -shadow)")
		classes    = flag.Bool("classes", false, "enable SLO-class multi-tenancy: per-class admission (reserved critical capacity, sheddable shed first with SHED), per-class tail/SLO accounting, and class-aware preemption")
	)
	flag.Parse()

	if !live.ValidPolicy(*policyName) {
		log.Fatalf("-policy: unknown discipline %q (have fcfs, srpt, cascade, cascade-srpt)", *policyName)
	}
	// The server clamps Shards to [1,Workers]; mirror that here so the
	// tracer's ring layout matches the shard count live actually uses.
	effShards := *shards
	if effShards < 1 {
		effShards = 1
	}
	if *workers > 0 && effShards > *workers {
		effShards = *workers
	}

	store := kv.New()
	val := strings.Repeat("v", *valSize)
	for i := 0; i < *keys; i++ {
		store.Put([]byte(fmt.Sprintf("key%08d", i)), []byte(val))
	}

	var tracer *obs.Tracer
	var tail *obs.TailTracker
	// The tail tracker feeds both the obs surface and the adaptive
	// controller's quantum loop, so either flag brings it up.
	if *obsAddr != "" || *adaptive {
		wins, err := parseWindows(*windows)
		if err != nil {
			log.Fatalf("-windows: %v", err)
		}
		var slo *obs.SLOTracker
		if *sloTarget > 0 {
			slo = obs.NewSLOTracker(obs.SLOConfig{
				Target:    *sloTarget,
				Objective: *sloObj,
				BurnAlert: *sloBurn,
			})
		}
		tail = obs.NewTailTracker(wins, slo)
	}
	if *obsAddr != "" {
		tracer = obs.NewTracerSharded(*workers, effShards, *traceBuf)
	}
	// Per-class service-time sketches feed the svc_time/hint-error
	// metric families and give the adaptive controller measured
	// quantiles to derive class quanta from; any observer or control
	// surface wants them.
	var sketches *obs.ClassSketches
	if *obsAddr != "" || *adaptive || *shadowOn {
		sketches = obs.NewClassSketches(live.NumClasses)
	}
	var capRing *live.CaptureRing
	if *shadowOn {
		capRing = live.NewCaptureRing(4096, *shadowRate)
	}
	// Per-class tail/SLO trackers: each class measures against its own
	// latency objective, so "critical met its SLO, sheddable burned" is a
	// direct read rather than an inference from the aggregate tail.
	var ctails *obs.ClassTails
	if *classes || *obsAddr != "" {
		slos := make([]obs.ClassSLO, live.NumClasses)
		for c := live.SLOClass(0); c < live.NumClasses; c++ {
			slos[c] = obs.ClassSLO{Target: c.DefaultObjective(), Objective: *sloObj}
		}
		ctails = obs.NewClassTails(slos, nil)
	}
	var cvEst *adapt.CVEstimator
	liveOpts := live.Options{
		Workers:        *workers,
		Shards:         effShards,
		Policy:         *policyName,
		Quantum:        *quantum,
		QueueBound:     *bound,
		WorkConserving: *steal,
		RequestTimeout: *reqTimeout,
		DrainTimeout:   *drain,
		Tracer:         tracer,
		Tail:           tail,
		Sketches:       sketches,
		Capture:        capRing,
		ClassAdmission: *classes,
		ClassTails:     ctails,
	}
	if *adaptive {
		cvEst = &adapt.CVEstimator{}
		liveOpts.Adaptive = true
		liveOpts.ServiceObserver = cvEst.Observe
	}
	srv := live.New(&netsrv.KVHandler{Store: store, ScanBatch: *scanStep}, liveOpts)
	srv.Start()

	var replayer *shadow.Replayer
	if *shadowOn {
		replayer = shadow.NewReplayer(capRing, shadow.Config{
			Workers:        *workers,
			QuantumUS:      float64(*quantum) / float64(time.Microsecond),
			QueueBound:     *bound,
			WorkConserving: *steal,
		}, *shadowInt)
		replayer.Start()
		log.Printf("shadow replay: 1-in-%d capture, %v windows, policies %s",
			*shadowRate, *shadowInt, strings.Join(shadow.Policies(), "/"))
	}

	var ctrl *adapt.Controller
	var adaptStop chan struct{}
	if *adaptive {
		acfg := adapt.Config{
			Interval:   *adaptEvery,
			MinQuantum: *adaptMinQ,
			MaxQuantum: *adaptMaxQ,
			SLOTarget:  *sloTarget,
			ClassScales: map[int]float64{
				int(live.ClassCritical):  0.5, // preempt whatever delays critical work sooner
				int(live.ClassSheddable): 4,   // background traffic: fewer, cheaper preemptions
			},
			ClassTiers: map[int]int{
				int(live.ClassStandard):  live.ClassStandard.Tier(),
				int(live.ClassCritical):  live.ClassCritical.Tier(),
				int(live.ClassSheddable): live.ClassSheddable.Tier(),
			},
		}
		if sketches != nil {
			// Measured per-class p90 service times replace the static
			// ratios once traffic has primed the sketches; ClassScales
			// stays as the cold-start fallback.
			acfg.ClassSvcNS = func() []float64 { return sketches.ServiceQuantilesNS(0.90) }
		}
		ctrl = adapt.New(srv, acfg)
		adaptStop = make(chan struct{})
		src := adapt.Sources{Tail: tail, CV: cvEst}
		if replayer != nil {
			src.Regret = func() float64 { return replayer.Latest().RegretRatio() }
		}
		go ctrl.Run(src, adaptStop)
		log.Printf("adaptive control plane: interval %v, quantum bounds [%v, %v], slo target %v",
			*adaptEvery, *adaptMinQ, *adaptMaxQ, *sloTarget)
	}

	var ob *kvObs
	nopts := netsrv.Options{
		MaxReq:       *maxReq,
		WriteTimeout: *wtimeout,
		Tracer:       tracer,
	}
	var ns *netsrv.Server
	nopts.Control = func(out io.Writer, line string, obsOn *bool) bool {
		return serveControl(out, line, srv, ns, ob, ctrl, sketches, ctails, replayer, obsOn)
	}
	if tracer != nil {
		nopts.Observe = func(op byte, resp live.Response) { ob.observe(proto.OpString(op), resp) }
		nopts.ObserveEgress = func(op byte, egress time.Duration) { ob.observeEgress(proto.OpString(op), egress) }
		nopts.Trailer = obsTrailer
	}
	ns = netsrv.New(srv, nopts)

	// draining flips before the listener closes so /healthz readiness
	// goes false the moment the drain begins, not after it completes.
	var draining atomic.Bool
	if tracer != nil {
		ob = newKVObs(tracer, tail, ctails, ctrl, srv, ns, sketches, replayer, *workers, effShards)
		obsLn, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			log.Fatalf("obs listen: %v", err)
		}
		http.Handle("/metrics", ob.metrics)
		http.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			if draining.Load() {
				http.Error(w, "draining", http.StatusServiceUnavailable)
				return
			}
			io.WriteString(w, "ok\n")
		})
		go func() {
			if err := http.Serve(obsLn, nil); err != nil {
				log.Printf("obs server: %v", err)
			}
		}()
		log.Printf("obs: metrics+pprof+healthz on %s, trace rings %d events/writer", obsLn.Addr(), *traceBuf)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("concord-kvd on %s: %d workers, %d shards, policy %s, quantum %v, JBSQ(%d), steal=%v, %d keys, maxreq %d",
		ln.Addr(), *workers, effShards, *policyName, *quantum, *bound, *steal, *keys, *maxReq)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		log.Printf("received %v: draining (bound %v)", sig, *drain)
		draining.Store(true) // /healthz reports not-ready from here on
		ln.Close()           // unblocks Accept; Serve returns and the drain begins
	}()

	ns.Serve(ln)

	if adaptStop != nil {
		close(adaptStop) // stop steering before the drain begins
	}
	if replayer != nil {
		replayer.Stop() // periodic loop off; the final window scores below
	}
	// Drain: complete every accepted request (bounded by -drain; late
	// submissions answer STOPPED), then give connection readers a short
	// grace window — requests already in flight from clients get a
	// STOPPED response instead of a connection reset — and wait for
	// them to finish writing their final responses.
	srv.Stop()
	ns.Drain(200 * time.Millisecond)
	st := srv.Stats()
	nst := ns.NetStats()
	log.Printf("drained: submitted=%d completed=%d rejected=%d expired=%d aborted=%d frames_in=%d frames_out=%d flushes=%d",
		st.Submitted, st.Completed, st.Rejected, st.Expired, st.Aborted, nst.FramesIn, nst.FramesOut, nst.Flushes)
	if tracer != nil && *traceDump != "" {
		f, err := os.Create(*traceDump)
		if err != nil {
			log.Fatalf("tracedump: %v", err)
		}
		events := tracer.Snapshot()
		if err := obs.WriteChromeTrace(f, events); err != nil {
			log.Fatalf("tracedump: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("tracedump: %v", err)
		}
		log.Printf("tracedump: wrote %d events to %s (open in https://ui.perfetto.dev)", len(events), *traceDump)
	}
	if replayer != nil {
		// Score whatever the capture ring still holds so short runs and
		// the shutdown dump see at least one window.
		replayer.ReplayOnce()
		if *shadowDump != "" {
			f, err := os.Create(*shadowDump)
			if err != nil {
				log.Fatalf("shadowdump: %v", err)
			}
			if err := replayer.WriteDump(f); err != nil {
				log.Fatalf("shadowdump: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatalf("shadowdump: %v", err)
			}
			windows, skipped := replayer.Counts()
			log.Printf("shadowdump: wrote %d windows (%d skipped) to %s", windows, skipped, *shadowDump)
		}
	}
	if ctrl != nil && *decDump != "" {
		f, err := os.Create(*decDump)
		if err != nil {
			log.Fatalf("decisiondump: %v", err)
		}
		decs := ctrl.Decisions(0)
		if err := adapt.WriteDecisionDump(f, *adaptEvery, decs); err != nil {
			log.Fatalf("decisiondump: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("decisiondump: %v", err)
		}
		log.Printf("decisiondump: wrote %d decisions to %s", len(decs), *decDump)
	}
}

// parseWindows parses a comma-separated duration list, ascending
// de-dup not required (obs sorts); empty entries are rejected.
func parseWindows(s string) ([]time.Duration, error) {
	var out []time.Duration
	for _, part := range strings.Split(s, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if d <= 0 {
			return nil, fmt.Errorf("window %q must be positive", part)
		}
		out = append(out, d)
	}
	return out, nil
}

// fmtWindow renders a window for STATS keys and metric labels: whole
// seconds as "10s"/"60s" (time.Duration.String would say "1m0s"),
// anything else via Duration.String.
func fmtWindow(d time.Duration) string {
	if d%time.Second == 0 {
		return fmt.Sprintf("%ds", int(d/time.Second))
	}
	return d.String()
}

// kvObs bundles the optional observability surface: the lifecycle
// tracer, the rolling tail/SLO tracker, the metrics registry, and
// per-op latency-component histograms fed from completed responses.
type kvObs struct {
	tracer  *obs.Tracer
	tail    *obs.TailTracker
	metrics *obs.Metrics
	perOp   map[string]*opHists // fixed key set; read-only after init
}

type opHists struct {
	total, handoff, queue, service, preempted trace.Histogram
	ingress, egress                           trace.Histogram // wire phases
}

// classNames labels the SLO classes (live.SLOClass values, in index
// order) on per-class metric families and STATS fields.
var classNames = []string{"standard", "critical", "sheddable"}

func newKVObs(tracer *obs.Tracer, tail *obs.TailTracker, ctails *obs.ClassTails, ctrl *adapt.Controller, srv *live.Server, ns *netsrv.Server, sketches *obs.ClassSketches, replayer *shadow.Replayer, workers, shards int) *kvObs {
	ob := &kvObs{tracer: tracer, tail: tail, metrics: &obs.Metrics{}, perOp: map[string]*opHists{}}
	m := ob.metrics
	counter := func(name, help string, f func(live.Stats) uint64) {
		m.RegisterCounter(name, help, func() float64 { return float64(f(srv.Stats())) })
	}
	counter("concord_submitted_total", "requests accepted", func(s live.Stats) uint64 { return s.Submitted })
	counter("concord_completed_total", "responses delivered", func(s live.Stats) uint64 { return s.Completed })
	counter("concord_rejected_total", "requests never accepted", func(s live.Stats) uint64 { return s.Rejected })
	counter("concord_expired_total", "requests past their deadline", func(s live.Stats) uint64 { return s.Expired })
	counter("concord_aborted_total", "requests failed by drain abort", func(s live.Stats) uint64 { return s.Aborted })
	counter("concord_preemptions_total", "request yields", func(s live.Stats) uint64 { return s.Preemptions })
	counter("concord_dispatcher_run_total", "requests completed by a work-conserving dispatcher (own-queue or stolen)", func(s live.Stats) uint64 { return s.DispatcherRun })
	counter("concord_steals_total", "never-started requests migrated between shards", func(s live.Stats) uint64 { return s.Steals })
	counter("concord_shed_total", "sheddable requests dropped by class admission", func(s live.Stats) uint64 { return s.Shed })
	for class, name := range classNames {
		class, name := class, name
		counter(fmt.Sprintf(`concord_class_requests_total{class="%s",result="submitted"}`, name),
			"per-SLO-class request outcomes", func(s live.Stats) uint64 { return s.ClassSubmitted[class] })
		counter(fmt.Sprintf(`concord_class_requests_total{class="%s",result="completed"}`, name),
			"per-SLO-class request outcomes", func(s live.Stats) uint64 { return s.ClassCompleted[class] })
		counter(fmt.Sprintf(`concord_class_requests_total{class="%s",result="rejected"}`, name),
			"per-SLO-class request outcomes", func(s live.Stats) uint64 { return s.ClassRejected[class] })
	}
	if ctails != nil {
		for class, name := range classNames {
			ct, name := ctails.Tail(class), name
			if ct == nil {
				continue
			}
			win := ct.Windows()[0]
			for _, q := range []struct {
				label string
				q     float64
			}{{"p50", 0.50}, {"p99", 0.99}} {
				q := q
				m.RegisterGauge(
					fmt.Sprintf(`concord_class_latency_us{class="%s",quantile="%s"}`, name, q.label),
					"per-SLO-class rolling latency quantiles in microseconds (shortest window)",
					func() float64 { return ct.Quantile(win, q.q) })
			}
			if slo := ct.SLO(); slo != nil {
				m.RegisterGauge(fmt.Sprintf(`concord_class_slo_attainment{class="%s"}`, name),
					"per-SLO-class good-request ratio over the long SLO window (1 = every request within the class objective)",
					func() float64 {
						s := slo.Snapshot()
						if s.LongTotal == 0 {
							return 1
						}
						return float64(s.LongGood) / float64(s.LongTotal)
					})
			}
		}
	}
	m.RegisterGauge(`concord_queue_depth{queue="submit"}`, "live queue occupancy",
		func() float64 { return float64(srv.Depths().Submit) })
	m.RegisterGauge(`concord_queue_depth{queue="central"}`, "live queue occupancy",
		func() float64 { return float64(srv.Depths().Central) })
	for w := 0; w < workers; w++ {
		w := w
		m.RegisterGauge(fmt.Sprintf(`concord_worker_occupancy{worker="%d"}`, w),
			"JBSQ occupancy incl. in-service", func() float64 { return float64(srv.Depths().Workers[w]) })
	}
	for sh := 0; sh < shards; sh++ {
		sh := sh
		m.RegisterGauge(fmt.Sprintf(`concord_shard_queue_depth{shard="%d"}`, sh),
			"per-shard central-queue length", func() float64 { return float64(srv.Depths().ShardQueues[sh]) })
		m.RegisterGauge(fmt.Sprintf(`concord_shard_occupancy{shard="%d"}`, sh),
			"per-shard sum of worker JBSQ occupancy", func() float64 { return float64(srv.Depths().ShardOcc[sh]) })
	}
	if ns != nil {
		netCounter := func(name, help string, f func(netsrv.NetStats) float64) {
			m.RegisterCounter(name, help, func() float64 { return f(ns.NetStats()) })
		}
		m.RegisterGauge("concord_net_connections", "currently open client connections",
			func() float64 { return float64(ns.NetStats().Conns) })
		m.RegisterGauge("concord_net_pipeline_depth", "binary frames submitted whose response has not yet flushed",
			func() float64 { return float64(ns.NetStats().Pipeline) })
		netCounter(`concord_net_frames_total{dir="in"}`, "binary frames decoded/written",
			func(s netsrv.NetStats) float64 { return float64(s.FramesIn) })
		netCounter(`concord_net_frames_total{dir="out"}`, "binary frames decoded/written",
			func(s netsrv.NetStats) float64 { return float64(s.FramesOut) })
		netCounter("concord_net_flushes_total", "batched response writes",
			func(s netsrv.NetStats) float64 { return float64(s.Flushes) })
		netCounter("concord_net_text_lines_total", "text-protocol lines served",
			func(s netsrv.NetStats) float64 { return float64(s.TextLines) })
		netCounter("concord_net_toolarge_total", "requests rejected for exceeding -maxreq",
			func(s netsrv.NetStats) float64 { return float64(s.TooLarge) })
		netCounter("concord_net_bad_frames_total", "frames with unknown opcode or undecodable body",
			func(s netsrv.NetStats) float64 { return float64(s.BadFrames) })
		m.RegisterHistogram("concord_net_flush_batch", "responses coalesced per flush", ns.FlushBatch())
		for _, fq := range []struct {
			label string
			q     float64
		}{{"p50", 0.50}, {"p99", 0.99}} {
			fq := fq
			m.RegisterGauge(fmt.Sprintf(`concord_net_flush_batch_quantile{quantile="%s"}`, fq.label),
				"flush-batch size quantiles (responses coalesced per flush)",
				func() float64 {
					s := ns.FlushBatch().Snapshot()
					if s.Count == 0 {
						return 0
					}
					return s.Quantile(fq.q)
				})
		}
	}
	if tail != nil {
		for _, w := range tail.Windows() {
			w := w
			for _, q := range []struct {
				label string
				q     float64
			}{{"p50", 0.50}, {"p99", 0.99}, {"p999", 0.999}} {
				q := q
				m.RegisterGauge(
					fmt.Sprintf(`concord_rolling_latency_us{window="%s",quantile="%s"}`, fmtWindow(w), q.label),
					"rolling latency quantiles over trailing windows in microseconds",
					func() float64 { return tail.Quantile(w, q.q) })
			}
		}
		if slo := tail.SLO(); slo != nil {
			m.RegisterGauge(`concord_slo_burn_rate{window="short"}`,
				"SLO error-budget burn rate (bad ratio / budget) over the short and long windows",
				func() float64 { return slo.Snapshot().ShortBurn })
			m.RegisterGauge(`concord_slo_burn_rate{window="long"}`,
				"SLO error-budget burn rate (bad ratio / budget) over the short and long windows",
				func() float64 { return slo.Snapshot().LongBurn })
			m.RegisterGauge(`concord_slo_requests{window="short",result="good"}`,
				"windowed SLO request counts",
				func() float64 { return float64(slo.Snapshot().ShortGood) })
			m.RegisterGauge(`concord_slo_requests{window="short",result="total"}`,
				"windowed SLO request counts",
				func() float64 { return float64(slo.Snapshot().ShortTotal) })
			m.RegisterGauge(`concord_slo_requests{window="long",result="good"}`,
				"windowed SLO request counts",
				func() float64 { return float64(slo.Snapshot().LongGood) })
			m.RegisterGauge(`concord_slo_requests{window="long",result="total"}`,
				"windowed SLO request counts",
				func() float64 { return float64(slo.Snapshot().LongTotal) })
			m.RegisterGauge("concord_slo_alerting",
				"1 while both burn-rate windows exceed the alert threshold",
				func() float64 {
					if slo.Snapshot().Alerting {
						return 1
					}
					return 0
				})
		}
	}
	if ctrl != nil {
		m.RegisterGauge("concord_adapt_policy",
			"active central-queue discipline: 0 fcfs, 1 srpt",
			func() float64 {
				if ctrl.Status().Policy == live.PolicySRPT {
					return 1
				}
				return 0
			})
		m.RegisterGauge("concord_adapt_quantum_us",
			"adaptive base preemption quantum in microseconds",
			func() float64 { return float64(ctrl.Status().Quantum) / float64(time.Microsecond) })
		m.RegisterGauge("concord_adapt_cv",
			"smoothed service-time coefficient of variation",
			func() float64 { return ctrl.Status().CV })
		m.RegisterCounter("concord_adapt_switches_total",
			"policy switches performed by the control plane",
			func() float64 { return float64(ctrl.Status().Switches) })
		m.RegisterCounter("concord_adapt_quantum_changes_total",
			"base-quantum adjustments performed by the control plane",
			func() float64 { return float64(ctrl.Status().QuantumChanges) })
		for a := adapt.Action(0); a < adapt.NumActions; a++ {
			a := a
			m.RegisterCounter(fmt.Sprintf(`concord_adapt_decisions_total{action="%s"}`, a),
				"control-plane ticks by the action each recorded",
				func() float64 { return float64(ctrl.DecisionCounts()[a]) })
		}
	}
	if sketches != nil {
		for class, name := range classNames {
			class, name := class, name
			for _, q := range []struct {
				label string
				q     float64
			}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}} {
				q := q
				m.RegisterGauge(
					fmt.Sprintf(`concord_svc_time_us{class="%s",quantile="%s"}`, name, q.label),
					"measured per-class service-time quantiles in microseconds (log-bucket sketch)",
					func() float64 { return sketches.ServiceQuantileNS(class, q.q) / 1e3 })
			}
			m.RegisterCounter(fmt.Sprintf(`concord_svc_time_samples_total{class="%s"}`, name),
				"service-time observations folded into each class sketch",
				func() float64 { return float64(sketches.Service(class).Snapshot().Count) })
			m.RegisterHistogram(fmt.Sprintf(`concord_hint_error{class="%s"}`, name),
				"hint/actual service-time ratio x100 per class (100 = exact hint)",
				sketches.HintError(class))
		}
	}
	if replayer != nil {
		for _, policy := range shadow.Policies() {
			policy := policy
			m.RegisterGauge(fmt.Sprintf(`concord_regret_p99_ratio{policy="%s"}`, policy),
				"last shadow window: counterfactual p99 over achieved p99 per policy (<1 = that policy would have won)",
				func() float64 { return replayer.Latest().PolicyRatio(policy) })
			m.RegisterGauge(fmt.Sprintf(`concord_regret_best_policy{policy="%s"}`, policy),
				"1 on the policy that won the last shadow window",
				func() float64 {
					if r := replayer.Latest(); r != nil && r.Best == policy {
						return 1
					}
					return 0
				})
		}
		m.RegisterGauge("concord_regret_ratio",
			"last shadow window: achieved p99 over the best counterfactual p99 (1 = already optimal)",
			func() float64 { return replayer.Latest().RegretRatio() })
		m.RegisterCounter("concord_regret_windows_total", "shadow windows replayed",
			func() float64 { w, _ := replayer.Counts(); return float64(w) })
		m.RegisterCounter("concord_regret_skipped_total", "shadow windows skipped for too few samples",
			func() float64 { _, s := replayer.Counts(); return float64(s) })
		m.RegisterCounter(`concord_shadow_captures_total{result="offered"}`,
			"completions seen by the capture ring vs sampled into it",
			func() float64 { o, _ := replayer.Ring().Stats(); return float64(o) })
		m.RegisterCounter(`concord_shadow_captures_total{result="kept"}`,
			"completions seen by the capture ring vs sampled into it",
			func() float64 { _, k := replayer.Ring().Stats(); return float64(k) })
	}
	for _, op := range []string{"GET", "PUT", "DEL", "SCAN", "SPIN"} {
		h := &opHists{}
		ob.perOp[op] = h
		lop := strings.ToLower(op)
		m.RegisterHistogram(fmt.Sprintf(`concord_request_us{op="%s",component="total"}`, lop),
			"per-op latency components in microseconds", &h.total)
		m.RegisterHistogram(fmt.Sprintf(`concord_request_us{op="%s",component="handoff"}`, lop),
			"per-op latency components in microseconds", &h.handoff)
		m.RegisterHistogram(fmt.Sprintf(`concord_request_us{op="%s",component="queue"}`, lop),
			"per-op latency components in microseconds", &h.queue)
		m.RegisterHistogram(fmt.Sprintf(`concord_request_us{op="%s",component="service"}`, lop),
			"per-op latency components in microseconds", &h.service)
		m.RegisterHistogram(fmt.Sprintf(`concord_request_us{op="%s",component="preempted"}`, lop),
			"per-op latency components in microseconds", &h.preempted)
		m.RegisterHistogram(fmt.Sprintf(`concord_request_us{op="%s",component="ingress"}`, lop),
			"per-op latency components in microseconds", &h.ingress)
		m.RegisterHistogram(fmt.Sprintf(`concord_request_us{op="%s",component="egress"}`, lop),
			"per-op latency components in microseconds", &h.egress)
	}
	obs.RegisterBuildInfo(m)
	obs.RegisterGoRuntime(m)
	return ob
}

// observe feeds one completed response into the per-op histograms.
func (ob *kvObs) observe(op string, resp live.Response) {
	h := ob.perOp[op]
	if h == nil || resp.Breakdown == nil {
		return
	}
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	h.total.ObserveDuration(resp.Latency)
	h.handoff.ObserveUS(us(resp.Breakdown.Handoff))
	h.queue.ObserveUS(us(resp.Breakdown.Queue))
	h.service.ObserveUS(us(resp.Breakdown.Service))
	h.preempted.ObserveUS(us(resp.Breakdown.Preempted))
	h.ingress.ObserveUS(us(resp.Breakdown.Ingress))
}

// observeEgress feeds the flush-side wire phase; it arrives separately
// from observe because egress is only known once the response batch hits
// the socket, after the completion callback has already run.
func (ob *kvObs) observeEgress(op string, egress time.Duration) {
	if h := ob.perOp[op]; h != nil {
		h.egress.ObserveDuration(egress)
	}
}

// obsTrailer renders the per-request breakdown clients opt into with
// OBS ON. Times are µs; i is ingress (frame read → runtime submit), e
// is egress accrued so far (completion → trailer render — the trailer
// rides inside the response, so the socket write itself cannot be in
// it), n is the preemption count, d=1 when the work-conserving
// dispatcher ran the request. The wire phases print at %.3f: they are
// routinely sub-µs and would round to an indistinguishable 0.0.
func obsTrailer(resp live.Response) string {
	b := resp.Breakdown
	if b == nil {
		return ""
	}
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	disp := 0
	if resp.OnDispatcher {
		disp = 1
	}
	egress := 0.0
	if !resp.Done.IsZero() {
		egress = us(time.Since(resp.Done))
	}
	return fmt.Sprintf(" |OBS h=%.1f q=%.1f s=%.1f p=%.1f i=%.3f e=%.3f n=%d d=%d",
		us(b.Handoff), us(b.Queue), us(b.Service), us(b.Preempted),
		us(b.Ingress), egress, resp.Preemptions, disp)
}

// serveControl handles the non-request text commands (STATS, TRACE,
// OBS); it reports whether the line was one of them. netsrv calls it
// for any text line the data protocol does not recognize.
func serveControl(out io.Writer, line string, srv *live.Server, ns *netsrv.Server, ob *kvObs, ctrl *adapt.Controller, sketches *obs.ClassSketches, ctails *obs.ClassTails, replayer *shadow.Replayer, obsOn *bool) bool {
	switch {
	case line == "STATS":
		fmt.Fprintf(out, "%s\n", statsLine(srv, ns, ob, ctrl, sketches, ctails, replayer))
		return true
	case line == "SHADOW" || strings.HasPrefix(line, "SHADOW "):
		if replayer == nil {
			fmt.Fprintln(out, "ERR shadow replay disabled (start with -shadow)")
			return true
		}
		n := 5
		if rest := strings.TrimPrefix(line, "SHADOW"); strings.TrimSpace(rest) != "" {
			v, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil || v <= 0 {
				fmt.Fprintf(out, "ERR bad SHADOW count %q\n", strings.TrimSpace(rest))
				return true
			}
			n = v
		}
		results := replayer.Results(n)
		for _, r := range results {
			fmt.Fprintln(out, r.String())
		}
		fmt.Fprintf(out, "END %d\n", len(results))
		return true
	case line == "TRACE" || strings.HasPrefix(line, "TRACE "):
		if ob == nil {
			fmt.Fprintln(out, "ERR tracing disabled (start with -obs)")
			return true
		}
		n := 10
		if rest := strings.TrimPrefix(line, "TRACE"); strings.TrimSpace(rest) != "" {
			v, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil || v <= 0 {
				fmt.Fprintf(out, "ERR bad TRACE count %q\n", strings.TrimSpace(rest))
				return true
			}
			n = v
		}
		printed := obs.WriteTimelines(out, ob.tracer.Snapshot(), n)
		fmt.Fprintf(out, "END %d\n", printed)
		return true
	case line == "DECISIONS" || strings.HasPrefix(line, "DECISIONS "):
		if ctrl == nil {
			fmt.Fprintln(out, "ERR adaptive control disabled (start with -adaptive)")
			return true
		}
		n := 20
		if rest := strings.TrimPrefix(line, "DECISIONS"); strings.TrimSpace(rest) != "" {
			v, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil || v <= 0 {
				fmt.Fprintf(out, "ERR bad DECISIONS count %q\n", strings.TrimSpace(rest))
				return true
			}
			n = v
		}
		decs := ctrl.Decisions(n)
		for _, d := range decs {
			fmt.Fprintln(out, d.String())
		}
		fmt.Fprintf(out, "END %d\n", len(decs))
		return true
	case line == "OBS ON":
		if ob == nil {
			fmt.Fprintln(out, "ERR tracing disabled (start with -obs)")
			return true
		}
		*obsOn = true
		fmt.Fprintln(out, "OK")
		return true
	case line == "OBS OFF":
		*obsOn = false
		fmt.Fprintln(out, "OK")
		return true
	}
	return false
}

// statsLine renders the STATS response. Every key here must map to a
// /metrics family via metricFamilyForStatsKey — the consistency test
// asserts it, so the text protocol and the Prometheus surface cannot
// drift apart.
func statsLine(srv *live.Server, ns *netsrv.Server, ob *kvObs, ctrl *adapt.Controller, sketches *obs.ClassSketches, ctails *obs.ClassTails, replayer *shadow.Replayer) string {
	st := srv.Stats()
	d := srv.Depths()
	occ := make([]string, len(d.Workers))
	for i, o := range d.Workers {
		occ[i] = strconv.Itoa(o)
	}
	var b strings.Builder
	b.WriteString("STATS")
	field := func(key, val string) {
		b.WriteByte(' ')
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(val)
	}
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	field("submitted", u(st.Submitted))
	field("completed", u(st.Completed))
	field("rejected", u(st.Rejected))
	field("expired", u(st.Expired))
	field("aborted", u(st.Aborted))
	field("preemptions", u(st.Preemptions))
	field("dispatcher_run", u(st.DispatcherRun))
	field("steals", u(st.Steals))
	field("shed", u(st.Shed))
	// Comma-joined per class in classNames order, like occ/shardq.
	classJoin := func(vals [live.NumClasses]uint64) string {
		parts := make([]string, len(classNames))
		for class := range classNames {
			parts[class] = u(vals[class])
		}
		return strings.Join(parts, ",")
	}
	field("class_submitted", classJoin(st.ClassSubmitted))
	field("class_completed", classJoin(st.ClassCompleted))
	field("class_rejected", classJoin(st.ClassRejected))
	field("central", strconv.Itoa(d.Central))
	field("submitq", strconv.Itoa(d.Submit))
	field("occ", strings.Join(occ, ","))
	shardq := make([]string, len(d.ShardQueues))
	shardocc := make([]string, len(d.ShardOcc))
	for i := range d.ShardQueues {
		shardq[i] = strconv.Itoa(d.ShardQueues[i])
		shardocc[i] = strconv.Itoa(d.ShardOcc[i])
	}
	field("shardq", strings.Join(shardq, ","))
	field("shardocc", strings.Join(shardocc, ","))
	if ns != nil {
		nst := ns.NetStats()
		field("conns", strconv.FormatInt(nst.Conns, 10))
		field("pipeline", strconv.FormatInt(nst.Pipeline, 10))
		field("frames_in", u(nst.FramesIn))
		field("frames_out", u(nst.FramesOut))
		field("flushes", u(nst.Flushes))
		field("text_lines", u(nst.TextLines))
		field("toolarge", u(nst.TooLarge))
		field("badframes", u(nst.BadFrames))
		batch := 0.0
		if nst.Flushes > 0 {
			batch = float64(nst.FramesOut) / float64(nst.Flushes)
		}
		field("flush_batch_mean", fmt.Sprintf("%.2f", batch))
		// The mean hides bimodal batching (many 1s plus a few huge
		// coalesced writes); the histogram quantiles do not.
		fb := ns.FlushBatch().Snapshot()
		p50, p99 := 0.0, 0.0
		if fb.Count > 0 {
			p50, p99 = fb.Quantile(0.50), fb.Quantile(0.99)
		}
		field("flush_batch_p50", fmt.Sprintf("%.2f", p50))
		field("flush_batch_p99", fmt.Sprintf("%.2f", p99))
	}
	if ob != nil && ob.tail != nil {
		for _, w := range ob.tail.Windows() {
			suffix := fmtWindow(w)
			field("p50_"+suffix, fmt.Sprintf("%.1f", ob.tail.Quantile(w, 0.50)))
			field("p99_"+suffix, fmt.Sprintf("%.1f", ob.tail.Quantile(w, 0.99)))
			field("p999_"+suffix, fmt.Sprintf("%.1f", ob.tail.Quantile(w, 0.999)))
		}
		if slo := ob.tail.SLO(); slo != nil {
			s := slo.Snapshot()
			field("burn_short", fmt.Sprintf("%.2f", s.ShortBurn))
			field("burn_long", fmt.Sprintf("%.2f", s.LongBurn))
			alerting := "0"
			if s.Alerting {
				alerting = "1"
			}
			field("slo_alerting", alerting)
		}
	}
	if ctails != nil {
		p99s := make([]string, len(classNames))
		attain := make([]string, len(classNames))
		for class := range classNames {
			ct := ctails.Tail(class)
			if ct == nil {
				p99s[class], attain[class] = "0.0", "1.000"
				continue
			}
			p99s[class] = fmt.Sprintf("%.1f", ct.Quantile(ct.Windows()[0], 0.99))
			ratio := 1.0
			if slo := ct.SLO(); slo != nil {
				if s := slo.Snapshot(); s.LongTotal > 0 {
					ratio = float64(s.LongGood) / float64(s.LongTotal)
				}
			}
			attain[class] = fmt.Sprintf("%.3f", ratio)
		}
		field("class_p99_us", strings.Join(p99s, ","))
		field("class_slo", strings.Join(attain, ","))
	}
	if sketches != nil {
		// Comma-joined per class in classNames order, like occ/shardq.
		quant := func(q float64) string {
			vals := make([]string, len(classNames))
			for class := range classNames {
				vals[class] = fmt.Sprintf("%.1f", sketches.ServiceQuantileNS(class, q)/1e3)
			}
			return strings.Join(vals, ",")
		}
		field("svc_p50_us", quant(0.50))
		field("svc_p99_us", quant(0.99))
	}
	if replayer != nil {
		windows, skipped := replayer.Counts()
		field("regret_windows", u(windows))
		field("regret_skipped", u(skipped))
		_, kept := replayer.Ring().Stats()
		field("shadow_captured", u(kept))
		last := replayer.Latest()
		best := "none"
		if last != nil && last.Best != "" {
			best = last.Best
		}
		field("regret_best", best)
		field("regret", fmt.Sprintf("%.2f", last.RegretRatio()))
		for _, policy := range shadow.Policies() {
			field("regret_ratio_"+policy, fmt.Sprintf("%.2f", last.PolicyRatio(policy)))
		}
	}
	if ctrl != nil {
		s := ctrl.Status()
		pol := "0"
		if s.Policy == live.PolicySRPT {
			pol = "1"
		}
		field("adapt_policy", pol)
		field("adapt_quantum_us", fmt.Sprintf("%.1f", float64(s.Quantum)/float64(time.Microsecond)))
		field("adapt_cv", fmt.Sprintf("%.3f", s.CV))
		field("adapt_switches", u(s.Switches))
		field("adapt_quantum_changes", u(s.QuantumChanges))
		var decisions uint64
		for _, c := range ctrl.DecisionCounts() {
			decisions += c
		}
		field("adapt_decisions", u(decisions))
	}
	return b.String()
}

// metricFamilyForStatsKey maps a STATS field to the /metrics family
// exposing the same quantity; "" means unmapped (a drift bug the
// consistency test turns into a failure).
func metricFamilyForStatsKey(key string) string {
	switch key {
	case "submitted", "completed", "rejected", "expired", "aborted", "preemptions", "dispatcher_run", "steals", "shed":
		return "concord_" + key + "_total"
	case "class_submitted", "class_completed", "class_rejected":
		return "concord_class_requests_total"
	case "class_p99_us":
		return "concord_class_latency_us"
	case "class_slo":
		return "concord_class_slo_attainment"
	case "central", "submitq":
		return "concord_queue_depth"
	case "occ":
		return "concord_worker_occupancy"
	case "shardq":
		return "concord_shard_queue_depth"
	case "shardocc":
		return "concord_shard_occupancy"
	case "conns":
		return "concord_net_connections"
	case "pipeline":
		return "concord_net_pipeline_depth"
	case "frames_in", "frames_out":
		return "concord_net_frames_total"
	case "flushes":
		return "concord_net_flushes_total"
	case "text_lines":
		return "concord_net_text_lines_total"
	case "toolarge":
		return "concord_net_toolarge_total"
	case "badframes":
		return "concord_net_bad_frames_total"
	case "flush_batch_mean":
		return "concord_net_flush_batch"
	case "flush_batch_p50", "flush_batch_p99":
		return "concord_net_flush_batch_quantile"
	case "burn_short", "burn_long":
		return "concord_slo_burn_rate"
	case "slo_alerting":
		return "concord_slo_alerting"
	case "adapt_policy":
		return "concord_adapt_policy"
	case "adapt_quantum_us":
		return "concord_adapt_quantum_us"
	case "adapt_cv":
		return "concord_adapt_cv"
	case "adapt_switches":
		return "concord_adapt_switches_total"
	case "adapt_quantum_changes":
		return "concord_adapt_quantum_changes_total"
	case "adapt_decisions":
		return "concord_adapt_decisions_total"
	case "svc_p50_us", "svc_p99_us":
		return "concord_svc_time_us"
	case "regret_windows":
		return "concord_regret_windows_total"
	case "regret_skipped":
		return "concord_regret_skipped_total"
	case "shadow_captured":
		return "concord_shadow_captures_total"
	case "regret_best":
		return "concord_regret_best_policy"
	case "regret":
		return "concord_regret_ratio"
	}
	if strings.HasPrefix(key, "regret_ratio_") {
		return "concord_regret_p99_ratio"
	}
	if strings.HasPrefix(key, "p50_") || strings.HasPrefix(key, "p99_") || strings.HasPrefix(key, "p999_") {
		return "concord_rolling_latency_us"
	}
	return ""
}
